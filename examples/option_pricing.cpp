// APOP: American put option pricing on a binomial lattice — the paper's
// 1-D two-input-array benchmark.
//
// The benchmark kernel treats the early-exercise payoff as a linear source
// term (out = p(V) + src(K)), which is what folding accelerates. This
// example also runs the *exact* American put (max of continuation and
// exercise) step by step to show how the library's pieces serve a real
// pricing code, and reports the folded kernel's speedup on the linear part.
//
//   $ ./option_pricing [n] [steps]
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/timing.hpp"
#include "core/solver.hpp"
#include "grid/grid_utils.hpp"
#include "stencil/reference.hpp"

int main(int argc, char** argv) {
  using namespace sf;
  const int n = argc > 1 ? std::atoi(argv[1]) : 1 << 20;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 200;

  // --- Exact American put on a trinomial-style lattice (scalar). ---------
  // V_{t}(i) = max(payoff(i), pu*V_{t+1}(i+1) + pm*V_{t+1}(i) + pd*V_{t+1}(i-1))
  const double strike = 100.0, s0 = 100.0, sigma = 0.2, rate = 0.03;
  const double dt = 1.0 / steps;
  const double u = std::exp(sigma * std::sqrt(dt));
  const double disc = std::exp(-rate * dt);
  const double pu = 0.5 * disc, pd = 0.5 * disc;  // simplified risk-neutral

  const int demo_n = 4001;  // small exact lattice
  std::vector<double> price(demo_n), payoff(demo_n), v(demo_n), w(demo_n);
  for (int i = 0; i < demo_n; ++i) {
    price[static_cast<std::size_t>(i)] =
        s0 * std::pow(u, i - demo_n / 2);
    payoff[static_cast<std::size_t>(i)] =
        std::max(strike - price[static_cast<std::size_t>(i)], 0.0);
    v[static_cast<std::size_t>(i)] = payoff[static_cast<std::size_t>(i)];
  }
  for (int t = 0; t < std::min(steps, 200); ++t) {
    for (int i = 1; i + 1 < demo_n; ++i)
      w[static_cast<std::size_t>(i)] = std::max(
          payoff[static_cast<std::size_t>(i)],
          pu * v[static_cast<std::size_t>(i + 1)] + pd * v[static_cast<std::size_t>(i - 1)]);
    w[0] = payoff[0];
    w[static_cast<std::size_t>(demo_n - 1)] = 0.0;
    std::swap(v, w);
  }
  std::cout << "Exact American put (lattice " << demo_n << "): V(S0) = "
            << v[static_cast<std::size_t>(demo_n / 2)] << "\n";

  // --- The APOP throughput benchmark (linear part, folded kernel). -------
  RunResult ours = Solver::make(Preset::Apop)
                       .size(n)
                       .steps(steps)
                       .method("ours-2step")
                       .tiling(Tiling::On)
                       .run();
  RunResult base = Solver::make(Preset::Apop)
                       .size(n)
                       .steps(steps)
                       .method(Method::MultipleLoads)
                       .run();

  std::cout << "APOP kernel, n = " << n << ", T = " << steps << ":\n"
            << "  our (2-step, tiled): " << ours.gflops << " GFLOP/s\n"
            << "  multiple loads:      " << base.gflops << " GFLOP/s\n"
            << "  speedup:             " << ours.gflops / base.gflops << "x\n";

  // Verify the folded two-array kernel on a small instance.
  RunResult check = Solver::make(Preset::Apop)
                        .size(10000)
                        .steps(20)
                        .method(Method::Ours2)
                        .tiling(Tiling::On)
                        .run_verified();
  std::cout << "  folded-vs-reference max error (n=10000, T=20): "
            << check.max_error << "\n";
  return check.max_error < 1e-10 ? 0 : 1;
}
