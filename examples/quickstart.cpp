// Quickstart: solve a 2-D heat diffusion problem through the Solver facade
// and verify it against the naive reference.
//
//   $ ./quickstart [n] [steps]
#include <cstdlib>
#include <iostream>

#include "core/solver.hpp"

int main(int argc, char** argv) {
  using namespace sf;
  const int n = argc > 1 ? std::atoi(argv[1]) : 512;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 100;

  // 1. Pick a stencil. Presets cover the paper's Table-1 set; you can also
  //    build any Pattern2D from (offset, weight) taps.
  const StencilSpec& heat = preset(Preset::Heat2D);
  std::cout << "Stencil: " << heat.name << " " << to_string(heat.p2) << "\n";

  // 2. Configure and run. "ours-2step" = register-transpose vectorization +
  //    temporal computation folding (m = 2); Tiling::On = temporal split
  //    tiling across all cores with auto-negotiated tile geometry (add
  //    .tune(true) to measure-and-cache the best tile instead). Leaving the
  //    method unset (Method::Auto) would let the fold cost model pick, and
  //    leaving tiling at Tiling::Auto lets the planner's cost model decide.
  Solver solver = Solver::make(Preset::Heat2D)
                      .size(n, n)
                      .steps(steps)
                      .method("ours-2step")
                      .tiling(Tiling::On);
  std::cout << "Selected kernel: " << solver.kernel().name << " @ "
            << isa_name(solver.kernel().isa)
            << " (negotiated halo " << solver.halo() << ")\n";
  const ExecutionPlan& plan = solver.plan();
  if (plan.tiled)
    std::cout << "Execution plan: split-tiled, tile " << plan.tile.tile
              << ", time block " << plan.tile.time_block << ", threads "
              << plan.tile.threads << " (" << plan_source_name(plan.source)
              << ")\n";
  else
    std::cout << "Execution plan: untiled (" << plan_source_name(plan.source)
              << ")\n";

  RunResult r = solver.run_verified();
  std::cout << n << "x" << n << ", " << steps << " steps: " << r.seconds
            << " s, " << r.gflops << " GFLOP/s\n"
            << "max |error| vs naive reference: " << r.max_error << "\n";

  // 3. Compare with the baseline the compiler would give you.
  RunResult base = Solver::make(Preset::Heat2D)
                       .size(n, n)
                       .steps(steps)
                       .method(Method::MultipleLoads)
                       .run();
  std::cout << "multiple-loads baseline: " << base.gflops << " GFLOP/s -> "
            << r.gflops / base.gflops << "x speedup\n";
  return r.max_error < 1e-9 ? 0 : 1;
}
