// Quickstart: solve a 2-D heat diffusion problem with the folded
// transpose-layout executor and verify it against the naive reference.
//
//   $ ./quickstart [n] [steps]
#include <cstdlib>
#include <iostream>

#include "core/problem.hpp"
#include "grid/grid_utils.hpp"
#include "stencil/reference.hpp"

int main(int argc, char** argv) {
  using namespace sf;
  const int n = argc > 1 ? std::atoi(argv[1]) : 512;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 100;

  // 1. Pick a stencil. Presets cover the paper's Table-1 set; you can also
  //    build any Pattern2D from (offset, weight) taps.
  const StencilSpec& heat = preset(Preset::Heat2D);
  std::cout << "Stencil: " << heat.name << " " << to_string(heat.p2) << "\n";

  // 2. Configure and run. Method::Ours2 = register-transpose vectorization +
  //    temporal computation folding (m = 2); tiled = temporal split tiling
  //    across all cores.
  ProblemConfig cfg;
  cfg.preset = Preset::Heat2D;
  cfg.method = Method::Ours2;
  cfg.nx = n;
  cfg.ny = n;
  cfg.tsteps = steps;
  cfg.tiled = true;

  RunResult r = run_verified(cfg);
  std::cout << n << "x" << n << ", " << steps << " steps: " << r.seconds
            << " s, " << r.gflops << " GFLOP/s\n"
            << "max |error| vs naive reference: " << r.max_error << "\n";

  // 3. Compare with the baseline the compiler would give you.
  cfg.method = Method::MultipleLoads;
  cfg.tiled = false;
  RunResult base = run_problem(cfg);
  std::cout << "multiple-loads baseline: " << base.gflops << " GFLOP/s -> "
            << r.gflops / base.gflops << "x speedup\n";
  return r.max_error < 1e-9 ? 0 : 1;
}
