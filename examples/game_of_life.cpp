// Conway's Game of Life, two ways:
//  1. the *exact* rule, computed by applying the library's 8-point pattern
//     (neighbour count) and thresholding — verifies a glider's period-4
//     diagonal walk;
//  2. the paper's throughput benchmark: the arithmetic 8-point surrogate,
//     run with the folded multicore executor (see DESIGN.md for why the
//     exact rule cannot be temporally folded).
//
//   $ ./game_of_life [n] [steps]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/solver.hpp"
#include "grid/grid_utils.hpp"
#include "stencil/reference.hpp"

int main(int argc, char** argv) {
  using namespace sf;
  const int n = argc > 1 ? std::atoi(argv[1]) : 1000;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 50;

  // --- Exact rule with a glider. ------------------------------------------
  // Count neighbours with the library's 8-point pattern, then threshold.
  Pattern2D count;
  for (int dy = -1; dy <= 1; ++dy)
    for (int dx = -1; dx <= 1; ++dx)
      if (dy != 0 || dx != 0) count.taps.push_back({{dy, dx}, 1.0});

  const int gn = 32;
  Grid2D world(gn, gn, 8), neigh(gn, gn, 8);
  // Glider at (1,1): moves one cell diagonally every 4 generations.
  world.at(1, 2) = 1;
  world.at(2, 3) = 1;
  world.at(3, 1) = world.at(3, 2) = world.at(3, 3) = 1;
  for (int t = 0; t < 8; ++t) {
    apply_pattern(count, world, neigh, 0, gn, 0, gn);
    for (int y = 0; y < gn; ++y)
      for (int x = 0; x < gn; ++x) {
        const int c = static_cast<int>(neigh.at(y, x) + 0.5);
        const bool alive = world.at(y, x) > 0.5;
        world.at(y, x) = (c == 3 || (alive && c == 2)) ? 1.0 : 0.0;
      }
  }
  // After 8 generations the glider pattern sits shifted by (2,2).
  const bool glider_ok = world.at(3, 4) > 0.5 && world.at(4, 5) > 0.5 &&
                         world.at(5, 3) > 0.5 && world.at(5, 4) > 0.5 &&
                         world.at(5, 5) > 0.5;
  std::cout << "glider after 8 generations " << (glider_ok ? "OK" : "WRONG")
            << "\n";

  // --- Throughput benchmark (paper's Game of Life row). -------------------
  Solver solver =
      Solver::make(Preset::Life).size(n, n).steps(steps).tiling(Tiling::On);
  RunResult ours = solver.method("ours-2step").run();
  RunResult tess = solver.method("naive").run();
  std::cout << "surrogate kernel " << n << "^2, T=" << steps << ": our-2step "
            << ours.gflops << " GFLOP/s vs tessellation " << tess.gflops
            << " GFLOP/s (" << ours.gflops / tess.gflops << "x)\n";
  return glider_ok ? 0 : 1;
}
