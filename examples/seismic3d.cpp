// 3-D smoothing of a synthetic subsurface velocity model with the 27-point
// box stencil — the kind of high-order 3-D workload the paper's 3D27P
// benchmark stands in for. Runs the folded multicore executor and checks
// energy decay (the smoother is an averaging operator, so variance must
// shrink monotonically).
//
//   $ ./seismic3d [n] [steps]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <random>

#include "common/timing.hpp"
#include "core/solver.hpp"
#include "grid/grid_utils.hpp"
#include "kernels/registry.hpp"
#include "stencil/reference.hpp"
#include "tiling/split_tiling.hpp"

namespace {

double variance(const sf::Grid3D& g) {
  double mean = 0, n = 0;
  for (int z = 0; z < g.nz(); ++z)
    for (int y = 0; y < g.ny(); ++y)
      for (int x = 0; x < g.nx(); ++x, ++n) mean += g.at(z, y, x);
  mean /= n;
  double var = 0;
  for (int z = 0; z < g.nz(); ++z)
    for (int y = 0; y < g.ny(); ++y)
      for (int x = 0; x < g.nx(); ++x)
        var += (g.at(z, y, x) - mean) * (g.at(z, y, x) - mean);
  return var / n;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sf;
  const int n = argc > 1 ? std::atoi(argv[1]) : 128;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 20;

  // Synthetic layered velocity model with a dipping interface and noise.
  // This example brings its own grids (custom initial data), so it asks the
  // registry for the folded kernel's halo capability instead of letting a
  // Solver-owned workspace negotiate it.
  const StencilSpec& spec = preset(Preset::Box3D27);
  const int halo =
      require_kernel(Method::Ours2, 3).required_halo(spec.p3.radius());
  Grid3D v(n, n, n, halo), scratch(n, n, n, halo);
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> noise(-0.1, 0.1);
  for (int z = -halo; z < n + halo; ++z)
    for (int y = -halo; y < n + halo; ++y)
      for (int x = -halo; x < n + halo; ++x) {
        const double layer = 1.5 + 0.002 * z + (z > n / 2 + y / 8 ? 1.0 : 0.0);
        v.at(z, y, x) = layer + noise(rng);
      }
  copy(v, scratch);

  const double var0 = variance(v);
  Timer t;
  // Bring-your-own-grids tiled execution: the Solver path owns its
  // workspace, so custom initial data runs the engine directly with a
  // TilePlan (geometry gaps auto-negotiated, as Solver::run would).
  TilePlan plan;
  plan.method = Method::Ours2;
  run_tile_plan(spec.p3, v, scratch, steps, plan);
  const double secs = t.seconds();
  const double var1 = variance(v);

  const double gf = flops_per_step(spec, n, n, n) * steps / secs / 1e9;
  std::cout << "smoothed " << n << "^3 velocity model, " << steps
            << " sweeps in " << secs << " s (" << gf << " GFLOP/s)\n"
            << "variance " << var0 << " -> " << var1
            << (var1 < var0 ? " (decayed, OK)" : " (NOT decayed!)") << "\n";
  return var1 < var0 ? 0 : 1;
}
