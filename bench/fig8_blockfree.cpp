// Figure 8: single-thread, blocking-free absolute performance across problem
// sizes spanning L1 cache to main memory, for two total-time-step regimes.
// The method axis is enumerated from the kernel registry (one column per
// method at the widest supported ISA, scalar baseline excluded).
//
// Expected shape (paper): Our(2 steps) > Our > DLT > data-reorg > multiple
// loads at most sizes; DLT competitive only at small sizes / long T where
// its global transpose amortizes; everything drops moving L1 -> memory.
#include <iostream>

#include "bench_util/harness.hpp"

int main() {
  using namespace sf;
  const bool full = bench_full();
  const auto sizes = bench::size_sweep_1d(full);
  const auto methods = bench::method_axis(1, /*skip_naive=*/true);
  const std::vector<int> tregimes = full ? std::vector<int>{1000, 10000}
                                         : std::vector<int>{50, 500};

  // Machine-readable trajectory: every (T, n, method) GFLOP/s lands in
  // BENCH_fig8.json alongside the stamped CSVs (scripts/bench_summary.py
  // merges these across runs/PRs).
  std::vector<std::pair<std::string, double>> summary;
  for (int tsteps : tregimes) {
    std::vector<std::string> header{"n", "level"};
    for (const KernelInfo* k : methods) header.push_back(k->name);
    header.push_back("best");
    Table t(header);
    std::cout << "Figure 8 (" << (full ? "paper" : "fast") << " sizes), T = "
              << tsteps << ", 1D-Heat, single thread\n";
    for (long n : sizes) {
      std::vector<std::string> row;
      row.push_back(std::to_string(n));
      row.push_back(bench::storage_level(2.0 * static_cast<double>(n) * 8));
      double best = 0;
      std::string bestname;
      for (const KernelInfo* k : methods) {
        // Blocking-free by definition: pin Tiling::Off so the planner's
        // Auto cost model cannot switch the tileable methods to the
        // parallel split-tiled path at the large sweep sizes.
        Solver s = Solver::make(Preset::Heat1D)
                       .method(k->method)
                       .isa(k->isa)
                       .size(n)
                       .steps(tsteps)
                       .tiling(Tiling::Off);
        RunResult r = bench::measure(s);
        summary.emplace_back("T" + std::to_string(tsteps) + ".n" +
                                 std::to_string(n) + "." + k->name +
                                 ".gflops",
                             r.gflops);
        row.push_back(Table::num(r.gflops));
        if (r.gflops > best) {
          best = r.gflops;
          bestname = k->name;
        }
      }
      row.push_back(bestname);
      t.add_row(row);
    }
    bench::emit(t, "fig8_blockfree_T" + std::to_string(tsteps));
  }
  bench::emit_bench_json("fig8", summary);
  return 0;
}
