// Figure 8: single-thread, blocking-free absolute performance across problem
// sizes spanning L1 cache to main memory, for two total-time-step regimes.
// Methods: multiple loads, data reorganization, DLT, Our, Our (2 steps).
//
// Expected shape (paper): Our(2 steps) > Our > DLT > data-reorg > multiple
// loads at most sizes; DLT competitive only at small sizes / long T where
// its global transpose amortizes; everything drops moving L1 -> memory.
#include <iostream>

#include "bench_util/harness.hpp"

int main() {
  using namespace sf;
  const bool full = bench_full();
  const auto sizes = bench::size_sweep_1d(full);
  const std::vector<std::pair<std::string, Method>> methods = {
      {"multiple-loads", Method::MultipleLoads},
      {"data-reorg", Method::DataReorg},
      {"dlt", Method::DLT},
      {"our", Method::Ours},
      {"our-2step", Method::Ours2},
  };
  const std::vector<int> tregimes = full ? std::vector<int>{1000, 10000}
                                         : std::vector<int>{50, 500};

  for (int tsteps : tregimes) {
    Table t({"n", "level", "multiple-loads", "data-reorg", "dlt", "our",
             "our-2step", "best"});
    std::cout << "Figure 8 (" << (full ? "paper" : "fast") << " sizes), T = "
              << tsteps << ", 1D-Heat, single thread\n";
    for (long n : sizes) {
      std::vector<std::string> row;
      row.push_back(std::to_string(n));
      row.push_back(bench::storage_level(2.0 * static_cast<double>(n) * 8));
      double best = 0;
      std::string bestname;
      for (const auto& [name, m] : methods) {
        ProblemConfig cfg;
        cfg.preset = Preset::Heat1D;
        cfg.method = m;
        cfg.nx = n;
        // Keep per-point work constant-ish: large sizes get fewer steps in
        // fast mode so the whole sweep stays quick.
        cfg.tsteps = tsteps;
        RunResult r = bench::measure(cfg);
        row.push_back(Table::num(r.gflops));
        if (r.gflops > best) {
          best = r.gflops;
          bestname = name;
        }
      }
      row.push_back(bestname);
      t.add_row(row);
    }
    bench::emit(t, "fig8_blockfree_T" + std::to_string(tsteps));
  }
  return 0;
}
