// Table 1: parameter description for the stencils used in experiments,
// plus the kernel-registry matrix: every registered kernel with its
// capability metadata, enumerated straight from available_kernels() — a
// newly registered kernel shows up here (and in every harness that sweeps
// bench::method_axis) without touching any hand-kept list.
#include <iostream>
#include <sstream>

#include "bench_util/harness.hpp"
#include "stencil/presets.hpp"

int main() {
  using namespace sf;
  Table t({"Type", "Pts", "Problem Size (paper)", "T", "Blocking", "Fast size",
           "Fast T"});
  for (const auto& s : all_presets()) {
    auto dims = [&](const std::array<long, 3>& v) {
      std::ostringstream o;
      for (int d = 0; d < s.dims; ++d) o << (d ? "x" : "") << v[static_cast<std::size_t>(d)];
      return o.str();
    };
    std::ostringstream blk;
    blk << s.block[0] << "x" << s.block[1];
    if (s.dims == 3) blk << "x" << s.block[2];
    t.add_row({s.name, std::to_string(s.points()), dims(s.full_size),
               std::to_string(s.full_tsteps), blk.str(), dims(s.small_size),
               std::to_string(s.small_tsteps)});
  }
  bench::emit(t, "table1_configs");

  Table k({"Dims", "Kernel", "ISA", "W", "fold m", "halo(r=1)", "halo(r=2)",
           "vec path", "tiled stage"});
  for (int dims = 1; dims <= 3; ++dims)
    for (const KernelInfo* info : available_kernels(dims)) {
      auto radius_range = [](int max_r) {
        return max_r < 0    ? std::string("never")
               : max_r == 0 ? std::string("any r")
                            : "r<=" + std::to_string(max_r);
      };
      k.add_row({std::to_string(dims) + "D", info->name, isa_name(info->isa),
                 std::to_string(info->width), std::to_string(info->fold_depth),
                 std::to_string(info->required_halo(1)),
                 std::to_string(info->required_halo(2)),
                 radius_range(info->max_radius),
                 radius_range(info->tiled_max_radius)});
    }
  std::cout << "Kernel registry (CPU-supported entries)\n";
  bench::emit(k, "table1_kernels");
  return 0;
}
