// Table 1: parameter description for the stencils used in experiments.
// Prints both the paper's configuration and the scaled-down fast-run
// configuration this harness uses by default (SF_BENCH_FULL=1 selects the
// paper sizes everywhere).
#include <iostream>
#include <sstream>

#include "bench_util/harness.hpp"
#include "stencil/presets.hpp"

int main() {
  using namespace sf;
  Table t({"Type", "Pts", "Problem Size (paper)", "T", "Blocking", "Fast size",
           "Fast T"});
  for (const auto& s : all_presets()) {
    auto dims = [&](const std::array<long, 3>& v) {
      std::ostringstream o;
      for (int d = 0; d < s.dims; ++d) o << (d ? "x" : "") << v[static_cast<std::size_t>(d)];
      return o.str();
    };
    std::ostringstream blk;
    blk << s.block[0] << "x" << s.block[1];
    if (s.dims == 3) blk << "x" << s.block[2];
    t.add_row({s.name, std::to_string(s.points()), dims(s.full_size),
               std::to_string(s.full_tsteps), blk.str(), dims(s.small_size),
               std::to_string(s.small_tsteps)});
  }
  bench::emit(t, "table1_configs");
  return 0;
}
