// Ablation (paper §3.4): shifts reusing. Runs the folded 2-D kernel with
// the ring-buffer reuse of transposed counterpart columns enabled vs
// disabled (every vector set recomputed three times). Results are
// bit-identical (tested); only throughput changes.
#include <iostream>

#include "bench_util/harness.hpp"
#include "common/timing.hpp"
#include "grid/grid_utils.hpp"
#include "kernels/kernels2d_impl.hpp"

int main() {
  using namespace sf;
  const bool full = bench_full();
  const int n = full ? 5000 : 1200;
  const int tsteps = full ? 200 : 40;

  Table t({"Stencil", "reuse GF/s", "no-reuse GF/s", "gain"});
  for (const auto& spec : all_presets()) {
    if (spec.dims != 2) continue;
    const int halo =
        require_kernel(Method::Ours2, 2, Isa::Avx2).required_halo(spec.p2.radius());
    double g[2];
    for (int mode = 0; mode < 2; ++mode) {
      Grid2D a(n, n, halo), b(n, n, halo);
      fill_random(a, 5);
      copy(a, b);
      Timer timer;
      if (mode == 0) {
        detail::run_ours2_2d<4>(spec.p2, a, b, tsteps);
      } else {
        detail::run_ours2_2d_noreuse<4>(spec.p2, a, b, tsteps);
      }
      do_not_optimize(a.data());
      const double fl = flops_per_step(spec, n, n, 1) * tsteps;
      g[mode] = fl / timer.seconds() / 1e9;
    }
    t.add_row({spec.name, Table::num(g[0]), Table::num(g[1]),
               Table::num(g[0] / g[1]) + "x"});
  }
  std::cout << "Shifts reuse ablation (folded m=2, AVX-2, single thread, "
            << n << "^2, T=" << tsteps << ")\n";
  bench::emit(t, "ablation_shifts_reuse");
  return 0;
}
