// Figure 9: multicore cache-blocking experiments over all nine Table-1
// stencils. Methods: SDSL-like (DLT layout + split tiling), Tessellation
// (split tiling + compiler vectorization), Our (register-transpose layout +
// tiling), Our (2 steps) (+ temporal folding), and the AVX-512 gain on the
// folded method. Speedups are relative to SDSL (or Tessellation where SDSL
// does not support the benchmark, as in the paper).
#include <iostream>

#include "bench_util/harness.hpp"

int main() {
  using namespace sf;
  const bool full = bench_full();
  struct M {
    const char* name;
    Method method;
    Isa isa;
  };
  const std::vector<M> methods = {
      {"sdsl", Method::DLT, Isa::Avx2},
      {"tessellation", Method::Naive, Isa::Auto},
      {"our", Method::Ours, Isa::Avx2},
      {"our-2step", Method::Ours2, Isa::Avx2},
      {"our-2step-avx512", Method::Ours2, Isa::Avx512},
  };

  Table t({"Stencil", "sdsl", "tessellation", "our", "our-2step",
           "our-2step-avx512", "speedup(our2/base)"});
  std::cout << "Figure 9: multicore cache-blocked GFLOP/s ("
            << (full ? "paper" : "fast") << " sizes, " << hardware_threads()
            << " threads)\n";
  for (const auto& spec : all_presets()) {
    std::vector<std::string> row{spec.name};
    double base = 0, our2 = 0;
    for (const auto& m : methods) {
      if (m.isa == Isa::Avx512 && !cpu_has_avx512()) {
        row.push_back("-");
        continue;
      }
      ProblemConfig cfg;
      cfg.preset = spec.id;
      cfg.method = m.method;
      cfg.isa = m.isa;
      cfg.tiled = true;
      if (full) {
        cfg.nx = spec.full_size[0];
        cfg.ny = spec.dims >= 2 ? spec.full_size[1] : 1;
        cfg.nz = spec.dims >= 3 ? spec.full_size[2] : 1;
        cfg.tsteps = static_cast<int>(spec.full_tsteps);
      }
      RunResult r = bench::measure(cfg);
      row.push_back(Table::num(r.gflops));
      if (base == 0) base = r.gflops;  // first column (sdsl) is the base
      if (m.method == Method::Ours2 && m.isa == Isa::Avx2) our2 = r.gflops;
    }
    row.push_back(Table::num(our2 / base) + "x");
    t.add_row(row);
  }
  bench::emit(t, "fig9_multicore");
  return 0;
}
