// Figure 9: multicore cache-blocking experiments over all nine Table-1
// stencils. The competitor systems are named (label, kernel string key,
// ISA) tuples resolved through the registry: SDSL-like (DLT layout + split
// tiling), Tessellation (split tiling + compiler vectorization), Our
// (register-transpose layout + tiling), Our (2 steps) (+ temporal folding),
// and the AVX-512 gain on the folded method. Speedups are relative to SDSL
// (or Tessellation where SDSL does not support the benchmark, as in the
// paper). A final "our-2step-auto" column runs the folded method under
// Tiling::Auto instead of the pinned Tiling::On, so the planner's
// cost-model decision is exercised (and visible) at these sizes: each cell
// is suffixed with the decision it took (:tiled or :untiled).
#include <iostream>

#include "bench_util/harness.hpp"

int main() {
  using namespace sf;
  const bool full = bench_full();
  const auto& methods = bench::paper_competitors();

  std::vector<std::string> header{"Stencil"};
  for (const auto& m : methods) header.push_back(m.label);
  header.push_back("our-2step-auto");
  header.push_back("speedup(our2/base)");
  Table t(header);
  std::cout << "Figure 9: multicore cache-blocked GFLOP/s ("
            << (full ? "paper" : "fast") << " sizes, " << hardware_threads()
            << " threads)\n";
  // Machine-readable trajectory: every (stencil, competitor) GFLOP/s lands
  // in BENCH_fig9.json alongside the stamped CSV (scripts/bench_summary.py
  // merges these across runs/PRs).
  std::vector<std::pair<std::string, double>> summary;
  for (const auto& spec : all_presets()) {
    std::vector<std::string> row{spec.name};
    double base = 0, our2 = 0;
    const bench::Competitor* our2_avx2 = nullptr;
    for (const auto& m : methods) {
      if (method_from_name(m.kernel) == Method::Ours2 && m.isa == Isa::Avx2)
        our2_avx2 = &m;
      if (m.isa == Isa::Avx512 && !cpu_has_avx512()) {
        row.push_back("-");
        continue;
      }
      Solver s = bench::competitor_solver(m, spec, full);
      RunResult r = bench::measure(s);
      summary.emplace_back(
          std::string(spec.name) + "." + m.label + ".gflops", r.gflops);
      row.push_back(Table::num(r.gflops));
      if (base == 0) base = r.gflops;  // first column (sdsl) is the base
      // The speedup column tracks the folded method at AVX-2, keyed on the
      // registry method rather than the display label.
      if (&m == our2_avx2) our2 = r.gflops;
    }
    // Tiling::Auto column: same kernel, but the ExecutionPlan cost model
    // decides tiled-vs-untiled instead of the paper's pinned Tiling::On.
    if (our2_avx2 != nullptr) {
      Solver s =
          bench::competitor_solver(*our2_avx2, spec, full, Tiling::Auto);
      RunResult r = bench::measure(s);
      summary.emplace_back(
          std::string(spec.name) + ".our-2step-auto.gflops", r.gflops);
      row.push_back(Table::num(r.gflops) +
                    (s.plan().tiled ? ":tiled" : ":untiled"));
    } else {
      row.push_back("-");
    }
    row.push_back(Table::num(our2 / base) + "x");
    t.add_row(row);
  }
  bench::emit(t, "fig9_multicore");
  bench::emit_bench_json("fig9", summary);
  return 0;
}
