// Ablation (paper §2.3): latency of the in-register transpose schemes.
// The paper's claim: the two-stage Permute2f128+Unpack AVX-2 transpose (8
// single-cycle instructions) beats alternatives; the AVX-512 8x8 runs in
// three stages. We compare against the shuffle-first variant, a gather-based
// transpose, and a scalar in-memory transpose, plus the cost of assembling
// one edge vector (blend + rotate, §2.2).
//
// Built against Google Benchmark when available; otherwise the built-in
// minibench fallback keeps this ablation runnable everywhere.
#ifdef SF_HAVE_GOOGLE_BENCHMARK
#include <benchmark/benchmark.h>
#else
#include "bench_util/minibench.hpp"
#endif

#include <numeric>

#include "common/cpu.hpp"
#include "kernels/tl_access.hpp"
#include "simd/transpose.hpp"
#include "simd/vecd.hpp"

namespace {

using sf::simd::vecd;

alignas(64) double g_buf[64];

void setup() { std::iota(g_buf, g_buf + 64, 1.0); }

void BM_Transpose4x4_Paper2Stage(benchmark::State& state) {
  setup();
  vecd<4> r[4];
  for (int i = 0; i < 4; ++i) r[i] = vecd<4>::load(g_buf + i * 4);
  for (auto _ : state) {
    sf::simd::transpose(r);
    benchmark::DoNotOptimize(r[0].v);
  }
}
BENCHMARK(BM_Transpose4x4_Paper2Stage);

void BM_Transpose4x4_ShuffleFirst(benchmark::State& state) {
  setup();
  vecd<4> r[4];
  for (int i = 0; i < 4; ++i) r[i] = vecd<4>::load(g_buf + i * 4);
  for (auto _ : state) {
    sf::simd::transpose_alt(r);
    benchmark::DoNotOptimize(r[0].v);
  }
}
BENCHMARK(BM_Transpose4x4_ShuffleFirst);

void BM_Transpose4x4_Gather(benchmark::State& state) {
  setup();
  vecd<4> r[4];
  for (auto _ : state) {
    sf::simd::transpose_gather(g_buf, r);
    benchmark::DoNotOptimize(r[0].v);
  }
}
BENCHMARK(BM_Transpose4x4_Gather);

void BM_Transpose4x4_ScalarInMemory(benchmark::State& state) {
  setup();
  for (auto _ : state) {
    sf::simd::transpose_scalar(g_buf, 4);
    benchmark::DoNotOptimize(g_buf[0]);
  }
}
BENCHMARK(BM_Transpose4x4_ScalarInMemory);

void BM_Transpose8x8_ThreeStage(benchmark::State& state) {
  if (!sf::cpu_has_avx512()) {
    state.SkipWithError("no AVX-512");
    return;
  }
  setup();
  vecd<8> r[8];
  for (int i = 0; i < 8; ++i) r[i] = vecd<8>::load(g_buf + i * 8);
  for (auto _ : state) {
    sf::simd::transpose(r);
    benchmark::DoNotOptimize(r[0].v);
  }
}
BENCHMARK(BM_Transpose8x8_ThreeStage);

void BM_EdgeVectorAssembly(benchmark::State& state) {
  // One blend + one rotate: the §2.2 cost of each vector-set edge vector.
  setup();
  vecd<4> cur = vecd<4>::load(g_buf);
  vecd<4> prev = vecd<4>::load(g_buf + 4);
  for (auto _ : state) {
    auto v = sf::simd::rotate_r1(sf::simd::blend_last(cur, prev));
    benchmark::DoNotOptimize(v.v);
  }
}
BENCHMARK(BM_EdgeVectorAssembly);

void BM_UnalignedLoadPair(benchmark::State& state) {
  // The multiple-loads alternative for the same edge vector.
  setup();
  for (auto _ : state) {
    auto v = vecd<4>::loadu(g_buf + 3);
    benchmark::DoNotOptimize(v.v);
  }
}
BENCHMARK(BM_UnalignedLoadPair);

}  // namespace

BENCHMARK_MAIN();
