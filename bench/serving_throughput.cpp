// Serving throughput: batched dispatch vs. one-at-a-time for small grids.
//
// A serving deployment sees many concurrent tenants each advancing a *small*
// grid — individually too little work to amortize a pool dispatch. The
// sf::Server front end batches same-plan requests so one dispatch advances
// the whole group (see docs/SERVING.md). This harness runs N closed-loop
// synthetic clients against three configurations of the same Heat2D 64x64 /
// 8-step request:
//
//   direct   — no serving layer: every client calls advance() itself
//              (concurrent calls serialize on the shared pool's dispatch).
//   serve-1  — sf::Server with max_batch = 1: the serving layer's queueing
//              without its batching (the one-at-a-time straw man).
//   batched  — sf::Server with max_batch = 64: same-plan requests drained
//              in one round execute as one advance_batch() dispatch.
//
// Reported per (mode, clients) point: client-observed p50/p99 latency and
// aggregate throughput in GFLOP/s. The acceptance criterion is batched
// beating one-at-a-time on aggregate throughput once clients contend.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util/harness.hpp"
#include "common/timing.hpp"
#include "core/engine.hpp"
#include "grid/grid_utils.hpp"
#include "serving/server.hpp"
#include "telemetry/telemetry.hpp"

namespace sf::bench {
namespace {

constexpr long kNx = 64, kNy = 64;
constexpr int kSteps = 8;

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t i =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[i];
}

struct LoadPoint {
  std::vector<double> latencies;  // seconds, one per request
  double wall = 0;                // seconds for the whole load
  long requests = 0;
};

// Histogram delta between two telemetry snapshots — isolates one load
// point's observations from the process-lifetime totals.
telemetry::HistogramSample hist_delta(const telemetry::Snapshot& before,
                                      const telemetry::Snapshot& after,
                                      const std::string& name) {
  telemetry::HistogramSample d;
  d.name = name;
  d.buckets.fill(0);
  const telemetry::HistogramSample* a = after.find_histogram(name);
  if (a == nullptr) return d;
  d = *a;
  if (const telemetry::HistogramSample* b = before.find_histogram(name)) {
    d.count -= b->count;
    d.sum -= b->sum;
    for (std::size_t i = 0; i < d.buckets.size(); ++i)
      d.buckets[i] -= b->buckets[i];
  }
  return d;
}

// Runs `nclients` closed-loop clients, each issuing `reqs` requests through
// `issue(client, request_index)` which must block until the request
// completed and return its latency in seconds.
template <class Issue>
LoadPoint run_clients(int nclients, long reqs, const Issue& issue) {
  LoadPoint out;
  std::vector<std::vector<double>> lat(nclients);
  Timer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < nclients; ++c) {
    clients.emplace_back([&, c] {
      lat[c].reserve(reqs);
      for (long r = 0; r < reqs; ++r) lat[c].push_back(issue(c, r));
    });
  }
  for (auto& t : clients) t.join();
  out.wall = wall.seconds();
  for (auto& l : lat) {
    out.requests += static_cast<long>(l.size());
    out.latencies.insert(out.latencies.end(), l.begin(), l.end());
  }
  return out;
}

void sweep() {
  const bool full = bench_full();
  const long reqs = env_long("SF_BENCH_REPS", full ? 400 : 80);
  const int max_clients = full ? 16 : 8;

  const StencilSpec& spec = preset(Preset::Heat2D);
  ExecOptions opts;
  opts.tiling = Tiling::On;
  opts.tsteps = kSteps;
  PreparedStencil ps =
      Engine::instance().prepare(spec, Extents{kNx, kNy}, opts);
  const int h = ps.halo();
  const double flops_per_req = flops_per_step(spec, kNx, kNy, 1) * kSteps;

  // One grid pair per client slot, reused across requests (a closed-loop
  // client never has two requests in flight on the same buffers).
  std::vector<Grid2D> as, bs;
  as.reserve(max_clients);
  bs.reserve(max_clients);
  for (int c = 0; c < max_clients; ++c) {
    as.emplace_back(static_cast<int>(kNy), static_cast<int>(kNx), h, false);
    bs.emplace_back(static_cast<int>(kNy), static_cast<int>(kNx), h);
    fill_random(as.back(), 42 + static_cast<std::uint64_t>(c));
  }

  Table t({"mode", "clients", "requests", "p50 ms", "p99 ms", "wall s",
           "GFLOP/s", "req/s"});
  std::vector<std::pair<std::string, double>> summary;  // BENCH_serving.json
  const auto add = [&](const char* mode, int nclients, LoadPoint lp) {
    const double p50 = percentile(lp.latencies, 0.50) * 1e3;
    const double p99 = percentile(lp.latencies, 0.99) * 1e3;
    const double gflops =
        flops_per_req * static_cast<double>(lp.requests) / lp.wall / 1e9;
    t.add_row({mode, std::to_string(nclients), std::to_string(lp.requests),
               Table::num(p50, 3), Table::num(p99, 3), Table::num(lp.wall, 2),
               Table::num(gflops, 2),
               Table::num(static_cast<double>(lp.requests) / lp.wall, 0)});
    const std::string key = std::string(mode) + ".c" + std::to_string(nclients);
    summary.emplace_back(key + ".gflops", gflops);
    summary.emplace_back(key + ".p50_ms", p50);
    summary.emplace_back(key + ".p99_ms", p99);
    summary.emplace_back(key + ".req_s",
                         static_cast<double>(lp.requests) / lp.wall);
  };

  // Server-side telemetry per batched load point (SF_METRICS=1): queue and
  // exec latency plus batch-size/queue-depth percentiles, as snapshot
  // deltas so each row isolates its own load point. Emitted as the
  // telemetry_* plot family ("p50/p99 over the load sweep").
  const bool telem = sf::telemetry::metrics_enabled();
  Table tt({"clients", "queue_p50_ms", "queue_p99_ms", "exec_p50_ms",
            "exec_p99_ms", "batch_p50", "batch_p99", "depth_p50",
            "depth_p99"});
  const auto add_telemetry = [&](int nclients,
                                 const telemetry::Snapshot& before) {
    const telemetry::Snapshot after = telemetry::snapshot();
    const auto queue = hist_delta(before, after, "serving.queue_us");
    const auto exec = hist_delta(before, after, "serving.exec_us");
    const auto batch = hist_delta(before, after, "serving.batch_size");
    const auto depth = hist_delta(before, after, "serving.queue_depth");
    tt.add_row({std::to_string(nclients),
                Table::num(queue.percentile(50) / 1e3, 3),
                Table::num(queue.percentile(99) / 1e3, 3),
                Table::num(exec.percentile(50) / 1e3, 3),
                Table::num(exec.percentile(99) / 1e3, 3),
                Table::num(batch.percentile(50), 1),
                Table::num(batch.percentile(99), 1),
                Table::num(depth.percentile(50), 1),
                Table::num(depth.percentile(99), 1)});
  };

  for (int nclients = 1; nclients <= max_clients; nclients *= 2) {
    // direct: clients call the prepared handle themselves.
    add("direct", nclients,
        run_clients(nclients, reqs, [&](int c, long) {
          Timer timer;
          ps.advance(as[c].view(), bs[c].view(), kSteps);
          do_not_optimize(as[c].data());
          return timer.seconds();
        }));

    // serve-1: the serving layer with batching disabled.
    {
      ServerOptions so;
      so.queue_capacity = 4096;
      so.max_batch = 1;
      Server server(so);
      add("serve-1", nclients,
          run_clients(nclients, reqs, [&](int c, long) {
            Timer timer;
            server
                .submit("client-" + std::to_string(c), ps, as[c].view(),
                        bs[c].view(), kSteps)
                .wait();
            return timer.seconds();
          }));
    }

    // batched: same-plan requests drained together run as one dispatch.
    {
      const telemetry::Snapshot before = telemetry::snapshot();
      ServerOptions so;
      so.queue_capacity = 4096;
      so.max_batch = 64;
      Server server(so);
      add("batched", nclients,
          run_clients(nclients, reqs, [&](int c, long) {
            Timer timer;
            server
                .submit("client-" + std::to_string(c), ps, as[c].view(),
                        bs[c].view(), kSteps)
                .wait();
            return timer.seconds();
          }));
      if (telem) add_telemetry(nclients, before);
    }
  }
  emit(t, "serving_heat2d");
  if (telem) {
    emit(tt, "telemetry_latency_heat2d");
    // Full queue-depth/batch-size/latency histograms + counters, as the
    // telemetry_* CSV family (plot_figures.py renders the histograms).
    telemetry::write_reports(bench_out_dir());
    std::printf("%s\n", telemetry::text_dump().c_str());
  } else {
    std::printf(
        "(SF_METRICS unset: no server-side queue/batch telemetry; rerun "
        "with SF_METRICS=1 for histograms)\n");
  }
  emit_bench_json("serving", summary);
}

}  // namespace
}  // namespace sf::bench

int main() {
  std::printf(
      "Serving throughput: batched vs. one-at-a-time dispatch of small "
      "Heat2D %ldx%ld / %d-step requests\n(closed-loop clients; latency is "
      "client-observed submit-to-completion)\n\n",
      sf::bench::kNx, sf::bench::kNy, sf::bench::kSteps);
  sf::bench::sweep();
  return 0;
}
