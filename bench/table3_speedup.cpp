// Table 3: speedup over a single core at the machine's full thread count,
// per stencil and method (the paper reports 36-core speedups; we use all
// available hardware threads and report the count).
#include <iostream>

#include "bench_util/harness.hpp"

int main() {
  using namespace sf;
  const bool full = bench_full();
  const int maxthreads = hardware_threads();

  struct M {
    const char* name;
    Method method;
    Isa isa;
  };
  const std::vector<M> methods = {
      {"sdsl", Method::DLT, Isa::Avx2},
      {"tessellation", Method::Naive, Isa::Auto},
      {"our", Method::Ours, Isa::Avx2},
      {"our-2step", Method::Ours2, Isa::Avx2},
      {"our-2step-avx512", Method::Ours2, Isa::Avx512},
  };

  Table t({"Method", "1D-Heat", "1D5P", "APOP", "2D-Heat", "2D9P",
           "GameOfLife", "GB", "3D-Heat", "3D27P"});
  std::cout << "Table 3: speedup over single core at " << maxthreads
            << " threads\n";
  for (const auto& m : methods) {
    std::vector<std::string> row{m.name};
    for (const auto& spec : all_presets()) {
      if (m.isa == Isa::Avx512 && !cpu_has_avx512()) {
        row.push_back("-");
        continue;
      }
      double g[2] = {0, 0};
      for (int i = 0; i < 2; ++i) {
        ProblemConfig cfg;
        cfg.preset = spec.id;
        cfg.method = m.method;
        cfg.isa = m.isa;
        cfg.tiled = true;
        cfg.tile_opts.threads = i == 0 ? 1 : maxthreads;
        if (full) {
          cfg.nx = spec.full_size[0];
          cfg.ny = spec.dims >= 2 ? spec.full_size[1] : 1;
          cfg.nz = spec.dims >= 3 ? spec.full_size[2] : 1;
          cfg.tsteps = static_cast<int>(spec.full_tsteps);
        }
        cfg.tile_opts.method = cfg.method;
        cfg.tile_opts.isa = cfg.isa;
        g[i] = run_problem(cfg).gflops;
      }
      row.push_back(Table::num(g[1] / g[0], 1) + "x");
    }
    t.add_row(row);
  }
  bench::emit(t, "table3_speedup");
  return 0;
}
