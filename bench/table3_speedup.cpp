// Table 3: speedup over a single core at the machine's full thread count,
// per stencil and method (the paper reports 36-core speedups; we use all
// available hardware threads and report the count).
//
// `--pinned` (or SF_AFFINITY=compact|scatter) runs both ends of the ratio
// through the topology-pinned WorkerPool with first-touch workspaces (see
// fig10_scalability.cpp).
#include <cstring>
#include <iostream>

#include "bench_util/harness.hpp"

int main(int argc, char** argv) {
  using namespace sf;
  const bool full = bench_full();
  Affinity aff = env_affinity();
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--pinned") == 0 && aff == Affinity::None)
      aff = Affinity::Compact;
  const int maxthreads = hardware_threads();

  const auto& methods = bench::paper_competitors();

  std::vector<std::string> header{"Method"};
  for (const auto& spec : all_presets()) header.push_back(spec.name);
  Table t(header);
  std::cout << "Table 3: speedup over single core at " << maxthreads
            << " threads"
            << (aff != Affinity::None
                    ? std::string(" [") + affinity_name(aff) + "]"
                    : "")
            << "\n";
  for (const auto& m : methods) {
    std::vector<std::string> row{m.label};
    for (const auto& spec : all_presets()) {
      if (m.isa == Isa::Avx512 && !cpu_has_avx512()) {
        row.push_back("-");
        continue;
      }
      double g[2] = {0, 0};
      for (int i = 0; i < 2; ++i) {
        Solver s = bench::competitor_solver(m, spec, full);
        s.threads(i == 0 ? 1 : maxthreads).affinity(aff);
        g[i] = s.run().gflops;
      }
      row.push_back(Table::num(g[1] / g[0], 1) + "x");
    }
    t.add_row(row);
  }
  bench::emit(t, "table3_speedup");
  return 0;
}
