// Table 3: speedup over a single core at the machine's full thread count,
// per stencil and method (the paper reports 36-core speedups; we use all
// available hardware threads and report the count).
#include <iostream>

#include "bench_util/harness.hpp"

int main() {
  using namespace sf;
  const bool full = bench_full();
  const int maxthreads = hardware_threads();

  const auto& methods = bench::paper_competitors();

  std::vector<std::string> header{"Method"};
  for (const auto& spec : all_presets()) header.push_back(spec.name);
  Table t(header);
  std::cout << "Table 3: speedup over single core at " << maxthreads
            << " threads\n";
  for (const auto& m : methods) {
    std::vector<std::string> row{m.label};
    for (const auto& spec : all_presets()) {
      if (m.isa == Isa::Avx512 && !cpu_has_avx512()) {
        row.push_back("-");
        continue;
      }
      double g[2] = {0, 0};
      for (int i = 0; i < 2; ++i) {
        Solver s = bench::competitor_solver(m, spec, full);
        s.threads(i == 0 ? 1 : maxthreads);
        g[i] = s.run().gflops;
      }
      row.push_back(Table::num(g[1] / g[0], 1) + "x");
    }
    t.add_row(row);
  }
  bench::emit(t, "table3_speedup");
  return 0;
}
