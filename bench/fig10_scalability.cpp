// Figure 10: scalability of the tiled methods from 1 core up to the
// machine's hardware threads, for all nine benchmarks. One table per
// stencil, one row per core count, matching the paper's nine panels.
//
// `--pinned` (or SF_AFFINITY=compact|scatter) runs every configuration
// through the topology-pinned WorkerPool with first-touch workspaces —
// each worker's tiles placed on its own NUMA node — which is the setup
// under which the paper's near-linear scaling reproduces on multi-node
// machines. Default remains unpinned (identical results; placement only
// affects locality).
//
// The pinned sweep additionally emits an explicit barrier-vs-pipelined
// A/B of the flagship tiled method: "our-2step(barrier)" runs the
// historical two-global-barriers-per-block wedge schedule
// (Pipeline::Off), "our-2step(pipelined)" the point-to-point NeighborSync
// schedule (Pipeline::On) — bitwise-identical results, so the column pair
// isolates pure synchronization cost at each core count.
#include <cstring>
#include <iostream>

#include "bench_util/harness.hpp"

int main(int argc, char** argv) {
  using namespace sf;
  const bool full = bench_full();
  Affinity aff = env_affinity();
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--pinned") == 0 && aff == Affinity::None)
      aff = Affinity::Compact;
  const int maxthreads = hardware_threads();
  std::vector<int> cores;
  for (int c = 1; c < maxthreads; c *= 2) cores.push_back(c);
  cores.push_back(maxthreads);

  const auto& methods = bench::paper_competitors();

  std::vector<std::string> header{"cores", "affinity"};
  for (const auto& m : methods) header.push_back(m.label);
  // The pinned high-thread sweep is where barrier cost shows; give it the
  // explicit schedule A/B columns.
  const bool schedule_ab = aff != Affinity::None;
  const bench::Competitor flagship{"our-2step", "ours-2step", Isa::Avx2};
  if (schedule_ab) {
    header.push_back("our-2step(barrier)");
    header.push_back("our-2step(pipelined)");
  }

  // Machine-readable trajectory: every (stencil, method, cores) GFLOP/s
  // lands in BENCH_fig10.json alongside the CSVs (scripts/bench_summary.py
  // merges these across runs/PRs).
  std::vector<std::pair<std::string, double>> summary;
  for (const auto& spec : all_presets()) {
    Table t(header);
    std::cout << "Figure 10 (" << spec.name << "): GFLOP/s vs cores"
              << (aff != Affinity::None
                      ? std::string(" [") + affinity_name(aff) + "]"
                      : "")
              << "\n";
    for (int c : cores) {
      std::vector<std::string> row{std::to_string(c), affinity_name(aff)};
      const auto record = [&](const std::string& label, double gflops) {
        summary.emplace_back(std::string(spec.name) + "." + label + ".c" +
                                 std::to_string(c),
                             gflops);
      };
      for (const auto& m : methods) {
        if (m.isa == Isa::Avx512 && !cpu_has_avx512()) {
          row.push_back("-");
          continue;
        }
        Solver s = bench::competitor_solver(m, spec, full);
        s.threads(c).affinity(aff);
        const double gflops = s.run().gflops;
        record(m.label, gflops);
        row.push_back(Table::num(gflops));
      }
      if (schedule_ab) {
        for (Pipeline pl : {Pipeline::Off, Pipeline::On}) {
          Solver s = bench::competitor_solver(flagship, spec, full);
          s.threads(c).affinity(aff).pipeline(pl);
          const double gflops = s.run().gflops;
          record(pl == Pipeline::Off ? "our-2step-barrier"
                                     : "our-2step-pipelined",
                 gflops);
          row.push_back(Table::num(gflops));
        }
      }
      t.add_row(row);
    }
    bench::emit(t, std::string("fig10_") + spec.name);
  }
  bench::emit_bench_json("fig10", summary);
  return 0;
}
