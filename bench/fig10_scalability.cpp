// Figure 10: scalability of the tiled methods from 1 core up to the
// machine's hardware threads, for all nine benchmarks. One table per
// stencil, one row per core count, matching the paper's nine panels.
#include <iostream>

#include "bench_util/harness.hpp"

int main() {
  using namespace sf;
  const bool full = bench_full();
  const int maxthreads = hardware_threads();
  std::vector<int> cores;
  for (int c = 1; c < maxthreads; c *= 2) cores.push_back(c);
  cores.push_back(maxthreads);

  const auto& methods = bench::paper_competitors();

  std::vector<std::string> header{"cores"};
  for (const auto& m : methods) header.push_back(m.label);

  for (const auto& spec : all_presets()) {
    Table t(header);
    std::cout << "Figure 10 (" << spec.name << "): GFLOP/s vs cores\n";
    for (int c : cores) {
      std::vector<std::string> row{std::to_string(c)};
      for (const auto& m : methods) {
        if (m.isa == Isa::Avx512 && !cpu_has_avx512()) {
          row.push_back("-");
          continue;
        }
        Solver s = bench::competitor_solver(m, spec, full);
        s.threads(c);
        row.push_back(Table::num(s.run().gflops));
      }
      t.add_row(row);
    }
    bench::emit(t, std::string("fig10_") + spec.name);
  }
  return 0;
}
