// Figure 10: scalability of the tiled methods from 1 core up to the
// machine's hardware threads, for all nine benchmarks. One table per
// stencil, one row per core count, matching the paper's nine panels.
#include <iostream>

#include "bench_util/harness.hpp"

int main() {
  using namespace sf;
  const bool full = bench_full();
  const int maxthreads = hardware_threads();
  std::vector<int> cores;
  for (int c = 1; c < maxthreads; c *= 2) cores.push_back(c);
  cores.push_back(maxthreads);

  struct M {
    const char* name;
    Method method;
    Isa isa;
  };
  const std::vector<M> methods = {
      {"sdsl", Method::DLT, Isa::Avx2},
      {"tessellation", Method::Naive, Isa::Auto},
      {"our", Method::Ours, Isa::Avx2},
      {"our-2step", Method::Ours2, Isa::Avx2},
      {"our-2step-avx512", Method::Ours2, Isa::Avx512},
  };

  for (const auto& spec : all_presets()) {
    Table t({"cores", "sdsl", "tessellation", "our", "our-2step",
             "our-2step-avx512"});
    std::cout << "Figure 10 (" << spec.name << "): GFLOP/s vs cores\n";
    for (int c : cores) {
      std::vector<std::string> row{std::to_string(c)};
      for (const auto& m : methods) {
        if (m.isa == Isa::Avx512 && !cpu_has_avx512()) {
          row.push_back("-");
          continue;
        }
        ProblemConfig cfg;
        cfg.preset = spec.id;
        cfg.method = m.method;
        cfg.isa = m.isa;
        cfg.tiled = true;
        cfg.tile_opts.threads = c;
        if (full) {
          cfg.nx = spec.full_size[0];
          cfg.ny = spec.dims >= 2 ? spec.full_size[1] : 1;
          cfg.nz = spec.dims >= 3 ? spec.full_size[2] : 1;
          cfg.tsteps = static_cast<int>(spec.full_tsteps);
        }
        cfg.tile_opts.method = cfg.method;
        cfg.tile_opts.isa = cfg.isa;
        row.push_back(Table::num(run_problem(cfg).gflops));
      }
      t.add_row(row);
    }
    bench::emit(t, std::string("fig10_") + spec.name);
  }
  return 0;
}
