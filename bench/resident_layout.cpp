// Transposed-resident prepared execution vs the per-call involution on
// short advance() streams — the scenario the resident-layout API targets.
//
// The register-transpose kernels (Method::Ours) historically transformed
// both ping-pong buffers into the transpose layout on entry and back on
// exit of *every* run() call. For a long horizon that cost amortizes; for a
// streaming caller issuing many short advance() calls it dominates. This
// bench prepares one handle per mode and times a stream of advance(steps)
// calls over the same problem:
//
//   per-call  — natural-layout views; the kernel pays 4 full-grid
//               transform passes (a+b, in+out) per advance;
//   resident  — views transformed once via to_resident_layout and tagged
//               Layout::Transposed; every advance skips the involution;
//   +clean    — resident plus ExecOptions::halo_policy = Clean, which also
//               skips the per-call O(surface) halo re-sync (valid here:
//               kernels never write halos, so b's halo stays equal to a's
//               after the initial copy).
//
// The one-time transform in/out is charged to the resident modes' totals,
// so the reported win is end-to-end, not just the steady state.
#include <iostream>

#include "bench_util/harness.hpp"
#include "common/timing.hpp"
#include "grid/grid_utils.hpp"

namespace {

using namespace sf;

struct StreamResult {
  double seconds = 0;
  double gflops = 0;
};

/// Times `calls` advance(steps) calls through `ps` on fresh grids of the
/// prepared shape, in the given mode. Dimension-generic over Grid type.
template <class Grid, class MakeGrid>
StreamResult time_stream(const PreparedStencil& ps, MakeGrid make, int calls,
                         int steps, bool resident) {
  Grid a = make();
  Grid b = make();
  fill_random(a, 42);
  copy(a, b);

  auto av = a.view();
  auto bv = b.view();
  Timer timer;
  if (resident) {
    av = to_resident_layout(ps, av);
    bv = to_resident_layout(ps, bv);
  }
  for (int c = 0; c < calls; ++c) ps.advance(av, bv, steps);
  if (resident) {
    av = to_natural_layout(ps, av);
    bv = to_natural_layout(ps, bv);
  }
  do_not_optimize(a.data());
  StreamResult r;
  r.seconds = timer.seconds();
  r.gflops = flops_per_step(ps.spec(), ps.nx(), ps.ny(), ps.nz()) *
             static_cast<double>(calls) * steps / r.seconds / 1e9;
  return r;
}

/// One table row: per-call vs resident vs resident+clean for one preset.
void run_row(Table& t, Preset p, int calls, int steps) {
  const StencilSpec spec = preset(p);

  ExecOptions opts;
  opts.method = Method::Ours;  // the register-transpose kernel
  opts.tiling = Tiling::Off;   // short advances never amortize stages
  opts.tsteps = steps;
  PreparedStencil percall = Engine::instance().prepare(spec, {}, opts);
  if (percall.preferred_layout() != Layout::Transposed) return;  // no story

  opts.layout = Layout::Transposed;
  PreparedStencil res = Engine::instance().prepare(spec, {}, opts);
  opts.halo_policy = HaloPolicy::Clean;
  PreparedStencil clean = Engine::instance().prepare(spec, {}, opts);

  StreamResult base, resi, rescl;
  if (spec.dims == 1) {
    const int nx = static_cast<int>(percall.nx());
    auto make = [&] { return Grid1D(nx, percall.halo()); };
    base = time_stream<Grid1D>(percall, make, calls, steps, false);
    resi = time_stream<Grid1D>(res, make, calls, steps, true);
    rescl = time_stream<Grid1D>(clean, make, calls, steps, true);
  } else if (spec.dims == 2) {
    const int nx = static_cast<int>(percall.nx());
    const int ny = static_cast<int>(percall.ny());
    auto make = [&] { return Grid2D(ny, nx, percall.halo()); };
    base = time_stream<Grid2D>(percall, make, calls, steps, false);
    resi = time_stream<Grid2D>(res, make, calls, steps, true);
    rescl = time_stream<Grid2D>(clean, make, calls, steps, true);
  } else {
    const int nx = static_cast<int>(percall.nx());
    const int ny = static_cast<int>(percall.ny());
    const int nz = static_cast<int>(percall.nz());
    auto make = [&] { return Grid3D(nz, ny, nx, percall.halo()); };
    base = time_stream<Grid3D>(percall, make, calls, steps, false);
    resi = time_stream<Grid3D>(res, make, calls, steps, true);
    rescl = time_stream<Grid3D>(clean, make, calls, steps, true);
  }

  t.add_row({spec.name, std::to_string(spec.dims) + "D",
             std::to_string(calls) + "x" + std::to_string(steps),
             Table::num(base.gflops), Table::num(resi.gflops),
             Table::num(rescl.gflops), Table::num(resi.gflops / base.gflops) + "x",
             Table::num(rescl.gflops / base.gflops) + "x"});
}

}  // namespace

int main() {
  using namespace sf;
  const bool full = bench_full();
  // Streams of single-step advances: the worst case for the per-call
  // transform, and exactly the streaming pattern the Engine API targets.
  const int calls = full ? 400 : 100;
  const int steps = 1;

  Table t({"Stencil", "dims", "stream", "per-call GF/s", "resident GF/s",
           "resident+clean GF/s", "resident/x", "clean/x"});
  std::cout << "Resident-layout advance() streams: transposed-resident "
               "execution vs per-call involution (method=ours, untiled, "
            << calls << " advance(" << steps << ") calls)\n";
  for (Preset p : {Preset::Heat1D, Preset::P1D5, Preset::Heat2D,
                   Preset::Box2D9, Preset::Life, Preset::GB, Preset::Heat3D,
                   Preset::Box3D27}) {
    run_row(t, p, calls, steps);
  }
  bench::emit(t, "resident_layout");
  return 0;
}
