// Repeated-run overhead: the prepared-execution path vs. the legacy
// one-shot Solver path.
//
// A production service runs the *same* stencil configuration over and over
// on live data. The legacy pattern pays per-call setup on every request —
// a fresh Solver re-resolves (a plan-cache consultation now that Solver
// itself sits on the Engine; a full re-plan before this PR), re-allocates
// its workspace, and re-initializes it. The prepared pattern pays
// Engine::prepare() once and then executes zero-copy on caller-owned
// buffers. Both execute the identical kernel, so the per-call difference
// is pure setup overhead — the quantity ISSUE 3's acceptance criterion
// asks to see below the legacy path.
#include <cstdio>

#include "bench_util/harness.hpp"
#include "common/timing.hpp"
#include "core/engine.hpp"
#include "grid/grid_utils.hpp"

namespace sf::bench {
namespace {

struct Config {
  Preset preset;
  long nx, ny;
  int tsteps;
};

void sweep() {
  const bool full = bench_full();
  const long reps = env_long("SF_BENCH_REPS", full ? 200 : 50);
  const std::vector<Config> configs = {
      {Preset::Heat1D, full ? 1000000L : 100000L, 1, 2},
      {Preset::Heat2D, full ? 2048L : 384L, full ? 2048L : 384L, 2},
      {Preset::Heat3D, full ? 128L : 48L, full ? 128L : 48L, 2},
  };

  Table t({"stencil", "calls", "legacy ms/call", "prepared ms/call",
           "overhead saved ms", "speedup"});
  for (const Config& c : configs) {
    const StencilSpec& spec = preset(c.preset);
    const long ny = spec.dims >= 2 ? c.ny : 1;
    const long nz = spec.dims >= 3 ? c.ny : 1;

    // Legacy: a fresh Solver per call — resolves, re-allocates its
    // workspace and re-initializes it every time.
    Timer legacy_timer;
    for (long i = 0; i < reps; ++i) {
      Solver s = Solver::make(c.preset);
      s.size(c.nx, ny, nz).steps(c.tsteps).tiling(Tiling::Off);
      s.run();
      do_not_optimize(&s.workspace());
    }
    const double legacy_ms = legacy_timer.seconds() * 1e3 / reps;

    // Prepared: one prepare, then zero-copy runs on caller-owned grids.
    ExecOptions opts;
    opts.tiling = Tiling::Off;
    opts.tsteps = c.tsteps;
    PreparedStencil ps = Engine::instance().prepare(
        spec, Extents{c.nx, ny, nz}, opts);
    const int h = ps.halo();
    double prepared_ms = 0;
    if (spec.dims == 1) {
      Grid1D a(static_cast<int>(c.nx), h), b(static_cast<int>(c.nx), h);
      fill_random(a, 42);
      copy(a, b);
      Timer timer;
      for (long i = 0; i < reps; ++i)
        ps.run(a.view(), b.view(), c.tsteps);
      do_not_optimize(a.data());
      prepared_ms = timer.seconds() * 1e3 / reps;
    } else if (spec.dims == 2) {
      Grid2D a(static_cast<int>(ny), static_cast<int>(c.nx), h);
      Grid2D b(static_cast<int>(ny), static_cast<int>(c.nx), h);
      fill_random(a, 42);
      copy(a, b);
      Timer timer;
      for (long i = 0; i < reps; ++i)
        ps.run(a.view(), b.view(), c.tsteps);
      do_not_optimize(a.data());
      prepared_ms = timer.seconds() * 1e3 / reps;
    } else {
      Grid3D a(static_cast<int>(nz), static_cast<int>(ny),
               static_cast<int>(c.nx), h);
      Grid3D b(static_cast<int>(nz), static_cast<int>(ny),
               static_cast<int>(c.nx), h);
      fill_random(a, 42);
      copy(a, b);
      Timer timer;
      for (long i = 0; i < reps; ++i)
        ps.run(a.view(), b.view(), c.tsteps);
      do_not_optimize(a.data());
      prepared_ms = timer.seconds() * 1e3 / reps;
    }

    t.add_row({spec.name, std::to_string(reps), Table::num(legacy_ms, 3),
               Table::num(prepared_ms, 3),
               Table::num(legacy_ms - prepared_ms, 3),
               Table::num(legacy_ms / prepared_ms, 2)});
  }
  emit(t, "prepared_overhead");
}

}  // namespace
}  // namespace sf::bench

int main() {
  std::printf("Prepared-execution overhead: prepare-once + zero-copy runs "
              "vs. one-shot Solver per call\n(identical kernels; the gap is "
              "per-call setup: resolve + alloc + init)\n\n");
  sf::bench::sweep();
  return 0;
}
