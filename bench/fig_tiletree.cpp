// Tile-tree A/B: flat (one wedge tile per worker) vs hierarchical
// (SF_TILE_LEVELS=3: the wedge tile capped to a worker's LLC share and
// rounded to the kernel's register block) on LLC-exceeding 3-D grids.
//
// The geometry is derived from the *detected* machine rather than fixed:
// the plane extent is sized so the mid-level cap lands at a tile whose
// time block still covers the whole bench horizon — tree and flat then
// share one super-step block structure and the A/B isolates the tree
// walk's traversal/residency effect instead of block fragmentation. nz is
// large enough that the flat per-worker shard streams through the LLC
// between the up and down sweeps while the capped tile's fused up+down
// walk consumes its flanks while resident. Expected shape: tree >= flat
// on bandwidth-bound machines, parity on compute-bound ones (the header
// reports the machine's measured cache sensitivity); results are bitwise
// identical (checked here, not just asserted in tests).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util/harness.hpp"
#include "grid/grid_utils.hpp"
#include "runtime/topology.hpp"

int main() {
  using namespace sf;
  const bool full = bench_full();
  const long llc = llc_bytes();
  // The tree only engages on parallel plans (serial flat plans already
  // LLC-cap their single tile), so a 1-core machine runs the A/B with two
  // oversubscribed workers: what it measures — cache residency of the
  // per-worker tile walk — does not depend on true parallelism.
  const int threads = std::max(2, hardware_threads());
  const int nodes = std::max(1, Topology::system().numa_nodes());
  const int wpn = (threads + nodes - 1) / nodes;

  // ours-2step on Heat3D: fold depth 2 x radius 1.
  const int slope = 2;
  const int tsteps = full ? 64 : 32;
  // Aim the planner's mid-level cap (llc / workers-per-node / 3*slice) at
  // the smallest tile whose block height covers the whole horizon
  // (H >= tsteps/2  <=>  tile >= slope*(tsteps+2)), plus margin: slice =
  // 8*nx*ny bytes, so side follows from the cap target.
  const long cap_planes = slope * (tsteps + 2L) + 12;
  const long plane_pts =
      std::max(1L, llc / (std::max(1, wpn) * 3L * cap_planes * 8L));
  const long side = std::clamp(
      static_cast<long>(std::sqrt(static_cast<double>(plane_pts))), 64L,
      512L);
  // Flat shard (nz / threads) must comfortably exceed the cap so the tree
  // engages and the flat walk's up->down reuse distance spans many tiles.
  const long nz0 = std::max(3L * threads * cap_planes, 384L);
  std::vector<long> depths{nz0, 2 * nz0};
  if (full) depths.push_back(4 * nz0);

  auto solver_at = [&](long nz, int levels) {
    return Solver::make(Preset::Heat3D)
        .size(side, side, nz)
        .steps(tsteps)
        .method(Method::Ours2)
        .isa(Isa::Auto)
        .tiling(Tiling::On)
        .threads(threads)
        .levels(levels);
  };

  // Preflight: how cache-sensitive is this machine at all? Same kernel,
  // untiled, cache-resident vs LLC-exceeding working set. Near 1.0 means
  // the box is compute-bound (common on 1-2 vCPU guests) and the honest
  // A/B expectation is parity, not a win.
  const double sens = [&] {
    auto probe = [&](long n3) {
      Solver s = Solver::make(Preset::Heat3D)
                     .size(n3, n3, n3)
                     .steps(8)
                     .method(Method::Ours2)
                     .isa(Isa::Auto)
                     .tiling(Tiling::Off);
      return bench::measure(s).gflops;
    };
    const double hot = probe(64);
    const double cold = probe(
        std::min(side, static_cast<long>(std::cbrt(
                           static_cast<double>(llc) / 16.0 * 4.0))));
    return cold > 0 ? hot / cold : 1.0;
  }();

  Table t({"nz", "working_set_MB", "flat_gflops", "tree_gflops", "speedup",
           "levels", "flat_tile", "tree_tile"});
  std::cout << "Tile-tree A/B (Heat3D " << side << "x" << side << "xNZ, T = "
            << tsteps << ", " << threads << " threads, LLC = "
            << llc / (1 << 20) << " MB, cache sensitivity = "
            << Table::num(sens) << "x"
            << (sens < 1.05 ? " - compute-bound: expect parity" : "")
            << ")\n";
  std::vector<std::pair<std::string, double>> summary;
  bool mismatch = false;
  for (long nz : depths) {
    Solver flat = solver_at(nz, 1);
    Solver tree = solver_at(nz, 3);
    const RunResult rf = bench::measure(flat);
    const RunResult rt = bench::measure(tree);
    // Same seed; the tree's capped tile is a different wedge split, so
    // flank corrections may round differently — the runs must agree to
    // verification tolerance (bitwise identity across depths at *fixed*
    // geometry is asserted by the tiling fuzz tests).
    const double diff =
        max_abs_diff(*flat.workspace().a3, *tree.workspace().a3);
    if (diff > 1e-11 * std::max(1.0, max_abs(*flat.workspace().a3))) {
      std::cerr << "MISMATCH: tree result differs from flat by " << diff
                << " at nz = " << nz << "\n";
      mismatch = true;
    }
    const double speedup = rf.gflops > 0 ? rt.gflops / rf.gflops : 0;
    t.add_row({std::to_string(nz),
               Table::num(static_cast<double>(
                              working_set_bytes(side, side, nz)) /
                          (1 << 20)),
               Table::num(rf.gflops), Table::num(rt.gflops),
               Table::num(speedup) + "x",
               std::to_string(tree.plan().tile.levels),
               std::to_string(flat.plan().tile.tile),
               std::to_string(tree.plan().tile.tile)});
    const std::string key = "nz" + std::to_string(nz);
    summary.emplace_back(key + ".flat.gflops", rf.gflops);
    summary.emplace_back(key + ".tree.gflops", rt.gflops);
    summary.emplace_back(key + ".speedup", speedup);
  }
  summary.emplace_back("machine.cache_sensitivity", sens);
  bench::emit(t, "fig_tiletree");
  bench::emit_bench_json("tiletree", summary);
  return mismatch ? 1 : 0;
}
