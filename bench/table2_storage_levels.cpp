// Table 2: relative performance improvement over the multiple-loads baseline
// per storage level (single-thread, blocking-free), plus the mean row.
//
// Paper's values (Xeon 6140): mean 1.00 / 1.11 / 1.35 / 1.98 / 2.79 for
// multiple-loads / data-reorg / DLT / Our / Our(2 steps). The *ordering*
// and the Our(2 steps) > Our > {DLT, data-reorg} > 1 structure is the claim
// we reproduce; absolute ratios are hardware-dependent.
#include <iostream>
#include <map>

#include "bench_util/harness.hpp"

int main() {
  using namespace sf;
  const bool full = bench_full();
  const auto sizes = bench::size_sweep_1d(full);
  const std::vector<std::pair<std::string, Method>> methods = {
      {"multiple-loads", Method::MultipleLoads},
      {"data-reorg", Method::DataReorg},
      {"dlt", Method::DLT},
      {"our", Method::Ours},
      {"our-2step", Method::Ours2},
  };
  const int tsteps = full ? 1000 : 100;

  // level -> method -> (sum of ratios, count)
  std::map<std::string, std::map<std::string, std::pair<double, int>>> acc;
  for (long n : sizes) {
    const std::string level = bench::storage_level(2.0 * static_cast<double>(n) * 8);
    double base = 0;
    for (const auto& [name, m] : methods) {
      ProblemConfig cfg;
      cfg.preset = Preset::Heat1D;
      cfg.method = m;
      cfg.nx = n;
      cfg.tsteps = tsteps;
      RunResult r = bench::measure(cfg);
      if (m == Method::MultipleLoads) base = r.gflops;
      auto& slot = acc[level][name];
      slot.first += r.gflops / base;
      slot.second += 1;
    }
  }

  Table t({"Level", "multiple-loads", "data-reorg", "dlt", "our", "our-2step"});
  std::map<std::string, std::pair<double, int>> mean;
  for (const char* level : {"L1", "L2", "L3", "Mem"}) {
    auto it = acc.find(level);
    if (it == acc.end()) continue;
    std::vector<std::string> row{level};
    for (const auto& [name, m] : methods) {
      const auto& slot = it->second[name];
      const double v = slot.first / slot.second;
      row.push_back(Table::num(v) + "x");
      mean[name].first += v;
      mean[name].second += 1;
    }
    t.add_row(row);
  }
  std::vector<std::string> row{"Mean"};
  for (const auto& [name, m] : methods)
    row.push_back(Table::num(mean[name].first / mean[name].second) + "x");
  t.add_row(row);

  std::cout << "Table 2: improvement over multiple-loads per storage level "
            << "(1D-Heat, single thread, T = " << tsteps << ")\n";
  bench::emit(t, "table2_storage_levels");
  return 0;
}
