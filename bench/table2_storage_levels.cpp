// Table 2: relative performance improvement over the multiple-loads baseline
// per storage level (single-thread, blocking-free), plus the mean row. The
// method axis comes from the kernel registry (bench::method_axis).
//
// Paper's values (Xeon 6140): mean 1.00 / 1.11 / 1.35 / 1.98 / 2.79 for
// multiple-loads / data-reorg / DLT / Our / Our(2 steps). The *ordering*
// and the Our(2 steps) > Our > {DLT, data-reorg} > 1 structure is the claim
// we reproduce; absolute ratios are hardware-dependent.
#include <iostream>
#include <map>

#include "bench_util/harness.hpp"

int main() {
  using namespace sf;
  const bool full = bench_full();
  const auto sizes = bench::size_sweep_1d(full);
  // Skip the scalar baseline; the first axis entry (multiple-loads) is the
  // table's 1.00x reference.
  const auto methods = bench::method_axis(1, /*skip_naive=*/true);
  const int tsteps = full ? 1000 : 100;

  // level -> method -> (sum of ratios, count)
  std::map<std::string, std::map<std::string, std::pair<double, int>>> acc;
  for (long n : sizes) {
    const std::string level = bench::storage_level(2.0 * static_cast<double>(n) * 8);
    double base = 0;
    for (const KernelInfo* k : methods) {
      // Single-thread, blocking-free rows: pin Tiling::Off so every method
      // stays on the serial untiled path at L3/Mem sizes (the ratios
      // measure vectorization, not parallel tiling).
      Solver s = Solver::make(Preset::Heat1D)
                     .method(k->method)
                     .isa(k->isa)
                     .size(n)
                     .steps(tsteps)
                     .tiling(Tiling::Off);
      RunResult r = bench::measure(s);
      if (k->method == Method::MultipleLoads) base = r.gflops;
      auto& slot = acc[level][k->name];
      slot.first += r.gflops / base;
      slot.second += 1;
    }
  }

  std::vector<std::string> header{"Level"};
  for (const KernelInfo* k : methods) header.push_back(k->name);
  Table t(header);
  std::map<std::string, std::pair<double, int>> mean;
  for (const char* level : {"L1", "L2", "L3", "Mem"}) {
    auto it = acc.find(level);
    if (it == acc.end()) continue;
    std::vector<std::string> row{level};
    for (const KernelInfo* k : methods) {
      const auto& slot = it->second[k->name];
      const double v = slot.first / slot.second;
      row.push_back(Table::num(v) + "x");
      mean[k->name].first += v;
      mean[k->name].second += 1;
    }
    t.add_row(row);
  }
  std::vector<std::string> row{"Mean"};
  for (const KernelInfo* k : methods)
    row.push_back(Table::num(mean[k->name].first / mean[k->name].second) + "x");
  t.add_row(row);

  std::cout << "Table 2: improvement over multiple-loads per storage level "
            << "(1D-Heat, single thread, T = " << tsteps << ")\n";
  bench::emit(t, "table2_storage_levels");
  return 0;
}
