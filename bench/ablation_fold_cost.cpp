// Ablation: the collect / profitability cost model of §3.2-§3.3 and §3.5
// for every 2-D/3-D benchmark stencil and unrolling factors m = 2..4, plus
// measured GFLOP/s of the folded kernel per m-equivalent (via Ours vs Ours2).
//
// The 2D9P row with m = 2 must read 90 / 25 / 9 with profitability 3.6 / 10
// (asserted by tests/fold_test.cpp); GB shows the smallest vectorized gain —
// the paper's "not prominent" observation, caused by its larger counterpart
// basis.
#include <iostream>

#include "bench_util/harness.hpp"
#include "fold/cost_model.hpp"

int main() {
  using namespace sf;
  Table t({"Stencil", "m", "|C(E)|", "|C(E_L)|", "|C(E_L)| vec", "basis",
           "bias", "P scalar", "P vec"});
  for (const auto& spec : all_presets()) {
    if (spec.dims == 1) continue;
    for (int m = 2; m <= 4; ++m) {
      if (spec.dims == 2) {
        Profitability pr = profitability(spec.p2, m);
        auto plan = plan_folding(spec.p2, m);
        t.add_row({spec.name, std::to_string(m), std::to_string(pr.naive),
                   std::to_string(pr.folded_scalar),
                   std::to_string(pr.folded_vec),
                   std::to_string(plan.basis.size()),
                   plan.uses_impulse ? "yes" : "no",
                   Table::num(pr.index_scalar()), Table::num(pr.index_vec())});
      } else {
        Profitability pr = profitability(spec.p3, m);
        auto plan = plan_folding(spec.p3, m);
        t.add_row({spec.name, std::to_string(m), std::to_string(pr.naive),
                   std::to_string(pr.folded_scalar),
                   std::to_string(pr.folded_vec),
                   std::to_string(plan.basis.size()),
                   plan.uses_impulse ? "yes" : "no",
                   Table::num(pr.index_scalar()), Table::num(pr.index_vec())});
      }
    }
  }
  std::cout << "Fold cost model (collects per output point; paper 2D9P m=2: "
               "90/25/9, P=3.6/10)\n";
  bench::emit(t, "ablation_fold_cost");

  // Shifts-reuse collects (Fig. 6): full vs reused and the reuse index.
  Table s({"Stencil", "|C(E_F)|", "|C(E_G)|", "reuse index"});
  for (const auto& spec : all_presets()) {
    if (spec.dims != 2) continue;
    ShiftsReuseCost c = shifts_reuse_cost(spec.p2);
    s.add_row({spec.name, std::to_string(c.full), std::to_string(c.reused),
               Table::num(c.index())});
  }
  std::cout << "Shifts-reuse cost (paper 2D9P: 9 / 4 = 2.25)\n";
  bench::emit(s, "ablation_shifts_cost");
  return 0;
}
