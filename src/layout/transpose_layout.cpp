#include "layout/transpose_layout.hpp"

#include <stdexcept>

namespace sf {

namespace {
template <class G>
void dispatch(const G& g, int w) {
  switch (w) {
    case 1: break;
    case 4: grid_transpose_layout<4>(g); break;
    case 8: grid_transpose_layout<8>(g); break;
    default: throw std::invalid_argument("unsupported SIMD width");
  }
}
}  // namespace

void apply_transpose_layout(const FieldView1D& g, int w) { dispatch(g, w); }
void apply_transpose_layout(const FieldView2D& g, int w) { dispatch(g, w); }
void apply_transpose_layout(const FieldView3D& g, int w) { dispatch(g, w); }

}  // namespace sf
