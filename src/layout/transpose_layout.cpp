#include "layout/transpose_layout.hpp"

#include <stdexcept>

namespace sf {

namespace {
template <class G>
void dispatch(const G& g, int w) {
  switch (w) {
    case 1: break;
    case 4: grid_transpose_layout<4>(g); break;
    case 8: grid_transpose_layout<8>(g); break;
    default: throw std::invalid_argument("unsupported SIMD width");
  }
}
}  // namespace

void apply_transpose_layout(const FieldView1D& g, int w) { dispatch(g, w); }
void apply_transpose_layout(const FieldView2D& g, int w) { dispatch(g, w); }
void apply_transpose_layout(const FieldView3D& g, int w) { dispatch(g, w); }

void apply_transpose_layout_rows(const FieldView2D& g, int w, int y0,
                                 int y1) {
  switch (w) {
    case 1: break;
    case 4: grid_transpose_layout_rows<4>(g, y0, y1); break;
    case 8: grid_transpose_layout_rows<8>(g, y0, y1); break;
    default: throw std::invalid_argument("unsupported SIMD width");
  }
}

void apply_transpose_layout_planes(const FieldView3D& g, int w, int z0,
                                   int z1) {
  switch (w) {
    case 1: break;
    case 4: grid_transpose_layout_planes<4>(g, z0, z1); break;
    case 8: grid_transpose_layout_planes<8>(g, z0, z1); break;
    default: throw std::invalid_argument("unsupported SIMD width");
  }
}

}  // namespace sf
