// The paper's register-transpose layout (§2.2, Figure 1).
//
// Each aligned sub-sequence of W*W contiguous interior elements ("vector
// set") is viewed as a W x W matrix and transposed in place, so that an
// aligned vector load at offset j*W yields lanes {j, j+W, j+2W, ...} of the
// block. The transform is an involution: applying it twice restores the
// original layout. Halo cells and any tail shorter than W*W stay in original
// order; kernels access them scalar.
#pragma once

#include "grid/grid.hpp"
#include "simd/transpose.hpp"

namespace sf {

/// Number of full W*W blocks in a row of n elements.
template <int W>
constexpr int tl_blocks(int n) {
  return n / (W * W);
}

/// Storage index of logical element i of a transposed row (involution).
template <int W>
inline int tl_index(int i, int n) {
  const int bs = W * W;
  const int b = i / bs;
  if (i < 0 || b >= tl_blocks<W>(n)) return i;  // halo or tail: untouched
  const int r = i - b * bs;
  return b * bs + (r % W) * W + r / W;
}

/// Transposes every full W*W block of row[0..n) in place.
template <int W>
inline void row_transpose_layout(double* row, int n) {
  const int nb = tl_blocks<W>(n);
  for (int b = 0; b < nb; ++b) simd::transpose_block_inplace<W>(row + b * W * W);
}

template <int W>
inline void grid_transpose_layout(const FieldView1D& g) {
  row_transpose_layout<W>(g.data(), g.n());
}

/// 2-D/3-D transforms include the *halo rows/planes*: kernels read
/// y/z-neighbours of boundary rows through layout-aware views, so every row
/// a kernel can touch must be in the same layout. (Column halo stays in
/// original order — tl_index maps it to itself.)
template <int W>
inline void grid_transpose_layout(const FieldView2D& g) {
  for (int y = -g.halo(); y < g.ny() + g.halo(); ++y)
    row_transpose_layout<W>(g.row(y), g.nx());
}

template <int W>
inline void grid_transpose_layout(const FieldView3D& g) {
  for (int z = -g.halo(); z < g.nz() + g.halo(); ++z)
    for (int y = -g.halo(); y < g.ny() + g.halo(); ++y)
      row_transpose_layout<W>(g.row(z, y), g.nx());
}

/// Row-range form of the 2-D transform: transposes rows y in [y0, y1) only
/// (logical indices; halo rows at negative y). Rows are independent, so
/// disjoint ranges may run concurrently — the pool-parallel
/// to_resident_layout splits the row space over the placement map with each
/// worker transforming the rows of its own tiles.
template <int W>
inline void grid_transpose_layout_rows(const FieldView2D& g, int y0, int y1) {
  for (int y = y0; y < y1; ++y)
    row_transpose_layout<W>(g.row(y), g.nx());
}

/// Plane-range form of the 3-D transform: transposes planes z in [z0, z1)
/// only (logical indices; halo planes at negative z). See
/// grid_transpose_layout_rows().
template <int W>
inline void grid_transpose_layout_planes(const FieldView3D& g, int z0,
                                         int z1) {
  for (int z = z0; z < z1; ++z)
    for (int y = -g.halo(); y < g.ny() + g.halo(); ++y)
      row_transpose_layout<W>(g.row(z, y), g.nx());
}

/// Runtime-width dispatch (W in {1,4,8}); W = 1 is a no-op.
void apply_transpose_layout(const FieldView1D& g, int w);
void apply_transpose_layout(const FieldView2D& g, int w);
void apply_transpose_layout(const FieldView3D& g, int w);

/// Runtime-width dispatch of grid_transpose_layout_rows().
void apply_transpose_layout_rows(const FieldView2D& g, int w, int y0, int y1);
/// Runtime-width dispatch of grid_transpose_layout_planes().
void apply_transpose_layout_planes(const FieldView3D& g, int w, int z0,
                                   int z1);

}  // namespace sf
