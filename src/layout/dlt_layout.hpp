// Dimension-Lifting Transpose layout (Henretty et al.) — the baseline the
// paper improves on (§2.1).
//
// A row of n0 = W*L interior elements is viewed as a W x L matrix (row i =
// elements [i*L, (i+1)*L)) and globally transposed: storage position
// j*W + i holds logical element i*L + j. An aligned vector load at column j
// then delivers lanes {j, L+j, 2*L+j, ...}; the x-neighbour of the whole
// vector is simply column j±1, except at the L-boundary *seam* where lanes
// wrap to the adjacent matrix row.
//
// Unlike the paper's local transpose this is not an involution and is done
// out of place through a scratch buffer — exactly the space/latency overhead
// the paper criticizes. Tails shorter than W stay in original order.
#pragma once

#include <vector>

#include "grid/grid.hpp"

namespace sf {

/// Storage index of logical element i in a DLT row (n interior elements,
/// SIMD width w). Elements beyond the lifted prefix stay put.
inline int dlt_index(int i, int n, int w) {
  const int L = n / w;
  const int n0 = L * w;
  if (i < 0 || i >= n0) return i;
  return (i % L) * w + (i / L);
}

/// Lifts row[0..n) into DLT layout using `scratch` (size >= n).
void row_to_dlt(double* row, int n, int w, double* scratch);

/// Inverse transform.
void row_from_dlt(double* row, int n, int w, double* scratch);

void grid_to_dlt(const FieldView1D& g, int w);
void grid_from_dlt(const FieldView1D& g, int w);
void grid_to_dlt(const FieldView2D& g, int w);
void grid_from_dlt(const FieldView2D& g, int w);
void grid_to_dlt(const FieldView3D& g, int w);
void grid_from_dlt(const FieldView3D& g, int w);

}  // namespace sf
