#include "layout/dlt_layout.hpp"

#include <cstring>
#include <vector>

namespace sf {

void row_to_dlt(double* row, int n, int w, double* scratch) {
  if (w <= 1) return;
  const int L = n / w;
  const int n0 = L * w;
  for (int i = 0; i < n0; ++i) scratch[(i % L) * w + (i / L)] = row[i];
  std::memcpy(row, scratch, static_cast<std::size_t>(n0) * sizeof(double));
}

void row_from_dlt(double* row, int n, int w, double* scratch) {
  if (w <= 1) return;
  const int L = n / w;
  const int n0 = L * w;
  for (int i = 0; i < n0; ++i) scratch[i] = row[(i % L) * w + (i / L)];
  std::memcpy(row, scratch, static_cast<std::size_t>(n0) * sizeof(double));
}

namespace {
std::vector<double>& tls_scratch(std::size_t n) {
  thread_local std::vector<double> s;
  if (s.size() < n) s.resize(n);
  return s;
}
}  // namespace

void grid_to_dlt(const FieldView1D& g, int w) {
  row_to_dlt(g.data(), g.n(), w, tls_scratch(g.n()).data());
}

void grid_from_dlt(const FieldView1D& g, int w) {
  row_from_dlt(g.data(), g.n(), w, tls_scratch(g.n()).data());
}

// 2-D/3-D transforms include halo rows/planes: kernels read y/z-neighbours
// of boundary rows through the lifted index map, so those rows must be
// lifted too.
void grid_to_dlt(const FieldView2D& g, int w) {
  auto& s = tls_scratch(static_cast<std::size_t>(g.nx()));
  for (int y = -g.halo(); y < g.ny() + g.halo(); ++y)
    row_to_dlt(g.row(y), g.nx(), w, s.data());
}

void grid_from_dlt(const FieldView2D& g, int w) {
  auto& s = tls_scratch(static_cast<std::size_t>(g.nx()));
  for (int y = -g.halo(); y < g.ny() + g.halo(); ++y)
    row_from_dlt(g.row(y), g.nx(), w, s.data());
}

void grid_to_dlt(const FieldView3D& g, int w) {
  auto& s = tls_scratch(static_cast<std::size_t>(g.nx()));
  for (int z = -g.halo(); z < g.nz() + g.halo(); ++z)
    for (int y = -g.halo(); y < g.ny() + g.halo(); ++y)
      row_to_dlt(g.row(z, y), g.nx(), w, s.data());
}

void grid_from_dlt(const FieldView3D& g, int w) {
  auto& s = tls_scratch(static_cast<std::size_t>(g.nx()));
  for (int z = -g.halo(); z < g.nz() + g.halo(); ++z)
    for (int y = -g.halo(); y < g.ny() + g.halo(); ++y)
      row_from_dlt(g.row(z, y), g.nx(), w, s.data());
}

}  // namespace sf
