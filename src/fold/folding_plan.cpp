#include "fold/folding_plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "linalg/least_squares.hpp"

namespace sf {

namespace {

long nnz(const std::vector<double>& v) {
  long n = 0;
  for (double x : v) n += x != 0.0;
  return n;
}

/// Shared planner body: `columns[i]` is the column weight vector for key
/// (dz,dx) = keys[i]; visits columns outermost-first.
FoldingPlan plan_columns(int m, int radius,
                         const std::vector<std::pair<int, int>>& keys,
                         const std::vector<std::vector<double>>& columns) {
  FoldingPlan plan;
  plan.m = m;
  plan.radius = radius;

  const int h = 2 * radius + 1;
  // Impulse basis vector: the raw (unfolded) rows of the original square,
  // realizing the bias b_n of Eq. 7. Only offered to the regression, charged
  // in the cost model if used.
  std::vector<double> impulse(h, 0.0);
  impulse[radius] = 1.0;

  // Visit order: |dx| (then |dz|) descending, so the outermost column becomes
  // counterpart c1 exactly as in the paper's worked example.
  std::vector<int> order(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int ra = std::abs(keys[a].second), rb = std::abs(keys[b].second);
    if (ra != rb) return ra > rb;
    if (keys[a].second != keys[b].second) return keys[a].second < keys[b].second;
    return keys[a].first < keys[b].first;
  });

  for (int i : order) {
    const auto& col = columns[i];
    if (nnz(col) == 0) continue;
    const auto [dz, dx] = keys[i];

    // Try to express this column with the existing counterparts (+ impulse).
    std::vector<std::vector<double>> basis_and_impulse = plan.basis;
    basis_and_impulse.push_back(impulse);
    LsqFit fit = least_squares(basis_and_impulse, col);

    if (fit.exact && !plan.basis.empty()) {
      for (std::size_t b = 0; b < plan.basis.size(); ++b)
        if (fit.coeff[b] != 0.0)
          plan.terms.push_back({dz, dx, static_cast<int>(b), fit.coeff[b]});
      const double bias = fit.coeff.back();
      if (bias != 0.0) {
        plan.terms.push_back({dz, dx, -1, bias});
        plan.uses_impulse = true;
      }
    } else {
      // New counterpart: the column itself becomes a basis vector.
      plan.basis.push_back(col);
      plan.terms.push_back({dz, dx, static_cast<int>(plan.basis.size()) - 1, 1.0});
    }
  }
  return plan;
}

}  // namespace

long FoldingPlan::vec_collect() const {
  // Counting rule (documented in DESIGN.md, validated against the paper's
  // §3.3 example): each basis column costs one ⟨grid,weight⟩ pair per
  // non-zero entry (the vertical folding), each horizontal term one pair,
  // except that the defining use of each basis column is free (the vertical
  // folding result is consumed directly).
  long c = 0;
  for (const auto& b : basis) c += nnz(b);
  c += static_cast<long>(terms.size());
  c -= static_cast<long>(basis.size());
  return c;
}

FoldingPlan plan_folding(const Pattern2D& p, int m) {
  const Pattern2D lambda = power(p, m);
  const int R = lambda.radius();
  const int h = 2 * R + 1;

  std::vector<std::pair<int, int>> keys;
  std::vector<std::vector<double>> cols;
  for (int dx = -R; dx <= R; ++dx) {
    std::vector<double> col(h, 0.0);
    for (int dy = -R; dy <= R; ++dy) col[dy + R] = lambda.weight_at({dy, dx});
    keys.emplace_back(0, dx);
    cols.push_back(std::move(col));
  }
  return plan_columns(m, R, keys, cols);
}

FoldingPlan plan_folding(const Pattern3D& p, int m) {
  const Pattern3D lambda = power(p, m);
  const int R = lambda.radius();
  const int h = 2 * R + 1;

  std::vector<std::pair<int, int>> keys;
  std::vector<std::vector<double>> cols;
  for (int dz = -R; dz <= R; ++dz)
    for (int dx = -R; dx <= R; ++dx) {
      std::vector<double> col(h, 0.0);
      for (int dy = -R; dy <= R; ++dy)
        col[dy + R] = lambda.weight_at({dz, dy, dx});
      keys.emplace_back(dz, dx);
      cols.push_back(std::move(col));
    }
  return plan_columns(m, R, keys, cols);
}

}  // namespace sf
