// Generic (scalar) temporal-folding executors for any dimension and any
// unrolling factor m.
//
// One folded *advance* produces the exact m-step Jacobi result:
//  * deep interior (distance >= rho = (m-1)*r from the boundary): one
//    application of the folding matrix Λ = p^m — this is where the paper's
//    arithmetic-redundancy saving comes from;
//  * boundary ring (distance < rho): recomputed stepwise over shrinking
//    frames into scratch grids, because the Dirichlet halo never advances in
//    time and the folded expansion would otherwise assume it does.
//
// These executors define the semantics the vectorized folded kernels
// (src/kernels/folded*.cpp) must match bit-for-bit on the ring and to FP
// tolerance in the interior.
#pragma once

#include <memory>

#include "fold/region.hpp"
#include "grid/grid.hpp"
#include "stencil/pattern.hpp"
#include "stencil/reference.hpp"

namespace sf {

// ---------------------------------------------------------------------------
// 1-D
// ---------------------------------------------------------------------------
class FoldedRunner1D {
 public:
  /// `src`/`k` add a time-invariant source (APOP): step = p(A) + src(K).
  FoldedRunner1D(const Pattern1D& p, int m, int n, const Pattern1D* src = nullptr)
      : p_(p), m_(m), r_(p.radius()), lambda_(power(p, m)),
        sa_(n, lambda_.radius()), sb_(n, lambda_.radius()) {
    if (src != nullptr) {
      src_ = *src;
      has_src_ = true;
      folded_src_ = compose(power_sum(p, m), *src);
    }
  }

  int m() const { return m_; }

  /// out = exact m-step update of in. Scratch halos must mirror in's halo;
  /// call sync_halo(in) once before the first advance.
  void sync_halo(const Grid1D& in) {
    for (int i = -sa_.halo(); i < 0; ++i) sa_.at(i) = sb_.at(i) = in.at(i);
    for (int i = in.n(); i < in.n() + sa_.halo(); ++i)
      sa_.at(i) = sb_.at(i) = in.at(i);
  }

  void advance(const Grid1D& in, Grid1D& out, const Grid1D* k = nullptr) {
    const int n = in.n();
    const int rho = (m_ - 1) * r_;

    // Deep interior: single folded application.
    if (n > 2 * rho) {
      apply_pattern(lambda_, in, out, rho, n - rho);
      if (has_src_ && k != nullptr) add_source(folded_src_, *k, out, rho, n - rho);
    }

    // Ring correction: stepwise over shrinking frames.
    if (rho > 0) {
      const Grid1D* cur = &in;
      Grid1D* nxt = &sa_;
      for (int step = 1; step < m_; ++step) {
        const int w = (2 * m_ - step - 1) * r_;
        for (const Seg& s : frame_segs(n, w)) {
          apply_pattern(p_, *cur, *nxt, s.a, s.b);
          if (has_src_ && k != nullptr) add_source(src_, *k, *nxt, s.a, s.b);
        }
        cur = nxt;
        nxt = (nxt == &sa_) ? &sb_ : &sa_;
      }
      for (const Seg& s : frame_segs(n, std::min(rho, n))) {
        apply_pattern(p_, *cur, out, s.a, s.b);
        if (has_src_ && k != nullptr) add_source(src_, *k, out, s.a, s.b);
      }
    }
  }

  /// Runs `tsteps` total steps: floor(tsteps/m) folded advances plus a
  /// stepwise remainder. Result lands in `a`.
  void run(Grid1D& a, Grid1D& b, int tsteps, const Grid1D* k = nullptr) {
    sync_halo(a);
    Grid1D* in = &a;
    Grid1D* out = &b;
    int t = 0;
    for (; t + m_ <= tsteps; t += m_) {
      advance(*in, *out, k);
      std::swap(in, out);
    }
    for (; t < tsteps; ++t) {
      apply_pattern(p_, *in, *out, 0, in->n());
      if (has_src_ && k != nullptr) add_source(src_, *k, *out, 0, in->n());
      std::swap(in, out);
    }
    if (in != &a) copy_interior(*in, a);
  }

 private:
  Pattern1D p_;
  int m_, r_;
  Pattern1D lambda_;
  bool has_src_ = false;
  Pattern1D src_, folded_src_;
  Grid1D sa_, sb_;
};

// ---------------------------------------------------------------------------
// 2-D
// ---------------------------------------------------------------------------
class FoldedRunner2D {
 public:
  FoldedRunner2D(const Pattern2D& p, int m, int ny, int nx)
      : p_(p), m_(m), r_(p.radius()), lambda_(power(p, m)),
        sa_(ny, nx, lambda_.radius()), sb_(ny, nx, lambda_.radius()) {}

  int m() const { return m_; }
  const Pattern2D& lambda() const { return lambda_; }

  void sync_halo(const Grid2D& in) {
    const int h = sa_.halo();
    for (int y = -h; y < in.ny() + h; ++y)
      for (int x = -h; x < in.nx() + h; ++x) {
        if (y >= 0 && y < in.ny() && x >= 0 && x < in.nx()) continue;
        sa_.at(y, x) = sb_.at(y, x) = in.at(y, x);
      }
  }

  void advance(const Grid2D& in, Grid2D& out) {
    const int ny = in.ny(), nx = in.nx();
    const int rho = (m_ - 1) * r_;

    if (ny > 2 * rho && nx > 2 * rho)
      apply_pattern(lambda_, in, out, rho, ny - rho, rho, nx - rho);

    if (rho > 0) {
      const Grid2D* cur = &in;
      Grid2D* nxt = &sa_;
      for (int step = 1; step < m_; ++step) {
        const int w = (2 * m_ - step - 1) * r_;
        for (const Rect& rc : frame_rects(ny, nx, w))
          apply_pattern(p_, *cur, *nxt, rc.y0, rc.y1, rc.x0, rc.x1);
        cur = nxt;
        nxt = (nxt == &sa_) ? &sb_ : &sa_;
      }
      for (const Rect& rc : frame_rects(ny, nx, rho))
        apply_pattern(p_, *cur, out, rc.y0, rc.y1, rc.x0, rc.x1);
    }
  }

  void run(Grid2D& a, Grid2D& b, int tsteps) {
    sync_halo(a);
    Grid2D* in = &a;
    Grid2D* out = &b;
    int t = 0;
    for (; t + m_ <= tsteps; t += m_) {
      advance(*in, *out);
      std::swap(in, out);
    }
    for (; t < tsteps; ++t) {
      apply_pattern(p_, *in, *out, 0, in->ny(), 0, in->nx());
      std::swap(in, out);
    }
    if (in != &a) copy_interior(*in, a);
  }

 private:
  Pattern2D p_;
  int m_, r_;
  Pattern2D lambda_;
  Grid2D sa_, sb_;
};

// ---------------------------------------------------------------------------
// 3-D
// ---------------------------------------------------------------------------
class FoldedRunner3D {
 public:
  FoldedRunner3D(const Pattern3D& p, int m, int nz, int ny, int nx)
      : p_(p), m_(m), r_(p.radius()), lambda_(power(p, m)),
        sa_(nz, ny, nx, lambda_.radius()), sb_(nz, ny, nx, lambda_.radius()) {}

  int m() const { return m_; }

  void sync_halo(const Grid3D& in) {
    const int h = sa_.halo();
    for (int z = -h; z < in.nz() + h; ++z)
      for (int y = -h; y < in.ny() + h; ++y)
        for (int x = -h; x < in.nx() + h; ++x) {
          if (z >= 0 && z < in.nz() && y >= 0 && y < in.ny() && x >= 0 &&
              x < in.nx())
            continue;
          sa_.at(z, y, x) = sb_.at(z, y, x) = in.at(z, y, x);
        }
  }

  void advance(const Grid3D& in, Grid3D& out) {
    const int nz = in.nz(), ny = in.ny(), nx = in.nx();
    const int rho = (m_ - 1) * r_;

    if (nz > 2 * rho && ny > 2 * rho && nx > 2 * rho)
      apply_pattern(lambda_, in, out, rho, nz - rho, rho, ny - rho, rho,
                    nx - rho);

    if (rho > 0) {
      const Grid3D* cur = &in;
      Grid3D* nxt = &sa_;
      for (int step = 1; step < m_; ++step) {
        const int w = (2 * m_ - step - 1) * r_;
        for (const Box& bx : frame_boxes(nz, ny, nx, w))
          apply_pattern(p_, *cur, *nxt, bx.z0, bx.z1, bx.y0, bx.y1, bx.x0,
                        bx.x1);
        cur = nxt;
        nxt = (nxt == &sa_) ? &sb_ : &sa_;
      }
      for (const Box& bx : frame_boxes(nz, ny, nx, rho))
        apply_pattern(p_, *cur, out, bx.z0, bx.z1, bx.y0, bx.y1, bx.x0, bx.x1);
    }
  }

  void run(Grid3D& a, Grid3D& b, int tsteps) {
    sync_halo(a);
    Grid3D* in = &a;
    Grid3D* out = &b;
    int t = 0;
    for (; t + m_ <= tsteps; t += m_) {
      advance(*in, *out);
      std::swap(in, out);
    }
    for (; t < tsteps; ++t) {
      apply_pattern(p_, *in, *out, 0, in->nz(), 0, in->ny(), 0, in->nx());
      std::swap(in, out);
    }
    if (in != &a) copy_interior(*in, a);
  }

 private:
  Pattern3D p_;
  int m_, r_;
  Pattern3D lambda_;
  Grid3D sa_, sb_;
};

}  // namespace sf
