// Temporal computation folding plans (paper §3).
//
// A folding plan decomposes the m-step folding matrix Λ = pattern^m into
//  * a small set of *basis column vectors* λ⁽ᵇ⁾ (the counterparts of §3.3
//    that must actually be computed by vertical folding), and
//  * *horizontal terms*: out(x) = Σ coeff · c_b(x + dx) (+ dz in 3-D),
// using the linear-regression model of §3.5 to express every folding-matrix
// column as an exact combination of already-chosen basis columns. The
// original (unfolded) rows are available as a free "impulse" basis vector,
// which realizes the bias term b_n of Eq. 7.
#pragma once

#include <vector>

#include "stencil/pattern.hpp"

namespace sf {

/// One horizontal-folding contribution: coeff * c_{basis}(x + dx) (and plane
/// z + dz in 3-D; dz is 0 for 2-D plans).
struct FoldTerm {
  int dz = 0;
  int dx = 0;
  int basis_id = 0;   // index into FoldingPlan::basis; -1 = impulse (raw rows)
  double coeff = 0.0;
};

struct FoldingPlan {
  int m = 1;       // unrolling factor (time steps folded)
  int radius = 0;  // radius of the folded pattern = m * pattern radius
  /// Column-weight vectors of length 2*radius+1 (indexed by dy+radius).
  std::vector<std::vector<double>> basis;
  std::vector<FoldTerm> terms;
  bool uses_impulse = false;  // any term with basis_id == -1

  /// Count of ⟨grid, weight⟩ pairs the vectorized folded evaluation spends
  /// per output vector-set (paper's |C(E_Λ)| after counterpart reuse; 9 for
  /// the symmetric 2D9P with m=2).
  long vec_collect() const;
};

/// Plans the folding of a 2-D pattern over m steps. Columns are visited from
/// the outermost dx inward (matching the paper's c1/c2/c3 numbering), each
/// fitted against the basis chosen so far plus the impulse vector.
FoldingPlan plan_folding(const Pattern2D& p, int m);

/// Plans a 3-D folding: the folded pattern is sliced by dz; all slices share
/// one basis (columns from every slice enter the same regression).
FoldingPlan plan_folding(const Pattern3D& p, int m);

}  // namespace sf
