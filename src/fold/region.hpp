// Frame/ring region decomposition used by the folded executors.
//
// A folded m-step update is only valid where the whole dependency cone of
// intermediate time levels stays inside the interior (the Dirichlet halo
// never advances in time). The invalid *ring* of width rho = (m-1)*r is
// recomputed stepwise on shrinking *frames*; these helpers enumerate those
// regions as a handful of disjoint segments / rectangles / slabs.
#pragma once

#include <algorithm>
#include <array>
#include <vector>

namespace sf {

struct Seg {
  int a, b;  // [a, b)
  bool empty() const { return a >= b; }
};

struct Rect {
  int y0, y1, x0, x1;
  bool empty() const { return y0 >= y1 || x0 >= x1; }
};

struct Box {
  int z0, z1, y0, y1, x0, x1;
  bool empty() const { return z0 >= z1 || y0 >= y1 || x0 >= x1; }
};

/// Points of [0,n) within distance < w of either end (disjoint segments).
inline std::vector<Seg> frame_segs(int n, int w) {
  std::vector<Seg> v;
  if (w <= 0 || n <= 0) return v;
  if (2 * w >= n) {
    v.push_back({0, n});
  } else {
    v.push_back({0, w});
    v.push_back({n - w, n});
  }
  return v;
}

/// Points of [0,ny) x [0,nx) within distance < w of the boundary, as at most
/// four disjoint rectangles.
inline std::vector<Rect> frame_rects(int ny, int nx, int w) {
  std::vector<Rect> v;
  if (w <= 0 || ny <= 0 || nx <= 0) return v;
  if (2 * w >= ny || 2 * w >= nx) {
    v.push_back({0, ny, 0, nx});
    return v;
  }
  v.push_back({0, w, 0, nx});            // top
  v.push_back({ny - w, ny, 0, nx});      // bottom
  v.push_back({w, ny - w, 0, w});        // left
  v.push_back({w, ny - w, nx - w, nx});  // right
  return v;
}

/// Boundary shell of width w of a 3-D box, as at most six disjoint slabs.
inline std::vector<Box> frame_boxes(int nz, int ny, int nx, int w) {
  std::vector<Box> v;
  if (w <= 0 || nz <= 0 || ny <= 0 || nx <= 0) return v;
  if (2 * w >= nz || 2 * w >= ny || 2 * w >= nx) {
    v.push_back({0, nz, 0, ny, 0, nx});
    return v;
  }
  v.push_back({0, w, 0, ny, 0, nx});                      // z-low
  v.push_back({nz - w, nz, 0, ny, 0, nx});                // z-high
  v.push_back({w, nz - w, 0, w, 0, nx});                  // y-low
  v.push_back({w, nz - w, ny - w, ny, 0, nx});            // y-high
  v.push_back({w, nz - w, w, ny - w, 0, w});              // x-low
  v.push_back({w, nz - w, w, ny - w, nx - w, nx});        // x-high
  return v;
}

}  // namespace sf
