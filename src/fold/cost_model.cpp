#include "fold/cost_model.hpp"

#include <cmath>

namespace sf {

Profitability profitability(const Pattern1D& p, int m) {
  Profitability r;
  r.naive = naive_collect(p, m);
  r.folded_scalar = folded_collect(p, m);
  r.folded_vec = r.folded_scalar;  // no counterpart planning in 1-D
  return r;
}

Profitability profitability(const Pattern2D& p, int m) {
  Profitability r;
  r.naive = naive_collect(p, m);
  r.folded_scalar = folded_collect(p, m);
  r.folded_vec = plan_folding(p, m).vec_collect();
  return r;
}

Profitability profitability(const Pattern3D& p, int m) {
  Profitability r;
  r.naive = naive_collect(p, m);
  r.folded_scalar = folded_collect(p, m);
  r.folded_vec = plan_folding(p, m).vec_collect();
  return r;
}

ShiftsReuseCost shifts_reuse_cost(const Pattern2D& p) {
  const int r = p.radius();
  const int h = 2 * r + 1;

  // Column weight vectors of the (1-step) pattern.
  std::vector<std::vector<double>> cols;
  for (int dx = -r; dx <= r; ++dx) {
    std::vector<double> col(h, 0.0);
    for (int dy = -r; dy <= r; ++dy) col[dy + r] = p.weight_at({dy, dx});
    cols.push_back(std::move(col));
  }

  ShiftsReuseCost c;
  c.full = static_cast<long>(p.size());

  // Moving one point to the right, the column that previously sat at offset
  // dx is now at dx-1; its partial sum is reusable iff the weight vector at
  // dx-1 equals the one computed at dx. Count the columns that must be
  // folded fresh, plus one accumulation pair.
  long fresh = 0;
  for (int i = 0; i < h; ++i) {
    const bool reusable = i + 1 < h && cols[i] == cols[i + 1];
    if (!reusable) {
      long nz = 0;
      for (double v : cols[i]) nz += v != 0.0;
      fresh += nz;
    }
  }
  c.reused = fresh + 1;
  return c;
}

}  // namespace sf
