// Collect / profitability cost model (paper §3.2, Eq. 1-3).
//
// The *collect* C(E) of an expression is the multiset of ⟨grid point, weight⟩
// pairs it evaluates; its cardinality approximates the number of arithmetic
// instructions (add / multiply / fma). The paper's worked example for the
// 9-point box with m = 2:
//   |C(E)|      = 90   (naive: ten 9-tap subexpressions)
//   |C(E_Λ)|    = 25   (scalar folding: the 5x5 folding matrix)
//   |C(E_Λ)|    =  9   (vectorized folding with counterpart reuse)
//   P(E, E_Λ)   = 3.6  scalar, 10 with counterpart reuse.
// These exact values are asserted by tests/fold_test.cpp.
#pragma once

#include "fold/folding_plan.hpp"
#include "stencil/pattern.hpp"

namespace sf {

/// |C(E)| for the naive m-step expansion: every grid point needed at an
/// intermediate time is recomputed with a full stencil application, so
/// |C(E)| = |p| * sum_{j=0}^{m-1} |p^j|.
template <int D>
long naive_collect(const Pattern<D>& p, int m) {
  long apps = 0;
  Pattern<D> cur = Pattern<D>::identity();
  for (int j = 0; j < m; ++j) {
    apps += static_cast<long>(cur.size());
    cur = compose(cur, p);
  }
  return static_cast<long>(p.size()) * apps;
}

/// |C(E_Λ)| for scalar folding: one pair per non-zero folding-matrix entry.
template <int D>
long folded_collect(const Pattern<D>& p, int m) {
  return static_cast<long>(power(p, m).size());
}

/// Profitability index P(E, E_Λ) = |C(E)| / |C(E_Λ)| (Eq. 3).
struct Profitability {
  long naive;
  long folded_scalar;
  long folded_vec;  // after counterpart reuse (plan.vec_collect())
  double index_scalar() const { return double(naive) / double(folded_scalar); }
  double index_vec() const { return double(naive) / double(folded_vec); }
};

/// 1-D folding has no counterpart basis: the transposed layout applies the
/// folded pattern directly, so the vectorized collect equals the scalar one.
Profitability profitability(const Pattern1D& p, int m);
Profitability profitability(const Pattern2D& p, int m);
Profitability profitability(const Pattern3D& p, int m);

/// Shifts-reuse collects for a 1-step 2-D stencil (paper §3.4, Fig. 6):
/// the first point of a row costs every ⟨grid,weight⟩ pair; subsequent
/// points reuse all column partial sums whose weight vector is shared with
/// a column already folded for the previous point, paying only for the
/// newly-entering column plus one accumulation.
struct ShiftsReuseCost {
  long full;    // |C(E_F)|, e.g. 9 for the equal-weight 2D9P
  long reused;  // |C(E_G)|, e.g. 4
  double index() const { return double(full) / double(reused); }
};

ShiftsReuseCost shifts_reuse_cost(const Pattern2D& p);

}  // namespace sf
