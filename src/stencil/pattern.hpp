// Stencil patterns and their algebra.
//
// A Pattern<D> is a finite set of taps (offset, weight): the update rule
//   out[x] = sum_taps w * in[x + off].
// Composing two patterns (applying q after p) is the convolution of their
// tap sets; power(p, m) is the paper's *folding matrix* — the single pattern
// whose one-shot application equals m naive time steps (§3, Eq. 4-6).
#pragma once

#include <array>
#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace sf {

template <int D>
struct Pattern {
  using Offset = std::array<int, D>;

  struct Tap {
    Offset off;
    double w;
  };

  std::vector<Tap> taps;  // kept sorted by offset, unique offsets

  static Pattern identity() {
    Pattern p;
    p.taps.push_back({Offset{}, 1.0});
    return p;
  }

  /// Builds a pattern from (offset, weight) pairs; merges duplicate offsets
  /// and drops zero weights.
  static Pattern from_taps(const std::vector<Tap>& raw) {
    std::map<Offset, double> acc;
    for (const auto& t : raw) acc[t.off] += t.w;
    Pattern p;
    for (const auto& [off, w] : acc)
      if (w != 0.0) p.taps.push_back({off, w});
    return p;
  }

  /// Chebyshev radius: max |component| over all taps.
  int radius() const {
    int r = 0;
    for (const auto& t : taps)
      for (int d = 0; d < D; ++d) r = std::max(r, std::abs(t.off[d]));
    return r;
  }

  std::size_t size() const { return taps.size(); }

  double weight_at(const Offset& off) const {
    for (const auto& t : taps)
      if (t.off == off) return t.w;
    return 0.0;
  }

  /// Convolution: the pattern computing q(p(in)), i.e. apply p, then q.
  friend Pattern compose(const Pattern& q, const Pattern& p) {
    std::map<Offset, double> acc;
    for (const auto& a : q.taps)
      for (const auto& b : p.taps) {
        Offset o;
        for (int d = 0; d < D; ++d) o[d] = a.off[d] + b.off[d];
        acc[o] += a.w * b.w;
      }
    Pattern r;
    for (const auto& [off, w] : acc)
      if (w != 0.0) r.taps.push_back({off, w});
    return r;
  }

  /// Folding matrix for an m-step update: p composed with itself m times.
  friend Pattern power(const Pattern& p, int m) {
    Pattern r = identity();
    for (int i = 0; i < m; ++i) r = compose(r, p);
    return r;
  }

  /// Geometric sum I + p + p^2 + ... + p^{m-1}; the folded pattern a
  /// time-invariant source term accumulates over m steps (used by APOP).
  friend Pattern power_sum(const Pattern& p, int m) {
    std::map<Offset, double> acc;
    Pattern cur = identity();
    for (int k = 0; k < m; ++k) {
      for (const auto& t : cur.taps) acc[t.off] += t.w;
      cur = compose(cur, p);
    }
    Pattern r;
    for (const auto& [off, w] : acc)
      if (w != 0.0) r.taps.push_back({off, w});
    return r;
  }

  /// True if every tap lies on a coordinate axis (star stencil).
  bool is_star() const {
    for (const auto& t : taps) {
      int nonzero = 0;
      for (int d = 0; d < D; ++d) nonzero += t.off[d] != 0;
      if (nonzero > 1) return false;
    }
    return true;
  }

  /// True if p(-off) == p(off) for all taps (centro-symmetric).
  bool is_symmetric() const {
    for (const auto& t : taps) {
      Offset neg;
      for (int d = 0; d < D; ++d) neg[d] = -t.off[d];
      if (weight_at(neg) != t.w) return false;
    }
    return true;
  }

  /// Number of FLOPs a straightforward weighted-sum evaluation spends per
  /// output point: one multiply per tap plus (taps-1) adds. This is the
  /// convention used for every GFLOP/s number the harness reports.
  long flops_per_point() const {
    return taps.empty() ? 0 : static_cast<long>(2 * taps.size() - 1);
  }
};

using Pattern1D = Pattern<1>;
using Pattern2D = Pattern<2>;
using Pattern3D = Pattern<3>;

std::string to_string(const Pattern1D& p);
std::string to_string(const Pattern2D& p);
std::string to_string(const Pattern3D& p);

/// Dense (2r+1)^2 matrix view of a 2-D pattern (the folding matrix of §3.2);
/// element [dy+r][dx+r] = weight at offset (dy,dx). Row-major.
std::vector<double> dense_matrix(const Pattern2D& p, int r);

}  // namespace sf
