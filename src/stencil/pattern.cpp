#include "stencil/pattern.hpp"

#include <sstream>

namespace sf {

namespace {
template <int D>
std::string to_string_impl(const Pattern<D>& p) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& t : p.taps) {
    if (!first) out << ", ";
    first = false;
    out << "(";
    for (int d = 0; d < D; ++d) {
      if (d) out << ",";
      out << t.off[d];
    }
    out << "):" << t.w;
  }
  out << "}";
  return out.str();
}
}  // namespace

std::string to_string(const Pattern1D& p) { return to_string_impl(p); }
std::string to_string(const Pattern2D& p) { return to_string_impl(p); }
std::string to_string(const Pattern3D& p) { return to_string_impl(p); }

std::vector<double> dense_matrix(const Pattern2D& p, int r) {
  const int n = 2 * r + 1;
  std::vector<double> m(static_cast<std::size_t>(n) * n, 0.0);
  for (const auto& t : p.taps)
    m[static_cast<std::size_t>(t.off[0] + r) * n + (t.off[1] + r)] = t.w;
  return m;
}

}  // namespace sf
