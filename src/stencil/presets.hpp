// The benchmark stencils of the paper's Table 1, as first-class objects.
//
// Star stencils: 1D-Heat (3pt), 2D-Heat (5pt), 3D-Heat (7pt).
// Box stencils:  1D5P, 2D9P, 3D27P.
// Real-world:    APOP (1D3P over two input arrays), Game of Life (8-point
//                surrogate, see DESIGN.md), GB (asymmetric 9-weight box).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "stencil/pattern.hpp"

namespace sf {

enum class Preset {
  Heat1D,
  P1D5,
  Apop,
  Heat2D,
  Box2D9,
  Life,
  GB,
  Heat3D,
  Box3D27,
};

/// Static description of one benchmark stencil: its pattern, the paper's
/// Table-1 problem/blocking sizes, and a scaled-down size for fast runs.
struct StencilSpec {
  Preset id;
  std::string name;
  int dims;  // 1, 2 or 3

  // Exactly one of these is meaningful, per `dims`.
  Pattern1D p1;
  Pattern2D p2;
  Pattern3D p3;

  // APOP adds a time-invariant source array K: out = p(A) + src(K).
  bool has_source = false;
  Pattern1D src1;

  std::array<long, 3> full_size;   // paper Table 1 (x, y, z; unused dims = 1)
  long full_tsteps;                // paper Table 1 time steps
  std::array<int, 3> block;        // paper Table 1 blocking size
  std::array<long, 3> small_size;  // default fast-run size
  long small_tsteps;

  int points() const;  // tap count (the "Pts" column of Table 1)
};

/// All nine Table-1 stencils, in the paper's order.
const std::vector<StencilSpec>& all_presets();

const StencilSpec& preset(Preset id);

}  // namespace sf
