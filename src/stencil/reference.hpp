// Naive reference executors.
//
// These define the ground-truth semantics every optimized kernel must match:
// Jacobi (two-array) update of the interior, Dirichlet halo that never
// changes. Region-limited application is exposed because the folded
// executors reuse it for their boundary-ring corrections and the tiling
// framework for its per-tile updates.
//
// All entry points take zero-copy FieldViews (grid/field_view.hpp); Grids
// convert implicitly.
#pragma once

#include <utility>

#include "grid/grid.hpp"
#include "stencil/pattern.hpp"

namespace sf {

/// out[i] = sum_taps w * in[i+off] for i in [x0, x1).
inline void apply_pattern(const Pattern1D& p, const FieldView1D& in,
                          const FieldView1D& out, int x0, int x1) {
  const double* a = in.data();
  double* b = out.data();
  for (int i = x0; i < x1; ++i) {
    double acc = 0;
    for (const auto& t : p.taps) acc += t.w * a[i + t.off[0]];
    b[i] = acc;
  }
}

/// Rectangular region [y0,y1) x [x0,x1).
inline void apply_pattern(const Pattern2D& p, const FieldView2D& in,
                          const FieldView2D& out, int y0, int y1, int x0,
                          int x1) {
  for (int y = y0; y < y1; ++y) {
    double* b = out.row(y);
    for (int x = x0; x < x1; ++x) {
      double acc = 0;
      for (const auto& t : p.taps) acc += t.w * in.row(y + t.off[0])[x + t.off[1]];
      b[x] = acc;
    }
  }
}

/// Box region [z0,z1) x [y0,y1) x [x0,x1).
inline void apply_pattern(const Pattern3D& p, const FieldView3D& in,
                          const FieldView3D& out, int z0, int z1, int y0,
                          int y1, int x0, int x1) {
  for (int z = z0; z < z1; ++z)
    for (int y = y0; y < y1; ++y) {
      double* b = out.row(z, y);
      for (int x = x0; x < x1; ++x) {
        double acc = 0;
        for (const auto& t : p.taps)
          acc += t.w * in.row(z + t.off[0], y + t.off[1])[x + t.off[2]];
        b[x] = acc;
      }
    }
}

/// Adds a time-invariant source contribution: out[i] += sum src.w * k[i+off].
inline void add_source(const Pattern1D& src, const FieldView1D& k,
                       const FieldView1D& out, int x0, int x1) {
  const double* ks = k.data();
  double* b = out.data();
  for (int i = x0; i < x1; ++i) {
    double acc = 0;
    for (const auto& t : src.taps) acc += t.w * ks[i + t.off[0]];
    b[i] += acc;
  }
}

/// Interior-only copies used when an odd number of swaps leaves the result
/// in the scratch grid.
inline void copy_interior(const FieldView1D& src, const FieldView1D& dst) {
  for (int i = 0; i < src.n(); ++i) dst.at(i) = src.at(i);
}

inline void copy_interior(const FieldView2D& src, const FieldView2D& dst) {
  for (int y = 0; y < src.ny(); ++y)
    for (int x = 0; x < src.nx(); ++x) dst.at(y, x) = src.at(y, x);
}

inline void copy_interior(const FieldView3D& src, const FieldView3D& dst) {
  for (int z = 0; z < src.nz(); ++z)
    for (int y = 0; y < src.ny(); ++y)
      for (int x = 0; x < src.nx(); ++x) dst.at(z, y, x) = src.at(z, y, x);
}


/// Runs `tsteps` naive Jacobi steps; on return `a` holds the final state
/// (grids are swapped internally an even number of times if tsteps is even).
inline void run_reference(const Pattern1D& p, const FieldView1D& a,
                          const FieldView1D& b, int tsteps,
                          const Pattern1D* src = nullptr,
                          const FieldView1D* k = nullptr) {
  const FieldView1D* in = &a;
  const FieldView1D* out = &b;
  for (int t = 0; t < tsteps; ++t) {
    apply_pattern(p, *in, *out, 0, in->n());
    if (src != nullptr && k != nullptr) add_source(*src, *k, *out, 0, in->n());
    std::swap(in, out);
  }
  if (in != &a) copy_interior(*in, a);
}

inline void run_reference(const Pattern2D& p, const FieldView2D& a,
                          const FieldView2D& b, int tsteps) {
  const FieldView2D* in = &a;
  const FieldView2D* out = &b;
  for (int t = 0; t < tsteps; ++t) {
    apply_pattern(p, *in, *out, 0, in->ny(), 0, in->nx());
    std::swap(in, out);
  }
  if (in != &a) copy_interior(*in, a);
}

inline void run_reference(const Pattern3D& p, const FieldView3D& a,
                          const FieldView3D& b, int tsteps) {
  const FieldView3D* in = &a;
  const FieldView3D* out = &b;
  for (int t = 0; t < tsteps; ++t) {
    apply_pattern(p, *in, *out, 0, in->nz(), 0, in->ny(), 0, in->nx());
    std::swap(in, out);
  }
  if (in != &a) copy_interior(*in, a);
}

}  // namespace sf
