#include "stencil/presets.hpp"

#include <stdexcept>

namespace sf {

namespace {

Pattern1D star1(double wl, double wc, double wr) {
  return Pattern1D::from_taps({{{-1}, wl}, {{0}, wc}, {{1}, wr}});
}

Pattern1D box1d5(double w2, double w1, double w0) {
  return Pattern1D::from_taps(
      {{{-2}, w2}, {{-1}, w1}, {{0}, w0}, {{1}, w1}, {{2}, w2}});
}

Pattern2D star2(double wc, double we) {
  return Pattern2D::from_taps({{{0, 0}, wc},
                               {{-1, 0}, we},
                               {{1, 0}, we},
                               {{0, -1}, we},
                               {{0, 1}, we}});
}

/// Box with corner weight w1, edge weight w2, centre weight w3 (Fig. 4).
Pattern2D box2(double w1, double w2, double w3) {
  std::vector<Pattern2D::Tap> taps;
  for (int dy = -1; dy <= 1; ++dy)
    for (int dx = -1; dx <= 1; ++dx) {
      const int nz = (dy != 0) + (dx != 0);
      taps.push_back({{dy, dx}, nz == 2 ? w1 : nz == 1 ? w2 : w3});
    }
  return Pattern2D::from_taps(taps);
}

/// Fully general 3x3 box; `w` is row-major (dy=-1 row first).
Pattern2D general_box2(const std::array<double, 9>& w) {
  std::vector<Pattern2D::Tap> taps;
  for (int dy = -1; dy <= 1; ++dy)
    for (int dx = -1; dx <= 1; ++dx)
      taps.push_back({{dy, dx}, w[static_cast<std::size_t>(dy + 1) * 3 + (dx + 1)]});
  return Pattern2D::from_taps(taps);
}

Pattern3D star3(double wc, double wf) {
  return Pattern3D::from_taps({{{0, 0, 0}, wc},
                               {{-1, 0, 0}, wf},
                               {{1, 0, 0}, wf},
                               {{0, -1, 0}, wf},
                               {{0, 1, 0}, wf},
                               {{0, 0, -1}, wf},
                               {{0, 0, 1}, wf}});
}

/// 27-point box: corner / edge / face / centre weights.
Pattern3D box3(double wcorner, double wedge, double wface, double wc) {
  std::vector<Pattern3D::Tap> taps;
  for (int dz = -1; dz <= 1; ++dz)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx) {
        const int nz = (dz != 0) + (dy != 0) + (dx != 0);
        const double w = nz == 3   ? wcorner
                         : nz == 2 ? wedge
                         : nz == 1 ? wface
                                   : wc;
        taps.push_back({{dz, dy, dx}, w});
      }
  return Pattern3D::from_taps(taps);
}

std::vector<StencilSpec> make_presets() {
  std::vector<StencilSpec> v;

  {
    StencilSpec s;
    s.id = Preset::Heat1D;
    s.name = "1D-Heat";
    s.dims = 1;
    s.p1 = star1(0.25, 0.5, 0.25);
    s.full_size = {10240000, 1, 1};
    s.full_tsteps = 1000;
    s.block = {2000, 1000, 1};
    s.small_size = {1 << 20, 1, 1};
    s.small_tsteps = 100;
    v.push_back(s);
  }
  {
    StencilSpec s;
    s.id = Preset::P1D5;
    s.name = "1D5P";
    s.dims = 1;
    s.p1 = box1d5(0.0625, 0.25, 0.375);
    s.full_size = {10240000, 1, 1};
    s.full_tsteps = 1000;
    s.block = {2000, 500, 1};
    s.small_size = {1 << 20, 1, 1};
    s.small_tsteps = 100;
    v.push_back(s);
  }
  {
    StencilSpec s;
    s.id = Preset::Apop;
    s.name = "APOP";
    s.dims = 1;
    // Discounted binomial up/middle/down weights plus an early-exercise
    // coupling to the (time-invariant) payoff array K.
    s.p1 = star1(0.46, 0.05, 0.47);
    s.has_source = true;
    s.src1 = Pattern1D::from_taps({{{0}, 0.015}});
    s.full_size = {10240000, 1, 1};
    s.full_tsteps = 1000;
    s.block = {2000, 500, 1};
    s.small_size = {1 << 20, 1, 1};
    s.small_tsteps = 100;
    v.push_back(s);
  }
  {
    StencilSpec s;
    s.id = Preset::Heat2D;
    s.name = "2D-Heat";
    s.dims = 2;
    s.p2 = star2(0.5, 0.125);
    s.full_size = {5000, 5000, 1};
    s.full_tsteps = 1000;
    s.block = {200, 200, 50};
    s.small_size = {1000, 1000, 1};
    s.small_tsteps = 50;
    v.push_back(s);
  }
  {
    StencilSpec s;
    s.id = Preset::Box2D9;
    s.name = "2D9P";
    s.dims = 2;
    // The paper's 2D9P (Fig. 5) weights all nine points equally, which is
    // what makes its counterparts scalar multiples of c1 (omega2 = 2,
    // omega3 = (0,3)).
    s.p2 = box2(1.0 / 9.0, 1.0 / 9.0, 1.0 / 9.0);
    s.full_size = {5000, 5000, 1};
    s.full_tsteps = 1000;
    s.block = {120, 128, 60};
    s.small_size = {1000, 1000, 1};
    s.small_tsteps = 50;
    v.push_back(s);
  }
  {
    StencilSpec s;
    s.id = Preset::Life;
    s.name = "GameOfLife";
    s.dims = 2;
    // Arithmetic surrogate: all 8 neighbours, no self-term (DESIGN.md).
    s.p2 = box2(0.125, 0.125, 0.0);
    s.full_size = {5000, 5000, 1};
    s.full_tsteps = 1000;
    s.block = {200, 200, 50};
    s.small_size = {1000, 1000, 1};
    s.small_tsteps = 50;
    v.push_back(s);
  }
  {
    StencilSpec s;
    s.id = Preset::GB;
    s.name = "GB";
    s.dims = 2;
    // Nine distinct weights; deliberately asymmetric (the paper's stress
    // test for the folding generalization).
    s.p2 = general_box2({0.031, 0.052, 0.093, 0.104, 0.365, 0.026, 0.047, 0.088, 0.119});
    s.full_size = {5000, 5000, 1};
    s.full_tsteps = 1000;
    s.block = {200, 200, 50};
    s.small_size = {1000, 1000, 1};
    s.small_tsteps = 50;
    v.push_back(s);
  }
  {
    StencilSpec s;
    s.id = Preset::Heat3D;
    s.name = "3D-Heat";
    s.dims = 3;
    s.p3 = star3(0.4, 0.1);
    s.full_size = {400, 400, 400};
    s.full_tsteps = 1000;
    s.block = {20, 20, 10};
    s.small_size = {128, 128, 128};
    s.small_tsteps = 20;
    v.push_back(s);
  }
  {
    StencilSpec s;
    s.id = Preset::Box3D27;
    s.name = "3D27P";
    s.dims = 3;
    s.p3 = box3(0.02, 0.03, 0.05, 0.04);
    s.full_size = {400, 400, 400};
    s.full_tsteps = 1000;
    s.block = {20, 20, 10};
    s.small_size = {128, 128, 128};
    s.small_tsteps = 20;
    v.push_back(s);
  }
  return v;
}

}  // namespace

int StencilSpec::points() const {
  switch (dims) {
    case 1: return static_cast<int>(p1.size());
    case 2: return static_cast<int>(p2.size());
    case 3: return static_cast<int>(p3.size());
    default: return 0;
  }
}

const std::vector<StencilSpec>& all_presets() {
  static const std::vector<StencilSpec> v = make_presets();
  return v;
}

const StencilSpec& preset(Preset id) {
  for (const auto& s : all_presets())
    if (s.id == id) return s;
  throw std::logic_error("unknown preset");
}

}  // namespace sf
