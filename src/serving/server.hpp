/// \file
/// \brief Multi-tenant batched serving front end over the shared runtime.
///
/// `sf::Server` is the admission-and-batching layer the ROADMAP's
/// "heavy traffic from millions of users" north star needs between request
/// streams and the prepared-execution machinery: clients submit() prepared
/// small-grid advances from any thread into a lock-free bounded MPSC ring;
/// a single dispatcher thread drains the ring, groups requests by prepared
/// plan key (PreparedStencil::plan_key()) and executes each group through
/// one PreparedStencil::advance_batch() call — one pool dispatch advancing
/// the whole batch, amortizing dispatch and barrier cost the same way
/// resident layouts amortize the transpose involution. Results are bitwise
/// identical to per-request advance() calls (see run_tile_plan_batch).
///
/// Admission control is explicit rather than implicit latency: the ring is
/// bounded (ServerOptions::queue_capacity), and a full ring rejects with
/// Reject::QueueFull instead of queueing unboundedly. Per-tenant budgets
/// cap the number of distinct plans a tenant may use
/// (ServerOptions::tenant_max_plans) and its concurrently in-flight
/// requests (ServerOptions::tenant_max_inflight). Every submit() returns a
/// std::future<ServeResult> satisfied on completion (or immediately, for
/// rejected requests) with per-request queue/execute timing; an optional
/// ServerOptions::on_complete callback observes every completion on the
/// dispatcher thread.
///
/// Buffers stay caller-owned and zero-copy throughout: a request carries
/// FieldViews, and the caller must keep the underlying memory (and, for
/// distinct requests, pairwise-disjoint buffers) alive and untouched until
/// its future is satisfied. Views are validated against the prepared
/// geometry at submit() time on the client thread — a bad request is
/// rejected with Reject::BadRequest instead of poisoning a batch.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <string>

#include "core/engine.hpp"

namespace sf {

/// Why a submit() was rejected (ServeResult::rejected). Rejected requests
/// never execute; their futures are satisfied immediately.
enum class Reject {
  None,           ///< Not rejected — the request executed.
  QueueFull,      ///< The bounded submission ring was full (backpressure:
                  ///< retry later or shed load).
  TenantPlans,    ///< The tenant would exceed its distinct-plan budget.
  TenantInflight, ///< The tenant is at its in-flight request budget.
  ShuttingDown,   ///< The server is being destroyed and admits no new work.
  BadRequest,     ///< The views failed validation against the prepared
                  ///< geometry (see ServeResult::error for the reason).
};

/// Display name of a Reject ("none", "queue-full", ...).
const char* reject_name(Reject r);

/// Completion record of one served request, delivered through the future
/// returned by Server::submit() (and to ServerOptions::on_complete).
struct ServeResult {
  Reject rejected = Reject::None;  ///< Why admission refused the request
                                   ///< (None when it was accepted).
  std::string error;  ///< Execution error message ("" on success); rejected
                      ///< requests carry the rejection reason here too.
  double queue_seconds = 0;  ///< Submit-to-dispatch wait in the ring.
  double exec_seconds = 0;   ///< Execution time of the batch the request
                             ///< ran in (shared by all its members).
  int batch_size = 0;  ///< Number of same-plan requests in that batch.

  /// True when the request was admitted and executed without error.
  bool ok() const { return rejected == Reject::None && error.empty(); }
};

/// Admission and batching knobs of a Server.
struct ServerOptions {
  int queue_capacity = 1024;  ///< Bounded submission-ring capacity (rounded
                              ///< up to a power of two; >= 2). A full ring
                              ///< rejects with Reject::QueueFull.
  int max_batch = 64;  ///< Max requests drained per dispatch round — the
                       ///< batching window. Same-plan requests within one
                       ///< round execute as one advance_batch() call.
  bool adaptive_batch = true;
  ///< Let the dispatcher adapt its per-round drain cap to the observed
  ///< queue depth (twice the recent peak, never above max_batch): lightly
  ///< loaded servers dispatch small low-latency rounds, backlogged ones
  ///< open the full window. The current cap is exported as the
  ///< `serving.adaptive_batch` gauge. Set false — or `SF_ADAPTIVE_BATCH=0`
  ///< process-wide — to pin the cap at max_batch (the historical
  ///< behavior).
  int tenant_max_inflight = 0;  ///< Per-tenant cap on requests accepted but
                                ///< not yet completed (0 = unlimited).
  int tenant_max_plans = 0;  ///< Per-tenant cap on *distinct* plan keys
                             ///< ever submitted (0 = unlimited) — bounds
                             ///< the plan-cache and pool footprint a single
                             ///< tenant can pin.
  std::function<void(const ServeResult&)> on_complete;
  ///< Optional completion callback, invoked once per executed request on
  ///< the dispatcher thread (rejected submits do not reach it). Keep it
  ///< cheap: it runs between batches.
};

/// Lifetime counters of a Server (stats()), monotonically increasing.
struct ServerStats {
  long submitted = 0;  ///< submit() calls, accepted or not.
  long completed = 0;  ///< Requests executed successfully.
  long failed = 0;     ///< Requests whose batch threw during execution.
  long rejected = 0;   ///< Requests refused at admission.
  long batches = 0;    ///< advance_batch()/advance() dispatches issued.
  int max_batch = 0;   ///< Largest same-plan batch executed so far.
};

/// The multi-tenant serving front end: one dispatcher thread multiplexing
/// batched prepared executions over the shared WorkerPool runtime.
/// submit() is thread-safe and lock-free up to the ring (tenant accounting
/// takes a short mutex); all execution happens on the dispatcher and the
/// plans' shared pools. Destruction stops admission, drains every accepted
/// request, and joins the dispatcher.
class Server {
 public:
  /// Starts the dispatcher thread with the given admission/batching knobs.
  explicit Server(ServerOptions opts = {});
  /// Stops admission (late submits reject with Reject::ShuttingDown),
  /// executes every already-accepted request, then joins the dispatcher —
  /// no accepted future is ever abandoned.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submits a 1-D source-free advance of `nsteps` steps on caller-owned
  /// views (semantics of PreparedStencil::advance(); result lands in `a`).
  /// `tenant` names the budget bucket the request is accounted against.
  /// The returned future is satisfied when the request completes — or
  /// immediately with ServeResult::rejected set when admission refuses it.
  /// The caller keeps `a`/`b` alive and untouched until then.
  std::future<ServeResult> submit(const std::string& tenant,
                                  const PreparedStencil& ps, FieldView1D a,
                                  FieldView1D b, int nsteps);
  /// 1-D submit with the APOP time-invariant source array `k`.
  std::future<ServeResult> submit(const std::string& tenant,
                                  const PreparedStencil& ps, FieldView1D a,
                                  FieldView1D b, FieldView1D k, int nsteps);
  /// 2-D submit; see the 1-D overload.
  std::future<ServeResult> submit(const std::string& tenant,
                                  const PreparedStencil& ps, FieldView2D a,
                                  FieldView2D b, int nsteps);
  /// 3-D submit; see the 1-D overload.
  std::future<ServeResult> submit(const std::string& tenant,
                                  const PreparedStencil& ps, FieldView3D a,
                                  FieldView3D b, int nsteps);

  /// Blocks until every request accepted so far has completed (the queue is
  /// empty and nothing is executing). New submits during a drain() are
  /// admitted normally and extend the wait.
  void drain();

  /// Lifetime counters (thread-safe snapshot).
  ServerStats stats() const;

  /// Pull-style observability endpoint: the stats() counters followed by
  /// the process-wide `telemetry::text_dump()` report (serving queue/batch
  /// histograms, runtime and engine metrics — see docs/OBSERVABILITY.md).
  /// Metrics sections are empty unless `SF_METRICS` was on when the server
  /// (and the layers below it) were constructed.
  std::string metrics() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sf
