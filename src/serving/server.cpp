#include "serving/server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "telemetry/telemetry.hpp"

namespace sf {

const char* reject_name(Reject r) {
  switch (r) {
    case Reject::None: return "none";
    case Reject::QueueFull: return "queue-full";
    case Reject::TenantPlans: return "tenant-plans";
    case Reject::TenantInflight: return "tenant-inflight";
    case Reject::ShuttingDown: return "shutting-down";
    case Reject::BadRequest: return "bad-request";
  }
  return "?";
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// One accepted submission, heap-allocated by submit() and owned by the
/// dispatcher from the moment it enters the ring. The views stay borrowed
/// from the caller (the zero-copy contract); only the small request record
/// itself is allocated.
struct Request {
  PreparedStencil ps;
  int dims = 0;
  FieldView1D a1, b1, k1;
  FieldView2D a2, b2;
  FieldView3D a3, b3;
  int nsteps = 0;
  std::string tenant;
  std::uint64_t plan = 0;  // the handle's plan_key (tenant plan budget)
  std::uint64_t key = 0;   // plan_key folded with nsteps (batch group key)
  Clock::time_point submitted;
  std::promise<ServeResult> promise;
};

/// Bounded lock-free MPSC ring (Vyukov bounded-MPMC scheme, used here with
/// many producers and the single dispatcher consumer). Each cell carries a
/// sequence number producers and the consumer rendezvous on: push claims a
/// slot with one CAS on the head counter, pop is CAS-free because only the
/// dispatcher advances the tail. A full ring fails the push immediately —
/// that failure *is* the backpressure signal (Reject::QueueFull).
class SubmitRing {
 public:
  explicit SubmitRing(int capacity) {
    std::size_t cap = 2;
    while (cap < static_cast<std::size_t>(capacity < 2 ? 2 : capacity))
      cap <<= 1;
    cells_.reset(new Cell[cap]);
    // relaxed: pre-publication init — the ring is not visible to any other
    // thread until the constructor returns.
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
    mask_ = cap - 1;
  }

  /// Multi-producer push; false when the ring is full.
  bool push(Request* r) {
    // relaxed: only a starting hint for the claim loop; the cell seq
    // acquire below is what orders the slot's prior contents.
    std::size_t pos = head_.load(std::memory_order_relaxed);
    Cell* cell;
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        // relaxed: the CAS only claims a ticket number; the request itself
        // is published by the cell's release seq store below, so the claim
        // orders no data.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return false;  // full
      } else {
        // relaxed: lost the race; re-read the ticket and retry (same
        // hint-only role as the initial load).
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->req = r;
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Single-consumer pop; nullptr when empty.
  Request* pop() {
    Cell* cell = &cells_[tail_ & mask_];
    const std::size_t seq = cell->seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) -
            static_cast<std::intptr_t>(tail_ + 1) <
        0)
      return nullptr;  // empty (or the producer has not published yet)
    Request* r = cell->req;
    cell->seq.store(tail_ + mask_ + 1, std::memory_order_release);
    ++tail_;
    return r;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    Request* req = nullptr;
  };
  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // producers
  alignas(64) std::size_t tail_ = 0;              // dispatcher only
};

}  // namespace

struct Server::Impl {
  ServerOptions opts;
  SubmitRing ring;

  std::atomic<bool> accepting{true};
  std::atomic<bool> stop{false};

  // Doorbell: producers bump `pending` after a successful push and knock;
  // the dispatcher sleeps here when the ring is empty. `pending` stays an
  // atomic (not guarded): producers bump it outside the bell critical
  // section, which only orders the knock against a dispatcher about to
  // sleep.
  Mutex bell_mu;
  CondVar bell_cv;
  std::atomic<long> pending{0};

  // Accepted-but-not-completed accounting, for drain() and the destructor.
  Mutex done_mu;
  CondVar done_cv;
  long inflight_total SF_GUARDED_BY(done_mu) = 0;

  // Per-tenant budgets.
  struct Tenant {
    std::unordered_set<std::uint64_t> plans;  // distinct plan keys seen
    int inflight = 0;
    // Per-tenant admission outcome counters (serving.tenant.<name>.*),
    // resolved on the tenant's first admission attempt. Dead unless the
    // server itself was built with metrics on.
    telemetry::Counter accepted;
    telemetry::Counter rejected;
  };
  Mutex tenant_mu;
  std::unordered_map<std::string, Tenant> tenants SF_GUARDED_BY(tenant_mu);

  // Stats.
  std::atomic<long> n_submitted{0}, n_completed{0}, n_failed{0},
      n_rejected{0}, n_batches{0};
  std::atomic<int> max_batch{0};

  // Telemetry handles (serving.*), resolved at Server construction.
  telemetry::Counter t_submitted, t_accepted, t_completed, t_failed,
      t_batches;
  telemetry::Counter t_reject[6];  // indexed by static_cast<int>(Reject)
  // Gauge (by delta): the dispatcher's current adaptive drain cap.
  telemetry::Counter t_adaptive;
  telemetry::Histogram t_queue_depth, t_batch_size, t_queue_us, t_exec_us;

  std::thread dispatcher;

  explicit Impl(ServerOptions o)
      : opts(std::move(o)),
        ring(opts.queue_capacity),
        t_submitted(telemetry::counter("serving.submitted")),
        t_accepted(telemetry::counter("serving.accepted")),
        t_completed(telemetry::counter("serving.completed")),
        t_failed(telemetry::counter("serving.failed")),
        t_batches(telemetry::counter("serving.batches")),
        t_adaptive(telemetry::counter("serving.adaptive_batch")),
        t_queue_depth(telemetry::histogram("serving.queue_depth")),
        t_batch_size(telemetry::histogram("serving.batch_size")),
        t_queue_us(telemetry::histogram("serving.queue_us")),
        t_exec_us(telemetry::histogram("serving.exec_us")) {
    for (Reject why :
         {Reject::QueueFull, Reject::TenantPlans, Reject::TenantInflight,
          Reject::ShuttingDown, Reject::BadRequest})
      t_reject[static_cast<int>(why)] =
          telemetry::counter(std::string("serving.reject.") +
                             reject_name(why));
  }

  std::future<ServeResult> reject(Reject why, const std::string& detail) {
    // relaxed: stats tally — the n_* atomics are independent monotone
    // counters read only by stats()'s approximate snapshot, so the RMW's
    // atomicity suffices (same rationale at every n_* site below).
    n_rejected.fetch_add(1, std::memory_order_relaxed);
    t_reject[static_cast<int>(why)].add(1);
    std::promise<ServeResult> p;
    ServeResult r;
    r.rejected = why;
    r.error = detail.empty() ? reject_name(why) : detail;
    p.set_value(std::move(r));
    return p.get_future();
  }

  /// Admission + enqueue shared by every submit() overload. Takes ownership
  /// of `req` (deletes it on rejection).
  std::future<ServeResult> admit(Request* req) {
    telemetry::Span span("serve.submit");
    // relaxed: stats tally (see reject()).
    n_submitted.fetch_add(1, std::memory_order_relaxed);
    t_submitted.add(1);
    std::future<ServeResult> fut = req->promise.get_future();
    if (!accepting.load(std::memory_order_acquire)) {
      delete req;
      return reject(Reject::ShuttingDown, "");
    }
    telemetry::Counter tn_accepted, tn_rejected;
    {
      LockGuard lock(tenant_mu);
      Tenant& t = tenants[req->tenant];
      if (t_submitted.live() && !t.accepted.live()) {
        t.accepted = telemetry::counter("serving.tenant." + req->tenant +
                                        ".accepted");
        t.rejected = telemetry::counter("serving.tenant." + req->tenant +
                                        ".rejected");
      }
      tn_accepted = t.accepted;
      tn_rejected = t.rejected;
      if (opts.tenant_max_plans > 0 && t.plans.count(req->plan) == 0 &&
          t.plans.size() >=
              static_cast<std::size_t>(opts.tenant_max_plans)) {
        delete req;
        tn_rejected.add(1);
        return reject(Reject::TenantPlans, "");
      }
      if (opts.tenant_max_inflight > 0 &&
          t.inflight >= opts.tenant_max_inflight) {
        delete req;
        tn_rejected.add(1);
        return reject(Reject::TenantInflight, "");
      }
      t.plans.insert(req->plan);
      ++t.inflight;
    }
    {
      LockGuard lock(done_mu);
      ++inflight_total;
    }
    if (!ring.push(req)) {
      // Backpressure: undo the accounting and report the full queue.
      settle_accounting(req->tenant);
      delete req;
      tn_rejected.add(1);
      return reject(Reject::QueueFull, "");
    }
    t_accepted.add(1);
    tn_accepted.add(1);
    pending.fetch_add(1, std::memory_order_release);
    {
      // Empty critical section: orders the knock against a dispatcher that
      // checked `pending` just before our increment and is about to sleep.
      LockGuard lock(bell_mu);
    }
    bell_cv.notify_one();
    return fut;
  }

  void settle_accounting(const std::string& tenant) {
    {
      LockGuard lock(tenant_mu);
      --tenants[tenant].inflight;
    }
    {
      LockGuard lock(done_mu);
      --inflight_total;
    }
    done_cv.notify_all();
  }

  /// Fulfills one request's future and releases its accounting.
  void complete(Request* req, ServeResult r) {
    if (r.error.empty()) {
      // relaxed: stats tally (see reject()).
      n_completed.fetch_add(1, std::memory_order_relaxed);
      t_completed.add(1);
    } else {
      // relaxed: stats tally (see reject()).
      n_failed.fetch_add(1, std::memory_order_relaxed);
      t_failed.add(1);
    }
    req->promise.set_value(r);
    settle_accounting(req->tenant);
    if (opts.on_complete) opts.on_complete(r);
    delete req;
  }

  /// Executes one same-(plan, nsteps) group through a single batched
  /// dispatch and fulfills every member.
  void run_group(std::vector<Request*>& group) {
    telemetry::Span span("serve.batch");
    t_batch_size.record(static_cast<std::int64_t>(group.size()));
    const Clock::time_point t_dispatch = Clock::now();
    std::string error;
    try {
      Request& lead = *group[0];
      // Group members share a plan key, so any member's handle describes
      // the whole group's geometry and pool; execute through the leader's.
      switch (lead.dims) {
        case 1: {
          std::vector<TileBatch1D> items;
          items.reserve(group.size());
          for (Request* r : group)
            items.push_back({r->a1, r->b1, r->k1.valid() ? &r->k1 : nullptr});
          lead.ps.advance_batch(items, lead.nsteps);
          break;
        }
        case 2: {
          std::vector<TileBatch2D> items;
          items.reserve(group.size());
          for (Request* r : group) items.push_back({r->a2, r->b2});
          lead.ps.advance_batch(items, lead.nsteps);
          break;
        }
        default: {
          std::vector<TileBatch3D> items;
          items.reserve(group.size());
          for (Request* r : group) items.push_back({r->a3, r->b3});
          lead.ps.advance_batch(items, lead.nsteps);
          break;
        }
      }
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown execution error";
    }
    const double exec = seconds_between(t_dispatch, Clock::now());
    // relaxed: stats tally (see reject()).
    n_batches.fetch_add(1, std::memory_order_relaxed);
    t_batches.add(1);
    // relaxed: monotone high-water mark; the CAS loop re-reads the current
    // value on every failure, and no other data hangs off it.
    int prev = max_batch.load(std::memory_order_relaxed);
    while (prev < static_cast<int>(group.size()) &&
           !max_batch.compare_exchange_weak(prev,
                                            static_cast<int>(group.size()))) {
    }
    const bool latency_on = t_queue_us.live();
    for (Request* r : group) {
      ServeResult res;
      res.error = error;
      res.queue_seconds = seconds_between(r->submitted, t_dispatch);
      res.exec_seconds = exec;
      res.batch_size = static_cast<int>(group.size());
      if (latency_on) {
        t_queue_us.record(
            static_cast<std::int64_t>(res.queue_seconds * 1e6));
        t_exec_us.record(static_cast<std::int64_t>(exec * 1e6));
      }
      complete(r, res);
    }
    group.clear();
  }

  /// The dispatcher: drain up to the round's cap (max_batch, adaptively
  /// lowered from the observed queue depth unless disabled), group by
  /// (plan key, nsteps) preserving first-appearance order, execute each
  /// group batched. Exits only when stopped *and* the ring is empty, so
  /// shutdown drains every accepted request.
  void dispatch_loop() {
    std::vector<Request*> round;
    std::vector<std::vector<Request*>> groups;
    // Adaptive drain cap (dispatcher-local, no locks): the cap for a round
    // is twice the peak queue depth observed over the last 16 wakeups —
    // headroom above anything recently seen — bounded by the configured
    // max_batch. A lightly loaded server thus dispatches small rounds
    // (lower per-request latency) while a backlogged one opens the full
    // batching window. The window seeds at max_batch so the first rounds
    // run uncapped, and the cap is computed *before* the current
    // observation is pushed, so one deep wakeup already runs under the
    // previous cap while widening the next round's.
    const bool adaptive = opts.adaptive_batch && env_adaptive_batch();
    long depth_window[16];
    for (long& d : depth_window) d = opts.max_batch;
    std::size_t window_at = 0;
    int last_cap = opts.max_batch;
    // Gauge-by-delta seed: the counter's running total tracks the current
    // cap, starting at the configured max_batch.
    if (adaptive) t_adaptive.add(last_cap);
    for (;;) {
      {
        UniqueLock lock(bell_mu);
        // Explicit predicate loop; the predicate reads only atomics, but
        // the loop form keeps the shape uniform with the pool's waits.
        while (!stop.load(std::memory_order_acquire) &&
               pending.load(std::memory_order_acquire) <= 0)
          bell_cv.wait(lock);
      }
      // Queue depth as the dispatcher observes it at wakeup — the signal
      // the adaptive cap feeds on.
      // relaxed: approximate sample; the depth is stale the moment it is
      // read and orders nothing.
      const long depth = pending.load(std::memory_order_relaxed);
      if (depth > 0 && t_queue_depth.live()) t_queue_depth.record(depth);
      int cap = opts.max_batch;
      if (adaptive) {
        long peak = 0;
        for (long d : depth_window) peak = std::max(peak, d);
        cap = static_cast<int>(
            std::min<long>(opts.max_batch, std::max(1L, 2 * peak)));
        depth_window[window_at++ % 16] = depth > 0 ? depth : 0;
        if (cap != last_cap) {
          // Gauge-by-delta: the counter's running total tracks the current
          // cap (may step down as well as up).
          t_adaptive.add(cap - last_cap);
          last_cap = cap;
        }
      }
      round.clear();
      while (static_cast<int>(round.size()) < cap) {
        Request* r = ring.pop();
        if (r == nullptr) break;
        // relaxed: bookkeeping decrement; the request's data was already
        // ordered by the ring pop's acquire load, and `pending` is only a
        // doorbell hint/shutdown count re-checked under acquire above.
        pending.fetch_sub(1, std::memory_order_relaxed);
        round.push_back(r);
      }
      if (round.empty()) {
        if (stop.load(std::memory_order_acquire) &&
            pending.load(std::memory_order_acquire) == 0)
          return;
        continue;
      }
      groups.clear();
      for (Request* r : round) {
        std::vector<Request*>* g = nullptr;
        for (auto& cand : groups)
          if (cand[0]->key == r->key && cand[0]->nsteps == r->nsteps) {
            g = &cand;
            break;
          }
        if (g == nullptr) {
          groups.emplace_back();
          g = &groups.back();
        }
        g->push_back(r);
      }
      {
        telemetry::Span round_span("serve.round");
        for (auto& g : groups) run_group(g);
      }
    }
  }
};

Server::Server(ServerOptions opts) : impl_(new Impl(std::move(opts))) {
  if (impl_->opts.max_batch < 1) impl_->opts.max_batch = 1;
  impl_->dispatcher = std::thread([this] { impl_->dispatch_loop(); });
}

Server::~Server() {
  impl_->accepting.store(false, std::memory_order_release);
  impl_->stop.store(true, std::memory_order_release);
  {
    LockGuard lock(impl_->bell_mu);
  }
  impl_->bell_cv.notify_all();
  impl_->dispatcher.join();
  // Sweep stragglers that raced admission with shutdown (a submit that
  // passed the accepting check but pushed after the dispatcher exited):
  // their futures are satisfied with a rejection, never abandoned.
  for (Request* r = impl_->ring.pop(); r != nullptr; r = impl_->ring.pop()) {
    ServeResult res;
    res.rejected = Reject::ShuttingDown;
    res.error = reject_name(Reject::ShuttingDown);
    impl_->complete(r, res);
  }
}

namespace {

/// Builds the request record common to every overload; returns null and a
/// rejection message when validation fails.
Request* make_request(const std::string& tenant, const PreparedStencil& ps,
                      int nsteps, std::string* why) {
  if (!ps.valid()) {
    *why = "empty PreparedStencil handle";
    return nullptr;
  }
  Request* r = new Request;
  r->ps = ps;
  r->tenant = tenant;
  r->nsteps = nsteps;
  r->plan = ps.plan_key();
  // Fold nsteps into the group key: only same-horizon requests batch.
  r->key = r->plan * 1099511628211ull + static_cast<std::uint64_t>(nsteps);
  r->submitted = Clock::now();
  return r;
}

}  // namespace

std::future<ServeResult> Server::submit(const std::string& tenant,
                                        const PreparedStencil& ps,
                                        FieldView1D a, FieldView1D b,
                                        int nsteps) {
  return submit(tenant, ps, a, b, FieldView1D{}, nsteps);
}

std::future<ServeResult> Server::submit(const std::string& tenant,
                                        const PreparedStencil& ps,
                                        FieldView1D a, FieldView1D b,
                                        FieldView1D k, int nsteps) {
  std::string why;
  Request* r = make_request(tenant, ps, nsteps, &why);
  if (r != nullptr) {
    try {
      ps.validate_views(a, b, k.valid() ? &k : nullptr);
    } catch (const std::invalid_argument& e) {
      delete r;
      r = nullptr;
      why = e.what();
    }
  }
  if (r == nullptr) {
    // relaxed: stats tally (see Impl::reject()).
    impl_->n_submitted.fetch_add(1, std::memory_order_relaxed);
    impl_->t_submitted.add(1);
    return impl_->reject(Reject::BadRequest, why);
  }
  r->dims = 1;
  r->a1 = a;
  r->b1 = b;
  r->k1 = k;
  return impl_->admit(r);
}

std::future<ServeResult> Server::submit(const std::string& tenant,
                                        const PreparedStencil& ps,
                                        FieldView2D a, FieldView2D b,
                                        int nsteps) {
  std::string why;
  Request* r = make_request(tenant, ps, nsteps, &why);
  if (r != nullptr) {
    try {
      ps.validate_views(a, b);
    } catch (const std::invalid_argument& e) {
      delete r;
      r = nullptr;
      why = e.what();
    }
  }
  if (r == nullptr) {
    // relaxed: stats tally (see Impl::reject()).
    impl_->n_submitted.fetch_add(1, std::memory_order_relaxed);
    impl_->t_submitted.add(1);
    return impl_->reject(Reject::BadRequest, why);
  }
  r->dims = 2;
  r->a2 = a;
  r->b2 = b;
  return impl_->admit(r);
}

std::future<ServeResult> Server::submit(const std::string& tenant,
                                        const PreparedStencil& ps,
                                        FieldView3D a, FieldView3D b,
                                        int nsteps) {
  std::string why;
  Request* r = make_request(tenant, ps, nsteps, &why);
  if (r != nullptr) {
    try {
      ps.validate_views(a, b);
    } catch (const std::invalid_argument& e) {
      delete r;
      r = nullptr;
      why = e.what();
    }
  }
  if (r == nullptr) {
    // relaxed: stats tally (see Impl::reject()).
    impl_->n_submitted.fetch_add(1, std::memory_order_relaxed);
    impl_->t_submitted.add(1);
    return impl_->reject(Reject::BadRequest, why);
  }
  r->dims = 3;
  r->a3 = a;
  r->b3 = b;
  return impl_->admit(r);
}

void Server::drain() {
  UniqueLock lock(impl_->done_mu);
  // Explicit loop: the guarded inflight_total read stays where the
  // thread-safety analysis can see the lock (lambdas are analyzed as
  // separate, lock-free functions).
  while (impl_->inflight_total != 0) impl_->done_cv.wait(lock);
}

std::string Server::metrics() const {
  const ServerStats s = stats();
  std::ostringstream os;
  os << "# sf::Server\n"
     << "submitted " << s.submitted << "\n"
     << "completed " << s.completed << "\n"
     << "failed " << s.failed << "\n"
     << "rejected " << s.rejected << "\n"
     << "batches " << s.batches << "\n"
     << "max_batch " << s.max_batch << "\n"
     << telemetry::text_dump();
  return os.str();
}

ServerStats Server::stats() const {
  ServerStats s;
  // relaxed: approximate snapshot of independent monotone tallies — the
  // documented stats() contract; nothing is ordered by these reads.
  s.submitted = impl_->n_submitted.load(std::memory_order_relaxed);
  s.completed = impl_->n_completed.load(std::memory_order_relaxed);
  s.failed = impl_->n_failed.load(std::memory_order_relaxed);
  s.rejected = impl_->n_rejected.load(std::memory_order_relaxed);
  s.batches = impl_->n_batches.load(std::memory_order_relaxed);
  s.max_batch = impl_->max_batch.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sf
