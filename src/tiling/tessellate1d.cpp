// Update-level tracer for the 1-D tessellation of paper Fig. 7.
//
// Runs the same wedge geometry as split_tiling.cpp but records how many
// times each element has been updated instead of touching data. Tests use
// it to assert the paper's per-stage states: after the triangle stage a tile
// reads (0,1,2,...,H,...,2,1,0); after the inverted-triangle stage every
// element has been updated exactly H times.
#include <algorithm>

#include "tiling/split_tiling.hpp"

namespace sf {

TessellationTrace trace_tessellation_1d(int n, int tile, int height, int slope) {
  TessellationTrace tr;
  tr.after_up.assign(static_cast<std::size_t>(n), 0);

  const int ntiles = (n + tile - 1) / tile;
  for (int kt = 0; kt < ntiles; ++kt) {
    const int x0 = kt * tile;
    const int x1 = std::min(n, x0 + tile);
    for (int sg = 1; sg <= height; ++sg) {
      const int lo = x0 == 0 ? 0 : x0 + sg * slope;
      const int hi = x1 == n ? n : x1 - sg * slope;
      for (int x = lo; x < hi; ++x) tr.after_up[static_cast<std::size_t>(x)]++;
    }
  }
  tr.after_down = tr.after_up;
  for (int kt = 1; kt < ntiles; ++kt) {
    const int xc = kt * tile;
    for (int sg = 1; sg <= height; ++sg) {
      const int lo = std::max(0, xc - sg * slope);
      const int hi = std::min(n, xc + sg * slope);
      // The inverted triangle updates exactly the elements still behind
      // level sg.
      for (int x = lo; x < hi; ++x)
        if (tr.after_down[static_cast<std::size_t>(x)] < sg)
          tr.after_down[static_cast<std::size_t>(x)]++;
    }
  }
  return tr;
}

}  // namespace sf
