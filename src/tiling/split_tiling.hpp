/// \file
/// \brief Temporal split tiling with parallel stage execution (paper §3.4).
///
/// The iteration space is tessellated along one spatial dimension (x in 1-D,
/// y in 2-D, z in 3-D) into *triangles* (shrinking tiles) and *inverted
/// triangles* (expanding wedges rooted at tile boundaries), exactly the 1-D
/// scheme of the paper's Figure 7. Each stage is embarrassingly parallel —
/// executed on the library-owned, optionally topology-pinned WorkerPool
/// (runtime/worker_pool.hpp) with the static balanced_placement() ownership
/// map, so the same worker keeps the same tile columns across super-steps;
/// tiles never recompute a point (redundancy-free). Jacobi double
/// buffering makes the wedge reads exact: position x always holds its two
/// most recent time levels, one per parity.
///
/// Combined with temporal computation folding (Method::Ours2) the wedge
/// slope doubles and odd time levels are never materialized — the paper's
/// "odd time steps are skipped over" (Fig. 7).
///
/// This header is the tiling *engine*: it executes a TilePlan whose gaps
/// (tile = 0, time_block = 0, threads = 0) it fills with the
/// negotiate_wedge() heuristics. Deciding *whether* to tile — and feeding
/// tuned geometry back in — is the job of the ExecutionPlan layer
/// (core/execution_plan.hpp), which `Solver::run` drives. The historical
/// `run_tiled`/`TiledOptions` entry points remain as deprecated shims over
/// the same engine.
#pragma once

#include <vector>

#include "common/cpu.hpp"
#include "grid/grid.hpp"
#include "kernels/api.hpp"
#include "kernels/registry.hpp"
#include "runtime/worker_pool.hpp"
#include "stencil/pattern.hpp"

namespace sf {

/// How the parallel wedge stages synchronize across the time blocks of one
/// run. Results are bitwise identical either way — the schedules execute
/// the same wedges with the same operand levels; only the waiting changes.
enum class Pipeline {
  Auto,  ///< Resolve from the process-wide `SF_PIPELINE` default (on unless
         ///< the variable is set to exactly "0").
  On,    ///< Point-to-point neighbor sync (NeighborSync): worker w waits
         ///< only until w-1/w+1 published the boundary wedges it reads, so
         ///< fast workers pipeline into the next super-step while slow ones
         ///< finish.
  Off,   ///< The historical schedule: a global pool barrier after each up
         ///< and each down stage (two per time block).
};

/// One split-tiling execution request. Zero-valued geometry fields mean
/// "negotiate": the engine fills them via negotiate_wedge(); the
/// ExecutionPlan layer fills them from its cost model or the tuner cache
/// before the run, so `Solver::plan()` can report the concrete geometry.
struct TilePlan {
  Method method = Method::Ours2;  ///< Naive | DLT | Ours | Ours2 have tiled
                                  ///< stages; other methods (and shapes the
                                  ///< stage cannot handle, see
                                  ///< tiled_path_engages) run their untiled
                                  ///< kernel.
  Isa isa = Isa::Auto;            ///< ISA level; Auto = widest supported.
  int tile = 0;        ///< Tile extent along the tiled dimension (0 = auto).
  int time_block = 0;  ///< Time steps per block (0 = auto).
  int threads = 0;     ///< Pool workers per stage (0 = hardware threads).
  Affinity affinity = Affinity::None;
  ///< Worker placement policy: the stages run on the shared_pool() for
  ///< (threads, affinity), so a prepared Engine run and a direct
  ///< run_tile_plan() call land on the same pinned workers. Results are
  ///< bitwise identical across policies; only locality changes.
  Pipeline pipeline = Pipeline::Auto;
  ///< Cross-block stage synchronization (see Pipeline). Auto defers to the
  ///< `SF_PIPELINE` environment default at run time; the Engine resolves it
  ///< at prepare time instead so prepared handles are env-immune and
  ///< plan-cache keyed on the effective value.
  int levels = 1;
  ///< Engaged tile-tree depth this plan's geometry was negotiated at
  ///< (core/execution_plan.hpp TileTree): 1 = flat, >= 2 = `tile` is the
  ///< LLC-capped mid-level extent and each worker walks several tiles per
  ///< stage instead of one. Purely descriptive for the scheduler — the
  ///< wedge set executed is fully determined by tile/time_block/threads,
  ///< so results are bitwise identical across depths — but the schedule
  ///< telemetry reports tree runs separately.
};

/// \deprecated Old name of TilePlan, kept for one release. New code should
/// spell TilePlan (and reach tiling through `Solver::tiling()` rather than
/// run_tiled()).
using TiledOptions = TilePlan;

/// The concrete wedge geometry negotiate_wedge() settles on for one run.
struct WedgeGeometry {
  int tile = 0;        ///< Tile extent along the tiled dimension.
  int time_block = 0;  ///< Time steps per block (a multiple of fold depth).
  int threads = 1;     ///< Pool workers each stage runs with.
  bool blocked = false;  ///< False: the domain is too small for disjoint
                         ///< wedges at this geometry; the engine runs plain
                         ///< full sweeps instead.
};

/// Fills the unset (zero) fields of `requested` with the library's
/// heuristics and returns the resulting geometry:
///  * threads — the hardware thread count;
///  * tile — max(4 * slope, n_tiled / threads): one tile per thread, wide
///    enough that a tile outlives its wedge erosion (paper §3.4's "tile
///    size several times the slope"). Serial runs (threads == 1) instead
///    cap the tile so its ping-pong working set stays LLC-resident — the
///    cap is what makes serial split tiling a cache-blocking win (paper
///    Fig. 8) instead of degenerating to one whole-domain tile;
///  * time_block — the tallest block whose triangles stay non-degenerate,
///    (tile / slope - 2) / 2 super-steps (Fig. 7 geometry), clamped to the
///    run length.
/// `blocked` reports whether wedges stay disjoint at the chosen geometry
/// (tile < n_tiled and tile >= (2H + 1) * slope); when false the engine
/// falls back to unblocked full sweeps.
/// \param n_tiled extent of the tiled dimension (x/y/z in 1/2/3-D).
/// \param slope   wedge slope per super-step (KernelInfo::wedge_slope).
/// \param fold_m  temporal fold depth m (KernelInfo::fold_depth).
/// \param tsteps  total plain time steps of the run.
/// \param requested explicit tile/time_block/threads overrides (0 = auto).
/// \param slice_bytes bytes of one cross-section slice of the tiled
///   dimension (8 in 1-D, 8 * nx in 2-D, 8 * nx * ny in 3-D), used for the
///   cache-capacity tile cap.
WedgeGeometry negotiate_wedge(int n_tiled, int slope, int fold_m, int tsteps,
                              const TilePlan& requested,
                              long slice_bytes = sizeof(double));

/// True when the split-tiled stage implementation of `k` engages for a
/// pattern of radius `radius` (plus 1-D source-term radius `src_radius`)
/// on a domain whose contiguous row extent is `nx`: the kernel declares a
/// tiled stage whose (fold-doubled) radius range covers the pattern
/// (KernelInfo::tileable), and DLT's lifted layout keeps at least a full
/// stencil of lifted rows (nx / width >= 2 * radius + 1). When false, a
/// tiling request runs the untiled kernel — the same executor, just
/// without wedge scheduling.
bool tiled_path_engages(const KernelInfo& k, int radius, int src_radius,
                        long nx);

/// Runs `tsteps` Jacobi steps with temporal split tiling; result in `a`.
/// Geometry gaps in `plan` are negotiated (see negotiate_wedge); methods or
/// shapes without an engaging tiled stage (see tiled_path_engages) fall
/// back to the untiled kernel. The 1-D form optionally takes the APOP
/// source pattern `src` over the time-invariant array `k`.
void run_tile_plan(const Pattern1D& p, const FieldView1D& a, const FieldView1D& b,
                   const Pattern1D* src, const FieldView1D* k, int tsteps,
                   const TilePlan& plan);
/// 2-D overload of run_tile_plan(); tiles along y.
void run_tile_plan(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps,
                   const TilePlan& plan);
/// 3-D overload of run_tile_plan(); tiles along z.
void run_tile_plan(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps,
                   const TilePlan& plan);

/// One grid of a batched 1-D tiling run: the ping/pong buffer pair plus the
/// optional per-item APOP source array (`k` null when the pattern has no
/// source term). All items of one batch share the Pattern and TilePlan but
/// own distinct buffers.
struct TileBatch1D {
  FieldView1D a;                   ///< Ping buffer; holds the result.
  FieldView1D b;                   ///< Pong buffer.
  const FieldView1D* k = nullptr;  ///< Optional time-invariant source array.
};

/// One grid of a batched 2-D tiling run (ping/pong buffer pair).
struct TileBatch2D {
  FieldView2D a;  ///< Ping buffer; holds the result.
  FieldView2D b;  ///< Pong buffer.
};

/// One grid of a batched 3-D tiling run (ping/pong buffer pair).
struct TileBatch3D {
  FieldView3D a;  ///< Ping buffer; holds the result.
  FieldView3D b;  ///< Pong buffer.
};

/// Advances every item of `items` by `tsteps` Jacobi steps in *one* pool
/// dispatch: the batch is laid over the shared (threads, affinity) pool
/// with the same balanced_placement() ownership map the wedge stages use,
/// and each worker runs its items' complete tiling lifecycle (layout
/// transforms, wedge schedule, remainder steps) inline. This amortizes
/// dispatch and barrier cost across N same-geometry small grids — the
/// serving batcher's fast path (serving/server.hpp) — where per-item stage
/// parallelism has nothing to win.
///
/// Every item must have the geometry of item 0 (extents, halo, layout);
/// buffers of distinct items must not alias. Results are bitwise identical
/// to running run_tile_plan() on each item sequentially: each item executes
/// the same negotiated wedge geometry and region math, merely on one worker
/// instead of spread over the pool. A single-item batch degrades to exactly
/// run_tile_plan(). The 1-D form optionally takes the APOP source pattern
/// `src` read through each item's own `k` array.
void run_tile_plan_batch(const Pattern1D& p, const std::vector<TileBatch1D>& items,
                         const Pattern1D* src, int tsteps, const TilePlan& plan);
/// 2-D overload of run_tile_plan_batch(); tiles along y.
void run_tile_plan_batch(const Pattern2D& p, const std::vector<TileBatch2D>& items,
                         int tsteps, const TilePlan& plan);
/// 3-D overload of run_tile_plan_batch(); tiles along z.
void run_tile_plan_batch(const Pattern3D& p, const std::vector<TileBatch3D>& items,
                         int tsteps, const TilePlan& plan);

/// \deprecated Shim over run_tile_plan(), kept for one release. New code
/// runs tiled through `Solver::tiling()` (Solver-owned grids) or
/// run_tile_plan() (caller-owned grids).
void run_tiled(const Pattern1D& p, const FieldView1D& a, const FieldView1D& b, const Pattern1D* src,
               const FieldView1D* k, int tsteps, const TiledOptions& opt);
/// \deprecated 2-D shim over run_tile_plan(), kept for one release.
void run_tiled(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps,
               const TiledOptions& opt);
/// \deprecated 3-D shim over run_tile_plan(), kept for one release.
void run_tiled(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps,
               const TiledOptions& opt);

/// The per-element update levels after one up-stage (triangles) and one
/// down-stage (inverted triangles) of the Fig. 7 tessellation; used by tests
/// to assert the paper's (0,1,2,3,4,3,2,1,0) / all-H states and by the
/// tessellate1d demo.
struct TessellationTrace {
  std::vector<int> after_up;    ///< Level of each element after stage 1.
  std::vector<int> after_down;  ///< After stage 2 (must be uniform H).
};

/// Simulates the Fig. 7 two-stage tessellation bookkeeping (no floating
/// point): `n` elements, tiles of extent `tile`, `height` super-steps per
/// block, wedge slope `slope` per super-step.
TessellationTrace trace_tessellation_1d(int n, int tile, int height,
                                        int slope);

}  // namespace sf
