// Temporal split tiling with parallel stage execution (paper §3.4).
//
// The iteration space is tessellated along one spatial dimension (x in 1-D,
// y in 2-D, z in 3-D) into *triangles* (shrinking tiles) and *inverted
// triangles* (expanding wedges rooted at tile boundaries), exactly the 1-D
// scheme of the paper's Figure 7. Each stage is embarrassingly parallel
// (OpenMP); tiles never recompute a point (redundancy-free). Jacobi double
// buffering makes the wedge reads exact: position x always holds its two
// most recent time levels, one per parity.
//
// Combined with temporal computation folding (Method::Ours2) the wedge
// slope doubles and odd time levels are never materialized — the paper's
// "odd time steps are skipped over" (Fig. 7).
#pragma once

#include "common/cpu.hpp"
#include "grid/grid.hpp"
#include "kernels/api.hpp"
#include "stencil/pattern.hpp"

namespace sf {

struct TiledOptions {
  Method method = Method::Ours2;  // Naive | DLT | Ours | Ours2 are tiled;
                                  // other methods run their untiled kernel
  Isa isa = Isa::Auto;
  int tile = 0;        // tile extent along the tiled dimension (0 = auto)
  int time_block = 0;  // time steps per block (0 = auto)
  int threads = 0;     // 0 = OpenMP default
};

/// Runs `tsteps` Jacobi steps with temporal split tiling; result in `a`.
/// 1-D optionally takes the APOP source term.
void run_tiled(const Pattern1D& p, Grid1D& a, Grid1D& b, const Pattern1D* src,
               const Grid1D* k, int tsteps, const TiledOptions& opt);
void run_tiled(const Pattern2D& p, Grid2D& a, Grid2D& b, int tsteps,
               const TiledOptions& opt);
void run_tiled(const Pattern3D& p, Grid3D& a, Grid3D& b, int tsteps,
               const TiledOptions& opt);

/// The per-element update levels after one up-stage (triangles) and one
/// down-stage (inverted triangles) of the Fig. 7 tessellation; used by tests
/// to assert the paper's (0,1,2,3,4,3,2,1,0) / all-H states and by the
/// tessellate1d demo.
struct TessellationTrace {
  std::vector<int> after_up;    // level of each of n elements after stage 1
  std::vector<int> after_down;  // after stage 2 (must be uniform H)
};
TessellationTrace trace_tessellation_1d(int n, int tile, int height, int slope);

}  // namespace sf
