#include "tiling/split_tiling.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "common/env.hpp"
#include "fold/folding_plan.hpp"
#include "grid/grid_utils.hpp"
#include "kernels/kernels2d_impl.hpp"
#include "kernels/kernels3d_impl.hpp"
#include "kernels/tl_access.hpp"
#include "layout/dlt_layout.hpp"
#include "layout/transpose_layout.hpp"
#include "simd/vecd.hpp"
#include "stencil/reference.hpp"
#include "telemetry/telemetry.hpp"

namespace sf {
namespace {

using detail::folded2d_advance;
using detail::folded3d_advance;
using detail::step_planes_dlt3d;
using detail::step_planes_tl3d;
using detail::step_region_ml2d;
using detail::step_region_ml3d;
using detail::step_rows_dlt2d;
using detail::step_rows_tl2d;

template <int W>
using V = simd::vecd<W>;

/// Geometry/schedule parameters of one wedge run (time in super-steps).
struct WedgePlan {
  int n = 0;      // extent of the tiled dimension
  int slope = 0;  // shift per super-step (m * r)
  int tile = 0;
  int H = 0;      // super-steps per time block
  int threads = 1;
  int levels = 1;  // engaged tile-tree depth (TilePlan::levels)
  Affinity affinity = Affinity::None;
  bool blocked = true;   // false: domain too small, run unblocked
  bool pipeline = true;  // false: legacy global-barrier stage schedule
};

/// Internal view of negotiate_wedge() with time measured in super-steps.
WedgePlan make_plan(int n, int slope, int super_steps, const TilePlan& opt,
                    int fold_m, long slice_bytes) {
  const int m = std::max(1, fold_m);
  const WedgeGeometry g =
      negotiate_wedge(n, slope, m, super_steps * m, opt, slice_bytes);
  WedgePlan w;
  w.n = n;
  w.slope = slope;
  w.tile = g.tile;
  w.H = std::max(1, g.time_block / m);
  w.threads = g.threads;
  w.levels = std::max(1, opt.levels);
  w.affinity = opt.affinity;
  w.blocked = g.blocked;
  w.pipeline = opt.pipeline == Pipeline::On ||
               (opt.pipeline == Pipeline::Auto && env_pipeline());
  return w;
}

/// True when the wedge schedule will run its point-to-point pipelined path:
/// a real pool, more than one worker, the plan asks for it, and the caller
/// is not itself a worker of that pool (a nested pipelined task cannot run
/// inline — worker w's waits on w+1 would never be satisfied in index
/// order — so nested runs keep the barrier schedule, which degrades to
/// inline serial stages safely).
bool pipelined_schedule(const WedgePlan& w, WorkerPool* pool) {
  return pool != nullptr && w.pipeline && pool->threads() > 1 &&
         !pool->on_worker_thread();
}

/// The pool of a wedge plan: the shared (threads, affinity) pool for
/// parallel blocked runs, none for serial ones (a one-worker stage runs
/// inline on the calling thread, exactly like the old OpenMP master).
std::shared_ptr<WorkerPool> plan_pool(const WedgePlan& w) {
  if (!w.blocked || w.threads <= 1) return nullptr;
  return shared_pool(w.threads, w.affinity);
}

/// The generic wedge schedule (tiles = triangles, boundaries = inverted
/// triangles; Jacobi parity buffers make partial-level reads exact).
/// adv(in, out, lo, hi, worker) performs one super-step on [lo, hi) of the
/// tiled dimension (`worker` is the executing pool worker, -1 on the
/// calling thread). The buffer-parity cursor is passed *by value* into each
/// stage call — explicit per (worker, round) state, never a shared variable
/// a pipelined worker could read torn while another advances it.
///
/// Every worker walks exactly the tile range the balanced_placement()
/// ownership map assigns it — the same contiguous chunks OpenMP's
/// schedule(static) produced, and the same map the planner reports
/// (ExecutionPlan::placement) and first_touch() initializes by, so a
/// worker's tiles stay on its NUMA node across all super-steps.
///
/// That per-worker tile loop is also how the schedule walks a hierarchical
/// tile tree (core/execution_plan.hpp TileTree): the worker's owned range
/// [t0, t1) *is* the top (shard) level, each owned tile is one mid-level
/// (LLC-capped, leaf-rounded) tile, and one wedge is the leaf execution.
/// Flat plans are the degenerate one-tile-per-worker walk.
///
/// Tree plans (w.levels >= 2) additionally *fuse* the two sweeps: the
/// inverted wedge at an interior tile boundary kt depends only on the up
/// wedges at kt-1 and kt (the blocked-geometry guarantee keeps every other
/// wedge pair disjoint), so the walk runs up(kt) immediately followed by
/// down(kt) and the flank rows the down wedge consumes are the ones the two
/// preceding up wedges just wrote — reuse distance of one LLC-sized tile
/// instead of the worker's whole shard (the flat walk sweeps all ups, then
/// re-reads everything for the downs). Only the boundary wedge at t0 reads
/// another worker's rows; it stays behind the same neighbor wait as the
/// flat walk. The wedge set and every wedge's inputs are identical — each
/// (row, parity) value is written exactly once per block by the same adv
/// call — so results are bitwise equal across tree depths and the
/// NeighborSync protocol stays per *worker*, i.e. at the top level only.
///
/// Two schedules execute that identical wedge set (bitwise-identical
/// results; only the waiting differs):
///
///  * Barrier (w.pipeline false, or serial, or nested-on-pool): stages run
///    as pool tasks; the barrier between the up (triangles) and down
///    (inverted triangles) stages is the pool task boundary.
///
///  * Pipelined (pipelined_schedule()): one long-lived task per worker with
///    point-to-point NeighborSync counters. Worker w publishes seq = 2b+1
///    after its up stage of block b and seq = 2b+2 after its down stage.
///    With contiguous ownership exactly two waits cover every cross-worker
///    hazard: before up(b>0), wait seq[w+1] >= 2b — the boundary wedge at
///    tile t1 (owned by w+1) rewrote rows w's top tile reads, and w's own
///    up writes into rows that down wedge read (RAW + WAR in one edge);
///    before down(b), wait seq[w-1] >= 2b+1 — the down wedge at tile t0
///    reads w-1's up flank below t0*tile. All remaining stage overlaps are
///    disjoint by the blocked-geometry guarantee tile >= (2H+1)*slope.
///    Edge workers skip the missing-neighbor wait; empty-range workers
///    (ntiles < workers) execute nothing but still publish every round, so
///    neighbors indexed past them never deadlock.
///
/// `prologue(t0, t1, wk)`, when set, runs on each worker before its first
/// up stage (pipelined path only — callers must gate on
/// pipelined_schedule()): the resident-layout transform of the worker's own
/// rows overlaps the first super-step instead of serializing in front of
/// it. No extra sync edge is needed: up(0) reads only the worker's own rows
/// (plus domain-end halo rows, owned by the same edge worker), and down(0)
/// already waits on w-1's up(0) publish, which transitively orders w-1's
/// prologue.
template <class G, class Adv>
int wedge_schedule(G& a, G& b, const WedgePlan& w, int super_steps, Adv&& adv,
                   WorkerPool* pool,
                   const std::function<void(int, int, int)>& prologue = {}) {
  G* bufs[2] = {&a, &b};
  const int ntiles = (w.n + w.tile - 1) / w.tile;
  const int nworkers = pool != nullptr ? pool->threads() : 1;
  const PlacementPlan place = balanced_placement(ntiles, nworkers, w.affinity);
  // Schedule-shape telemetry, resolved once per process at the first tiled
  // run (function-local statics: the wedge entry is too hot for a registry
  // lookup per call). One add per *schedule*, never per tile or cell.
  struct WedgeTelemetry {
    telemetry::Counter pipelined_runs =
        telemetry::counter("tiling.wedge.pipelined_runs");
    telemetry::Counter barrier_runs =
        telemetry::counter("tiling.wedge.barrier_runs");
    telemetry::Counter blocks = telemetry::counter("tiling.wedge.blocks");
    telemetry::Counter tree_runs =
        telemetry::counter("tiling.wedge.tree_runs");
  };
  static const WedgeTelemetry wt;
  const long nblocks = w.H > 0 ? (super_steps + w.H - 1) / w.H : 0;
  // A schedule counts as a tree run when its geometry was negotiated at
  // depth >= 2: LLC-capped tiles per worker, walked with the fused
  // up/down traversal (see above).
  const bool fused = w.levels >= 2;
  if (fused) wt.tree_runs.add(1);
  auto up_tile = [&](int kt, int hb, int cur, int wk) {
    const int x0 = kt * w.tile;
    const int x1 = std::min(w.n, x0 + w.tile);
    for (int sg = 1; sg <= hb; ++sg) {
      const int lo = x0 == 0 ? 0 : x0 + sg * w.slope;
      const int hi = x1 == w.n ? w.n : x1 - sg * w.slope;
      if (lo < hi)
        adv(*bufs[(cur + sg - 1) & 1], *bufs[(cur + sg) & 1], lo, hi, wk);
    }
  };
  auto down_tile = [&](int kt, int hb, int cur, int wk) {
    const int xc = kt * w.tile;
    for (int sg = 1; sg <= hb; ++sg) {
      const int lo = std::max(0, xc - sg * w.slope);
      const int hi = std::min(w.n, xc + sg * w.slope);
      adv(*bufs[(cur + sg - 1) & 1], *bufs[(cur + sg) & 1], lo, hi, wk);
    }
  };
  if (pipelined_schedule(w, pool)) {
    wt.pipelined_runs.add(1);
    wt.blocks.add(nblocks);
    telemetry::Span span("tiling.wedge.pipelined");
    pool->run_pipelined([&](int wk, NeighborSync& sync) {
      const auto [t0, t1] = place.tiles_of(wk);
      if (prologue) prologue(t0, t1, wk);
      int cur = 0;
      long b = 0;
      for (int s0 = 0; s0 < super_steps; s0 += w.H, ++b) {
        const int hb = std::min(w.H, super_steps - s0);
        if (b > 0 && wk + 1 < nworkers) sync.wait_for(wk + 1, 2 * b);
        test_jitter_stall(wk);
        for (int kt = t0; kt < t1; ++kt) {
          up_tile(kt, hb, cur, wk);
          // Tree walk: the interior inverted wedge at kt needs only the up
          // wedges at kt-1 and kt — consume their flanks while resident.
          if (fused && kt > t0) down_tile(kt, hb, cur, wk);
        }
        sync.publish(wk, 2 * b + 1);
        if (wk > 0) sync.wait_for(wk - 1, 2 * b + 1);
        test_jitter_stall(wk);
        if (fused) {
          // Only the boundary wedge at t0 (reads w-1's up flank) is left.
          if (t0 >= 1 && t0 < t1) down_tile(t0, hb, cur, wk);
        } else {
          for (int kt = std::max(1, t0); kt < t1; ++kt)
            down_tile(kt, hb, cur, wk);
        }
        sync.publish(wk, 2 * b + 2);
        cur = (cur + hb) & 1;
      }
    });
    // Every worker advanced parity identically; recompute, don't share.
    int cursor = 0;
    for (int s0 = 0; s0 < super_steps; s0 += w.H)
      cursor = (cursor + std::min(w.H, super_steps - s0)) & 1;
    return cursor;
  }
  wt.barrier_runs.add(1);
  wt.blocks.add(nblocks);
  telemetry::Span span("tiling.wedge.barrier");
  int cursor = 0;
  for (int s0 = 0; s0 < super_steps; s0 += w.H) {
    const int hb = std::min(w.H, super_steps - s0);
    if (pool != nullptr) {
      pool->run([&](int wk) {
        const auto [t0, t1] = place.tiles_of(wk);
        for (int kt = t0; kt < t1; ++kt) {
          up_tile(kt, hb, cursor, wk);
          // Tree walk (see the pipelined path): interior inverted wedges
          // fuse into the up task; only down(t0) needs the stage barrier.
          if (fused && kt > t0) down_tile(kt, hb, cursor, wk);
        }
      });
      pool->run([&](int wk) {
        const auto [t0, t1] = place.tiles_of(wk);
        if (fused) {
          if (t0 >= 1 && t0 < t1) down_tile(t0, hb, cursor, wk);
        } else {
          for (int kt = std::max(1, t0); kt < t1; ++kt)
            down_tile(kt, hb, cursor, wk);
        }
      });
    } else if (fused) {
      for (int kt = 0; kt < ntiles; ++kt) {
        up_tile(kt, hb, cursor, -1);
        if (kt >= 1) down_tile(kt, hb, cursor, -1);
      }
    } else {
      for (int kt = 0; kt < ntiles; ++kt) up_tile(kt, hb, cursor, -1);
      for (int kt = 1; kt < ntiles; ++kt) down_tile(kt, hb, cursor, -1);
    }
    cursor = (cursor + hb) & 1;
  }
  return cursor;
}

// ---------------------------------------------------------------------------
// 1-D advancers (region [lo, hi) of x)
// ---------------------------------------------------------------------------

/// One step over [lo, hi) of a transposed row: whole vector sets inside the
/// region go vectorized, partial sets scalar through the index map.
template <int W>
void tl_region_step_1d(const Pattern1D& p, const Pattern1D* src,
                       const double* kk, int n, const double* in_p,
                       double* out_p, int lo, int hi) {
  const int bs = W * W;
  const int r = p.radius();
  TLRow<W> in(in_p, n);
  TLRow<W> kin(kk != nullptr ? kk : in_p, n);

  auto scalar_span = [&](int s0, int s1) {
    for (int i = s0; i < s1; ++i) {
      double acc = 0;
      for (const auto& t : p.taps) acc += t.w * in.logical(i + t.off[0]);
      if (src != nullptr)
        for (const auto& t : src->taps) acc += t.w * kin.logical(i + t.off[0]);
      out_p[tl_index<W>(i, n)] = acc;
    }
  };

  const int b0 = (lo + bs - 1) / bs;
  const int b1 = std::min(hi / bs, in.nb);
  if (b0 >= b1) {
    scalar_span(lo, hi);
    return;
  }
  scalar_span(lo, b0 * bs);
  V<W> vv[3 * W];
  V<W> vk[3 * W];
  const int sr = src != nullptr ? src->radius() : 0;
  for (int blk = b0; blk < b1; ++blk) {
    for (int i = 0; i < W + 2 * r; ++i) vv[i] = in.vec(blk, i - r);
    if (src != nullptr)
      for (int i = 0; i < W + 2 * sr; ++i) vk[i] = kin.vec(blk, i - sr);
    for (int j = 0; j < W; ++j) {
      V<W> acc = V<W>::zero();
      for (const auto& t : p.taps)
        acc = V<W>::fma(V<W>::set1(t.w), vv[j + t.off[0] + r], acc);
      if (src != nullptr)
        for (const auto& t : src->taps)
          acc = V<W>::fma(V<W>::set1(t.w), vk[j + t.off[0] + sr], acc);
      acc.store(out_p + blk * bs + j * W);
    }
  }
  scalar_span(b1 * bs, hi);
}

/// Folded (m = 2) super-step over [lo, hi) of a transposed row, with a
/// private-buffer boundary correction where the region touches the domain
/// ends (the folded expansion assumes the halo advances in time).
template <int W>
void tl_folded_region_step_1d(const Pattern1D& p, const Pattern1D& lam,
                              const Pattern1D* src, const Pattern1D* fsrc,
                              const double* kk, int n, const double* in_p,
                              double* out_p, int lo, int hi) {
  tl_region_step_1d<W>(lam, fsrc, kk, n, in_p, out_p, lo, hi);

  const int r = p.radius();
  if (r == 0) return;
  TLRow<W> in(in_p, n);
  TLRow<W> kin(kk != nullptr ? kk : in_p, n);
  auto stepwise_at = [&](int i, const std::function<double(int)>& level) {
    double acc = 0;
    for (const auto& t : p.taps) acc += t.w * level(i + t.off[0]);
    if (src != nullptr)
      for (const auto& t : src->taps) acc += t.w * kin.logical(i + t.off[0]);
    return acc;
  };
  for (int side = 0; side < 2; ++side) {
    const int r0 = side == 0 ? 0 : std::max(n - r, 0);
    const int r1 = side == 0 ? std::min(r, n) : n;
    const int f0 = std::max(r0 - r, 0), f1 = std::min(r1 + r, n);
    if (std::max(r0, lo) >= std::min(r1, hi)) continue;
    std::vector<double> t1(static_cast<std::size_t>(f1 - f0));
    std::function<double(int)> lvl0 = [&](int i) { return in.logical(i); };
    for (int i = f0; i < f1; ++i)
      t1[static_cast<std::size_t>(i - f0)] = stepwise_at(i, lvl0);
    std::function<double(int)> lvl1 = [&](int i) {
      if (i < f0 || i >= f1) return in.logical(i);  // halo never advances
      return t1[static_cast<std::size_t>(i - f0)];
    };
    for (int i = std::max(r0, lo); i < std::min(r1, hi); ++i)
      out_p[tl_index<W>(i, n)] = stepwise_at(i, lvl1);
  }
}

/// `serial` forces the whole run onto the calling thread (no pool
/// dispatch): the batched entry runs each item this way on the pool worker
/// that owns it, so nested stage parallelism (and the arena races a nested
/// inline run() would cause for the 3-D folded window) never arises. The
/// wedge geometry is negotiated identically either way, so serial and
/// pooled runs are bitwise identical.
template <int W>
void tiled1d_impl(const Pattern1D& p, const FieldView1D& a, const FieldView1D& b, const Pattern1D* src,
                  const FieldView1D* k, int tsteps, const TiledOptions& opt,
                  bool serial = false) {
  const int n = a.n();
  const int r = p.radius();
  const Method mth = opt.method;
  const int m = mth == Method::Ours2 ? 2 : 1;

  // Layout setup. Transposed-resident views (core/engine.hpp) are already
  // in layout — skip the per-run involution, and read a resident source
  // array zero-copy instead of through a transformed private copy.
  const bool tl = mth == Method::Ours || mth == Method::Ours2;
  const bool resident = tl && a.layout() == Layout::Transposed;
  StagedSource1D<W> ks(k, /*to_layout=*/tl);
  const double* kk = ks.data;
  if (tl && !resident) grid_transpose_layout<W>(a);

  const Pattern1D lam = power(p, 2);
  Pattern1D fsrc;
  if (src != nullptr) fsrc = compose(power_sum(p, 2), *src);

  const int n_tiled = n;
  const int slope_local = m * r;
  const int super = tsteps / m;
  const int rem = tsteps - super * m;
  WedgePlan w = make_plan(n_tiled, slope_local, super, opt, m,
                          sizeof(double));
  const std::shared_ptr<WorkerPool> pool = serial ? nullptr : plan_pool(w);

  auto adv = [&](const FieldView1D& in, const FieldView1D& out, int lo, int hi,
                 int) {
    switch (mth) {
      case Method::Ours:
        tl_region_step_1d<W>(p, src, kk, n, in.data(), out.data(), lo, hi);
        break;
      case Method::Ours2:
        tl_folded_region_step_1d<W>(p, lam, src, src != nullptr ? &fsrc : nullptr,
                                    kk, n, in.data(), out.data(), lo, hi);
        break;
      default:
        apply_pattern(p, in, out, lo, hi);
        if (src != nullptr && k != nullptr) {
          // Source reads must match the active layout (none here: Naive).
          add_source(*src, *k, out, lo, hi);
        }
        break;
    }
  };

  int cursor = 0;
  if (w.blocked) {
    cursor = wedge_schedule(a, b, w, super, adv, pool.get());
  } else {
    // Domain too small to tile: plain full sweeps.
    const FieldView1D* bufs[2] = {&a, &b};
    for (int s = 0; s < super; ++s) {
      adv(*bufs[cursor], *bufs[cursor ^ 1], 0, n_tiled, -1);
      cursor ^= 1;
    }
  }
  // Remainder single steps (folded runs only).
  const FieldView1D* bufs[2] = {&a, &b};
  for (int t = 0; t < rem; ++t) {
    tl_region_step_1d<W>(p, src, kk, n, bufs[cursor]->data(),
                         bufs[cursor ^ 1]->data(), 0, n);
    cursor ^= 1;
  }
  if (cursor != 0) copy_interior(b, a);

  if (tl && !resident) grid_transpose_layout<W>(a);
}

// ---------------------------------------------------------------------------
// 2-D (tiled dimension: y, rows [lo, hi))
// ---------------------------------------------------------------------------
/// `serial`: see tiled1d_impl().
template <int W>
void tiled2d_impl(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps,
                  const TiledOptions& opt, bool serial = false) {
  const int ny = a.ny(), nx = a.nx();
  const int r = p.radius();
  const Method mth = opt.method;
  const int m = mth == Method::Ours2 ? 2 : 1;

  const bool tl = mth == Method::Ours;
  const bool dlt = mth == Method::DLT;
  const bool resident = tl && a.layout() == Layout::Transposed;

  const int super = tsteps / m;
  const int rem = tsteps - super * m;
  WedgePlan w = make_plan(ny, m * r, super, opt, m,
                          sizeof(double) * static_cast<long>(nx));
  const std::shared_ptr<WorkerPool> pool = serial ? nullptr : plan_pool(w);

  // Pipelined blocked runs fold the to-layout transform into the schedule
  // itself (each worker transposes its own rows as the wedge prologue — see
  // wedge_schedule) instead of serializing it in front of the first stage.
  const bool overlap_layout =
      tl && !resident && w.blocked && pipelined_schedule(w, pool.get());
  if (tl && !resident && !overlap_layout) {
    grid_transpose_layout<W>(a);
    grid_transpose_layout<W>(b);
  } else if (dlt) {
    grid_to_dlt(a, W);
    grid_to_dlt(b, W);
  }

  const FoldingPlan plan = mth == Method::Ours2 ? plan_folding(p, 2) : FoldingPlan{};
  const Pattern2D lam = power(p, 2);

  auto adv = [&](const FieldView2D& in, const FieldView2D& out, int lo, int hi,
                 int) {
    switch (mth) {
      case Method::Ours:
        step_rows_tl2d<W>(p, in, out, lo, hi);
        break;
      case Method::Ours2:
        folded2d_advance<W>(p, plan, lam, in, out, /*reuse=*/true, lo, hi);
        break;
      case Method::DLT:
        step_rows_dlt2d<W>(p, in, out, lo, hi);
        break;
      default:
        apply_pattern(p, in, out, lo, hi, 0, nx);
        break;
    }
  };

  int cursor = 0;
  if (w.blocked) {
    std::function<void(int, int, int)> prologue;
    if (overlap_layout) {
      prologue = [&](int t0, int t1, int) {
        if (t0 >= t1) return;
        // Own rows plus the halo rows attached to the domain-end tiles:
        // the up stage reads y-neighbours of boundary rows, and both
        // parity buffers serve as the read level at some stage.
        const int y0 = t0 == 0 ? -a.halo() : t0 * w.tile;
        const int y1 = t1 * w.tile >= ny ? ny + a.halo() : t1 * w.tile;
        grid_transpose_layout_rows<W>(a, y0, y1);
        grid_transpose_layout_rows<W>(b, y0, y1);
      };
    }
    cursor = wedge_schedule(a, b, w, super, adv, pool.get(), prologue);
  } else {
    const FieldView2D* bufs[2] = {&a, &b};
    for (int s = 0; s < super; ++s) {
      adv(*bufs[cursor], *bufs[cursor ^ 1], 0, ny, -1);
      cursor ^= 1;
    }
  }
  const FieldView2D* bufs[2] = {&a, &b};
  for (int t = 0; t < rem; ++t) {
    step_region_ml2d<W>(p, *bufs[cursor], *bufs[cursor ^ 1], 0, ny, 0, nx);
    cursor ^= 1;
  }
  if (cursor != 0) copy_interior(b, a);

  if (tl && !resident) {
    grid_transpose_layout<W>(a);
    grid_transpose_layout<W>(b);
  } else if (dlt) {
    grid_from_dlt(a, W);
    grid_from_dlt(b, W);
  }
}

// ---------------------------------------------------------------------------
// 3-D (tiled dimension: z, planes [lo, hi))
// ---------------------------------------------------------------------------
/// `serial`: see tiled1d_impl().
template <int W>
void tiled3d_impl(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps,
                  const TiledOptions& opt, bool serial = false) {
  const int nz = a.nz(), ny = a.ny(), nx = a.nx();
  const int r = p.radius();
  const Method mth = opt.method;
  const int m = mth == Method::Ours2 ? 2 : 1;

  const bool tl = mth == Method::Ours;
  const bool dlt = mth == Method::DLT;
  const bool resident = tl && a.layout() == Layout::Transposed;

  const int super = tsteps / m;
  const int rem = tsteps - super * m;
  WedgePlan w = make_plan(
      nz, m * r, super, opt, m,
      sizeof(double) * static_cast<long>(ny) * static_cast<long>(nx));
  const std::shared_ptr<WorkerPool> pool = serial ? nullptr : plan_pool(w);

  // See tiled2d_impl: pipelined blocked runs transpose per worker inside
  // the schedule prologue instead of upfront.
  const bool overlap_layout =
      tl && !resident && w.blocked && pipelined_schedule(w, pool.get());
  if (tl && !resident && !overlap_layout) {
    grid_transpose_layout<W>(a);
    grid_transpose_layout<W>(b);
  } else if (dlt) {
    grid_to_dlt(a, W);
    grid_to_dlt(b, W);
  }

  const FoldingPlan plan = mth == Method::Ours2 ? plan_folding(p, 2) : FoldingPlan{};
  const Pattern3D lam = power(p, 2);

  auto adv = [&](const FieldView3D& in, const FieldView3D& out, int lo, int hi,
                 int wk) {
    switch (mth) {
      case Method::Ours:
        step_planes_tl3d<W>(p, in, out, lo, hi);
        break;
      case Method::Ours2: {
        // The sliding plane window lives in the owning worker's pool arena
        // (allocated there, so its pages sit on the worker's NUMA node;
        // Engine::prepare pre-sizes it). Off-pool callers fall back to a
        // calling-thread-local window.
        thread_local std::vector<AlignedBuffer> tls_window;
        std::vector<AlignedBuffer>& window =
            pool != nullptr && wk >= 0 ? pool->arena(wk) : tls_window;
        folded3d_advance<W>(p, plan, lam, in, out, window, lo, hi);
        break;
      }
      case Method::DLT:
        step_planes_dlt3d<W>(p, in, out, lo, hi);
        break;
      default:
        apply_pattern(p, in, out, lo, hi, 0, ny, 0, nx);
        break;
    }
  };

  int cursor = 0;
  if (w.blocked) {
    // Pipelined folded runs first-touch the per-worker plane window in the
    // prologue slot that already overlaps the first super-step — the same
    // down(0) transitive wait orders it, so no extra sync edge and no
    // separate pool dispatch ahead of the run (Engine::prepare only
    // pre-sizes arenas for barrier-mode plans).
    const bool overlap_arena = mth == Method::Ours2 && pool != nullptr &&
                               pipelined_schedule(w, pool.get());
    const detail::Folded3DWindowShape window_shape =
        overlap_arena ? detail::folded3d_window_shape(plan, nx, W)
                      : detail::Folded3DWindowShape{};
    std::function<void(int, int, int)> prologue;
    if (overlap_layout || overlap_arena) {
      prologue = [&](int t0, int t1, int wk) {
        if (overlap_arena)
          pool->ensure_arena_local(wk, window_shape.nbufs,
                                   window_shape.doubles);
        if (!overlap_layout || t0 >= t1) return;
        const int z0 = t0 == 0 ? -a.halo() : t0 * w.tile;
        const int z1 = t1 * w.tile >= nz ? nz + a.halo() : t1 * w.tile;
        grid_transpose_layout_planes<W>(a, z0, z1);
        grid_transpose_layout_planes<W>(b, z0, z1);
      };
    }
    cursor = wedge_schedule(a, b, w, super, adv, pool.get(), prologue);
  } else {
    const FieldView3D* bufs[2] = {&a, &b};
    for (int s = 0; s < super; ++s) {
      adv(*bufs[cursor], *bufs[cursor ^ 1], 0, nz, -1);
      cursor ^= 1;
    }
  }
  const FieldView3D* bufs[2] = {&a, &b};
  for (int t = 0; t < rem; ++t) {
    step_region_ml3d<W>(p, *bufs[cursor], *bufs[cursor ^ 1], 0, nz, 0, ny, 0, nx);
    cursor ^= 1;
  }
  if (cursor != 0) copy_interior(b, a);

  if (tl && !resident) {
    grid_transpose_layout<W>(a);
    grid_transpose_layout<W>(b);
  } else if (dlt) {
    grid_from_dlt(a, W);
    grid_from_dlt(b, W);
  }
}

}  // namespace

WedgeGeometry negotiate_wedge(int n_tiled, int slope, int fold_m, int tsteps,
                              const TilePlan& requested, long slice_bytes) {
  const int m = std::max(1, fold_m);
  const int super_steps = tsteps / m;
  WedgeGeometry g;
  g.threads = requested.threads > 0 ? requested.threads : hardware_threads();
  if (requested.tile > 0) {
    g.tile = requested.tile;
  } else {
    long tile = n_tiled / std::max(1, g.threads);
    if (g.threads == 1) {
      // Serial runs get no per-thread split — the share above is the whole
      // domain and would never block. Cap the tile so its ping-pong pair
      // (2 buffers plus wedge slack) stays LLC-resident, turning serial
      // split tiling into the Fig. 8 cache-blocking optimization. With
      // multiple threads the per-thread split is the paper's Fig. 9/10
      // geometry and t concurrent tiles could not share the LLC anyway.
      const long cache_cap =
          llc_bytes() / std::max(1L, 3 * std::max<long>(slice_bytes, 1));
      if (cache_cap < tile) tile = cache_cap;
    }
    g.tile = static_cast<int>(std::max<long>(4 * slope, tile));
  }
  const int h_from_tile = std::max(1, (g.tile / std::max(1, slope) - 2) / 2);
  int H = requested.time_block > 0 ? std::max(1, requested.time_block / m)
                                   : h_from_tile;
  H = std::min({H, h_from_tile, std::max(1, super_steps)});
  g.time_block = H * m;
  // Wedges must stay disjoint from neighbour wedge writes during a stage.
  g.blocked =
      super_steps > 0 && g.tile < n_tiled && g.tile >= (2 * H + 1) * slope;
  return g;
}

bool tiled_path_engages(const KernelInfo& k, int radius, int src_radius,
                        long nx) {
  // The 1-D source term widens the wedge reads: the stage must cover the
  // wider of the two radii.
  if (!k.tileable(std::max(radius, src_radius))) return false;
  // DLT's lifted layout needs a full stencil of lifted rows per tile; with
  // fewer the lifted seam folds back into every tile (shape-, not
  // capability-dependent, so it lives here rather than in the registry).
  if (k.method == Method::DLT &&
      nx / std::max(k.width, 1) < 2L * radius + 1)
    return false;
  return true;
}

void run_tile_plan(const Pattern1D& p, const FieldView1D& a, const FieldView1D& b,
                   const Pattern1D* src, const FieldView1D* k, int tsteps,
                   const TilePlan& plan) {
  const KernelInfo* info = find_kernel(plan.method, 1, plan.isa);
  const int sr = src != nullptr ? src->radius() : 0;
  // 1-D DLT never engages (tiled_max_radius = -1): the lifted layout's seam
  // couples column 0 to column L-1 across lanes, so column tiles are not
  // spatially local and concurrent wedges would race on the seam. SDSL-1D
  // therefore runs the untiled lifted kernel (see DESIGN.md).
  if (info == nullptr || !tiled_path_engages(*info, p.radius(), sr, a.n())) {
    kernel1d(plan.method, plan.isa)(p, a, b, src, k, tsteps);
    return;
  }
  switch (isa_width(resolve_isa(plan.isa))) {
    case 8: tiled1d_impl<8>(p, a, b, src, k, tsteps, plan); break;
    case 4: tiled1d_impl<4>(p, a, b, src, k, tsteps, plan); break;
    default: tiled1d_impl<1>(p, a, b, src, k, tsteps, plan); break;
  }
}

void run_tile_plan(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps,
                   const TilePlan& plan) {
  const KernelInfo* info = find_kernel(plan.method, 2, plan.isa);
  if (info == nullptr || !tiled_path_engages(*info, p.radius(), 0, a.nx())) {
    kernel2d(plan.method, plan.isa)(p, a, b, tsteps);
    return;
  }
  switch (isa_width(resolve_isa(plan.isa))) {
    case 8: tiled2d_impl<8>(p, a, b, tsteps, plan); break;
    case 4: tiled2d_impl<4>(p, a, b, tsteps, plan); break;
    default: tiled2d_impl<1>(p, a, b, tsteps, plan); break;
  }
}

void run_tile_plan(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps,
                   const TilePlan& plan) {
  const KernelInfo* info = find_kernel(plan.method, 3, plan.isa);
  if (info == nullptr || !tiled_path_engages(*info, p.radius(), 0, a.nx())) {
    kernel3d(plan.method, plan.isa)(p, a, b, tsteps);
    return;
  }
  switch (isa_width(resolve_isa(plan.isa))) {
    case 8: tiled3d_impl<8>(p, a, b, tsteps, plan); break;
    case 4: tiled3d_impl<4>(p, a, b, tsteps, plan); break;
    default: tiled3d_impl<1>(p, a, b, tsteps, plan); break;
  }
}

namespace {

/// The batch fan-out: one pool dispatch laying `nitems` over the shared
/// (threads, affinity) pool with the balanced_placement() ownership map;
/// `run_item(i)` executes item i's complete serial lifecycle on its owning
/// worker. Single-worker or single-item batches run inline on the caller.
void fan_out_items(std::size_t nitems, const TilePlan& plan,
                   const std::function<void(int)>& run_item) {
  const int threads =
      plan.threads > 0 ? plan.threads : hardware_threads();
  if (threads > 1 && nitems > 1) {
    shared_pool(threads, plan.affinity)
        ->parallel_for(0, static_cast<int>(nitems), run_item);
  } else {
    for (std::size_t i = 0; i < nitems; ++i)
      run_item(static_cast<int>(i));
  }
}

}  // namespace

void run_tile_plan_batch(const Pattern1D& p, const std::vector<TileBatch1D>& items,
                         const Pattern1D* src, int tsteps, const TilePlan& plan) {
  if (items.empty()) return;
  if (items.size() == 1) {
    run_tile_plan(p, items[0].a, items[0].b, src, items[0].k, tsteps, plan);
    return;
  }
  const KernelInfo* info = find_kernel(plan.method, 1, plan.isa);
  const int sr = src != nullptr ? src->radius() : 0;
  const bool engages =
      info != nullptr && tiled_path_engages(*info, p.radius(), sr, items[0].a.n());
  const int width = isa_width(resolve_isa(plan.isa));
  fan_out_items(items.size(), plan, [&](int i) {
    const TileBatch1D& it = items[static_cast<std::size_t>(i)];
    if (!engages) {
      kernel1d(plan.method, plan.isa)(p, it.a, it.b, src, it.k, tsteps);
      return;
    }
    switch (width) {
      case 8: tiled1d_impl<8>(p, it.a, it.b, src, it.k, tsteps, plan, true); break;
      case 4: tiled1d_impl<4>(p, it.a, it.b, src, it.k, tsteps, plan, true); break;
      default: tiled1d_impl<1>(p, it.a, it.b, src, it.k, tsteps, plan, true); break;
    }
  });
}

void run_tile_plan_batch(const Pattern2D& p, const std::vector<TileBatch2D>& items,
                         int tsteps, const TilePlan& plan) {
  if (items.empty()) return;
  if (items.size() == 1) {
    run_tile_plan(p, items[0].a, items[0].b, tsteps, plan);
    return;
  }
  const KernelInfo* info = find_kernel(plan.method, 2, plan.isa);
  const bool engages =
      info != nullptr && tiled_path_engages(*info, p.radius(), 0, items[0].a.nx());
  const int width = isa_width(resolve_isa(plan.isa));
  fan_out_items(items.size(), plan, [&](int i) {
    const TileBatch2D& it = items[static_cast<std::size_t>(i)];
    if (!engages) {
      kernel2d(plan.method, plan.isa)(p, it.a, it.b, tsteps);
      return;
    }
    switch (width) {
      case 8: tiled2d_impl<8>(p, it.a, it.b, tsteps, plan, true); break;
      case 4: tiled2d_impl<4>(p, it.a, it.b, tsteps, plan, true); break;
      default: tiled2d_impl<1>(p, it.a, it.b, tsteps, plan, true); break;
    }
  });
}

void run_tile_plan_batch(const Pattern3D& p, const std::vector<TileBatch3D>& items,
                         int tsteps, const TilePlan& plan) {
  if (items.empty()) return;
  if (items.size() == 1) {
    run_tile_plan(p, items[0].a, items[0].b, tsteps, plan);
    return;
  }
  const KernelInfo* info = find_kernel(plan.method, 3, plan.isa);
  const bool engages =
      info != nullptr && tiled_path_engages(*info, p.radius(), 0, items[0].a.nx());
  const int width = isa_width(resolve_isa(plan.isa));
  fan_out_items(items.size(), plan, [&](int i) {
    const TileBatch3D& it = items[static_cast<std::size_t>(i)];
    if (!engages) {
      kernel3d(plan.method, plan.isa)(p, it.a, it.b, tsteps);
      return;
    }
    switch (width) {
      case 8: tiled3d_impl<8>(p, it.a, it.b, tsteps, plan, true); break;
      case 4: tiled3d_impl<4>(p, it.a, it.b, tsteps, plan, true); break;
      default: tiled3d_impl<1>(p, it.a, it.b, tsteps, plan, true); break;
    }
  });
}

// Deprecated shims: one release of grace for the pre-ExecutionPlan API.

void run_tiled(const Pattern1D& p, const FieldView1D& a, const FieldView1D& b, const Pattern1D* src,
               const FieldView1D* k, int tsteps, const TiledOptions& opt) {
  run_tile_plan(p, a, b, src, k, tsteps, opt);
}

void run_tiled(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps,
               const TiledOptions& opt) {
  run_tile_plan(p, a, b, tsteps, opt);
}

void run_tiled(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps,
               const TiledOptions& opt) {
  run_tile_plan(p, a, b, tsteps, opt);
}

}  // namespace sf
