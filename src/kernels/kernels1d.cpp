// 1-D executors for every method of the paper's comparison.
//
// All kernels share the Jacobi ping-pong driver and the Dirichlet-halo
// semantics of stencil/reference.hpp. The vector methods differ only in how
// they organize data for SIMD — which is exactly the variable the paper's
// Figure 8 isolates:
//   MultipleLoads  one unaligned load per tap,
//   DataReorg      aligned loads + in-register concatenation shifts,
//   DLT            global dimension-lifting transpose with seam fixups,
//   Ours           the register-transpose layout (one aligned load per
//                  in-block vector, blend+rotate for the two edge vectors),
//   Ours2          Ours + temporal folding with m=2 (Λ = p², intermediate
//                  time level never materialized; boundary ring recomputed
//                  stepwise).
#include <stdexcept>
#include <vector>

#include "fold/region.hpp"
#include "grid/grid_utils.hpp"
#include "kernels/registry.hpp"
#include "kernels/tl_access.hpp"
#include "layout/dlt_layout.hpp"
#include "simd/transpose.hpp"
#include "simd/vecd.hpp"
#include "stencil/reference.hpp"

namespace sf {
namespace {

template <int W>
using V = simd::vecd<W>;

/// Runtime tap table with per-tap broadcast weights.
template <int W>
struct VTaps1 {
  std::vector<int> off;
  std::vector<V<W>> w;
  int r = 0;

  explicit VTaps1(const Pattern1D& p) {
    for (const auto& t : p.taps) {
      off.push_back(t.off[0]);
      w.push_back(V<W>::set1(t.w));
    }
    r = p.radius();
  }
  int size() const { return static_cast<int>(off.size()); }
};

double scalar_apply(const Pattern1D& p, const double* in, int i) {
  double acc = 0;
  for (const auto& t : p.taps) acc += t.w * in[i + t.off[0]];
  return acc;
}

// ---------------------------------------------------------------------------
// Naive
// ---------------------------------------------------------------------------
void run_naive1d(const Pattern1D& p, const FieldView1D& a, const FieldView1D& b, const Pattern1D* src,
                 const FieldView1D* k, int tsteps) {
  run_reference(p, a, b, tsteps, src, k);
}

// ---------------------------------------------------------------------------
// Multiple loads
// ---------------------------------------------------------------------------
template <int W>
void run_ml1d(const Pattern1D& p, const FieldView1D& a, const FieldView1D& b, const Pattern1D* src,
              const FieldView1D* k, int tsteps) {
  const int n = a.n();
  VTaps1<W> taps(p);
  VTaps1<W> staps(src != nullptr ? *src : Pattern1D{});
  const double* kk = k != nullptr ? k->data() : nullptr;

  const FieldView1D* cur = &a;
  const FieldView1D* nxt = &b;
  for (int t = 0; t < tsteps; ++t) {
    const double* in = cur->data();
    double* out = nxt->data();
    int x = 0;
    for (; x + W <= n; x += W) {
      V<W> acc = V<W>::zero();
      for (int i = 0; i < taps.size(); ++i)
        acc = V<W>::fma(taps.w[i], V<W>::loadu(in + x + taps.off[i]), acc);
      for (int i = 0; i < staps.size(); ++i)
        acc = V<W>::fma(staps.w[i], V<W>::loadu(kk + x + staps.off[i]), acc);
      acc.store(out + x);
    }
    for (; x < n; ++x) {
      double acc = scalar_apply(p, in, x);
      if (src != nullptr) acc += scalar_apply(*src, kk, x);
      out[x] = acc;
    }
    std::swap(cur, nxt);
  }
  if (cur != &a) copy_interior(*cur, a);
}

// ---------------------------------------------------------------------------
// Data reorganization
// ---------------------------------------------------------------------------
template <int W>
void run_dr1d(const Pattern1D& p, const FieldView1D& a, const FieldView1D& b, const Pattern1D* src,
              const FieldView1D* k, int tsteps) {
  const int n = a.n();
  if (p.radius() > W || (src != nullptr && src->radius() > W)) {
    run_naive1d(p, a, b, src, k, tsteps);  // shifts cannot reach that far
    return;
  }
  VTaps1<W> taps(p);
  VTaps1<W> staps(src != nullptr ? *src : Pattern1D{});
  const double* kk = k != nullptr ? k->data() : nullptr;

  const FieldView1D* cur = &a;
  const FieldView1D* nxt = &b;
  for (int t = 0; t < tsteps; ++t) {
    const double* in = cur->data();
    double* out = nxt->data();
    int x = 0;
    for (; x + W <= n; x += W) {
      V<W> l = V<W>::loadu(in + x - W);
      V<W> c = V<W>::loadu(in + x);
      V<W> r = V<W>::loadu(in + x + W);
      V<W> acc = V<W>::zero();
      for (int i = 0; i < taps.size(); ++i)
        acc = V<W>::fma(taps.w[i], shifted<W>(l, c, r, taps.off[i]), acc);
      if (src != nullptr) {
        V<W> kl = V<W>::loadu(kk + x - W);
        V<W> kc = V<W>::loadu(kk + x);
        V<W> kr = V<W>::loadu(kk + x + W);
        for (int i = 0; i < staps.size(); ++i)
          acc = V<W>::fma(staps.w[i], shifted<W>(kl, kc, kr, staps.off[i]), acc);
      }
      acc.store(out + x);
    }
    for (; x < n; ++x) {
      double acc = scalar_apply(p, in, x);
      if (src != nullptr) acc += scalar_apply(*src, kk, x);
      out[x] = acc;
    }
    std::swap(cur, nxt);
  }
  if (cur != &a) copy_interior(*cur, a);
}

// ---------------------------------------------------------------------------
// DLT
// ---------------------------------------------------------------------------
template <int W>
void run_dlt1d(const Pattern1D& p, const FieldView1D& a, const FieldView1D& b, const Pattern1D* src,
               const FieldView1D* k, int tsteps) {
  const int n = a.n();
  const int L = n / W;
  const int n0 = L * W;
  const int r = p.radius();
  const int sr = src != nullptr ? src->radius() : 0;
  if (L < 2 * std::max(r, sr) + 1) {
    run_naive1d(p, a, b, src, k, tsteps);  // too short to lift
    return;
  }
  VTaps1<W> taps(p);
  VTaps1<W> staps(src != nullptr ? *src : Pattern1D{});

  grid_to_dlt(a, W);
  // The source array is lifted into a private copy so `k` stays untouched.
  Grid1D kd(k != nullptr ? k->n() : 1, k != nullptr ? k->halo() : 1);
  if (k != nullptr) {
    copy(*k, kd);
    grid_to_dlt(kd, W);
  }
  const double* kk = k != nullptr ? kd.data() : nullptr;

  const int seam = std::max(r, sr);
  const FieldView1D* cur = &a;
  const FieldView1D* nxt = &b;
  for (int t = 0; t < tsteps; ++t) {
    const double* in = cur->data();
    double* out = nxt->data();
    // Lifted interior columns: neighbours are adjacent columns, same lanes.
    for (int j = seam; j < L - seam; ++j) {
      V<W> acc = V<W>::zero();
      for (int i = 0; i < taps.size(); ++i)
        acc = V<W>::fma(taps.w[i], V<W>::load(in + (j + taps.off[i]) * W), acc);
      for (int i = 0; i < staps.size(); ++i)
        acc = V<W>::fma(staps.w[i], V<W>::load(kk + (j + staps.off[i]) * W), acc);
      acc.store(out + j * W);
    }
    // Seam columns and the unlifted tail, via the logical index map.
    auto scalar_at = [&](int i) {
      double acc = 0;
      for (const auto& tp : p.taps) acc += tp.w * in[dlt_index(i + tp.off[0], n, W)];
      if (src != nullptr)
        for (const auto& tp : src->taps)
          acc += tp.w * kk[dlt_index(i + tp.off[0], n, W)];
      return acc;
    };
    for (int lane = 0; lane < W; ++lane)
      for (int j = 0; j < seam; ++j) {
        const int il = lane * L + j;          // left seam, logical
        const int ir = lane * L + (L - 1 - j);  // right seam, logical
        out[dlt_index(il, n, W)] = scalar_at(il);
        out[dlt_index(ir, n, W)] = scalar_at(ir);
      }
    for (int i = n0; i < n; ++i) out[i] = scalar_at(i);
    std::swap(cur, nxt);
  }
  if (cur != &a) copy_interior(*cur, a);
  grid_from_dlt(a, W);
}

// ---------------------------------------------------------------------------
// Ours: register-transpose layout, 1-step
// ---------------------------------------------------------------------------

/// One time step over a transposed row; shared by Ours and the remainder
/// step of Ours2. Taps' radius must be <= W.
template <int W>
void tl_step_1d(const VTaps1<W>& taps, const Pattern1D& p, const VTaps1<W>& staps,
                const Pattern1D* src, const double* kk, int n,
                const double* in_p, double* out_p) {
  TLRow<W> in(in_p, n);
  TLRow<W> kin(kk != nullptr ? kk : in_p, n);
  const int bs = W * W;
  const int R = taps.r;
  V<W> vv[3 * W];
  V<W> vk[3 * W];

  for (int blk = 0; blk < in.nb; ++blk) {
    for (int i = 0; i < W + 2 * R; ++i) vv[i] = in.vec(blk, i - R);
    if (src != nullptr)
      for (int i = 0; i < W + 2 * staps.r; ++i) vk[i] = kin.vec(blk, i - staps.r);
    for (int j = 0; j < W; ++j) {
      V<W> acc = V<W>::zero();
      for (int i = 0; i < taps.size(); ++i)
        acc = V<W>::fma(taps.w[i], vv[j + taps.off[i] + R], acc);
      for (int i = 0; i < staps.size(); ++i)
        acc = V<W>::fma(staps.w[i], vk[j + staps.off[i] + staps.r], acc);
      acc.store(out_p + blk * bs + j * W);
    }
  }
  // Untransposed tail.
  for (int i = in.nb * bs; i < n; ++i) {
    double acc = 0;
    for (const auto& t : p.taps) acc += t.w * in.logical(i + t.off[0]);
    if (src != nullptr)
      for (const auto& t : src->taps) acc += t.w * kin.logical(i + t.off[0]);
    out_p[i] = acc;
  }
}

template <int W>
void run_ours1_1d(const Pattern1D& p, const FieldView1D& a, const FieldView1D& b, const Pattern1D* src,
                  const FieldView1D* k, int tsteps) {
  const int n = a.n();
  if (p.radius() > W || (src != nullptr && src->radius() > W)) {
    run_naive1d(p, a, b, src, k, tsteps);  // edge assembly covers one block
    return;
  }
  VTaps1<W> taps(p);
  VTaps1<W> staps(src != nullptr ? *src : Pattern1D{});

  // Transposed-resident views (core/engine.hpp) are already in layout: the
  // per-call involution in and out is skipped, and a resident source array
  // is read zero-copy instead of through a transformed private copy.
  const bool resident = a.layout() == Layout::Transposed;
  if (!resident) grid_transpose_layout<W>(a);
  StagedSource1D<W> ks(k);
  const double* kk = ks.data;

  const FieldView1D* cur = &a;
  const FieldView1D* nxt = &b;
  for (int t = 0; t < tsteps; ++t) {
    tl_step_1d<W>(taps, p, staps, src, kk, n, cur->data(), nxt->data());
    std::swap(cur, nxt);
  }
  if (cur != &a) copy_interior(*cur, a);
  if (!resident) grid_transpose_layout<W>(a);  // involution: original order
}

// ---------------------------------------------------------------------------
// Ours2: transpose layout + temporal folding, m = 2
// ---------------------------------------------------------------------------
template <int W>
void run_ours2_1d(const Pattern1D& p, const FieldView1D& a, const FieldView1D& b, const Pattern1D* src,
                  const FieldView1D* k, int tsteps) {
  const int n = a.n();
  const int r = p.radius();
  const Pattern1D lam = power(p, 2);
  const int R = lam.radius();
  Pattern1D fsrc;  // folded source: (I + p) applied to src
  if (src != nullptr) fsrc = compose(power_sum(p, 2), *src);
  if (R > W || (src != nullptr && fsrc.radius() > W)) {
    run_ours1_1d<W>(p, a, b, src, k, tsteps);  // folding needs R <= W
    return;
  }

  VTaps1<W> taps(p);
  VTaps1<W> ltaps(lam);
  VTaps1<W> staps(src != nullptr ? *src : Pattern1D{});
  VTaps1<W> fstaps(src != nullptr ? fsrc : Pattern1D{});

  // Resident views skip the involution; see run_ours1_1d.
  const bool resident = a.layout() == Layout::Transposed;
  if (!resident) grid_transpose_layout<W>(a);
  StagedSource1D<W> ks(k);
  const double* kk = ks.data;

  // Scratch for the stepwise boundary-ring correction (width 2r frames).
  const auto f1segs = frame_segs(n, std::min(2 * r, n));
  std::vector<std::vector<double>> t1(f1segs.size());
  for (std::size_t s = 0; s < f1segs.size(); ++s)
    t1[s].resize(static_cast<std::size_t>(f1segs[s].b - f1segs[s].a));

  const FieldView1D* cur = &a;
  const FieldView1D* nxt = &b;
  int t = 0;
  for (; t + 2 <= tsteps; t += 2) {
    // Folded vector pass (values inside the ring are provisional).
    tl_step_1d<W>(ltaps, lam, fstaps, src != nullptr ? &fsrc : nullptr, kk, n,
                  cur->data(), nxt->data());

    // Ring correction: recompute t+1 on frames of width 2r, then t+2 on the
    // ring of width r, all scalar through the layout-aware accessors.
    TLRow<W> in(cur->data(), n);
    TLRowMut<W> out(nxt->data(), n);
    TLRow<W> kin(kk != nullptr ? kk : cur->data(), n);
    auto level0 = [&](int i) { return in.logical(i); };
    for (std::size_t s = 0; s < f1segs.size(); ++s) {
      const Seg seg = f1segs[s];
      for (int i = seg.a; i < seg.b; ++i) {
        double acc = 0;
        for (const auto& tp : p.taps) acc += tp.w * level0(i + tp.off[0]);
        if (src != nullptr)
          for (const auto& tp : src->taps) acc += tp.w * kin.logical(i + tp.off[0]);
        t1[s][static_cast<std::size_t>(i - seg.a)] = acc;
      }
    }
    auto level1 = [&](int i) -> double {
      if (i < 0 || i >= n) return in.logical(i);  // halo never advances
      for (std::size_t s = 0; s < f1segs.size(); ++s)
        if (i >= f1segs[s].a && i < f1segs[s].b)
          return t1[s][static_cast<std::size_t>(i - f1segs[s].a)];
      return 0.0;  // unreachable: ring neighbours lie in the frames
    };
    for (const Seg& seg : frame_segs(n, std::min(r, n))) {
      for (int i = seg.a; i < seg.b; ++i) {
        double acc = 0;
        for (const auto& tp : p.taps) acc += tp.w * level1(i + tp.off[0]);
        if (src != nullptr)
          for (const auto& tp : src->taps) acc += tp.w * kin.logical(i + tp.off[0]);
        out.logical(i) = acc;
      }
    }
    std::swap(cur, nxt);
  }
  for (; t < tsteps; ++t) {
    tl_step_1d<W>(taps, p, staps, src, kk, n, cur->data(), nxt->data());
    std::swap(cur, nxt);
  }
  if (cur != &a) copy_interior(*cur, a);
  if (!resident) grid_transpose_layout<W>(a);
}

// ---------------------------------------------------------------------------
// Registration. Capabilities (see kernels/registry.hpp):
//  * naive/multiple-loads read at most `radius` beyond the interior;
//  * data-reorg's aligned L/C/R loads touch one full vector beyond it
//    (halo_floor = W) and its shifts reach at most W (max_radius = W);
//  * the transpose-layout methods assemble edge lanes from scalar halo
//    reads, so plain `radius` halo suffices; folding (m = 2) doubles it;
//  * Ours2's folded pass needs power(p, 2).radius() = 2r <= W.
// ---------------------------------------------------------------------------
const KernelRegistrar reg1d{{
    // Naive is ISA-independent scalar code; it is registered at every
    // level so exact-ISA lookups succeed, with width 1 reflecting how it
    // actually executes.
    // Tileability (last parameter): the wedge stage runs apply_pattern for
    // Naive (any radius); multiple-loads/data-reorg have no tiled stage;
    // 1-D DLT cannot be wedge-tiled (the lifted seam couples column 0 to
    // column L-1, see run_tiled); ours/ours-2step tile while the
    // (fold-doubled) radius fits the transposed vector window W.
    kernel1d_info(Method::Naive, Isa::Scalar, 1, 1, &run_naive1d, 0, 0, 0),
    kernel1d_info(Method::Naive, Isa::Avx2, 1, 1, &run_naive1d, 0, 0, 0),
    kernel1d_info(Method::Naive, Isa::Avx512, 1, 1, &run_naive1d, 0, 0, 0),
    kernel1d_info(Method::MultipleLoads, Isa::Scalar, 1, 1, &run_ml1d<1>),
    kernel1d_info(Method::MultipleLoads, Isa::Avx2, 4, 1, &run_ml1d<4>),
    kernel1d_info(Method::MultipleLoads, Isa::Avx512, 8, 1, &run_ml1d<8>),
    kernel1d_info(Method::DataReorg, Isa::Scalar, 1, 1, &run_dr1d<1>,
                  /*halo_floor=*/1, /*max_radius=*/1),
    kernel1d_info(Method::DataReorg, Isa::Avx2, 4, 1, &run_dr1d<4>, 4, 4),
    kernel1d_info(Method::DataReorg, Isa::Avx512, 8, 1, &run_dr1d<8>, 8, 8),
    kernel1d_info(Method::DLT, Isa::Scalar, 1, 1, &run_dlt1d<1>),
    kernel1d_info(Method::DLT, Isa::Avx2, 4, 1, &run_dlt1d<4>),
    kernel1d_info(Method::DLT, Isa::Avx512, 8, 1, &run_dlt1d<8>),
    // The transpose-layout methods keep field data in Layout::Transposed
    // between steps, so they declare it as their preferred resident layout
    // (transposed-tagged views skip the per-call involution).
    kernel1d_info(Method::Ours, Isa::Scalar, 1, 1, &run_ours1_1d<1>, 0, 1, 1,
                  Layout::Transposed),
    kernel1d_info(Method::Ours, Isa::Avx2, 4, 1, &run_ours1_1d<4>, 0, 4, 4,
                  Layout::Transposed),
    kernel1d_info(Method::Ours, Isa::Avx512, 8, 1, &run_ours1_1d<8>, 0, 8, 8,
                  Layout::Transposed),
    kernel1d_info(Method::Ours2, Isa::Scalar, 1, 2, &run_ours2_1d<1>, 0, -1,
                  -1),
    kernel1d_info(Method::Ours2, Isa::Avx2, 4, 2, &run_ours2_1d<4>, 0, 2, 2,
                  Layout::Transposed),
    kernel1d_info(Method::Ours2, Isa::Avx512, 8, 2, &run_ours2_1d<8>, 0, 4, 4,
                  Layout::Transposed),
}};

}  // namespace

}  // namespace sf
