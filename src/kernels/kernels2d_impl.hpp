// Internal declarations shared between kernels2d.cpp (baselines + 1-step
// transpose layout) and folded2d.cpp (temporal folding). Not part of the
// public API.
//
// Layout contract of the run_* entry points: views tagged Layout::Natural
// are transformed into the kernel's working layout on entry and back on
// exit; views tagged with the kernel's preferred layout (Transposed for
// run_ours1_2d — see KernelInfo::preferred_layout) are executed in place
// with the per-call involution skipped. The step_/advance region functions
// below always require data already in the working layout.
#pragma once

#include "fold/folding_plan.hpp"
#include "grid/grid.hpp"
#include "stencil/pattern.hpp"

namespace sf::detail {

void run_naive2d(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps);

template <int W>
void run_ml2d(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps);
template <int W>
void run_dr2d(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps);
template <int W>
void run_dlt2d(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps);
template <int W>
void run_ours1_2d(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps);
template <int W>
void run_ours2_2d(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps);

/// Ours2 with the shifts-reuse ring buffer disabled (each vector set's
/// counterparts recomputed from scratch) — the §3.4 ablation.
template <int W>
void run_ours2_2d_noreuse(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps);

/// One multiple-loads time step over a rectangular region (used by the
/// folded kernel's odd-step remainder and by the tiling framework).
template <int W>
void step_region_ml2d(const Pattern2D& p, const FieldView2D& in, const FieldView2D& out,
                      int y0, int y1, int x0, int x1);

/// One transpose-layout step over rows [y0, y1); grids must be in transpose
/// layout and r <= min(W, 4).
template <int W>
void step_rows_tl2d(const Pattern2D& p, const FieldView2D& in, const FieldView2D& out, int y0,
                    int y1);

/// One DLT step over rows [y0, y1); grids must be lifted and nx/W >= 2r+1.
template <int W>
void step_rows_dlt2d(const Pattern2D& p, const FieldView2D& in, const FieldView2D& out, int y0,
                     int y1);

/// One folded (m = 2) advance over rows [ry0, ry1), vectorized per the
/// paper's Fig. 5 pipeline (full grid: ry0 = 0, ry1 = ny). `reuse` toggles
/// the shifts-reuse ring buffer. Requires plan.radius <= min(W, 4).
/// Thread-safe across disjoint row ranges (ring corrections use private
/// buffers).
///
/// Correctness over a partial row range relies on the caller guaranteeing
/// (as split tiling's wedge slopes do) that `in` holds time-t values on
/// rows [ry0 - 2r, ry1 + 2r).
template <int W>
void folded2d_advance(const Pattern2D& p, const FoldingPlan& plan,
                      const Pattern2D& lambda, const FieldView2D& in, const FieldView2D& out,
                      bool reuse, int ry0, int ry1);

}  // namespace sf::detail
