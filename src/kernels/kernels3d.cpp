// 3-D executors: naive, multiple-loads, data-reorganization, DLT, and the
// 1-step register-transpose layout. The paper treats a 3-D volume as an
// Nz-layer stack of 2-D slices (§3.3); the x dimension is vectorized exactly
// as in 2-D, with (dz,dy) selecting neighbour rows.
#include <stdexcept>
#include <vector>

#include "grid/grid_utils.hpp"
#include "kernels/registry.hpp"
#include "kernels/kernels3d_impl.hpp"
#include "kernels/tl_access.hpp"
#include "layout/dlt_layout.hpp"
#include "simd/vecd.hpp"
#include "stencil/reference.hpp"

namespace sf::detail {
namespace {

template <int W>
using V = simd::vecd<W>;

/// Taps grouped by (dz, dy) row.
struct RowTaps3 {
  struct Entry {
    int dx;
    double w;
  };
  int dz, dy;
  std::vector<Entry> taps;
};

std::vector<RowTaps3> by_row(const Pattern3D& p) {
  std::vector<RowTaps3> rows;
  for (const auto& t : p.taps) {
    RowTaps3* row = nullptr;
    for (auto& r : rows)
      if (r.dz == t.off[0] && r.dy == t.off[1]) row = &r;
    if (row == nullptr) {
      rows.push_back({t.off[0], t.off[1], {}});
      row = &rows.back();
    }
    row->taps.push_back({t.off[2], t.w});
  }
  return rows;
}

double scalar_apply3(const Pattern3D& p, const FieldView3D& g, int z, int y, int x) {
  double acc = 0;
  for (const auto& t : p.taps)
    acc += t.w * g.row(z + t.off[0], y + t.off[1])[x + t.off[2]];
  return acc;
}

}  // namespace

void run_naive3d(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps) {
  run_reference(p, a, b, tsteps);
}

// ---------------------------------------------------------------------------
// Multiple loads
// ---------------------------------------------------------------------------
template <int W>
void step_region_ml3d(const Pattern3D& p, const FieldView3D& in, const FieldView3D& out,
                      int z0, int z1, int y0, int y1, int x0, int x1) {
  const auto rows = by_row(p);
  for (int z = z0; z < z1; ++z)
    for (int y = y0; y < y1; ++y) {
      double* o = out.row(z, y);
      int x = x0;
      for (; x + W <= x1; x += W) {
        V<W> acc = V<W>::zero();
        for (const auto& r : rows) {
          const double* src = in.row(z + r.dz, y + r.dy);
          for (const auto& e : r.taps)
            acc = V<W>::fma(V<W>::set1(e.w), V<W>::loadu(src + x + e.dx), acc);
        }
        acc.storeu(o + x);
      }
      for (; x < x1; ++x) o[x] = scalar_apply3(p, in, z, y, x);
    }
}

template <int W>
void run_ml3d(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps) {
  const FieldView3D* cur = &a;
  const FieldView3D* nxt = &b;
  for (int t = 0; t < tsteps; ++t) {
    step_region_ml3d<W>(p, *cur, *nxt, 0, cur->nz(), 0, cur->ny(), 0, cur->nx());
    std::swap(cur, nxt);
  }
  if (cur != &a) copy_interior(*cur, a);
}

// ---------------------------------------------------------------------------
// Data reorganization
// ---------------------------------------------------------------------------
template <int W>
void run_dr3d(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps) {
  if (p.radius() > W) {
    run_naive3d(p, a, b, tsteps);
    return;
  }
  const auto rows = by_row(p);
  const int nz = a.nz(), ny = a.ny(), nx = a.nx();

  const FieldView3D* cur = &a;
  const FieldView3D* nxt = &b;
  for (int t = 0; t < tsteps; ++t) {
    for (int z = 0; z < nz; ++z)
      for (int y = 0; y < ny; ++y) {
        double* o = nxt->row(z, y);
        int x = 0;
        for (; x + W <= nx; x += W) {
          V<W> acc = V<W>::zero();
          for (const auto& r : rows) {
            const double* src = cur->row(z + r.dz, y + r.dy);
            V<W> l = V<W>::loadu(src + x - W);
            V<W> c = V<W>::loadu(src + x);
            V<W> rr = V<W>::loadu(src + x + W);
            for (const auto& e : r.taps)
              acc = V<W>::fma(V<W>::set1(e.w), shifted<W>(l, c, rr, e.dx), acc);
          }
          acc.storeu(o + x);
        }
        for (; x < nx; ++x) o[x] = scalar_apply3(p, *cur, z, y, x);
      }
    std::swap(cur, nxt);
  }
  if (cur != &a) copy_interior(*cur, a);
}

// ---------------------------------------------------------------------------
// DLT
// ---------------------------------------------------------------------------

/// One DLT step over planes [z0, z1); grids must be lifted, nx/W >= 2r+1.
template <int W>
void step_planes_dlt3d(const Pattern3D& p, const FieldView3D& in, const FieldView3D& out,
                       int z0, int z1) {
  const int ny = in.ny(), nx = in.nx();
  const int L = nx / W;
  const int n0 = L * W;
  const int r = p.radius();
  const auto rows = by_row(p);
  for (int z = z0; z < z1; ++z)
    for (int y = 0; y < ny; ++y) {
      double* o = out.row(z, y);
      for (int j = r; j < L - r; ++j) {
        V<W> acc = V<W>::zero();
        for (const auto& rt : rows) {
          const double* src = in.row(z + rt.dz, y + rt.dy);
          for (const auto& e : rt.taps)
            acc = V<W>::fma(V<W>::set1(e.w), V<W>::load(src + (j + e.dx) * W),
                            acc);
        }
        acc.store(o + j * W);
      }
      auto scalar_at = [&](int i) {
        double acc = 0;
        for (const auto& tp : p.taps)
          acc += tp.w * in.row(z + tp.off[0],
                               y + tp.off[1])[dlt_index(i + tp.off[2], nx, W)];
        return acc;
      };
      for (int lane = 0; lane < W; ++lane)
        for (int j = 0; j < r; ++j) {
          const int il = lane * L + j;
          const int ir = lane * L + (L - 1 - j);
          o[dlt_index(il, nx, W)] = scalar_at(il);
          o[dlt_index(ir, nx, W)] = scalar_at(ir);
        }
      for (int i = n0; i < nx; ++i) o[i] = scalar_at(i);
    }
}

template <int W>
void run_dlt3d(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps) {
  const int nz = a.nz(), nx = a.nx();
  const int L = nx / W;
  const int r = p.radius();
  if (L < 2 * r + 1) {
    run_naive3d(p, a, b, tsteps);
    return;
  }
  grid_to_dlt(a, W);
  grid_to_dlt(b, W);

  const FieldView3D* cur = &a;
  const FieldView3D* nxt = &b;
  for (int t = 0; t < tsteps; ++t) {
    step_planes_dlt3d<W>(p, *cur, *nxt, 0, nz);
    std::swap(cur, nxt);
  }
  if (cur != &a) copy_interior(*cur, a);
  grid_from_dlt(a, W);
  grid_from_dlt(b, W);
}

// ---------------------------------------------------------------------------
// Ours (register-transpose layout, 1-step)
// ---------------------------------------------------------------------------
/// One transpose-layout step over planes [z0, z1); grids must be in
/// transpose layout; r <= min(W, 2) and at most 32 (dz,dy) row groups.
template <int W>
void step_planes_tl3d(const Pattern3D& p, const FieldView3D& in, const FieldView3D& out,
                      int z0, int z1) {
  constexpr int kMaxRows = 32;
  constexpr int kMaxR = 2;
  const int r = p.radius();
  const int ny = in.ny(), nx = in.nx();
  const auto rows = by_row(p);
  const int bs = W * W;
  const int nb = tl_blocks<W>(nx);
  for (int z = z0; z < z1; ++z)
    for (int y = 0; y < ny; ++y) {
      double* o = out.row(z, y);
      V<W> vv[kMaxRows][W + 2 * kMaxR];
      for (int blk = 0; blk < nb; ++blk) {
        for (std::size_t ri = 0; ri < rows.size(); ++ri) {
          TLRow<W> row(in.row(z + rows[ri].dz, y + rows[ri].dy), nx);
          for (int i = 0; i < W + 2 * r; ++i) vv[ri][i] = row.vec(blk, i - r);
        }
        for (int j = 0; j < W; ++j) {
          V<W> acc = V<W>::zero();
          for (std::size_t ri = 0; ri < rows.size(); ++ri)
            for (const auto& e : rows[ri].taps)
              acc = V<W>::fma(V<W>::set1(e.w), vv[ri][j + e.dx + r], acc);
          acc.store(o + blk * bs + j * W);
        }
      }
      for (int i = nb * bs; i < nx; ++i) {
        double acc = 0;
        for (const auto& tp : p.taps) {
          TLRow<W> row(in.row(z + tp.off[0], y + tp.off[1]), nx);
          acc += tp.w * row.logical(i + tp.off[2]);
        }
        o[i] = acc;
      }
    }
}

template <int W>
void run_ours1_3d(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps) {
  const int r = p.radius();
  const auto rows = by_row(p);
  if (r > 2 || r > W || rows.size() > 32) {
    run_naive3d(p, a, b, tsteps);
    return;
  }
  // Transposed-resident views skip the per-call involution (see
  // run_ours1_2d).
  const bool resident = a.layout() == Layout::Transposed;
  if (!resident) {
    grid_transpose_layout<W>(a);
    grid_transpose_layout<W>(b);
  }

  const FieldView3D* cur = &a;
  const FieldView3D* nxt = &b;
  for (int t = 0; t < tsteps; ++t) {
    step_planes_tl3d<W>(p, *cur, *nxt, 0, a.nz());
    std::swap(cur, nxt);
  }
  if (cur != &a) copy_interior(*cur, a);
  if (!resident) {
    grid_transpose_layout<W>(a);
    grid_transpose_layout<W>(b);
  }
}

template void run_ml3d<1>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int);
template void run_ml3d<4>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int);
template void run_ml3d<8>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int);
template void run_dr3d<1>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int);
template void run_dr3d<4>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int);
template void run_dr3d<8>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int);
template void run_dlt3d<1>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int);
template void run_dlt3d<4>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int);
template void run_dlt3d<8>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int);
template void run_ours1_3d<1>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int);
template void run_ours1_3d<4>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int);
template void run_ours1_3d<8>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int);
template void step_planes_tl3d<1>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int, int);
template void step_planes_tl3d<4>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int, int);
template void step_planes_tl3d<8>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int, int);
template void step_planes_dlt3d<1>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int, int);
template void step_planes_dlt3d<4>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int, int);
template void step_planes_dlt3d<8>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int, int);
template void step_region_ml3d<1>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int,
                                  int, int, int, int, int);
template void step_region_ml3d<4>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int,
                                  int, int, int, int, int);
template void step_region_ml3d<8>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int,
                                  int, int, int, int, int);

}  // namespace sf::detail

namespace sf {
namespace {

// Baseline + 1-step transpose-layout registrations; the folded method
// (ours-2step) registers in folded3d.cpp. See the 1-D block in
// kernels1d.cpp for the capability rationale.
const KernelRegistrar reg3d{{
    // Naive executes at width 1 regardless of the registered ISA level
    // (see kernels1d.cpp).
    // Tileability (last parameter): see the 2-D block in kernels2d.cpp.
    kernel3d_info(Method::Naive, Isa::Scalar, 1, 1, &detail::run_naive3d, 0,
                  0, 0),
    kernel3d_info(Method::Naive, Isa::Avx2, 1, 1, &detail::run_naive3d, 0, 0,
                  0),
    kernel3d_info(Method::Naive, Isa::Avx512, 1, 1, &detail::run_naive3d, 0,
                  0, 0),
    kernel3d_info(Method::MultipleLoads, Isa::Scalar, 1, 1,
                  &detail::run_ml3d<1>),
    kernel3d_info(Method::MultipleLoads, Isa::Avx2, 4, 1,
                  &detail::run_ml3d<4>),
    kernel3d_info(Method::MultipleLoads, Isa::Avx512, 8, 1,
                  &detail::run_ml3d<8>),
    kernel3d_info(Method::DataReorg, Isa::Scalar, 1, 1, &detail::run_dr3d<1>,
                  /*halo_floor=*/1, /*max_radius=*/1),
    kernel3d_info(Method::DataReorg, Isa::Avx2, 4, 1, &detail::run_dr3d<4>, 4,
                  4),
    kernel3d_info(Method::DataReorg, Isa::Avx512, 8, 1, &detail::run_dr3d<8>,
                  8, 8),
    kernel3d_info(Method::DLT, Isa::Scalar, 1, 1, &detail::run_dlt3d<1>, 0, 0,
                  0),
    kernel3d_info(Method::DLT, Isa::Avx2, 4, 1, &detail::run_dlt3d<4>, 0, 0,
                  0),
    kernel3d_info(Method::DLT, Isa::Avx512, 8, 1, &detail::run_dlt3d<8>, 0, 0,
                  0),
    // step_planes_tl3d's row-group scratch caps the radius at min(W, 2).
    // Preferred layout Transposed: resident views skip the per-call
    // involution (see run_ours1_3d).
    kernel3d_info(Method::Ours, Isa::Scalar, 1, 1, &detail::run_ours1_3d<1>,
                  0, 1, 1, Layout::Transposed),
    kernel3d_info(Method::Ours, Isa::Avx2, 4, 1, &detail::run_ours1_3d<4>, 0,
                  2, 2, Layout::Transposed),
    kernel3d_info(Method::Ours, Isa::Avx512, 8, 1, &detail::run_ours1_3d<8>,
                  0, 2, 2, Layout::Transposed),
}};

}  // namespace
}  // namespace sf
