// Vector-set access for rows stored in the register-transpose layout.
//
// A TLRow wraps one interior row (n elements, the leading tl_blocks full
// W*W blocks transposed, tail + halo in original order). vec(b, jj) returns
// the vector holding logical elements {b*W*W + jj + W*t : t in 0..W-1}:
//  * jj in [0, W): one aligned load;
//  * jj in [-W, 0) or [W, 2W): one aligned load, one blend with the
//    adjacent block's vector, one lane rotation — the paper's "two data
//    organization operations" per edge vector (§2.2, Figure 2). At the
//    first/last block the carried lane comes from the (untransposed) halo
//    or tail via a scalar insert.
#pragma once

#include "grid/grid_utils.hpp"
#include "layout/transpose_layout.hpp"
#include "simd/vecd.hpp"

namespace sf {

/// Staged 1-D source array for the transpose-layout kernels: resolves the
/// optional time-invariant source view `k` to the pointer kernels read
/// through. A Layout::Transposed-tagged view is read zero-copy (the caller
/// keeps it resident); otherwise the array is copied into private staging
/// and — when `to_layout` is set — transformed into the transpose layout,
/// leaving the caller's `k` untouched. Shared by the untiled kernels
/// (kernels1d.cpp) and the tiled 1-D engine (split_tiling.cpp).
template <int W>
struct StagedSource1D {
  Grid1D staging;
  const double* data = nullptr;  ///< What kernels read; null without source.

  explicit StagedSource1D(const FieldView1D* k, bool to_layout = true)
      : staging(needs_copy(k) ? k->n() : 1, needs_copy(k) ? k->halo() : 1) {
    if (k == nullptr) return;
    if (!needs_copy(k)) {
      data = k->data();
      return;
    }
    copy(*k, staging);
    if (to_layout) grid_transpose_layout<W>(staging);
    data = staging.data();
  }

 private:
  static bool needs_copy(const FieldView1D* k) {
    return k != nullptr && k->layout() != Layout::Transposed;
  }
};

template <int W>
struct TLRow {
  const double* p;  // interior pointer (halo at negative indices)
  int n;            // interior length
  int nb;           // full transposed blocks

  explicit TLRow(const double* row, int len)
      : p(row), n(len), nb(tl_blocks<W>(len)) {}

  using V = simd::vecd<W>;

  /// Aligned in-block vector (0 <= jj < W, 0 <= b < nb).
  V plain(int b, int jj) const { return V::load(p + b * W * W + jj * W); }

  /// General vector for jj in [-W, 2W). The single carried lane from the
  /// neighboring block is loaded as a scalar, never as a full vector: a
  /// W-wide neighbor load would over-read W-1 lanes that a concurrently
  /// executing wedge tile may be writing (the tile slope only protects the
  /// semantically-used element), which is a data race even though the
  /// lanes would be blended away.
  V vec(int b, int jj) const {
    if (0 <= jj && jj < W) return plain(b, jj);
    if (jj < 0) {
      const int q = jj + W;
      // Carried lane: last lane of the previous block's column q, or halo
      // element p[jj] (original order) at the row start.
      const double carry = b > 0 ? p[(b - 1) * W * W + q * W + (W - 1)] : p[jj];
      return simd::blend_first(simd::rotate_r1(plain(b, q)), V::set1(carry));
    }
    const int q = jj - W;
    // Carried lane: first lane of the next block's column q, or tail/halo
    // element at logical index (b+1)*W*W + q past the last full block.
    const double carry =
        b + 1 < nb ? p[(b + 1) * W * W + q * W] : p[(b + 1) * W * W + q];
    return simd::blend_last(simd::rotate_l1(plain(b, q)), V::set1(carry));
  }

  /// Scalar access by logical index (works for halo, tail, and transposed
  /// region alike).
  double logical(int i) const { return p[tl_index<W>(i, n)]; }
};

/// Mutable view for scalar stores into a transposed row.
template <int W>
struct TLRowMut {
  double* p;
  int n;

  TLRowMut(double* row, int len) : p(row), n(len) {}
  double& logical(int i) { return p[tl_index<W>(i, n)]; }
};

// ---------------------------------------------------------------------------
// Runtime-shift concatenated vectors for the data-reorganization baseline:
// shifted(L, C, R, s) = vector of elements (base + s .. base + s + W - 1)
// given aligned loads L = [base-W, base), C = [base, base+W),
// R = [base+W, base+2W), for |s| <= W.
// ---------------------------------------------------------------------------
template <int W>
inline simd::vecd<W> shifted(simd::vecd<W> l, simd::vecd<W> c, simd::vecd<W> r,
                             int s);

template <>
inline simd::vecd<1> shifted(simd::vecd<1> l, simd::vecd<1> c, simd::vecd<1> r,
                             int s) {
  return s < 0 ? l : s > 0 ? r : c;
}

template <>
inline simd::vecd<4> shifted(simd::vecd<4> l, simd::vecd<4> c, simd::vecd<4> r,
                             int s) {
  using simd::align_r;
  switch (s) {
    case -4: return l;
    case -3: return align_r<1>(l, c);
    case -2: return align_r<2>(l, c);
    case -1: return align_r<3>(l, c);
    case 0: return c;
    case 1: return align_r<1>(c, r);
    case 2: return align_r<2>(c, r);
    case 3: return align_r<3>(c, r);
    default: return r;
  }
}

template <>
inline simd::vecd<8> shifted(simd::vecd<8> l, simd::vecd<8> c, simd::vecd<8> r,
                             int s) {
  using simd::align_r;
  switch (s) {
    case -8: return l;
    case -7: return align_r<1>(l, c);
    case -6: return align_r<2>(l, c);
    case -5: return align_r<3>(l, c);
    case -4: return align_r<4>(l, c);
    case -3: return align_r<5>(l, c);
    case -2: return align_r<6>(l, c);
    case -1: return align_r<7>(l, c);
    case 0: return c;
    case 1: return align_r<1>(c, r);
    case 2: return align_r<2>(c, r);
    case 3: return align_r<3>(c, r);
    case 4: return align_r<4>(c, r);
    case 5: return align_r<5>(c, r);
    case 6: return align_r<6>(c, r);
    case 7: return align_r<7>(c, r);
    default: return r;
  }
}

}  // namespace sf
