// Internal declarations shared between kernels3d.cpp and folded3d.cpp.
//
// Layout contract of the run_* entry points: Natural-tagged views are
// transformed in/out per call; views tagged with the kernel's preferred
// layout (Transposed for run_ours1_3d) execute in place with the involution
// skipped. The step_/advance region functions always require data already
// in the working layout.
#pragma once

#include <vector>

#include "common/aligned_buffer.hpp"
#include "fold/folding_plan.hpp"
#include "grid/grid.hpp"
#include "stencil/pattern.hpp"

namespace sf::detail {

void run_naive3d(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps);

template <int W>
void run_ml3d(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps);
template <int W>
void run_dr3d(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps);
template <int W>
void run_dlt3d(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps);
template <int W>
void run_ours1_3d(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps);
template <int W>
void run_ours2_3d(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps);

/// One multiple-loads time step over a box region (folded remainder + tiling).
template <int W>
void step_region_ml3d(const Pattern3D& p, const FieldView3D& in, const FieldView3D& out,
                      int z0, int z1, int y0, int y1, int x0, int x1);

/// One transpose-layout step over planes [z0, z1); grids must be in
/// transpose layout; r <= min(W, 2).
template <int W>
void step_planes_tl3d(const Pattern3D& p, const FieldView3D& in, const FieldView3D& out,
                      int z0, int z1);

/// One DLT step over planes [z0, z1); grids must be lifted and nx/W >= 2r+1.
template <int W>
void step_planes_dlt3d(const Pattern3D& p, const FieldView3D& in, const FieldView3D& out,
                       int z0, int z1);

/// Shape of the folded-3D sliding plane window for a domain of row extent
/// `nx` at SIMD width `W`: buffer count and doubles per buffer. The single
/// source of the sizing — folded3d_advance's fits-check and the Engine's
/// per-worker arena pre-sizing both call it, so they can never drift.
struct Folded3DWindowShape {
  std::size_t nbufs = 0;    ///< (2R+1) window slots x counterpart sources.
  std::size_t doubles = 0;  ///< Per-buffer capacity in doubles.
};
Folded3DWindowShape folded3d_window_shape(const FoldingPlan& plan, int nx,
                                          int W);

/// One folded (m = 2) advance over planes [rz0, rz1) (see folded2d_advance
/// for the range contract; slope is 2r per super-step). `window` caches
/// per-plane counterpart columns and must be private to the calling thread
/// (it is grown to folded3d_window_shape() when it does not already fit).
template <int W>
void folded3d_advance(const Pattern3D& p, const FoldingPlan& plan,
                      const Pattern3D& lambda, const FieldView3D& in, const FieldView3D& out,
                      std::vector<AlignedBuffer>& window, int rz0, int rz1);

}  // namespace sf::detail
