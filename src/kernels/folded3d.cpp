// Vectorized temporal folding for 3-D stencils, m = 2.
//
// The paper manipulates a 3-D volume as an Nz-layer stack of 2-D slices
// (§3.3). The folded pattern Λ = p² is sliced by dz; every slice's columns
// enter one shared regression (fold/folding_plan.cpp), so each *source
// plane* contributes a small set of counterpart columns that are computed
// once per plane and reused by all 2R+1 output planes whose window contains
// it — a sliding-window generalization of the 2-D shifts reuse to the z
// dimension. Per plane and W-column set the pipeline is the 2-D one:
// vertical fold, in-register transpose, horizontal fold over (dz, dx) terms,
// transpose back.
#include <array>
#include <stdexcept>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "fold/region.hpp"
#include "grid/grid_utils.hpp"
#include "kernels/registry.hpp"
#include "kernels/kernels3d_impl.hpp"
#include "simd/transpose.hpp"
#include "simd/vecd.hpp"
#include "stencil/reference.hpp"

namespace sf::detail {
namespace {

template <int W>
using V = simd::vecd<W>;

constexpr int kMaxR3 = 2;  // folded radius cap (m = 2, r = 1 in 3-D presets)

/// Exact 2-step update of box `f2` (touching the domain shell): t+1 into a
/// private buffer over f2's r-expansion, then t+2 over f2.
void ring_fix_box_3d(const Pattern3D& p, const FieldView3D& in, const FieldView3D& out,
                     const Box& f2, int nz, int ny, int nx) {
  const int r = p.radius();
  const Box f1{std::max(f2.z0 - r, 0), std::min(f2.z1 + r, nz),
               std::max(f2.y0 - r, 0), std::min(f2.y1 + r, ny),
               std::max(f2.x0 - r, 0), std::min(f2.x1 + r, nx)};
  const int fw = f1.x1 - f1.x0;
  const int fh = f1.y1 - f1.y0;
  std::vector<double> buf(static_cast<std::size_t>(f1.z1 - f1.z0) * fh * fw);
  auto slot = [&](int z, int y, int x) -> std::size_t {
    return (static_cast<std::size_t>(z - f1.z0) * fh + (y - f1.y0)) * fw +
           (x - f1.x0);
  };
  for (int z = f1.z0; z < f1.z1; ++z)
    for (int y = f1.y0; y < f1.y1; ++y)
      for (int x = f1.x0; x < f1.x1; ++x) {
        double acc = 0;
        for (const auto& t : p.taps)
          acc += t.w * in.at(z + t.off[0], y + t.off[1], x + t.off[2]);
        buf[slot(z, y, x)] = acc;
      }
  for (int z = f2.z0; z < f2.z1; ++z)
    for (int y = f2.y0; y < f2.y1; ++y)
      for (int x = f2.x0; x < f2.x1; ++x) {
        double acc = 0;
        for (const auto& t : p.taps) {
          const int zz = z + t.off[0], yy = y + t.off[1], xx = x + t.off[2];
          const bool inside = zz >= f1.z0 && zz < f1.z1 && yy >= f1.y0 &&
                              yy < f1.y1 && xx >= f1.x0 && xx < f1.x1;
          acc += t.w * (inside ? buf[slot(zz, yy, xx)] : in.at(zz, yy, xx));
        }
        out.at(z, y, x) = acc;
      }
}

}  // namespace

Folded3DWindowShape folded3d_window_shape(const FoldingPlan& plan, int nx,
                                          int W) {
  const int R = plan.radius;
  const int nsrc =
      static_cast<int>(plan.basis.size()) + (plan.uses_impulse ? 1 : 0);
  const int ncols = nx / W * W + 2 * R;  // columns [-R, nxv+R)
  Folded3DWindowShape s;
  s.nbufs = static_cast<std::size_t>(2 * R + 1) *
            static_cast<std::size_t>(nsrc);
  s.doubles = static_cast<std::size_t>(ncols) * static_cast<std::size_t>(W);
  return s;
}

template <int W>
void folded3d_advance(const Pattern3D& p, const FoldingPlan& plan,
                      const Pattern3D& lambda, const FieldView3D& in, const FieldView3D& out,
                      std::vector<AlignedBuffer>& window, int rz0, int rz1) {
  const int nz = in.nz(), ny = in.ny(), nx = in.nx();
  const int r = p.radius();
  const int R = plan.radius;
  const int nbasis = static_cast<int>(plan.basis.size());
  const bool impulse = plan.uses_impulse;
  const int nsrc = nbasis + (impulse ? 1 : 0);
  const int nbx = nx / W;
  const int nxv = nbx * W;
  const int nyv = ny - ny % W;
  const int nwin = 2 * R + 1;
  const int ncols = nxv + 2 * R;  // columns [-R, nxv+R)

  // window[slot * nsrc + src] holds one plane's counterpart columns for the
  // current band; column x lives at offset (x + R) * W.
  const Folded3DWindowShape shape = folded3d_window_shape(plan, nx, W);
  if (window.size() != shape.nbufs ||
      (shape.nbufs > 0 && window[0].size() < shape.doubles)) {
    window.clear();
    for (std::size_t i = 0; i < shape.nbufs; ++i)
      window.emplace_back(shape.doubles);
  }

  struct Term {
    int dz, dx, src;
    V<W> w;
  };
  std::vector<Term> terms;
  for (const auto& t : plan.terms)
    terms.push_back({t.dz, t.dx, t.basis_id >= 0 ? t.basis_id : nbasis,
                     V<W>::set1(t.coeff)});

  std::array<std::array<V<W>, 2 * kMaxR3 + 1>, 2 * kMaxR3 + 2> bw;
  for (int s = 0; s < nbasis; ++s)
    for (int dy = 0; dy <= 2 * R; ++dy)
      bw[static_cast<std::size_t>(s)][static_cast<std::size_t>(dy)] =
          V<W>::set1(plan.basis[static_cast<std::size_t>(s)][static_cast<std::size_t>(dy)]);

  for (int y0 = 0; y0 < nyv; y0 += W) {
    // Computes all counterpart columns of source plane q into its slot.
    auto fill_plane = [&](int q) {
      const int slot = ((q % nwin) + nwin) % nwin;
      constexpr int kMaxSrc3 = 2 * kMaxR3 + 2;
      V<W> vf[kMaxSrc3][W];
      for (int xb = 0; xb < nbx; ++xb) {
        // Load each source row once and fold it into every counterpart
        // (rows are shared across all basis columns).
        for (int s = 0; s < nsrc; ++s)
          for (int i = 0; i < W; ++i) vf[s][i] = V<W>::zero();
        for (int yy = -R; yy < W + R; ++yy) {
          const V<W> rowv = V<W>::loadu(in.row(q, y0 + yy) + xb * W);
          const int ilo = std::max(0, yy - R), ihi = std::min(W - 1, yy + R);
          for (int i = ilo; i <= ihi; ++i) {
            const int dy = yy - i;
            for (int s = 0; s < nbasis; ++s) {
              if (plan.basis[static_cast<std::size_t>(s)][static_cast<std::size_t>(dy + R)] == 0.0)
                continue;
              vf[s][i] = V<W>::fma(
                  bw[static_cast<std::size_t>(s)][static_cast<std::size_t>(dy + R)], rowv,
                  vf[s][i]);
            }
          }
          if (impulse && yy >= 0 && yy < W) vf[nbasis][yy] = rowv;
        }
        for (int s = 0; s < nsrc; ++s) {
          simd::transpose(vf[s]);
          double* buf = window[static_cast<std::size_t>(slot * nsrc + s)].data();
          for (int j = 0; j < W; ++j)
            vf[s][j].store(buf + static_cast<std::size_t>(xb * W + j + R) * W);
        }
      }
      for (int s = 0; s < nsrc; ++s) {
        double* buf = window[static_cast<std::size_t>(slot * nsrc + s)].data();
        // Edge columns in the x-halo, scalar.
        for (int x : {0, 1}) {
          for (int e = 0; e < R; ++e) {
            const int col = x == 0 ? -R + e : nxv + e;
            alignas(64) double tmp[W];
            for (int i = 0; i < W; ++i) {
              if (impulse && s == nbasis) {
                tmp[i] = in.at(q, y0 + i, col);
              } else {
                double acc = 0;
                for (int dy = -R; dy <= R; ++dy)
                  acc += plan.basis[static_cast<std::size_t>(s)][static_cast<std::size_t>(dy + R)] *
                         in.at(q, y0 + i + dy, col);
                tmp[i] = acc;
              }
            }
            V<W>::load(tmp).store(buf + static_cast<std::size_t>(col + R) * W);
          }
        }
      }
    };

    for (int q = rz0 - R; q < rz0 + R; ++q) fill_plane(q);
    for (int z = rz0; z < rz1; ++z) {
      fill_plane(z + R);
      // Emit output plane z for this band.
      V<W> oc[W];
      for (int xb = 0; xb < nbx; ++xb) {
        for (int j = 0; j < W; ++j) {
          V<W> acc = V<W>::zero();
          for (const Term& t : terms) {
            const int q = z + t.dz;
            const int slot = ((q % nwin) + nwin) % nwin;
            const double* buf =
                window[static_cast<std::size_t>(slot * nsrc + t.src)].data();
            acc = V<W>::fma(
                t.w,
                V<W>::load(buf + static_cast<std::size_t>(xb * W + j + t.dx + R) * W),
                acc);
          }
          oc[j] = acc;
        }
        simd::transpose(oc);
        for (int i = 0; i < W; ++i) oc[i].store(out.row(z, y0 + i) + xb * W);
      }
    }
  }

  // Alignment tails, scalar with the folding matrix.
  if (nxv < nx) apply_pattern(lambda, in, out, rz0, rz1, 0, ny, nxv, nx);
  if (nyv < ny) apply_pattern(lambda, in, out, rz0, rz1, nyv, ny, 0, nxv);

  // Boundary-shell correction: the domain shell(r) intersected with planes
  // [rz0, rz1), each box fixed stepwise with a private buffer (thread-safe
  // across disjoint plane ranges).
  if (r > 0) {
    std::vector<Box> f2;
    f2.push_back({rz0, rz1, 0, ny, 0, std::min(r, nx)});
    if (nx > r) f2.push_back({rz0, rz1, 0, ny, std::max(nx - r, r), nx});
    f2.push_back({rz0, rz1, 0, std::min(r, ny), 0, nx});
    if (ny > r) f2.push_back({rz0, rz1, std::max(ny - r, r), ny, 0, nx});
    if (rz0 < r) f2.push_back({rz0, std::min(r, rz1), 0, ny, 0, nx});
    if (rz1 > nz - r) f2.push_back({std::max(nz - r, rz0), rz1, 0, ny, 0, nx});
    for (const Box& bx : f2)
      if (!bx.empty()) ring_fix_box_3d(p, in, out, bx, nz, ny, nx);
  }
}

template void folded3d_advance<1>(const Pattern3D&, const FoldingPlan&,
                                  const Pattern3D&, const FieldView3D&, const FieldView3D&,
                                  std::vector<AlignedBuffer>&, int, int);
template void folded3d_advance<4>(const Pattern3D&, const FoldingPlan&,
                                  const Pattern3D&, const FieldView3D&, const FieldView3D&,
                                  std::vector<AlignedBuffer>&, int, int);
template void folded3d_advance<8>(const Pattern3D&, const FoldingPlan&,
                                  const Pattern3D&, const FieldView3D&, const FieldView3D&,
                                  std::vector<AlignedBuffer>&, int, int);

template <int W>
void run_ours2_3d(const Pattern3D& p, const FieldView3D& a, const FieldView3D& b, int tsteps) {
  const int nz = a.nz(), ny = a.ny(), nx = a.nx();
  const FoldingPlan plan = plan_folding(p, 2);
  if (plan.radius > std::min(W, kMaxR3)) {
    run_naive3d(p, a, b, tsteps);
    return;
  }
  const Pattern3D lambda = power(p, 2);
  std::vector<AlignedBuffer> window;

  const FieldView3D* cur = &a;
  const FieldView3D* nxt = &b;
  int t = 0;
  for (; t + 2 <= tsteps; t += 2) {
    folded3d_advance<W>(p, plan, lambda, *cur, *nxt, window, 0, nz);
    std::swap(cur, nxt);
  }
  for (; t < tsteps; ++t) {
    step_region_ml3d<W>(p, *cur, *nxt, 0, nz, 0, ny, 0, nx);
    std::swap(cur, nxt);
  }
  if (cur != &a) copy_interior(*cur, a);
}

template void run_ours2_3d<1>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int);
template void run_ours2_3d<4>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int);
template void run_ours2_3d<8>(const Pattern3D&, const FieldView3D&, const FieldView3D&, int);

}  // namespace sf::detail

namespace sf {
namespace {

// Folded-kernel registration: the folded pass applies power(p, 2) and the
// plane window caps the folded radius at min(W, kMaxR3), so the vector path
// engages only for r = 1 (exactly the 3-D presets).
const KernelRegistrar reg3d_folded{{
    // Tiled stage shares the plane window: tiled radius mirrors max_radius
    // (see folded2d.cpp).
    kernel3d_info(Method::Ours2, Isa::Scalar, 1, 2, &detail::run_ours2_3d<1>,
                  /*halo_floor=*/0, /*max_radius=*/-1, /*tiled_max_radius=*/-1),
    kernel3d_info(Method::Ours2, Isa::Avx2, 4, 2, &detail::run_ours2_3d<4>, 0,
                  1, 1),
    kernel3d_info(Method::Ours2, Isa::Avx512, 8, 2, &detail::run_ours2_3d<8>,
                  0, 1, 1),
}};

}  // namespace
}  // namespace sf
