// 2-D executors: naive, multiple-loads, data-reorganization, DLT, and the
// paper's 1-step register-transpose layout. The folded (m=2) executor lives
// in folded2d.cpp.
#include <stdexcept>
#include <vector>

#include "grid/grid_utils.hpp"
#include "kernels/registry.hpp"
#include "kernels/kernels2d_impl.hpp"
#include "kernels/tl_access.hpp"
#include "layout/dlt_layout.hpp"
#include "simd/vecd.hpp"
#include "stencil/reference.hpp"

namespace sf::detail {
namespace {

template <int W>
using V = simd::vecd<W>;

/// Taps grouped by row offset dy: per row a list of (dx, weight).
struct RowTaps {
  struct Entry {
    int dx;
    double w;
  };
  int dy;
  std::vector<Entry> taps;
};

std::vector<RowTaps> by_row(const Pattern2D& p) {
  std::vector<RowTaps> rows;
  for (const auto& t : p.taps) {
    RowTaps* row = nullptr;
    for (auto& r : rows)
      if (r.dy == t.off[0]) row = &r;
    if (row == nullptr) {
      rows.push_back({t.off[0], {}});
      row = &rows.back();
    }
    row->taps.push_back({t.off[1], t.w});
  }
  return rows;
}

double scalar_apply2(const Pattern2D& p, const FieldView2D& g, int y, int x) {
  double acc = 0;
  for (const auto& t : p.taps) acc += t.w * g.row(y + t.off[0])[x + t.off[1]];
  return acc;
}

}  // namespace

void run_naive2d(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps) {
  run_reference(p, a, b, tsteps);
}

// ---------------------------------------------------------------------------
// Multiple loads
// ---------------------------------------------------------------------------
template <int W>
void step_region_ml2d(const Pattern2D& p, const FieldView2D& in, const FieldView2D& out,
                      int y0, int y1, int x0, int x1) {
  const int nt = static_cast<int>(p.taps.size());
  std::vector<V<W>> w(static_cast<std::size_t>(nt));
  for (int i = 0; i < nt; ++i) w[static_cast<std::size_t>(i)] = V<W>::set1(p.taps[static_cast<std::size_t>(i)].w);

  for (int y = y0; y < y1; ++y) {
    double* o = out.row(y);
    int x = x0;
    for (; x + W <= x1; x += W) {
      V<W> acc = V<W>::zero();
      for (int i = 0; i < nt; ++i) {
        const auto& t = p.taps[static_cast<std::size_t>(i)];
        acc = V<W>::fma(w[static_cast<std::size_t>(i)],
                        V<W>::loadu(in.row(y + t.off[0]) + x + t.off[1]), acc);
      }
      acc.storeu(o + x);
    }
    for (; x < x1; ++x) o[x] = scalar_apply2(p, in, y, x);
  }
}

template <int W>
void run_ml2d(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps) {
  const FieldView2D* cur = &a;
  const FieldView2D* nxt = &b;
  for (int t = 0; t < tsteps; ++t) {
    step_region_ml2d<W>(p, *cur, *nxt, 0, cur->ny(), 0, cur->nx());
    std::swap(cur, nxt);
  }
  if (cur != &a) copy_interior(*cur, a);
}

// ---------------------------------------------------------------------------
// Data reorganization
// ---------------------------------------------------------------------------
template <int W>
void run_dr2d(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps) {
  if (p.radius() > W) {
    run_naive2d(p, a, b, tsteps);
    return;
  }
  const auto rows = by_row(p);
  const int nx = a.nx(), ny = a.ny();

  const FieldView2D* cur = &a;
  const FieldView2D* nxt = &b;
  for (int t = 0; t < tsteps; ++t) {
    for (int y = 0; y < ny; ++y) {
      double* o = nxt->row(y);
      int x = 0;
      for (; x + W <= nx; x += W) {
        V<W> acc = V<W>::zero();
        for (const auto& r : rows) {
          const double* src = cur->row(y + r.dy);
          V<W> l = V<W>::loadu(src + x - W);
          V<W> c = V<W>::loadu(src + x);
          V<W> rr = V<W>::loadu(src + x + W);
          for (const auto& e : r.taps)
            acc = V<W>::fma(V<W>::set1(e.w), shifted<W>(l, c, rr, e.dx), acc);
        }
        acc.storeu(o + x);
      }
      for (; x < nx; ++x) o[x] = scalar_apply2(p, *cur, y, x);
    }
    std::swap(cur, nxt);
  }
  if (cur != &a) copy_interior(*cur, a);
}

// ---------------------------------------------------------------------------
// DLT (per-row dimension lifting)
// ---------------------------------------------------------------------------

/// One DLT time step over rows [y0, y1); both grids must already be lifted.
template <int W>
void step_rows_dlt2d(const Pattern2D& p, const FieldView2D& in, const FieldView2D& out, int y0,
                     int y1) {
  const int nx = in.nx();
  const int L = nx / W;
  const int n0 = L * W;
  const int r = p.radius();
  const auto rows = by_row(p);
  for (int y = y0; y < y1; ++y) {
    double* o = out.row(y);
    // Lifted interior: x-neighbours are adjacent columns, same lanes;
    // y-neighbours are the same column of other rows (all rows lifted with
    // the same L).
    for (int j = r; j < L - r; ++j) {
      V<W> acc = V<W>::zero();
      for (const auto& rt : rows) {
        const double* src = in.row(y + rt.dy);
        for (const auto& e : rt.taps)
          acc = V<W>::fma(V<W>::set1(e.w), V<W>::load(src + (j + e.dx) * W),
                          acc);
      }
      acc.store(o + j * W);
    }
    // Seam columns + tail, scalar through the logical index map.
    auto scalar_at = [&](int i) {
      double acc = 0;
      for (const auto& tp : p.taps)
        acc += tp.w * in.row(y + tp.off[0])[dlt_index(i + tp.off[1], nx, W)];
      return acc;
    };
    for (int lane = 0; lane < W; ++lane)
      for (int j = 0; j < r; ++j) {
        const int il = lane * L + j;
        const int ir = lane * L + (L - 1 - j);
        o[dlt_index(il, nx, W)] = scalar_at(il);
        o[dlt_index(ir, nx, W)] = scalar_at(ir);
      }
    for (int i = n0; i < nx; ++i) o[i] = scalar_at(i);
  }
}

template <int W>
void run_dlt2d(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps) {
  const int nx = a.nx(), ny = a.ny();
  const int L = nx / W;
  const int r = p.radius();
  if (L < 2 * r + 1) {
    run_naive2d(p, a, b, tsteps);
    return;
  }
  grid_to_dlt(a, W);
  grid_to_dlt(b, W);  // halo rows of the scratch grid are read too

  const FieldView2D* cur = &a;
  const FieldView2D* nxt = &b;
  for (int t = 0; t < tsteps; ++t) {
    step_rows_dlt2d<W>(p, *cur, *nxt, 0, ny);
    std::swap(cur, nxt);
  }
  if (cur != &a) copy_interior(*cur, a);
  grid_from_dlt(a, W);
  grid_from_dlt(b, W);  // leave the scratch grid as we found it
}

// ---------------------------------------------------------------------------
// Ours (register-transpose layout, 1-step)
// ---------------------------------------------------------------------------
/// One transpose-layout time step over rows [y0, y1); both grids must
/// already be in transpose layout. Radius must satisfy r <= min(W, 4).
template <int W>
void step_rows_tl2d(const Pattern2D& p, const FieldView2D& in, const FieldView2D& out, int y0,
                    int y1) {
  constexpr int kMaxR = 4;
  const int r = p.radius();
  const int nx = in.nx();
  const auto rows = by_row(p);
  const int bs = W * W;
  const int nb = tl_blocks<W>(nx);
  for (int y = y0; y < y1; ++y) {
    double* o = out.row(y);
    // vv[row-index][jj + r]: assembled vectors for each needed row.
    V<W> vv[2 * kMaxR + 1][W + 2 * kMaxR];
    for (int blk = 0; blk < nb; ++blk) {
      for (std::size_t ri = 0; ri < rows.size(); ++ri) {
        TLRow<W> row(in.row(y + rows[ri].dy), nx);
        for (int i = 0; i < W + 2 * r; ++i) vv[ri][i] = row.vec(blk, i - r);
      }
      for (int j = 0; j < W; ++j) {
        V<W> acc = V<W>::zero();
        for (std::size_t ri = 0; ri < rows.size(); ++ri)
          for (const auto& e : rows[ri].taps)
            acc = V<W>::fma(V<W>::set1(e.w), vv[ri][j + e.dx + r], acc);
        acc.store(o + blk * bs + j * W);
      }
    }
    // Untransposed tail columns.
    for (int i = nb * bs; i < nx; ++i) {
      double acc = 0;
      for (const auto& tp : p.taps) {
        TLRow<W> row(in.row(y + tp.off[0]), nx);
        acc += tp.w * row.logical(i + tp.off[1]);
      }
      o[i] = acc;
    }
  }
}

template <int W>
void run_ours1_2d(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps) {
  const int r = p.radius();
  const int ny = a.ny();
  if (r > 4 || r > W) {
    run_naive2d(p, a, b, tsteps);
    return;
  }
  // Transposed-resident views (core/engine.hpp) are already in layout on
  // both ping-pong buffers: skip the per-call involution entirely.
  const bool resident = a.layout() == Layout::Transposed;
  if (!resident) {
    grid_transpose_layout<W>(a);
    grid_transpose_layout<W>(b);  // halo rows of the scratch grid are read too
  }

  const FieldView2D* cur = &a;
  const FieldView2D* nxt = &b;
  for (int t = 0; t < tsteps; ++t) {
    step_rows_tl2d<W>(p, *cur, *nxt, 0, ny);
    std::swap(cur, nxt);
  }
  if (cur != &a) copy_interior(*cur, a);
  if (!resident) {
    grid_transpose_layout<W>(a);
    grid_transpose_layout<W>(b);  // leave the scratch grid as we found it
  }
}

// Explicit instantiations used by the registry and the tiling framework.
template void run_ml2d<1>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void run_ml2d<4>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void run_ml2d<8>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void run_dr2d<1>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void run_dr2d<4>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void run_dr2d<8>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void run_dlt2d<1>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void run_dlt2d<4>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void run_dlt2d<8>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void run_ours1_2d<1>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void run_ours1_2d<4>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void run_ours1_2d<8>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void step_rows_tl2d<1>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int, int);
template void step_rows_tl2d<4>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int, int);
template void step_rows_tl2d<8>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int, int);
template void step_rows_dlt2d<1>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int, int);
template void step_rows_dlt2d<4>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int, int);
template void step_rows_dlt2d<8>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int, int);
template void step_region_ml2d<1>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int,
                                  int, int, int);
template void step_region_ml2d<4>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int,
                                  int, int, int);
template void step_region_ml2d<8>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int,
                                  int, int, int);

}  // namespace sf::detail

namespace sf {
namespace {

// Baseline + 1-step transpose-layout registrations; the folded method
// (ours-2step) registers in folded2d.cpp. See the 1-D block in
// kernels1d.cpp for the capability rationale.
const KernelRegistrar reg2d{{
    // Naive executes at width 1 regardless of the registered ISA level
    // (see kernels1d.cpp).
    // Tileability (last parameter): Naive and DLT wedge-tile at any radius
    // (DLT's lifted-row-count precondition is shape-dependent and checked by
    // tiled_path_engages); ours tiles while r fits the row-group window.
    kernel2d_info(Method::Naive, Isa::Scalar, 1, 1, &detail::run_naive2d, 0,
                  0, 0),
    kernel2d_info(Method::Naive, Isa::Avx2, 1, 1, &detail::run_naive2d, 0, 0,
                  0),
    kernel2d_info(Method::Naive, Isa::Avx512, 1, 1, &detail::run_naive2d, 0,
                  0, 0),
    kernel2d_info(Method::MultipleLoads, Isa::Scalar, 1, 1,
                  &detail::run_ml2d<1>),
    kernel2d_info(Method::MultipleLoads, Isa::Avx2, 4, 1,
                  &detail::run_ml2d<4>),
    kernel2d_info(Method::MultipleLoads, Isa::Avx512, 8, 1,
                  &detail::run_ml2d<8>),
    kernel2d_info(Method::DataReorg, Isa::Scalar, 1, 1, &detail::run_dr2d<1>,
                  /*halo_floor=*/1, /*max_radius=*/1),
    kernel2d_info(Method::DataReorg, Isa::Avx2, 4, 1, &detail::run_dr2d<4>, 4,
                  4),
    kernel2d_info(Method::DataReorg, Isa::Avx512, 8, 1, &detail::run_dr2d<8>,
                  8, 8),
    kernel2d_info(Method::DLT, Isa::Scalar, 1, 1, &detail::run_dlt2d<1>, 0, 0,
                  0),
    kernel2d_info(Method::DLT, Isa::Avx2, 4, 1, &detail::run_dlt2d<4>, 0, 0,
                  0),
    kernel2d_info(Method::DLT, Isa::Avx512, 8, 1, &detail::run_dlt2d<8>, 0, 0,
                  0),
    // step_rows_tl2d's row-vector scratch caps the radius at min(W, 4).
    // Preferred layout Transposed: resident views skip the per-call
    // involution (see run_ours1_2d).
    kernel2d_info(Method::Ours, Isa::Scalar, 1, 1, &detail::run_ours1_2d<1>,
                  0, 1, 1, Layout::Transposed),
    kernel2d_info(Method::Ours, Isa::Avx2, 4, 1, &detail::run_ours1_2d<4>, 0,
                  4, 4, Layout::Transposed),
    kernel2d_info(Method::Ours, Isa::Avx512, 8, 1, &detail::run_ours1_2d<8>,
                  0, 4, 4, Layout::Transposed),
}};

}  // namespace
}  // namespace sf
