// Kernel method identifiers and executor signatures.
//
// Every kernel advances a Jacobi problem `tsteps` steps and leaves the final
// state in field `a` (field `b` is scratch of identical shape/halo). Halos
// are Dirichlet and never written. All kernels accept the stencil pattern at
// runtime, so the same code serves every Table-1 benchmark.
//
// Executors take zero-copy FieldViews (grid/field_view.hpp) over
// caller-owned memory; Grids convert implicitly. Natural-layout views are
// transformed into the kernel's working layout and back on every call;
// views tagged with the kernel's preferred layout
// (KernelInfo::preferred_layout) execute resident, skipping the per-call
// transform (see core/engine.hpp).
//
// Kernel lookup lives in kernels/registry.hpp: executors self-register with
// capability metadata (dims, ISA, halo, fold depth) and are found by method
// enum or string key. The kernel1d/2d/3d free functions below are thin
// shims over that registry, kept for one release.
#pragma once

#include <string>

#include "common/cpu.hpp"
#include "grid/grid.hpp"
#include "stencil/pattern.hpp"

namespace sf {

/// The vectorization/folding strategies compared throughout the paper.
enum class Method {
  Naive,          // scalar loops (compiler may auto-vectorize)
  MultipleLoads,  // one unaligned vector load per tap
  DataReorg,      // aligned loads + in-register shifts
  DLT,            // dimension-lifting transpose (Henretty)
  Ours,           // paper's register-transpose layout, 1-step
  Ours2,          // + temporal computation folding, m = 2
  Auto,           // Solver picks via the fold cost model (not a kernel)
};

const char* method_name(Method m);

/// 1-D kernels optionally take a time-invariant source: step = p(A)+src(K)
/// (the APOP benchmark; src/k are null for the other stencils).
using Run1D = void (*)(const Pattern1D& p, const FieldView1D& a,
                       const FieldView1D& b, const Pattern1D* src,
                       const FieldView1D* k, int tsteps);
using Run2D = void (*)(const Pattern2D& p, const FieldView2D& a,
                       const FieldView2D& b, int tsteps);
using Run3D = void (*)(const Pattern3D& p, const FieldView3D& a,
                       const FieldView3D& b, int tsteps);

/// Deprecated: registry shims. Use find_kernel() from kernels/registry.hpp.
/// Throws std::invalid_argument for combinations that do not exist.
Run1D kernel1d(Method m, Isa isa);
Run2D kernel2d(Method m, Isa isa);
Run3D kernel3d(Method m, Isa isa);

/// Deprecated: method-wide worst-case halo (max over registered ISA levels).
/// Use find_kernel(...)->required_halo(radius) for the per-kernel minimum.
int required_halo(Method m, int pattern_radius);

}  // namespace sf
