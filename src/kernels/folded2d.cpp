// Vectorized temporal computation folding for 2-D stencils (paper §3.3,
// Figure 5), m = 2.
//
// Per W-row band and W-column vector set:
//   1. *Vertical folding*: each basis counterpart c_b is built from W+2R
//      aligned row loads, folded down with the basis column weights λ⁽ᵇ⁾.
//   2. *In-register transpose* of each counterpart square (the §2.3 kernel).
//   3. *Horizontal folding*: the output column at x is Σ coeff ·
//      c_b(x + dx); columns of neighbouring vector sets come from a
//      three-slot ring buffer — the trailing transposed counterpart vectors
//      of the previous square are exactly the paper's *shifts reuse* (§3.4).
//   4. Transpose back and store rows (the optional weighted transpose of
//      Fig. 5 folded into step 3's coefficients).
//
// The intermediate time level t+1 is never materialized anywhere: that is
// the arithmetic redundancy the method eliminates. Near the physical
// boundary the folded expansion is invalid (the Dirichlet halo never
// advances), so a stepwise ring correction overwrites the invalid band,
// exactly as in the scalar FoldedRunner2D.
#include <array>
#include <stdexcept>
#include <vector>

#include "fold/region.hpp"
#include "grid/grid_utils.hpp"
#include "kernels/registry.hpp"
#include "kernels/kernels2d_impl.hpp"
#include "simd/transpose.hpp"
#include "simd/vecd.hpp"
#include "stencil/reference.hpp"

namespace sf::detail {
namespace {

template <int W>
using V = simd::vecd<W>;

constexpr int kMaxR2 = 4;        // folded radius cap (m=2, r<=2)
constexpr int kMaxSrc = 2 * kMaxR2 + 2;  // basis columns + impulse

inline int floor_div_w(int c, int w) { return c >= 0 ? c / w : -((-c - 1) / w) - 1; }

/// Exact 2-step update of rectangle `f2` (which touches the domain shell):
/// t+1 is computed into a private buffer over f2's r-expansion (clipped to
/// the domain), then t+2 over f2. Neighbours outside the domain read the
/// time-invariant halo of `in`.
void ring_fix_rect_2d(const Pattern2D& p, const FieldView2D& in, const FieldView2D& out,
                      const Rect& f2, int ny, int nx) {
  const int r = p.radius();
  const Rect f1{std::max(f2.y0 - r, 0), std::min(f2.y1 + r, ny),
                std::max(f2.x0 - r, 0), std::min(f2.x1 + r, nx)};
  const int fw = f1.x1 - f1.x0;
  std::vector<double> buf(static_cast<std::size_t>(f1.y1 - f1.y0) * fw);
  for (int y = f1.y0; y < f1.y1; ++y)
    for (int x = f1.x0; x < f1.x1; ++x) {
      double acc = 0;
      for (const auto& t : p.taps) acc += t.w * in.at(y + t.off[0], x + t.off[1]);
      buf[static_cast<std::size_t>(y - f1.y0) * fw + (x - f1.x0)] = acc;
    }
  for (int y = f2.y0; y < f2.y1; ++y)
    for (int x = f2.x0; x < f2.x1; ++x) {
      double acc = 0;
      for (const auto& t : p.taps) {
        const int yy = y + t.off[0], xx = x + t.off[1];
        const bool inside = yy >= f1.y0 && yy < f1.y1 && xx >= f1.x0 && xx < f1.x1;
        acc += t.w * (inside ? buf[static_cast<std::size_t>(yy - f1.y0) * fw +
                                   (xx - f1.x0)]
                             : in.at(yy, xx));
      }
      out.at(y, x) = acc;
    }
}

}  // namespace

template <int W>
void folded2d_advance(const Pattern2D& p, const FoldingPlan& plan,
                      const Pattern2D& lambda, const FieldView2D& in, const FieldView2D& out,
                      bool reuse, int ry0, int ry1) {
  const int ny = in.ny(), nx = in.nx();
  const int r = p.radius();
  const int R = plan.radius;
  const int nbasis = static_cast<int>(plan.basis.size());
  const bool impulse = plan.uses_impulse;
  const int nsrc = nbasis + (impulse ? 1 : 0);
  const int nbx = nx / W;
  const int nxv = nbx * W;
  const int nyv = ry1 - (ry1 - ry0) % W;  // last full W-row band start bound

  // Broadcast basis weights once.
  std::array<std::array<V<W>, 2 * kMaxR2 + 1>, kMaxSrc> bw;
  for (int s = 0; s < nbasis; ++s)
    for (int dy = 0; dy <= 2 * R; ++dy)
      bw[static_cast<std::size_t>(s)][static_cast<std::size_t>(dy)] =
          V<W>::set1(plan.basis[static_cast<std::size_t>(s)][static_cast<std::size_t>(dy)]);

  struct Term {
    int dx;
    int src;
    V<W> w;
  };
  std::vector<Term> terms;
  for (const auto& t : plan.terms)
    terms.push_back({t.dx, t.basis_id >= 0 ? t.basis_id : nbasis,
                     V<W>::set1(t.coeff)});

  // Ring buffer: transposed counterpart columns for three consecutive
  // vector sets. slots[sl][src][j] = column vector (over the band's W rows)
  // of column j of that set.
  V<W> slots[3][kMaxSrc][W];

  for (int y0 = ry0; y0 < nyv; y0 += W) {
    // Builds the counterpart columns of vector-set `xb` into slot `sl`.
    auto fill = [&](int xb, int sl) {
      if (xb >= 0 && xb < nbx) {
        // Load each source row once and fold it into every counterpart
        // (rows are shared across all basis columns).
        V<W> vf[kMaxSrc][W];
        for (int s = 0; s < nsrc; ++s)
          for (int i = 0; i < W; ++i) vf[s][i] = V<W>::zero();
        for (int yy = -R; yy < W + R; ++yy) {
          const V<W> rowv = V<W>::loadu(in.row(y0 + yy) + xb * W);
          const int ilo = std::max(0, yy - R), ihi = std::min(W - 1, yy + R);
          for (int i = ilo; i <= ihi; ++i) {
            const int dy = yy - i;
            for (int s = 0; s < nbasis; ++s) {
              if (plan.basis[static_cast<std::size_t>(s)][static_cast<std::size_t>(dy + R)] == 0.0)
                continue;
              vf[s][i] = V<W>::fma(
                  bw[static_cast<std::size_t>(s)][static_cast<std::size_t>(dy + R)], rowv,
                  vf[s][i]);
            }
          }
          if (impulse && yy >= 0 && yy < W) vf[nbasis][yy] = rowv;
        }
        for (int s = 0; s < nsrc; ++s) {
          simd::transpose(vf[s]);
          for (int j = 0; j < W; ++j) slots[sl][s][j] = vf[s][j];
        }
      } else {
        // Edge pseudo-set: columns live in the x-halo (or just beyond the
        // aligned region); build scalar.
        alignas(64) double tmp[W];
        for (int s = 0; s < nsrc; ++s)
          for (int j = 0; j < W; ++j) {
            const int x = xb * W + j;
            for (int i = 0; i < W; ++i) {
              if (impulse && s == nbasis) {
                tmp[i] = in.at(y0 + i, x);
              } else {
                double acc = 0;
                for (int dy = -R; dy <= R; ++dy)
                  acc += plan.basis[static_cast<std::size_t>(s)][static_cast<std::size_t>(dy + R)] *
                         in.at(y0 + i + dy, x);
                tmp[i] = acc;
              }
            }
            slots[sl][s][j] = V<W>::load(tmp);
          }
      }
    };

    // Emits output vector-set `xb`, with block bb's columns in slot slot_of(bb).
    auto emit = [&](int xb, auto slot_of) {
      V<W> oc[W];
      for (int j = 0; j < W; ++j) {
        V<W> acc = V<W>::zero();
        for (const Term& t : terms) {
          const int c = xb * W + j + t.dx;
          const int bb = floor_div_w(c, W);
          acc = V<W>::fma(t.w, slots[slot_of(bb)][t.src][c - bb * W], acc);
        }
        oc[j] = acc;
      }
      simd::transpose(oc);
      for (int i = 0; i < W; ++i) oc[i].store(out.row(y0 + i) + xb * W);
    };

    if (reuse) {
      // Pipeline: each vector set's counterparts are folded and transposed
      // exactly once; neighbours come from the ring buffer.
      fill(-1, 0);
      fill(0, 1);
      for (int xb = 0; xb < nbx; ++xb) {
        fill(xb + 1, (xb + 2) % 3);
        emit(xb, [](int bb) { return (bb + 1) % 3; });
      }
    } else {
      // Ablation: recompute all three neighbouring sets per output set.
      for (int xb = 0; xb < nbx; ++xb) {
        fill(xb - 1, 0);
        fill(xb, 1);
        fill(xb + 1, 2);
        emit(xb, [&](int bb) { return bb - xb + 1; });
      }
    }
  }

  // Alignment tails: scalar application of the folding matrix.
  if (nxv < nx) apply_pattern(lambda, in, out, ry0, ry1, nxv, nx);
  if (nyv < ry1) apply_pattern(lambda, in, out, nyv, ry1, 0, nxv);

  // Boundary-ring correction: the folded expansion assumed the Dirichlet
  // halo advances in time; recompute the invalid band (the domain-boundary
  // shell intersected with this row range) stepwise. Each rectangle uses a
  // private t+1 buffer over its r-expansion, so concurrent tile updates
  // never share scratch.
  if (r > 0) {
    std::vector<Rect> f2;  // shell(r) ∩ rows [ry0, ry1)
    f2.push_back({ry0, ry1, 0, std::min(r, nx)});
    if (nx > r) f2.push_back({ry0, ry1, std::max(nx - r, r), nx});
    if (ry0 < r) f2.push_back({ry0, std::min(r, ry1), 0, nx});
    if (ry1 > ny - r) f2.push_back({std::max(ny - r, ry0), ry1, 0, nx});
    for (const Rect& rc : f2)
      if (!rc.empty()) ring_fix_rect_2d(p, in, out, rc, ny, nx);
  }
}

namespace {

template <int W>
void run_ours2_2d_impl(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps,
                       bool reuse) {
  const int ny = a.ny(), nx = a.nx();
  const FoldingPlan plan = plan_folding(p, 2);
  if (plan.radius > std::min(W, kMaxR2) ||
      static_cast<int>(plan.basis.size()) + 1 > kMaxSrc) {
    run_naive2d(p, a, b, tsteps);
    return;
  }
  const Pattern2D lambda = power(p, 2);

  const FieldView2D* cur = &a;
  const FieldView2D* nxt = &b;
  int t = 0;
  for (; t + 2 <= tsteps; t += 2) {
    folded2d_advance<W>(p, plan, lambda, *cur, *nxt, reuse, 0, ny);
    std::swap(cur, nxt);
  }
  for (; t < tsteps; ++t) {
    step_region_ml2d<W>(p, *cur, *nxt, 0, ny, 0, nx);
    std::swap(cur, nxt);
  }
  if (cur != &a) copy_interior(*cur, a);
}

}  // namespace

template <int W>
void run_ours2_2d(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps) {
  run_ours2_2d_impl<W>(p, a, b, tsteps, /*reuse=*/true);
}

template <int W>
void run_ours2_2d_noreuse(const Pattern2D& p, const FieldView2D& a, const FieldView2D& b, int tsteps) {
  run_ours2_2d_impl<W>(p, a, b, tsteps, /*reuse=*/false);
}

template void run_ours2_2d<1>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void run_ours2_2d<4>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void run_ours2_2d<8>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void run_ours2_2d_noreuse<1>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void run_ours2_2d_noreuse<4>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void run_ours2_2d_noreuse<8>(const Pattern2D&, const FieldView2D&, const FieldView2D&, int);
template void folded2d_advance<1>(const Pattern2D&, const FoldingPlan&,
                                  const Pattern2D&, const FieldView2D&, const FieldView2D&,
                                  bool, int, int);
template void folded2d_advance<4>(const Pattern2D&, const FoldingPlan&,
                                  const Pattern2D&, const FieldView2D&, const FieldView2D&,
                                  bool, int, int);
template void folded2d_advance<8>(const Pattern2D&, const FoldingPlan&,
                                  const Pattern2D&, const FieldView2D&, const FieldView2D&,
                                  bool, int, int);

}  // namespace sf::detail

namespace sf {
namespace {

// Folded-kernel registration. The folded pass applies power(p, 2), so the
// halo scales with fold_depth = 2 and the vector path engages only while
// 2r <= min(W, kMaxR2).
const KernelRegistrar reg2d_folded{{
    // The tiled stage (folded2d_advance over wedge row ranges) shares the
    // vector window, so the tiled radius range mirrors max_radius; the
    // wedge slope is fold-doubled (KernelInfo::wedge_slope).
    kernel2d_info(Method::Ours2, Isa::Scalar, 1, 2, &detail::run_ours2_2d<1>,
                  /*halo_floor=*/0, /*max_radius=*/-1, /*tiled_max_radius=*/-1),
    kernel2d_info(Method::Ours2, Isa::Avx2, 4, 2, &detail::run_ours2_2d<4>, 0,
                  2, 2),
    kernel2d_info(Method::Ours2, Isa::Avx512, 8, 2, &detail::run_ours2_2d<8>,
                  0, 2, 2),
}};

}  // namespace
}  // namespace sf
