#include "kernels/registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sf {

const char* method_name(Method m) {
  switch (m) {
    case Method::Naive: return "naive";
    case Method::MultipleLoads: return "multiple-loads";
    case Method::DataReorg: return "data-reorg";
    case Method::DLT: return "dlt";
    case Method::Ours: return "ours";
    case Method::Ours2: return "ours-2step";
    case Method::Auto: return "auto";
  }
  return "?";
}

Method method_from_name(std::string_view name) {
  for (Method m : {Method::Naive, Method::MultipleLoads, Method::DataReorg,
                   Method::DLT, Method::Ours, Method::Ours2, Method::Auto})
    if (name == method_name(m)) return m;
  throw std::invalid_argument("unknown method name: " + std::string(name));
}

KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry r;
  return r;
}

void KernelRegistry::add(KernelInfo info) { entries_.push_back(info); }

namespace {

bool isa_runs_here(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return true;
    case Isa::Avx2: return cpu_has_avx2();
    case Isa::Avx512: return cpu_has_avx512();
    case Isa::Auto: return true;
  }
  return false;
}

bool order_by_method_isa(const KernelInfo* a, const KernelInfo* b) {
  if (a->method != b->method) return a->method < b->method;
  return a->isa < b->isa;
}

}  // namespace

namespace {

/// Lookup ISA levels to try, widest first. A concrete request is exact; an
/// Auto request falls back through every CPU-supported level, so a method
/// registered only at narrower widths (the extensibility case) is still
/// found on wider machines.
std::vector<Isa> lookup_levels(Isa isa) {
  if (isa != Isa::Auto) return {isa};
  std::vector<Isa> levels;
  for (Isa level : {Isa::Avx512, Isa::Avx2, Isa::Scalar})
    if (isa_runs_here(level)) levels.push_back(level);
  return levels;
}

}  // namespace

const KernelInfo* KernelRegistry::find(Method m, int dims, Isa isa) const {
  for (Isa level : lookup_levels(isa))
    for (const KernelInfo& e : entries_)
      if (e.method == m && e.dims == dims && e.isa == level) return &e;
  return nullptr;
}

const KernelInfo* KernelRegistry::find(std::string_view name, int dims,
                                       Isa isa) const {
  for (Isa level : lookup_levels(isa))
    for (const KernelInfo& e : entries_)
      if (name == e.name && e.dims == dims && e.isa == level) return &e;
  return nullptr;
}

std::vector<const KernelInfo*> KernelRegistry::available(int dims,
                                                         Isa isa) const {
  std::vector<const KernelInfo*> out;
  for (const KernelInfo& e : entries_) {
    if (e.dims != dims) continue;
    if (isa == Isa::Auto ? !isa_runs_here(e.isa) : e.isa != isa) continue;
    out.push_back(&e);
  }
  std::sort(out.begin(), out.end(), order_by_method_isa);
  return out;
}

std::vector<const KernelInfo*> KernelRegistry::all() const {
  std::vector<const KernelInfo*> out;
  out.reserve(entries_.size());
  for (const KernelInfo& e : entries_) out.push_back(&e);
  std::sort(out.begin(), out.end(), order_by_method_isa);
  return out;
}

std::vector<const KernelInfo*> available_kernels(int dims, Isa isa) {
  return KernelRegistry::instance().available(dims, isa);
}

const KernelInfo* find_kernel(Method m, int dims, Isa isa) {
  return KernelRegistry::instance().find(m, dims, isa);
}

const KernelInfo* find_kernel(std::string_view name, int dims, Isa isa) {
  return KernelRegistry::instance().find(name, dims, isa);
}

namespace {

[[noreturn]] void throw_missing(const std::string& what, int dims, Isa isa) {
  throw std::invalid_argument("no " + std::to_string(dims) +
                              "-D kernel for " + what + " at " +
                              isa_name(resolve_isa(isa)));
}

}  // namespace

const KernelInfo& require_kernel(Method m, int dims, Isa isa) {
  const KernelInfo* k = KernelRegistry::instance().find(m, dims, isa);
  if (k == nullptr) throw_missing(method_name(m), dims, isa);
  return *k;
}

const KernelInfo& require_kernel(std::string_view name, int dims, Isa isa) {
  const KernelInfo* k = KernelRegistry::instance().find(name, dims, isa);
  if (k == nullptr) throw_missing(std::string(name), dims, isa);
  return *k;
}

// ---------------------------------------------------------------------------
// Deprecated shims over the registry.
// ---------------------------------------------------------------------------

Run1D kernel1d(Method m, Isa isa) { return require_kernel(m, 1, isa).run1; }
Run2D kernel2d(Method m, Isa isa) { return require_kernel(m, 2, isa).run2; }
Run3D kernel3d(Method m, Isa isa) { return require_kernel(m, 3, isa).run3; }

int required_halo(Method m, int pattern_radius) {
  // Worst case over every registered ISA level of the method (callers that
  // know their kernel should ask it directly: find_kernel(...)->
  // required_halo(r)). Dimensionality does not affect the bound.
  int h = 0;
  bool found = false;
  for (const KernelInfo* e : KernelRegistry::instance().all())
    if (e->method == m) {
      h = std::max(h, e->required_halo(pattern_radius));
      found = true;
    }
  if (!found)  // pre-registration fallback: the seed's conservative bound
    h = std::max(8, (m == Method::Ours2 ? 2 : 1) * pattern_radius);
  return h;
}

}  // namespace sf
