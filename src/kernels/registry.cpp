#include <stdexcept>

#include "kernels/api.hpp"

namespace sf {

const char* method_name(Method m) {
  switch (m) {
    case Method::Naive: return "naive";
    case Method::MultipleLoads: return "multiple-loads";
    case Method::DataReorg: return "data-reorg";
    case Method::DLT: return "dlt";
    case Method::Ours: return "ours";
    case Method::Ours2: return "ours-2step";
  }
  return "?";
}

int required_halo(Method m, int pattern_radius) {
  // 8 covers the widest vector the data-reorg / edge-assembly paths may
  // touch beyond the interior; folded methods read 2r of *valid* halo.
  const int fold = m == Method::Ours2 ? 2 : 1;
  return std::max(8, fold * pattern_radius);
}

}  // namespace sf
