/// \file
/// \brief Capability-driven kernel registry.
///
/// Every executor translation unit registers its kernels at static-init time
/// through a KernelRegistrar object; nothing outside that TU has to change to
/// add a method, an ISA level, or a dimensionality. Consumers look kernels up
/// by (method | name, dims, isa) or enumerate `available_kernels(dims, isa)`
/// — the bench harnesses iterate that enumeration instead of hand-kept
/// method lists.
///
/// Each entry carries the capability metadata the Solver negotiates against:
///  * required_halo(radius) — the minimum grid halo this kernel needs for a
///    pattern of that radius (fold_depth * radius, floored by any extra the
///    vector path reads, e.g. one full vector for data-reorg's aligned
///    L/C/R loads);
///  * fold_depth — temporal folding factor m (1 = no folding);
///  * supports(radius) — whether the *optimized* path engages at this
///    radius. Every kernel still runs correctly outside that range (they
///    fall back internally), but auto-selection uses this to avoid picking
///    a method whose vector path would silently degrade;
///  * tileable(radius) / wedge_slope(radius) — whether a temporal
///    split-tiling stage implementation exists for this kernel (paper §3.4)
///    and the wedge slope one super-step advances, fold-doubled for the
///    folded methods. The ExecutionPlan layer (core/execution_plan.hpp)
///    negotiates tiled-vs-untiled execution against these.
#pragma once

#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/cpu.hpp"
#include "kernels/api.hpp"

/// Temporal-folding stencil library: the conf_sc_LiYZY21 reproduction
/// (register-transpose vectorization, temporal computation folding, and
/// temporal split tiling behind the sf::Solver facade).
namespace sf {

/// One registered kernel: an executor function plus the capability metadata
/// (halo, fold depth, radius range, tileability, preferred memory layout)
/// the Solver and the ExecutionPlan negotiate against.
struct KernelInfo {
  const char* name;  ///< String key, e.g. "ours-2step" (method_name(method)).
  Method method;     ///< Vectorization/folding strategy this entry implements.
  int dims;          ///< Dimensionality: 1, 2 or 3.
  Isa isa;           ///< Concrete level: Scalar, Avx2 or Avx512 (never Auto).
  int width;         ///< SIMD lanes in doubles (1, 4, 8).
  int fold_depth;    ///< Temporal folding factor m; 1 = single-step.
  int halo_floor;    ///< Extra halo the vector path reads beyond fold_depth*r.
  int max_radius;    ///< Largest pattern radius the optimized path handles
                     ///< (0 = any, -1 = never engages); beyond it the kernel
                     ///< falls back internally.
  int tiled_max_radius;  ///< Largest radius the temporal split-tiling stage
                         ///< implementation handles (0 = any, -1 = no tiled
                         ///< stage exists: tiling requests fall back to the
                         ///< untiled kernel). The folded methods halve the
                         ///< vector window, so their tiled range mirrors
                         ///< max_radius; DLT has no 1-D tiled stage (the
                         ///< lifted seam couples distant columns).
  Layout preferred_layout = Layout::Natural;
  ///< Memory layout the optimized path keeps field data in between time
  ///< steps (Layout::Transposed for the register-transpose kernels). A
  ///< kernel whose preference is non-Natural transforms Natural input on
  ///< entry and back on exit — or skips both when the caller hands it views
  ///< already tagged with this layout (transposed-resident execution, see
  ///< core/engine.hpp). Only meaningful while supports(radius) holds; the
  ///< fallback paths are Natural-only.

  Run1D run1 = nullptr;  ///< 1-D executor (non-null iff dims == 1).
  Run2D run2 = nullptr;  ///< 2-D executor (non-null iff dims == 2).
  Run3D run3 = nullptr;  ///< 3-D executor (non-null iff dims == 3).

  /// Minimum halo width grids must be allocated with for radius-r patterns.
  int required_halo(int radius) const {
    const int h = fold_depth * radius;
    return halo_floor > h ? halo_floor : h;
  }

  /// True if the optimized (vectorized/folded) path engages at this radius.
  bool supports(int radius) const {
    if (max_radius < 0) return false;
    return max_radius == 0 || radius <= max_radius;
  }

  /// True if a temporal split-tiling stage implementation (paper §3.4)
  /// exists for this kernel and engages at this radius. A false return
  /// means a tiling request must run the untiled executor instead.
  bool tileable(int radius) const {
    if (tiled_max_radius < 0) return false;
    return tiled_max_radius == 0 || radius <= tiled_max_radius;
  }

  /// Wedge slope of one tiled super-step: how far a triangle face shifts
  /// per stage step (paper Fig. 7). The folded methods skip odd time
  /// levels, so their slope doubles (fold_depth * radius) — one folded
  /// super-step covers m plain time steps.
  int wedge_slope(int radius) const { return fold_depth * radius; }

  /// The layout this kernel keeps resident fields in for a radius-r
  /// pattern: preferred_layout while the optimized path engages
  /// (supports(radius)), Layout::Natural otherwise — the internal fallback
  /// paths never transform, so resident execution must not engage either.
  Layout resident_layout(int radius) const {
    return supports(radius) ? preferred_layout : Layout::Natural;
  }

  /// Register-block quantum along the *tiled* dimension: the extent the
  /// tile tree's leaf level (core/execution_plan.hpp TileTree) rounds a
  /// mid-level tile down to, so an L3 tile never cuts the unit the vector
  /// path processes at once. 1-D tiles cut the contiguous SIMD dimension,
  /// where the register-transpose kernels work on width x width element
  /// blocks; 2-D/3-D tile across rows/planes, where the folded kernels
  /// advance fold_depth levels per sweep of a row/plane group. Purely a
  /// rounding granule — every extent is still *correct*, this is the one
  /// the kernel executes without partial-block entry/exit work.
  int reg_block() const {
    const int m = fold_depth > 1 ? fold_depth : 1;
    return dims == 1 ? width * width : m;
  }
};

/// Process-wide table of registered kernels. Executor TUs add entries at
/// static-init time; lookups hand out stable `KernelInfo*`.
class KernelRegistry {
 public:
  /// The singleton registry instance.
  static KernelRegistry& instance();

  /// Registers one kernel entry (normally via KernelRegistrar).
  void add(KernelInfo info);

  /// Lookup by method enum. `isa` may be Isa::Auto (resolved to the widest
  /// CPU-supported level). Returns nullptr if no such kernel is registered.
  const KernelInfo* find(Method m, int dims, Isa isa = Isa::Auto) const;
  /// Lookup by string key (e.g. "ours-2step"); same resolution rules.
  const KernelInfo* find(std::string_view name, int dims,
                         Isa isa = Isa::Auto) const;

  /// All kernels registered for `dims`. With a concrete `isa`, exactly the
  /// entries at that level; with Isa::Auto, every entry the running CPU can
  /// execute. Sorted by (method, isa) for deterministic enumeration.
  std::vector<const KernelInfo*> available(int dims,
                                           Isa isa = Isa::Auto) const;

  /// Every registered entry, unfiltered (registry introspection/tests).
  std::vector<const KernelInfo*> all() const;

 private:
  KernelRegistry() = default;
  // Deque, not vector: find()/available() hand out KernelInfo* that must
  // survive later add() calls (static registration order across TUs is
  // unspecified).
  std::deque<KernelInfo> entries_;
};

/// Free-function form of KernelRegistry::available().
std::vector<const KernelInfo*> available_kernels(int dims,
                                                 Isa isa = Isa::Auto);
/// Free-function form of KernelRegistry::find() by method enum.
const KernelInfo* find_kernel(Method m, int dims, Isa isa = Isa::Auto);
/// Free-function form of KernelRegistry::find() by string key.
const KernelInfo* find_kernel(std::string_view name, int dims,
                              Isa isa = Isa::Auto);

/// Like find_kernel(), but throws std::invalid_argument naming the missing
/// (method, dims, isa) combination instead of returning nullptr — use when
/// the kernel is expected to exist and a null deref would otherwise be the
/// failure mode.
const KernelInfo& require_kernel(Method m, int dims, Isa isa = Isa::Auto);
/// String-key overload of require_kernel().
const KernelInfo& require_kernel(std::string_view name, int dims,
                                 Isa isa = Isa::Auto);

/// Parses a method string key ("naive", "ours-2step", "auto", ...);
/// throws std::invalid_argument for unknown names.
Method method_from_name(std::string_view name);

/// Registers a batch of kernels at static-init time. Each kernel TU owns
/// one of these; adding a kernel touches only its own TU.
struct KernelRegistrar {
  /// Adds every entry of `infos` to the singleton registry.
  explicit KernelRegistrar(std::initializer_list<KernelInfo> infos) {
    for (const KernelInfo& i : infos) KernelRegistry::instance().add(i);
  }
};

/// Builds a 1-D KernelInfo, keeping registration lines short. `halo_floor`
/// and `max_radius` default to the common case (no extra halo, any radius);
/// `tiled_max_radius` defaults to "no tiled stage" so a kernel must opt in
/// to split tiling explicitly, and `preferred` defaults to Natural so a
/// kernel must declare its resident layout explicitly too.
inline KernelInfo kernel1d_info(Method m, Isa isa, int width, int fold,
                                Run1D fn, int halo_floor = 0,
                                int max_radius = 0,
                                int tiled_max_radius = -1,
                                Layout preferred = Layout::Natural) {
  return KernelInfo{method_name(m), m,          1,
                    isa,            width,      fold,
                    halo_floor,     max_radius, tiled_max_radius,
                    preferred,      fn,         nullptr,
                    nullptr};
}
/// 2-D counterpart of kernel1d_info().
inline KernelInfo kernel2d_info(Method m, Isa isa, int width, int fold,
                                Run2D fn, int halo_floor = 0,
                                int max_radius = 0,
                                int tiled_max_radius = -1,
                                Layout preferred = Layout::Natural) {
  return KernelInfo{method_name(m), m,          2,
                    isa,            width,      fold,
                    halo_floor,     max_radius, tiled_max_radius,
                    preferred,      nullptr,    fn,
                    nullptr};
}
/// 3-D counterpart of kernel1d_info().
inline KernelInfo kernel3d_info(Method m, Isa isa, int width, int fold,
                                Run3D fn, int halo_floor = 0,
                                int max_radius = 0,
                                int tiled_max_radius = -1,
                                Layout preferred = Layout::Natural) {
  return KernelInfo{method_name(m), m,          3,
                    isa,            width,      fold,
                    halo_floor,     max_radius, tiled_max_radius,
                    preferred,      nullptr,    nullptr,
                    fn};
}

}  // namespace sf
