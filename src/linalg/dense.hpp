// Minimal dense linear algebra, sized for the folding planner's needs
// (matrices of a few dozen rows/columns).
#pragma once

#include <cstddef>
#include <vector>

namespace sf {

/// Row-major dense matrix of doubles.
class Mat {
 public:
  Mat() = default;
  Mat(int rows, int cols)
      : r_(rows), c_(cols), a_(static_cast<std::size_t>(rows) * cols, 0.0) {}

  int rows() const { return r_; }
  int cols() const { return c_; }

  double& operator()(int i, int j) { return a_[static_cast<std::size_t>(i) * c_ + j]; }
  double operator()(int i, int j) const {
    return a_[static_cast<std::size_t>(i) * c_ + j];
  }

  Mat transposed() const;

  friend Mat operator*(const Mat& a, const Mat& b);

 private:
  int r_ = 0, c_ = 0;
  std::vector<double> a_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Returns false if A is numerically singular (pivot below `tol`).
bool solve_gauss(Mat a, std::vector<double> b, std::vector<double>& x,
                 double tol = 1e-12);

}  // namespace sf
