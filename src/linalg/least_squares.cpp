#include "linalg/least_squares.hpp"

#include <cmath>

namespace sf {

// Rank-revealing thin QR by modified Gram-Schmidt. Basis vectors that are
// (numerically) linear combinations of earlier ones are dropped and get a
// zero coefficient, so a degenerate basis (e.g. the impulse coinciding with
// an existing counterpart direction) still yields the exact minimal-norm-ish
// fit instead of a singular solve.
LsqFit least_squares(const std::vector<std::vector<double>>& basis,
                     const std::vector<double>& target, double tol) {
  LsqFit fit;
  const int k = static_cast<int>(basis.size());
  const int n = static_cast<int>(target.size());
  fit.coeff.assign(k, 0.0);

  double tscale = 0.0;
  for (double v : target) tscale = std::max(tscale, std::fabs(v));

  auto dot = [n](const std::vector<double>& a, const std::vector<double>& b) {
    double s = 0;
    for (int i = 0; i < n; ++i) s += a[i] * b[i];
    return s;
  };

  if (k > 0 && tscale > 0.0) {
    std::vector<std::vector<double>> q;       // orthonormal columns
    std::vector<int> qcol;                    // original index of q[j]
    Mat r(k, k);                              // r(j, i) = q_j . basis[i]
    for (int i = 0; i < k; ++i) {
      std::vector<double> v = basis[i];
      const double norm0 = std::sqrt(dot(v, v));
      if (norm0 == 0.0) continue;
      for (std::size_t j = 0; j < q.size(); ++j) {
        const double rj = dot(q[j], v);
        r(static_cast<int>(j), i) = rj;
        for (int t = 0; t < n; ++t) v[t] -= rj * q[j][t];
      }
      const double norm1 = std::sqrt(dot(v, v));
      if (norm1 > 1e-10 * norm0) {
        for (int t = 0; t < n; ++t) v[t] /= norm1;
        r(static_cast<int>(q.size()), i) = norm1;
        q.push_back(std::move(v));
        qcol.push_back(i);
      }
    }

    // y = Q^T t, then back-substitute R c = y over the independent columns.
    const int m = static_cast<int>(q.size());
    std::vector<double> y(m), c(m, 0.0);
    for (int j = 0; j < m; ++j) y[j] = dot(q[static_cast<std::size_t>(j)], target);
    for (int j = m - 1; j >= 0; --j) {
      double s = y[j];
      for (int l = j + 1; l < m; ++l) s -= r(j, qcol[l]) * c[l];
      c[j] = s / r(j, qcol[j]);
    }
    for (int j = 0; j < m; ++j) {
      // Prune FP noise relative to the target's scale.
      double bscale = 0.0;
      for (double v : basis[qcol[j]]) bscale = std::max(bscale, std::fabs(v));
      if (std::fabs(c[j]) * bscale > 1e-9 * tscale) fit.coeff[qcol[j]] = c[j];
    }
  }

  fit.residual_inf = 0.0;
  for (int t = 0; t < n; ++t) {
    double v = target[t];
    for (int i = 0; i < k; ++i) v -= fit.coeff[i] * basis[i][t];
    fit.residual_inf = std::max(fit.residual_inf, std::fabs(v));
  }
  fit.exact = tscale == 0.0 || fit.residual_inf <= tol * tscale;
  return fit;
}

}  // namespace sf
