// Least-squares fit of a target vector against a small basis — the linear
// regression model of paper §3.5 (Eq. 7-9), used to express a folding
// counterpart as a weighted combination of already-computed counterparts.
#pragma once

#include <vector>

#include "linalg/dense.hpp"

namespace sf {

struct LsqFit {
  std::vector<double> coeff;  // one per basis vector
  double residual_inf;        // max |target - basis*coeff|
  bool exact;                 // residual below the exactness tolerance
};

/// Fits target ~= sum coeff[i] * basis[i] by normal equations.
/// `basis` vectors must all have target.size() elements. An empty basis
/// yields coeff = {} and residual = max|target|.
///
/// The paper's constraint "a correct result is produced" (§3.5) maps to
/// `exact`: the fit may only be *used* for counterpart reuse when the
/// residual vanishes, otherwise the planner recomputes the counterpart from
/// the original square.
LsqFit least_squares(const std::vector<std::vector<double>>& basis,
                     const std::vector<double>& target, double tol = 1e-9);

}  // namespace sf
