#include "linalg/dense.hpp"

#include <cmath>
#include <utility>

namespace sf {

Mat Mat::transposed() const {
  Mat t(c_, r_);
  for (int i = 0; i < r_; ++i)
    for (int j = 0; j < c_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

Mat operator*(const Mat& a, const Mat& b) {
  Mat r(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i)
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) r(i, j) += aik * b(k, j);
    }
  return r;
}

bool solve_gauss(Mat a, std::vector<double> b, std::vector<double>& x,
                 double tol) {
  const int n = a.rows();
  if (n != a.cols() || static_cast<int>(b.size()) != n) return false;
  for (int col = 0; col < n; ++col) {
    int piv = col;
    for (int i = col + 1; i < n; ++i)
      if (std::fabs(a(i, col)) > std::fabs(a(piv, col))) piv = i;
    if (std::fabs(a(piv, col)) < tol) return false;
    if (piv != col) {
      for (int j = 0; j < n; ++j) std::swap(a(piv, j), a(col, j));
      std::swap(b[piv], b[col]);
    }
    for (int i = col + 1; i < n; ++i) {
      const double f = a(i, col) / a(col, col);
      if (f == 0.0) continue;
      for (int j = col; j < n; ++j) a(i, j) -= f * a(col, j);
      b[i] -= f * b[col];
    }
  }
  x.assign(n, 0.0);
  for (int i = n - 1; i >= 0; --i) {
    double s = b[i];
    for (int j = i + 1; j < n; ++j) s -= a(i, j) * x[j];
    x[i] = s / a(i, i);
  }
  return true;
}

}  // namespace sf
