/// \file
/// \brief sf::telemetry — low-overhead metrics, tracing and profiling hooks.
///
/// The subsystem has three pillars:
///
///  1. **Metrics** — lock-free sharded `Counter`s and log-bucketed
///     `Histogram`s behind a process-wide registry of stable names.
///     Writers touch a cache-line-padded per-thread shard with one relaxed
///     atomic RMW; readers aggregate shards on demand via `snapshot()`.
///     When `SF_METRICS` is unset (or "0") the registry hands out dead
///     handles and every `add()`/`record()` is a branch-predicted no-op on
///     a null pointer — enablement is resolved when the handle is acquired
///     (object construction / first use of an instrumentation site), never
///     per operation, and never inside kernel cell loops.
///
///  2. **Trace spans** — `Span` is an RAII scope that records a
///     (name, start, duration, thread) event into a bounded per-thread
///     ring buffer when `SF_TRACE` is set. The journal is exportable as
///     chrome-trace JSON (`chrome_trace_json()`, load in `about:tracing`
///     or Perfetto). Span names must be string literals (or otherwise
///     outlive the process) — the journal stores the pointer.
///
///  3. **Exporters** — pull-style: `snapshot()` returns an aggregated
///     struct, `text_dump()` a human-readable report, and
///     `write_reports(dir)` the CSV/JSON artifact set
///     (`telemetry_counters-*.csv`, `telemetry_hist-*.csv`,
///     `telemetry_samples_*-*.csv`, `trace-*.json`). Setting
///     `SF_TELEMETRY_OUT=dir` writes the same artifact set automatically
///     at process exit. `Server::metrics()` surfaces `text_dump()` as a
///     serving endpoint.
///
/// A fourth, smaller facility — `SampleLog` — appends fixed-column rows
/// (e.g. one row per tuner measurement) for offline model fitting; see
/// `samples()`.
///
/// docs/OBSERVABILITY.md lists every metric name, the span taxonomy and
/// the exporter formats.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace sf::telemetry {

namespace detail {
struct CounterCells;    ///< Sharded counter storage (registry-owned).
struct HistogramCells;  ///< Sharded histogram storage (registry-owned).
struct SampleTable;     ///< Sample-log storage (registry-owned).
/// Appends a completed span to the calling thread's trace ring.
void record_span(const char* name, std::int64_t t0_ns, std::int64_t t1_ns);
}  // namespace detail

// ---------------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------------

/// True when `SF_METRICS` was truthy at the last `refresh_env()` (or first
/// use). Handles acquired while disabled stay dead no-ops forever; callers
/// resolve handles at construct/prepare time, so flipping the variable
/// mid-process affects only objects constructed afterwards.
bool metrics_enabled();

/// True when `SF_TRACE` was truthy at the last `refresh_env()` (or first
/// use). Unlike metrics handles, `Span` checks this at construction, so a
/// refresh takes effect for all subsequently opened spans.
bool trace_enabled();

/// Re-reads `SF_METRICS` / `SF_TRACE` / `SF_TELEMETRY_OUT`. Test hook:
/// production code reads the cached values resolved on first use.
void refresh_env();

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Monotonic counter handle. Copyable, trivially destructible; a
/// default-constructed (or disabled-registry) handle is a dead no-op.
/// `add()` is one relaxed fetch_add on a cache-line-padded per-thread
/// shard — safe from any thread, wait-free, exact on aggregation.
class Counter {
 public:
  /// A dead handle (live() is false; add() is a no-op).
  Counter() = default;
  /// Adds `n` (may be negative for gauges-by-delta) to this thread's shard.
  void add(std::int64_t n = 1) const;
  /// True when backed by live registry storage (metrics were enabled when
  /// the handle was acquired).
  bool live() const { return cells_ != nullptr; }

 private:
  friend Counter counter(const std::string& name);
  explicit Counter(detail::CounterCells* cells) : cells_(cells) {}
  detail::CounterCells* cells_ = nullptr;
};

/// Registry lookup: returns the (process-wide) counter named `name`,
/// creating it on first acquisition. Dead handle when metrics are
/// disabled. Takes a registry mutex — acquire at construct/prepare time
/// and keep the handle, not per increment.
Counter counter(const std::string& name);

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Number of log2 buckets per histogram (covers the full non-negative
/// int64 range; negative values clamp into bucket 0).
constexpr int kHistogramBuckets = 64;

/// Bucket index for value `v`: 0 for v <= 0, otherwise bit_width(v), so
/// bucket b > 0 spans [2^(b-1), 2^b). Exposed for tests and exporters.
int histogram_bucket(std::int64_t v);

/// Inclusive lower bound of bucket `b` (0 for b == 0, else 2^(b-1);
/// clamps to INT64_MAX for b >= kHistogramBuckets, the open top edge).
std::int64_t histogram_bucket_lo(int b);

/// Log-bucketed histogram handle (64 power-of-two buckets plus exact
/// count/sum). Same sharding and no-op semantics as Counter.
class Histogram {
 public:
  /// A dead handle (live() is false; record() is a no-op).
  Histogram() = default;
  /// Records one observation of `v` into this thread's shard.
  void record(std::int64_t v) const;
  /// True when backed by live registry storage.
  bool live() const { return cells_ != nullptr; }

 private:
  friend Histogram histogram(const std::string& name);
  explicit Histogram(detail::HistogramCells* cells) : cells_(cells) {}
  detail::HistogramCells* cells_ = nullptr;
};

/// Registry lookup for histograms; same contract as `counter()`.
Histogram histogram(const std::string& name);

// ---------------------------------------------------------------------------
// Sample logs (tuner measurements, model-fitting fodder)
// ---------------------------------------------------------------------------

/// Append-only fixed-column row log (mutex-guarded; for cold paths like
/// tuner measurement, not per-request accounting). Rows surface in
/// `snapshot()` and export as `telemetry_samples_<name>-<stamp>.csv`.
class SampleLog {
 public:
  /// A dead handle (live() is false; append() is a no-op).
  SampleLog() = default;
  /// Appends one row; must have exactly as many entries as the log's
  /// declared columns (mismatched rows are dropped).
  void append(const std::vector<std::string>& row) const;
  /// True when backed by live registry storage.
  bool live() const { return table_ != nullptr; }

 private:
  friend SampleLog samples(const std::string& name,
                           const std::vector<std::string>& columns);
  explicit SampleLog(detail::SampleTable* table) : table_(table) {}
  detail::SampleTable* table_ = nullptr;
};

/// Registry lookup for sample logs. `columns` fixes the schema on first
/// acquisition (later acquisitions ignore it). Dead handle when metrics
/// are disabled.
SampleLog samples(const std::string& name,
                  const std::vector<std::string>& columns);

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

/// Monotonic nanoseconds since an arbitrary per-process base (the trace
/// timebase). Cheap enough for per-task timing; never called on disabled
/// paths.
std::int64_t now_ns();

/// RAII trace scope: when `SF_TRACE` is on at construction, the
/// destructor records a complete-event (name, start, duration, thread)
/// into the calling thread's bounded ring buffer. `name` must be a
/// string literal or otherwise outlive the process. ~25 ns when enabled,
/// a single predicted branch when not.
class Span {
 public:
  /// Opens the scope; samples the clock only when tracing is on.
  explicit Span(const char* name) {
    if (trace_enabled()) {
      name_ = name;
      t0_ = now_ns();
    }
  }
  /// Closes the scope and records the event (when it was opened live).
  ~Span() {
    if (name_ != nullptr) detail::record_span(name_, t0_, now_ns());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t t0_ = 0;
};

/// Capacity (events) of each per-thread trace ring: `SF_TRACE_BUF`
/// (default 8192, floor 16). Oldest events are overwritten on wrap.
int trace_capacity();

// ---------------------------------------------------------------------------
// Snapshot + exporters
// ---------------------------------------------------------------------------

/// One aggregated counter: shard-summed at snapshot time.
struct CounterSample {
  std::string name;    ///< Registry name.
  std::int64_t value;  ///< Sum over all shards (exact).
};

/// One aggregated histogram.
struct HistogramSample {
  std::string name;                                     ///< Registry name.
  std::int64_t count = 0;                               ///< Observations.
  std::int64_t sum = 0;                                 ///< Exact value sum.
  std::array<std::int64_t, kHistogramBuckets> buckets;  ///< Per-bucket counts.

  /// Mean of the recorded values (exact: sum/count); 0 when empty.
  double mean() const;
  /// Percentile estimate (p in [0,100]) from the log buckets: linear
  /// interpolation within the bucket holding the rank. Exact to within
  /// one bucket width; 0 when empty.
  double percentile(double p) const;
};

/// One exported sample log.
struct SampleTableDump {
  std::string name;                            ///< Registry name.
  std::vector<std::string> columns;            ///< Fixed schema.
  std::vector<std::vector<std::string>> rows;  ///< Appended rows, in order.
};

/// Point-in-time aggregation of every live metric. Cheap relative to the
/// write path; intended for pull-style scraping, end-of-run reports and
/// test assertions (deltas between two snapshots).
struct Snapshot {
  std::vector<CounterSample> counters;      ///< Sorted by name.
  std::vector<HistogramSample> histograms;  ///< Sorted by name.
  std::vector<SampleTableDump> samples;     ///< Sorted by name.

  /// Value of the named counter, 0 when absent.
  std::int64_t counter_value(const std::string& name) const;
  /// Pointer to the named histogram, nullptr when absent.
  const HistogramSample* find_histogram(const std::string& name) const;
};

/// Aggregates all registered metrics (shard sums, in-order sample rows).
Snapshot snapshot();

/// One completed trace event, in recording (not time) order per thread.
struct TraceEvent {
  const char* name;    ///< Span name (static storage).
  std::int64_t t0_ns;  ///< Start, trace timebase.
  std::int64_t dur_ns; ///< Duration.
  int tid;             ///< Small per-process thread ordinal.
};

/// Copies out the surviving (un-overwritten) events of every thread ring,
/// sorted by start time.
std::vector<TraceEvent> trace_events();

/// Chrome-trace ("trace event format") JSON array of complete events —
/// load in about:tracing or https://ui.perfetto.dev.
std::string chrome_trace_json();

/// Human-readable report: counters, then histograms with count/mean/
/// p50/p99, then sample-log row counts. The `Server::metrics()` payload.
std::string text_dump();

/// Writes the CSV/JSON artifact set into `dir` (created if missing,
/// "" = working directory): `telemetry_counters-<stamp>.csv`,
/// `telemetry_hist-<stamp>.csv` (long form: metric,bucket_lo,bucket_hi,
/// count), one `telemetry_samples_<name>-<stamp>.csv` per sample log and
/// `trace-<stamp>.json` when tracing captured events. The stamp matches
/// the bench harness (`%Y%m%d-%H%M%S-p<pid>`), so scripts/plot_figures.py
/// picks the histograms up as the `telemetry` family.
void write_reports(const std::string& dir);

}  // namespace sf::telemetry
