#include "telemetry/telemetry.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>

#include "common/env.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace sf::telemetry {

namespace {

// Shards per metric. A power of two so the thread->shard map is a mask;
// 16 shards x 64B lines bounds a counter at 1 KiB while keeping the
// collision rate low for the pool sizes this library runs (worker counts
// beyond 16 share shards — still exact, just occasionally contended).
constexpr unsigned kShards = 16;

std::atomic<unsigned> shard_seq{0};
std::atomic<int> tid_seq{0};

// Round-robin shard assignment at first use per thread: workers created
// together land on distinct shards.
unsigned my_shard() {
  // relaxed: a pure id allocator — each thread only needs a unique ticket,
  // and the RMW's own atomicity guarantees that; no other data is ordered
  // by it.
  thread_local const unsigned shard =
      shard_seq.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return shard;
}

int my_tid() {
  // relaxed: same id-allocator argument as my_shard().
  thread_local const int tid = tid_seq.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

namespace detail {

struct CounterCells {
  struct alignas(64) Cell {
    std::atomic<std::int64_t> v{0};
  };
  Cell cells[kShards];

  std::int64_t sum() const {
    std::int64_t s = 0;
    // relaxed: statistical read. Shard cells are independent monotone
    // tallies; a reader racing writers sees a slightly-stale total, which
    // is the documented contract of snapshot() — no write is ordered by a
    // counter value.
    for (const Cell& c : cells) s += c.v.load(std::memory_order_relaxed);
    return s;
  }
};

struct HistogramCells {
  // One shard is only ever hammered by (mostly) one thread, so the
  // buckets inside it share lines freely; padding isolates *shards* from
  // each other.
  struct alignas(64) Shard {
    std::atomic<std::int64_t> buckets[kHistogramBuckets] = {};
    std::atomic<std::int64_t> count{0};
    std::atomic<std::int64_t> sum{0};
  };
  Shard shards[kShards];

  HistogramSample aggregate(const std::string& name) const {
    HistogramSample out;
    out.name = name;
    out.buckets.fill(0);
    for (const Shard& s : shards) {
      // relaxed: statistical read, as CounterCells::sum(). A racing
      // record() may be half-applied (bucket visible, sum not yet): the
      // aggregate is approximate by contract, never used for ordering.
      out.count += s.count.load(std::memory_order_relaxed);
      out.sum += s.sum.load(std::memory_order_relaxed);
      // relaxed: same statistical-read contract as count/sum above.
      for (int b = 0; b < kHistogramBuckets; ++b)
        out.buckets[static_cast<std::size_t>(b)] +=
            s.buckets[b].load(std::memory_order_relaxed);
    }
    return out;
  }
};

struct SampleTable {
  Mutex mu;
  std::vector<std::string> columns SF_GUARDED_BY(mu);
  std::vector<std::vector<std::string>> rows SF_GUARDED_BY(mu);
};

}  // namespace detail

namespace {

struct TraceRing {
  Mutex mu;
  int tid = 0;  // immutable after creation (set before the ring is shared)
  // fixed capacity, set at creation
  std::vector<TraceEvent> slots SF_GUARDED_BY(mu);
  std::size_t head SF_GUARDED_BY(mu) = 0;    // next write index
  std::uint64_t total SF_GUARDED_BY(mu) = 0;  // events ever recorded
                                              // (wrap detection)
};

struct Registry {
  Mutex mu;
  std::map<std::string, std::unique_ptr<detail::CounterCells>> counters
      SF_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<detail::HistogramCells>> histograms
      SF_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<detail::SampleTable>> samples
      SF_GUARDED_BY(mu);
  std::vector<std::shared_ptr<TraceRing>> rings SF_GUARDED_BY(mu);
};

// Leaked on purpose: metric handles are raw pointers into the registry and
// worker threads may still be incrementing them during static destruction.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

struct EnvState {
  bool metrics;
  bool trace;
  int trace_cap;
  std::string out_dir;
};

Mutex env_mu;
EnvState env_state SF_GUARDED_BY(env_mu);
bool env_loaded SF_GUARDED_BY(env_mu) = false;
bool exit_hook_registered SF_GUARDED_BY(env_mu) = false;

void exit_dump() {
  std::string dir;
  {
    LockGuard lock(env_mu);
    dir = env_state.out_dir;
  }
  if (!dir.empty()) write_reports(dir);
}

void load_env_locked() SF_REQUIRES(env_mu) {
  env_state.metrics = env_flag("SF_METRICS");
  env_state.trace = env_flag("SF_TRACE");
  const long cap = env_long("SF_TRACE_BUF", 8192);
  env_state.trace_cap = cap < 16 ? 16 : static_cast<int>(cap);
  env_state.out_dir = env_str("SF_TELEMETRY_OUT");
  env_loaded = true;
  if (!env_state.out_dir.empty() && !exit_hook_registered) {
    exit_hook_registered = true;
    std::atexit(exit_dump);
  }
}

EnvState env() {
  LockGuard lock(env_mu);
  if (!env_loaded) load_env_locked();
  return env_state;
}

TraceRing* my_ring() {
  thread_local std::shared_ptr<TraceRing> ring = [] {
    auto r = std::make_shared<TraceRing>();
    r->tid = my_tid();
    {
      // Uncontended (the ring is not shared yet); taken for the
      // thread-safety analysis, which checks guarded members at every
      // access, visibility notwithstanding.
      LockGuard init(r->mu);
      r->slots.resize(static_cast<std::size_t>(trace_capacity()));
    }
    Registry& reg = registry();
    LockGuard lock(reg.mu);
    reg.rings.push_back(r);
    return r;
  }();
  return ring.get();
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

const std::string& run_stamp() {
  // Same format as bench_util's run stamp so telemetry CSVs join the
  // bench run family and plot_figures.py's stamp regex matches.
  // Leaked (like the registry): when write_reports() runs mid-process the
  // stamp is constructed after the atexit dump hook was registered, so a
  // destructible static would be torn down before exit_dump() reads it.
  static const std::string* stamp = new std::string([] {
    char buf[48];
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    localtime_r(&now, &tm);
    const std::size_t n = std::strftime(buf, sizeof(buf), "%Y%m%d-%H%M%S", &tm);
    std::snprintf(buf + n, sizeof(buf) - n, "-p%ld",
                  static_cast<long>(getpid()));
    return std::string(buf);
  }());
  return *stamp;
}

}  // namespace

bool metrics_enabled() { return env().metrics; }
bool trace_enabled() { return env().trace; }
int trace_capacity() { return env().trace_cap; }

void refresh_env() {
  LockGuard lock(env_mu);
  load_env_locked();
}

// ---------------------------------------------------------------------------
// Counters / histograms / samples
// ---------------------------------------------------------------------------

void Counter::add(std::int64_t n) const {
  if (cells_ == nullptr) return;
  // relaxed: hot-path tally. Each shard is an independent monotone sum
  // read only by snapshot()'s statistical aggregation; the increment
  // carries no happens-before obligation, so the RMW's atomicity is all
  // that is required.
  cells_->cells[my_shard()].v.fetch_add(n, std::memory_order_relaxed);
}

Counter counter(const std::string& name) {
  if (!metrics_enabled()) return Counter();
  Registry& reg = registry();
  LockGuard lock(reg.mu);
  auto& slot = reg.counters[name];
  if (!slot) slot = std::make_unique<detail::CounterCells>();
  return Counter(slot.get());
}

int histogram_bucket(std::int64_t v) {
  if (v <= 0) return 0;
  return 64 - __builtin_clzll(static_cast<unsigned long long>(v));
}

std::int64_t histogram_bucket_lo(int b) {
  if (b <= 0) return 0;
  if (b >= kHistogramBuckets) return std::numeric_limits<std::int64_t>::max();
  return static_cast<std::int64_t>(1) << (b - 1);
}

void Histogram::record(std::int64_t v) const {
  if (cells_ == nullptr) return;
  detail::HistogramCells::Shard& s = cells_->shards[my_shard()];
  // relaxed: hot-path tallies, as Counter::add. The three cells of one
  // record() are not applied atomically as a group; aggregate() documents
  // the resulting snapshot skew as acceptable.
  s.buckets[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
}

Histogram histogram(const std::string& name) {
  if (!metrics_enabled()) return Histogram();
  Registry& reg = registry();
  LockGuard lock(reg.mu);
  auto& slot = reg.histograms[name];
  if (!slot) slot = std::make_unique<detail::HistogramCells>();
  return Histogram(slot.get());
}

void SampleLog::append(const std::vector<std::string>& row) const {
  if (table_ == nullptr) return;
  LockGuard lock(table_->mu);
  if (row.size() != table_->columns.size()) return;
  table_->rows.push_back(row);
}

SampleLog samples(const std::string& name,
                  const std::vector<std::string>& columns) {
  if (!metrics_enabled()) return SampleLog();
  Registry& reg = registry();
  LockGuard lock(reg.mu);
  auto& slot = reg.samples[name];
  if (!slot) {
    slot = std::make_unique<detail::SampleTable>();
    // Uncontended (the table is not yet visible outside the registry
    // lock); taken for the thread-safety analysis.
    LockGuard init(slot->mu);
    slot->columns = columns;
  }
  return SampleLog(slot.get());
}

// ---------------------------------------------------------------------------
// Trace journal
// ---------------------------------------------------------------------------

std::int64_t now_ns() {
  static const std::chrono::steady_clock::time_point base =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - base)
      .count();
}

namespace detail {

void record_span(const char* name, std::int64_t t0_ns, std::int64_t t1_ns) {
  TraceRing* r = my_ring();
  LockGuard lock(r->mu);
  r->slots[r->head] = TraceEvent{name, t0_ns, t1_ns - t0_ns, r->tid};
  r->head = (r->head + 1) % r->slots.size();
  ++r->total;
}

}  // namespace detail

std::vector<TraceEvent> trace_events() {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    Registry& reg = registry();
    LockGuard lock(reg.mu);
    rings = reg.rings;
  }
  std::vector<TraceEvent> out;
  for (const auto& r : rings) {
    LockGuard lock(r->mu);
    const std::size_t cap = r->slots.size();
    const std::size_t n = r->total < cap ? static_cast<std::size_t>(r->total)
                                         : cap;
    // Oldest surviving event first: when wrapped, it's at head.
    const std::size_t start = r->total < cap ? 0 : r->head;
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(r->slots[(start + i) % cap]);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.t0_ns < b.t0_ns;
            });
  return out;
}

std::string chrome_trace_json() {
  const std::vector<TraceEvent> events = trace_events();
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": \"" << e.name << "\", \"ph\": \"X\", \"pid\": 1"
       << ", \"tid\": " << e.tid << ", \"ts\": " << e.t0_ns / 1000 << "."
       << e.t0_ns % 1000 << ", \"dur\": " << e.dur_ns / 1000 << "."
       << e.dur_ns % 1000 << "}";
  }
  os << "\n]\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Snapshot + exporters
// ---------------------------------------------------------------------------

double HistogramSample::mean() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

double HistogramSample::percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  const double rank = p / 100.0 * static_cast<double>(count);
  std::int64_t seen = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    const std::int64_t in_bucket = buckets[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      const double lo = static_cast<double>(histogram_bucket_lo(b));
      const double hi =
          b == 0 ? 1.0 : static_cast<double>(histogram_bucket_lo(b + 1));
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * (frac < 0.0 ? 0.0 : frac > 1.0 ? 1.0 : frac);
    }
    seen += in_bucket;
  }
  return static_cast<double>(histogram_bucket_lo(kHistogramBuckets - 1));
}

std::int64_t Snapshot::counter_value(const std::string& name) const {
  for (const CounterSample& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

const HistogramSample* Snapshot::find_histogram(const std::string& name) const {
  for (const HistogramSample& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

Snapshot snapshot() {
  Snapshot out;
  Registry& reg = registry();
  LockGuard lock(reg.mu);
  for (const auto& [name, cells] : reg.counters)
    out.counters.push_back(CounterSample{name, cells->sum()});
  for (const auto& [name, cells] : reg.histograms)
    out.histograms.push_back(cells->aggregate(name));
  for (const auto& [name, table] : reg.samples) {
    LockGuard tlock(table->mu);
    out.samples.push_back(SampleTableDump{name, table->columns, table->rows});
  }
  return out;
}

std::string text_dump() {
  const Snapshot s = snapshot();
  std::ostringstream os;
  os << "# sf::telemetry (metrics " << (metrics_enabled() ? "on" : "off")
     << ", trace " << (trace_enabled() ? "on" : "off") << ")\n";
  os << "counters " << s.counters.size() << "\n";
  for (const CounterSample& c : s.counters)
    os << "  " << c.name << " " << c.value << "\n";
  os << "histograms " << s.histograms.size() << "\n";
  char buf[160];
  for (const HistogramSample& h : s.histograms) {
    std::snprintf(buf, sizeof(buf),
                  "  %s count=%lld sum=%lld mean=%.1f p50=%.0f p99=%.0f\n",
                  h.name.c_str(), static_cast<long long>(h.count),
                  static_cast<long long>(h.sum), h.mean(), h.percentile(50),
                  h.percentile(99));
    os << buf;
  }
  os << "samples " << s.samples.size() << "\n";
  for (const SampleTableDump& t : s.samples)
    os << "  " << t.name << " rows=" << t.rows.size() << "\n";
  return os.str();
}

void write_reports(const std::string& dir) {
  std::string d = dir.empty() ? "." : dir;
  if (d != ".") {
    std::error_code ec;
    std::filesystem::create_directories(d, ec);
    if (ec) d = ".";
  }
  const Snapshot s = snapshot();
  {
    std::ofstream f(d + "/telemetry_counters-" + run_stamp() + ".csv");
    f << "counter,value\n";
    for (const CounterSample& c : s.counters)
      f << csv_escape(c.name) << "," << c.value << "\n";
  }
  {
    std::ofstream f(d + "/telemetry_hist-" + run_stamp() + ".csv");
    f << "metric,bucket_lo,bucket_hi,count\n";
    for (const HistogramSample& h : s.histograms)
      for (int b = 0; b < kHistogramBuckets; ++b) {
        const std::int64_t n = h.buckets[static_cast<std::size_t>(b)];
        if (n == 0) continue;
        f << csv_escape(h.name) << "," << histogram_bucket_lo(b) << ","
          << (b == 0 ? 1 : histogram_bucket_lo(b + 1)) << "," << n << "\n";
      }
  }
  for (const SampleTableDump& t : s.samples) {
    std::ofstream f(d + "/telemetry_samples_" + t.name + "-" + run_stamp() +
                    ".csv");
    for (std::size_t i = 0; i < t.columns.size(); ++i)
      f << (i ? "," : "") << csv_escape(t.columns[i]);
    f << "\n";
    for (const auto& row : t.rows) {
      for (std::size_t i = 0; i < row.size(); ++i)
        f << (i ? "," : "") << csv_escape(row[i]);
      f << "\n";
    }
  }
  if (!trace_events().empty()) {
    std::ofstream f(d + "/trace-" + run_stamp() + ".json");
    f << chrome_trace_json();
  }
}

}  // namespace sf::telemetry
