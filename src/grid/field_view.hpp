/// \file
/// \brief Non-owning, zero-copy field views — the executor-facing grid type.
///
/// A FieldView is a pointer + extents + stride + halo (plus a Layout tag)
/// over memory the *caller* owns. Every executor in the library — the
/// registry kernels, the split-tiling engine, the naive reference — runs on
/// views, so a PreparedStencil (core/engine.hpp) can execute directly on
/// user buffers without the library ever allocating or copying field data.
/// Grid{1,2,3}D (grid/grid.hpp) remain the library's allocators and convert
/// to views implicitly.
///
/// Views use *shallow const* semantics, like std::span: a `const FieldView&`
/// still hands out writable element access, because the view is a borrowed
/// reference to the caller's mutable buffer, not an owner. Executors take
/// `const FieldView&` parameters and write results through them.
///
/// Memory contract (what Grid guarantees and what raw caller buffers must
/// match — PreparedStencil::run validates it):
///  * interior element (0[,0,0]) is 64-byte aligned;
///  * the row stride is a multiple of 8 doubles, so the first interior
///    element of every row/plane is 64-byte aligned too;
///  * `halo` cells are addressable on each side of every dimension and hold
///    Dirichlet boundary values that executors read but never write.
#pragma once

#include <cstddef>

namespace sf {

/// Storage order of the elements a view covers. Executors transform
/// Natural input into their working layout and back on every call; views
/// tagged with a kernel's *preferred* layout (KernelInfo::preferred_layout,
/// Transposed for the register-transpose methods) execute resident — the
/// per-call involution is skipped, which is how streaming callers amortize
/// the transform across an advance() stream (core/engine.hpp
/// to_resident_layout). The tag is a caller promise about the bytes; a
/// mismatched tag is rejected by PreparedStencil::run validation, never
/// silently misinterpreted.
enum class Layout {
  Natural,     ///< Plain row-major order (what Grid allocates).
  Transposed,  ///< Register-transpose layout (layout/transpose_layout.hpp).
  DLT,         ///< Dimension-lifting transpose (layout/dlt_layout.hpp).
};

/// Display name of a Layout ("natural", "transposed", "dlt").
inline const char* layout_name(Layout l) {
  switch (l) {
    case Layout::Natural: return "natural";
    case Layout::Transposed: return "transposed";
    case Layout::DLT: return "dlt";
  }
  return "?";
}

/// Non-owning view of a 1-D halo field: n interior elements with `halo`
/// addressable cells on each side.
class FieldView1D {
 public:
  /// An empty view (valid() is false).
  FieldView1D() = default;
  /// Wraps caller memory; `interior` points at logical element 0 (halo at
  /// negative indices).
  FieldView1D(double* interior, int n, int halo,
              Layout layout = Layout::Natural, int layout_width = 0)
      : p_(interior), n_(n), halo_(halo), layout_(layout),
        layout_w_(layout_width) {}

  /// Interior extent.
  int n() const { return n_; }
  /// Addressable halo cells on each side.
  int halo() const { return halo_; }
  /// Storage-order tag of the wrapped memory.
  Layout layout() const { return layout_; }
  /// SIMD width (in doubles) the non-natural layout was built with — the
  /// transforms permute differently per width, so resident validation
  /// matches this against the prepared kernel's width. 0 on natural views
  /// (and on tags that never recorded one, which resident validation
  /// rejects: such bytes cannot be verified).
  int layout_width() const { return layout_w_; }
  /// True when the view wraps memory (default-constructed views do not).
  bool valid() const { return p_ != nullptr; }

  /// Pointer to interior element 0; valid indices are [-halo, n+halo).
  double* data() const { return p_; }
  /// Element access by logical index (halo at negative indices).
  double& at(int i) const { return p_[i]; }

  /// The same view re-tagged with `l` (no data movement). Non-natural tags
  /// should record the SIMD width the transform used (to_resident_layout
  /// does this automatically).
  FieldView1D with_layout(Layout l, int layout_width = 0) const {
    return FieldView1D(p_, n_, halo_, l, layout_width);
  }

 private:
  double* p_ = nullptr;
  int n_ = 0, halo_ = 0;
  Layout layout_ = Layout::Natural;
  int layout_w_ = 0;
};

/// Non-owning view of a 2-D halo field: ny x nx interior, rows `stride`
/// doubles apart.
class FieldView2D {
 public:
  /// An empty view (valid() is false).
  FieldView2D() = default;
  /// Wraps caller memory; `interior` points at logical element (0,0).
  FieldView2D(double* interior, int ny, int nx, int stride, int halo,
              Layout layout = Layout::Natural, int layout_width = 0)
      : p_(interior), ny_(ny), nx_(nx), stride_(stride), halo_(halo),
        layout_(layout), layout_w_(layout_width) {}

  /// Interior row count.
  int ny() const { return ny_; }
  /// Interior row extent.
  int nx() const { return nx_; }
  /// Distance between consecutive rows, in doubles.
  int stride() const { return stride_; }
  /// Addressable halo cells on each side of each dimension.
  int halo() const { return halo_; }
  /// Storage-order tag of the wrapped memory.
  Layout layout() const { return layout_; }
  /// SIMD width of the non-natural layout; see FieldView1D::layout_width().
  int layout_width() const { return layout_w_; }
  /// True when the view wraps memory (default-constructed views do not).
  bool valid() const { return p_ != nullptr; }

  /// Pointer to interior element (0,0); valid (y,x) with y in
  /// [-halo, ny+halo) and x in [-halo, nx+halo).
  double* data() const { return p_; }
  /// Pointer to interior element (y, 0); y may range over the halo.
  double* row(int y) const {
    return p_ + static_cast<std::ptrdiff_t>(y) * stride_;
  }
  /// Element access by logical index (halo at negative indices).
  double& at(int y, int x) const { return row(y)[x]; }

  /// The same view re-tagged with `l` (no data movement); see
  /// FieldView1D::with_layout().
  FieldView2D with_layout(Layout l, int layout_width = 0) const {
    return FieldView2D(p_, ny_, nx_, stride_, halo_, l, layout_width);
  }

 private:
  double* p_ = nullptr;
  int ny_ = 0, nx_ = 0, stride_ = 0, halo_ = 0;
  Layout layout_ = Layout::Natural;
  int layout_w_ = 0;
};

/// Non-owning view of a 3-D halo field: nz x ny x nx interior, rows
/// `stride` doubles apart, planes `plane_stride` doubles apart.
class FieldView3D {
 public:
  /// An empty view (valid() is false).
  FieldView3D() = default;
  /// Wraps caller memory; `interior` points at logical element (0,0,0).
  FieldView3D(double* interior, int nz, int ny, int nx, int stride,
              std::size_t plane_stride, int halo,
              Layout layout = Layout::Natural, int layout_width = 0)
      : p_(interior), nz_(nz), ny_(ny), nx_(nx), stride_(stride),
        plane_(plane_stride), halo_(halo), layout_(layout),
        layout_w_(layout_width) {}

  /// Interior plane count.
  int nz() const { return nz_; }
  /// Interior row count per plane.
  int ny() const { return ny_; }
  /// Interior row extent.
  int nx() const { return nx_; }
  /// Distance between consecutive rows, in doubles.
  int stride() const { return stride_; }
  /// Distance between consecutive planes, in doubles.
  std::size_t plane_stride() const { return plane_; }
  /// Addressable halo cells on each side of each dimension.
  int halo() const { return halo_; }
  /// Storage-order tag of the wrapped memory.
  Layout layout() const { return layout_; }
  /// SIMD width of the non-natural layout; see FieldView1D::layout_width().
  int layout_width() const { return layout_w_; }
  /// True when the view wraps memory (default-constructed views do not).
  bool valid() const { return p_ != nullptr; }

  /// Pointer to interior element (0,0,0).
  double* data() const { return p_; }
  /// Pointer to interior element (z, y, 0); z/y may range over the halo.
  double* row(int z, int y) const {
    return p_ + static_cast<std::ptrdiff_t>(z) *
                    static_cast<std::ptrdiff_t>(plane_) +
           static_cast<std::ptrdiff_t>(y) * stride_;
  }
  /// Element access by logical index (halo at negative indices).
  double& at(int z, int y, int x) const { return row(z, y)[x]; }

  /// The same view re-tagged with `l` (no data movement); see
  /// FieldView1D::with_layout().
  FieldView3D with_layout(Layout l, int layout_width = 0) const {
    return FieldView3D(p_, nz_, ny_, nx_, stride_, plane_, halo_, l,
                       layout_width);
  }

 private:
  double* p_ = nullptr;
  int nz_ = 0, ny_ = 0, nx_ = 0, stride_ = 0;
  std::size_t plane_ = 0;
  int halo_ = 0;
  Layout layout_ = Layout::Natural;
  int layout_w_ = 0;
};

}  // namespace sf
