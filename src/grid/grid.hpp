// Halo grids over aligned storage.
//
// Semantics shared by every executor in this library: the *interior* is
// updated each time step, the *halo* (width chosen at construction) holds
// Dirichlet boundary values that are written once at initialization and never
// touched again. All optimized kernels must produce exactly the values the
// naive reference produces under these semantics.
//
// Layout guarantees:
//  * element (0[,0,0]) of the interior is 64-byte aligned,
//  * row stride is a multiple of 8 doubles, so the first interior element of
//    *every* row/plane is 64-byte aligned too.
#pragma once

#include <cstdint>
#include <random>

#include "common/aligned_buffer.hpp"
#include "grid/field_view.hpp"

namespace sf {

class Grid1D {
 public:
  /// `zero_init = false` defers the page-placing first write to the caller
  /// (see AlignedBuffer; used with PreparedStencil::first_touch so a
  /// pinned worker pool places each worker's tiles on its NUMA node).
  Grid1D(int n, int halo, bool zero_init = true)
      : n_(n), halo_(halo), off_(static_cast<int>(round_up(halo, 8))),
        buf_(off_ + round_up(n + halo, 8), zero_init) {}

  int n() const { return n_; }
  int halo() const { return halo_; }

  /// Pointer to interior element 0; valid indices are [-halo, n+halo).
  double* data() { return buf_.data() + off_; }
  const double* data() const { return buf_.data() + off_; }

  double& at(int i) { return data()[i]; }
  double at(int i) const { return data()[i]; }

  /// Zero-copy view of this grid's storage (Layout::Natural). Views have
  /// shallow-const semantics (see grid/field_view.hpp), so the const
  /// overload still yields a writable view — it exists so borrowed grids
  /// can be passed wherever executors expect views.
  FieldView1D view() { return FieldView1D(data(), n_, halo_); }
  FieldView1D view() const {
    return FieldView1D(const_cast<Grid1D*>(this)->data(), n_, halo_);
  }
  operator FieldView1D() { return view(); }
  operator FieldView1D() const { return view(); }

 private:
  int n_, halo_, off_;
  AlignedBuffer buf_;
};

class Grid2D {
 public:
  /// `zero_init` as in Grid1D.
  Grid2D(int ny, int nx, int halo, bool zero_init = true)
      : ny_(ny), nx_(nx), halo_(halo),
        xoff_(static_cast<int>(round_up(halo, 8))),
        stride_(static_cast<int>(round_up(xoff_ + nx + halo, 8))),
        buf_(static_cast<std::size_t>(stride_) * (ny + 2 * halo),
             zero_init) {}

  int ny() const { return ny_; }
  int nx() const { return nx_; }
  int halo() const { return halo_; }
  int stride() const { return stride_; }

  /// Pointer to interior element (0,0); valid (y,x) with y in [-halo,ny+halo)
  /// and x in [-halo, nx+halo).
  double* data() { return buf_.data() + static_cast<std::size_t>(halo_) * stride_ + xoff_; }
  const double* data() const {
    return buf_.data() + static_cast<std::size_t>(halo_) * stride_ + xoff_;
  }

  double* row(int y) { return data() + static_cast<std::ptrdiff_t>(y) * stride_; }
  const double* row(int y) const {
    return data() + static_cast<std::ptrdiff_t>(y) * stride_;
  }

  double& at(int y, int x) { return row(y)[x]; }
  double at(int y, int x) const { return row(y)[x]; }

  /// Zero-copy view of this grid's storage; see Grid1D::view().
  FieldView2D view() { return FieldView2D(data(), ny_, nx_, stride_, halo_); }
  FieldView2D view() const {
    return FieldView2D(const_cast<Grid2D*>(this)->data(), ny_, nx_, stride_,
                       halo_);
  }
  operator FieldView2D() { return view(); }
  operator FieldView2D() const { return view(); }

 private:
  int ny_, nx_, halo_, xoff_, stride_;
  AlignedBuffer buf_;
};

class Grid3D {
 public:
  /// `zero_init` as in Grid1D.
  Grid3D(int nz, int ny, int nx, int halo, bool zero_init = true)
      : nz_(nz), ny_(ny), nx_(nx), halo_(halo),
        xoff_(static_cast<int>(round_up(halo, 8))),
        stride_(static_cast<int>(round_up(xoff_ + nx + halo, 8))),
        plane_(static_cast<std::size_t>(stride_) * (ny + 2 * halo)),
        buf_(plane_ * (nz + 2 * halo), zero_init) {}

  int nz() const { return nz_; }
  int ny() const { return ny_; }
  int nx() const { return nx_; }
  int halo() const { return halo_; }
  int stride() const { return stride_; }
  std::size_t plane_stride() const { return plane_; }

  double* data() {
    return buf_.data() + static_cast<std::size_t>(halo_) * plane_ +
           static_cast<std::size_t>(halo_) * stride_ + xoff_;
  }
  const double* data() const {
    return const_cast<Grid3D*>(this)->data();
  }

  double* row(int z, int y) {
    return data() + static_cast<std::ptrdiff_t>(z) * static_cast<std::ptrdiff_t>(plane_) +
           static_cast<std::ptrdiff_t>(y) * stride_;
  }
  const double* row(int z, int y) const {
    return const_cast<Grid3D*>(this)->row(z, y);
  }

  double& at(int z, int y, int x) { return row(z, y)[x]; }
  double at(int z, int y, int x) const { return row(z, y)[x]; }

  /// Zero-copy view of this grid's storage; see Grid1D::view().
  FieldView3D view() {
    return FieldView3D(data(), nz_, ny_, nx_, stride_, plane_, halo_);
  }
  FieldView3D view() const {
    return FieldView3D(const_cast<Grid3D*>(this)->data(), nz_, ny_, nx_,
                       stride_, plane_, halo_);
  }
  operator FieldView3D() { return view(); }
  operator FieldView3D() const { return view(); }

 private:
  int nz_, ny_, nx_, halo_, xoff_, stride_;
  std::size_t plane_;
  AlignedBuffer buf_;
};

}  // namespace sf
