// Initialization and comparison helpers for halo fields. All helpers take
// zero-copy FieldViews (grid/field_view.hpp); Grids convert implicitly.
#pragma once

#include <algorithm>
#include <cmath>
#include <random>

#include "grid/grid.hpp"

namespace sf {

/// Fills interior + halo with reproducible pseudo-random values in [-1, 1].
inline void fill_random(const FieldView1D& g, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (int i = -g.halo(); i < g.n() + g.halo(); ++i) g.at(i) = d(rng);
}

inline void fill_random(const FieldView2D& g, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (int y = -g.halo(); y < g.ny() + g.halo(); ++y)
    for (int x = -g.halo(); x < g.nx() + g.halo(); ++x) g.at(y, x) = d(rng);
}

inline void fill_random(const FieldView3D& g, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (int z = -g.halo(); z < g.nz() + g.halo(); ++z)
    for (int y = -g.halo(); y < g.ny() + g.halo(); ++y)
      for (int x = -g.halo(); x < g.nx() + g.halo(); ++x)
        g.at(z, y, x) = d(rng);
}

/// Copies interior and halo.
inline void copy(const FieldView1D& src, const FieldView1D& dst) {
  for (int i = -src.halo(); i < src.n() + src.halo(); ++i) dst.at(i) = src.at(i);
}

inline void copy(const FieldView2D& src, const FieldView2D& dst) {
  for (int y = -src.halo(); y < src.ny() + src.halo(); ++y)
    for (int x = -src.halo(); x < src.nx() + src.halo(); ++x)
      dst.at(y, x) = src.at(y, x);
}

inline void copy(const FieldView3D& src, const FieldView3D& dst) {
  for (int z = -src.halo(); z < src.nz() + src.halo(); ++z)
    for (int y = -src.halo(); y < src.ny() + src.halo(); ++y)
      for (int x = -src.halo(); x < src.nx() + src.halo(); ++x)
        dst.at(z, y, x) = src.at(z, y, x);
}

/// Max |a-b| over the interior.
inline double max_abs_diff(const FieldView1D& a, const FieldView1D& b) {
  double m = 0;
  for (int i = 0; i < a.n(); ++i) m = std::max(m, std::fabs(a.at(i) - b.at(i)));
  return m;
}

inline double max_abs_diff(const FieldView2D& a, const FieldView2D& b) {
  double m = 0;
  for (int y = 0; y < a.ny(); ++y)
    for (int x = 0; x < a.nx(); ++x)
      m = std::max(m, std::fabs(a.at(y, x) - b.at(y, x)));
  return m;
}

inline double max_abs_diff(const FieldView3D& a, const FieldView3D& b) {
  double m = 0;
  for (int z = 0; z < a.nz(); ++z)
    for (int y = 0; y < a.ny(); ++y)
      for (int x = 0; x < a.nx(); ++x)
        m = std::max(m, std::fabs(a.at(z, y, x) - b.at(z, y, x)));
  return m;
}

/// Max |v| over the interior (for relative tolerances).
inline double max_abs(const FieldView1D& a) {
  double m = 0;
  for (int i = 0; i < a.n(); ++i) m = std::max(m, std::fabs(a.at(i)));
  return m;
}

inline double max_abs(const FieldView2D& a) {
  double m = 0;
  for (int y = 0; y < a.ny(); ++y)
    for (int x = 0; x < a.nx(); ++x) m = std::max(m, std::fabs(a.at(y, x)));
  return m;
}

inline double max_abs(const FieldView3D& a) {
  double m = 0;
  for (int z = 0; z < a.nz(); ++z)
    for (int y = 0; y < a.ny(); ++y)
      for (int x = 0; x < a.nx(); ++x) m = std::max(m, std::fabs(a.at(z, y, x)));
  return m;
}

}  // namespace sf
