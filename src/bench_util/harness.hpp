// Shared scaffolding for the figure/table reproduction harnesses.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "common/table.hpp"
#include "core/solver.hpp"

namespace sf::bench {

/// Median-of-reps measurement of one configuration (reps from SF_BENCH_REPS,
/// default 5 fast / 1 full).
RunResult measure(Solver& solver);

/// The method axis the figures sweep: one kernel per method at the widest
/// CPU-supported ISA, enumerated from the registry (registering a new
/// method grows every harness automatically). Pass skip_naive for the
/// single-thread figures, which exclude the scalar baseline.
std::vector<const KernelInfo*> method_axis(int dims, bool skip_naive = false);

/// The named competitor systems of the multicore figures (Fig. 9/10,
/// Table 3): paper label -> registry kernel key + ISA. Shared so the three
/// harnesses cannot drift apart.
struct Competitor {
  const char* label;
  const char* kernel;  // registry string key
  Isa isa;
};
const std::vector<Competitor>& paper_competitors();

/// Builds the Solver for one competitor row: preset + kernel + ISA with the
/// requested tiling policy (default Tiling::On — the paper's Fig. 9/10
/// configuration; tile/time_block auto-negotiated, or tuned under SF_TUNE)
/// and paper-size extents when `full`. Pass Tiling::Auto to exercise the
/// planner's cost-model decision instead of pinning the tiled path (the
/// fig9 "auto" column). Chain `.threads(c)` for the core-scaling sweeps.
Solver competitor_solver(const Competitor& m, const StencilSpec& spec,
                         bool full, Tiling tiling = Tiling::On);

/// Applies the paper-size (SF_BENCH_FULL=1) extents of `spec` to `s`.
void apply_bench_size(Solver& s, const StencilSpec& spec, bool full);

/// Storage-level classification by working-set bytes (two grids), using the
/// cache sizes of the machine the paper targets (32 KB / 1 MB / 24.75 MB);
/// these labels organize Fig. 8 and Table 2 rows.
const char* storage_level(double working_set_bytes);

/// 1-D problem sizes sweeping L1 -> memory (grows by ~4x per point).
std::vector<long> size_sweep_1d(bool full);

/// Prints a table and also writes it as CSV for plotting:
/// $SF_BENCH_OUT/<name>-<run-stamp>.csv (stamp = time + PID; default
/// directory: the working directory; the stamp is fixed per process so one
/// sweep's tables form one family and repeated sweeps never overwrite
/// each other).
void emit(const Table& t, const std::string& name);

/// Machine-readable bench summary: writes $SF_BENCH_OUT/BENCH_<name>.json
/// holding a flat metric->value map plus the run stamp. Unlike the
/// stamped CSVs this path is *fixed*, so successive runs overwrite it and
/// the latest numbers are always at a known location — the per-PR perf
/// trajectory scripts/bench_summary.py merges across checkouts. Metric
/// keys are dotted paths (e.g. "batched.c8.gflops"); values must be
/// finite doubles.
void emit_bench_json(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& metrics);

}  // namespace sf::bench
