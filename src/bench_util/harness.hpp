// Shared scaffolding for the figure/table reproduction harnesses.
#pragma once

#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/table.hpp"
#include "core/problem.hpp"

namespace sf::bench {

/// Median-of-reps measurement of one configuration (reps from SF_BENCH_REPS,
/// default 3 fast / 1 full).
RunResult measure(const ProblemConfig& cfg);

/// Storage-level classification by working-set bytes (two grids), using the
/// cache sizes of the machine the paper targets (32 KB / 1 MB / 24.75 MB);
/// these labels organize Fig. 8 and Table 2 rows.
const char* storage_level(double working_set_bytes);

/// 1-D problem sizes sweeping L1 -> memory (grows by ~4x per point).
std::vector<long> size_sweep_1d(bool full);

/// Prints a table and also writes it as CSV next to the binary
/// (<name>.csv) for plotting.
void emit(const Table& t, const std::string& name);

}  // namespace sf::bench
