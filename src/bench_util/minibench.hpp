// Tiny built-in fallback for the Google Benchmark subset the ablation
// micro-benchmarks use, so they build and run in environments without the
// library (the CMake build defines SF_HAVE_GOOGLE_BENCHMARK and links the
// real thing when it is found; this header is only included otherwise).
//
// Implements just enough of the API surface: benchmark::State as a
// range-for iteration driver with SkipWithError, DoNotOptimize, the
// BENCHMARK registration macro, and BENCHMARK_MAIN. Timing is adaptive
// (batches double until the measurement exceeds a floor) and reported as
// ns/op — coarser than the real library's statistics, but enough to rank
// the §2.3 transpose schemes on any machine.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace benchmark {

class State {
 public:
  explicit State(std::int64_t iterations) : limit_(iterations) {}

  /// Range-for support: `for (auto _ : state)` runs the timed loop body
  /// `iterations` times (or zero times after SkipWithError).
  struct iterator {
    State* s;
    bool operator!=(const iterator&) const { return s->keep_running(); }
    void operator++() {}
    int operator*() const { return 0; }
  };
  iterator begin() { return iterator{this}; }
  iterator end() { return iterator{this}; }

  /// Marks the benchmark skipped (e.g. missing ISA); the loop exits and
  /// the harness reports the message instead of a time.
  void SkipWithError(const char* msg) {
    skipped_ = true;
    error_ = msg;
  }

  bool skipped() const { return skipped_; }
  const std::string& error() const { return error_; }
  /// Loop-body executions so far (count_ overshoots by one on the final
  /// failing keep_running() test).
  std::int64_t iterations() const { return count_ < limit_ ? count_ : limit_; }

 private:
  bool keep_running() {
    if (skipped_) return false;
    return count_++ < limit_;
  }

  std::int64_t count_ = 0;
  std::int64_t limit_ = 0;
  bool skipped_ = false;
  std::string error_;
};

/// Compiler sink: forces `value` to be materialized.
template <class T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

namespace detail {

struct Case {
  const char* name;
  void (*fn)(State&);
};

inline std::vector<Case>& cases() {
  static std::vector<Case> v;
  return v;
}

inline int register_case(const char* name, void (*fn)(State&)) {
  cases().push_back({name, fn});
  return 0;
}

inline int run_all() {
  using clock = std::chrono::steady_clock;
  std::printf("%-36s %15s %12s\n", "Benchmark", "Time", "Iterations");
  std::printf("%s\n", std::string(65, '-').c_str());
  for (const Case& c : cases()) {
    // Warmup + adaptive batching: double the batch until it runs long
    // enough (>= 10 ms) for the per-op time to be meaningful.
    std::int64_t iters = 64;
    double sec = 0;
    bool skipped = false;
    std::string err;
    for (;;) {
      State st(iters);
      const auto t0 = clock::now();
      c.fn(st);
      const auto t1 = clock::now();
      if (st.skipped()) {
        skipped = true;
        err = st.error();
        break;
      }
      sec = std::chrono::duration<double>(t1 - t0).count();
      if (sec >= 0.01 || iters >= (1LL << 30)) break;
      iters *= 2;
    }
    if (skipped)
      std::printf("%-36s %15s %12s  (%s)\n", c.name, "SKIPPED", "-",
                  err.c_str());
    else
      std::printf("%-36s %12.2f ns %12lld\n", c.name,
                  sec / static_cast<double>(iters) * 1e9,
                  static_cast<long long>(iters));
  }
  return 0;
}

}  // namespace detail

}  // namespace benchmark

#define BENCHMARK(fn)                                     \
  static const int sf_minibench_reg_##fn =                \
      ::benchmark::detail::register_case(#fn, fn)

#define BENCHMARK_MAIN()                                              \
  int main() {                                                        \
    std::printf("(built-in minibench fallback; install Google "       \
                "Benchmark for full statistics)\n");                  \
    return ::benchmark::detail::run_all();                            \
  }
