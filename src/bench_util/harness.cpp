#include "bench_util/harness.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>

namespace sf::bench {

RunResult measure(Solver& solver) {
  const long reps = env_long("SF_BENCH_REPS", bench_full() ? 1 : 5);
  std::vector<RunResult> rs;
  for (long i = 0; i < std::max(1L, reps); ++i) rs.push_back(solver.run());
  std::sort(rs.begin(), rs.end(),
            [](const RunResult& a, const RunResult& b) { return a.seconds < b.seconds; });
  return rs[rs.size() / 2];
}

std::vector<const KernelInfo*> method_axis(int dims, bool skip_naive) {
  // available_kernels() is sorted by (method, isa); the widest supported
  // ISA of each method is therefore the last entry of its method group.
  std::vector<const KernelInfo*> axis;
  for (const KernelInfo* k : available_kernels(dims, Isa::Auto)) {
    if (skip_naive && k->method == Method::Naive) continue;
    if (!axis.empty() && axis.back()->method == k->method)
      axis.back() = k;
    else
      axis.push_back(k);
  }
  return axis;
}

const std::vector<Competitor>& paper_competitors() {
  static const std::vector<Competitor> v = {
      {"sdsl", "dlt", Isa::Avx2},
      {"tessellation", "naive", Isa::Auto},
      {"our", "ours", Isa::Avx2},
      {"our-2step", "ours-2step", Isa::Avx2},
      {"our-2step-avx512", "ours-2step", Isa::Avx512},
  };
  return v;
}

Solver competitor_solver(const Competitor& m, const StencilSpec& spec,
                         bool full, Tiling tiling) {
  Solver s = Solver::make(spec.id).method(m.kernel).isa(m.isa).tiling(tiling);
  apply_bench_size(s, spec, full);
  return s;
}

void apply_bench_size(Solver& s, const StencilSpec& spec, bool full) {
  if (!full) return;  // fast mode: keep the preset's small-size defaults
  s.size(spec.full_size[0], spec.dims >= 2 ? spec.full_size[1] : 0,
         spec.dims >= 3 ? spec.full_size[2] : 0);
  s.steps(static_cast<int>(spec.full_tsteps));
}

const char* storage_level(double ws) {
  if (ws <= 32.0 * 1024) return "L1";
  if (ws <= 1024.0 * 1024) return "L2";
  if (ws <= 24.75 * 1024 * 1024) return "L3";
  return "Mem";
}

std::vector<long> size_sweep_1d(bool full) {
  // Working set = 2 arrays of n doubles; levels per storage_level().
  if (full)
    return {1000,   2000,    8000,    30000,   60000,    250000,
            500000, 1000000, 1500000, 4000000, 10240000, 20000000};
  return {1000, 8000, 30000, 250000, 1000000, 4000000};
}

namespace {

// One stamp per process: every table of a sweep lands in the same run
// family, and repeated sweeps never overwrite each other (SF_BENCH_OUT +
// the suffix replace the old fixed-name convention). The PID disambiguates
// processes launched within the same second.
const std::string& run_stamp() {
  static const std::string stamp = [] {
    char buf[48];
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    localtime_r(&now, &tm);
    const std::size_t n = std::strftime(buf, sizeof(buf), "%Y%m%d-%H%M%S", &tm);
    std::snprintf(buf + n, sizeof(buf) - n, "-p%ld",
                  static_cast<long>(getpid()));
    return std::string(buf);
  }();
  return stamp;
}

}  // namespace

void emit_bench_json(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& metrics) {
  std::string dir = bench_out_dir();
  if (dir.empty()) {
    dir = ".";
  } else {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) dir = ".";
  }
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::ofstream f(path);
  f << "{\n  \"bench\": \"" << name << "\",\n  \"stamp\": \"" << run_stamp()
    << "\",\n  \"metrics\": {";
  char num[64];
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::snprintf(num, sizeof(num), "%.6g", metrics[i].second);
    f << (i ? "," : "") << "\n    \"" << metrics[i].first << "\": " << num;
  }
  f << "\n  }\n}\n";
  f.flush();
  if (f)
    std::cout << "(json summary written to " << path << ")\n";
  else
    std::cerr << "(failed to write " << path << ")\n";
}

void emit(const Table& t, const std::string& name) {
  std::cout << t.str() << std::flush;
  std::string dir = bench_out_dir();
  if (dir.empty()) {
    dir = ".";
  } else {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      std::cerr << "(SF_BENCH_OUT: cannot create '" << dir << "': "
                << ec.message() << "; writing to .)\n";
      dir = ".";
    }
  }
  const std::string path = dir + "/" + name + "-" + run_stamp() + ".csv";
  std::ofstream csv(path);
  csv << t.csv();
  csv.flush();
  if (csv)
    std::cout << "(csv written to " << path << ")\n\n";
  else
    std::cerr << "(failed to write " << path << ")\n\n";
}

}  // namespace sf::bench
