#include "bench_util/harness.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

namespace sf::bench {

RunResult measure(const ProblemConfig& cfg) {
  const long reps = env_long("SF_BENCH_REPS", bench_full() ? 1 : 5);
  std::vector<RunResult> rs;
  for (long i = 0; i < std::max(1L, reps); ++i) rs.push_back(run_problem(cfg));
  std::sort(rs.begin(), rs.end(),
            [](const RunResult& a, const RunResult& b) { return a.seconds < b.seconds; });
  return rs[rs.size() / 2];
}

const char* storage_level(double ws) {
  if (ws <= 32.0 * 1024) return "L1";
  if (ws <= 1024.0 * 1024) return "L2";
  if (ws <= 24.75 * 1024 * 1024) return "L3";
  return "Mem";
}

std::vector<long> size_sweep_1d(bool full) {
  // Working set = 2 arrays of n doubles; levels per storage_level().
  if (full)
    return {1000,   2000,    8000,    30000,   60000,    250000,
            500000, 1000000, 1500000, 4000000, 10240000, 20000000};
  return {1000, 8000, 30000, 250000, 1000000, 4000000};
}

void emit(const Table& t, const std::string& name) {
  std::cout << t.str() << std::flush;
  std::ofstream csv(name + ".csv");
  csv << t.csv();
  std::cout << "(csv written to ./" << name << ".csv)\n\n";
}

}  // namespace sf::bench
