// Plain-text table printer used by the figure/table benchmark harnesses to
// emit rows in the same shape as the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace sf {

/// Column-aligned ASCII table. Collect rows, then print once.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `prec` digits after the point.
  static std::string num(double v, int prec = 2);

  /// Renders the table to a string with column padding and a rule under the
  /// header.
  std::string str() const;

  /// Renders as CSV (for plotting scripts).
  std::string csv() const;

 private:
  std::vector<std::vector<std::string>> rows_;  // rows_[0] is the header
};

}  // namespace sf
