#include "common/cpu.hpp"

#include <omp.h>
#include <unistd.h>

#include <stdexcept>

#include "common/env.hpp"

namespace sf {

bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }

bool cpu_has_avx512() {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0;
}

Isa resolve_isa(Isa requested) {
  if (requested != Isa::Auto) return requested;
  if (cpu_has_avx512()) return Isa::Avx512;
  if (cpu_has_avx2()) return Isa::Avx2;
  return Isa::Scalar;
}

int isa_width(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return 1;
    case Isa::Avx2: return 4;
    case Isa::Avx512: return 8;
    case Isa::Auto: return isa_width(resolve_isa(isa));
  }
  throw std::logic_error("bad isa");
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Avx2: return "avx2";
    case Isa::Avx512: return "avx512";
    case Isa::Auto: return "auto";
  }
  return "?";
}

int hardware_threads() { return omp_get_max_threads(); }

long llc_bytes() {
  const long overridden = env_long("SF_LLC_BYTES", 0);
  if (overridden > 0) return overridden;
#ifdef _SC_LEVEL3_CACHE_SIZE
  const long l3 = sysconf(_SC_LEVEL3_CACHE_SIZE);
  if (l3 > 0) return l3;
#endif
#ifdef _SC_LEVEL2_CACHE_SIZE
  const long l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
  if (l2 > 0) return l2;
#endif
  return static_cast<long>(24.75 * 1024 * 1024);  // the paper machine's LLC
}

}  // namespace sf
