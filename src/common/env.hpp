/// \file
/// \brief Environment-variable knobs, in one place.
///
/// Every `SF_*` variable the library reads is declared here (docs/TUNING.md
/// documents them for users):
///
///  * `SF_BENCH_FULL=1`   — benches use the paper's Table-1 problem sizes
///    (slow, minutes per bench); default is a scaled-down sweep that
///    finishes fast.
///  * `SF_BENCH_REPS=n`   — override the bench measurement repetition count.
///  * `SF_BENCH_OUT=dir`  — directory the bench harnesses write their CSVs
///    into (created if missing; default: the working directory). Files are
///    suffixed with a per-run timestamp so repeated sweeps never overwrite
///    each other.
///  * `SF_TUNE=1`         — force the Solver's measure-once auto-tuner on
///    for every tiled run (equivalent to calling `Solver::tune(true)`).
///  * `SF_TUNE_CACHE=path` — persist tuned tile geometries to `path` and
///    reload them at startup, so production runs skip re-measurement across
///    processes (see core/tuner.hpp).
///  * `SF_TILE_MIN_BYTES=n` — working-set floor (bytes, default 2 MiB)
///    below which Tiling::Auto stays untiled even on multicore: smaller
///    problems lose more to stage barriers than they gain from parallel
///    wedges.
///  * `SF_LLC_BYTES=n`    — override the detected last-level-cache size the
///    Tiling::Auto cost model compares working sets against
///    (common/cpu.hpp llc_bytes()).
///  * `SF_THREADS=n`      — default worker count for tiled stages when the
///    caller leaves `threads` unset (0/unset = hardware threads).
///  * `SF_AFFINITY=none|compact|scatter` — default worker-placement policy
///    of the runtime's WorkerPool when ExecOptions::affinity is left at
///    Affinity::None (runtime/topology.hpp env_affinity()).
///  * `SF_VALIDATE=0`     — debug-only toggle that skips the per-call
///    FieldView validation in PreparedStencil::run()/advance() (combined
///    with HaloPolicy::Clean this makes a streaming advance() pure kernel
///    dispatch). Any other value — including unset — keeps validation on.
///  * `SF_POOL_CACHE=n`   — max (threads, affinity) configurations the
///    shared_pool() registry keeps cached (default 8, floor 1). Acquiring
///    a pool beyond the cap evicts the least-recently-used unreferenced
///    configuration; pools still referenced by prepared plans or servers
///    are never evicted (runtime/worker_pool.hpp).
///  * `SF_TILE_LEVELS=n|auto` — default tile-tree depth for plans whose
///    ExecOptions::levels is left at 0: 1 (the default) keeps the flat
///    one-level plan, 2/3 engage the hierarchical LLC/register blocking
///    pass (core/execution_plan.hpp TileTree), `auto` picks 3 when the
///    working set exceeds the LLC and 1 otherwise. Results are bitwise
///    identical across depths; only the tile walk changes.
///  * `SF_ADAPTIVE_BATCH=0` — pin the serving dispatcher's per-round drain
///    cap to the configured `max_batch` instead of letting it adapt to the
///    observed queue depth (serving/server.hpp). Any other value — including
///    unset — keeps adaptation on.
///  * `SF_PIPELINE=0`     — select the legacy global-barrier wedge schedule
///    instead of the default point-to-point neighbor pipeline
///    (tiling/split_tiling.hpp Pipeline) wherever the request leaves
///    Pipeline::Auto. Results are bitwise identical either way; the knob
///    exists so the barrier path stays benchmarkable (fig10) and
///    bisectable.
///  * `SF_TEST_JITTER=n`  — test-only fault injection: each pipelined wedge
///    stage first sleeps its worker a pseudo-random 0..n microseconds
///    (runtime/worker_pool.hpp test_jitter_stall), forcing maximal stage
///    skew between neighbors. Unset/0 (the default) is a no-op.
///  * `SF_METRICS=1`      — enable the telemetry counters/histograms
///    (telemetry/telemetry.hpp). Unset/0 hands out dead no-op handles;
///    resolution happens at construct/prepare time, never per operation.
///  * `SF_TRACE=1`        — enable the scoped trace-span journal (bounded
///    per-thread rings, chrome-trace JSON export).
///  * `SF_TRACE_BUF=n`    — per-thread trace ring capacity in events
///    (default 8192, floor 16; oldest events overwritten on wrap).
///  * `SF_TELEMETRY_OUT=dir` — write the telemetry CSV/JSON artifact set
///    into `dir` at process exit (telemetry::write_reports()).
#pragma once

#include <cstdlib>
#include <string>

namespace sf {

/// True when `name` is set to anything but "" or "0".
inline bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::string(v) != "0" && std::string(v) != "";
}

/// Integer value of `name`, or `fallback` when unset.
inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v ? std::atol(v) : fallback;
}

/// String value of `name`, or an empty string when unset.
inline std::string env_str(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : std::string();
}

/// SF_BENCH_FULL: paper-size bench sweeps.
inline bool bench_full() { return env_flag("SF_BENCH_FULL"); }

/// SF_BENCH_OUT: output directory for bench CSVs ("" = working directory).
inline std::string bench_out_dir() { return env_str("SF_BENCH_OUT"); }

/// SF_TUNE: auto-tune every tiled Solver run (measure-once, cached).
inline bool tune_forced() { return env_flag("SF_TUNE"); }

/// SF_TUNE_CACHE: path of the persistent tuning cache ("" = in-process
/// only).
inline std::string tune_cache_path() { return env_str("SF_TUNE_CACHE"); }

/// SF_TILE_MIN_BYTES: Tiling::Auto working-set floor (default 2 MiB).
inline long tile_min_bytes() {
  return env_long("SF_TILE_MIN_BYTES", 2L << 20);
}

/// SF_THREADS: default tiled-stage worker count (0 = hardware threads).
inline int env_threads() {
  return static_cast<int>(env_long("SF_THREADS", 0));
}

/// SF_POOL_CACHE: shared_pool() registry capacity (default 8, floor 1).
inline int pool_cache_cap() {
  const long cap = env_long("SF_POOL_CACHE", 8);
  return cap < 1 ? 1 : static_cast<int>(cap);
}

/// SF_TEST_JITTER: max per-stage fault-injection stall in microseconds
/// (unset/0 = disabled). Deliberately re-read per call — the stress tests
/// setenv/unsetenv around individual cases, so a cached parse would go
/// stale (runtime/worker_pool.hpp test_jitter_stall).
inline long test_jitter_us() { return env_long("SF_TEST_JITTER", 0); }

/// SF_VALIDATE: false only when the variable is set to exactly "0" — the
/// debug-only escape hatch that drops per-call view validation.
inline bool env_validate() {
  const char* v = std::getenv("SF_VALIDATE");
  return v == nullptr || std::string(v) != "0";
}

/// SF_TILE_LEVELS: default tile-tree depth when ExecOptions::levels is
/// unset. Returns 1 when the variable is unset, -1 for "auto" (depth from
/// working set vs LLC, resolved by the Engine), else the value clamped to
/// [1, 3].
inline int env_tile_levels() {
  const char* v = std::getenv("SF_TILE_LEVELS");
  if (v == nullptr || *v == '\0') return 1;
  if (std::string(v) == "auto") return -1;
  const long n = std::atol(v);
  return n < 1 ? 1 : n > 3 ? 3 : static_cast<int>(n);
}

/// SF_ADAPTIVE_BATCH: false only when the variable is set to exactly "0" —
/// the escape hatch that pins the serving dispatcher's drain cap to the
/// configured max_batch.
inline bool env_adaptive_batch() {
  const char* v = std::getenv("SF_ADAPTIVE_BATCH");
  return v == nullptr || std::string(v) != "0";
}

/// SF_PIPELINE: false only when the variable is set to exactly "0" — the
/// escape hatch that puts Pipeline::Auto requests back on the historical
/// global-barrier wedge schedule.
inline bool env_pipeline() {
  const char* v = std::getenv("SF_PIPELINE");
  return v == nullptr || std::string(v) != "0";
}

}  // namespace sf
