// Environment-variable knobs for the benchmark harness.
//
// SF_BENCH_FULL=1   use the paper's Table-1 problem sizes (slow, minutes per
//                   bench); default is a scaled-down sweep that finishes fast.
// SF_BENCH_REPS=n   override the measurement repetition count.
#pragma once

#include <cstdlib>
#include <string>

namespace sf {

inline bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::string(v) != "0" && std::string(v) != "";
}

inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v ? std::atol(v) : fallback;
}

inline bool bench_full() { return env_flag("SF_BENCH_FULL"); }

}  // namespace sf
