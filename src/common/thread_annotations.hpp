#pragma once

// Clang Thread Safety Analysis attribute macros.
//
// These expand to Clang's capability-analysis attributes when compiling
// with a Clang that supports them and to nothing elsewhere (GCC, MSVC),
// so annotated code builds identically on every toolchain while the
// static-analysis CI job (`clang++ -Wthread-safety -Werror=thread-safety`,
// see docs/STATIC_ANALYSIS.md) proves at compile time that every access
// to a guarded member happens under its mutex.
//
// The project-facing vocabulary, applied to sf::Mutex (common/mutex.hpp)
// and the structures it guards:
//
//   SF_CAPABILITY(x)        class is a capability (a lock) named `x`
//   SF_SCOPED_CAPABILITY    RAII class that acquires/releases a capability
//   SF_GUARDED_BY(mu)       data member readable/writable only under `mu`
//   SF_PT_GUARDED_BY(mu)    pointee (not the pointer) guarded by `mu`
//   SF_REQUIRES(mu)         function must be called with `mu` held
//   SF_ACQUIRE(mu)          function acquires `mu` (and returns holding it)
//   SF_RELEASE(mu)          function releases `mu`
//   SF_TRY_ACQUIRE(b, mu)   try-lock; acquires `mu` iff it returns `b`
//   SF_EXCLUDES(mu)         function must NOT be called with `mu` held
//   SF_ASSERT_CAPABILITY(mu) runtime assertion that `mu` is held
//   SF_RETURN_CAPABILITY(mu) function returns a reference to `mu`
//   SF_NO_THREAD_SAFETY_ANALYSIS  opt a function out (document why!)

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef SF_THREAD_ANNOTATION
#define SF_THREAD_ANNOTATION(x)  // no-op on non-Clang compilers
#endif

#define SF_CAPABILITY(x) SF_THREAD_ANNOTATION(capability(x))
#define SF_SCOPED_CAPABILITY SF_THREAD_ANNOTATION(scoped_lockable)
#define SF_GUARDED_BY(x) SF_THREAD_ANNOTATION(guarded_by(x))
#define SF_PT_GUARDED_BY(x) SF_THREAD_ANNOTATION(pt_guarded_by(x))
#define SF_REQUIRES(...) \
  SF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SF_ACQUIRE(...) \
  SF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SF_RELEASE(...) \
  SF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SF_TRY_ACQUIRE(...) \
  SF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SF_EXCLUDES(...) SF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SF_ASSERT_CAPABILITY(x) SF_THREAD_ANNOTATION(assert_capability(x))
#define SF_RETURN_CAPABILITY(x) SF_THREAD_ANNOTATION(lock_returned(x))
#define SF_NO_THREAD_SAFETY_ANALYSIS \
  SF_THREAD_ANNOTATION(no_thread_safety_analysis)
