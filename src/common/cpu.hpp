// Runtime CPU feature detection used to pick the widest usable SIMD path.
#pragma once

#include <string>

namespace sf {

/// Instruction-set level a kernel is implemented for.
enum class Isa { Scalar, Avx2, Avx512, Auto };

/// True if the running CPU supports AVX2 + FMA.
bool cpu_has_avx2();

/// True if the running CPU supports AVX-512F (and DQ, which our kernels use).
bool cpu_has_avx512();

/// Resolves Isa::Auto to the widest supported level; passes others through.
Isa resolve_isa(Isa requested);

/// SIMD width in doubles for an ISA level (1, 4, or 8).
int isa_width(Isa isa);

const char* isa_name(Isa isa);

/// Number of hardware threads (OpenMP max threads).
int hardware_threads();

}  // namespace sf
