// Runtime CPU feature detection used to pick the widest usable SIMD path.
#pragma once

#include <string>

namespace sf {

/// Instruction-set level a kernel is implemented for.
enum class Isa { Scalar, Avx2, Avx512, Auto };

/// True if the running CPU supports AVX2 + FMA.
bool cpu_has_avx2();

/// True if the running CPU supports AVX-512F (and DQ, which our kernels use).
bool cpu_has_avx512();

/// Resolves Isa::Auto to the widest supported level; passes others through.
Isa resolve_isa(Isa requested);

/// SIMD width in doubles for an ISA level (1, 4, or 8).
int isa_width(Isa isa);

const char* isa_name(Isa isa);

/// Number of hardware threads (OpenMP max threads).
int hardware_threads();

/// Last-level cache size in bytes: SF_LLC_BYTES if set, else the OS-reported
/// L3 (falling back to L2, then to the paper machine's 24.75 MB LLC when the
/// OS reports nothing, as in containers). The Tiling::Auto cost model
/// compares grid working sets against this.
long llc_bytes();

}  // namespace sf
