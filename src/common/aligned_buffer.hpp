// Aligned storage primitive shared by all grid types.
//
// Stencil kernels in this library assume that the first interior element of
// every row sits on a 64-byte boundary (the paper aligns every vector set to
// a 32-byte boundary for AVX-2; we align to 64 so AVX-512 paths work too).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

namespace sf {

inline constexpr std::size_t kAlignment = 64;

/// Owning, 64-byte-aligned array of doubles. Move-only.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  /// Allocates `n` doubles. `zero_init = false` skips the zeroing memset,
  /// leaving the pages *untouched*: under Linux's first-touch NUMA policy
  /// they are placed by whichever thread writes them first — the runtime's
  /// pinned workers, via PreparedStencil::first_touch(). The default (true)
  /// zeroes on the allocating thread, as always. Reading an un-zeroed
  /// buffer before writing it is caller error.
  explicit AlignedBuffer(std::size_t n, bool zero_init = true) : size_(n) {
    if (n == 0) return;
    const std::size_t bytes = (n * sizeof(double) + kAlignment - 1) /
                              kAlignment * kAlignment;
    data_ = static_cast<double*>(std::aligned_alloc(kAlignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc{};
    if (zero_init) std::memset(data_, 0, bytes);
  }

  AlignedBuffer(AlignedBuffer&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    if (this != &o) {
      std::free(data_);
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { std::free(data_); }

  double* data() { return data_; }
  const double* data() const { return data_; }
  std::size_t size() const { return size_; }
  double& operator[](std::size_t i) { return data_[i]; }
  const double& operator[](std::size_t i) const { return data_[i]; }

 private:
  double* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Rounds `n` up to a multiple of `m`.
constexpr std::size_t round_up(std::size_t n, std::size_t m) {
  return (n + m - 1) / m * m;
}

}  // namespace sf
