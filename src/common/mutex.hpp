#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace sf {

// Annotated drop-in for std::mutex. libstdc++'s std::mutex carries no
// capability attributes, so Clang's thread-safety analysis cannot reason
// about it; this zero-overhead wrapper adds them. Use with sf::LockGuard
// (scoped) or sf::UniqueLock (when a CondVar wait or early unlock is
// needed). `native()` exposes the underlying std::mutex for interop and
// deliberately sits outside the analysis.
class SF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SF_ACQUIRE() { mu_.lock(); }
  void unlock() SF_RELEASE() { mu_.unlock(); }
  bool try_lock() SF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Escape hatch for std::condition_variable interop; accesses through
  // the raw mutex are invisible to the analysis.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII lock for sf::Mutex; equivalent of std::lock_guard.
class SF_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) SF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() SF_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

// Movable/unlockable RAII lock for sf::Mutex, for CondVar waits and
// scopes that drop the lock early; equivalent of std::unique_lock.
class SF_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) SF_ACQUIRE(mu)
      : mu_(&mu), lock_(mu.native()) {}
  // Body (not `= default`) so the release annotation sits on an ordinary
  // definition; the std::unique_lock member unlocks iff still owned.
  ~UniqueLock() SF_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() SF_ACQUIRE() { lock_.lock(); }
  void unlock() SF_RELEASE() { lock_.unlock(); }

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  Mutex* mu_;
  std::unique_lock<std::mutex> lock_;
};

// Condition variable paired with sf::Mutex via UniqueLock. wait() is not
// annotated: the analysis only checks lock state at function boundaries,
// and the lock is held both entering and leaving a wait, which is exactly
// the guarantee guarded members rely on. Callers must re-test their
// predicate in a loop around wait() — with guarded state the predicate
// reads live in the caller's scope where the analysis can see them, not
// in a lambda (Clang analyzes lambdas as separate unlocked functions).
class CondVar {
 public:
  void wait(UniqueLock& lock) { cv_.wait(lock.native()); }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock.native(), d);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sf
