#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sf {

Table::Table(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> width;
  for (const auto& row : rows_) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(width[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (auto w : width) total += w + 2;
      out << std::string(total, '-') << '\n';
    }
  }
  return out.str();
}

std::string Table::csv() const {
  std::ostringstream out;
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace sf
