// Wall-clock timing helpers for the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace sf {

/// Monotonic wall-clock timer with second resolution as double.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Prevents the compiler from optimizing away a computed value.
inline void do_not_optimize(const void* p) {
  asm volatile("" : : "g"(p) : "memory");
}

}  // namespace sf
