/// \file
/// \brief CPU/NUMA topology discovery for the persistent runtime layer.
///
/// The paper's multicore scaling claims (Fig. 10, Table 3) only reproduce
/// reliably when threads are *placed*: pinned to known cores, with each
/// worker's tiles resident on its own NUMA node. `sf::Topology` is the map
/// that placement is computed from — logical CPUs with their core, package
/// and NUMA-node membership, discovered from the Linux sysfs tree
/// (`/sys/devices/system/{cpu,node}`) with a portable flat fallback for
/// platforms or containers that expose nothing.
///
/// Discovery is side-effect free and can be pointed at any directory laid
/// out like sysfs (`Topology::discover(root)`), so tests exercise the
/// parser against fixture trees instead of the host machine.
#pragma once

#include <string>
#include <vector>

namespace sf {

/// Thread-placement policy of a WorkerPool (and of the tiled execution
/// stages that run on one). Spelled in ExecOptions / `Solver::affinity()`;
/// `SF_AFFINITY=none|compact|scatter` supplies a process-wide default.
enum class Affinity {
  None,     ///< No pinning: workers float wherever the OS schedules them
            ///< (the historical OpenMP-equivalent behavior, and the
            ///< default — results are bitwise identical across policies,
            ///< placement only affects locality).
  Compact,  ///< Pack workers onto adjacent cores: each core saturated (SMT
            ///< sibling adjacent) before the next, one package/node filled
            ///< before spilling to the next. Best cache sharing between
            ///< neighbouring wedge tiles.
  Scatter,  ///< Spread workers round-robin across NUMA nodes (then cores):
            ///< maximizes aggregate memory bandwidth, the right default
            ///< for bandwidth-saturated stencils on multi-node machines.
};

/// Display name of an Affinity ("none", "compact", "scatter").
const char* affinity_name(Affinity a);

/// Parses an affinity name (case-sensitive, as spelled by affinity_name);
/// unknown or empty strings yield Affinity::None.
Affinity affinity_from_name(const std::string& name);

/// The process-wide affinity default: `SF_AFFINITY` parsed via
/// affinity_from_name() (unset -> Affinity::None).
Affinity env_affinity();

/// One logical CPU as discovered from sysfs.
struct LogicalCpu {
  int id = 0;        ///< Kernel CPU number (cpuN).
  int core = 0;      ///< Physical core id within its package.
  int package = 0;   ///< Physical package (socket) id.
  int node = 0;      ///< NUMA node the CPU belongs to.
  int smt_rank = 0;  ///< 0 = first hardware thread of its core, 1 = second
                     ///< SMT sibling, ...
};

/// Immutable machine map: logical CPUs with core/package/NUMA membership.
class Topology {
 public:
  /// The host machine's topology, discovered once from
  /// `/sys/devices/system` and cached for the process lifetime. Falls back
  /// to flat() when sysfs is absent (non-Linux, sandboxed containers).
  static const Topology& system();

  /// Discovers a topology from a directory laid out like
  /// `/sys/devices/system` (containing `cpu/online`,
  /// `cpu/cpuN/topology/{core_id,physical_package_id}` and
  /// `node/nodeK/cpulist`). Missing node information degrades to a single
  /// NUMA node; a missing/unreadable `cpu/online` yields flat().
  /// Exposed (rather than hidden behind system()) so tests drive the
  /// parser with fixture trees.
  static Topology discover(const std::string& sysfs_root);

  /// Portable fallback: `ncpus` logical CPUs, each its own core, one
  /// package, one NUMA node, no SMT.
  static Topology flat(int ncpus);

  /// The logical CPUs, ordered by id.
  const std::vector<LogicalCpu>& cpus() const { return cpus_; }
  /// Number of logical CPUs.
  int logical_cpus() const { return static_cast<int>(cpus_.size()); }
  /// Number of distinct physical cores.
  int physical_cores() const { return cores_; }
  /// Number of packages (sockets).
  int packages() const { return packages_; }
  /// Number of NUMA nodes.
  int numa_nodes() const { return nodes_; }
  /// True when any core carries more than one hardware thread.
  bool smt() const { return smt_; }
  /// Physical cores per NUMA node (rounded up; >= 1). The tuner probes
  /// this as a candidate thread count for bandwidth-saturated stencils.
  int cores_per_node() const;
  /// NUMA node of a logical CPU id (-1 when the id is unknown).
  int node_of(int cpu_id) const;

  /// The CPU ids workers are pinned to, in worker order, for a placement
  /// policy. Affinity::None yields an empty vector (no pinning). Workers
  /// beyond the vector's size wrap around (oversubscription).
  std::vector<int> pin_order(Affinity policy) const;

 private:
  std::vector<LogicalCpu> cpus_;
  int cores_ = 0;
  int packages_ = 0;
  int nodes_ = 0;
  bool smt_ = false;
};

/// Parses a sysfs CPU list ("0-3,8,10-11") into ascending CPU ids.
/// Malformed chunks are skipped; whitespace/newlines are tolerated.
std::vector<int> parse_cpu_list(const std::string& list);

}  // namespace sf
