#include "runtime/topology.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "common/cpu.hpp"
#include "common/env.hpp"

namespace sf {

const char* affinity_name(Affinity a) {
  switch (a) {
    case Affinity::None: return "none";
    case Affinity::Compact: return "compact";
    case Affinity::Scatter: return "scatter";
  }
  return "?";
}

Affinity affinity_from_name(const std::string& name) {
  if (name == "compact") return Affinity::Compact;
  if (name == "scatter") return Affinity::Scatter;
  return Affinity::None;
}

Affinity env_affinity() { return affinity_from_name(env_str("SF_AFFINITY")); }

std::vector<int> parse_cpu_list(const std::string& list) {
  std::vector<int> out;
  std::stringstream ss(list);
  std::string chunk;
  while (std::getline(ss, chunk, ',')) {
    // Trim whitespace (sysfs files end in '\n').
    while (!chunk.empty() && std::isspace(static_cast<unsigned char>(chunk.back())))
      chunk.pop_back();
    while (!chunk.empty() && std::isspace(static_cast<unsigned char>(chunk.front())))
      chunk.erase(chunk.begin());
    if (chunk.empty()) continue;
    const std::size_t dash = chunk.find('-');
    try {
      if (dash == std::string::npos) {
        out.push_back(std::stoi(chunk));
      } else {
        const int lo = std::stoi(chunk.substr(0, dash));
        const int hi = std::stoi(chunk.substr(dash + 1));
        for (int i = lo; i <= hi && i - lo < 1 << 20; ++i) out.push_back(i);
      }
    } catch (const std::exception&) {
      // Malformed chunk: skip it, keep the parseable remainder.
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

/// First integer in a one-value sysfs file, or `fallback` when the file is
/// missing/unparsable.
int read_int_file(const std::string& path, int fallback) {
  std::ifstream in(path);
  int v = 0;
  if (in >> v) return v;
  return fallback;
}

bool read_text_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

Topology Topology::flat(int ncpus) {
  Topology t;
  if (ncpus < 1) ncpus = 1;
  for (int i = 0; i < ncpus; ++i) {
    LogicalCpu c;
    c.id = i;
    c.core = i;
    c.package = 0;
    c.node = 0;
    c.smt_rank = 0;
    t.cpus_.push_back(c);
  }
  t.cores_ = ncpus;
  t.packages_ = 1;
  t.nodes_ = 1;
  t.smt_ = false;
  return t;
}

Topology Topology::discover(const std::string& sysfs_root) {
  std::string online;
  if (!read_text_file(sysfs_root + "/cpu/online", online))
    return flat(hardware_threads());
  const std::vector<int> ids = parse_cpu_list(online);
  if (ids.empty()) return flat(hardware_threads());

  // NUMA membership: node/nodeK/cpulist, probed for consecutive K. Gaps in
  // node numbering are tolerated by probing a bounded range; machines with
  // no node/ directory degrade to one node.
  std::map<int, int> node_of_cpu;
  for (int k = 0, misses = 0; k < 1024 && misses < 16; ++k) {
    std::string cl;
    if (!read_text_file(sysfs_root + "/node/node" + std::to_string(k) +
                            "/cpulist",
                        cl)) {
      ++misses;
      continue;
    }
    misses = 0;
    for (int cpu : parse_cpu_list(cl)) node_of_cpu[cpu] = k;
  }

  Topology t;
  for (int id : ids) {
    const std::string base =
        sysfs_root + "/cpu/cpu" + std::to_string(id) + "/topology/";
    LogicalCpu c;
    c.id = id;
    c.core = read_int_file(base + "core_id", id);
    c.package = read_int_file(base + "physical_package_id", 0);
    const auto it = node_of_cpu.find(id);
    c.node = it != node_of_cpu.end() ? it->second : 0;
    t.cpus_.push_back(c);
  }

  // SMT ranks: id order within each (package, core) pair.
  std::map<std::pair<int, int>, int> seen;
  for (LogicalCpu& c : t.cpus_) {
    int& rank = seen[{c.package, c.core}];
    c.smt_rank = rank++;
    t.smt_ = t.smt_ || c.smt_rank > 0;
  }
  t.cores_ = static_cast<int>(seen.size());

  std::vector<int> pkgs, nds;
  for (const LogicalCpu& c : t.cpus_) {
    pkgs.push_back(c.package);
    nds.push_back(c.node);
  }
  std::sort(pkgs.begin(), pkgs.end());
  std::sort(nds.begin(), nds.end());
  t.packages_ = static_cast<int>(
      std::unique(pkgs.begin(), pkgs.end()) - pkgs.begin());
  t.nodes_ = std::max(
      1, static_cast<int>(std::unique(nds.begin(), nds.end()) - nds.begin()));
  return t;
}

const Topology& Topology::system() {
  static const Topology* t =
      new Topology(discover("/sys/devices/system"));
  return *t;
}

int Topology::cores_per_node() const {
  return std::max(1, (cores_ + nodes_ - 1) / std::max(1, nodes_));
}

int Topology::node_of(int cpu_id) const {
  for (const LogicalCpu& c : cpus_)
    if (c.id == cpu_id) return c.node;
  return -1;
}

std::vector<int> Topology::pin_order(Affinity policy) const {
  std::vector<int> order;
  if (policy == Affinity::None || cpus_.empty()) return order;

  if (policy == Affinity::Compact) {
    // Adjacent workers share a node, then a package, then a core: sort by
    // (node, package, core, smt_rank). Each core is saturated — SMT
    // sibling immediately after its first thread — before the next core
    // starts (thread-granularity "compact", like KMP_AFFINITY=compact).
    std::vector<LogicalCpu> s = cpus_;
    std::stable_sort(s.begin(), s.end(),
                     [](const LogicalCpu& a, const LogicalCpu& b) {
                       if (a.node != b.node) return a.node < b.node;
                       if (a.package != b.package) return a.package < b.package;
                       if (a.core != b.core) return a.core < b.core;
                       return a.smt_rank < b.smt_rank;
                     });
    for (const LogicalCpu& c : s) order.push_back(c.id);
    return order;
  }

  // Scatter: round-robin across NUMA nodes, physical cores first (all
  // smt_rank-0 threads of every node before any sibling), so k workers land
  // on k distinct cores spread over all nodes.
  std::map<int, std::vector<LogicalCpu>> per_node;
  for (const LogicalCpu& c : cpus_) per_node[c.node].push_back(c);
  for (auto& [node, v] : per_node)
    std::stable_sort(v.begin(), v.end(),
                     [](const LogicalCpu& a, const LogicalCpu& b) {
                       if (a.smt_rank != b.smt_rank)
                         return a.smt_rank < b.smt_rank;
                       if (a.package != b.package) return a.package < b.package;
                       return a.core < b.core;
                     });
  std::vector<std::size_t> cursor(per_node.size(), 0);
  std::vector<const std::vector<LogicalCpu>*> groups;
  for (const auto& [node, v] : per_node) groups.push_back(&v);
  for (std::size_t remaining = cpus_.size(); remaining > 0;) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (cursor[g] >= groups[g]->size()) continue;
      order.push_back((*groups[g])[cursor[g]++].id);
      --remaining;
    }
  }
  return order;
}

}  // namespace sf
