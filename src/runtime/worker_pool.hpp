/// \file
/// \brief Persistent, topology-pinned worker pool — the execution substrate
/// of the split-tiled stages.
///
/// The tiled wedge schedule used to open an OpenMP parallel region per
/// stage, with no control over where threads ran or whose memory their
/// tiles touched. `sf::WorkerPool` replaces that with a runtime the library
/// owns: `threads` persistent workers, created once and parked on a
/// condition variable between tasks, optionally pinned to CPUs chosen from
/// the machine Topology by an Affinity policy. Persistent + pinned workers
/// are what make *first-touch* placement meaningful: memory a worker
/// allocates or first writes (its workspace arena, its share of a field
/// buffer) lands on that worker's NUMA node and stays useful for every
/// subsequent super-step, because the same worker keeps owning the same
/// tiles (see PlacementPlan).
///
/// Scheduling is deliberately static — `run()` hands every worker its index
/// and the caller maps indices to contiguous tile ranges
/// (balanced_placement(), the OpenMP `schedule(static)` shape) — so results
/// are bitwise independent of the policy: placement moves *where* a tile
/// computes, never *what* it computes.
///
/// Pools are shared per (threads, affinity) configuration via
/// shared_pool(); Engine::prepare builds or reuses them so the execute path
/// never pays thread creation.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "runtime/topology.hpp"
#include "telemetry/telemetry.hpp"

namespace sf {

/// Which pool worker owns which contiguous run of wedge tiles (tile indices
/// along the tiled dimension). Negotiated at plan time alongside
/// tile/time_block (ExecutionPlan::placement) and recomputed identically by
/// the tiling engine — balanced_placement() is the single source of the
/// mapping, so the plan can never drift from what executes. First-touch
/// initialization walks the same map so each worker's tiles live on its
/// NUMA node.
struct PlacementPlan {
  int workers = 0;  ///< Pool size (0 = no pool; the run is serial).
  Affinity affinity = Affinity::None;  ///< Policy the pool pins with.
  std::vector<int> bounds;  ///< size workers+1: worker w owns tile indices
                            ///< [bounds[w], bounds[w+1]).

  /// Number of tiles placed (0 for an empty plan).
  int ntiles() const { return bounds.empty() ? 0 : bounds.back(); }
  /// The tile range worker `w` owns.
  std::pair<int, int> tiles_of(int w) const {
    return {bounds[static_cast<std::size_t>(w)],
            bounds[static_cast<std::size_t>(w) + 1]};
  }
};

/// The static ownership map: `ntiles` tiles over `workers` workers in
/// contiguous chunks of ceil(ntiles/workers) — the exact shape OpenMP's
/// `schedule(static)` used, so the pool rewrite preserves tile-to-stage
/// grouping (and therefore bitwise results trivially, as tiles are
/// independent).
PlacementPlan balanced_placement(int ntiles, int workers, Affinity affinity);

/// Point-to-point progress counters for pipelined pool tasks: one padded
/// acquire/release sequence number per worker. A long-lived task
/// (WorkerPool::run_pipelined) publishes monotonically increasing round
/// numbers as it completes stages; a neighbor that needs the published data
/// waits only on that worker's counter — no global barrier, so fast workers
/// pipeline ahead into their next stage while slow ones finish.
///
/// The release store in publish() paired with the acquire load in
/// wait_for() makes every write the publisher performed before publishing
/// visible to the waiter — that is the whole memory-ordering contract the
/// barrier used to provide, scoped down to one producer/consumer edge.
class NeighborSync {
 public:
  /// Resolves the telemetry counters (`runtime.sync.*`) against the
  /// SF_METRICS state at construction time.
  NeighborSync();
  /// Re-arms the counters for a task over `workers` workers (all zero).
  /// Must not race with publish/wait (the pool resets between tasks, under
  /// its task serialization).
  void reset(int workers);
  /// Announces worker `w` has completed `round` (rounds must be published
  /// in increasing order per worker; the store orders all prior writes
  /// before the counter — and wakes any futex-parked waiter).
  void publish(int w, long round);
  /// Blocks until worker `w` has published at least `round` (acquire).
  /// Spins briefly with pause, then parks on a futex (Linux; portable
  /// yield fallback elsewhere) so oversubscribed pools donate their CPU to
  /// the worker being waited on instead of burning it. Wait/park activity
  /// is recorded in the `runtime.sync.*` telemetry counters.
  void wait_for(int w, long round) const;
  /// Marks worker `w` as finished with every round it could ever publish
  /// (used on the exception path so neighbors waiting on a dead worker
  /// unblock instead of hanging).
  void abandon(int w);
  /// Number of workers the last reset() armed (0 before any reset).
  int workers() const { return workers_; }

 private:
  struct alignas(64) Slot {  // one cache line per worker: no false sharing
    std::atomic<long> seq{0};
    /// Futex generation word: bumped by publish() when `waiters` is
    /// non-zero; a parked waiter sleeps on this 32-bit word, so a bump
    /// between its epoch read and its futex_wait makes the sleep return
    /// immediately instead of missing the wake.
    mutable std::atomic<unsigned> epoch{0};
    /// Number of threads inside the park protocol for this slot.
    mutable std::atomic<int> waiters{0};
  };
  std::unique_ptr<Slot[]> slots_;
  int workers_ = 0;
  telemetry::Counter waits_;    ///< runtime.sync.waits — slow-path entries.
  telemetry::Counter wait_ns_;  ///< runtime.sync.wait_ns — total blocked ns.
  telemetry::Counter parks_;    ///< runtime.sync.parks — futex sleeps.
};

/// Test-only fault injection for pipelined schedules: sleeps the calling
/// worker a pseudo-random 0..SF_TEST_JITTER microseconds (deterministic per
/// worker index sequence, distinct across workers) so stress tests force
/// maximal stage skew between neighbors. Compiled in always; returns
/// immediately when `SF_TEST_JITTER` is unset or 0, so production pays one
/// getenv per stage and nothing else.
void test_jitter_stall(int worker);

/// Persistent worker pool with optional topology pinning. Workers are
/// spawned in the constructor, parked between tasks, and joined in the
/// destructor. Thread-safe: concurrent run() calls from distinct master
/// threads serialize on an internal mutex (each task still runs on all
/// workers). A worker that calls run() on its own pool executes the task
/// inline serially instead of deadlocking (documented degenerate case).
class WorkerPool {
 public:
  /// Spawns `threads` workers (>= 1) pinned per `affinity` against `topo`.
  /// With more workers than pinnable CPUs the pin order wraps around
  /// (oversubscription is legal and deadlock-free; workers just share
  /// CPUs).
  explicit WorkerPool(int threads, Affinity affinity = Affinity::None,
                      const Topology& topo = Topology::system());
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of workers.
  int threads() const { return static_cast<int>(workers_.size()); }
  /// The placement policy the pool was built with.
  Affinity affinity() const { return affinity_; }
  /// CPU id worker `w` is pinned to (-1 when unpinned).
  int cpu_of_worker(int w) const { return workers_[static_cast<std::size_t>(w)].cpu; }
  /// NUMA node of worker `w`'s CPU (-1 when unpinned/unknown).
  int node_of_worker(int w) const { return workers_[static_cast<std::size_t>(w)].node; }

  /// Runs `fn(worker_index)` on every worker and returns when all have
  /// finished (one task, one barrier). Exceptions thrown by workers are
  /// captured; the first one is rethrown on the calling thread after the
  /// barrier.
  void run(const std::function<void(int)>& fn);

  /// Long-lived-task mode: runs `fn(worker_index, sync)` on every worker
  /// with a freshly re-armed NeighborSync, and returns when all workers
  /// have finished. Unlike run() — where each pool dispatch is a stage and
  /// the task boundary a global barrier — a pipelined task spans many
  /// stages and orders itself purely through the sync object's
  /// point-to-point publish/wait edges, so workers never collectively
  /// rendezvous until the final task join. A worker that throws has its
  /// counter abandon()ed before the exception is captured, so neighbors
  /// waiting on it unblock; the first exception is rethrown on the caller
  /// after the join, exactly as run().
  ///
  /// Must be called from off-pool threads only: a pipelined schedule
  /// cannot degrade to the inline serial execution nested run() uses
  /// (worker w's waits on w+1 could never be satisfied in index order), so
  /// a nested call throws std::logic_error. Callers gate on
  /// on_worker_thread() and fall back to their barrier path.
  void run_pipelined(const std::function<void(int, NeighborSync&)>& fn);

  /// True when the calling thread is one of this pool's workers (a nested
  /// run() would execute inline; run_pipelined() would throw).
  bool on_worker_thread() const;

  /// Static parallel for: splits [begin, end) into the
  /// balanced_placement() chunks and calls `fn(i)` for each index on its
  /// owning worker.
  void parallel_for(int begin, int end, const std::function<void(int)>& fn);

  /// Worker `w`'s scratch-buffer arena. The buffers live for the pool's
  /// lifetime and are allocated *by* worker `w` (ensure_arena), so their
  /// pages are first-touched on the worker's NUMA node. The tiled 3-D
  /// folded stage keeps its sliding plane window here.
  std::vector<AlignedBuffer>& arena(int w) {
    return workers_[static_cast<std::size_t>(w)].arena;
  }

  /// Ensures every worker's arena holds exactly `nbufs` buffers of at
  /// least `doubles_each` doubles, (re)allocated on the owning worker so
  /// first touch places the pages. No-op when already satisfied (the
  /// workspace survives across Engine::prepare calls and runs).
  void ensure_arena(std::size_t nbufs, std::size_t doubles_each);

  /// Worker-side body of ensure_arena() for a single arena: checks, and if
  /// needed (re)allocates + zeroes, worker `w`'s arena. Must be called from
  /// a task already running on worker `w` (arenas are worker-owned; only
  /// the owner may inspect or resize its vector) — the pipelined wedge
  /// prologue uses this to fold the first-touch zeroing into the slot that
  /// already overlaps the first super-step instead of paying a separate
  /// pool dispatch at prepare time.
  void ensure_arena_local(int w, std::size_t nbufs, std::size_t doubles_each);

 private:
  struct Worker {
    std::vector<AlignedBuffer> arena;
    int cpu = -1;
    int node = -1;
  };

  struct Sync;  // pimpl: mutexes/condvars/thread handles

  // Dispatches one task over all workers; caller holds the task mutex.
  void run_locked(const std::function<void(int)>& fn);

  std::vector<Worker> workers_;
  Affinity affinity_ = Affinity::None;
  std::unique_ptr<Sync> sync_;
  NeighborSync nsync_;  // reused per run_pipelined() task

  // Telemetry handles (runtime.pool.*), resolved at pool construction —
  // dead no-ops unless SF_METRICS was on when the pool was built.
  telemetry::Counter t_dispatches_;  // tasks dispatched (one per run())
  telemetry::Counter t_tasks_;       // per-worker task executions
  telemetry::Counter t_busy_ns_;     // summed worker-task ns (utilization
                                     // = busy_ns / (threads * wall))
  telemetry::Histogram t_task_us_;   // per-worker task duration (us)
};

/// The process-wide pool for a (threads, affinity) configuration, built on
/// first request and shared by reference count (workers park between tasks,
/// so a cached idle pool costs nothing but memory). `threads` <= 0 resolves
/// to hardware_threads(). This is what Engine::prepare "builds or reuses";
/// direct run_tile_plan() callers resolve the same pool, so the prepared
/// path and the raw path share workers.
///
/// Lifecycle: the registry behind this function keeps one reference per
/// cached configuration and retains at most `SF_POOL_CACHE` pools (default
/// 8). Acquiring a pool beyond the cap evicts the least-recently-used
/// configuration *nobody else references* — a pool still held by a
/// PreparedStencil, a Server, or any caller-side shared_ptr is never
/// evicted; it merely stops being cached and dies (workers joined) when its
/// last external reference drops. release_pool()/release_unused_pools()
/// drop cache references explicitly.
std::shared_ptr<WorkerPool> shared_pool(int threads, Affinity affinity);

/// Drops the registry's cached reference to the (threads, affinity) pool
/// (`threads` <= 0 resolves as in shared_pool). The pool's worker threads
/// shut down as soon as the last outstanding shared_ptr releases —
/// immediately, when no prepared handle or server still holds one. Returns
/// false when the configuration was not cached. A subsequent shared_pool()
/// for the same configuration simply builds a fresh pool.
bool release_pool(int threads, Affinity affinity);

/// Evicts every cached pool whose only remaining reference is the
/// registry's own (their workers join before this returns). Referenced
/// pools stay cached. Returns the number of pools released.
std::size_t release_unused_pools();

/// Number of (threads, affinity) configurations the pool registry currently
/// caches (referenced or not). Exposed for tests and introspection.
std::size_t pool_cache_size();

}  // namespace sf
