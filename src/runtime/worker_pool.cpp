#include "runtime/worker_pool.hpp"

#include <pthread.h>
#include <sched.h>
#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <atomic>
#include <chrono>
#include <climits>
#include <cstdint>
#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cpu.hpp"
#include "common/env.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace sf {

PlacementPlan balanced_placement(int ntiles, int workers, Affinity affinity) {
  PlacementPlan p;
  if (workers <= 0 || ntiles <= 0) return p;
  p.workers = workers;
  p.affinity = affinity;
  const int chunk = (ntiles + workers - 1) / workers;
  p.bounds.resize(static_cast<std::size_t>(workers) + 1);
  for (int w = 0; w <= workers; ++w)
    p.bounds[static_cast<std::size_t>(w)] = std::min(ntiles, w * chunk);
  return p;
}

namespace {

// Marks the pool the current thread is a worker of, so a nested run() on
// the same pool degrades to inline execution instead of deadlocking on its
// own barrier.
thread_local const WorkerPool* tls_current_pool = nullptr;

}  // namespace

// ---------------------------------------------------------------------------
// NeighborSync
// ---------------------------------------------------------------------------

#if defined(__linux__)
namespace {

// The futex word is the Slot's 32-bit epoch atomic; the kernel compares
// the raw cell against `expect`.
static_assert(sizeof(std::atomic<unsigned>) == sizeof(unsigned),
              "futex word must be the bare 32-bit cell");

void futex_wait(const std::atomic<unsigned>* addr, unsigned expect) {
  // Returns on wake, EAGAIN (word changed first) or spurious interrupt —
  // all handled by the caller's re-check loop.
  syscall(SYS_futex, reinterpret_cast<const void*>(addr), FUTEX_WAIT_PRIVATE,
          expect, nullptr, nullptr, 0);
}

void futex_wake_all(const std::atomic<unsigned>* addr) {
  syscall(SYS_futex, reinterpret_cast<const void*>(addr), FUTEX_WAKE_PRIVATE,
          INT_MAX, nullptr, nullptr, 0);
}

}  // namespace
#endif

NeighborSync::NeighborSync()
    : waits_(telemetry::counter("runtime.sync.waits")),
      wait_ns_(telemetry::counter("runtime.sync.wait_ns")),
      parks_(telemetry::counter("runtime.sync.parks")) {}

void NeighborSync::reset(int workers) {
  if (workers > workers_) slots_.reset(new Slot[static_cast<std::size_t>(workers)]);
  workers_ = workers;
  // relaxed: pre-publication zeroing. reset() runs under the pool's task
  // mutex before any worker of the new task can publish or wait, so there
  // is no concurrent reader to order against.
  for (int w = 0; w < workers; ++w)
    slots_[static_cast<std::size_t>(w)].seq.store(0, std::memory_order_relaxed);
}

void NeighborSync::publish(int w, long round) {
  Slot& s = slots_[static_cast<std::size_t>(w)];
  // seq_cst (not just release) pairs with the waiter's registration in
  // wait_for(): if the waiter's post-registration seq check missed this
  // store, this thread is guaranteed to observe its `waiters` increment
  // below and wake it (classic Dekker store/load on seq vs waiters).
  s.seq.store(round, std::memory_order_seq_cst);
#if defined(__linux__)
  if (s.waiters.load(std::memory_order_seq_cst) != 0) {
    s.epoch.fetch_add(1, std::memory_order_release);
    futex_wake_all(&s.epoch);
  }
#endif
}

void NeighborSync::wait_for(int w, long round) const {
  const Slot& s = slots_[static_cast<std::size_t>(w)];
  if (s.seq.load(std::memory_order_acquire) >= round) return;  // fast path
  const bool timed = wait_ns_.live();
  const std::int64_t t0 = timed ? telemetry::now_ns() : 0;
  // Short spin first (the common case: the neighbor is at most one stage
  // behind), then park so oversubscribed pools donate CPU to the worker
  // being waited on instead of starving it.
  bool done = false;
  for (int spin = 0; spin < 1024 && !done; ++spin) {
    done = s.seq.load(std::memory_order_acquire) >= round;
#if defined(__x86_64__) || defined(__i386__)
    if (!done) __builtin_ia32_pause();
#endif
  }
  while (!done) {
#if defined(__linux__)
    // Park on the slot's epoch word. Ordering against publish(): register
    // in `waiters` (seq_cst), then re-check seq (seq_cst). If the re-check
    // still misses the publish, the publisher's later `waiters` load must
    // observe the registration, so it bumps the epoch and wakes — and a
    // bump between our epoch read and futex_wait makes the sleep return
    // immediately rather than missing it.
    const unsigned epoch = s.epoch.load(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_seq_cst) >= round) break;
    s.waiters.fetch_add(1, std::memory_order_seq_cst);
    if (s.seq.load(std::memory_order_seq_cst) >= round) {
      // relaxed: deregistration only. A publisher reading the stale
      // non-zero count does one harmless extra epoch bump + wake; the
      // Dekker pairing that prevents lost wakes is the seq_cst
      // registration above, not this exit.
      s.waiters.fetch_sub(1, std::memory_order_relaxed);
      break;
    }
    parks_.add(1);
    futex_wait(&s.epoch, epoch);
    // relaxed: same deregistration as above — only the increment side of
    // the park protocol needs seq_cst ordering against `seq`.
    s.waiters.fetch_sub(1, std::memory_order_relaxed);
#else
    std::this_thread::yield();
#endif
    done = s.seq.load(std::memory_order_acquire) >= round;
  }
  if (timed) {
    waits_.add(1);
    wait_ns_.add(telemetry::now_ns() - t0);
  }
}

void NeighborSync::abandon(int w) { publish(w, LONG_MAX); }

// ---------------------------------------------------------------------------
// Test-only jitter injection
// ---------------------------------------------------------------------------

void test_jitter_stall(int worker) {
  // Read per call, not once: tests setenv/unsetenv around individual cases
  // and a cached parse would go stale. One getenv per *stage* (not per
  // wedge) is noise next to the stage's compute.
  const long max_us = test_jitter_us();
  if (max_us <= 0) return;
  // xorshift64, seeded from the worker index so neighbors skew differently
  // and deterministically within one thread's stage sequence.
  thread_local std::uint64_t state = 0;
  if (state == 0)
    state = (static_cast<std::uint64_t>(worker) + 1) * 0x9e3779b97f4a7c15ull;
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  std::this_thread::sleep_for(std::chrono::microseconds(
      static_cast<long>(state % static_cast<std::uint64_t>(max_us + 1))));
}

struct WorkerPool::Sync {
  Mutex run_mu;  // serializes whole tasks across master threads

  Mutex mu;  // guards the annotated fields below
  CondVar work_cv;
  CondVar done_cv;
  const std::function<void(int)>* task SF_GUARDED_BY(mu) = nullptr;
  long epoch SF_GUARDED_BY(mu) = 0;
  int pending SF_GUARDED_BY(mu) = 0;
  bool stop SF_GUARDED_BY(mu) = false;
  std::exception_ptr first_error SF_GUARDED_BY(mu);

  std::vector<std::thread> threads;  // ctor spawns, dtor joins; no races
};

WorkerPool::WorkerPool(int threads, Affinity affinity, const Topology& topo)
    : affinity_(affinity),
      sync_(new Sync),
      t_dispatches_(telemetry::counter("runtime.pool.dispatches")),
      t_tasks_(telemetry::counter("runtime.pool.tasks")),
      t_busy_ns_(telemetry::counter("runtime.pool.busy_ns")),
      t_task_us_(telemetry::histogram("runtime.pool.task_us")) {
  if (threads < 1) threads = 1;
  workers_.resize(static_cast<std::size_t>(threads));

  const std::vector<int> order = topo.pin_order(affinity);
  for (int w = 0; w < threads; ++w) {
    if (!order.empty()) {
      const int cpu = order[static_cast<std::size_t>(w) % order.size()];
      workers_[static_cast<std::size_t>(w)].cpu = cpu;
      workers_[static_cast<std::size_t>(w)].node = topo.node_of(cpu);
    }
  }

  for (int w = 0; w < threads; ++w) {
    sync_->threads.emplace_back([this, w] {
      tls_current_pool = this;
      const int cpu = workers_[static_cast<std::size_t>(w)].cpu;
      if (cpu >= 0) {
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET(static_cast<unsigned>(cpu), &set);
        // Best effort: a shrunken cgroup cpuset (containers) can reject
        // the pin; the worker then floats like Affinity::None.
        (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
      }
      Sync& s = *sync_;
      long seen = 0;
      for (;;) {
        const std::function<void(int)>* task = nullptr;
        {
          UniqueLock lock(s.mu);
          // Explicit predicate loop (not a wait-with-lambda): the guarded
          // reads stay in this scope where the thread-safety analysis can
          // see the lock is held.
          while (!s.stop && s.epoch == seen) s.work_cv.wait(lock);
          if (s.stop) return;
          seen = s.epoch;
          task = s.task;
        }
        {
          // Per-worker task accounting: one span + one histogram record
          // per pool *task* (a whole stage or pipelined schedule), never
          // per cell — dead branches when telemetry is off.
          const bool timed = t_busy_ns_.live();
          const std::int64_t t0 = timed ? telemetry::now_ns() : 0;
          telemetry::Span span("pool.task");
          try {
            (*task)(w);
          } catch (...) {
            LockGuard lock(s.mu);
            if (!s.first_error) s.first_error = std::current_exception();
          }
          if (timed) {
            const std::int64_t dur = telemetry::now_ns() - t0;
            t_tasks_.add(1);
            t_busy_ns_.add(dur);
            t_task_us_.record(dur / 1000);
          }
        }
        {
          LockGuard lock(s.mu);
          if (--s.pending == 0) s.done_cv.notify_all();
        }
      }
    });
  }
}

WorkerPool::~WorkerPool() {
  {
    LockGuard lock(sync_->mu);
    sync_->stop = true;
  }
  sync_->work_cv.notify_all();
  for (std::thread& t : sync_->threads) t.join();
}

void WorkerPool::run_locked(const std::function<void(int)>& fn) {
  Sync& s = *sync_;
  t_dispatches_.add(1);
  std::exception_ptr err;
  {
    UniqueLock lock(s.mu);
    s.task = &fn;
    s.pending = threads();
    s.first_error = nullptr;
    ++s.epoch;
    s.work_cv.notify_all();
    // Explicit loop so the guarded `pending` read is visibly under the
    // lock (see the worker loop's matching comment).
    while (s.pending != 0) s.done_cv.wait(lock);
    s.task = nullptr;
    err = s.first_error;
  }
  if (err) std::rethrow_exception(err);
}

void WorkerPool::run(const std::function<void(int)>& fn) {
  if (tls_current_pool == this) {
    // Nested run() from one of our own workers: execute inline serially.
    for (int w = 0; w < threads(); ++w) fn(w);
    return;
  }
  LockGuard task_lock(sync_->run_mu);
  run_locked(fn);
}

bool WorkerPool::on_worker_thread() const { return tls_current_pool == this; }

void WorkerPool::run_pipelined(
    const std::function<void(int, NeighborSync&)>& fn) {
  if (tls_current_pool == this)
    throw std::logic_error(
        "WorkerPool::run_pipelined called from a worker of the same pool; "
        "pipelined tasks cannot run inline (gate on on_worker_thread())");
  // The sync reset must be ordered against other tasks on this pool, so it
  // happens under the same task mutex the dispatch uses.
  LockGuard task_lock(sync_->run_mu);
  nsync_.reset(threads());
  run_locked([&](int w) {
    try {
      fn(w, nsync_);
    } catch (...) {
      // Unblock neighbors waiting on this worker's counter before the
      // pool captures the exception — otherwise they spin on a round the
      // thrower will never publish and the task never joins.
      nsync_.abandon(w);
      throw;
    }
  });
}

void WorkerPool::parallel_for(int begin, int end,
                              const std::function<void(int)>& fn) {
  const int n = end - begin;
  if (n <= 0) return;
  const PlacementPlan place = balanced_placement(n, threads(), affinity_);
  run([&](int w) {
    const auto [t0, t1] = place.tiles_of(w);
    for (int i = t0; i < t1; ++i) fn(begin + i);
  });
}

void WorkerPool::ensure_arena(std::size_t nbufs, std::size_t doubles_each) {
  // Arenas are worker-owned and may be resized by a concurrently running
  // pool task (folded3d_advance grows a mismatched window mid-stage), so
  // only the owner inspects its vector: the satisfied-check runs inside
  // the task, where run()'s serialization orders it against other tasks.
  run([&](int w) { ensure_arena_local(w, nbufs, doubles_each); });
}

void WorkerPool::ensure_arena_local(int w, std::size_t nbufs,
                                    std::size_t doubles_each) {
  std::vector<AlignedBuffer>& a = arena(w);
  if (a.size() == nbufs && (nbufs == 0 || a[0].size() >= doubles_each))
    return;
  a.clear();
  // AlignedBuffer zero-fills on construction: the memset happens on this
  // (pinned) worker, so first-touch policy places the pages on its node.
  for (std::size_t i = 0; i < nbufs; ++i) a.emplace_back(doubles_each);
}

namespace {

// The shared_pool() registry: an LRU-capped list of cached configurations.
// Pools referenced outside the cache (use_count() > 1) are pinned — eviction
// only drops entries whose sole owner is the cache itself, so a prepared
// plan's pool can never be torn down underneath it. The registry is leaked
// intentionally (never destroyed) so pools held across static destruction
// stay valid; evicted/released pools join their workers when the last
// shared_ptr drops, which for unreferenced entries is inside the registry
// lock.
struct PoolCache {
  struct Entry {
    int threads = 0;
    Affinity affinity = Affinity::None;
    unsigned long last_use = 0;
    std::shared_ptr<WorkerPool> pool;
  };
  Mutex mu;
  std::vector<Entry> entries SF_GUARDED_BY(mu);
  unsigned long tick SF_GUARDED_BY(mu) = 0;
};

PoolCache& pool_cache() {
  static PoolCache* cache = new PoolCache();
  return *cache;
}

// Drops cache-only entries, oldest first, until at most `cap` remain (or no
// droppable entry is left). Caller holds the registry mutex. The dropped
// shared_ptrs are handed back so the caller can destroy them (joining
// worker threads) *outside* the lock.
std::vector<std::shared_ptr<WorkerPool>> evict_lru_locked(PoolCache& c,
                                                          std::size_t cap)
    SF_REQUIRES(c.mu) {
  std::vector<std::shared_ptr<WorkerPool>> dropped;
  while (c.entries.size() > cap) {
    std::size_t victim = c.entries.size();
    for (std::size_t i = 0; i < c.entries.size(); ++i) {
      if (c.entries[i].pool.use_count() != 1) continue;  // pinned elsewhere
      if (victim == c.entries.size() ||
          c.entries[i].last_use < c.entries[victim].last_use)
        victim = i;
    }
    if (victim == c.entries.size()) break;  // everything is referenced
    dropped.push_back(std::move(c.entries[victim].pool));
    c.entries.erase(c.entries.begin() +
                    static_cast<std::ptrdiff_t>(victim));
  }
  return dropped;
}

}  // namespace

std::shared_ptr<WorkerPool> shared_pool(int threads, Affinity affinity) {
  if (threads <= 0) threads = hardware_threads();
  PoolCache& c = pool_cache();
  std::vector<std::shared_ptr<WorkerPool>> graveyard;
  std::shared_ptr<WorkerPool> pool;
  {
    LockGuard lock(c.mu);
    for (PoolCache::Entry& e : c.entries) {
      if (e.threads == threads && e.affinity == affinity) {
        e.last_use = ++c.tick;
        return e.pool;
      }
    }
    pool = std::make_shared<WorkerPool>(threads, affinity);
    c.entries.push_back({threads, affinity, ++c.tick, pool});
    graveyard = evict_lru_locked(
        c, static_cast<std::size_t>(pool_cache_cap()));
  }
  // graveyard destructs here, joining evicted pools' workers off-lock.
  return pool;
}

bool release_pool(int threads, Affinity affinity) {
  if (threads <= 0) threads = hardware_threads();
  PoolCache& c = pool_cache();
  std::shared_ptr<WorkerPool> dropped;
  {
    LockGuard lock(c.mu);
    for (std::size_t i = 0; i < c.entries.size(); ++i) {
      if (c.entries[i].threads == threads &&
          c.entries[i].affinity == affinity) {
        dropped = std::move(c.entries[i].pool);
        c.entries.erase(c.entries.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  return dropped != nullptr;
}

std::size_t release_unused_pools() {
  PoolCache& c = pool_cache();
  std::vector<std::shared_ptr<WorkerPool>> dropped;
  {
    LockGuard lock(c.mu);
    dropped = evict_lru_locked(c, 0);
  }
  return dropped.size();
}

std::size_t pool_cache_size() {
  PoolCache& c = pool_cache();
  LockGuard lock(c.mu);
  return c.entries.size();
}

}  // namespace sf
