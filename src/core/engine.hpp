/// \file
/// \brief Prepared execution: one-time prepare, cheap repeatable execute.
///
/// `sf::Engine` is the process-wide planning service. It owns what used to
/// be re-derived on every `Solver::run()`: the registry view (kernel
/// selection), the plan cache (negotiated ExecutionPlans keyed on the full
/// request), the tuner cache hookup, and the runtime WorkerPool acquisition
/// (built or reused per (threads, affinity), per-worker workspace slabs
/// first-touched on their owners), so parallel stages never pay thread
/// creation or remote-node workspace pages on the execute path.
///
/// \code
///   Engine& eng = Engine::instance();
///   PreparedStencil ps = eng.prepare(preset(Preset::Heat2D),
///                                    {4096, 4096}, {});
///   Grid2D a(4096, 4096, ps.halo()), b(4096, 4096, ps.halo());
///   fill_random(a, 42);
///   ps.run(a, b, 500);          // zero-copy: result lands in `a`
///   ps.run(a, b, 500);          // no re-plan, no allocation
/// \endcode
///
/// A PreparedStencil is an immutable, thread-safe handle: distinct handles
/// — or the same handle with distinct field sets — may run() concurrently
/// from multiple threads. Fields are passed as zero-copy FieldViews
/// (grid/field_view.hpp) over caller-owned memory; run() validates each
/// view against the prepared geometry (extents, halo, alignment, stride,
/// layout) and throws std::invalid_argument on mismatch instead of
/// corrupting memory.
///
/// `sf::Solver` (core/solver.hpp) remains the convenience facade: it owns
/// its grids and drives this layer underneath.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "core/execution_plan.hpp"
#include "grid/grid.hpp"
#include "kernels/registry.hpp"
#include "runtime/worker_pool.hpp"
#include "stencil/presets.hpp"

namespace sf {

/// Problem extents of a prepare request. Unset (0) trailing extents default
/// to the stencil's preset fast-run size, mirroring Solver::size().
struct Extents {
  long nx = 0;  ///< First extent.
  long ny = 0;  ///< Second extent (ignored below 2-D).
  long nz = 0;  ///< Third extent (ignored below 3-D).
};

/// Per-call halo handling of PreparedStencil::run()/advance().
enum class HaloPolicy {
  Sync,   ///< run() mirrors a's Dirichlet halo ring into b before executing
          ///< (the safe default: b's halo may hold anything).
  Clean,  ///< The caller promises b's halo already equals a's (true after
          ///< any prior run()/advance() on the same pair, since kernels
          ///< never write halos) — the O(surface) per-call sync is skipped.
          ///< Streaming advance() loops use this to shave the remaining
          ///< per-call work once the pair is warmed up.
};

/// Execution knobs of a prepare request — the planning-relevant subset of
/// the Solver builder, in one aggregate.
struct ExecOptions {
  Method method = Method::Auto;  ///< Kernel method (Auto = fold cost model).
  Isa isa = Isa::Auto;           ///< ISA level (Auto = widest supported).
  Tiling tiling = Tiling::Auto;  ///< Split-tiling policy.
  int threads = 0;     ///< OpenMP threads for tiled stages (0 = default).
  int tile = 0;        ///< Explicit tile extent (0 = negotiate/tune).
  int time_block = 0;  ///< Explicit time block (0 = negotiate/tune).
  int tsteps = 0;  ///< Planning horizon in time steps (0 = preset default).
                   ///< run() may execute a different horizon; the captured
                   ///< geometry is simply re-clamped by the engine.
  Layout layout = Layout::Natural;
  ///< Resident field layout run()/advance() will accept in addition to
  ///< Layout::Natural. Layout::Natural (the default) keeps the historical
  ///< contract: only natural-layout views are accepted and layout-using
  ///< kernels transform in/out on every call. Requesting the selected
  ///< kernel's preferred layout (PreparedStencil::preferred_layout(),
  ///< Transposed for the "ours" methods) lets callers keep their buffers
  ///< in that layout across an advance() stream — transform once via
  ///< to_resident_layout(), then every call skips the involution.
  ///< prepare() throws when the layout is not the kernel's preference.
  HaloPolicy halo_policy = HaloPolicy::Sync;
  ///< Per-call halo handling; see HaloPolicy.
  Affinity affinity = Affinity::None;
  ///< Worker placement of the tiled stages (runtime/topology.hpp): the
  ///< prepared plan's pool pins its workers per this policy and the
  ///< placement map assigns them tile ranges. Affinity::None (default)
  ///< leaves workers unpinned — results are bitwise identical across
  ///< policies; placement changes locality only. When left at None the
  ///< process-wide `SF_AFFINITY` default applies.
  Pipeline pipeline = Pipeline::Auto;
  ///< Cross-block synchronization of the parallel wedge stages
  ///< (tiling/split_tiling.hpp Pipeline): point-to-point neighbor sync
  ///< (On, the default via Auto) or the historical global stage barriers
  ///< (Off). Results are bitwise identical either way. Auto resolves the
  ///< process-wide `SF_PIPELINE` default at prepare() time, so prepared
  ///< handles are env-immune and the plan cache keys on the effective
  ///< value.
  int levels = 0;
  ///< Tile-tree depth of the plan (core/execution_plan.hpp TileTree):
  ///< 1 keeps the flat one-level plan, 2/3 engage the hierarchical
  ///< LLC/register blocking negotiation, -1 picks the depth from the
  ///< working set vs the LLC (Auto), and 0 (the default) defers to the
  ///< process-wide `SF_TILE_LEVELS` default — resolved at prepare() time,
  ///< so prepared handles are env-immune and the plan cache keys on the
  ///< effective depth. Results are bitwise identical across depths.
  bool validate = true;
  ///< Per-call FieldView validation in run()/advance(). Default on; the
  ///< debug-only escape hatch (`validate = false`, or `SF_VALIDATE=0`
  ///< process-wide) removes the residual O(1) checks from streaming
  ///< advance() loops — combined with HaloPolicy::Clean a call is then
  ///< pure kernel dispatch. Invalid views are undefined behavior once
  ///< validation is off; keep it on everywhere except profiled-clean
  ///< streaming hot loops.
};

/// Immutable, thread-safe handle to one prepared stencil execution: the
/// negotiated kernel, halo, ExecutionPlan and tile geometry, captured once
/// by Engine::prepare(). Copies share the underlying prepared state.
///
/// run()/advance() execute zero-copy on caller-owned buffers. The result
/// always lands in `a`; `b` is same-shaped scratch whose halo run() syncs
/// from `a` (Dirichlet halos are part of the input state, and both
/// ping-pong buffers expose them to the kernels) — unless the handle was
/// prepared with HaloPolicy::Clean. Handles prepared with
/// ExecOptions::layout additionally accept views kept resident in the
/// kernel's preferred layout (see to_resident_layout), skipping the
/// per-call layout transform.
class PreparedStencil {
 public:
  /// An empty handle; valid() is false and run() throws. Assign from
  /// Engine::prepare() to obtain a usable one.
  PreparedStencil() = default;

  /// True when this handle holds prepared state.
  bool valid() const { return st_ != nullptr; }

  /// The stencil this handle was prepared for.
  const StencilSpec& spec() const;
  /// The negotiated kernel's registry entry.
  const KernelInfo& kernel() const;
  /// Minimum halo the field views must be allocated with.
  int halo() const;
  /// The captured execution plan (untiled or split-tiled geometry).
  const ExecutionPlan& plan() const;
  /// Prepared first extent.
  long nx() const;
  /// Prepared second extent (1 below 2-D).
  long ny() const;
  /// Prepared third extent (1 below 3-D).
  long nz() const;
  /// The planning horizon the geometry was negotiated for.
  int tsteps() const;
  /// The memory layout the negotiated kernel keeps field data in between
  /// time steps (KernelInfo::resident_layout at the prepared radius):
  /// Layout::Transposed for the engaged register-transpose kernels,
  /// Layout::Natural otherwise. This is what to_resident_layout() converts
  /// to — independent of whether *this handle* accepts resident views
  /// (that requires ExecOptions::layout, see resident_layout()).
  Layout preferred_layout() const;
  /// The resident layout run()/advance() accepts beyond Layout::Natural —
  /// ExecOptions::layout as validated by prepare(). Natural means this is
  /// a natural-only handle (the historical contract).
  Layout resident_layout() const;
  /// The per-call halo policy this handle was prepared with.
  HaloPolicy halo_policy() const;
  /// The resolved worker placement policy (ExecOptions::affinity after the
  /// SF_AFFINITY default applied).
  Affinity affinity() const;
  /// True when run()/advance() validate views per call (the default).
  bool validates() const;
  /// Stable hash of the *effective* prepare request this handle was built
  /// from (stencil pattern + extents + horizon + every resolved ExecOptions
  /// field). Two handles share a plan key exactly when Engine::prepare
  /// would serve them from one cache entry — same kernel, geometry, pool
  /// and validation behavior — so requests with equal keys are safely
  /// batchable through advance_batch(). This is the key the serving
  /// batcher (serving/server.hpp) groups submissions by.
  std::uint64_t plan_key() const;
  /// The persistent worker pool the tiled stages execute on — shared per
  /// (threads, affinity) configuration and reused across prepare() calls —
  /// or nullptr for untiled/serial plans. Exposed for introspection and
  /// tests; the pool is owned by the runtime registry (shared_pool), not
  /// by this handle.
  const WorkerPool* pool() const;

  /// First-touch initialization: zeroes `v`'s buffer with each pool worker
  /// writing exactly the rows/planes of the wedge tiles the placement plan
  /// assigns it (plus the adjacent boundary halo at the domain ends), so
  /// under Linux's first-touch policy every worker's tiles land on its own
  /// NUMA node. Call it on freshly allocated, never-written memory —
  /// first touch is decided by the *first* write, so a buffer that was
  /// already zeroed serially gains nothing. Serial/untiled preparations
  /// (and Affinity::None pools) zero the buffer on the calling thread.
  void first_touch(FieldView1D v) const;
  /// 2-D overload of first_touch().
  void first_touch(FieldView2D v) const;
  /// 3-D overload of first_touch().
  void first_touch(FieldView3D v) const;

  /// Executes `tsteps` steps on a 1-D source-free stencil; result in `a`.
  /// Throws std::invalid_argument on view/shape mismatch.
  void run(FieldView1D a, FieldView1D b, int tsteps) const;
  /// 1-D run with the APOP time-invariant source array `k`.
  void run(FieldView1D a, FieldView1D b, FieldView1D k, int tsteps) const;
  /// 2-D run; result in `a`.
  void run(FieldView2D a, FieldView2D b, int tsteps) const;
  /// 3-D run; result in `a`.
  void run(FieldView3D a, FieldView3D b, int tsteps) const;

  /// Streaming entry point: advances the fields `nsteps` further steps.
  /// Identical semantics to run() (result in `a` after every call), named
  /// separately so step-wise callers express intent; repeated small
  /// advances are valid because no per-call planning or allocation occurs.
  void advance(FieldView1D a, FieldView1D b, int nsteps) const;
  /// 1-D streaming advance with the APOP source array `k`.
  void advance(FieldView1D a, FieldView1D b, FieldView1D k, int nsteps) const;
  /// 2-D streaming advance.
  void advance(FieldView2D a, FieldView2D b, int nsteps) const;
  /// 3-D streaming advance.
  void advance(FieldView3D a, FieldView3D b, int nsteps) const;

  /// Batched streaming advance: advances every item of `items` by `nsteps`
  /// steps with *one* pool dispatch (tiling/split_tiling.hpp
  /// run_tile_plan_batch) instead of one per item — the serving batcher's
  /// execution primitive, amortizing dispatch and barrier cost across N
  /// same-plan small grids. Per-item semantics are exactly advance(): each
  /// item is validated (unless prepared with validate off), halo-synced per
  /// the prepared HaloPolicy, and its result lands in its `a`; results are
  /// bitwise identical to sequential advance() calls. Items must all match
  /// this handle's prepared geometry, and buffers of distinct items must be
  /// pairwise disjoint (not cross-checked — each item's views are validated
  /// individually). A 1-D prepared stencil with a source term reads each
  /// item's own `k` view.
  void advance_batch(const std::vector<TileBatch1D>& items, int nsteps) const;
  /// 2-D overload of advance_batch().
  void advance_batch(const std::vector<TileBatch2D>& items, int nsteps) const;
  /// 3-D overload of advance_batch().
  void advance_batch(const std::vector<TileBatch3D>& items, int nsteps) const;

  /// Validates a 1-D view pair (plus optional source array) against the
  /// prepared geometry exactly as run() does — unconditionally, even on
  /// handles prepared with validation off. Throws std::invalid_argument on
  /// mismatch. The serving front end calls this at submit time so a bad
  /// request is rejected on the client thread instead of poisoning a batch.
  void validate_views(FieldView1D a, FieldView1D b,
                      const FieldView1D* k = nullptr) const;
  /// 2-D overload of validate_views().
  void validate_views(FieldView2D a, FieldView2D b) const;
  /// 3-D overload of validate_views().
  void validate_views(FieldView3D a, FieldView3D b) const;

 private:
  friend class Engine;
  struct State;
  explicit PreparedStencil(std::shared_ptr<const State> st)
      : st_(std::move(st)) {}

  std::shared_ptr<const State> st_;
};

/// Process-wide prepared-execution service. prepare() performs the one-time
/// work — kernel selection, halo and resident-layout negotiation,
/// plan/tune-cache consultation, worker-pool build-or-reuse with
/// first-touch workspace initialization — and hands back an
/// immutable PreparedStencil. Identical requests (same stencil, extents
/// and options) return a shared cached preparation; a preparation whose
/// plan consulted the tuner stays cached exactly while its *own* TuneCache
/// lookup is unchanged (per-key invalidation — tuning one configuration
/// never evicts unrelated prepared handles). Thread-safe.
class Engine {
 public:
  /// The process-wide engine.
  static Engine& instance();

  /// Prepares one stencil execution. Unset extents/horizon default to the
  /// spec's preset fast-run values. Throws std::invalid_argument when no
  /// kernel is registered for the requested (method, dims, ISA).
  PreparedStencil prepare(const StencilSpec& spec, Extents ext = {},
                          const ExecOptions& opts = {});
  /// Preset convenience overload of prepare().
  PreparedStencil prepare(Preset p, Extents ext = {},
                          const ExecOptions& opts = {});

  /// Concurrency-friendly prepare() for multi-tenant callers: concurrent
  /// prepare_shared() calls for the *same* effective request coalesce — one
  /// caller builds the preparation while the others wait and are then
  /// served the identical cached state, instead of every tenant paying the
  /// planning (and possibly pool-construction) cost in parallel and racing
  /// to insert duplicates. Distinct requests build concurrently; semantics
  /// are otherwise exactly prepare(). This is what the serving front end
  /// prepares tenant plans through.
  PreparedStencil prepare_shared(const StencilSpec& spec, Extents ext = {},
                                 const ExecOptions& opts = {});
  /// Preset convenience overload of prepare_shared().
  PreparedStencil prepare_shared(Preset p, Extents ext = {},
                                 const ExecOptions& opts = {});

  /// The plan key prepare() would assign this request: the stable hash of
  /// the effective request after environment defaults (SF_AFFINITY,
  /// SF_THREADS, SF_VALIDATE) and preset extent/horizon fallbacks are
  /// resolved — the same value PreparedStencil::plan_key() reports on the
  /// resulting handle. Lets a batcher group requests before preparing.
  std::uint64_t plan_key(const StencilSpec& spec, Extents ext = {},
                         const ExecOptions& opts = {}) const;

  /// Number of distinct preparations currently cached.
  std::size_t plan_cache_size() const;
  /// prepare() calls served from the cache over this engine's lifetime.
  long plan_cache_hits() const;

  /// Ensures the process-wide WorkerPool for `threads` workers (0 = the
  /// hardware thread count) at Affinity::None exists, so the first tiled
  /// run() does not pay thread creation. prepare() acquires the matching
  /// pool automatically for tiled plans (including pinned ones); this
  /// remains for callers that want to pre-warm before preparing.
  void warm_pool(int threads = 0);

 private:
  Engine() = default;

  struct CacheEntry;

  mutable Mutex mu_;
  std::vector<CacheEntry> cache_ SF_GUARDED_BY(mu_);
  long hits_ SF_GUARDED_BY(mu_) = 0;

  // prepare_shared() build coalescing: plan keys currently being built.
  Mutex share_mu_;
  CondVar share_cv_;
  std::unordered_set<std::uint64_t> building_ SF_GUARDED_BY(share_mu_);
};

/// Transforms `v`'s buffer in place into `ps`'s preferred resident layout
/// and returns the view re-tagged with it. The one-time counterpart of the
/// per-call involution: pay it once, then stream transposed-tagged views
/// through a handle prepared with ExecOptions::layout and every
/// run()/advance() skips the transform. Halo rows/planes are transformed
/// along with the interior (kernels read y/z-neighbours of boundary rows
/// through layout-aware accessors). No-op when the preferred layout is
/// Natural or `v` is already tagged with it; throws std::invalid_argument
/// for views tagged with any other layout.
FieldView1D to_resident_layout(const PreparedStencil& ps, FieldView1D v);
/// 2-D overload of to_resident_layout().
FieldView2D to_resident_layout(const PreparedStencil& ps, FieldView2D v);
/// 3-D overload of to_resident_layout().
FieldView3D to_resident_layout(const PreparedStencil& ps, FieldView3D v);

/// Inverse of to_resident_layout(): transforms a resident-tagged view's
/// buffer back to natural order (the transpose layout is an involution) and
/// returns it re-tagged Layout::Natural. No-op on natural-tagged views.
FieldView1D to_natural_layout(const PreparedStencil& ps, FieldView1D v);
/// 2-D overload of to_natural_layout().
FieldView2D to_natural_layout(const PreparedStencil& ps, FieldView2D v);
/// 3-D overload of to_natural_layout().
FieldView3D to_natural_layout(const PreparedStencil& ps, FieldView3D v);

/// Useful FLOPs per time step for a stencil at the given size.
double flops_per_step(const StencilSpec& spec, long nx, long ny, long nz);

/// The method Auto resolves to for this stencil at this ISA: the deepest
/// profitable fold (paper Eq. 3) whose vector path engages at the pattern's
/// radius, falling back through the paper's method ordering.
Method auto_method(const StencilSpec& spec, Isa isa);

}  // namespace sf
