/// \file
/// \brief The planning layer between the Solver facade and the executors.
///
/// `Solver::run` no longer hard-codes "tiled or not": it builds a
/// PlanRequest (selected kernel, extents, horizon, the user's
/// tiling/threads/tile/time_block knobs) and asks plan_execution() for an
/// ExecutionPlan. The plan says whether the temporal split-tiling multicore
/// path (paper §3.4, the Fig. 9 configuration) runs, and with which
/// concrete tile/time_block/threads geometry — negotiated from the wedge
/// heuristics, recalled from the tuner cache, or (after a measuring run)
/// tuned.
///
/// Deciding tiled-vs-untiled under Tiling::Auto is a cost model:
///  1. the selected kernel must declare an engaging tiled stage
///     (KernelInfo::tileable via tiled_path_engages);
///  2. the horizon must cover at least two folded super-steps — shorter
///     runs never amortize a stage barrier;
///  3. the negotiated wedge geometry must actually block (disjoint wedges,
///     see negotiate_wedge);
///  4. the working set must be worth it: at least SF_TILE_MIN_BYTES when
///     multiple threads are available (parallel wedges win on anything
///     sizable because the untiled executors are serial), or larger than
///     the last-level cache in the single-threaded case (where split tiling
///     is purely a cache-blocking play, paper Fig. 8).
#pragma once

#include "kernels/registry.hpp"
#include "stencil/presets.hpp"
#include "tiling/split_tiling.hpp"

namespace sf {

/// The Solver's tiling policy knob.
enum class Tiling {
  Auto,  ///< Tile when the cost model above predicts a win (default).
  On,    ///< Always tile when a tiled stage engages (the Fig. 9 setup).
  Off,   ///< Never tile; always run the untiled kernel.
};

/// Where an ExecutionPlan's tile geometry came from.
enum class PlanSource {
  Untiled,    ///< No tiling: geometry fields are meaningless.
  Heuristic,  ///< negotiate_wedge() defaults (or explicit user overrides).
  Cached,     ///< Recalled from the TuneCache (this process or SF_TUNE_CACHE).
  Tuned,      ///< Measured by this Solver's auto-tuning run just now.
};

/// Display name of a PlanSource ("untiled", "heuristic", "cached", "tuned").
const char* plan_source_name(PlanSource s);

/// One level of the hierarchical tile tree: the extent tiles have along the
/// tessellated axis at this level, plus the child levels that subdivide each
/// such tile. The tree is a degenerate chain (every level has at most one
/// child describing the next-finer blocking), mirroring the recursive
/// child-tiles design of mv::Tiling: a node's extent divides work, its
/// children say how one share is blocked further.
///
/// Levels, outermost first:
///  1. worker shard — the contiguous run of wedge tiles one pool worker
///     owns (PlacementPlan ownership; the unit a NUMA node, and one day a
///     multi-process distributor, holds);
///  2. L3 tile — the wedge tile extent, capped so one tile's ping-pong
///     working set fits a NUMA node's per-worker LLC share;
///  3. register block — the kernel's vector/fold quantum
///     (KernelInfo::reg_block), the granule level 2 is rounded to.
///
/// A flat plan is the degenerate one-level tree: a single node whose extent
/// is the wedge tile. The wedge scheduler walks this structure implicitly —
/// the outer level is its per-worker owned-tile loop, the leaf is one wedge
/// — so tree and flat plans execute the identical wedge set and results are
/// bitwise independent of the depth.
struct TileTree {
  int axis = 0;    ///< Tessellated dimension: 0 = x (1-D), 1 = y, 2 = z.
  int extent = 0;  ///< Nominal tile extent along `axis` at this level (the
                   ///< last tile of a level may be ragged, and worker
                   ///< shards may differ by one wedge tile).
  std::vector<TileTree> children;  ///< Next-finer level; empty at the leaf.

  /// Number of levels of this (chain-shaped) tree; 1 for a flat plan.
  int depth() const {
    return children.empty() ? 1 : 1 + children.front().depth();
  }
  /// True when this is the degenerate one-level (flat) tree.
  bool flat() const { return children.empty(); }
};

/// Everything plan_execution() needs to decide how a run executes.
struct PlanRequest {
  const StencilSpec* spec = nullptr;    ///< The stencil being solved.
  const KernelInfo* kernel = nullptr;   ///< Kernel selected by the Solver.
  long nx = 0;                          ///< Resolved extents.
  long ny = 1;                          ///< Second extent (1 below 2-D).
  long nz = 1;                          ///< Third extent (1 below 3-D).
  int tsteps = 0;                       ///< Resolved time-step horizon.
  Tiling tiling = Tiling::Auto;         ///< The user's tiling policy.
  int threads = 0;     ///< Requested pool workers (0 = hardware threads).
  int tile = 0;        ///< Explicit tile extent (0 = negotiate/tune).
  int time_block = 0;  ///< Explicit time block (0 = negotiate/tune).
  Affinity affinity = Affinity::None;  ///< Worker placement policy (the
                                       ///< Engine resolves SF_AFFINITY
                                       ///< before building the request).
  Pipeline pipeline = Pipeline::Auto;  ///< Wedge-stage synchronization
                                       ///< (the Engine resolves SF_PIPELINE
                                       ///< before building the request;
                                       ///< Auto defers to run time).
  int levels = 1;  ///< Requested tile-tree depth (1 = flat, 2 = + LLC
                   ///< mid level, 3 = + register-block leaf). The Engine
                   ///< resolves ExecOptions::levels / SF_TILE_LEVELS /
                   ///< the Auto working-set heuristic before building the
                   ///< request; plan_execution clamps to what actually
                   ///< engages (ExecutionPlan::tree reports the result).
};

/// How one Solver run will execute: untiled kernel call, or the split-tiled
/// wedge schedule with this concrete geometry.
struct ExecutionPlan {
  const KernelInfo* kernel = nullptr;  ///< The kernel that will execute.
  bool tiled = false;                  ///< Split-tiled engine execution?
  bool blocked = false;  ///< Within a tiled plan: true when wedges stay
                         ///< disjoint at this geometry; false means the
                         ///< engine will run unblocked full sweeps (still
                         ///< correct — Tiling::On on a domain too small to
                         ///< block — and the tuner has nothing to measure).
  TilePlan tile;  ///< Concrete geometry when tiled (method/isa stamped from
                  ///< the kernel; tile/time_block/threads all non-zero).
  PlacementPlan placement;  ///< Which pool worker owns which run of wedge
                            ///< tiles, negotiated alongside tile/time_block
                            ///< for blocked parallel plans (workers == 0
                            ///< otherwise). The tiling engine recomputes
                            ///< the identical map (balanced_placement), so
                            ///< what executes is what this reports; the
                            ///< Engine's first-touch initialization walks
                            ///< it so a worker's tiles live on its node.
  PlanSource source = PlanSource::Untiled;  ///< Provenance of the geometry.
  TileTree tree;  ///< The hierarchical blocking of a tiled plan, outermost
                  ///< level first (see TileTree). Flat plans carry the
                  ///< degenerate one-level tree whose extent is the wedge
                  ///< tile; engaged multi-level plans additionally report
                  ///< the worker-shard and register-block levels. Untiled
                  ///< plans leave it empty (extent 0).
};

/// The largest radius the selected kernel must read with: the stencil's own
/// pattern radius, widened by the 1-D source term's where one exists (APOP).
int effective_radius(const StencilSpec& spec);

/// Bytes the ping-pong grid pair occupies (2 * 8 bytes per point, halos
/// excluded) — the working set the Tiling::Auto cost model reasons about.
long working_set_bytes(long nx, long ny, long nz);

/// The Tiling::Auto cost model in isolation: true when plan_execution()
/// would tile this request had the policy been Auto. Exposed for tests and
/// for harnesses that want to report the decision.
bool tiling_profitable(const PlanRequest& req);

/// The wedge geometry negotiate_wedge() settles on for this request
/// (explicit tile/time_block/threads respected; slope, tiled extent and
/// slice bytes derived from the spec exactly as plan_execution does).
/// Exposed so the Solver's tuning pass measures candidates with the same
/// geometry the planner would deploy — one derivation, no drift.
WedgeGeometry plan_geometry(const PlanRequest& req);

/// Builds the execution plan for one run. With Tiling::Off (or a kernel
/// whose tiled stage cannot engage) the plan is untiled. Otherwise the
/// geometry is resolved in priority order: explicit user tile/time_block,
/// then a TuneCache hit, then the negotiate_wedge() heuristics. The
/// measuring pass that *fills* the cache lives in Solver::run (it needs
/// allocated grids); plan_execution only ever reads the cache.
ExecutionPlan plan_execution(const PlanRequest& req);

}  // namespace sf
