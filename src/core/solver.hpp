/// \file
/// \brief The public entry point: a dimension-generic, builder-style facade
/// over the kernel registry and the execution planner.
///
/// \code
///   RunResult r = Solver::make(Preset::Heat2D)
///                     .size(4096, 4096)
///                     .steps(500)
///                     .method("ours-2step")   // or Method::Auto (default)
///                     .isa(Isa::Auto)
///                     .tiling(Tiling::On)     // split tiling (Fig. 9 path)
///                     .threads(8)             // 0 = OpenMP default
///                     .run();
/// \endcode
///
/// The Solver is a thin convenience facade over the prepared-execution
/// layer (core/engine.hpp): resolve() asks the process-wide Engine to
/// prepare the run — kernel selection through the registry (fold cost model
/// when the method is Auto), halo negotiation
/// (KernelInfo::required_halo), and the ExecutionPlan that decides untiled
/// vs. split-tiled execution with its concrete tile/time_block/threads
/// geometry (core/execution_plan.hpp) — and run() executes the resulting
/// PreparedStencil on the Solver-owned Workspace grids. With `tune(true)`
/// (or `SF_TUNE=1`) the first run of a configuration measures a handful of
/// candidate tile extents and caches the winner (core/tuner.hpp), so later
/// runs — and later processes when `SF_TUNE_CACHE` is set — plan for free.
/// Callers who own their buffers use Engine::prepare directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/cpu.hpp"
#include "core/engine.hpp"
#include "core/execution_plan.hpp"
#include "grid/grid.hpp"
#include "kernels/registry.hpp"
#include "stencil/presets.hpp"

namespace sf {

/// The grids a Solver runs on. One (a, b) ping-pong pair of the problem's
/// dimensionality is allocated with the halo negotiated from the selected
/// kernel's capability; `k` is the 1-D time-invariant source array (APOP),
/// and (ra, rb) are the naive-reference pair allocated only for verified
/// runs. Allocations persist across run() calls and are re-made only when
/// the shape or halo changes. After run(), `a*` of the active
/// dimensionality holds the final state.
struct Workspace {
  int dims = 0;           ///< Active dimensionality (0 = nothing allocated).
  int halo = 0;           ///< Halo the grids were allocated with.
  long nx = 0;            ///< Extents the grids were allocated for.
  long ny = 0;            ///< Second extent.
  long nz = 0;            ///< Third extent.
  Affinity affinity = Affinity::None;
  ///< Placement policy the grids were first-touched under; changing the
  ///< Solver's affinity reallocates so the pages are placed afresh.

  std::optional<Grid1D> a1;   ///< 1-D result grid.
  std::optional<Grid1D> b1;   ///< 1-D scratch grid.
  std::optional<Grid1D> k1;   ///< 1-D time-invariant source array (APOP).
  std::optional<Grid1D> ra1;  ///< 1-D reference grid (verified runs).
  std::optional<Grid1D> rb1;  ///< 1-D reference scratch.
  std::optional<Grid2D> a2;   ///< 2-D result grid.
  std::optional<Grid2D> b2;   ///< 2-D scratch grid.
  std::optional<Grid2D> ra2;  ///< 2-D reference grid.
  std::optional<Grid2D> rb2;  ///< 2-D reference scratch.
  std::optional<Grid3D> a3;   ///< 3-D result grid.
  std::optional<Grid3D> b3;   ///< 3-D scratch grid.
  std::optional<Grid3D> ra3;  ///< 3-D reference grid.
  std::optional<Grid3D> rb3;  ///< 3-D reference scratch.
};

/// Timing/throughput/accuracy results of one Solver run.
struct RunResult {
  double seconds = 0;     ///< Wall time of the timed kernel execution.
  double gflops = 0;      ///< Useful flops: taps-based, identical across
                          ///< methods.
  double max_error = -1;  ///< Vs naive reference, if verification requested
                          ///< (negative = not verified).
  long points = 0;        ///< Grid points per time step.
  int tsteps = 0;         ///< Time steps executed.
};

/// Builder-style facade over the Engine's prepared-execution layer.
class Solver {
 public:
  /// Starts a builder chain for one of the paper's Table-1 presets.
  static Solver make(Preset p) { return Solver(preset(p)); }
  /// Starts a builder chain for an arbitrary stencil specification.
  static Solver make(const StencilSpec& spec) { return Solver(spec); }

  /// Copying a Solver copies its *specification* (stencil, size, method,
  /// ...) but not the workspace grids: the copy starts with an empty
  /// workspace and allocates on its first run. The prepared handle is
  /// shared — preparations are immutable. This keeps builder chains
  /// assignable (`Solver s = Solver::make(p).method(...).steps(...);`).
  Solver(const Solver& o)
      : cfg_(o.cfg_), prepared_(o.prepared_), selected_(o.selected_),
        halo_(o.halo_), plan_(o.plan_) {}
  /// Specification-copying assignment; see the copy constructor.
  Solver& operator=(const Solver& o) {
    if (this != &o) {
      cfg_ = o.cfg_;
      prepared_ = o.prepared_;
      selected_ = o.selected_;
      halo_ = o.halo_;
      plan_ = o.plan_;
      ws_ = Workspace{};
    }
    return *this;
  }

  // ---- builder ----------------------------------------------------------
  /// Problem extents; trailing dimensions are ignored below spec.dims.
  /// Unset (0) extents default to the preset's fast-run size.
  Solver& size(long nx, long ny = 0, long nz = 0);
  /// Time-step horizon (0 = the preset's fast-run default).
  Solver& steps(int tsteps);
  /// Vectorization/folding method (Method::Auto = fold cost model).
  Solver& method(Method m);
  /// Method by registry string key ("auto" included).
  Solver& method(const std::string& name);
  /// ISA level (Isa::Auto = widest the CPU supports).
  Solver& isa(Isa v);
  /// Tiling policy: Auto (cost model, the default), On (always tile when
  /// the kernel's tiled stage engages — the paper's Fig. 9 configuration),
  /// or Off.
  Solver& tiling(Tiling mode);
  /// Pool workers for the tiled stages (0 = hardware threads, or
  /// `SF_THREADS` when set). Part of the tuner cache key.
  Solver& threads(int n);
  /// Worker placement policy of the tiled stages (runtime/topology.hpp):
  /// Affinity::None (default — unpinned, the historical behavior; the
  /// `SF_AFFINITY` env default applies), Compact (pack adjacent cores) or
  /// Scatter (spread across NUMA nodes). Results are bitwise identical
  /// across policies; with a non-None policy the workspace grids are also
  /// allocated first-touch: each pinned worker touches its own tiles'
  /// pages, so they land on its NUMA node.
  Solver& affinity(Affinity a);
  /// Cross-block synchronization of the parallel wedge stages: Pipeline::On
  /// (point-to-point neighbor sync, the default via Auto and `SF_PIPELINE`)
  /// or Pipeline::Off (the historical global stage barriers). Results are
  /// bitwise identical either way; Off keeps the barrier schedule
  /// selectable for comparison benchmarks.
  Solver& pipeline(Pipeline p);
  /// Tile-tree depth of the plan (core/execution_plan.hpp TileTree): 1 =
  /// flat (the historical plan), 2/3 = hierarchical LLC/register blocking,
  /// -1 = Auto (depth from working set vs LLC), 0 (the default) = the
  /// process-wide `SF_TILE_LEVELS` default. Results are bitwise identical
  /// across depths; only cache locality changes.
  Solver& levels(int depth);
  /// Explicit tile extent along the tiled dimension (0 = negotiate/tune).
  Solver& tile(int extent);
  /// Explicit time steps per block (0 = negotiate/tune).
  Solver& time_block(int steps);
  /// Enables the measure-once auto-tuner for this Solver's tiled runs
  /// (equivalent to SF_TUNE=1 process-wide). The first run of a
  /// configuration measures candidate tile extents; the result is cached in
  /// the process-wide TuneCache (and in SF_TUNE_CACHE when set).
  Solver& tune(bool on = true);
  /// Opt-in resident-layout execution: when the selected kernel keeps data
  /// in a transformed layout (PreparedStencil::preferred_layout(), e.g.
  /// Layout::Transposed for the "ours" methods), run() transforms the
  /// workspace grids into that layout once, executes resident — skipping
  /// the kernel's per-call transform in and out — and transforms back
  /// after timing. Results are bitwise identical to the default path (the
  /// same transforms and kernel steps happen, just hoisted out of the
  /// timed per-call loop); the default (off) leaves existing figures
  /// untouched. No-op for kernels that prefer natural layout.
  Solver& resident_layout(bool on = true);
  /// Seed of the deterministic random initial condition.
  Solver& seed(std::uint64_t s);

  /// \deprecated Use tiling(Tiling::On) / tiling(Tiling::Off).
  Solver& tiled(bool on = true) {
    return tiling(on ? Tiling::On : Tiling::Off);
  }
  /// \deprecated Use tiling(Tiling::On) plus tile()/time_block()/threads().
  /// The plan's method/ISA always follow the Solver-selected kernel, so
  /// `opts.method`/`opts.isa` are ignored.
  Solver& tiled(const TilePlan& opts) {
    tile(opts.tile);
    time_block(opts.time_block);
    threads(opts.threads);
    return tiling(Tiling::On);
  }

  // ---- resolved view ----------------------------------------------------
  /// The stencil being solved.
  const StencilSpec& spec() const { return cfg_.spec; }
  /// Prepares the run through the process-wide Engine: selects the kernel
  /// (resolving Method::Auto via the cost model), fills defaulted
  /// sizes/steps, and captures the execution plan in a PreparedStencil.
  /// Throws std::invalid_argument if no kernel is registered for the
  /// request. Idempotent.
  Solver& resolve();
  /// The Engine-prepared handle this Solver executes through; resolves
  /// first. Useful for migrating to caller-owned buffers: the same handle
  /// can run() on any conforming FieldViews.
  const PreparedStencil& prepared() { return resolve().prepared_; }
  /// The selected kernel's registry entry; resolves first.
  const KernelInfo& kernel();
  /// Negotiated workspace halo; resolves first.
  int halo();
  /// How the next run() will execute: untiled or split-tiled, with the
  /// concrete tile/time_block/threads geometry and its provenance
  /// (heuristic, tuner-cached, or tuned). Resolves first. A tuning run
  /// upgrades the stored plan, so calling this after run() reports the
  /// geometry that actually executed.
  const ExecutionPlan& plan() { return resolve().plan_; }
  /// Resolved x extent.
  long nx() { return resolve().cfg_.nx; }
  /// Resolved y extent (1 below 2-D).
  long ny() { return resolve().cfg_.ny; }
  /// Resolved z extent (1 below 3-D).
  long nz() { return resolve().cfg_.nz; }
  /// Resolved time-step horizon.
  int tsteps() { return resolve().cfg_.tsteps; }

  // ---- execution --------------------------------------------------------
  /// One timed run; result grids live in the Solver-owned workspace.
  RunResult run() { return run_impl(false); }
  /// One timed run *plus* an untimed naive-reference run on identical
  /// inputs; fills RunResult::max_error. The measured kernel executes
  /// exactly once (its own output is what gets verified).
  RunResult run_verified() { return run_impl(true); }

  /// The Solver-owned grids; populated by run()/run_verified().
  const Workspace& workspace() const { return ws_; }

 private:
  /// The whole problem specification in one copyable bundle, so Solver's
  /// copy operations cannot silently miss a future builder field.
  struct Config {
    StencilSpec spec;
    Method method = Method::Auto;
    Isa isa = Isa::Auto;
    long nx = 0, ny = 0, nz = 0;
    int tsteps = 0;
    Tiling tiling = Tiling::Auto;
    int threads = 0;
    int tile = 0;
    int time_block = 0;
    Affinity affinity = Affinity::None;
    Pipeline pipeline = Pipeline::Auto;
    int levels = 0;
    bool tune = false;
    bool resident = false;
    std::uint64_t seed = 42;
  };

  explicit Solver(const StencilSpec& spec) { cfg_.spec = spec; }
  RunResult run_impl(bool verify);
  /// The planner request for the current configuration (requires a
  /// selected kernel). Built in one place so resolve() and the tuning pass
  /// can never disagree on the request fields.
  PlanRequest plan_request() const;
  /// The Engine prepare options for the current configuration.
  ExecOptions exec_options() const;
  /// The measure-once auto-tuning pass: when enabled and the plan is a
  /// blocked heuristic one, probes candidates on (a, b) along staged axes
  /// in sequence — leaf (register-block) granules first for tree plans,
  /// then tile extents (heuristic block height as the probe seed),
  /// then (tile × time_block) pairs around the winner, then candidate
  /// thread counts {resolved, resolved/2, cores-per-node} — records the
  /// winner in the TuneCache, re-prepares through the Engine (which now
  /// recalls the tuned geometry), upgrades plan_ to the winner
  /// (source = Tuned), and restores `a`'s initial state. No-op otherwise.
  template <int D, class P, class G>
  void tune_pass(const P& p, G& a, G& b, const Pattern1D* src,
                 const FieldView1D* kk);

  Config cfg_;
  PreparedStencil prepared_;              // set by resolve()
  const KernelInfo* selected_ = nullptr;  // mirrors prepared_ for accessors
  int halo_ = 0;
  ExecutionPlan plan_;  // prepared_'s plan, upgraded in place by tune_pass
  Workspace ws_;
};

}  // namespace sf
