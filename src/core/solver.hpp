// The public entry point: a dimension-generic, builder-style facade over
// the kernel registry.
//
//   RunResult r = Solver::make(Preset::Heat2D)
//                     .size(4096, 4096)
//                     .steps(500)
//                     .method("ours-2step")   // or Method::Auto (default)
//                     .isa(Isa::Auto)
//                     .tiled(true)
//                     .run();
//
// The Solver owns a Workspace (grids + scratch) whose halo is negotiated
// from the selected kernel's capability (KernelInfo::required_halo), picks
// the kernel through the registry — driven by the fold cost model when the
// method is Auto — and runs one code path for 1-D/2-D/3-D where the old
// run_problem/run_verified pair kept three hand-written switches.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/cpu.hpp"
#include "grid/grid.hpp"
#include "kernels/registry.hpp"
#include "stencil/presets.hpp"
#include "tiling/split_tiling.hpp"

namespace sf {

/// The grids a Solver runs on. One (a, b) ping-pong pair of the problem's
/// dimensionality is allocated with the halo negotiated from the selected
/// kernel's capability; `k` is the 1-D time-invariant source array (APOP),
/// and (ra, rb) are the naive-reference pair allocated only for verified
/// runs. Allocations persist across run() calls and are re-made only when
/// the shape or halo changes. After run(), `a*` of the active
/// dimensionality holds the final state.
struct Workspace {
  int dims = 0;
  int halo = 0;
  long nx = 0, ny = 0, nz = 0;

  std::optional<Grid1D> a1, b1, k1, ra1, rb1;
  std::optional<Grid2D> a2, b2, ra2, rb2;
  std::optional<Grid3D> a3, b3, ra3, rb3;
};

struct RunResult {
  double seconds = 0;
  double gflops = 0;      // useful flops: taps-based, identical across methods
  double max_error = -1;  // vs naive reference, if verification requested
  long points = 0;
  int tsteps = 0;
};

/// Useful FLOPs per time step for a stencil at the given size.
double flops_per_step(const StencilSpec& spec, long nx, long ny, long nz);

/// The method Auto resolves to for this stencil at this ISA: the deepest
/// profitable fold (paper Eq. 3) whose vector path engages at the pattern's
/// radius, falling back through the paper's method ordering.
Method auto_method(const StencilSpec& spec, Isa isa);

class Solver {
 public:
  static Solver make(Preset p) { return Solver(preset(p)); }
  static Solver make(const StencilSpec& spec) { return Solver(spec); }

  /// Copying a Solver copies its *specification* (stencil, size, method,
  /// ...) but not the workspace grids: the copy starts with an empty
  /// workspace and allocates on its first run. This keeps builder chains
  /// assignable (`Solver s = Solver::make(p).method(...).steps(...);`).
  Solver(const Solver& o)
      : cfg_(o.cfg_), selected_(o.selected_), halo_(o.halo_) {}
  Solver& operator=(const Solver& o) {
    if (this != &o) {
      cfg_ = o.cfg_;
      selected_ = o.selected_;
      halo_ = o.halo_;
      ws_ = Workspace{};
    }
    return *this;
  }

  // ---- builder ----------------------------------------------------------
  /// Problem extents; trailing dimensions are ignored below spec.dims.
  /// Unset (0) extents default to the preset's fast-run size.
  Solver& size(long nx, long ny = 0, long nz = 0);
  Solver& steps(int tsteps);
  Solver& method(Method m);
  Solver& method(const std::string& name);  // string key, "auto" included
  Solver& isa(Isa v);
  Solver& tiled(bool on = true);
  Solver& tiled(const TiledOptions& opts);  // implies tiled(true)
  Solver& seed(std::uint64_t s);

  // ---- resolved view ----------------------------------------------------
  const StencilSpec& spec() const { return cfg_.spec; }
  /// Selects the kernel (resolving Method::Auto via the cost model) and
  /// fills defaulted sizes/steps. Throws std::invalid_argument if no kernel
  /// is registered for the request. Idempotent.
  Solver& resolve();
  const KernelInfo& kernel();  // resolves first
  int halo();                  // negotiated workspace halo; resolves first
  long nx() { return resolve().cfg_.nx; }
  long ny() { return resolve().cfg_.ny; }
  long nz() { return resolve().cfg_.nz; }
  int tsteps() { return resolve().cfg_.tsteps; }

  // ---- execution --------------------------------------------------------
  /// One timed run; result grids live in the Solver-owned workspace.
  RunResult run() { return run_impl(false); }
  /// One timed run *plus* an untimed naive-reference run on identical
  /// inputs; fills RunResult::max_error. The measured kernel executes
  /// exactly once (its own output is what gets verified).
  RunResult run_verified() { return run_impl(true); }

  /// The Solver-owned grids; populated by run()/run_verified().
  const Workspace& workspace() const { return ws_; }

 private:
  /// The whole problem specification in one copyable bundle, so Solver's
  /// copy operations cannot silently miss a future builder field.
  struct Config {
    StencilSpec spec;
    Method method = Method::Auto;
    Isa isa = Isa::Auto;
    long nx = 0, ny = 0, nz = 0;
    int tsteps = 0;
    bool tiled = false;
    TiledOptions tile_opts{};
    std::uint64_t seed = 42;
  };

  explicit Solver(const StencilSpec& spec) { cfg_.spec = spec; }
  RunResult run_impl(bool verify);

  Config cfg_;
  const KernelInfo* selected_ = nullptr;  // set by resolve()
  int halo_ = 0;
  Workspace ws_;
};

}  // namespace sf
