#include "core/solver.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "common/timing.hpp"
#include "core/tuner.hpp"
#include "grid/grid_utils.hpp"
#include "stencil/reference.hpp"
#include "telemetry/telemetry.hpp"
#include "tiling/split_tiling.hpp"

namespace sf {

namespace {

/// The one dimensionality switch of the whole facade: every other piece of
/// the run path is written once, generically, against D.
template <class F>
decltype(auto) dispatch_dims(int dims, F&& f) {
  switch (dims) {
    case 1: return f(std::integral_constant<int, 1>{});
    case 2: return f(std::integral_constant<int, 2>{});
    case 3: return f(std::integral_constant<int, 3>{});
    default: throw std::logic_error("bad dims");
  }
}

template <int D>
auto make_grid(long nx, long ny, long nz, int halo, bool zero_init = true) {
  if constexpr (D == 1)
    return Grid1D(static_cast<int>(nx), halo, zero_init);
  else if constexpr (D == 2)
    return Grid2D(static_cast<int>(ny), static_cast<int>(nx), halo,
                  zero_init);
  else
    return Grid3D(static_cast<int>(nz), static_cast<int>(ny),
                  static_cast<int>(nx), halo, zero_init);
}

template <int D>
const auto& pattern_of(const StencilSpec& s) {
  if constexpr (D == 1)
    return s.p1;
  else if constexpr (D == 2)
    return s.p2;
  else
    return s.p3;
}

// Per-dimension slots of the Workspace.
template <int D>
auto& ws_a(Workspace& w) {
  if constexpr (D == 1) return w.a1;
  else if constexpr (D == 2) return w.a2;
  else return w.a3;
}
template <int D>
auto& ws_b(Workspace& w) {
  if constexpr (D == 1) return w.b1;
  else if constexpr (D == 2) return w.b2;
  else return w.b3;
}
template <int D>
auto& ws_ra(Workspace& w) {
  if constexpr (D == 1) return w.ra1;
  else if constexpr (D == 2) return w.ra2;
  else return w.ra3;
}
template <int D>
auto& ws_rb(Workspace& w) {
  if constexpr (D == 1) return w.rb1;
  else if constexpr (D == 2) return w.rb2;
  else return w.rb3;
}

/// Candidate tile extents the auto-tuner measures: the planner's negotiated
/// tile, the per-thread split, and a small fan around them (halved,
/// doubled, slope-proportional), filtered to extents that can actually
/// block (at least (2*1+1)*slope for an H = 1 wedge, strictly inside the
/// domain).
std::vector<int> tile_candidates(long n, int slope, int threads,
                                 int planned) {
  const int thr = std::max(1, threads);
  const int heur = std::max(4 * slope, static_cast<int>(n / thr));
  const int raw[] = {planned,   planned / 2, 2 * planned,
                     heur,      4 * slope,   8 * slope,
                     static_cast<int>(n / (2L * thr))};
  std::vector<int> out;
  for (int c : raw) {
    if (c < 3 * slope) continue;
    if (c >= n) continue;
    if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
  }
  if (out.empty()) out.push_back(planned > 0 ? planned : heur);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

Solver& Solver::size(long nx, long ny, long nz) {
  cfg_.nx = nx;
  cfg_.ny = ny;
  cfg_.nz = nz;
  selected_ = nullptr;
  prepared_ = PreparedStencil{};
  return *this;
}

Solver& Solver::steps(int tsteps) {
  cfg_.tsteps = tsteps;
  selected_ = nullptr;
  prepared_ = PreparedStencil{};
  return *this;
}

Solver& Solver::method(Method m) {
  cfg_.method = m;
  selected_ = nullptr;
  prepared_ = PreparedStencil{};
  return *this;
}

Solver& Solver::method(const std::string& name) {
  return method(method_from_name(name));
}

Solver& Solver::isa(Isa v) {
  cfg_.isa = v;
  selected_ = nullptr;
  prepared_ = PreparedStencil{};
  return *this;
}

Solver& Solver::tiling(Tiling mode) {
  cfg_.tiling = mode;
  selected_ = nullptr;
  prepared_ = PreparedStencil{};
  return *this;
}

Solver& Solver::threads(int n) {
  cfg_.threads = n;
  selected_ = nullptr;
  prepared_ = PreparedStencil{};
  return *this;
}

Solver& Solver::affinity(Affinity a) {
  cfg_.affinity = a;
  selected_ = nullptr;
  prepared_ = PreparedStencil{};
  return *this;
}

Solver& Solver::pipeline(Pipeline p) {
  cfg_.pipeline = p;
  selected_ = nullptr;
  prepared_ = PreparedStencil{};
  return *this;
}

Solver& Solver::levels(int depth) {
  cfg_.levels = depth;
  selected_ = nullptr;
  prepared_ = PreparedStencil{};
  return *this;
}

Solver& Solver::tile(int extent) {
  cfg_.tile = extent;
  selected_ = nullptr;
  prepared_ = PreparedStencil{};
  return *this;
}

Solver& Solver::time_block(int steps) {
  cfg_.time_block = steps;
  selected_ = nullptr;
  prepared_ = PreparedStencil{};
  return *this;
}

Solver& Solver::tune(bool on) {
  cfg_.tune = on;
  return *this;
}

Solver& Solver::resident_layout(bool on) {
  cfg_.resident = on;
  selected_ = nullptr;
  prepared_ = PreparedStencil{};
  return *this;
}

Solver& Solver::seed(std::uint64_t s) {
  cfg_.seed = s;
  return *this;
}

// ---------------------------------------------------------------------------
// Resolution: one Engine::prepare call captures kernel, halo and plan.
// ---------------------------------------------------------------------------

Solver& Solver::resolve() {
  if (selected_ != nullptr) return *this;
  // Each unset (0) extent independently defaults to the preset's fast-run
  // size, so size(nx) on a 2-D problem keeps the preset's ny rather than
  // silently degenerating to nx x 1.
  if (cfg_.nx == 0) cfg_.nx = cfg_.spec.small_size[0];
  if (cfg_.ny == 0)
    cfg_.ny = cfg_.spec.dims >= 2 ? cfg_.spec.small_size[1] : 1;
  if (cfg_.nz == 0)
    cfg_.nz = cfg_.spec.dims >= 3 ? cfg_.spec.small_size[2] : 1;
  if (cfg_.tsteps == 0) cfg_.tsteps = static_cast<int>(cfg_.spec.small_tsteps);

  prepared_ = Engine::instance().prepare(
      cfg_.spec, Extents{cfg_.nx, cfg_.ny, cfg_.nz}, exec_options());
  if (cfg_.resident && prepared_.preferred_layout() != Layout::Natural) {
    // Re-prepare with the now-known preferred layout so the handle accepts
    // resident views; the first preparation stays cached and is shared by
    // any non-resident Solver of the same configuration.
    ExecOptions o = exec_options();
    o.layout = prepared_.preferred_layout();
    prepared_ = Engine::instance().prepare(
        cfg_.spec, Extents{cfg_.nx, cfg_.ny, cfg_.nz}, o);
  }
  selected_ = &prepared_.kernel();
  halo_ = prepared_.halo();
  plan_ = prepared_.plan();
  return *this;
}

ExecOptions Solver::exec_options() const {
  ExecOptions o;
  o.method = cfg_.method;
  o.isa = cfg_.isa;
  o.tiling = cfg_.tiling;
  o.threads = cfg_.threads;
  o.tile = cfg_.tile;
  o.time_block = cfg_.time_block;
  o.tsteps = cfg_.tsteps;
  o.affinity = cfg_.affinity;
  o.pipeline = cfg_.pipeline;
  o.levels = cfg_.levels;
  return o;
}

PlanRequest Solver::plan_request() const {
  PlanRequest req;
  req.spec = &cfg_.spec;
  req.kernel = selected_;
  req.nx = cfg_.nx;
  req.ny = cfg_.ny;
  req.nz = cfg_.nz;
  req.tsteps = cfg_.tsteps;
  req.tiling = cfg_.tiling;
  req.threads = cfg_.threads;
  req.tile = cfg_.tile;
  req.time_block = cfg_.time_block;
  req.affinity = cfg_.affinity;
  req.pipeline = cfg_.pipeline;
  // The *engaged* depth of the resolved plan (plan_request requires a
  // selected kernel, so plan_ is live): re-planning from this request
  // re-derives the same tree the Engine negotiated.
  req.levels = plan_.tile.levels;
  return req;
}

const KernelInfo& Solver::kernel() { return *resolve().selected_; }

int Solver::halo() { return resolve().halo_; }

// ---------------------------------------------------------------------------
// Measure-once auto-tuning
// ---------------------------------------------------------------------------

// Probes candidate geometries on the allocated grids (contents are
// irrelevant for timing but kept finite so FP corner cases don't distort
// it), records the winner in the TuneCache, and restores `a`'s initial
// state for the timed run. A Cached plan skips all of this — that is the
// "repeated runs are free" contract — and an unblockable plan has no wedge
// geometry worth measuring.
//
// The search runs its axes in sequence rather than their full product
// (additive, not multiplicative, probe counts):
//  0. tree plans only (TilePlan::levels >= 2), staged ahead of the tile
//     axis: leaf (register-block) granules 1x/2x/4x KernelInfo::reg_block —
//     the planner's mid tile re-aligned down to each granule and measured,
//     so the L3-tile axis then searches leaf-aligned extents;
//  1. tile extents, each probed at the block height the Fig. 7 heuristic
//     yields for it — the heuristic is the probe seed, never skipped;
//  2. (tile × time_block) pairs: the winning tile re-measured at halved
//     and doubled block heights, so a machine whose sweet spot departs
//     from the triangle-geometry derivation is actually measured;
//  3. thread counts {resolved, resolved/2, cores-per-node}: now that the
//     worker count is a first-class plan parameter, bandwidth-saturated
//     stencils can settle below the hardware maximum.
template <int D, class P, class G>
void Solver::tune_pass(const P& p, G& a, G& b, const Pattern1D* src,
                       const FieldView1D* kk) {
  if (!(plan_.tiled && plan_.blocked && (cfg_.tune || tune_forced()) &&
        plan_.source == PlanSource::Heuristic && cfg_.tile == 0 &&
        cfg_.time_block == 0))
    return;
  const long n_tiled = D == 1 ? cfg_.nx : D == 2 ? cfg_.ny : cfg_.nz;
  const int m = std::max(1, selected_->fold_depth);
  const int slope = selected_->wedge_slope(p.radius());
  // One uniform probe horizon for every candidate: fixed per-call
  // overheads (layout transposes in/out, stage fork/join) amortize
  // identically and cancel out of the ranking.
  const int probe_steps = std::min(cfg_.tsteps, std::max(2 * m, 48));
  const int base_threads = plan_.tile.threads;  // the resolved count
  PlanRequest treq = plan_request();
  treq.threads = base_threads;
  treq.affinity = plan_.tile.affinity;
  treq.tsteps = probe_steps;

  auto probe = [&](int tile_c, int tb_c, int thr_c, int steps) {
    TilePlan cand = plan_.tile;
    cand.tile = tile_c;
    cand.time_block = tb_c;
    cand.threads = thr_c;
    if constexpr (D == 1)
      run_tile_plan(p, a, b, src, kk, steps, cand);
    else
      run_tile_plan(p, a, b, steps, cand);
  };
  // Every probe measurement is logged (not just winners): the accumulated
  // (geometry -> GFLOP/s) table is the training set the ROADMAP item-5
  // performance model fits over. Dead no-op unless SF_METRICS is on.
  const telemetry::SampleLog tune_log = telemetry::samples(
      "tuner", {"kernel", "isa", "dims", "radius", "nx", "ny", "nz",
                "probe_steps", "threads", "tile", "time_block", "seconds",
                "gflops"});
  auto measure = [&](int tile_c, int tb_c, int thr_c) {
    Timer timer;
    probe(tile_c, tb_c, thr_c, probe_steps);
    const double sec = timer.seconds();
    if (tune_log.live()) {
      const double gflops = flops_per_step(cfg_.spec, cfg_.nx, cfg_.ny,
                                           cfg_.nz) *
                            probe_steps / sec / 1e9;
      tune_log.append(
          {selected_->name, isa_name(selected_->isa),
           std::to_string(cfg_.spec.dims),
           std::to_string(effective_radius(cfg_.spec)),
           std::to_string(cfg_.nx), std::to_string(cfg_.ny),
           std::to_string(cfg_.nz), std::to_string(probe_steps),
           std::to_string(thr_c), std::to_string(tile_c),
           std::to_string(tb_c), std::to_string(sec),
           std::to_string(gflops)});
    }
    return sec;
  };

  double best_sec = std::numeric_limits<double>::infinity();
  int best_tile = plan_.tile.tile;
  int best_tb = 0;  // 0 = the heuristic height (re-derived at deploy time)
  int best_leaf = 0;  // 0 = no leaf granule probed/won (flat plans)
  bool warmed = false;

  // Axis 0 (tree plans only): leaf granules, staged ahead of the tile axis.
  // A granule only survives as provenance (TunedGeometry::leaf) when its
  // aligned tile actually measured fastest so far; the axis-1 candidates
  // are then rounded to it, keeping the winner leaf-aligned.
  if (plan_.tile.levels >= 2) {
    const int q = std::max(1, selected_->reg_block());
    for (int mult : {1, 2, 4}) {
      const int granule = q * mult;
      const int aligned = plan_.tile.tile / granule * granule;
      if (granule < 2 || aligned < 3 * slope) continue;
      treq.tile = aligned;
      treq.time_block = 0;
      const WedgeGeometry g = plan_geometry(treq);
      if (!g.blocked) continue;
      if (!warmed) {
        // Untimed warmup: absorbs one-time costs (pool creation, page
        // faults) so they don't land on the first measured candidate.
        probe(g.tile, g.time_block, base_threads,
              std::min(cfg_.tsteps, 2 * m));
        warmed = true;
      }
      const double sec = measure(g.tile, g.time_block, base_threads);
      if (sec < best_sec) {
        best_sec = sec;
        best_tile = g.tile;
        best_leaf = granule;
      }
    }
  }

  // Axis 1: tile extents at their heuristic block heights, rounded to the
  // winning leaf granule when axis 0 picked one. A taller block than the
  // probe horizon can observe is never measured; unblockable candidates
  // have no wedge schedule to measure.
  std::vector<std::pair<int, int>> cands;  // (tile, probe time_block)
  for (int c :
       tile_candidates(n_tiled, slope, base_threads, plan_.tile.tile)) {
    if (best_leaf > 1) c = std::max(best_leaf, c / best_leaf * best_leaf);
    treq.tile = c;
    treq.time_block = 0;
    const WedgeGeometry g = plan_geometry(treq);
    if (g.blocked &&
        std::find(cands.begin(), cands.end(),
                  std::make_pair(g.tile, g.time_block)) == cands.end())
      cands.emplace_back(g.tile, g.time_block);
  }
  if (cands.empty() && !warmed) return;  // nothing measurable at all
  if (!warmed && !cands.empty())
    probe(cands.front().first, cands.front().second, base_threads,
          std::min(cfg_.tsteps, 2 * m));
  for (const auto& [tile_c, tb_c] : cands) {
    const double sec = measure(tile_c, tb_c, base_threads);
    if (sec < best_sec) {
      best_sec = sec;
      best_tile = tile_c;
    }
  }

  // Axis 2: block heights below the winner's heuristic height — the
  // (tile × time_block) pair is measured, not re-derived. Only shorter
  // blocks exist for a fixed tile: the Fig. 7 height is the viability
  // maximum (taller blocks have degenerate triangle tops and renegotiate
  // back down), so the taller-block direction is explored through wider
  // tiles on axis 1. A non-heuristic winner is deployed (and recorded)
  // explicitly.
  treq.tile = best_tile;
  treq.time_block = 0;
  const int heur_tb = plan_geometry(treq).time_block;
  for (int tb_c : {std::max(m, heur_tb / 2 / m * m),
                   std::max(m, heur_tb / 4 / m * m)}) {
    if (tb_c == heur_tb) continue;
    treq.time_block = tb_c;
    const WedgeGeometry g = plan_geometry(treq);
    if (!g.blocked || g.time_block == heur_tb || g.time_block == best_tb)
      continue;
    const double sec = measure(best_tile, g.time_block, base_threads);
    if (sec < best_sec) {
      best_sec = sec;
      best_tb = g.time_block;
    }
  }

  // Axis 3: thread counts below the resolved maximum. The geometry is
  // re-negotiated per count (the heuristic tile is a per-thread split), so
  // each candidate runs its own best-known shape.
  int best_thr = base_threads;
  std::vector<int> thr_cands{std::max(1, base_threads / 2),
                             Topology::system().cores_per_node()};
  if (thr_cands[1] == thr_cands[0]) thr_cands.pop_back();
  for (int thr_c : thr_cands) {
    if (thr_c <= 0 || thr_c == base_threads || thr_c > base_threads)
      continue;
    treq.threads = thr_c;
    treq.tile = best_tile;
    treq.time_block = best_tb;
    const WedgeGeometry g = plan_geometry(treq);
    if (!g.blocked) continue;
    const double sec = measure(g.tile, g.time_block, thr_c);
    if (sec < best_sec) {
      best_sec = sec;
      best_thr = thr_c;
    }
  }

  // Deploy (and record) the winner: the measured block height when one
  // beat the heuristic, otherwise the height the heuristic gives the
  // winning tile at the full horizon (so a tuned plan never trades away
  // the tall blocks an untuned plan would use); the winning thread count
  // only when the axis actually moved it (0 = "deploy with the key's").
  treq.tsteps = cfg_.tsteps;
  treq.threads = best_thr;
  treq.tile = best_tile;
  treq.time_block = best_tb;
  const WedgeGeometry deployed = plan_geometry(treq);
  TuneCache::instance().store(
      make_tune_key(*selected_, effective_radius(cfg_.spec), cfg_.nx, cfg_.ny,
                    cfg_.nz, cfg_.tsteps, base_threads, plan_.tile.levels),
      TunedGeometry{deployed.tile, deployed.time_block,
                    best_thr != base_threads ? best_thr : 0, best_leaf});
  // The store invalidated this configuration's cached plan (per-key), so
  // this re-prepare re-plans and recalls the geometry just recorded: the
  // prepared handle the timed run executes through carries the tuned plan.
  // The resident-layout acceptance of the handle being replaced is carried
  // forward — exec_options() alone never requests it (resolve() negotiates
  // it against the kernel's preference).
  ExecOptions tuned_opts = exec_options();
  tuned_opts.layout = prepared_.resident_layout();
  prepared_ = Engine::instance().prepare(
      cfg_.spec, Extents{cfg_.nx, cfg_.ny, cfg_.nz}, tuned_opts);
  plan_ = prepared_.plan();
  plan_.source = PlanSource::Tuned;  // report provenance, not cache recall
  fill_random(a, cfg_.seed);  // probes clobbered the initial state
}

// ---------------------------------------------------------------------------
// Execution: one generic path for every dimensionality
// ---------------------------------------------------------------------------

RunResult Solver::run_impl(bool verify) {
  resolve();
  const StencilSpec& s = cfg_.spec;

  return dispatch_dims(s.dims, [&](auto dc) -> RunResult {
    constexpr int D = std::decay_t<decltype(dc)>::value;
    const auto& p = pattern_of<D>(s);

    if (ws_.dims != D || ws_.halo != halo_ || ws_.nx != cfg_.nx ||
        ws_.ny != cfg_.ny || ws_.nz != cfg_.nz ||
        ws_.affinity != prepared_.affinity()) {
      ws_ = Workspace{};
      ws_.dims = D;
      ws_.halo = halo_;
      ws_.nx = cfg_.nx;
      ws_.ny = cfg_.ny;
      ws_.nz = cfg_.nz;
      ws_.affinity = prepared_.affinity();
    }
    auto& A = ws_a<D>(ws_);
    auto& B = ws_b<D>(ws_);
    if (!A) {
      // Pinned runs allocate the ping-pong pair untouched and let the
      // pool's placement map write each page first: worker w zeroes the
      // rows/planes of the tiles it owns, so they land on its NUMA node
      // (the serial fill below only overwrites already-placed pages).
      const bool ft = prepared_.pool() != nullptr &&
                      prepared_.affinity() != Affinity::None;
      A.emplace(make_grid<D>(cfg_.nx, cfg_.ny, cfg_.nz, halo_, !ft));
      B.emplace(make_grid<D>(cfg_.nx, cfg_.ny, cfg_.nz, halo_, !ft));
      if (ft) {
        prepared_.first_touch(A->view());
        prepared_.first_touch(B->view());
      }
    }
    fill_random(*A, cfg_.seed);
    [[maybe_unused]] const Pattern1D* src = nullptr;
    [[maybe_unused]] FieldView1D kview;
    [[maybe_unused]] const FieldView1D* kk = nullptr;
    if constexpr (D == 1) {
      if (s.has_source) {
        if (!ws_.k1) ws_.k1.emplace(make_grid<1>(cfg_.nx, cfg_.ny, cfg_.nz, halo_));
        fill_random(*ws_.k1, cfg_.seed + 1);
        src = &s.src1;
        kview = ws_.k1->view();
        kk = &kview;
      }
    }

    tune_pass<D>(p, *A, *B, src, kk);
    copy(*A, *B);

    // Resident-layout execution (opt-in): hoist the kernel's per-call
    // layout transform out of the timed region — transform the workspace
    // once here, run resident, and transform back after timing. The same
    // transforms and kernel steps happen either way, so results are
    // bitwise identical to the default path.
    auto av = A->view();
    auto bv = B->view();
    const bool resident = prepared_.resident_layout() != Layout::Natural;
    if (resident) {
      av = to_resident_layout(prepared_, av);
      bv = to_resident_layout(prepared_, bv);
      if constexpr (D == 1) {
        if (kk != nullptr) kview = to_resident_layout(prepared_, kview);
      }
    }

    RunResult res;
    res.tsteps = cfg_.tsteps;
    res.points = cfg_.nx * (D >= 2 ? cfg_.ny : 1) * (D >= 3 ? cfg_.nz : 1);
    Timer timer;
    if constexpr (D == 1) {
      if (kk != nullptr)
        prepared_.run(av, bv, kview, cfg_.tsteps);
      else
        prepared_.run(av, bv, cfg_.tsteps);
    } else {
      prepared_.run(av, bv, cfg_.tsteps);
    }
    do_not_optimize(A->data());
    res.seconds = timer.seconds();
    if (resident) {
      to_natural_layout(prepared_, av);
      to_natural_layout(prepared_, bv);
      if constexpr (D == 1) {
        if (kk != nullptr) kview = to_natural_layout(prepared_, kview);
      }
    }
    res.gflops = flops_per_step(s, cfg_.nx, cfg_.ny, cfg_.nz) *
                 static_cast<double>(cfg_.tsteps) / res.seconds / 1e9;

    if (verify) {
      // Untimed reference on identical inputs; the timed run's own output
      // is what gets compared (the kernel executes exactly once).
      auto& RA = ws_ra<D>(ws_);
      auto& RB = ws_rb<D>(ws_);
      if (!RA) {
        RA.emplace(make_grid<D>(cfg_.nx, cfg_.ny, cfg_.nz, halo_));
        RB.emplace(make_grid<D>(cfg_.nx, cfg_.ny, cfg_.nz, halo_));
      }
      fill_random(*RA, cfg_.seed);
      copy(*RA, *RB);
      if constexpr (D == 1)
        run_reference(p, *RA, *RB, cfg_.tsteps, src, kk);
      else
        run_reference(p, *RA, *RB, cfg_.tsteps);
      res.max_error = max_abs_diff(*A, *RA);
    }
    return res;
  });
}

}  // namespace sf
