#include "core/tuner.hpp"

#include <fstream>
#include <sstream>

#include "common/env.hpp"

namespace sf {

namespace {

// One entry per line:
//   v3 <kernel> <isa> <dims> <radius> <nx> <ny> <nz> <tsteps> <threads>
//      <tile> <tb> <tuned_threads> <levels> <leaf>
// The kernel key never contains whitespace (registry names are method
// names), so plain stream extraction round-trips. Earlier formats still
// parse, each missing column defaulting to its pre-axis meaning: v2 lines
// (no <levels> <leaf>) load as flat entries (levels = 1, leaf = 0), v1
// lines (additionally no <tuned_threads>) also deploy with the key's
// thread count (tuned_threads = 0).
constexpr const char* kFormatTag = "v3";
constexpr const char* kFormatTagV2 = "v2";
constexpr const char* kFormatTagV1 = "v1";

int isa_code(Isa isa) { return static_cast<int>(isa); }

bool isa_from_code(int code, Isa& out) {
  switch (code) {
    case static_cast<int>(Isa::Scalar): out = Isa::Scalar; return true;
    case static_cast<int>(Isa::Avx2): out = Isa::Avx2; return true;
    case static_cast<int>(Isa::Avx512): out = Isa::Avx512; return true;
    default: return false;
  }
}

std::string to_line(const TuneKey& k, const TunedGeometry& g) {
  std::ostringstream os;
  os << kFormatTag << ' ' << k.kernel << ' ' << isa_code(k.isa) << ' '
     << k.dims << ' ' << k.radius << ' ' << k.nx << ' ' << k.ny << ' '
     << k.nz << ' ' << k.tsteps << ' ' << k.threads << ' ' << g.tile << ' '
     << g.time_block << ' ' << g.threads << ' ' << k.levels << ' '
     << g.leaf;
  return os.str();
}

bool parse_line(const std::string& line, TuneKey& k, TunedGeometry& g) {
  std::istringstream is(line);
  std::string tag;
  int isa = -1;
  if (!(is >> tag >> k.kernel >> isa >> k.dims >> k.radius >> k.nx >> k.ny >>
        k.nz >> k.tsteps >> k.threads >> g.tile >> g.time_block))
    return false;
  g.threads = 0;
  k.levels = 1;
  g.leaf = 0;
  if (tag == kFormatTag || tag == kFormatTagV2) {
    if (!(is >> g.threads) || g.threads < 0) return false;
    if (tag == kFormatTag &&
        (!(is >> k.levels >> g.leaf) || k.levels < 1 || g.leaf < 0))
      return false;
  } else if (tag != kFormatTagV1) {
    return false;
  }
  return isa_from_code(isa, k.isa) && k.dims >= 1 && k.dims <= 3 &&
         g.tile > 0 && g.time_block > 0;
}

}  // namespace

TuneKey make_tune_key(const KernelInfo& kernel, int radius, long nx, long ny,
                      long nz, int tsteps, int threads, int levels) {
  TuneKey k;
  k.kernel = kernel.name;
  k.isa = kernel.isa;
  k.dims = kernel.dims;
  k.radius = radius;
  k.nx = nx;
  k.ny = ny;
  k.nz = nz;
  k.tsteps = tsteps;
  k.threads = threads;
  k.levels = levels;
  return k;
}

long tune_bucket(long n) {
  if (n <= 0) return n;
  long lo = 1;
  while (lo * 2 <= n) lo *= 2;  // lo = 2^floor(log2 n)
  const long q = lo / 4;        // quarter-octave step
  return q > 0 ? lo + (n - lo) / q * q : n;
}

TuneKey bucketed_key(const TuneKey& k) {
  TuneKey b = k;
  b.nx = tune_bucket(k.nx);
  b.ny = tune_bucket(k.ny);
  b.nz = tune_bucket(k.nz);
  b.tsteps = static_cast<int>(tune_bucket(k.tsteps));
  return b;
}

TuneCache& TuneCache::instance() {
  static TuneCache* cache = [] {
    auto* c = new TuneCache();
    const std::string path = tune_cache_path();
    {
      // Uncontended (the singleton is not shared until this lambda
      // returns); taken for the thread-safety analysis.
      LockGuard lock(c->mu_);
      c->persist_path_ = path;
    }
    if (!path.empty()) c->load_file(path);
    return c;
  }();
  return *cache;
}

std::optional<TunedGeometry> TuneCache::lookup_locked(
    const TuneKey& key) const {
  for (const auto& e : entries_)
    if (e.first == key) return e.second;
  return std::nullopt;
}

std::optional<TunedGeometry> TuneCache::lookup(const TuneKey& key) const {
  LockGuard lock(mu_);
  return lookup_locked(key);
}

std::optional<TunedGeometry> TuneCache::lookup_rounded(
    const TuneKey& key) const {
  LockGuard lock(mu_);
  if (auto exact = lookup_locked(key)) return exact;
  const TuneKey want = bucketed_key(key);
  for (const auto& e : entries_)
    if (bucketed_key(e.first) == want) return e.second;
  return std::nullopt;
}

void TuneCache::store(const TuneKey& key, const TunedGeometry& g) {
  LockGuard lock(mu_);
  ++stores_;
  bool replaced = false;
  for (auto& e : entries_)
    if (e.first == key) {
      e.second = g;
      replaced = true;
      break;
    }
  if (!replaced) entries_.emplace_back(key, g);
  if (!persist_path_.empty()) {
    // Append-only persistence: load_file's later-lines-win rule makes an
    // updated entry shadow its predecessor without rewriting the file.
    std::ofstream out(persist_path_, std::ios::app);
    if (out) out << to_line(key, g) << '\n';
  }
}

long TuneCache::stored_count() const {
  LockGuard lock(mu_);
  return stores_;
}

std::size_t TuneCache::size() const {
  LockGuard lock(mu_);
  return entries_.size();
}

void TuneCache::clear() {
  LockGuard lock(mu_);
  entries_.clear();
}

std::size_t TuneCache::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::size_t loaded = 0;
  std::string line;
  LockGuard lock(mu_);
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    TuneKey k;
    TunedGeometry g;
    if (!parse_line(line, k, g)) continue;
    bool replaced = false;
    for (auto& e : entries_)
      if (e.first == k) {
        e.second = g;
        replaced = true;
        break;
      }
    if (!replaced) entries_.emplace_back(std::move(k), g);
    ++loaded;
  }
  return loaded;
}

bool TuneCache::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "# stencilfold tuning cache: " << kFormatTag
      << " kernel isa dims radius nx ny nz tsteps threads tile time_block"
         " tuned_threads levels leaf\n";
  LockGuard lock(mu_);
  for (const auto& e : entries_) out << to_line(e.first, e.second) << '\n';
  return static_cast<bool>(out);
}

}  // namespace sf
