#include "core/execution_plan.hpp"

#include <algorithm>

#include "common/env.hpp"
#include "core/tuner.hpp"
#include "runtime/topology.hpp"

namespace sf {

namespace {

int pattern_radius(const StencilSpec& s) {
  switch (s.dims) {
    case 1: return s.p1.radius();
    case 2: return s.p2.radius();
    default: return s.p3.radius();
  }
}

int source_radius(const StencilSpec& s) {
  return s.dims == 1 && s.has_source ? s.src1.radius() : 0;
}

// The dimension the wedge schedule tessellates: x in 1-D, y in 2-D, z in
// 3-D (always the outermost loop of the untiled executors).
long tiled_extent(const StencilSpec& s, long nx, long ny, long nz) {
  return s.dims == 1 ? nx : s.dims == 2 ? ny : nz;
}

bool engages(const PlanRequest& req) {
  return req.spec != nullptr && req.kernel != nullptr &&
         tiled_path_engages(*req.kernel, pattern_radius(*req.spec),
                            source_radius(*req.spec), req.nx);
}

// Bytes of one cross-section slice of the tiled dimension, mirroring what
// the engine impls pass make_plan (so plan() reports the exact geometry
// run_tile_plan will reconstruct).
long slice_bytes(const StencilSpec& s, long nx, long ny) {
  switch (s.dims) {
    case 1: return sizeof(double);
    case 2: return static_cast<long>(sizeof(double)) * nx;
    default: return static_cast<long>(sizeof(double)) * nx * ny;
  }
}

WedgeGeometry negotiate(const PlanRequest& req) {
  TilePlan requested;
  requested.method = req.kernel->method;
  requested.isa = req.kernel->isa;
  requested.tile = req.tile;
  requested.time_block = req.time_block;
  requested.threads = req.threads;
  requested.affinity = req.affinity;
  requested.pipeline = req.pipeline;
  const int slope = req.kernel->wedge_slope(pattern_radius(*req.spec));
  return negotiate_wedge(
      static_cast<int>(tiled_extent(*req.spec, req.nx, req.ny, req.nz)),
      slope, req.kernel->fold_depth, req.tsteps, requested,
      slice_bytes(*req.spec, req.nx, req.ny));
}

}  // namespace

const char* plan_source_name(PlanSource s) {
  switch (s) {
    case PlanSource::Untiled: return "untiled";
    case PlanSource::Heuristic: return "heuristic";
    case PlanSource::Cached: return "cached";
    case PlanSource::Tuned: return "tuned";
  }
  return "?";
}

int effective_radius(const StencilSpec& spec) {
  return std::max(pattern_radius(spec), source_radius(spec));
}

long working_set_bytes(long nx, long ny, long nz) {
  return 2L * static_cast<long>(sizeof(double)) * nx * std::max(1L, ny) *
         std::max(1L, nz);
}

namespace {

// The Tiling::Auto decision against an already-negotiated geometry (shared
// by tiling_profitable and plan_execution so the geometry is computed
// once and the two can never drift apart).
bool profitable_at(const PlanRequest& req, const WedgeGeometry& g) {
  // A time block needs at least two super-steps to amortize its two stage
  // barriers; shorter horizons run untiled.
  const int m = std::max(1, req.kernel->fold_depth);
  if (req.tsteps / m < 2) return false;
  if (!g.blocked) return false;
  const long bytes = working_set_bytes(req.nx, req.ny, req.nz);
  if (g.threads > 1) {
    // The untiled executors are serial, so parallel wedges win on anything
    // sizable; below the floor the stage barriers eat the gain.
    return bytes >= tile_min_bytes();
  }
  // Single-threaded split tiling is purely a cache-blocking play (Fig. 8):
  // profitable only once the ping-pong pair falls out of the LLC.
  return bytes > llc_bytes();
}

}  // namespace

bool tiling_profitable(const PlanRequest& req) {
  if (!engages(req)) return false;
  return profitable_at(req, negotiate(req));
}

WedgeGeometry plan_geometry(const PlanRequest& req) { return negotiate(req); }

namespace {

// The multi-level negotiation pass (tentpole of the tile-tree refactor).
// Levels, outermost first, mirroring TileTree's documentation:
//  1. the top level is the per-worker shard the PlacementPlan already
//     owns — worker count and contiguous tile ownership are unchanged, so
//     the pipelined NeighborSync ordering (one publish/wait pair per
//     worker per stage) keeps covering every cross-worker hazard;
//  2. the mid level caps the wedge tile so one tile's ping-pong working
//     set (3 slices of slack per plane, as in the serial Fig. 8 cap) fits
//     the LLC share a single worker gets on its NUMA node — a worker then
//     walks several cache-resident tiles per stage instead of streaming
//     one node-sized tile through memory;
//  3. the leaf level rounds the mid tile down to the kernel's
//     register-block quantum (KernelInfo::reg_block) so no tile cuts the
//     unit the vector path processes at once.
// Returns the engaged depth: the requested depth when the capped geometry
// still blocks, or 1 (flat — the degenerate tree) when the cap does not
// bind, the domain cannot block at the capped tile, or the plan is serial
// (the serial heuristic already LLC-caps its single-worker tile).
int negotiate_tree(const PlanRequest& req, ExecutionPlan& plan) {
  if (req.levels < 2 || !plan.blocked || plan.tile.threads <= 1 ||
      req.tile > 0)
    return 1;
  const long slice = slice_bytes(*req.spec, req.nx, req.ny);
  const int nodes = std::max(1, Topology::system().numa_nodes());
  const int workers_per_node =
      (plan.tile.threads + nodes - 1) / nodes;
  long cap = llc_bytes() / std::max(1, workers_per_node) /
             std::max(1L, 3 * std::max<long>(slice, 1));
  const int leaf = req.levels >= 3 ? std::max(1, req.kernel->reg_block()) : 1;
  if (leaf > 1 && cap > leaf) cap = cap / leaf * leaf;
  if (cap <= 0 || cap >= plan.tile.tile) return 1;  // cap does not bind
  PlanRequest mid = req;
  mid.tile = static_cast<int>(cap);
  mid.time_block = 0;  // re-derive the block height for the smaller tile
  mid.threads = plan.tile.threads;
  const WedgeGeometry mg = negotiate(mid);
  if (!mg.blocked) return 1;  // too small to keep wedges disjoint
  plan.tile.tile = mg.tile;
  plan.tile.time_block = mg.time_block;
  return req.levels;
}

// Stamps ExecutionPlan::tree from the final geometry: the degenerate
// one-level chain for flat plans, shard -> L3 tile (-> register block)
// for engaged multi-level ones. Built last so a tuner recall's tile is
// what the tree reports.
void stamp_tree(const PlanRequest& req, ExecutionPlan& plan, int levels) {
  const int axis = req.spec->dims - 1;
  const long n_tiled = tiled_extent(*req.spec, req.nx, req.ny, req.nz);
  TileTree leaf_level;
  leaf_level.axis = axis;
  leaf_level.extent = plan.tile.tile;
  if (levels <= 1) {
    plan.tree = std::move(leaf_level);
    return;
  }
  const int ntiles =
      static_cast<int>((n_tiled + plan.tile.tile - 1) / plan.tile.tile);
  const int workers = std::max(1, plan.tile.threads);
  TileTree root;
  root.axis = axis;
  root.extent = static_cast<int>(
      std::min<long>(n_tiled, static_cast<long>((ntiles + workers - 1) /
                                                workers) *
                                  plan.tile.tile));
  TileTree mid = std::move(leaf_level);
  if (levels >= 3) {
    TileTree reg;
    reg.axis = axis;
    reg.extent = std::min(plan.tile.tile,
                          std::max(1, req.kernel->reg_block()));
    mid.children.push_back(std::move(reg));
  }
  root.children.push_back(std::move(mid));
  plan.tree = std::move(root);
}

}  // namespace

ExecutionPlan plan_execution(const PlanRequest& req) {
  ExecutionPlan plan;
  plan.kernel = req.kernel;
  if (req.tiling == Tiling::Off || !engages(req)) return plan;

  const WedgeGeometry g = negotiate(req);
  if (req.tiling == Tiling::Auto && !profitable_at(req, g)) return plan;
  plan.tiled = true;
  plan.blocked = g.blocked;
  plan.source = PlanSource::Heuristic;
  plan.tile.method = req.kernel->method;
  plan.tile.isa = req.kernel->isa;
  plan.tile.tile = g.tile;
  plan.tile.time_block = g.time_block;
  plan.tile.threads = g.threads;
  plan.tile.affinity = req.affinity;
  plan.tile.pipeline = req.pipeline;
  // Multi-level pass before the tuner: the engaged depth is part of the
  // tune key, so tree and flat measurements of one shape never cross.
  const int levels = negotiate_tree(req, plan);
  plan.tile.levels = levels;
  // Explicit geometry outranks the cache; a fully-auto request recalls any
  // previously-measured result for this configuration — exact shape first,
  // then the quarter-octave shape bucket (core/tuner.hpp tune_bucket), so
  // nearby production sizes reuse measurements instead of re-tuning. A
  // cached geometry is re-validated against *this* domain before it is
  // trusted — a cache file can legitimately come from another machine or
  // be edited — and an unblockable entry is ignored in favor of the
  // heuristics. An entry that probed the thread-count axis deploys its
  // winning worker count too (a bandwidth-saturated stencil may have
  // measured fastest below the hardware maximum).
  if (req.tile == 0 && req.time_block == 0) {
    const TuneKey key =
        make_tune_key(*req.kernel, effective_radius(*req.spec), req.nx,
                      req.ny, req.nz, req.tsteps, g.threads, levels);
    if (auto hit = TuneCache::instance().lookup_rounded(key)) {
      PlanRequest cached = req;
      cached.tile = hit->tile;
      cached.time_block = hit->time_block;
      if (hit->threads > 0) cached.threads = hit->threads;
      const WedgeGeometry cg = negotiate(cached);
      if (cg.blocked) {
        plan.tile.tile = cg.tile;
        plan.tile.time_block = cg.time_block;
        plan.tile.threads = cg.threads;
        plan.blocked = cg.blocked;
        plan.source = PlanSource::Cached;
      }
    }
  }
  // The placement map is part of the plan: who computes which tiles is
  // negotiated with the geometry, not improvised at run time.
  if (plan.blocked && plan.tile.threads > 1) {
    const long n_tiled = tiled_extent(*req.spec, req.nx, req.ny, req.nz);
    const int ntiles =
        static_cast<int>((n_tiled + plan.tile.tile - 1) / plan.tile.tile);
    plan.placement =
        balanced_placement(ntiles, plan.tile.threads, req.affinity);
  }
  stamp_tree(req, plan, levels);
  return plan;
}

}  // namespace sf
