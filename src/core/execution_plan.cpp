#include "core/execution_plan.hpp"

#include <algorithm>

#include "common/env.hpp"
#include "core/tuner.hpp"

namespace sf {

namespace {

int pattern_radius(const StencilSpec& s) {
  switch (s.dims) {
    case 1: return s.p1.radius();
    case 2: return s.p2.radius();
    default: return s.p3.radius();
  }
}

int source_radius(const StencilSpec& s) {
  return s.dims == 1 && s.has_source ? s.src1.radius() : 0;
}

// The dimension the wedge schedule tessellates: x in 1-D, y in 2-D, z in
// 3-D (always the outermost loop of the untiled executors).
long tiled_extent(const StencilSpec& s, long nx, long ny, long nz) {
  return s.dims == 1 ? nx : s.dims == 2 ? ny : nz;
}

bool engages(const PlanRequest& req) {
  return req.spec != nullptr && req.kernel != nullptr &&
         tiled_path_engages(*req.kernel, pattern_radius(*req.spec),
                            source_radius(*req.spec), req.nx);
}

// Bytes of one cross-section slice of the tiled dimension, mirroring what
// the engine impls pass make_plan (so plan() reports the exact geometry
// run_tile_plan will reconstruct).
long slice_bytes(const StencilSpec& s, long nx, long ny) {
  switch (s.dims) {
    case 1: return sizeof(double);
    case 2: return static_cast<long>(sizeof(double)) * nx;
    default: return static_cast<long>(sizeof(double)) * nx * ny;
  }
}

WedgeGeometry negotiate(const PlanRequest& req) {
  TilePlan requested;
  requested.method = req.kernel->method;
  requested.isa = req.kernel->isa;
  requested.tile = req.tile;
  requested.time_block = req.time_block;
  requested.threads = req.threads;
  requested.affinity = req.affinity;
  requested.pipeline = req.pipeline;
  const int slope = req.kernel->wedge_slope(pattern_radius(*req.spec));
  return negotiate_wedge(
      static_cast<int>(tiled_extent(*req.spec, req.nx, req.ny, req.nz)),
      slope, req.kernel->fold_depth, req.tsteps, requested,
      slice_bytes(*req.spec, req.nx, req.ny));
}

}  // namespace

const char* plan_source_name(PlanSource s) {
  switch (s) {
    case PlanSource::Untiled: return "untiled";
    case PlanSource::Heuristic: return "heuristic";
    case PlanSource::Cached: return "cached";
    case PlanSource::Tuned: return "tuned";
  }
  return "?";
}

int effective_radius(const StencilSpec& spec) {
  return std::max(pattern_radius(spec), source_radius(spec));
}

long working_set_bytes(long nx, long ny, long nz) {
  return 2L * static_cast<long>(sizeof(double)) * nx * std::max(1L, ny) *
         std::max(1L, nz);
}

namespace {

// The Tiling::Auto decision against an already-negotiated geometry (shared
// by tiling_profitable and plan_execution so the geometry is computed
// once and the two can never drift apart).
bool profitable_at(const PlanRequest& req, const WedgeGeometry& g) {
  // A time block needs at least two super-steps to amortize its two stage
  // barriers; shorter horizons run untiled.
  const int m = std::max(1, req.kernel->fold_depth);
  if (req.tsteps / m < 2) return false;
  if (!g.blocked) return false;
  const long bytes = working_set_bytes(req.nx, req.ny, req.nz);
  if (g.threads > 1) {
    // The untiled executors are serial, so parallel wedges win on anything
    // sizable; below the floor the stage barriers eat the gain.
    return bytes >= tile_min_bytes();
  }
  // Single-threaded split tiling is purely a cache-blocking play (Fig. 8):
  // profitable only once the ping-pong pair falls out of the LLC.
  return bytes > llc_bytes();
}

}  // namespace

bool tiling_profitable(const PlanRequest& req) {
  if (!engages(req)) return false;
  return profitable_at(req, negotiate(req));
}

WedgeGeometry plan_geometry(const PlanRequest& req) { return negotiate(req); }

ExecutionPlan plan_execution(const PlanRequest& req) {
  ExecutionPlan plan;
  plan.kernel = req.kernel;
  if (req.tiling == Tiling::Off || !engages(req)) return plan;

  const WedgeGeometry g = negotiate(req);
  if (req.tiling == Tiling::Auto && !profitable_at(req, g)) return plan;
  plan.tiled = true;
  plan.blocked = g.blocked;
  plan.source = PlanSource::Heuristic;
  plan.tile.method = req.kernel->method;
  plan.tile.isa = req.kernel->isa;
  plan.tile.tile = g.tile;
  plan.tile.time_block = g.time_block;
  plan.tile.threads = g.threads;
  plan.tile.affinity = req.affinity;
  plan.tile.pipeline = req.pipeline;
  // Explicit geometry outranks the cache; a fully-auto request recalls any
  // previously-measured result for this configuration — exact shape first,
  // then the quarter-octave shape bucket (core/tuner.hpp tune_bucket), so
  // nearby production sizes reuse measurements instead of re-tuning. A
  // cached geometry is re-validated against *this* domain before it is
  // trusted — a cache file can legitimately come from another machine or
  // be edited — and an unblockable entry is ignored in favor of the
  // heuristics. An entry that probed the thread-count axis deploys its
  // winning worker count too (a bandwidth-saturated stencil may have
  // measured fastest below the hardware maximum).
  if (req.tile == 0 && req.time_block == 0) {
    const TuneKey key =
        make_tune_key(*req.kernel, effective_radius(*req.spec), req.nx,
                      req.ny, req.nz, req.tsteps, g.threads);
    if (auto hit = TuneCache::instance().lookup_rounded(key)) {
      PlanRequest cached = req;
      cached.tile = hit->tile;
      cached.time_block = hit->time_block;
      if (hit->threads > 0) cached.threads = hit->threads;
      const WedgeGeometry cg = negotiate(cached);
      if (cg.blocked) {
        plan.tile.tile = cg.tile;
        plan.tile.time_block = cg.time_block;
        plan.tile.threads = cg.threads;
        plan.blocked = cg.blocked;
        plan.source = PlanSource::Cached;
      }
    }
  }
  // The placement map is part of the plan: who computes which tiles is
  // negotiated with the geometry, not improvised at run time.
  if (plan.blocked && plan.tile.threads > 1) {
    const long n_tiled = tiled_extent(*req.spec, req.nx, req.ny, req.nz);
    const int ntiles =
        static_cast<int>((n_tiled + plan.tile.tile - 1) / plan.tile.tile);
    plan.placement =
        balanced_placement(ntiles, plan.tile.threads, req.affinity);
  }
  return plan;
}

}  // namespace sf
