/// \file
/// \brief Persistent measure-once auto-tuner cache for tiled execution.
///
/// The split-tiling heuristics (tiling/split_tiling.hpp negotiate_wedge)
/// give a good default tile geometry, but the best tile/time_block for a
/// *specific* {kernel, shape, tsteps, threads} configuration depends on the
/// machine. When tuning is enabled (`Solver::tune(true)` or `SF_TUNE=1`),
/// the Solver measures a handful of candidate tile extents once, picks the
/// fastest, and records it here keyed on the full configuration — so every
/// later run of that configuration (in this process, or in any process when
/// `SF_TUNE_CACHE=path` persists the table to disk) gets the tuned plan
/// without re-measurement.
///
/// The cache is deliberately tiny machinery: a flat table with linear
/// lookup (real workloads tune a few dozen configurations at most) behind a
/// mutex, serialized as one whitespace-separated text line per entry.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/cpu.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "kernels/registry.hpp"

namespace sf {

/// Everything the tuned geometry depends on. Two runs with equal keys are
/// interchangeable for tuning purposes: same kernel (method + ISA level +
/// dimensionality), same stencil radius (the wedge slope is fold_depth ×
/// radius, so different-radius stencils need different geometry even under
/// the same kernel), same extents, same horizon, same thread count.
struct TuneKey {
  std::string kernel;      ///< Registry string key, e.g. "ours-2step".
  Isa isa = Isa::Scalar;   ///< Concrete ISA level of the selected kernel.
  int dims = 0;            ///< 1, 2 or 3.
  int radius = 0;          ///< Effective stencil radius (incl. 1-D source).
  long nx = 0;             ///< Extents (unused trailing dims = 1).
  long ny = 1;             ///< Second extent.
  long nz = 1;             ///< Third extent.
  int tsteps = 0;          ///< Time-step horizon.
  int threads = 0;         ///< Resolved OpenMP thread count.
  int levels = 1;          ///< Engaged tile-tree depth (1 = flat). Tree
                           ///< plans tile a different axis of the geometry
                           ///< space (the LLC-capped mid tile), so their
                           ///< measurements never leak into flat plans of
                           ///< the same shape, and vice versa.

  /// Field-wise equality.
  bool operator==(const TuneKey& o) const {
    return kernel == o.kernel && isa == o.isa && dims == o.dims &&
           radius == o.radius && nx == o.nx && ny == o.ny && nz == o.nz &&
           tsteps == o.tsteps && threads == o.threads && levels == o.levels;
  }
};

/// The geometry a measurement settled on.
struct TunedGeometry {
  int tile = 0;        ///< Tile extent along the tiled dimension.
  int time_block = 0;  ///< Time steps per block.
  int threads = 0;     ///< Winning worker count, when the measuring pass
                       ///< probed the thread-count axis (0 = deploy with
                       ///< the key's thread count — the pre-axis format,
                       ///< still written by entries that never probed).
  int leaf = 0;        ///< Winning leaf (register-block) alignment granule,
                       ///< when the measuring pass probed the per-level
                       ///< leaf axis of a tree plan (0 = none probed — flat
                       ///< plans and the pre-v3 formats). Provenance for
                       ///< the recorded tile, which is already aligned.

  /// Field-wise equality (the Engine's plan cache compares the lookup it
  /// snapshotted at prepare time against the current one).
  bool operator==(const TunedGeometry& o) const {
    return tile == o.tile && time_block == o.time_block &&
           threads == o.threads && leaf == o.leaf;
  }
  /// Field-wise inequality.
  bool operator!=(const TunedGeometry& o) const { return !(*this == o); }
};

/// Builds the key for a kernel/radius/shape/horizon/threads configuration;
/// `levels` is the engaged tile-tree depth (1 = flat, the default).
TuneKey make_tune_key(const KernelInfo& kernel, int radius, long nx, long ny,
                      long nz, int tsteps, int threads, int levels = 1);

/// Rounds an extent down to its tuning bucket: quarter-octave edges
/// (1.0x, 1.25x, 1.5x, 1.75x of each power of two), so production sweeps
/// whose shapes differ by a few percent share one bucket while shapes a
/// cache level apart never do. Monotone; tune_bucket(n) <= n.
long tune_bucket(long n);

/// The key with its shape (nx, ny, nz) and horizon rounded into buckets
/// via tune_bucket(); kernel/radius/threads stay exact.
TuneKey bucketed_key(const TuneKey& k);

/// Process-wide tuning table. Thread-safe. The singleton loads
/// `SF_TUNE_CACHE` (when set) on first use, and store() appends each new
/// result to that file so later processes start warm.
class TuneCache {
 public:
  /// The singleton cache (loads SF_TUNE_CACHE on first call).
  static TuneCache& instance();

  /// The tuned geometry recorded for `key`, if any.
  std::optional<TunedGeometry> lookup(const TuneKey& key) const;

  /// Widened lookup: an exact-shape entry always wins; on a miss, any
  /// entry whose kernel/radius/threads match exactly and whose shape and
  /// horizon fall in the same tune_bucket() buckets is returned — so
  /// nearby production sizes reuse measurements instead of re-tuning.
  /// Callers must re-validate the geometry against their real extents
  /// (plan_execution does) before deploying it.
  std::optional<TunedGeometry> lookup_rounded(const TuneKey& key) const;

  /// Records (or overwrites) the geometry for `key`; appends to the
  /// SF_TUNE_CACHE file when the singleton was configured with one.
  void store(const TuneKey& key, const TunedGeometry& g);

  /// Number of store() calls over this object's lifetime. Tests use this to
  /// assert measure-once behavior: a second run of a tuned configuration
  /// must not store (= must not have re-measured) again.
  long stored_count() const;

  /// Number of distinct keys currently cached.
  std::size_t size() const;

  /// Drops every entry (test isolation; does not touch the disk file).
  void clear();

  /// Merges entries from a cache file (later lines win). Returns the number
  /// of lines successfully parsed; unparsable lines are skipped.
  std::size_t load_file(const std::string& path);

  /// Writes the whole table to `path` (one line per entry). Returns false
  /// when the file cannot be opened.
  bool save_file(const std::string& path) const;

  /// Constructs an empty cache that persists nothing. The process-wide
  /// instance() is the usual entry point; independent objects exist for
  /// tests.
  TuneCache() = default;

 private:
  std::optional<TunedGeometry> lookup_locked(const TuneKey& key) const
      SF_REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<std::pair<TuneKey, TunedGeometry>> entries_ SF_GUARDED_BY(mu_);
  // "" = in-process only. Written once by instance() before the singleton
  // is shared (construction-time), read under mu_ afterwards.
  std::string persist_path_ SF_GUARDED_BY(mu_);
  long stores_ SF_GUARDED_BY(mu_) = 0;
};

}  // namespace sf
