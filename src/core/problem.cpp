#include "core/problem.hpp"

#include <stdexcept>

#include "common/timing.hpp"
#include "grid/grid_utils.hpp"
#include "stencil/reference.hpp"

namespace sf {

ProblemConfig resolve(ProblemConfig cfg) {
  const StencilSpec& spec = preset(cfg.preset);
  if (cfg.nx == 0) {
    cfg.nx = spec.small_size[0];
    cfg.ny = spec.dims >= 2 ? spec.small_size[1] : 1;
    cfg.nz = spec.dims >= 3 ? spec.small_size[2] : 1;
  }
  if (cfg.tsteps == 0) cfg.tsteps = static_cast<int>(spec.small_tsteps);
  cfg.tile_opts.method = cfg.method;
  cfg.tile_opts.isa = cfg.isa;
  return cfg;
}

double flops_per_step(const StencilSpec& spec, long nx, long ny, long nz) {
  double pts = static_cast<double>(nx);
  long f = 0;
  switch (spec.dims) {
    case 1:
      f = spec.p1.flops_per_point();
      if (spec.has_source) f += 2 * static_cast<long>(spec.src1.size());
      break;
    case 2:
      pts *= static_cast<double>(ny);
      f = spec.p2.flops_per_point();
      break;
    case 3:
      pts *= static_cast<double>(ny) * static_cast<double>(nz);
      f = spec.p3.flops_per_point();
      break;
    default:
      throw std::logic_error("bad dims");
  }
  return pts * static_cast<double>(f);
}

namespace {

template <class Fn>
RunResult timed(const ProblemConfig& cfg, const StencilSpec& spec, Fn&& body) {
  RunResult res;
  Timer t;
  body();
  res.seconds = t.seconds();
  res.tsteps = cfg.tsteps;
  res.points = cfg.nx * (spec.dims >= 2 ? cfg.ny : 1) *
               (spec.dims >= 3 ? cfg.nz : 1);
  res.gflops = flops_per_step(spec, cfg.nx, cfg.ny, cfg.nz) *
               static_cast<double>(cfg.tsteps) / res.seconds / 1e9;
  return res;
}

}  // namespace

RunResult run_problem(const ProblemConfig& raw) {
  const ProblemConfig cfg = resolve(raw);
  const StencilSpec& spec = preset(cfg.preset);
  const int halo = required_halo(cfg.method, spec.dims == 1   ? spec.p1.radius()
                                             : spec.dims == 2 ? spec.p2.radius()
                                                              : spec.p3.radius());

  switch (spec.dims) {
    case 1: {
      Grid1D a(static_cast<int>(cfg.nx), halo), b(static_cast<int>(cfg.nx), halo);
      Grid1D k(static_cast<int>(cfg.nx), halo);
      fill_random(a, cfg.seed);
      if (spec.has_source) fill_random(k, cfg.seed + 1);
      copy(a, b);
      const Pattern1D* src = spec.has_source ? &spec.src1 : nullptr;
      const Grid1D* kk = spec.has_source ? &k : nullptr;
      return timed(cfg, spec, [&] {
        if (cfg.tiled) {
          run_tiled(spec.p1, a, b, src, kk, cfg.tsteps, cfg.tile_opts);
        } else {
          kernel1d(cfg.method, cfg.isa)(spec.p1, a, b, src, kk, cfg.tsteps);
        }
        do_not_optimize(a.data());
      });
    }
    case 2: {
      Grid2D a(static_cast<int>(cfg.ny), static_cast<int>(cfg.nx), halo);
      Grid2D b(static_cast<int>(cfg.ny), static_cast<int>(cfg.nx), halo);
      fill_random(a, cfg.seed);
      copy(a, b);
      return timed(cfg, spec, [&] {
        if (cfg.tiled) {
          run_tiled(spec.p2, a, b, cfg.tsteps, cfg.tile_opts);
        } else {
          kernel2d(cfg.method, cfg.isa)(spec.p2, a, b, cfg.tsteps);
        }
        do_not_optimize(a.data());
      });
    }
    case 3: {
      Grid3D a(static_cast<int>(cfg.nz), static_cast<int>(cfg.ny),
               static_cast<int>(cfg.nx), halo);
      Grid3D b(static_cast<int>(cfg.nz), static_cast<int>(cfg.ny),
               static_cast<int>(cfg.nx), halo);
      fill_random(a, cfg.seed);
      copy(a, b);
      return timed(cfg, spec, [&] {
        if (cfg.tiled) {
          run_tiled(spec.p3, a, b, cfg.tsteps, cfg.tile_opts);
        } else {
          kernel3d(cfg.method, cfg.isa)(spec.p3, a, b, cfg.tsteps);
        }
        do_not_optimize(a.data());
      });
    }
    default:
      throw std::logic_error("bad dims");
  }
}

RunResult run_verified(const ProblemConfig& raw) {
  const ProblemConfig cfg = resolve(raw);
  const StencilSpec& spec = preset(cfg.preset);
  const int halo = required_halo(cfg.method, spec.dims == 1   ? spec.p1.radius()
                                             : spec.dims == 2 ? spec.p2.radius()
                                                              : spec.p3.radius());
  RunResult res = run_problem(cfg);

  switch (spec.dims) {
    case 1: {
      const int n = static_cast<int>(cfg.nx);
      Grid1D a(n, halo), b(n, halo), ra(n, halo), rb(n, halo), k(n, halo);
      fill_random(a, cfg.seed);
      if (spec.has_source) fill_random(k, cfg.seed + 1);
      copy(a, b);
      copy(a, ra);
      copy(a, rb);
      const Pattern1D* src = spec.has_source ? &spec.src1 : nullptr;
      const Grid1D* kk = spec.has_source ? &k : nullptr;
      run_reference(spec.p1, ra, rb, cfg.tsteps, src, kk);
      if (cfg.tiled) {
        run_tiled(spec.p1, a, b, src, kk, cfg.tsteps, cfg.tile_opts);
      } else {
        kernel1d(cfg.method, cfg.isa)(spec.p1, a, b, src, kk, cfg.tsteps);
      }
      res.max_error = max_abs_diff(a, ra);
      break;
    }
    case 2: {
      Grid2D a(static_cast<int>(cfg.ny), static_cast<int>(cfg.nx), halo);
      Grid2D b(static_cast<int>(cfg.ny), static_cast<int>(cfg.nx), halo);
      Grid2D ra(static_cast<int>(cfg.ny), static_cast<int>(cfg.nx), halo);
      Grid2D rb(static_cast<int>(cfg.ny), static_cast<int>(cfg.nx), halo);
      fill_random(a, cfg.seed);
      copy(a, b);
      copy(a, ra);
      copy(a, rb);
      run_reference(spec.p2, ra, rb, cfg.tsteps);
      if (cfg.tiled) {
        run_tiled(spec.p2, a, b, cfg.tsteps, cfg.tile_opts);
      } else {
        kernel2d(cfg.method, cfg.isa)(spec.p2, a, b, cfg.tsteps);
      }
      res.max_error = max_abs_diff(a, ra);
      break;
    }
    case 3: {
      Grid3D a(static_cast<int>(cfg.nz), static_cast<int>(cfg.ny),
               static_cast<int>(cfg.nx), halo);
      Grid3D b(static_cast<int>(cfg.nz), static_cast<int>(cfg.ny),
               static_cast<int>(cfg.nx), halo);
      Grid3D ra(static_cast<int>(cfg.nz), static_cast<int>(cfg.ny),
                static_cast<int>(cfg.nx), halo);
      Grid3D rb(static_cast<int>(cfg.nz), static_cast<int>(cfg.ny),
                static_cast<int>(cfg.nx), halo);
      fill_random(a, cfg.seed);
      copy(a, b);
      copy(a, ra);
      copy(a, rb);
      run_reference(spec.p3, ra, rb, cfg.tsteps);
      if (cfg.tiled) {
        run_tiled(spec.p3, a, b, cfg.tsteps, cfg.tile_opts);
      } else {
        kernel3d(cfg.method, cfg.isa)(spec.p3, a, b, cfg.tsteps);
      }
      res.max_error = max_abs_diff(a, ra);
      break;
    }
  }
  return res;
}

}  // namespace sf
