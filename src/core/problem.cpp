#include "core/problem.hpp"

namespace sf {

Solver make_solver(const ProblemConfig& cfg) {
  Solver s = Solver::make(cfg.preset);
  s.method(cfg.method).isa(cfg.isa).seed(cfg.seed);
  if (cfg.nx != 0) s.size(cfg.nx, cfg.ny, cfg.nz);
  if (cfg.tsteps != 0) s.steps(cfg.tsteps);
  // The legacy contract is binary: tiled=false always meant the serial
  // untiled kernel, so the shim must not inherit Tiling::Auto.
  if (cfg.tiled)
    s.tiled(cfg.tile_opts);
  else
    s.tiling(Tiling::Off);
  return s;
}

ProblemConfig resolve(ProblemConfig cfg) {
  const StencilSpec& spec = preset(cfg.preset);
  if (cfg.nx == 0) {
    cfg.nx = spec.small_size[0];
    cfg.ny = spec.dims >= 2 ? spec.small_size[1] : 1;
    cfg.nz = spec.dims >= 3 ? spec.small_size[2] : 1;
  }
  if (cfg.tsteps == 0) cfg.tsteps = static_cast<int>(spec.small_tsteps);
  cfg.tile_opts.method = cfg.method;
  cfg.tile_opts.isa = cfg.isa;
  return cfg;
}

RunResult run_problem(const ProblemConfig& cfg) {
  return make_solver(cfg).run();
}

RunResult run_verified(const ProblemConfig& cfg) {
  return make_solver(cfg).run_verified();
}

}  // namespace sf
