#include "core/engine.hpp"

#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "core/tuner.hpp"
#include "fold/cost_model.hpp"
#include "grid/grid_utils.hpp"
#include "tiling/split_tiling.hpp"

namespace sf {

// ---------------------------------------------------------------------------
// Auto method selection + flop accounting (shared by Engine and Solver).
// ---------------------------------------------------------------------------

double flops_per_step(const StencilSpec& spec, long nx, long ny, long nz) {
  double pts = static_cast<double>(nx);
  long f = 0;
  switch (spec.dims) {
    case 1:
      f = spec.p1.flops_per_point();
      if (spec.has_source) f += 2 * static_cast<long>(spec.src1.size());
      break;
    case 2:
      pts *= static_cast<double>(ny);
      f = spec.p2.flops_per_point();
      break;
    case 3:
      pts *= static_cast<double>(ny) * static_cast<double>(nz);
      f = spec.p3.flops_per_point();
      break;
    default:
      throw std::logic_error("bad dims");
  }
  return pts * static_cast<double>(f);
}

namespace {

bool fold_profitable(const StencilSpec& s, int m) {
  switch (s.dims) {
    case 1: return profitability(s.p1, m).index_vec() > 1.0;
    case 2: return profitability(s.p2, m).index_vec() > 1.0;
    default: return profitability(s.p3, m).index_vec() > 1.0;
  }
}

}  // namespace

Method auto_method(const StencilSpec& spec, Isa isa) {
  const int r = effective_radius(spec);
  // Deepest fold first: fold when the cost model says the folded collect
  // beats the naive expansion *and* the folded vector path engages at this
  // radius. Then the paper's single-step ordering (Table 2):
  // ours > dlt > data-reorg > multiple-loads > naive.
  const KernelInfo* folded = find_kernel(Method::Ours2, spec.dims, isa);
  if (folded != nullptr && folded->supports(r) &&
      fold_profitable(spec, folded->fold_depth))
    return Method::Ours2;
  for (Method m : {Method::Ours, Method::DLT, Method::DataReorg,
                   Method::MultipleLoads}) {
    const KernelInfo* k = find_kernel(m, spec.dims, isa);
    if (k != nullptr && k->supports(r)) return m;
  }
  return Method::Naive;
}

// ---------------------------------------------------------------------------
// Prepared state
// ---------------------------------------------------------------------------

struct PreparedStencil::State {
  StencilSpec spec;
  const KernelInfo* kernel = nullptr;
  int halo = 0;
  ExecutionPlan plan;
  long nx = 0, ny = 1, nz = 1;
  int tsteps = 0;
};

const StencilSpec& PreparedStencil::spec() const { return st_->spec; }
const KernelInfo& PreparedStencil::kernel() const { return *st_->kernel; }
int PreparedStencil::halo() const { return st_->halo; }
const ExecutionPlan& PreparedStencil::plan() const { return st_->plan; }
long PreparedStencil::nx() const { return st_->nx; }
long PreparedStencil::ny() const { return st_->ny; }
long PreparedStencil::nz() const { return st_->nz; }
int PreparedStencil::tsteps() const { return st_->tsteps; }

// ---------------------------------------------------------------------------
// View validation
// ---------------------------------------------------------------------------

namespace {

bool aligned64(const double* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & 63u) == 0;
}

[[noreturn]] void bad_view(const char* which, const std::string& why) {
  throw std::invalid_argument(std::string("PreparedStencil::run: view '") +
                              which + "' " + why);
}

void check_common(const char* which, bool valid, Layout layout, int halo,
                  int need_halo, const double* data) {
  if (!valid) bad_view(which, "is empty (default-constructed)");
  if (layout != Layout::Natural)
    bad_view(which, std::string("is tagged ") + layout_name(layout) +
                        "; executors expect natural layout and apply "
                        "transforms internally");
  if (halo < need_halo) {
    std::ostringstream os;
    os << "has halo " << halo << " but the prepared kernel requires >= "
       << need_halo;
    bad_view(which, os.str());
  }
  if (!aligned64(data))
    bad_view(which, "interior is not 64-byte aligned (allocate via Grid or "
                    "an aligned allocator)");
}

// Addressable span of a view, as [lo, hi) byte-order addresses. Pointer
// order across distinct allocations is compared via uintptr_t, which every
// supported platform orders consistently.
struct Span {
  std::uintptr_t lo, hi;
};

Span span_of(const FieldView1D& v) {
  const double* lo = v.data() - v.halo();
  return {reinterpret_cast<std::uintptr_t>(lo),
          reinterpret_cast<std::uintptr_t>(v.data() + v.n() + v.halo())};
}

Span span_of(const FieldView2D& v) {
  const double* lo = v.row(-v.halo()) - v.halo();
  const double* hi = v.row(v.ny() + v.halo() - 1) + v.nx() + v.halo();
  return {reinterpret_cast<std::uintptr_t>(lo),
          reinterpret_cast<std::uintptr_t>(hi)};
}

Span span_of(const FieldView3D& v) {
  const double* lo = v.row(-v.halo(), -v.halo()) - v.halo();
  const double* hi = v.row(v.nz() + v.halo() - 1, v.ny() + v.halo() - 1) +
                     v.nx() + v.halo();
  return {reinterpret_cast<std::uintptr_t>(lo),
          reinterpret_cast<std::uintptr_t>(hi)};
}

template <class View>
void check_disjoint(const char* which, const View& v, const char* other_name,
                    const View& other) {
  const Span a = span_of(v), b = span_of(other);
  if (a.lo < b.hi && b.lo < a.hi)
    bad_view(which, std::string("overlaps view '") + other_name +
                        "'; executors need disjoint buffers");
}

void check_extent(const char* which, const char* axis, long have, long want) {
  if (have != want) {
    std::ostringstream os;
    os << "has " << axis << " = " << have << " but was prepared for "
       << want;
    bad_view(which, os.str());
  }
}

void check_stride(const char* which, int stride, int nx, int halo) {
  if (stride % 8 != 0) {
    std::ostringstream os;
    os << "has row stride " << stride
       << ", which is not a multiple of 8 doubles";
    bad_view(which, os.str());
  }
  if (stride < nx + 2 * halo) {
    std::ostringstream os;
    os << "has row stride " << stride
       << " < nx + 2*halo = " << nx + 2 * halo
       << "; consecutive rows would alias";
    bad_view(which, os.str());
  }
}

void check_plane_stride(const char* which, std::size_t plane, int stride,
                        int ny, int halo) {
  const std::size_t need =
      static_cast<std::size_t>(stride) * (ny + 2 * halo);
  if (plane % 8 != 0) {
    std::ostringstream os;
    os << "has plane stride " << plane
       << ", which is not a multiple of 8 doubles";
    bad_view(which, os.str());
  }
  if (plane < need) {
    std::ostringstream os;
    os << "has plane stride " << plane << " < stride * (ny + 2*halo) = "
       << need << "; consecutive planes would alias";
    bad_view(which, os.str());
  }
}

void validate(bool has_source, int need_halo, long nx, const FieldView1D& a,
              const FieldView1D& b, const FieldView1D* k) {
  check_common("a", a.valid(), a.layout(), a.halo(), need_halo, a.data());
  check_common("b", b.valid(), b.layout(), b.halo(), need_halo, b.data());
  check_extent("a", "n", a.n(), nx);
  check_extent("b", "n", b.n(), nx);
  check_disjoint("b", b, "a", a);
  if (has_source) {
    if (k == nullptr)
      throw std::invalid_argument(
          "PreparedStencil::run: this stencil has a source term; use the "
          "overload taking the source view 'k'");
    check_common("k", k->valid(), k->layout(), k->halo(), need_halo,
                 k->data());
    check_extent("k", "n", k->n(), nx);
    check_disjoint("k", *k, "a", a);
    check_disjoint("k", *k, "b", b);
  } else if (k != nullptr) {
    throw std::invalid_argument(
        "PreparedStencil::run: source view 'k' passed but the prepared "
        "stencil has no source term");
  }
}

void validate(int need_halo, long nx, long ny, const FieldView2D& a,
              const FieldView2D& b) {
  check_common("a", a.valid(), a.layout(), a.halo(), need_halo, a.data());
  check_common("b", b.valid(), b.layout(), b.halo(), need_halo, b.data());
  check_extent("a", "nx", a.nx(), nx);
  check_extent("a", "ny", a.ny(), ny);
  check_extent("b", "nx", b.nx(), nx);
  check_extent("b", "ny", b.ny(), ny);
  check_stride("a", a.stride(), a.nx(), a.halo());
  check_stride("b", b.stride(), b.nx(), b.halo());
  check_disjoint("b", b, "a", a);
}

void validate(int need_halo, long nx, long ny, long nz, const FieldView3D& a,
              const FieldView3D& b) {
  check_common("a", a.valid(), a.layout(), a.halo(), need_halo, a.data());
  check_common("b", b.valid(), b.layout(), b.halo(), need_halo, b.data());
  check_extent("a", "nx", a.nx(), nx);
  check_extent("a", "ny", a.ny(), ny);
  check_extent("a", "nz", a.nz(), nz);
  check_extent("b", "nx", b.nx(), nx);
  check_extent("b", "ny", b.ny(), ny);
  check_extent("b", "nz", b.nz(), nz);
  check_stride("a", a.stride(), a.nx(), a.halo());
  check_stride("b", b.stride(), b.nx(), b.halo());
  check_plane_stride("a", a.plane_stride(), a.stride(), a.ny(), a.halo());
  check_plane_stride("b", b.plane_stride(), b.stride(), b.ny(), b.halo());
  check_disjoint("b", b, "a", a);
}

// The Dirichlet halo is input state on *both* ping-pong buffers (kernels
// read whichever buffer holds the current parity), so run() mirrors a's
// halo ring into b before executing. Interior cells are not touched —
// that is the zero-copy contract.
void sync_halo(const FieldView1D& a, const FieldView1D& b) {
  const int h = std::min(a.halo(), b.halo());
  for (int i = -h; i < 0; ++i) b.at(i) = a.at(i);
  for (int i = a.n(); i < a.n() + h; ++i) b.at(i) = a.at(i);
}

// O(surface), not O(volume): only the halo shell is copied — rows fully
// inside the halo slabs in full, interior rows just their x rims.
void sync_row_halo(const double* s, double* d, int nx, int h, bool full) {
  if (full) {
    for (int x = -h; x < nx + h; ++x) d[x] = s[x];
  } else {
    for (int x = -h; x < 0; ++x) d[x] = s[x];
    for (int x = nx; x < nx + h; ++x) d[x] = s[x];
  }
}

void sync_halo(const FieldView2D& a, const FieldView2D& b) {
  const int h = std::min(a.halo(), b.halo());
  for (int y = -h; y < a.ny() + h; ++y)
    sync_row_halo(a.row(y), b.row(y), a.nx(), h, y < 0 || y >= a.ny());
}

void sync_halo(const FieldView3D& a, const FieldView3D& b) {
  const int h = std::min(a.halo(), b.halo());
  for (int z = -h; z < a.nz() + h; ++z) {
    const bool halo_plane = z < 0 || z >= a.nz();
    for (int y = -h; y < a.ny() + h; ++y)
      sync_row_halo(a.row(z, y), b.row(z, y), a.nx(), h,
                    halo_plane || y < 0 || y >= a.ny());
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void PreparedStencil::run(FieldView1D a, FieldView1D b, int tsteps) const {
  run(a, b, FieldView1D{}, tsteps);
}

void PreparedStencil::run(FieldView1D a, FieldView1D b, FieldView1D k,
                          int tsteps) const {
  if (st_ == nullptr)
    throw std::invalid_argument("PreparedStencil::run on an empty handle");
  if (st_->spec.dims != 1)
    throw std::invalid_argument("1-D run() on a stencil prepared for " +
                                std::to_string(st_->spec.dims) + "-D");
  const FieldView1D* kk = k.valid() ? &k : nullptr;
  validate(st_->spec.has_source, st_->halo, st_->nx, a, b, kk);
  sync_halo(a, b);
  const Pattern1D* src = st_->spec.has_source ? &st_->spec.src1 : nullptr;
  if (st_->plan.tiled)
    run_tile_plan(st_->spec.p1, a, b, src, kk, tsteps, st_->plan.tile);
  else
    st_->kernel->run1(st_->spec.p1, a, b, src, kk, tsteps);
}

void PreparedStencil::run(FieldView2D a, FieldView2D b, int tsteps) const {
  if (st_ == nullptr)
    throw std::invalid_argument("PreparedStencil::run on an empty handle");
  if (st_->spec.dims != 2)
    throw std::invalid_argument("2-D run() on a stencil prepared for " +
                                std::to_string(st_->spec.dims) + "-D");
  validate(st_->halo, st_->nx, st_->ny, a, b);
  sync_halo(a, b);
  if (st_->plan.tiled)
    run_tile_plan(st_->spec.p2, a, b, tsteps, st_->plan.tile);
  else
    st_->kernel->run2(st_->spec.p2, a, b, tsteps);
}

void PreparedStencil::run(FieldView3D a, FieldView3D b, int tsteps) const {
  if (st_ == nullptr)
    throw std::invalid_argument("PreparedStencil::run on an empty handle");
  if (st_->spec.dims != 3)
    throw std::invalid_argument("3-D run() on a stencil prepared for " +
                                std::to_string(st_->spec.dims) + "-D");
  validate(st_->halo, st_->nx, st_->ny, st_->nz, a, b);
  sync_halo(a, b);
  if (st_->plan.tiled)
    run_tile_plan(st_->spec.p3, a, b, tsteps, st_->plan.tile);
  else
    st_->kernel->run3(st_->spec.p3, a, b, tsteps);
}

void PreparedStencil::advance(FieldView1D a, FieldView1D b,
                              int nsteps) const {
  run(a, b, nsteps);
}
void PreparedStencil::advance(FieldView1D a, FieldView1D b, FieldView1D k,
                              int nsteps) const {
  run(a, b, k, nsteps);
}
void PreparedStencil::advance(FieldView2D a, FieldView2D b,
                              int nsteps) const {
  run(a, b, nsteps);
}
void PreparedStencil::advance(FieldView3D a, FieldView3D b,
                              int nsteps) const {
  run(a, b, nsteps);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 1099511628211ull;
}

template <int D>
std::uint64_t hash_pattern(std::uint64_t h, const Pattern<D>& p) {
  for (const auto& t : p.taps) {
    for (int d = 0; d < D; ++d)
      h = fnv1a(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(t.off[d])));
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(t.w), "double is 64-bit");
    __builtin_memcpy(&bits, &t.w, sizeof(bits));
    h = fnv1a(h, bits);
  }
  return h;
}

std::uint64_t hash_spec(const StencilSpec& s) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(h, static_cast<std::uint64_t>(s.dims));
  switch (s.dims) {
    case 1: h = hash_pattern(h, s.p1); break;
    case 2: h = hash_pattern(h, s.p2); break;
    default: h = hash_pattern(h, s.p3); break;
  }
  h = fnv1a(h, s.has_source ? 1 : 0);
  if (s.has_source) h = hash_pattern(h, s.src1);
  return h;
}

template <int D>
bool same_pattern(const Pattern<D>& a, const Pattern<D>& b) {
  if (a.taps.size() != b.taps.size()) return false;
  for (std::size_t i = 0; i < a.taps.size(); ++i) {
    if (a.taps[i].off != b.taps[i].off) return false;
    if (a.taps[i].w != b.taps[i].w) return false;
  }
  return true;
}

// Taps are kept sorted and offset-unique by the Pattern algebra, so
// element-wise comparison is a canonical equality test. Identity metadata
// (id, name) participates too: a pattern-identical custom spec must not be
// handed a cached state whose spec() reports another stencil's name.
bool same_spec(const StencilSpec& a, const StencilSpec& b) {
  if (a.id != b.id || a.name != b.name) return false;
  if (a.dims != b.dims || a.has_source != b.has_source) return false;
  if (a.has_source && !same_pattern(a.src1, b.src1)) return false;
  switch (a.dims) {
    case 1: return same_pattern(a.p1, b.p1);
    case 2: return same_pattern(a.p2, b.p2);
    default: return same_pattern(a.p3, b.p3);
  }
}

}  // namespace

struct Engine::CacheEntry {
  std::uint64_t spec_hash = 0;
  ExecOptions opts;
  long nx = 0, ny = 1, nz = 1;
  int tsteps = 0;
  long tune_version = 0;  // TuneCache generation the plan was built against
  std::shared_ptr<const PreparedStencil::State> state;
};

Engine& Engine::instance() {
  static Engine* e = new Engine();
  return *e;
}

PreparedStencil Engine::prepare(Preset p, Extents ext,
                                const ExecOptions& opts) {
  return prepare(preset(p), ext, opts);
}

PreparedStencil Engine::prepare(const StencilSpec& spec, Extents ext,
                                const ExecOptions& opts) {
  // Defaults mirror Solver::resolve(): each unset extent independently
  // falls back to the preset fast-run size.
  if (ext.nx == 0) ext.nx = spec.small_size[0];
  if (ext.ny == 0) ext.ny = spec.dims >= 2 ? spec.small_size[1] : 1;
  if (ext.nz == 0) ext.nz = spec.dims >= 3 ? spec.small_size[2] : 1;
  const int tsteps =
      opts.tsteps > 0 ? opts.tsteps : static_cast<int>(spec.small_tsteps);

  // Plans read the TuneCache, so a cached preparation is only valid for the
  // tuner generation it was built against; any mutation (store, clear,
  // file load) invalidates it — cheaply: the next prepare re-plans and
  // picks the current tuning table up.
  const std::uint64_t sh = hash_spec(spec);
  const long tv = TuneCache::instance().generation();
  auto matches = [&](const CacheEntry& e) {
    return e.spec_hash == sh && e.nx == ext.nx && e.ny == ext.ny &&
           e.nz == ext.nz && e.tsteps == tsteps &&
           e.opts.method == opts.method && e.opts.isa == opts.isa &&
           e.opts.tiling == opts.tiling && e.opts.threads == opts.threads &&
           e.opts.tile == opts.tile &&
           e.opts.time_block == opts.time_block &&
           same_spec(e.state->spec, spec);
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const CacheEntry& e : cache_)
      if (e.tune_version == tv && matches(e)) {
        ++hits_;
        return PreparedStencil(e.state);
      }
  }

  auto st = std::make_shared<PreparedStencil::State>();
  st->spec = spec;
  st->nx = ext.nx;
  st->ny = ext.ny;
  st->nz = ext.nz;
  st->tsteps = tsteps;

  const Method m =
      opts.method == Method::Auto ? auto_method(spec, opts.isa) : opts.method;
  st->kernel = find_kernel(m, spec.dims, opts.isa);
  if (st->kernel == nullptr)
    throw std::invalid_argument(std::string("no kernel registered for ") +
                                method_name(m) + " in " +
                                std::to_string(spec.dims) + "-D at " +
                                isa_name(resolve_isa(opts.isa)));
  st->halo = st->kernel->required_halo(effective_radius(spec));

  PlanRequest req;
  req.spec = &st->spec;
  req.kernel = st->kernel;
  req.nx = ext.nx;
  req.ny = ext.ny;
  req.nz = ext.nz;
  req.tsteps = tsteps;
  req.tiling = opts.tiling;
  req.threads = opts.threads;
  req.tile = opts.tile;
  req.time_block = opts.time_block;
  st->plan = plan_execution(req);

  if (st->plan.tiled) warm_pool(st->plan.tile.threads);

  CacheEntry entry;
  entry.spec_hash = sh;
  entry.opts = opts;
  entry.nx = ext.nx;
  entry.ny = ext.ny;
  entry.nz = ext.nz;
  entry.tsteps = tsteps;
  entry.tune_version = tv;
  entry.state = st;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Entries from older tuner generations can never match again (lookups
    // require the current generation), so evict them wholesale along with
    // any same-request entry being superseded; a hard cap bounds the cache
    // against unbounded distinct-shape churn in long-lived processes.
    cache_.erase(std::remove_if(cache_.begin(), cache_.end(),
                                [&](const CacheEntry& e) {
                                  return e.tune_version != tv || matches(e);
                                }),
                 cache_.end());
    constexpr std::size_t kMaxEntries = 256;
    if (cache_.size() >= kMaxEntries)
      cache_.erase(cache_.begin());  // oldest first
    cache_.push_back(std::move(entry));
  }
  return PreparedStencil(st);
}

std::size_t Engine::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

long Engine::plan_cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

void Engine::warm_pool(int threads) {
  const int want = threads > 0 ? threads : omp_get_max_threads();
  // The lock is held across the (empty) parallel region so a concurrent
  // caller cannot observe warmed_threads_ updated before the workers
  // actually exist; the workers never touch the engine, so this cannot
  // deadlock.
  std::lock_guard<std::mutex> lock(mu_);
  if (warmed_threads_ >= want) return;
#pragma omp parallel num_threads(want)
  {
  }
  warmed_threads_ = want;
}

}  // namespace sf
