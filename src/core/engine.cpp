#include "core/engine.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/env.hpp"
#include "core/tuner.hpp"
#include "fold/cost_model.hpp"
#include "fold/folding_plan.hpp"
#include "grid/grid_utils.hpp"
#include "kernels/kernels3d_impl.hpp"
#include "layout/transpose_layout.hpp"
#include "telemetry/telemetry.hpp"
#include "tiling/split_tiling.hpp"

namespace sf {

// ---------------------------------------------------------------------------
// Auto method selection + flop accounting (shared by Engine and Solver).
// ---------------------------------------------------------------------------

double flops_per_step(const StencilSpec& spec, long nx, long ny, long nz) {
  double pts = static_cast<double>(nx);
  long f = 0;
  switch (spec.dims) {
    case 1:
      f = spec.p1.flops_per_point();
      if (spec.has_source) f += 2 * static_cast<long>(spec.src1.size());
      break;
    case 2:
      pts *= static_cast<double>(ny);
      f = spec.p2.flops_per_point();
      break;
    case 3:
      pts *= static_cast<double>(ny) * static_cast<double>(nz);
      f = spec.p3.flops_per_point();
      break;
    default:
      throw std::logic_error("bad dims");
  }
  return pts * static_cast<double>(f);
}

namespace {

bool fold_profitable(const StencilSpec& s, int m) {
  switch (s.dims) {
    case 1: return profitability(s.p1, m).index_vec() > 1.0;
    case 2: return profitability(s.p2, m).index_vec() > 1.0;
    default: return profitability(s.p3, m).index_vec() > 1.0;
  }
}

}  // namespace

Method auto_method(const StencilSpec& spec, Isa isa) {
  const int r = effective_radius(spec);
  // Deepest fold first: fold when the cost model says the folded collect
  // beats the naive expansion *and* the folded vector path engages at this
  // radius. Then the paper's single-step ordering (Table 2):
  // ours > dlt > data-reorg > multiple-loads > naive.
  const KernelInfo* folded = find_kernel(Method::Ours2, spec.dims, isa);
  if (folded != nullptr && folded->supports(r) &&
      fold_profitable(spec, folded->fold_depth))
    return Method::Ours2;
  for (Method m : {Method::Ours, Method::DLT, Method::DataReorg,
                   Method::MultipleLoads}) {
    const KernelInfo* k = find_kernel(m, spec.dims, isa);
    if (k != nullptr && k->supports(r)) return m;
  }
  return Method::Naive;
}

// ---------------------------------------------------------------------------
// Prepared state
// ---------------------------------------------------------------------------

struct PreparedStencil::State {
  StencilSpec spec;
  const KernelInfo* kernel = nullptr;
  int halo = 0;
  ExecutionPlan plan;
  long nx = 0, ny = 1, nz = 1;
  int tsteps = 0;
  Layout preferred = Layout::Natural;  // kernel's layout at this radius
  Layout accept = Layout::Natural;     // resident layout run() accepts
  HaloPolicy halo_policy = HaloPolicy::Sync;
  Affinity affinity = Affinity::None;  // resolved placement policy
  bool validate = true;                // per-call view validation
  int threads = 0;                     // resolved request thread count (0 =
                                       // hardware); batch fan-out pool size
  std::uint64_t plan_key = 0;          // effective-request hash (batch key)
  std::shared_ptr<WorkerPool> pool;    // runtime pool of the tiled stages
                                       // (shared per (threads, affinity);
                                       // null for untiled/serial plans)
};

const StencilSpec& PreparedStencil::spec() const { return st_->spec; }
const KernelInfo& PreparedStencil::kernel() const { return *st_->kernel; }
int PreparedStencil::halo() const { return st_->halo; }
const ExecutionPlan& PreparedStencil::plan() const { return st_->plan; }
long PreparedStencil::nx() const { return st_->nx; }
long PreparedStencil::ny() const { return st_->ny; }
long PreparedStencil::nz() const { return st_->nz; }
int PreparedStencil::tsteps() const { return st_->tsteps; }
Layout PreparedStencil::preferred_layout() const { return st_->preferred; }
Layout PreparedStencil::resident_layout() const { return st_->accept; }
HaloPolicy PreparedStencil::halo_policy() const { return st_->halo_policy; }
Affinity PreparedStencil::affinity() const { return st_->affinity; }
bool PreparedStencil::validates() const { return st_->validate; }
std::uint64_t PreparedStencil::plan_key() const { return st_->plan_key; }
const WorkerPool* PreparedStencil::pool() const { return st_->pool.get(); }

// ---------------------------------------------------------------------------
// View validation
// ---------------------------------------------------------------------------

namespace {

bool aligned64(const double* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & 63u) == 0;
}

[[noreturn]] void bad_view(const char* which, const std::string& why) {
  throw std::invalid_argument(std::string("PreparedStencil::run: view '") +
                              which + "' " + why);
}

// `accept` is the resident layout this preparation admits beyond Natural
// (ExecOptions::layout): Natural-tagged views are always valid (the kernel
// transforms in/out per call), accept-tagged views execute resident —
// provided their recorded layout width matches the prepared kernel's (the
// transforms permute differently per SIMD width, so a W=4-resident buffer
// handed to a W=8 kernel would be silently misread, never detectably).
void check_common(const char* which, bool valid, Layout layout,
                  int layout_width, int halo, int need_halo,
                  const double* data, Layout accept, int want_width) {
  if (!valid) bad_view(which, "is empty (default-constructed)");
  if (layout != Layout::Natural && layout != accept)
    bad_view(which,
             std::string("is tagged ") + layout_name(layout) +
                 "; this preparation accepts " +
                 (accept == Layout::Natural
                      ? std::string("only natural-layout views (prepare with "
                                    "ExecOptions::layout = the kernel's "
                                    "preferred_layout() for resident "
                                    "execution)")
                      : std::string("natural or ") + layout_name(accept) +
                            " views (transform via to_resident_layout)"));
  if (layout != Layout::Natural && layout_width != want_width) {
    std::ostringstream os;
    os << "is tagged " << layout_name(layout) << " for SIMD width "
       << layout_width << " but the prepared kernel reads width "
       << want_width
       << "; transform via to_resident_layout on this handle (hand-tagged "
          "views must record the width: with_layout(layout, width))";
    bad_view(which, os.str());
  }
  if (halo < need_halo) {
    std::ostringstream os;
    os << "has halo " << halo << " but the prepared kernel requires >= "
       << need_halo;
    bad_view(which, os.str());
  }
  if (!aligned64(data))
    bad_view(which, "interior is not 64-byte aligned (allocate via Grid or "
                    "an aligned allocator)");
}

// The ping-pong pair must share one layout: the kernels treat both buffers
// as being in the same storage order throughout the run.
void check_same_layout(Layout a, Layout b) {
  if (a != b)
    bad_view("b", std::string("is tagged ") + layout_name(b) +
                      " but 'a' is tagged " + layout_name(a) +
                      "; ping-pong buffers must share one layout");
}

// Addressable span of a view, as [lo, hi) byte-order addresses. Pointer
// order across distinct allocations is compared via uintptr_t, which every
// supported platform orders consistently.
struct Span {
  std::uintptr_t lo, hi;
};

Span span_of(const FieldView1D& v) {
  const double* lo = v.data() - v.halo();
  return {reinterpret_cast<std::uintptr_t>(lo),
          reinterpret_cast<std::uintptr_t>(v.data() + v.n() + v.halo())};
}

Span span_of(const FieldView2D& v) {
  const double* lo = v.row(-v.halo()) - v.halo();
  const double* hi = v.row(v.ny() + v.halo() - 1) + v.nx() + v.halo();
  return {reinterpret_cast<std::uintptr_t>(lo),
          reinterpret_cast<std::uintptr_t>(hi)};
}

Span span_of(const FieldView3D& v) {
  const double* lo = v.row(-v.halo(), -v.halo()) - v.halo();
  const double* hi = v.row(v.nz() + v.halo() - 1, v.ny() + v.halo() - 1) +
                     v.nx() + v.halo();
  return {reinterpret_cast<std::uintptr_t>(lo),
          reinterpret_cast<std::uintptr_t>(hi)};
}

template <class View>
void check_disjoint(const char* which, const View& v, const char* other_name,
                    const View& other) {
  const Span a = span_of(v), b = span_of(other);
  if (a.lo < b.hi && b.lo < a.hi)
    bad_view(which, std::string("overlaps view '") + other_name +
                        "'; executors need disjoint buffers");
}

void check_extent(const char* which, const char* axis, long have, long want) {
  if (have != want) {
    std::ostringstream os;
    os << "has " << axis << " = " << have << " but was prepared for "
       << want;
    bad_view(which, os.str());
  }
}

void check_stride(const char* which, int stride, int nx, int halo) {
  if (stride % 8 != 0) {
    std::ostringstream os;
    os << "has row stride " << stride
       << ", which is not a multiple of 8 doubles";
    bad_view(which, os.str());
  }
  if (stride < nx + 2 * halo) {
    std::ostringstream os;
    os << "has row stride " << stride
       << " < nx + 2*halo = " << nx + 2 * halo
       << "; consecutive rows would alias";
    bad_view(which, os.str());
  }
}

void check_plane_stride(const char* which, std::size_t plane, int stride,
                        int ny, int halo) {
  const std::size_t need =
      static_cast<std::size_t>(stride) * (ny + 2 * halo);
  if (plane % 8 != 0) {
    std::ostringstream os;
    os << "has plane stride " << plane
       << ", which is not a multiple of 8 doubles";
    bad_view(which, os.str());
  }
  if (plane < need) {
    std::ostringstream os;
    os << "has plane stride " << plane << " < stride * (ny + 2*halo) = "
       << need << "; consecutive planes would alias";
    bad_view(which, os.str());
  }
}

void validate(bool has_source, int need_halo, long nx, const FieldView1D& a,
              const FieldView1D& b, const FieldView1D* k, Layout accept,
              int want_width) {
  check_common("a", a.valid(), a.layout(), a.layout_width(), a.halo(),
               need_halo, a.data(), accept, want_width);
  check_common("b", b.valid(), b.layout(), b.layout_width(), b.halo(),
               need_halo, b.data(), accept, want_width);
  check_same_layout(a.layout(), b.layout());
  check_extent("a", "n", a.n(), nx);
  check_extent("b", "n", b.n(), nx);
  check_disjoint("b", b, "a", a);
  if (has_source) {
    if (k == nullptr)
      throw std::invalid_argument(
          "PreparedStencil::run: this stencil has a source term; use the "
          "overload taking the source view 'k'");
    // The source array's layout is independent of the pair's: a
    // natural-tagged k is copied+transformed per call, a resident-tagged
    // one is read zero-copy.
    check_common("k", k->valid(), k->layout(), k->layout_width(), k->halo(),
                 need_halo, k->data(), accept, want_width);
    check_extent("k", "n", k->n(), nx);
    check_disjoint("k", *k, "a", a);
    check_disjoint("k", *k, "b", b);
  } else if (k != nullptr) {
    throw std::invalid_argument(
        "PreparedStencil::run: source view 'k' passed but the prepared "
        "stencil has no source term");
  }
}

void validate(int need_halo, long nx, long ny, const FieldView2D& a,
              const FieldView2D& b, Layout accept, int want_width) {
  check_common("a", a.valid(), a.layout(), a.layout_width(), a.halo(),
               need_halo, a.data(), accept, want_width);
  check_common("b", b.valid(), b.layout(), b.layout_width(), b.halo(),
               need_halo, b.data(), accept, want_width);
  check_same_layout(a.layout(), b.layout());
  check_extent("a", "nx", a.nx(), nx);
  check_extent("a", "ny", a.ny(), ny);
  check_extent("b", "nx", b.nx(), nx);
  check_extent("b", "ny", b.ny(), ny);
  check_stride("a", a.stride(), a.nx(), a.halo());
  check_stride("b", b.stride(), b.nx(), b.halo());
  check_disjoint("b", b, "a", a);
}

void validate(int need_halo, long nx, long ny, long nz, const FieldView3D& a,
              const FieldView3D& b, Layout accept, int want_width) {
  check_common("a", a.valid(), a.layout(), a.layout_width(), a.halo(),
               need_halo, a.data(), accept, want_width);
  check_common("b", b.valid(), b.layout(), b.layout_width(), b.halo(),
               need_halo, b.data(), accept, want_width);
  check_same_layout(a.layout(), b.layout());
  check_extent("a", "nx", a.nx(), nx);
  check_extent("a", "ny", a.ny(), ny);
  check_extent("a", "nz", a.nz(), nz);
  check_extent("b", "nx", b.nx(), nx);
  check_extent("b", "ny", b.ny(), ny);
  check_extent("b", "nz", b.nz(), nz);
  check_stride("a", a.stride(), a.nx(), a.halo());
  check_stride("b", b.stride(), b.nx(), b.halo());
  check_plane_stride("a", a.plane_stride(), a.stride(), a.ny(), a.halo());
  check_plane_stride("b", b.plane_stride(), b.stride(), b.ny(), b.halo());
  check_disjoint("b", b, "a", a);
}

// The Dirichlet halo is input state on *both* ping-pong buffers (kernels
// read whichever buffer holds the current parity), so run() mirrors a's
// halo ring into b before executing. Interior cells are not touched —
// that is the zero-copy contract. The copy is positional, so it is valid
// in any resident layout as long as both buffers share one (validated):
// permute-then-copy and copy-then-permute produce identical bytes.
void sync_halo(const FieldView1D& a, const FieldView1D& b) {
  const int h = std::min(a.halo(), b.halo());
  for (int i = -h; i < 0; ++i) b.at(i) = a.at(i);
  for (int i = a.n(); i < a.n() + h; ++i) b.at(i) = a.at(i);
}

// O(surface), not O(volume): only the halo shell is copied — rows fully
// inside the halo slabs in full, interior rows just their x rims.
void sync_row_halo(const double* s, double* d, int nx, int h, bool full) {
  if (full) {
    for (int x = -h; x < nx + h; ++x) d[x] = s[x];
  } else {
    for (int x = -h; x < 0; ++x) d[x] = s[x];
    for (int x = nx; x < nx + h; ++x) d[x] = s[x];
  }
}

void sync_halo(const FieldView2D& a, const FieldView2D& b) {
  const int h = std::min(a.halo(), b.halo());
  for (int y = -h; y < a.ny() + h; ++y)
    sync_row_halo(a.row(y), b.row(y), a.nx(), h, y < 0 || y >= a.ny());
}

void sync_halo(const FieldView3D& a, const FieldView3D& b) {
  const int h = std::min(a.halo(), b.halo());
  for (int z = -h; z < a.nz() + h; ++z) {
    const bool halo_plane = z < 0 || z >= a.nz();
    for (int y = -h; y < a.ny() + h; ++y)
      sync_row_halo(a.row(z, y), b.row(z, y), a.nx(), h,
                    halo_plane || y < 0 || y >= a.ny());
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void PreparedStencil::run(FieldView1D a, FieldView1D b, int tsteps) const {
  run(a, b, FieldView1D{}, tsteps);
}

void PreparedStencil::run(FieldView1D a, FieldView1D b, FieldView1D k,
                          int tsteps) const {
  if (st_ == nullptr)
    throw std::invalid_argument("PreparedStencil::run on an empty handle");
  if (st_->spec.dims != 1)
    throw std::invalid_argument("1-D run() on a stencil prepared for " +
                                std::to_string(st_->spec.dims) + "-D");
  const FieldView1D* kk = k.valid() ? &k : nullptr;
  if (st_->validate)
    validate(st_->spec.has_source, st_->halo, st_->nx, a, b, kk, st_->accept,
             st_->kernel->width);
  if (st_->halo_policy == HaloPolicy::Sync) sync_halo(a, b);
  const Pattern1D* src = st_->spec.has_source ? &st_->spec.src1 : nullptr;
  if (st_->plan.tiled)
    run_tile_plan(st_->spec.p1, a, b, src, kk, tsteps, st_->plan.tile);
  else
    st_->kernel->run1(st_->spec.p1, a, b, src, kk, tsteps);
}

void PreparedStencil::run(FieldView2D a, FieldView2D b, int tsteps) const {
  if (st_ == nullptr)
    throw std::invalid_argument("PreparedStencil::run on an empty handle");
  if (st_->spec.dims != 2)
    throw std::invalid_argument("2-D run() on a stencil prepared for " +
                                std::to_string(st_->spec.dims) + "-D");
  if (st_->validate)
    validate(st_->halo, st_->nx, st_->ny, a, b, st_->accept,
             st_->kernel->width);
  if (st_->halo_policy == HaloPolicy::Sync) sync_halo(a, b);
  if (st_->plan.tiled)
    run_tile_plan(st_->spec.p2, a, b, tsteps, st_->plan.tile);
  else
    st_->kernel->run2(st_->spec.p2, a, b, tsteps);
}

void PreparedStencil::run(FieldView3D a, FieldView3D b, int tsteps) const {
  if (st_ == nullptr)
    throw std::invalid_argument("PreparedStencil::run on an empty handle");
  if (st_->spec.dims != 3)
    throw std::invalid_argument("3-D run() on a stencil prepared for " +
                                std::to_string(st_->spec.dims) + "-D");
  if (st_->validate)
    validate(st_->halo, st_->nx, st_->ny, st_->nz, a, b, st_->accept,
             st_->kernel->width);
  if (st_->halo_policy == HaloPolicy::Sync) sync_halo(a, b);
  if (st_->plan.tiled)
    run_tile_plan(st_->spec.p3, a, b, tsteps, st_->plan.tile);
  else
    st_->kernel->run3(st_->spec.p3, a, b, tsteps);
}

void PreparedStencil::advance(FieldView1D a, FieldView1D b,
                              int nsteps) const {
  run(a, b, nsteps);
}
void PreparedStencil::advance(FieldView1D a, FieldView1D b, FieldView1D k,
                              int nsteps) const {
  run(a, b, k, nsteps);
}
void PreparedStencil::advance(FieldView2D a, FieldView2D b,
                              int nsteps) const {
  run(a, b, nsteps);
}
void PreparedStencil::advance(FieldView3D a, FieldView3D b,
                              int nsteps) const {
  run(a, b, nsteps);
}

void PreparedStencil::validate_views(FieldView1D a, FieldView1D b,
                                     const FieldView1D* k) const {
  if (st_ == nullptr)
    throw std::invalid_argument(
        "PreparedStencil::validate_views on an empty handle");
  if (st_->spec.dims != 1)
    throw std::invalid_argument(
        "1-D validate_views() on a stencil prepared for " +
        std::to_string(st_->spec.dims) + "-D");
  validate(st_->spec.has_source, st_->halo, st_->nx, a, b, k, st_->accept,
           st_->kernel->width);
}

void PreparedStencil::validate_views(FieldView2D a, FieldView2D b) const {
  if (st_ == nullptr)
    throw std::invalid_argument(
        "PreparedStencil::validate_views on an empty handle");
  if (st_->spec.dims != 2)
    throw std::invalid_argument(
        "2-D validate_views() on a stencil prepared for " +
        std::to_string(st_->spec.dims) + "-D");
  validate(st_->halo, st_->nx, st_->ny, a, b, st_->accept,
           st_->kernel->width);
}

void PreparedStencil::validate_views(FieldView3D a, FieldView3D b) const {
  if (st_ == nullptr)
    throw std::invalid_argument(
        "PreparedStencil::validate_views on an empty handle");
  if (st_->spec.dims != 3)
    throw std::invalid_argument(
        "3-D validate_views() on a stencil prepared for " +
        std::to_string(st_->spec.dims) + "-D");
  validate(st_->halo, st_->nx, st_->ny, st_->nz, a, b, st_->accept,
           st_->kernel->width);
}

void PreparedStencil::advance_batch(const std::vector<TileBatch1D>& items,
                                    int nsteps) const {
  if (st_ == nullptr)
    throw std::invalid_argument(
        "PreparedStencil::advance_batch on an empty handle");
  if (st_->spec.dims != 1)
    throw std::invalid_argument(
        "1-D advance_batch() on a stencil prepared for " +
        std::to_string(st_->spec.dims) + "-D");
  if (items.empty()) return;
  for (const TileBatch1D& it : items) {
    if (st_->validate)
      validate(st_->spec.has_source, st_->halo, st_->nx, it.a, it.b, it.k,
               st_->accept, st_->kernel->width);
    if (st_->halo_policy == HaloPolicy::Sync) sync_halo(it.a, it.b);
  }
  const Pattern1D* src = st_->spec.has_source ? &st_->spec.src1 : nullptr;
  if (st_->plan.tiled) {
    run_tile_plan_batch(st_->spec.p1, items, src, nsteps, st_->plan.tile);
    return;
  }
  // Untiled plan: the batch *is* the parallelism — fan the independent
  // per-item kernel runs over the shared pool in one dispatch.
  if (items.size() > 1 && st_->threads != 1) {
    shared_pool(st_->threads, st_->affinity)
        ->parallel_for(0, static_cast<int>(items.size()), [&](int i) {
          const TileBatch1D& it = items[static_cast<std::size_t>(i)];
          st_->kernel->run1(st_->spec.p1, it.a, it.b, src, it.k, nsteps);
        });
  } else {
    for (const TileBatch1D& it : items)
      st_->kernel->run1(st_->spec.p1, it.a, it.b, src, it.k, nsteps);
  }
}

void PreparedStencil::advance_batch(const std::vector<TileBatch2D>& items,
                                    int nsteps) const {
  if (st_ == nullptr)
    throw std::invalid_argument(
        "PreparedStencil::advance_batch on an empty handle");
  if (st_->spec.dims != 2)
    throw std::invalid_argument(
        "2-D advance_batch() on a stencil prepared for " +
        std::to_string(st_->spec.dims) + "-D");
  if (items.empty()) return;
  for (const TileBatch2D& it : items) {
    if (st_->validate)
      validate(st_->halo, st_->nx, st_->ny, it.a, it.b, st_->accept,
               st_->kernel->width);
    if (st_->halo_policy == HaloPolicy::Sync) sync_halo(it.a, it.b);
  }
  if (st_->plan.tiled) {
    run_tile_plan_batch(st_->spec.p2, items, nsteps, st_->plan.tile);
    return;
  }
  if (items.size() > 1 && st_->threads != 1) {
    shared_pool(st_->threads, st_->affinity)
        ->parallel_for(0, static_cast<int>(items.size()), [&](int i) {
          const TileBatch2D& it = items[static_cast<std::size_t>(i)];
          st_->kernel->run2(st_->spec.p2, it.a, it.b, nsteps);
        });
  } else {
    for (const TileBatch2D& it : items)
      st_->kernel->run2(st_->spec.p2, it.a, it.b, nsteps);
  }
}

void PreparedStencil::advance_batch(const std::vector<TileBatch3D>& items,
                                    int nsteps) const {
  if (st_ == nullptr)
    throw std::invalid_argument(
        "PreparedStencil::advance_batch on an empty handle");
  if (st_->spec.dims != 3)
    throw std::invalid_argument(
        "3-D advance_batch() on a stencil prepared for " +
        std::to_string(st_->spec.dims) + "-D");
  if (items.empty()) return;
  for (const TileBatch3D& it : items) {
    if (st_->validate)
      validate(st_->halo, st_->nx, st_->ny, st_->nz, it.a, it.b, st_->accept,
               st_->kernel->width);
    if (st_->halo_policy == HaloPolicy::Sync) sync_halo(it.a, it.b);
  }
  if (st_->plan.tiled) {
    run_tile_plan_batch(st_->spec.p3, items, nsteps, st_->plan.tile);
    return;
  }
  if (items.size() > 1 && st_->threads != 1) {
    shared_pool(st_->threads, st_->affinity)
        ->parallel_for(0, static_cast<int>(items.size()), [&](int i) {
          const TileBatch3D& it = items[static_cast<std::size_t>(i)];
          st_->kernel->run3(st_->spec.p3, it.a, it.b, nsteps);
        });
  } else {
    for (const TileBatch3D& it : items)
      st_->kernel->run3(st_->spec.p3, it.a, it.b, nsteps);
  }
}

// ---------------------------------------------------------------------------
// First-touch initialization
// ---------------------------------------------------------------------------

namespace {

// Drives `fn(lo, hi)` over the tiled dimension's logical range
// [-halo, n_tiled + halo) either per placement — each owning worker
// handling exactly its tile rows/planes (plus the domain-end halo slabs
// abutting its tiles) — or serially on the calling thread when the plan has
// no pool or the view's tiled extent is not the prepared one.
// `pinned_only` additionally forces the serial path for unpinned
// (Affinity::None) pools: first-touch zeroing gains nothing from floating
// workers (pages would land on whatever node the OS scheduled them),
// whereas compute-bound callers (the pool-parallel layout transform) want
// the parallelism either way.
template <class Fn>
void split_over_placement(const ExecutionPlan& plan, WorkerPool* pool,
                          long n_tiled, long prepared_n, int halo,
                          bool pinned_only, Fn&& fn) {
  const PlacementPlan& place = plan.placement;
  if (pool == nullptr || place.workers == 0 ||
      (pinned_only && place.affinity == Affinity::None) ||
      n_tiled != prepared_n) {
    fn(-halo, n_tiled + halo);
    return;
  }
  const int tile = plan.tile.tile;
  pool->run([&](int w) {
    const auto [t0, t1] = place.tiles_of(w);
    if (t0 >= t1) return;
    long lo = static_cast<long>(t0) * tile;
    long hi = std::min<long>(n_tiled, static_cast<long>(t1) * tile);
    // The domain-end halo slabs belong to the workers whose tiles abut
    // them — they are read alongside those tiles every super-step.
    if (t0 == 0) lo = -halo;
    if (hi >= n_tiled) hi = n_tiled + halo;
    fn(lo, hi);
  });
}

template <class Zero>
void first_touch_split(const ExecutionPlan& plan, WorkerPool* pool,
                       long n_tiled, long prepared_n, int halo, Zero&& zero) {
  split_over_placement(plan, pool, n_tiled, prepared_n, halo,
                       /*pinned_only=*/true, std::forward<Zero>(zero));
}

}  // namespace

void PreparedStencil::first_touch(FieldView1D v) const {
  if (st_ == nullptr)
    throw std::invalid_argument("PreparedStencil::first_touch on an empty handle");
  const int h = v.halo();
  first_touch_split(st_->plan, st_->pool.get(), v.n(), st_->nx, h,
                    [&](long lo, long hi) {
                      std::memset(v.data() + lo, 0,
                                  static_cast<std::size_t>(hi - lo) *
                                      sizeof(double));
                    });
}

void PreparedStencil::first_touch(FieldView2D v) const {
  if (st_ == nullptr)
    throw std::invalid_argument("PreparedStencil::first_touch on an empty handle");
  const int h = v.halo();
  const std::size_t row_bytes =
      static_cast<std::size_t>(v.nx() + 2 * h) * sizeof(double);
  first_touch_split(st_->plan, st_->pool.get(), v.ny(), st_->ny, h,
                    [&](long lo, long hi) {
                      for (long y = lo; y < hi; ++y)
                        std::memset(v.row(static_cast<int>(y)) - h, 0,
                                    row_bytes);
                    });
}

void PreparedStencil::first_touch(FieldView3D v) const {
  if (st_ == nullptr)
    throw std::invalid_argument("PreparedStencil::first_touch on an empty handle");
  const int h = v.halo();
  const std::size_t row_bytes =
      static_cast<std::size_t>(v.nx() + 2 * h) * sizeof(double);
  first_touch_split(st_->plan, st_->pool.get(), v.nz(), st_->nz, h,
                    [&](long lo, long hi) {
                      for (long z = lo; z < hi; ++z)
                        for (int y = -h; y < v.ny() + h; ++y)
                          std::memset(v.row(static_cast<int>(z), y) - h, 0,
                                      row_bytes);
                    });
}

// ---------------------------------------------------------------------------
// Resident-layout conversion helpers
// ---------------------------------------------------------------------------

namespace {

// The in-place transform behind convert_layout(), placement-aware where the
// row/plane structure allows: 2-D rows and 3-D planes are independent, so
// the transform runs as a pool task over the plan's ownership map — each
// worker permutes the rows/planes of its own tiles, keeping the work where
// the pages live (and off the calling thread's node for fresh first-touched
// buffers). 1-D has no such split (the permutation works on W*W element
// blocks that tile boundaries would cut) and stays serial. Serial/untiled
// preparations and mismatched extents fall back to the caller's thread.
// The const_cast is sound: pool() returns const only as introspection
// hygiene; the pool object itself is the registry's mutable shared state.
void transform_view(const PreparedStencil& ps, const FieldView1D& v) {
  apply_transpose_layout(v, ps.kernel().width);
}

void transform_view(const PreparedStencil& ps, const FieldView2D& v) {
  WorkerPool* pool = const_cast<WorkerPool*>(ps.pool());
  split_over_placement(ps.plan(), pool, v.ny(), ps.ny(), v.halo(),
                       /*pinned_only=*/false, [&](long lo, long hi) {
                         apply_transpose_layout_rows(
                             v, ps.kernel().width, static_cast<int>(lo),
                             static_cast<int>(hi));
                       });
}

void transform_view(const PreparedStencil& ps, const FieldView3D& v) {
  WorkerPool* pool = const_cast<WorkerPool*>(ps.pool());
  split_over_placement(ps.plan(), pool, v.nz(), ps.nz(), v.halo(),
                       /*pinned_only=*/false, [&](long lo, long hi) {
                         apply_transpose_layout_planes(
                             v, ps.kernel().width, static_cast<int>(lo),
                             static_cast<int>(hi));
                       });
}

// Shared implementation of to_resident_layout()/to_natural_layout(): the
// preferred layouts are involutions (register transpose), so the same
// transform converts in either direction and only the tag bookkeeping
// differs.
template <class View>
View convert_layout(const PreparedStencil& ps, View v, bool to_resident,
                    const char* fn) {
  if (!ps.valid())
    throw std::invalid_argument(std::string(fn) +
                                ": empty PreparedStencil handle");
  if (!v.valid())
    throw std::invalid_argument(std::string(fn) + ": empty view");
  const Layout pref = ps.preferred_layout();
  if (pref == Layout::Natural) {
    if (v.layout() != Layout::Natural)
      throw std::invalid_argument(
          std::string(fn) + ": view is tagged " + layout_name(v.layout()) +
          " but the prepared kernel keeps data in natural layout");
    return v;  // nothing to convert to or from
  }
  // A non-natural view must have been transformed at *this* kernel's SIMD
  // width — the permutations differ per width, so converting (or handing
  // back, in the idempotent case) a foreign-width buffer would scramble it
  // undetectably.
  if (v.layout() != Layout::Natural &&
      v.layout_width() != ps.kernel().width) {
    std::ostringstream os;
    os << fn << ": view is tagged " << layout_name(v.layout())
       << " for SIMD width " << v.layout_width()
       << " but this handle's kernel uses width " << ps.kernel().width;
    throw std::invalid_argument(os.str());
  }
  const Layout want = to_resident ? pref : Layout::Natural;
  if (v.layout() == want) return v;  // idempotent
  const Layout from = to_resident ? Layout::Natural : pref;
  if (v.layout() != from)
    throw std::invalid_argument(
        std::string(fn) + ": view is tagged " + layout_name(v.layout()) +
        "; expected " + layout_name(from) + " (preferred layout is " +
        layout_name(pref) + ")");
  transform_view(ps, v);  // involution
  return v.with_layout(want,
                       want == Layout::Natural ? 0 : ps.kernel().width);
}

}  // namespace

FieldView1D to_resident_layout(const PreparedStencil& ps, FieldView1D v) {
  return convert_layout(ps, v, true, "to_resident_layout");
}
FieldView2D to_resident_layout(const PreparedStencil& ps, FieldView2D v) {
  return convert_layout(ps, v, true, "to_resident_layout");
}
FieldView3D to_resident_layout(const PreparedStencil& ps, FieldView3D v) {
  return convert_layout(ps, v, true, "to_resident_layout");
}
FieldView1D to_natural_layout(const PreparedStencil& ps, FieldView1D v) {
  return convert_layout(ps, v, false, "to_natural_layout");
}
FieldView2D to_natural_layout(const PreparedStencil& ps, FieldView2D v) {
  return convert_layout(ps, v, false, "to_natural_layout");
}
FieldView3D to_natural_layout(const PreparedStencil& ps, FieldView3D v) {
  return convert_layout(ps, v, false, "to_natural_layout");
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 1099511628211ull;
}

template <int D>
std::uint64_t hash_pattern(std::uint64_t h, const Pattern<D>& p) {
  for (const auto& t : p.taps) {
    for (int d = 0; d < D; ++d)
      h = fnv1a(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(t.off[d])));
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(t.w), "double is 64-bit");
    __builtin_memcpy(&bits, &t.w, sizeof(bits));
    h = fnv1a(h, bits);
  }
  return h;
}

std::uint64_t hash_spec(const StencilSpec& s) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(h, static_cast<std::uint64_t>(s.dims));
  switch (s.dims) {
    case 1: h = hash_pattern(h, s.p1); break;
    case 2: h = hash_pattern(h, s.p2); break;
    default: h = hash_pattern(h, s.p3); break;
  }
  h = fnv1a(h, s.has_source ? 1 : 0);
  if (s.has_source) h = hash_pattern(h, s.src1);
  return h;
}

// Environment/preset fallback resolution shared by prepare() and
// plan_key(): the effective request is what both the plan-cache key and the
// plan-key hash are computed from, so an env change between calls is never
// served (or keyed as) a stale preparation.
void resolve_request(const StencilSpec& spec, Extents& ext, ExecOptions& opts,
                     int& tsteps) {
  if (opts.affinity == Affinity::None) opts.affinity = env_affinity();
  if (opts.threads == 0) opts.threads = env_threads();
  opts.validate = opts.validate && env_validate();
  if (opts.pipeline == Pipeline::Auto)
    opts.pipeline = env_pipeline() ? Pipeline::On : Pipeline::Off;
  if (ext.nx == 0) ext.nx = spec.small_size[0];
  if (ext.ny == 0) ext.ny = spec.dims >= 2 ? spec.small_size[1] : 1;
  if (ext.nz == 0) ext.nz = spec.dims >= 3 ? spec.small_size[2] : 1;
  tsteps = opts.tsteps > 0 ? opts.tsteps
                           : static_cast<int>(spec.small_tsteps);
  // Tile-tree depth: unset defers to SF_TILE_LEVELS; Auto (-1, from either
  // source) engages the full hierarchy exactly when the ping-pong working
  // set spills the LLC — flat plans already keep LLC-resident tiles.
  if (opts.levels == 0) opts.levels = env_tile_levels();
  if (opts.levels < 0)
    opts.levels =
        working_set_bytes(ext.nx, ext.ny, ext.nz) > llc_bytes() ? 3 : 1;
  opts.levels = opts.levels < 1 ? 1 : opts.levels > 3 ? 3 : opts.levels;
}

// The plan key: FNV-1a over the full effective request. Equal keys mean
// prepare() would serve both requests from one cache entry (modulo hash
// collisions, which only cost a missed batching opportunity downstream —
// the serving batcher executes each group through a handle of that group,
// never across groups).
std::uint64_t request_key(std::uint64_t spec_hash, const Extents& ext,
                          int tsteps, const ExecOptions& o) {
  std::uint64_t h = fnv1a(1469598103934665603ull, spec_hash);
  h = fnv1a(h, static_cast<std::uint64_t>(ext.nx));
  h = fnv1a(h, static_cast<std::uint64_t>(ext.ny));
  h = fnv1a(h, static_cast<std::uint64_t>(ext.nz));
  h = fnv1a(h, static_cast<std::uint64_t>(tsteps));
  h = fnv1a(h, static_cast<std::uint64_t>(o.method));
  h = fnv1a(h, static_cast<std::uint64_t>(o.isa));
  h = fnv1a(h, static_cast<std::uint64_t>(o.tiling));
  h = fnv1a(h, static_cast<std::uint64_t>(o.threads));
  h = fnv1a(h, static_cast<std::uint64_t>(o.tile));
  h = fnv1a(h, static_cast<std::uint64_t>(o.time_block));
  h = fnv1a(h, static_cast<std::uint64_t>(o.layout));
  h = fnv1a(h, static_cast<std::uint64_t>(o.halo_policy));
  h = fnv1a(h, static_cast<std::uint64_t>(o.affinity));
  h = fnv1a(h, static_cast<std::uint64_t>(o.pipeline));
  h = fnv1a(h, static_cast<std::uint64_t>(o.levels));
  h = fnv1a(h, o.validate ? 1u : 0u);
  return h;
}

template <int D>
bool same_pattern(const Pattern<D>& a, const Pattern<D>& b) {
  if (a.taps.size() != b.taps.size()) return false;
  for (std::size_t i = 0; i < a.taps.size(); ++i) {
    if (a.taps[i].off != b.taps[i].off) return false;
    if (a.taps[i].w != b.taps[i].w) return false;
  }
  return true;
}

// Taps are kept sorted and offset-unique by the Pattern algebra, so
// element-wise comparison is a canonical equality test. Identity metadata
// (id, name) participates too: a pattern-identical custom spec must not be
// handed a cached state whose spec() reports another stencil's name.
bool same_spec(const StencilSpec& a, const StencilSpec& b) {
  if (a.id != b.id || a.name != b.name) return false;
  if (a.dims != b.dims || a.has_source != b.has_source) return false;
  if (a.has_source && !same_pattern(a.src1, b.src1)) return false;
  switch (a.dims) {
    case 1: return same_pattern(a.p1, b.p1);
    case 2: return same_pattern(a.p2, b.p2);
    default: return same_pattern(a.p3, b.p3);
  }
}

}  // namespace

struct Engine::CacheEntry {
  std::uint64_t spec_hash = 0;
  ExecOptions opts;
  long nx = 0, ny = 1, nz = 1;
  int tsteps = 0;
  // Per-key tuner dependence: a plan that consulted the TuneCache records
  // *which* key it asked about and what the lookup returned. The entry
  // stays valid exactly while that lookup still returns the same answer —
  // so tuning one configuration invalidates only the preparations that
  // actually read its entry, not every cached plan (the old scheme keyed
  // on the table-wide generation counter and evicted wholesale). Plans
  // that never consulted the tuner (untiled, or explicit tile/time_block)
  // are valid across any tuning activity.
  bool tuner_dependent = false;
  TuneKey tune_key;
  std::optional<TunedGeometry> tune_seen;
  std::shared_ptr<const PreparedStencil::State> state;
};

Engine& Engine::instance() {
  static Engine* e = new Engine();
  return *e;
}

PreparedStencil Engine::prepare(Preset p, Extents ext,
                                const ExecOptions& opts) {
  return prepare(preset(p), ext, opts);
}

PreparedStencil Engine::prepare(const StencilSpec& spec, Extents ext,
                                const ExecOptions& opts_in) {
  // Defaults mirror Solver::resolve(): each unset extent independently
  // falls back to the preset fast-run size. Unset runtime knobs pick up
  // their process-wide environment defaults here, so the cache key below
  // is the *effective* request and an env change between calls is never
  // served a stale preparation.
  ExecOptions opts = opts_in;
  int tsteps = 0;
  resolve_request(spec, ext, opts, tsteps);

  // Tiled auto-geometry plans read the TuneCache, so each cached
  // preparation snapshots the lookup it depended on; it is served only
  // while that per-key lookup still returns the same answer (see
  // CacheEntry). The request key itself includes every ExecOptions field —
  // the resident-layout axis and halo policy change run()-time behavior,
  // so preparations differing in them must not be shared.
  const std::uint64_t sh = hash_spec(spec);
  auto matches = [&](const CacheEntry& e) {
    return e.spec_hash == sh && e.nx == ext.nx && e.ny == ext.ny &&
           e.nz == ext.nz && e.tsteps == tsteps &&
           e.opts.method == opts.method && e.opts.isa == opts.isa &&
           e.opts.tiling == opts.tiling && e.opts.threads == opts.threads &&
           e.opts.tile == opts.tile &&
           e.opts.time_block == opts.time_block &&
           e.opts.layout == opts.layout &&
           e.opts.halo_policy == opts.halo_policy &&
           e.opts.affinity == opts.affinity &&
           e.opts.pipeline == opts.pipeline &&
           e.opts.levels == opts.levels &&
           e.opts.validate == opts.validate &&
           same_spec(e.state->spec, spec);
  };
  auto tuner_fresh = [](const CacheEntry& e) {
    return !e.tuner_dependent ||
           TuneCache::instance().lookup_rounded(e.tune_key) == e.tune_seen;
  };
  {
    LockGuard lock(mu_);
    for (const CacheEntry& e : cache_)
      if (matches(e) && tuner_fresh(e)) {
        ++hits_;
        telemetry::counter("engine.plan_cache.hit").add(1);
        return PreparedStencil(e.state);
      }
  }
  // Miss: a full plan + pool + workspace build — worth a trace span, and
  // the counter pair the cache-effectiveness dashboards divide. Resolving
  // the handle per call is fine here: prepare() is the documented cold
  // path (serving pays it once per plan).
  telemetry::counter("engine.plan_cache.miss").add(1);
  telemetry::Span prepare_span("engine.prepare");

  auto st = std::make_shared<PreparedStencil::State>();
  st->spec = spec;
  st->nx = ext.nx;
  st->ny = ext.ny;
  st->nz = ext.nz;
  st->tsteps = tsteps;
  st->threads = opts.threads;
  st->plan_key = request_key(sh, ext, tsteps, opts);

  const Method m =
      opts.method == Method::Auto ? auto_method(spec, opts.isa) : opts.method;
  st->kernel = find_kernel(m, spec.dims, opts.isa);
  if (st->kernel == nullptr)
    throw std::invalid_argument(std::string("no kernel registered for ") +
                                method_name(m) + " in " +
                                std::to_string(spec.dims) + "-D at " +
                                isa_name(resolve_isa(opts.isa)));
  st->halo = st->kernel->required_halo(effective_radius(spec));
  // Resident-layout negotiation: the handle records the kernel's engaged
  // layout preference, and a request to accept resident views must match
  // it — a mismatch would mean kernels misinterpreting the caller's bytes.
  st->preferred = st->kernel->resident_layout(effective_radius(spec));
  st->accept = opts.layout;
  st->halo_policy = opts.halo_policy;
  st->affinity = opts.affinity;
  st->validate = opts.validate;
  if (opts.layout != Layout::Natural && opts.layout != st->preferred)
    throw std::invalid_argument(
        std::string("Engine::prepare: ExecOptions::layout requests ") +
        layout_name(opts.layout) + "-resident execution but kernel '" +
        st->kernel->name + "' keeps data in " + layout_name(st->preferred) +
        " layout at this radius");

  PlanRequest req;
  req.spec = &st->spec;
  req.kernel = st->kernel;
  req.nx = ext.nx;
  req.ny = ext.ny;
  req.nz = ext.nz;
  req.tsteps = tsteps;
  req.tiling = opts.tiling;
  req.threads = opts.threads;
  req.tile = opts.tile;
  req.time_block = opts.time_block;
  req.affinity = opts.affinity;
  req.pipeline = opts.pipeline;
  req.levels = opts.levels;
  st->plan = plan_execution(req);

  // Build or reuse the runtime pool the tiled stages will run on (shared
  // per (threads, affinity), workers parked between tasks), and first-touch
  // the per-worker workspace slabs on their owners: the 3-D folded stage's
  // sliding plane window is sized here exactly as folded3d_advance sizes
  // it, so the first run() finds it allocated — on the right NUMA node —
  // instead of growing it mid-stage.
  if (st->plan.tiled && st->plan.blocked && st->plan.tile.threads > 1) {
    st->pool = shared_pool(st->plan.tile.threads, opts.affinity);
    // Pipelined plans skip the prepare-time dispatch: the wedge schedule's
    // per-worker prologue first-touches each arena in the slot that already
    // overlaps the first super-step (tiling/split_tiling.cpp), so paying a
    // full pool round-trip here would be pure duplicated latency. The
    // barrier schedule has no prologue, so those plans still pre-size here.
    if (spec.dims == 3 && st->kernel->method == Method::Ours2 &&
        opts.pipeline == Pipeline::Off) {
      const FoldingPlan fold =
          plan_folding(spec.p3, st->kernel->fold_depth);
      const detail::Folded3DWindowShape shape = detail::folded3d_window_shape(
          fold, static_cast<int>(ext.nx), st->kernel->width);
      st->pool->ensure_arena(shape.nbufs, shape.doubles);
    }
  }

  CacheEntry entry;
  entry.spec_hash = sh;
  entry.opts = opts;
  entry.nx = ext.nx;
  entry.ny = ext.ny;
  entry.nz = ext.nz;
  entry.tsteps = tsteps;
  // Snapshot the tuner lookup this plan depended on (plan_execution
  // consults the cache only for tiled plans with auto geometry, keyed on
  // the negotiated thread count). The snapshot is taken after planning, so
  // a store racing in between leaves a snapshot one step ahead of the plan
  // — harmless: the entry self-invalidates on the *next* change to that
  // key, and tuned geometry is advisory, never a correctness input.
  entry.tuner_dependent =
      st->plan.tiled && opts.tile == 0 && opts.time_block == 0;
  if (entry.tuner_dependent) {
    // The lookup plan_execution performed is keyed on the thread count
    // negotiated from the *request* (a cached entry may deploy a different
    // winning count, so st->plan.tile.threads is not necessarily the
    // lookup key) — re-derive it the same way.
    entry.tune_key =
        make_tune_key(*st->kernel, effective_radius(spec), ext.nx, ext.ny,
                      ext.nz, tsteps, plan_geometry(req).threads,
                      st->plan.tile.levels);
    entry.tune_seen = TuneCache::instance().lookup_rounded(entry.tune_key);
  }
  entry.state = st;
  {
    LockGuard lock(mu_);
    // Evict the same-request entry being superseded and any entry whose
    // tuner snapshot went stale (it can never be served again); a hard cap
    // bounds the cache against unbounded distinct-shape churn in
    // long-lived processes.
    const std::size_t before = cache_.size();
    cache_.erase(std::remove_if(cache_.begin(), cache_.end(),
                                [&](const CacheEntry& e) {
                                  return matches(e) || !tuner_fresh(e);
                                }),
                 cache_.end());
    constexpr std::size_t kMaxEntries = 256;
    std::size_t evicted = before - cache_.size();
    if (cache_.size() >= kMaxEntries) {
      cache_.erase(cache_.begin());  // oldest first
      ++evicted;
    }
    if (evicted > 0)
      telemetry::counter("engine.plan_cache.evictions")
          .add(static_cast<std::int64_t>(evicted));
    cache_.push_back(std::move(entry));
  }
  return PreparedStencil(st);
}

PreparedStencil Engine::prepare_shared(Preset p, Extents ext,
                                       const ExecOptions& opts) {
  return prepare_shared(preset(p), ext, opts);
}

PreparedStencil Engine::prepare_shared(const StencilSpec& spec, Extents ext,
                                       const ExecOptions& opts) {
  // Build coalescing: the first caller of a key claims it and builds; later
  // callers of the *same* key wait here and are then served the cached
  // state their builder inserted (their prepare() below is a cache hit
  // returning the identical State). Distinct keys never wait on each other.
  const std::uint64_t key = plan_key(spec, ext, opts);
  {
    UniqueLock lock(share_mu_);
    // Explicit loop so the guarded building_ reads are visibly under the
    // lock to the thread-safety analysis.
    while (building_.count(key) != 0) share_cv_.wait(lock);
    building_.insert(key);
  }
  struct Claim {  // release the key and wake waiters even on throw
    Engine* e;
    std::uint64_t key;
    ~Claim() {
      {
        LockGuard lock(e->share_mu_);
        e->building_.erase(key);
      }
      e->share_cv_.notify_all();
    }
  } claim{this, key};
  return prepare(spec, ext, opts);
}

std::uint64_t Engine::plan_key(const StencilSpec& spec, Extents ext,
                               const ExecOptions& opts_in) const {
  ExecOptions opts = opts_in;
  int tsteps = 0;
  resolve_request(spec, ext, opts, tsteps);
  return request_key(hash_spec(spec), ext, tsteps, opts);
}

std::size_t Engine::plan_cache_size() const {
  LockGuard lock(mu_);
  return cache_.size();
}

long Engine::plan_cache_hits() const {
  LockGuard lock(mu_);
  return hits_;
}

void Engine::warm_pool(int threads) {
  // Building the shared pool is the warmup: workers spawn, pin and park.
  // Resolve the same process-wide affinity default prepare() would, so the
  // pool warmed here is the pool a subsequent prepare() reuses.
  shared_pool(threads, env_affinity());
}

}  // namespace sf
