/// \file
/// \brief Deprecated config-struct entry point, kept as a thin shim for one
/// release.
///
/// New code should use the Solver facade (core/solver.hpp):
///
/// \code
///   // before: ProblemConfig cfg; cfg.preset = ...; run_problem(cfg);
///   // after:  Solver::make(preset).method(...).size(...).run();
/// \endcode
///
/// run_verified() here historically executed the kernel twice (once timed
/// via run_problem, once more for the error check); the shim now delegates
/// to Solver::run_verified(), which verifies the single timed run's output.
/// The `tiled`/`tile_opts` pair maps onto the Solver's tiling()/tile()/
/// time_block()/threads() builders; `tile_opts.method`/`.isa` are stamped
/// from the problem-level choice, as they always were.
#pragma once

#include <string>

#include "core/solver.hpp"

namespace sf {

/// \deprecated One-struct description of a run; superseded by the Solver
/// builder chain.
struct ProblemConfig {
  Preset preset = Preset::Heat2D;   ///< Which Table-1 stencil to run.
  Method method = Method::Ours2;    ///< Vectorization/folding method.
  Isa isa = Isa::Auto;              ///< ISA level (Auto = widest supported).

  long nx = 0;  ///< X extent; 0 = the preset's default (small) size.
  long ny = 1;  ///< Y extent.
  long nz = 1;  ///< Z extent.
  int tsteps = 0;  ///< Time steps; 0 = preset default.

  bool tiled = false;       ///< Temporal split tiling + OpenMP.
  TiledOptions tile_opts{};  ///< Tile geometry (tile/time_block/threads).

  std::uint64_t seed = 42;  ///< Seed of the random initial condition.
};

/// Builds the equivalent Solver for a legacy config.
Solver make_solver(const ProblemConfig& cfg);

/// \deprecated Fills in defaulted sizes/steps from the preset. The Solver
/// resolves defaults itself (Solver::resolve).
ProblemConfig resolve(ProblemConfig cfg);

/// \deprecated Use Solver::run().
RunResult run_problem(const ProblemConfig& cfg);

/// \deprecated Use Solver::run_verified().
RunResult run_verified(const ProblemConfig& cfg);

}  // namespace sf
