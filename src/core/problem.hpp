// Public entry point: configure a benchmark stencil run, execute it, get
// timing/GFLOP/s. This is the API the examples and the figure/table
// harnesses use.
#pragma once

#include <string>

#include "common/cpu.hpp"
#include "kernels/api.hpp"
#include "stencil/presets.hpp"
#include "tiling/split_tiling.hpp"

namespace sf {

struct ProblemConfig {
  Preset preset = Preset::Heat2D;
  Method method = Method::Ours2;
  Isa isa = Isa::Auto;

  long nx = 0, ny = 1, nz = 1;  // 0: use the preset's default (small) size
  int tsteps = 0;               // 0: preset default

  bool tiled = false;  // temporal split tiling + OpenMP
  TiledOptions tile_opts{};

  std::uint64_t seed = 42;
};

struct RunResult {
  double seconds = 0;
  double gflops = 0;       // useful flops: taps-based, identical across methods
  double max_error = -1;   // vs naive reference, if verification requested
  long points = 0;
  int tsteps = 0;
};

/// Fills in defaulted sizes/steps from the preset (paper sizes with
/// SF_BENCH_FULL=1 semantics are the caller's choice).
ProblemConfig resolve(ProblemConfig cfg);

/// Runs the configured problem once and reports wall time + GFLOP/s.
RunResult run_problem(const ProblemConfig& cfg);

/// Runs the problem *and* the naive reference on the same inputs; fills
/// RunResult::max_error. Meant for smoke verification (use small sizes).
RunResult run_verified(const ProblemConfig& cfg);

/// Useful FLOPs per time step for a preset at the given size.
double flops_per_step(const StencilSpec& spec, long nx, long ny, long nz);

}  // namespace sf
