// Deprecated config-struct entry point, kept as a thin shim for one
// release. New code should use the Solver facade (core/solver.hpp):
//
//   before: ProblemConfig cfg; cfg.preset = ...; run_problem(cfg);
//   after:  Solver::make(preset).method(...).size(...).run();
//
// run_verified() here historically executed the kernel twice (once timed
// via run_problem, once more for the error check); the shim now delegates
// to Solver::run_verified(), which verifies the single timed run's output.
#pragma once

#include <string>

#include "core/solver.hpp"

namespace sf {

struct ProblemConfig {
  Preset preset = Preset::Heat2D;
  Method method = Method::Ours2;
  Isa isa = Isa::Auto;

  long nx = 0, ny = 1, nz = 1;  // 0: use the preset's default (small) size
  int tsteps = 0;               // 0: preset default

  bool tiled = false;  // temporal split tiling + OpenMP
  TiledOptions tile_opts{};

  std::uint64_t seed = 42;
};

/// Builds the equivalent Solver for a legacy config.
Solver make_solver(const ProblemConfig& cfg);

/// Deprecated: fills in defaulted sizes/steps from the preset. The Solver
/// resolves defaults itself (Solver::resolve).
ProblemConfig resolve(ProblemConfig cfg);

/// Deprecated: use Solver::run().
RunResult run_problem(const ProblemConfig& cfg);

/// Deprecated: use Solver::run_verified().
RunResult run_verified(const ProblemConfig& cfg);

}  // namespace sf
