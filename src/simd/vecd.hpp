// Portable SIMD wrapper over double vectors.
//
// Every kernel in src/kernels is written once against vecd<W> and
// instantiated for W = 1 (scalar), 4 (AVX-2) and 8 (AVX-512). The scalar
// specialization makes the W-generic kernels degenerate to plain scalar code,
// which doubles as the reference path on machines without AVX.
#pragma once

#include <immintrin.h>

#include <cstddef>

namespace sf::simd {

template <int W>
struct vecd;  // only the specializations below exist

// ---------------------------------------------------------------------------
// W = 1: scalar fallback. All lane operations are identities.
// ---------------------------------------------------------------------------
template <>
struct vecd<1> {
  double v;

  static constexpr int width = 1;

  static vecd load(const double* p) { return {*p}; }
  static vecd loadu(const double* p) { return {*p}; }
  static vecd set1(double x) { return {x}; }
  static vecd zero() { return {0.0}; }
  void store(double* p) const { *p = v; }
  void storeu(double* p) const { *p = v; }

  friend vecd operator+(vecd a, vecd b) { return {a.v + b.v}; }
  friend vecd operator-(vecd a, vecd b) { return {a.v - b.v}; }
  friend vecd operator*(vecd a, vecd b) { return {a.v * b.v}; }
  /// a*b + c
  static vecd fma(vecd a, vecd b, vecd c) { return {a.v * b.v + c.v}; }

  double lane(int) const { return v; }
};

// ---------------------------------------------------------------------------
// W = 4: AVX-2.
// ---------------------------------------------------------------------------
template <>
struct vecd<4> {
  __m256d v;

  static constexpr int width = 4;

  static vecd load(const double* p) { return {_mm256_load_pd(p)}; }
  static vecd loadu(const double* p) { return {_mm256_loadu_pd(p)}; }
  static vecd set1(double x) { return {_mm256_set1_pd(x)}; }
  static vecd zero() { return {_mm256_setzero_pd()}; }
  void store(double* p) const { _mm256_store_pd(p, v); }
  void storeu(double* p) const { _mm256_storeu_pd(p, v); }

  friend vecd operator+(vecd a, vecd b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend vecd operator-(vecd a, vecd b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend vecd operator*(vecd a, vecd b) { return {_mm256_mul_pd(a.v, b.v)}; }
  static vecd fma(vecd a, vecd b, vecd c) {
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
  }

  double lane(int i) const {
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, v);
    return tmp[i];
  }
};

// ---------------------------------------------------------------------------
// W = 8: AVX-512.
// ---------------------------------------------------------------------------
template <>
struct vecd<8> {
  __m512d v;

  static constexpr int width = 8;

  static vecd load(const double* p) { return {_mm512_load_pd(p)}; }
  static vecd loadu(const double* p) { return {_mm512_loadu_pd(p)}; }
  static vecd set1(double x) { return {_mm512_set1_pd(x)}; }
  static vecd zero() { return {_mm512_setzero_pd()}; }
  void store(double* p) const { _mm512_store_pd(p, v); }
  void storeu(double* p) const { _mm512_storeu_pd(p, v); }

  friend vecd operator+(vecd a, vecd b) { return {_mm512_add_pd(a.v, b.v)}; }
  friend vecd operator-(vecd a, vecd b) { return {_mm512_sub_pd(a.v, b.v)}; }
  friend vecd operator*(vecd a, vecd b) { return {_mm512_mul_pd(a.v, b.v)}; }
  static vecd fma(vecd a, vecd b, vecd c) {
    return {_mm512_fmadd_pd(a.v, b.v, c.v)};
  }

  double lane(int i) const {
    alignas(64) double tmp[8];
    _mm512_store_pd(tmp, v);
    return tmp[i];
  }
};

// ---------------------------------------------------------------------------
// Lane-permutation helpers used to assemble neighbour vectors (paper §2.2:
// one blend + one permute per edge vector of a vector set).
// ---------------------------------------------------------------------------

/// Circular rotate right by one lane: (a0,a1,..,aW-1) -> (aW-1,a0,..,aW-2).
inline vecd<1> rotate_r1(vecd<1> a) { return a; }
inline vecd<4> rotate_r1(vecd<4> a) {
  return {_mm256_permute4x64_pd(a.v, 0x93)};  // idx 3,0,1,2
}
inline vecd<8> rotate_r1(vecd<8> a) {
  const __m512i idx = _mm512_setr_epi64(7, 0, 1, 2, 3, 4, 5, 6);
  return {_mm512_permutexvar_pd(idx, a.v)};
}

/// Circular rotate left by one lane: (a0,a1,..,aW-1) -> (a1,..,aW-1,a0).
inline vecd<1> rotate_l1(vecd<1> a) { return a; }
inline vecd<4> rotate_l1(vecd<4> a) {
  return {_mm256_permute4x64_pd(a.v, 0x39)};  // idx 1,2,3,0
}
inline vecd<8> rotate_l1(vecd<8> a) {
  const __m512i idx = _mm512_setr_epi64(1, 2, 3, 4, 5, 6, 7, 0);
  return {_mm512_permutexvar_pd(idx, a.v)};
}

/// Replaces lane 0 of `a` with lane 0 of `b`.
inline vecd<1> blend_first(vecd<1>, vecd<1> b) { return b; }
inline vecd<4> blend_first(vecd<4> a, vecd<4> b) {
  return {_mm256_blend_pd(a.v, b.v, 0x1)};
}
inline vecd<8> blend_first(vecd<8> a, vecd<8> b) {
  return {_mm512_mask_blend_pd(0x01, a.v, b.v)};
}

/// Replaces the last lane of `a` with the last lane of `b`.
inline vecd<1> blend_last(vecd<1>, vecd<1> b) { return b; }
inline vecd<4> blend_last(vecd<4> a, vecd<4> b) {
  return {_mm256_blend_pd(a.v, b.v, 0x8)};
}
inline vecd<8> blend_last(vecd<8> a, vecd<8> b) {
  return {_mm512_mask_blend_pd(0x80, a.v, b.v)};
}

// ---------------------------------------------------------------------------
// align_r<K>(a, b) = (a_K, .., a_{W-1}, b_0, .., b_{K-1}).
//
// This is the in-register shift the "data reorganization" baseline uses to
// synthesize x-neighbour vectors from two aligned loads.
// ---------------------------------------------------------------------------
template <int K>
inline vecd<1> align_r(vecd<1> a, vecd<1> b) {
  static_assert(K >= 0 && K <= 1);
  if constexpr (K == 0) return a;
  return b;
}

template <int K>
inline vecd<4> align_r(vecd<4> a, vecd<4> b) {
  static_assert(K >= 0 && K <= 4);
  if constexpr (K == 0) {
    return a;
  } else if constexpr (K == 1) {
    // (a1,a2,a3,b0): cross = (a2,a3,b0,b1); pick odd/even halves.
    __m256d cross = _mm256_permute2f128_pd(a.v, b.v, 0x21);
    return {_mm256_shuffle_pd(a.v, cross, 0x5)};
  } else if constexpr (K == 2) {
    return {_mm256_permute2f128_pd(a.v, b.v, 0x21)};
  } else if constexpr (K == 3) {
    __m256d cross = _mm256_permute2f128_pd(a.v, b.v, 0x21);
    return {_mm256_shuffle_pd(cross, b.v, 0x5)};
  } else {
    return b;
  }
}

template <int K>
inline vecd<8> align_r(vecd<8> a, vecd<8> b) {
  static_assert(K >= 0 && K <= 8);
  if constexpr (K == 0) {
    return a;
  } else if constexpr (K == 8) {
    return b;
  } else {
    return {_mm512_castsi512_pd(_mm512_alignr_epi64(
        _mm512_castpd_si512(b.v), _mm512_castpd_si512(a.v), K))};
  }
}

}  // namespace sf::simd
