// In-register square matrix transposes (paper §2.3, Figure 3).
//
// The paper's improved AVX-2 transpose for double runs in two stages and
// eight single-cycle instructions: Permute2f128 on vector pairs at distance
// two, then UnpackLo/UnpackHi on adjacent pairs. The AVX-512 8x8 transpose
// runs in three stages (unpack, then two rounds of 128-bit shuffles).
//
// transpose_alt() is the conventional shuffle-first scheme and
// transpose_gather() a gather-based one; both exist solely for the
// `ablation_transpose` benchmark that reproduces the paper's latency claim.
#pragma once

#include <immintrin.h>

#include "simd/vecd.hpp"

namespace sf::simd {

/// 1x1 transpose: identity (scalar instantiation of W-generic kernels).
inline void transpose(vecd<1>&) {}
inline void transpose(vecd<1>*) {}

/// Paper's two-stage AVX-2 4x4 transpose; r[i] holds row i on input and
/// column i on output.
inline void transpose(vecd<4>* r) {
  __m256d t0 = _mm256_permute2f128_pd(r[0].v, r[2].v, 0x20);  // (A,B,I,J)
  __m256d t1 = _mm256_permute2f128_pd(r[1].v, r[3].v, 0x20);  // (E,F,M,N)
  __m256d t2 = _mm256_permute2f128_pd(r[0].v, r[2].v, 0x31);  // (C,D,K,L)
  __m256d t3 = _mm256_permute2f128_pd(r[1].v, r[3].v, 0x31);  // (G,H,O,P)
  r[0].v = _mm256_unpacklo_pd(t0, t1);                        // (A,E,I,M)
  r[1].v = _mm256_unpackhi_pd(t0, t1);                        // (B,F,J,N)
  r[2].v = _mm256_unpacklo_pd(t2, t3);                        // (C,G,K,O)
  r[3].v = _mm256_unpackhi_pd(t2, t3);                        // (D,H,L,P)
}

/// Three-stage AVX-512 8x8 transpose (unpack + two shuffle_f64x2 rounds).
inline void transpose(vecd<8>* r) {
  __m512d t0 = _mm512_unpacklo_pd(r[0].v, r[1].v);
  __m512d t1 = _mm512_unpackhi_pd(r[0].v, r[1].v);
  __m512d t2 = _mm512_unpacklo_pd(r[2].v, r[3].v);
  __m512d t3 = _mm512_unpackhi_pd(r[2].v, r[3].v);
  __m512d t4 = _mm512_unpacklo_pd(r[4].v, r[5].v);
  __m512d t5 = _mm512_unpackhi_pd(r[4].v, r[5].v);
  __m512d t6 = _mm512_unpacklo_pd(r[6].v, r[7].v);
  __m512d t7 = _mm512_unpackhi_pd(r[6].v, r[7].v);

  __m512d m0 = _mm512_shuffle_f64x2(t0, t2, 0x44);  // chunks 0,1 of each
  __m512d m1 = _mm512_shuffle_f64x2(t4, t6, 0x44);
  __m512d m2 = _mm512_shuffle_f64x2(t1, t3, 0x44);
  __m512d m3 = _mm512_shuffle_f64x2(t5, t7, 0x44);
  __m512d m4 = _mm512_shuffle_f64x2(t0, t2, 0xEE);  // chunks 2,3 of each
  __m512d m5 = _mm512_shuffle_f64x2(t4, t6, 0xEE);
  __m512d m6 = _mm512_shuffle_f64x2(t1, t3, 0xEE);
  __m512d m7 = _mm512_shuffle_f64x2(t5, t7, 0xEE);

  r[0].v = _mm512_shuffle_f64x2(m0, m1, 0x88);  // chunks 0,2
  r[1].v = _mm512_shuffle_f64x2(m2, m3, 0x88);
  r[2].v = _mm512_shuffle_f64x2(m0, m1, 0xDD);  // chunks 1,3
  r[3].v = _mm512_shuffle_f64x2(m2, m3, 0xDD);
  r[4].v = _mm512_shuffle_f64x2(m4, m5, 0x88);
  r[5].v = _mm512_shuffle_f64x2(m6, m7, 0x88);
  r[6].v = _mm512_shuffle_f64x2(m4, m5, 0xDD);
  r[7].v = _mm512_shuffle_f64x2(m6, m7, 0xDD);
}

/// Conventional shuffle-first AVX-2 4x4 transpose (in-lane shuffles first,
/// then cross-lane permutes). Same instruction count, different port mix and
/// dependency chain; the ablation benchmark compares it against the paper's
/// unpack scheme.
inline void transpose_alt(vecd<4>* r) {
  __m256d s0 = _mm256_shuffle_pd(r[0].v, r[1].v, 0x0);  // (A,E,C,G)
  __m256d s1 = _mm256_shuffle_pd(r[0].v, r[1].v, 0xF);  // (B,F,D,H)
  __m256d s2 = _mm256_shuffle_pd(r[2].v, r[3].v, 0x0);  // (I,M,K,O)
  __m256d s3 = _mm256_shuffle_pd(r[2].v, r[3].v, 0xF);  // (J,N,L,P)
  r[0].v = _mm256_permute2f128_pd(s0, s2, 0x20);
  r[1].v = _mm256_permute2f128_pd(s1, s3, 0x20);
  r[2].v = _mm256_permute2f128_pd(s0, s2, 0x31);
  r[3].v = _mm256_permute2f128_pd(s1, s3, 0x31);
}

/// Gather-based transpose: reads columns directly with vgatherdpd. Models
/// the "let the memory system do it" alternative; much higher latency.
inline void transpose_gather(const double* src, vecd<4>* r) {
  const __m128i idx = _mm_setr_epi32(0, 4, 8, 12);
  for (int j = 0; j < 4; ++j)
    r[j].v = _mm256_i32gather_pd(src + j, idx, sizeof(double));
}

/// Scalar square transpose of an n*n block (reference + W=1 layout path).
inline void transpose_scalar(double* a, int n) {
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      double t = a[i * n + j];
      a[i * n + j] = a[j * n + i];
      a[j * n + i] = t;
    }
}

/// In-register transpose of one aligned W*W block stored row-major at `p`,
/// written back in place (used by the layout transform).
template <int W>
inline void transpose_block_inplace(double* p) {
  if constexpr (W == 1) {
    (void)p;
  } else {
    vecd<W> r[W];
    for (int i = 0; i < W; ++i) r[i] = vecd<W>::load(p + i * W);
    transpose(r);
    for (int i = 0; i < W; ++i) r[i].store(p + i * W);
  }
}

}  // namespace sf::simd
