#!/usr/bin/env python3
"""stencilfold project lint: machine-checks the conventions that code review
keeps re-litigating. Run from anywhere:

    python3 scripts/sf_lint.py [--root REPO] [--self-test]

Rules (each has a stable id used in findings and in the self-test):

  env-undocumented    every SF_* environment variable read in src/ or bench/
                      (via the common/env.hpp helpers or std::getenv) must
                      have a row in the docs/TUNING.md table.
  env-stale-doc       every SF_* row in the docs/TUNING.md table must still
                      be read somewhere in src/ or bench/.
  metric-undocumented every telemetry counter/histogram/sample-log/span name
                      registered in src/ must appear in docs/OBSERVABILITY.md.
  metric-stale-doc    every dotted metric name catalogued in
                      docs/OBSERVABILITY.md must still exist in src/.
  raw-getenv          std::getenv may appear only in src/common/env.hpp; all
                      other code goes through the typed helpers there.
  omp-include         <omp.h> may be included only by src/common/cpu.cpp;
                      hot-path code must not grow direct OpenMP-runtime
                      dependencies.
  kernel-registration every kernel TU (src/kernels/*.cpp except registry.cpp)
                      must contain a KernelRegistrar self-registration, or
                      its kernels silently vanish from the registry.
  relaxed-rationale   every std::memory_order_relaxed must carry a rationale
                      comment: a comment containing the token `relaxed:` on
                      the same line or within the 5 preceding lines. A run of
                      consecutive relaxed lines may share one comment (each
                      line chains coverage to the next).

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.

The parsers are deliberately line/regex based (no compiler needed) and
tuned to the project's real idioms; see docs/STATIC_ANALYSIS.md for the
contract each rule enforces and how to extend it.
"""

import argparse
import os
import re
import sys
import tempfile

# --------------------------------------------------------------------------
# Generic helpers
# --------------------------------------------------------------------------

SOURCE_EXTS = (".cpp", ".hpp", ".h", ".cc")


def source_files(root, subdirs):
    """All C++ files under the given repo-relative subdirectories."""
    out = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _dirs, files in os.walk(base):
            for name in sorted(files):
                if name.endswith(SOURCE_EXTS):
                    out.append(os.path.join(dirpath, name))
    return out


def relpath(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path  # repo-relative, or a doc path
        self.line = line  # 1-based, or 0 when the finding is tree-level
        self.message = message

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Rule A/B: SF_* environment variables <-> docs/TUNING.md
# --------------------------------------------------------------------------

# Reads through the env.hpp helpers or (in env.hpp itself) raw getenv.
ENV_READ_RE = re.compile(
    r'\b(?:env_flag|env_long|env_str|std::getenv|getenv)\s*\(\s*"(SF_[A-Z0-9_]+)"'
)
# A documented variable: a backticked SF_ name in a TUNING.md table row.
ENV_DOC_RE = re.compile(r"^\|\s*`(SF_[A-Z0-9_]+)`")


def collect_env_reads(root, files):
    reads = {}  # name -> (relpath, line)
    for path in files:
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                for m in ENV_READ_RE.finditer(line):
                    reads.setdefault(m.group(1), (relpath(root, path), lineno))
    return reads


def collect_env_docs(tuning_md):
    docs = {}  # name -> line
    with open(tuning_md, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            m = ENV_DOC_RE.match(line.strip())
            if m:
                docs.setdefault(m.group(1), lineno)
    return docs


def check_env(root, findings):
    files = source_files(root, ["src", "bench"])
    tuning = os.path.join(root, "docs", "TUNING.md")
    reads = collect_env_reads(root, files)
    docs = collect_env_docs(tuning) if os.path.exists(tuning) else {}
    for name, (path, line) in sorted(reads.items()):
        if name not in docs:
            findings.append(Finding(
                "env-undocumented", path, line,
                f"{name} is read here but has no row in docs/TUNING.md"))
    for name, line in sorted(docs.items()):
        if name not in reads:
            findings.append(Finding(
                "env-stale-doc", "docs/TUNING.md", line,
                f"{name} is documented but no code under src/ or bench/ "
                f"reads it"))


# --------------------------------------------------------------------------
# Rule C/D: telemetry metric names <-> docs/OBSERVABILITY.md
# --------------------------------------------------------------------------

# Registration sites. Sample logs name only their first argument; spans are
# matched fully qualified because core/engine.cpp has an unrelated local
# `Span` geometry type.
METRIC_CALL_RE = re.compile(
    r"telemetry::(counter|histogram|samples)\s*\(|telemetry::Span\s+\w+\s*\(")
STRING_LIT_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')
# A full metric name: dotted lowercase segments (hyphens allowed inside a
# segment, e.g. serving.reject.queue-full).
FULL_NAME_RE = re.compile(r"[a-z][a-z0-9_-]*(?:\.[a-z0-9_<>-]+)+")
BACKTICK_RE = re.compile(r"`([^`]+)`")
# Backticked tokens that are file names, not metric names.
FILE_EXT_RE = re.compile(
    r"\.(py|md|cpp|hpp|h|cc|json|csv|txt|yml|yaml|sh|cmake)$")


def first_call_arg(text, open_paren):
    """The text of the first top-level argument starting after `(`."""
    depth = 0
    i = open_paren
    in_str = False
    start = open_paren + 1
    while i < len(text):
        c = text[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == '"':
                in_str = False
        elif c == '"':
            in_str = True
        elif c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return text[start:i]
        elif c == "," and depth == 1:
            return text[start:i]
        i += 1
    return text[start:]


def collect_metric_names(root, files):
    """(full_names, prefix_fragments) registered in the given files.

    A single-literal argument is a full name. A dynamic argument (string
    concatenation) contributes its literals: one that parses as a full
    dotted name stands alone (ternary selection); one ending in '.' is a
    prefix of a family of runtime-generated names; the rest (e.g. a
    ".accepted" suffix) don't constrain the catalogue.
    """
    full = {}  # name -> (relpath, line)
    prefixes = {}  # prefix -> (relpath, line)
    for path in files:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        rel = relpath(root, path)
        for m in METRIC_CALL_RE.finditer(text):
            open_paren = text.index("(", m.end() - 1)
            arg = first_call_arg(text, open_paren)
            line = text.count("\n", 0, m.start()) + 1
            lits = STRING_LIT_RE.findall(arg)
            if not lits:
                continue
            if len(lits) == 1 and arg.strip() == f'"{lits[0]}"':
                full.setdefault(lits[0], (rel, line))
                continue
            for lit in lits:
                if FULL_NAME_RE.fullmatch(lit):
                    full.setdefault(lit, (rel, line))
                elif lit.endswith("."):
                    prefixes.setdefault(lit, (rel, line))
    return full, prefixes


def collect_metric_docs(observability_md):
    """(dotted_names, all_backticks) catalogued in docs/OBSERVABILITY.md."""
    dotted = {}  # name -> line
    backticks = set()
    with open(observability_md, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            for m in BACKTICK_RE.finditer(line):
                token = m.group(1)
                backticks.add(token)
                if FULL_NAME_RE.fullmatch(token) and not FILE_EXT_RE.search(
                        token):
                    dotted.setdefault(token, lineno)
    return dotted, backticks


def doc_name_matches_source(doc_name, full, prefixes):
    if doc_name in full:
        return True
    # Placeholder segments (<name>) in the doc correspond to the runtime
    # part of a prefix-generated family.
    return any(doc_name.startswith(p) for p in prefixes)


def check_metrics(root, findings):
    files = source_files(root, ["src"])
    obs = os.path.join(root, "docs", "OBSERVABILITY.md")
    full, prefixes = collect_metric_names(root, files)
    dotted, backticks = (
        collect_metric_docs(obs) if os.path.exists(obs) else ({}, set()))
    for name, (path, line) in sorted(full.items()):
        if name not in dotted and name not in backticks:
            findings.append(Finding(
                "metric-undocumented", path, line,
                f"telemetry name \"{name}\" is registered here but not "
                f"catalogued in docs/OBSERVABILITY.md"))
    for prefix, (path, line) in sorted(prefixes.items()):
        if not any(d.startswith(prefix) for d in dotted):
            findings.append(Finding(
                "metric-undocumented", path, line,
                f"dynamic telemetry family \"{prefix}*\" has no catalogued "
                f"name in docs/OBSERVABILITY.md"))
    for name, line in sorted(dotted.items()):
        if not doc_name_matches_source(name, full, prefixes):
            findings.append(Finding(
                "metric-stale-doc", "docs/OBSERVABILITY.md", line,
                f"\"{name}\" is catalogued but no src/ code registers it"))


# --------------------------------------------------------------------------
# Rule E: std::getenv only in src/common/env.hpp
# --------------------------------------------------------------------------

GETENV_RE = re.compile(r"\bstd::getenv\b|(?<![:\w])\bgetenv\s*\(")
GETENV_ALLOWED = {"src/common/env.hpp"}


def check_getenv(root, findings):
    for path in source_files(root, ["src", "bench"]):
        rel = relpath(root, path)
        if rel in GETENV_ALLOWED:
            continue
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if GETENV_RE.search(line):
                    findings.append(Finding(
                        "raw-getenv", rel, lineno,
                        "raw getenv outside src/common/env.hpp — use the "
                        "typed env_* helpers (they centralize parsing and "
                        "keep the SF_* catalogue lintable)"))


# --------------------------------------------------------------------------
# Rule F: <omp.h> only in src/common/cpu.cpp
# --------------------------------------------------------------------------

OMP_RE = re.compile(r'#\s*include\s*[<"]omp\.h[>"]')
OMP_ALLOWED = {"src/common/cpu.cpp"}


def check_omp(root, findings):
    for path in source_files(root, ["src"]):
        rel = relpath(root, path)
        if rel in OMP_ALLOWED:
            continue
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if OMP_RE.search(line):
                    findings.append(Finding(
                        "omp-include", rel, lineno,
                        "<omp.h> outside src/common/cpu.cpp — hot paths must "
                        "go through common/cpu.hpp so the OpenMP runtime "
                        "stays an implementation detail of one TU"))


# --------------------------------------------------------------------------
# Rule G: every kernel TU self-registers
# --------------------------------------------------------------------------

KERNEL_EXEMPT = {"registry.cpp"}


def check_kernel_registration(root, findings):
    kdir = os.path.join(root, "src", "kernels")
    if not os.path.isdir(kdir):
        return
    for name in sorted(os.listdir(kdir)):
        if not name.endswith(".cpp") or name in KERNEL_EXEMPT:
            continue
        path = os.path.join(kdir, name)
        with open(path, encoding="utf-8") as f:
            if "KernelRegistrar" not in f.read():
                findings.append(Finding(
                    "kernel-registration", relpath(root, path), 0,
                    "kernel TU has no KernelRegistrar — its kernels will "
                    "silently never appear in the registry (the OBJECT "
                    "library links the TU, but nothing registers)"))


# --------------------------------------------------------------------------
# Rule H: memory_order_relaxed needs a `relaxed:` rationale comment
# --------------------------------------------------------------------------

RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
RATIONALE_TOKEN = "relaxed:"
RELAXED_WINDOW = 5  # preceding lines searched for the token


def check_relaxed_rationale(root, findings):
    for path in source_files(root, ["src"]):
        rel = relpath(root, path)
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        covered_prev = False  # previous line used relaxed and was covered
        for i, line in enumerate(lines):
            if not RELAXED_RE.search(line):
                # Only comment/blank lines keep a coverage chain alive, so
                # one rationale can cover a contiguous relaxed block but not
                # leak across unrelated code.
                stripped = line.strip()
                if stripped and not stripped.startswith("//"):
                    covered_prev = False
                continue
            lo = max(0, i - RELAXED_WINDOW)
            ok = any(RATIONALE_TOKEN in lines[j] for j in range(lo, i + 1))
            if not ok and covered_prev:
                ok = True  # consecutive relaxed lines share one rationale
            if not ok:
                findings.append(Finding(
                    "relaxed-rationale", rel, i + 1,
                    "memory_order_relaxed without a nearby `relaxed:` "
                    "rationale comment (same line or the 5 lines above) — "
                    "state why unordered access is correct here"))
            covered_prev = ok


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

ALL_RULES = [
    check_env,
    check_metrics,
    check_getenv,
    check_omp,
    check_kernel_registration,
    check_relaxed_rationale,
]


def run_lint(root):
    findings = []
    for rule in ALL_RULES:
        rule(root, findings)
    return findings


# --------------------------------------------------------------------------
# Self-test: seed one violation per rule into a synthetic tree and check
# that exactly that rule fires (and that the clean tree is clean).
# --------------------------------------------------------------------------

CLEAN_TREE = {
    "src/common/env.hpp": """\
#include <cstdlib>
inline bool env_flag(const char* n) { return std::getenv(n) != nullptr; }
inline bool demo() { return env_flag("SF_FOO"); }
""",
    "src/common/cpu.cpp": """\
#include <omp.h>
int threads() { return omp_get_max_threads(); }
""",
    "src/kernels/registry.cpp": """\
struct KernelEntry {};
""",
    "src/kernels/k1.cpp": """\
static const int reg = [] { (void)sizeof("KernelRegistrar"); return 0; }();
""",
    "src/runtime/wp.cpp": """\
#include <atomic>
#include "common/env.hpp"
static std::atomic<long> n{0};
void tally() {
  // relaxed: independent monotone counter, read only by approximate
  // snapshots; nothing is ordered by it.
  n.fetch_add(1, std::memory_order_relaxed);
  n.fetch_add(1, std::memory_order_relaxed);
}
long depth() { return env_long("SF_BAR", 0); }
void count() { telemetry::counter("runtime.pool.tasks").add(1); }
""",
    "docs/TUNING.md": """\
## Environment variables

| Variable | Default | Effect |
|---|---|---|
| `SF_FOO` | unset | demo flag |
| `SF_BAR` | 0 | demo depth |
""",
    "docs/OBSERVABILITY.md": """\
## Metrics

| Name | Kind |
|---|---|
| `runtime.pool.tasks` | counter |
""",
}

# rule id -> (file to rewrite/add, content, expected finding count)
SEEDS = [
    ("env-undocumented", "src/runtime/extra_env.cpp",
     'bool f() { return env_flag("SF_UNDOCUMENTED"); }\n'),
    ("env-stale-doc", "docs/TUNING.md",
     CLEAN_TREE["docs/TUNING.md"] + "| `SF_GONE` | unset | removed knob |\n"),
    ("metric-undocumented", "src/runtime/extra_metric.cpp",
     'void g() { telemetry::counter("runtime.pool.uncatalogued").add(1); }\n'),
    ("metric-stale-doc", "docs/OBSERVABILITY.md",
     CLEAN_TREE["docs/OBSERVABILITY.md"] + "| `runtime.pool.gone` | counter |\n"),
    ("raw-getenv", "src/runtime/raw_env.cpp",
     '#include <cstdlib>\nconst char* h() { return std::getenv("HOME"); }\n'),
    ("omp-include", "src/runtime/omp_leak.cpp",
     "#include <omp.h>\nint w() { return omp_get_max_threads(); }\n"),
    ("kernel-registration", "src/kernels/k2.cpp",
     "void unregistered_kernel() {}\n"),
    ("relaxed-rationale", "src/runtime/relaxed_bare.cpp",
     "#include <atomic>\n"
     "static std::atomic<int> x{0};\n"
     "void f() { x.store(1, std::memory_order_relaxed); }\n"),
]


def write_tree(root, tree):
    for rel, content in tree.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)


def self_test():
    failures = []
    with tempfile.TemporaryDirectory(prefix="sf_lint_clean_") as root:
        write_tree(root, CLEAN_TREE)
        findings = run_lint(root)
        if findings:
            failures.append(
                "clean tree produced findings:\n  "
                + "\n  ".join(str(f) for f in findings))
    for rule_id, seed_path, seed_content in SEEDS:
        with tempfile.TemporaryDirectory(prefix="sf_lint_seed_") as root:
            write_tree(root, CLEAN_TREE)
            write_tree(root, {seed_path: seed_content})
            findings = run_lint(root)
            hits = [f for f in findings if f.rule == rule_id]
            others = [f for f in findings if f.rule != rule_id]
            if not hits:
                failures.append(
                    f"seeded {rule_id} violation in {seed_path} was NOT "
                    f"detected")
            if others:
                failures.append(
                    f"seeding {rule_id} raised unrelated findings:\n  "
                    + "\n  ".join(str(f) for f in others))
    if failures:
        print("sf_lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"- {f}", file=sys.stderr)
        return 1
    print(f"sf_lint self-test passed: clean tree clean, "
          f"{len(SEEDS)} seeded violations each detected by their rule.")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the parent of this script)")
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the seeded-violation self-test instead of linting")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    if not os.path.isdir(os.path.join(args.root, "src")):
        print(f"sf_lint: no src/ under {args.root}", file=sys.stderr)
        return 2

    findings = run_lint(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"sf_lint: {len(findings)} finding(s).", file=sys.stderr)
        return 1
    print("sf_lint: clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
