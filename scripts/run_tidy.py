#!/usr/bin/env python3
"""Baseline-gated clang-tidy runner for stencilfold.

    python3 scripts/run_tidy.py [--build-dir build] [--changed] [-j N]
                                [--update-baseline] [--baseline FILE]

Runs clang-tidy (configuration: the repo-root .clang-tidy) over the
library translation units listed in the build directory's
compile_commands.json (src/ only — tests and benches are gtest/harness
macro soup that drowns the signal), in parallel, and compares the findings
against scripts/tidy_baseline.txt:

  * a finding whose fingerprint is in the baseline is reported as "known"
    and does not fail the run — pre-existing debt stays visible but does
    not block unrelated PRs;
  * a finding NOT in the baseline fails the run (exit 1) — new code must
    be tidy-clean;
  * --update-baseline rewrites the baseline from the current findings
    (do this in the same PR that consciously accepts a new finding).

Fingerprints are `relpath:check:message` — deliberately line-number-free so
unrelated edits above a known finding don't churn the baseline.

Bootstrap: while the baseline file contains no fingerprints (fresh clone,
comment-only file), the run records what it finds, prints it, and exits 0 —
seed the gate by committing the output of --update-baseline once a
clang-tidy version has been fixed in CI. See docs/STATIC_ANALYSIS.md.

--changed lints only TUs touched vs. the merge base (origin/main by
default, override with --since REF) — the fast local loop. The baseline
gate applies identically.

Exit status: 0 = no new findings, 1 = new findings, 2 = environment error
(no clang-tidy, no compile_commands.json).
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

FINDING_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<sev>warning|error): (?P<msg>.*?) \[(?P<check>[^\]]+)\]\s*$")


def load_compile_commands(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(path):
        print(f"run_tidy: {path} not found — configure with "
              f"`cmake -B {build_dir} -S .` first "
              f"(CMAKE_EXPORT_COMPILE_COMMANDS is on by default).",
              file=sys.stderr)
        return None
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def library_tus(commands):
    """src/ translation units from compile_commands, deduplicated."""
    seen = set()
    out = []
    for entry in commands:
        src = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(src, REPO_ROOT)
        if rel.startswith("src" + os.sep) and src not in seen:
            seen.add(src)
            out.append(src)
    return sorted(out)


def changed_files(since):
    base = subprocess.run(
        ["git", "merge-base", since, "HEAD"], cwd=REPO_ROOT,
        capture_output=True, text=True)
    ref = base.stdout.strip() if base.returncode == 0 else since
    diff = subprocess.run(
        ["git", "diff", "--name-only", ref, "--"], cwd=REPO_ROOT,
        capture_output=True, text=True)
    if diff.returncode != 0:
        print(f"run_tidy: git diff against {since} failed; "
              f"linting every TU instead.", file=sys.stderr)
        return None
    return {os.path.normpath(os.path.join(REPO_ROOT, p))
            for p in diff.stdout.splitlines() if p}


def fingerprint(path, check, msg):
    rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
    return f"{rel}:{check}:{msg}"


def run_one(tidy, build_dir, tu):
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", tu],
        capture_output=True, text=True)
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if not m:
            continue
        findings.append({
            "where": f"{os.path.relpath(m.group('path'), REPO_ROOT)}:"
                     f"{m.group('line')}:{m.group('col')}",
            "check": m.group("check"),
            "msg": m.group("msg"),
            "fp": fingerprint(m.group("path"), m.group("check"),
                              m.group("msg")),
        })
    # clang-tidy exits non-zero on compile errors even with no findings;
    # surface those loudly instead of silently passing an unanalyzed TU.
    hard_error = proc.returncode != 0 and not findings
    return tu, findings, hard_error, proc.stderr if hard_error else ""


def read_baseline(path):
    if not os.path.exists(path):
        return None
    fps = set()
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                fps.add(line)
    return fps


def write_baseline(path, findings):
    with open(path, "w", encoding="utf-8") as f:
        f.write("# clang-tidy baseline: one fingerprint "
                "(relpath:check:message) per line.\n"
                "# Regenerate with: python3 scripts/run_tidy.py "
                "--update-baseline\n"
                "# A finding listed here is known debt; findings not listed "
                "fail CI.\n")
        for fp in sorted({f["fp"] for f in findings}):
            f.write(fp + "\n")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    parser.add_argument("--baseline",
                        default=os.path.join(REPO_ROOT, "scripts",
                                             "tidy_baseline.txt"))
    parser.add_argument("--changed", action="store_true",
                        help="lint only TUs changed vs. --since")
    parser.add_argument("--since", default="origin/main")
    parser.add_argument("-j", "--jobs", type=int,
                        default=os.cpu_count() or 4)
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy executable (default: first of "
                             "$CLANG_TIDY, clang-tidy on PATH)")
    args = parser.parse_args(argv)

    tidy = (args.clang_tidy or os.environ.get("CLANG_TIDY")
            or shutil.which("clang-tidy"))
    if not tidy or not shutil.which(tidy):
        print("run_tidy: clang-tidy not found (install it or set "
              "$CLANG_TIDY).", file=sys.stderr)
        return 2

    commands = load_compile_commands(args.build_dir)
    if commands is None:
        return 2
    tus = library_tus(commands)
    if args.changed:
        touched = changed_files(args.since)
        if touched is not None:
            tus = [t for t in tus if t in touched]
            if not tus:
                print("run_tidy: no changed src/ TUs — nothing to lint.")
                return 0

    print(f"run_tidy: {len(tus)} TU(s), {args.jobs} job(s), "
          f"config .clang-tidy")
    findings = []
    hard_errors = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for tu, found, hard, err in pool.map(
                lambda t: run_one(tidy, args.build_dir, t), tus):
            findings.extend(found)
            if hard:
                hard_errors.append((tu, err))

    for tu, err in hard_errors:
        rel = os.path.relpath(tu, REPO_ROOT)
        print(f"run_tidy: clang-tidy failed on {rel}:\n{err}",
              file=sys.stderr)
    if hard_errors:
        return 2

    if args.update_baseline:
        write_baseline(args.baseline, findings)
        print(f"run_tidy: wrote {len({f['fp'] for f in findings})} "
              f"fingerprint(s) to {os.path.relpath(args.baseline, REPO_ROOT)}")
        return 0

    baseline = read_baseline(args.baseline)
    bootstrap = not baseline  # missing file or comments-only
    known = [f for f in findings if baseline and f["fp"] in baseline]
    new = [f for f in findings if not (baseline and f["fp"] in baseline)]

    for f in known:
        print(f"known   {f['where']}: {f['msg']} [{f['check']}]")
    for f in new:
        print(f"NEW     {f['where']}: {f['msg']} [{f['check']}]")

    if bootstrap:
        print(f"run_tidy: baseline unseeded — recorded {len(new)} "
              f"finding(s) without failing. Seed the gate with "
              f"--update-baseline.")
        return 0
    if new:
        print(f"run_tidy: {len(new)} new finding(s) not in baseline "
              f"({len(known)} known).", file=sys.stderr)
        return 1
    print(f"run_tidy: clean ({len(known)} known baseline finding(s)).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
