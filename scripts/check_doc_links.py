#!/usr/bin/env python3
"""Link checker for the repository's markdown documentation.

Scans README.md and docs/*.md for markdown links and images, and verifies
that every *relative* target exists in the repository (with GitHub-style
heading-anchor validation for `file.md#section` and `#section` fragments).
External http(s)/mailto links are not fetched — CI must not depend on the
network — but their syntax is still exercised by the markdown parse.

Exit status: 0 when every link resolves, 1 otherwise (one line per broken
link).  Run from anywhere; paths are resolved against the repository root
(the parent of this script's directory).
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target) and ![alt](target); target may carry a "title" suffix.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, spaces to hyphens."""
    text = re.sub(r"[`*_\[\]()]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def headings_of(path: Path) -> set:
    slugs = {}
    out = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(1))
        # GitHub de-duplicates repeated headings with -1, -2, ... suffixes.
        n = slugs.get(slug, 0)
        slugs[slug] = n + 1
        out.add(slug if n == 0 else f"{slug}-{n}")
    return out


def iter_links(path: Path):
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_file(path: Path):
    errors = []
    for lineno, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, fragment = target.partition("#")
        dest = path if not file_part else (path.parent / file_part).resolve()
        if not dest.exists():
            errors.append(f"{path}:{lineno}: broken link target '{target}'")
            continue
        if fragment and dest.suffix == ".md":
            if fragment not in headings_of(dest):
                errors.append(
                    f"{path}:{lineno}: no heading '#{fragment}' in "
                    f"{dest.relative_to(REPO_ROOT)}"
                )
    return errors


def main() -> int:
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    missing = [f for f in files if not f.exists()]
    if missing:
        for f in missing:
            print(f"missing documentation file: {f}", file=sys.stderr)
        return 1
    errors = []
    checked = 0
    for f in files:
        errors.extend(check_file(f))
        checked += 1
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        return 1
    print(f"checked {checked} markdown files: all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
