#!/usr/bin/env python3
"""Render the fig8/fig9/fig10 CSV families written by the bench harnesses
into PNGs — one command from sweep to figure.

The harnesses (bench/fig8_blockfree.cpp, bench/fig9_multicore.cpp,
bench/fig10_scalability.cpp) write `<name>-<stamp>.csv` into $SF_BENCH_OUT
(default: the working directory). This script scans a directory for those
families and renders one PNG per CSV next to it (or under --out):

    SF_BENCH_OUT=results ./fig10_scalability --pinned
    python3 scripts/plot_figures.py results

Family conventions:
  * fig8_*    — GFLOP/s vs problem size (log-x size sweep, one line/method);
  * fig9_*    — GFLOP/s per method on the multicore configuration (bars);
  * fig10_*   — GFLOP/s vs cores (one line per method, linear axes);
  * fig_tiletree — flat (levels 1) vs tile-tree (levels 3) GFLOP/s over
                the nz depth sweep (bench/fig_tiletree.cpp A/B; the
                geometry columns — levels/tiles — are annotations, not
                plotted series);
  * serving_* — client-observed latency percentiles vs offered load
                (bench/serving_throughput.cpp: p50 solid / p99 dashed, one
                color per serving mode);
  * telemetry_* — the sf::telemetry exporter family (SF_METRICS=1 runs):
                `telemetry_hist-*` (long-form metric,bucket_lo,bucket_hi,
                count from telemetry::write_reports — queue-depth and
                batch-size log-bucket histograms as one bar panel per
                metric), `telemetry_latency_*` (per-load-point p50/p99
                pairs from bench/serving_throughput.cpp — solid/dashed line
                per metric). telemetry_counters-*/telemetry_samples_* CSVs
                are data dumps, not figures, and are skipped.

Requires matplotlib; install it (`pip install matplotlib`) where you plot —
the bench machines only need to produce the CSVs.
"""

import argparse
import csv
import os
import re
import sys

# Matches the harness naming: <family>_<stencil>-<YYYYMMDD-HHMMSS>-p<pid>.csv
# (telemetry::write_reports uses the same stamp, so its CSVs join the runs).
# fig_tiletree emits a single table with no per-stencil suffix, so the
# stencil group is optional.
FAMILY_RE = re.compile(
    r"^(fig8|fig9|fig10|fig_tiletree|serving|telemetry)"
    r"(?:_(.+))?-(\d{8}-\d{6}-p\d+)\.csv$")


def parse_csv(path):
    """Returns (header, rows) with rows as lists of strings."""
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    if not rows:
        return [], []
    return rows[0], rows[1:]


def to_float(cell):
    """Numeric cell value, or None for non-GFLOP/s cells. fig9's auto
    column annotates its number ('45.2:tiled' / '45.2:untiled') — keep the
    number; '-' markers and '3.4x' speedup ratios (different units) become
    None so their columns drop out of the GFLOP/s axes."""
    try:
        return float(cell.split(":")[0])
    except ValueError:
        return None


def numeric_columns(header, rows):
    """Yields (label, values) for every column after the first that has at
    least one numeric value; values align with the first column."""
    for c in range(1, len(header)):
        vals = [to_float(r[c]) if c < len(r) else None for r in rows]
        if any(v is not None for v in vals):
            yield header[c], vals


def plot_telemetry(plt, name, stencil, header, rows, out_dir):
    """Renders the sf::telemetry exporter CSVs. Histogram dumps
    (metric,bucket_lo,bucket_hi,count) become one bar panel per metric;
    latency sweeps (clients + *_p50_*/*_p99_* columns) become p50/p99 line
    pairs. Counter/sample dumps have no figure shape and are skipped."""
    if header[:4] == ["metric", "bucket_lo", "bucket_hi", "count"]:
        metrics = []
        for r in rows:
            if r[0] not in metrics:
                metrics.append(r[0])
        if not metrics:
            print(f"  skipping {name}: no histogram rows", file=sys.stderr)
            return None
        ncols = min(2, len(metrics))
        nrows = (len(metrics) + ncols - 1) // ncols
        fig, axes = plt.subplots(nrows, ncols,
                                 figsize=(5.0 * ncols, 3.2 * nrows),
                                 squeeze=False)
        for i, metric in enumerate(metrics):
            ax = axes[i // ncols][i % ncols]
            mine = [r for r in rows if r[0] == metric]
            labels = [f"{r[1]}–{r[2]}" for r in mine]
            counts = [to_float(r[3]) or 0 for r in mine]
            ax.bar(range(len(mine)), counts)
            ax.set_xticks(range(len(mine)))
            ax.set_xticklabels(labels, rotation=45, ha="right", fontsize=6)
            ax.set_title(metric, fontsize=8)
            ax.set_ylabel("count", fontsize=7)
            ax.grid(True, axis="y", alpha=0.3)
        for i in range(len(metrics), nrows * ncols):
            axes[i // ncols][i % ncols].axis("off")
        fig.suptitle("telemetry histograms (log2 buckets)")
        fig.tight_layout()
        out = os.path.join(out_dir, os.path.splitext(name)[0] + ".png")
        fig.savefig(out, dpi=150)
        plt.close(fig)
        return out

    # p50/p99 pairs over the first (x) column, e.g. telemetry_latency_*.
    pairs = []
    for h in header[1:]:
        if "_p50" in h:
            partner = h.replace("_p50", "_p99")
            if partner in header:
                pairs.append((h.split("_p50")[0], h, partner))
    if not pairs:
        print(f"  skipping {name}: no histogram or p50/p99 columns",
              file=sys.stderr)
        return None
    cols = {h: i for i, h in enumerate(header)}
    xs = [to_float(r[0]) for r in rows]
    fig, ax = plt.subplots(figsize=(6.4, 4.2))
    for label, p50, p99 in pairs:
        color = None
        for col, style, suffix in ((p50, "-", "p50"), (p99, "--", "p99")):
            ys = [to_float(r[cols[col]]) if cols[col] < len(r) else None
                  for r in rows]
            pts = [(x, y) for x, y in zip(xs, ys)
                   if x is not None and y is not None]
            if not pts:
                continue
            line, = ax.plot([p[0] for p in pts], [p[1] for p in pts],
                            style, color=color, marker="o", markersize=3,
                            label=f"{label} {suffix}")
            color = line.get_color()
    ax.set_xlabel(header[0])
    ax.set_ylabel("ms / value")
    ax.set_title(f"telemetry — {stencil}")
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=7)
    fig.tight_layout()
    out = os.path.join(out_dir, os.path.splitext(name)[0] + ".png")
    fig.savefig(out, dpi=150)
    plt.close(fig)
    return out


def plot_file(plt, path, out_dir):
    name = os.path.basename(path)
    m = FAMILY_RE.match(name)
    if not m:
        return None
    family, stencil = m.group(1), m.group(2) or ""
    header, rows = parse_csv(path)
    if not header or not rows:
        print(f"  skipping {name}: empty table", file=sys.stderr)
        return None

    if family == "telemetry":
        return plot_telemetry(plt, name, stencil, header, rows, out_dir)

    if family == "fig_tiletree":
        # Flat-vs-tree A/B: the figure is the two GFLOP/s columns over the
        # nz sweep; levels/tile columns are geometry annotations and the
        # speedup ('1.08x') already drops out as non-numeric.
        cols = {h: i for i, h in enumerate(header)}
        for want in ("flat_gflops", "tree_gflops"):
            if want not in cols:
                print(f"  skipping {name}: no '{want}' column",
                      file=sys.stderr)
                return None
        fig, ax = plt.subplots(figsize=(6.4, 4.2))
        xs = [to_float(r[0]) for r in rows]
        for label, style in (("flat_gflops", "--"), ("tree_gflops", "-")):
            ys = [to_float(r[cols[label]]) if cols[label] < len(r) else None
                  for r in rows]
            pts = [(x, y) for x, y in zip(xs, ys)
                   if x is not None and y is not None]
            if pts:
                ax.plot([p[0] for p in pts], [p[1] for p in pts], style,
                        marker="o", markersize=3, label=label.split("_")[0])
        ax.set_xlabel(header[0])
        ax.set_ylabel("GFLOP/s")
        ax.set_title("tile tree A/B — flat (levels 1) vs tree (levels 3)")
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=7)
        fig.tight_layout()
        out = os.path.join(out_dir, os.path.splitext(name)[0] + ".png")
        fig.savefig(out, dpi=150)
        plt.close(fig)
        return out

    fig, ax = plt.subplots(figsize=(6.4, 4.2))
    xlabels = [r[0] for r in rows]
    xnum = [to_float(x) for x in xlabels]
    numeric_x = all(v is not None for v in xnum)

    if family == "serving":
        # Rows are (mode, clients, ..., p50 ms, p99 ms, ...): pivot into one
        # latency-vs-clients line pair (p50 solid, p99 dashed) per mode.
        cols = {h: i for i, h in enumerate(header)}
        for want in ("clients", "p50 ms", "p99 ms"):
            if want not in cols:
                print(f"  skipping {name}: no '{want}' column",
                      file=sys.stderr)
                return None
        modes = []
        for r in rows:
            if r[0] not in modes:
                modes.append(r[0])
        for mode in modes:
            mine = [r for r in rows if r[0] == mode]
            xs = [to_float(r[cols["clients"]]) for r in mine]
            color = None
            for pct, style in (("p50 ms", "-"), ("p99 ms", "--")):
                ys = [to_float(r[cols[pct]]) for r in mine]
                pts = [(x, y) for x, y in zip(xs, ys)
                       if x is not None and y is not None]
                if not pts:
                    continue
                line, = ax.plot([p[0] for p in pts], [p[1] for p in pts],
                                style, color=color, marker="o", markersize=3,
                                label=f"{mode} {pct.split()[0]}")
                color = line.get_color()
        ax.set_xlabel("clients (offered load)")
        ax.set_ylabel("latency (ms)")
        ax.set_title(f"{family} — {stencil}")
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=7)
        fig.tight_layout()
        out = os.path.join(out_dir, os.path.splitext(name)[0] + ".png")
        fig.savefig(out, dpi=150)
        plt.close(fig)
        return out

    if family == "fig9":
        # One multicore configuration: grouped bars, one group per row.
        series = list(numeric_columns(header, rows))
        width = 0.8 / max(1, len(series))
        for i, (label, vals) in enumerate(series):
            xs = [j + i * width for j in range(len(rows))]
            ax.bar(xs, [v if v is not None else 0 for v in vals],
                   width=width, label=label)
        ax.set_xticks([j + 0.4 - width / 2 for j in range(len(rows))])
        ax.set_xticklabels(xlabels, rotation=30, ha="right", fontsize=8)
    else:
        for label, vals in numeric_columns(header, rows):
            xs = xnum if numeric_x else list(range(len(rows)))
            pts = [(x, v) for x, v in zip(xs, vals) if v is not None]
            if not pts:
                continue
            ax.plot([p[0] for p in pts], [p[1] for p in pts],
                    marker="o", markersize=3, label=label)
        if not numeric_x:
            ax.set_xticks(list(range(len(rows))))
            ax.set_xticklabels(xlabels, rotation=30, ha="right", fontsize=8)
        if family == "fig8" and numeric_x:
            ax.set_xscale("log")
        ax.set_xlabel(header[0])

    ax.set_ylabel("GFLOP/s")
    ax.set_title(f"{family} — {stencil}")
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=7)
    fig.tight_layout()

    out = os.path.join(out_dir, os.path.splitext(name)[0] + ".png")
    fig.savefig(out, dpi=150)
    plt.close(fig)
    return out


def main():
    ap = argparse.ArgumentParser(
        description="Render fig8/fig9/fig10 bench CSVs into PNGs.")
    ap.add_argument("dir", nargs="?",
                    default=os.environ.get("SF_BENCH_OUT", "."),
                    help="directory holding the CSVs "
                         "(default: $SF_BENCH_OUT or .)")
    ap.add_argument("-o", "--out", default=None,
                    help="output directory for PNGs (default: same as dir)")
    args = ap.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")  # headless: no display needed on bench boxes
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("plot_figures.py needs matplotlib "
                 "(pip install matplotlib); the bench harnesses themselves "
                 "do not — run them anywhere and plot where matplotlib is "
                 "available.")

    if not os.path.isdir(args.dir):
        sys.exit(f"not a directory: {args.dir}")
    out_dir = args.out or args.dir
    os.makedirs(out_dir, exist_ok=True)

    made = []
    for name in sorted(os.listdir(args.dir)):
        if FAMILY_RE.match(name):
            out = plot_file(plt, os.path.join(args.dir, name), out_dir)
            if out:
                made.append(out)
                print(f"wrote {out}")
    if not made:
        sys.exit(f"no fig8_*/fig9_*/fig10_*/fig_tiletree/serving_*/"
                 f"telemetry_* CSVs found in {args.dir} "
                 "(run the bench harnesses with SF_BENCH_OUT set first)")


if __name__ == "__main__":
    main()
