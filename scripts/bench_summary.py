#!/usr/bin/env python3
"""Merge the BENCH_*.json summaries the bench harnesses write into one
perf-trajectory table.

bench/serving_throughput.cpp and bench/fig10_scalability.cpp write
$SF_BENCH_OUT/BENCH_serving.json / BENCH_fig10.json — fixed-name,
machine-readable {metric: value} maps stamped with the run time
(src/bench_util/harness.hpp emit_bench_json). Point this script at one or
more directories holding such files (e.g. one directory per PR checkout,
or an archive of successive runs) and it merges them into a long-form CSV:

    python3 scripts/bench_summary.py results-pr7 results-pr8 -o traj.csv

Output columns: dir, bench, stamp, metric, value — one row per metric per
file, ready for pandas/spreadsheet pivoting (metric as index, dir as
columns gives the across-PR trajectory). With no -o, prints the table and
a quick per-bench summary to stdout. Stdlib only; no third-party deps.
"""

import argparse
import csv
import glob
import json
import os
import sys


def load_summaries(dirs):
    """Yields (dir, bench, stamp, metric, value) rows from every
    BENCH_*.json under the given directories (non-recursive)."""
    found = 0
    for d in dirs:
        for path in sorted(glob.glob(os.path.join(d, "BENCH_*.json"))):
            try:
                with open(path) as f:
                    doc = json.load(f)
            except (OSError, json.JSONDecodeError) as e:
                print(f"skipping {path}: {e}", file=sys.stderr)
                continue
            found += 1
            bench = doc.get("bench",
                            os.path.basename(path)[len("BENCH_"):-len(".json")])
            stamp = doc.get("stamp", "")
            for metric, value in sorted(doc.get("metrics", {}).items()):
                yield d, bench, stamp, metric, value
    if found == 0:
        sys.exit("no BENCH_*.json found in: " + ", ".join(dirs) +
                 " (run the bench harnesses with SF_BENCH_OUT set first)")


def main():
    ap = argparse.ArgumentParser(
        description="Merge BENCH_*.json bench summaries into one CSV.")
    ap.add_argument("dirs", nargs="*",
                    default=None,
                    help="directories holding BENCH_*.json files "
                         "(default: $SF_BENCH_OUT or .)")
    ap.add_argument("-o", "--out", default=None,
                    help="output CSV path (default: print to stdout)")
    args = ap.parse_args()
    dirs = args.dirs or [os.environ.get("SF_BENCH_OUT", ".")]

    rows = list(load_summaries(dirs))
    header = ["dir", "bench", "stamp", "metric", "value"]

    if args.out:
        with open(args.out, "w", newline="") as f:
            w = csv.writer(f)
            w.writerow(header)
            w.writerows(rows)
        print(f"wrote {args.out} ({len(rows)} metrics)")
        return

    w = csv.writer(sys.stdout)
    w.writerow(header)
    w.writerows(rows)
    # Quick per-bench digest on stderr so piping the CSV stays clean.
    benches = {}
    for _, bench, stamp, _, _ in rows:
        benches.setdefault(bench, set()).add(stamp)
    for bench, stamps in sorted(benches.items()):
        print(f"# {bench}: {len(stamps)} run(s)", file=sys.stderr)


if __name__ == "__main__":
    main()
