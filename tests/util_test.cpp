// Substrate units: aligned storage, grids, tables, CPU dispatch, env knobs,
// and the dense linear algebra under the regression planner.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "common/aligned_buffer.hpp"
#include "common/cpu.hpp"
#include "common/env.hpp"
#include "common/table.hpp"
#include "grid/grid_utils.hpp"
#include "linalg/dense.hpp"
#include "linalg/least_squares.hpp"

namespace sf {
namespace {

TEST(AlignedBuffer, AlignmentAndZeroInit) {
  AlignedBuffer b(1001);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kAlignment, 0u);
  for (std::size_t i = 0; i < 1001; ++i) EXPECT_EQ(b[i], 0.0);
  AlignedBuffer c(std::move(b));
  EXPECT_EQ(c.size(), 1001u);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(Grid, RowAlignmentEveryRow) {
  Grid2D g(5, 37, 3);
  for (int y = -3; y < 8; ++y)
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(g.row(y)) % kAlignment, 0u);
  Grid3D h(3, 4, 19, 5);
  for (int z = -5; z < 8; ++z)
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(h.row(z, 0)) % kAlignment, 0u);
}

TEST(Grid, HaloIndexingRoundTrip) {
  Grid1D g(10, 4);
  for (int i = -4; i < 14; ++i) g.at(i) = i * 1.5;
  for (int i = -4; i < 14; ++i) EXPECT_DOUBLE_EQ(g.at(i), i * 1.5);
}

TEST(GridUtils, CopyAndDiff) {
  Grid2D a(6, 7, 2), b(6, 7, 2);
  fill_random(a, 1);
  copy(a, b);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
  b.at(3, 3) += 0.5;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
  EXPECT_GE(max_abs(a), max_abs_diff(a, b) - 0.5);
}

TEST(GridUtils, FillRandomDeterministic) {
  Grid1D a(50, 2), b(50, 2);
  fill_random(a, 9);
  fill_random(b, 9);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
  fill_random(b, 10);
  EXPECT_GT(max_abs_diff(a, b), 0.0);
}

TEST(Table, AlignmentAndCsv) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.str();
  EXPECT_NE(s.find("a    bb"), std::string::npos);
  EXPECT_EQ(t.csv(), "a,bb\n1,2\n333,4\n");
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
}

TEST(Cpu, DispatchConsistency) {
  EXPECT_EQ(isa_width(Isa::Scalar), 1);
  EXPECT_EQ(isa_width(Isa::Avx2), 4);
  EXPECT_EQ(isa_width(Isa::Avx512), 8);
  const Isa resolved = resolve_isa(Isa::Auto);
  EXPECT_NE(resolved, Isa::Auto);
  if (cpu_has_avx512()) EXPECT_EQ(resolved, Isa::Avx512);
  EXPECT_GE(hardware_threads(), 1);
  EXPECT_STREQ(isa_name(Isa::Avx2), "avx2");
}

TEST(Env, FlagAndLong) {
  setenv("SF_TEST_FLAG", "1", 1);
  EXPECT_TRUE(env_flag("SF_TEST_FLAG"));
  setenv("SF_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("SF_TEST_FLAG"));
  unsetenv("SF_TEST_FLAG");
  EXPECT_FALSE(env_flag("SF_TEST_FLAG"));
  setenv("SF_TEST_NUM", "42", 1);
  EXPECT_EQ(env_long("SF_TEST_NUM", 7), 42);
  unsetenv("SF_TEST_NUM");
  EXPECT_EQ(env_long("SF_TEST_NUM", 7), 7);
}

TEST(Dense, GaussSolve) {
  Mat a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  std::vector<double> x;
  ASSERT_TRUE(solve_gauss(a, {5, 10}, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  Mat sing(2, 2);
  sing(0, 0) = 1;
  sing(0, 1) = 2;
  sing(1, 0) = 2;
  sing(1, 1) = 4;
  EXPECT_FALSE(solve_gauss(sing, {1, 2}, x));
}

TEST(Dense, MultiplyAndTranspose) {
  Mat a(2, 3), b(3, 2);
  int v = 1;
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j) a(i, j) = v++;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 2; ++j) b(i, j) = v++;
  Mat c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 1 * 7 + 2 * 9 + 3 * 11);
  Mat at = a.transposed();
  EXPECT_DOUBLE_EQ(at(2, 1), a(1, 2));
}

TEST(LeastSquares, ExactFitAndScaleInvariance) {
  // target = 2*b0 + 3*b1 at a tiny scale (the folding-matrix regime).
  const double s = 1e-4;
  std::vector<std::vector<double>> basis = {{s, 0, s}, {0, s, s}};
  std::vector<double> target = {2 * s, 3 * s, 5 * s};
  LsqFit fit = least_squares(basis, target);
  ASSERT_TRUE(fit.exact);
  EXPECT_NEAR(fit.coeff[0], 2.0, 1e-9);
  EXPECT_NEAR(fit.coeff[1], 3.0, 1e-9);
}

TEST(LeastSquares, DependentBasisIsDropped) {
  std::vector<std::vector<double>> basis = {{1, 2}, {2, 4}, {0, 1}};
  std::vector<double> target = {1, 3};
  LsqFit fit = least_squares(basis, target);
  EXPECT_TRUE(fit.exact);
  EXPECT_EQ(fit.coeff[1], 0.0);  // duplicate direction gets zero weight
}

TEST(LeastSquares, InexactFitFlagged) {
  std::vector<std::vector<double>> basis = {{1, 0, 0}};
  std::vector<double> target = {1, 1, 0};
  LsqFit fit = least_squares(basis, target);
  EXPECT_FALSE(fit.exact);
  EXPECT_NEAR(fit.residual_inf, 1.0, 1e-12);
}

}  // namespace
}  // namespace sf
