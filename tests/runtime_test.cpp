// The runtime layer: topology discovery against fixture sysfs trees, pin
// orders per affinity policy, the persistent worker pool (coverage,
// exceptions, oversubscription, reuse across Engine::prepare calls),
// first-touch initialization, and the end-to-end guarantee that placement
// never changes results — pinned and unpinned runs agree bitwise for all
// nine presets.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "grid/grid_utils.hpp"
#include "kernels/registry.hpp"
#include "runtime/topology.hpp"
#include "runtime/worker_pool.hpp"
#include "telemetry/telemetry.hpp"
#include "tiling/split_tiling.hpp"

namespace sf {
namespace {

// ---------------------------------------------------------------------------
// Fixture sysfs tree: 2 packages x 2 cores x SMT-2 = 8 logical CPUs,
// one NUMA node per package. Physical siblings: (0,4) (1,5) (2,6) (3,7).
// ---------------------------------------------------------------------------

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  ASSERT_TRUE(out.is_open()) << path;
  out << contents;
}

std::string make_fixture_tree() {
  const std::string root = ::testing::TempDir() + "sf_sysfs_fixture";
  auto mkdirs = [](const std::string& p) {
    std::string cur;
    for (std::size_t i = 0; i <= p.size(); ++i) {
      if (i == p.size() || p[i] == '/') {
        if (!cur.empty()) ::mkdir(cur.c_str(), 0755);
      }
      if (i < p.size()) cur += p[i];
    }
  };
  struct Cpu {
    int id, core, package;
  };
  // cpus 0,1 = package 0 cores 0,1; cpus 2,3 = package 1 cores 0,1;
  // cpus 4-7 = their SMT siblings.
  const Cpu cpus[] = {{0, 0, 0}, {1, 1, 0}, {2, 0, 1}, {3, 1, 1},
                      {4, 0, 0}, {5, 1, 0}, {6, 0, 1}, {7, 1, 1}};
  mkdirs(root + "/cpu");
  write_file(root + "/cpu/online", "0-7\n");
  for (const Cpu& c : cpus) {
    const std::string base = root + "/cpu/cpu" + std::to_string(c.id);
    mkdirs(base + "/topology");
    write_file(base + "/topology/core_id", std::to_string(c.core) + "\n");
    write_file(base + "/topology/physical_package_id",
               std::to_string(c.package) + "\n");
  }
  mkdirs(root + "/node/node0");
  mkdirs(root + "/node/node1");
  write_file(root + "/node/node0/cpulist", "0-1,4-5\n");
  write_file(root + "/node/node1/cpulist", "2-3,6-7\n");
  return root;
}

TEST(Topology, ParsesCpuLists) {
  EXPECT_EQ(parse_cpu_list("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpu_list("5\n"), (std::vector<int>{5}));
  EXPECT_EQ(parse_cpu_list(""), (std::vector<int>{}));
  // Malformed chunks are skipped, the parseable remainder kept.
  EXPECT_EQ(parse_cpu_list("x,7,abc-3"), (std::vector<int>{7}));
  // Duplicates collapse.
  EXPECT_EQ(parse_cpu_list("2,2,1-2"), (std::vector<int>{1, 2}));
}

TEST(Topology, DiscoversFixtureTree) {
  const Topology t = Topology::discover(make_fixture_tree());
  EXPECT_EQ(t.logical_cpus(), 8);
  EXPECT_EQ(t.physical_cores(), 4);
  EXPECT_EQ(t.packages(), 2);
  EXPECT_EQ(t.numa_nodes(), 2);
  EXPECT_TRUE(t.smt());
  EXPECT_EQ(t.cores_per_node(), 2);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(5), 0);
  EXPECT_EQ(t.node_of(2), 1);
  EXPECT_EQ(t.node_of(7), 1);
  EXPECT_EQ(t.node_of(99), -1);
  // SMT ranks: the sibling of each core comes second in id order.
  const auto& cpus = t.cpus();
  EXPECT_EQ(cpus[0].smt_rank, 0);  // cpu0
  EXPECT_EQ(cpus[4].smt_rank, 1);  // cpu4, sibling of cpu0
}

TEST(Topology, PinOrders) {
  const Topology t = Topology::discover(make_fixture_tree());
  // None: no pinning at all.
  EXPECT_TRUE(t.pin_order(Affinity::None).empty());
  // Compact: fill node 0 (package 0) core by core with its SMT sibling
  // adjacent, then node 1.
  EXPECT_EQ(t.pin_order(Affinity::Compact),
            (std::vector<int>{0, 4, 1, 5, 2, 6, 3, 7}));
  // Scatter: round-robin across the two nodes, whole cores before any SMT
  // sibling — two workers land on two different nodes.
  EXPECT_EQ(t.pin_order(Affinity::Scatter),
            (std::vector<int>{0, 2, 1, 3, 4, 6, 5, 7}));
}

TEST(Topology, FallsBackFlatWithoutSysfs) {
  const Topology t =
      Topology::discover(::testing::TempDir() + "sf_sysfs_missing");
  EXPECT_EQ(t.logical_cpus(), hardware_threads());
  EXPECT_EQ(t.numa_nodes(), 1);
  EXPECT_EQ(t.packages(), 1);
  EXPECT_FALSE(t.smt());
  EXPECT_TRUE(t.pin_order(Affinity::None).empty());
  // Flat still yields usable pin orders (every cpu exactly once).
  EXPECT_EQ(static_cast<int>(t.pin_order(Affinity::Compact).size()),
            t.logical_cpus());
}

TEST(Topology, AffinityNames) {
  EXPECT_STREQ(affinity_name(Affinity::None), "none");
  EXPECT_STREQ(affinity_name(Affinity::Compact), "compact");
  EXPECT_STREQ(affinity_name(Affinity::Scatter), "scatter");
  EXPECT_EQ(affinity_from_name("compact"), Affinity::Compact);
  EXPECT_EQ(affinity_from_name("scatter"), Affinity::Scatter);
  EXPECT_EQ(affinity_from_name("none"), Affinity::None);
  EXPECT_EQ(affinity_from_name(""), Affinity::None);
  EXPECT_EQ(affinity_from_name("garbage"), Affinity::None);
}

// ---------------------------------------------------------------------------
// PlacementPlan
// ---------------------------------------------------------------------------

TEST(Placement, BalancedCoversEveryTileOnce) {
  const PlacementPlan p = balanced_placement(10, 3, Affinity::Compact);
  EXPECT_EQ(p.workers, 3);
  EXPECT_EQ(p.affinity, Affinity::Compact);
  EXPECT_EQ(p.ntiles(), 10);
  // ceil(10/3) = 4: OpenMP schedule(static) chunking.
  EXPECT_EQ(p.tiles_of(0), (std::pair<int, int>{0, 4}));
  EXPECT_EQ(p.tiles_of(1), (std::pair<int, int>{4, 8}));
  EXPECT_EQ(p.tiles_of(2), (std::pair<int, int>{8, 10}));
}

TEST(Placement, MoreWorkersThanTilesLeavesEmptyTails) {
  const PlacementPlan p = balanced_placement(2, 4, Affinity::None);
  EXPECT_EQ(p.tiles_of(0), (std::pair<int, int>{0, 1}));
  EXPECT_EQ(p.tiles_of(1), (std::pair<int, int>{1, 2}));
  EXPECT_EQ(p.tiles_of(2), (std::pair<int, int>{2, 2}));  // empty
  EXPECT_EQ(p.tiles_of(3), (std::pair<int, int>{2, 2}));  // empty
}

// ---------------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------------

TEST(WorkerPool, ParallelForCoversRangeExactlyOnce) {
  WorkerPool pool(4, Affinity::None);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](int i) { ++hits[static_cast<size_t>(i)]; });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(hits[static_cast<size_t>(i)], 1);
}

TEST(WorkerPool, RunHandsEveryWorkerItsIndex) {
  WorkerPool pool(3, Affinity::None);
  std::vector<std::atomic<int>> seen(3);
  for (int rep = 0; rep < 50; ++rep)  // repeated tasks reuse parked workers
    pool.run([&](int w) { ++seen[static_cast<size_t>(w)]; });
  for (int w = 0; w < 3; ++w) EXPECT_EQ(seen[static_cast<size_t>(w)], 50);
}

TEST(WorkerPool, PropagatesWorkerExceptions) {
  WorkerPool pool(2, Affinity::None);
  EXPECT_THROW(pool.run([&](int w) {
                 if (w == 1) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // The pool survives a throwing task.
  std::atomic<int> ok{0};
  pool.run([&](int) { ++ok; });
  EXPECT_EQ(ok, 2);
}

// Oversubscription (far more workers than this machine has CPUs, pinned so
// several workers share each CPU) must complete, not deadlock.
TEST(WorkerPool, OversubscriptionCompletes) {
  const int n = 4 * hardware_threads() + 3;
  WorkerPool pool(n, Affinity::Compact);
  std::atomic<int> ran{0};
  pool.run([&](int) { ++ran; });
  EXPECT_EQ(ran, n);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000,
                    [&](int i) { ++hits[static_cast<size_t>(i)]; });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(hits[static_cast<size_t>(i)], 1);
}

TEST(WorkerPool, ArenaAllocatedPerWorker) {
  WorkerPool pool(2, Affinity::None);
  pool.ensure_arena(3, 256);
  for (int w = 0; w < 2; ++w) {
    ASSERT_EQ(pool.arena(w).size(), 3u);
    EXPECT_GE(pool.arena(w)[0].size(), 256u);
  }
  // Distinct workers own distinct slabs.
  EXPECT_NE(pool.arena(0)[0].data(), pool.arena(1)[0].data());
  // Re-ensuring with satisfied sizes keeps the buffers (pointer-stable).
  const double* p0 = pool.arena(0)[0].data();
  pool.ensure_arena(3, 256);
  EXPECT_EQ(pool.arena(0)[0].data(), p0);
}

TEST(WorkerPool, SharedPoolReusedPerConfiguration) {
  const auto a = shared_pool(2, Affinity::None);
  const auto b = shared_pool(2, Affinity::None);
  EXPECT_EQ(a.get(), b.get());
  // A different configuration is a different pool.
  const auto c = shared_pool(2, Affinity::Compact);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(c->affinity(), Affinity::Compact);
}

TEST(WorkerPool, ReleasedPoolJoinsItsWorkers) {
  std::weak_ptr<WorkerPool> watch;
  {
    const auto p = shared_pool(3, Affinity::None);
    watch = p;
  }
  // The registry keeps the configuration warm after the caller lets go...
  EXPECT_FALSE(watch.expired());
  // ...until it is explicitly released, which must run the destructor (and
  // therefore join the worker threads) because no external reference holds it.
  EXPECT_TRUE(release_pool(3, Affinity::None));
  EXPECT_TRUE(watch.expired());
  // Releasing a configuration that is not cached reports false.
  EXPECT_FALSE(release_pool(3, Affinity::None));
}

TEST(WorkerPool, ReleaseUnusedDropsOnlyUnreferencedPools) {
  const auto held = shared_pool(5, Affinity::None);
  std::weak_ptr<WorkerPool> loose = shared_pool(6, Affinity::None);
  EXPECT_FALSE(loose.expired());
  release_unused_pools();
  // The externally-referenced pool survives and is still the cached one;
  // the unreferenced pool's workers shut down.
  EXPECT_TRUE(loose.expired());
  EXPECT_EQ(shared_pool(5, Affinity::None).get(), held.get());
  EXPECT_TRUE(release_pool(5, Affinity::None));
}

TEST(WorkerPool, LruCapEvictsOldestUnreferencedOnly) {
  ASSERT_EQ(setenv("SF_POOL_CACHE", "1", 1), 0);
  const auto held = shared_pool(3, Affinity::None);
  std::weak_ptr<WorkerPool> oldest = shared_pool(4, Affinity::None);
  // Inserting another configuration over a cap of one evicts the oldest
  // unreferenced entry (4 threads) but never the externally-held pool.
  shared_pool(5, Affinity::None);
  EXPECT_TRUE(oldest.expired());
  EXPECT_EQ(shared_pool(3, Affinity::None).get(), held.get());
  EXPECT_GE(pool_cache_size(), static_cast<std::size_t>(1));
  unsetenv("SF_POOL_CACHE");
  release_unused_pools();
  EXPECT_TRUE(release_pool(3, Affinity::None));
}

// ---------------------------------------------------------------------------
// Engine integration: pool reuse, first touch, pinned bitwise agreement.
// ---------------------------------------------------------------------------

TEST(RuntimeEngine, PoolReusedAcrossPrepareCalls) {
  ExecOptions opts;
  opts.tiling = Tiling::On;
  opts.threads = 2;
  opts.tsteps = 8;
  PreparedStencil p1 =
      Engine::instance().prepare(Preset::Heat2D, Extents{72, 64}, opts);
  ASSERT_TRUE(p1.plan().tiled);
  ASSERT_NE(p1.pool(), nullptr);
  EXPECT_EQ(p1.pool()->threads(), 2);
  // A different preparation with the same (threads, affinity) reuses the
  // same pool — workers are per configuration, not per preparation.
  PreparedStencil p2 =
      Engine::instance().prepare(Preset::Heat2D, Extents{96, 80}, opts);
  ASSERT_NE(p2.pool(), nullptr);
  EXPECT_EQ(p1.pool(), p2.pool());
  // Untiled preparations carry no pool.
  ExecOptions off = opts;
  off.tiling = Tiling::Off;
  PreparedStencil p3 =
      Engine::instance().prepare(Preset::Heat2D, Extents{72, 64}, off);
  EXPECT_EQ(p3.pool(), nullptr);
}

TEST(RuntimeEngine, FirstTouchZeroesWholeBuffer) {
  ExecOptions opts;
  opts.tiling = Tiling::On;
  opts.threads = 2;
  opts.affinity = Affinity::Compact;
  opts.tsteps = 8;
  PreparedStencil ps =
      Engine::instance().prepare(Preset::Heat2D, Extents{72, 64}, opts);
  ASSERT_TRUE(ps.plan().tiled);
  EXPECT_EQ(ps.affinity(), Affinity::Compact);
  const int h = ps.halo();
  Grid2D g(64, 72, h, /*zero_init=*/false);
  ps.first_touch(g.view());
  for (int y = -h; y < 64 + h; ++y)
    for (int x = -h; x < 72 + h; ++x)
      ASSERT_EQ(g.at(y, x), 0.0) << "y=" << y << " x=" << x;
  // The placement the workers touched by is the plan's.
  EXPECT_EQ(ps.plan().placement.workers, 2);
  EXPECT_GT(ps.plan().placement.ntiles(), 0);
}

void apply_small_size(Solver& s, int dims) {
  switch (dims) {
    case 1: s.size(2000); break;
    case 2: s.size(72, 64); break;
    default: s.size(36, 24, 20); break;
  }
  s.steps(8);
}

// The load-bearing guarantee of the whole layer: placement policy moves
// *where* a tile computes, never *what* it computes. Pinned and unpinned
// runs of every preset must agree bit for bit (the pool path vs itself
// under compact and scatter pinning, including first-touch workspaces).
TEST(RuntimeEngine, PinnedMatchesUnpinnedBitwiseAllPresets) {
  for (const auto& spec : all_presets()) {
    Solver none = Solver::make(spec.id).tiling(Tiling::On).threads(2);
    apply_small_size(none, spec.dims);
    none.run();

    for (Affinity aff : {Affinity::Compact, Affinity::Scatter}) {
      Solver pinned =
          Solver::make(spec.id).tiling(Tiling::On).threads(2).affinity(aff);
      apply_small_size(pinned, spec.dims);
      pinned.run();
      double diff = 1;
      switch (spec.dims) {
        case 1:
          diff = max_abs_diff(*none.workspace().a1, *pinned.workspace().a1);
          break;
        case 2:
          diff = max_abs_diff(*none.workspace().a2, *pinned.workspace().a2);
          break;
        default:
          diff = max_abs_diff(*none.workspace().a3, *pinned.workspace().a3);
          break;
      }
      EXPECT_EQ(diff, 0.0) << spec.name << " " << affinity_name(aff);
    }
  }
}

// SF_AFFINITY supplies the process default; an explicit option outranks
// nothing here (the option is None), so the env decides — and the prepared
// handle reports the resolved policy.
// ---------------------------------------------------------------------------
// NeighborSync + pipelined pool tasks
// ---------------------------------------------------------------------------

TEST(NeighborSync, PublishSatisfiesWait) {
  NeighborSync sync;
  sync.reset(3);
  EXPECT_EQ(sync.workers(), 3);
  sync.publish(1, 1);
  sync.publish(1, 2);
  sync.wait_for(1, 1);  // already satisfied: returns immediately
  sync.wait_for(1, 2);
  // reset() re-arms: counters back to zero for the next task.
  sync.reset(3);
  sync.publish(1, 1);
  sync.wait_for(1, 1);
}

TEST(NeighborSync, WaitBlocksUntilNeighborPublishes) {
  NeighborSync sync;
  sync.reset(2);
  int payload = 0;
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    payload = 42;       // must be visible after the paired wait_for
    sync.publish(0, 1); // release
  });
  sync.wait_for(0, 1);  // acquire
  EXPECT_EQ(payload, 42);
  t.join();
}

TEST(NeighborSync, AbandonUnblocksAnyFutureWait) {
  NeighborSync sync;
  sync.reset(2);
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    sync.abandon(0);
  });
  sync.wait_for(0, 1);
  sync.wait_for(0, 1000000);  // abandoned: every round reads as published
  t.join();
}

// ---------------------------------------------------------------------------
// Runtime telemetry: sync wait/park counters and pool task accounting.
// Handles resolve at construction, so each test enables SF_METRICS first
// and builds fresh objects.
// ---------------------------------------------------------------------------

TEST(NeighborSyncTelemetry, LongWaitIsCountedAndParks) {
  ASSERT_EQ(setenv("SF_METRICS", "1", 1), 0);
  telemetry::refresh_env();
  const telemetry::Snapshot before = telemetry::snapshot();
  {
    NeighborSync sync;
    sync.reset(2);
    std::thread waiter([&] { sync.wait_for(1, 5); });
    // Long enough that the waiter exhausts its spin budget and parks
    // before the publish arrives.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    sync.publish(1, 5);
    waiter.join();
  }
  const telemetry::Snapshot after = telemetry::snapshot();
  const auto delta = [&](const char* name) {
    return after.counter_value(name) - before.counter_value(name);
  };
  EXPECT_GE(delta("runtime.sync.waits"), 1);
  EXPECT_GT(delta("runtime.sync.wait_ns"), 0);
#if defined(__linux__)
  EXPECT_GE(delta("runtime.sync.parks"), 1);
#endif
  ASSERT_EQ(setenv("SF_METRICS", "0", 1), 0);
  telemetry::refresh_env();
}

TEST(NeighborSyncTelemetry, PublishWakesEveryParkedWaiter) {
  ASSERT_EQ(setenv("SF_METRICS", "1", 1), 0);
  telemetry::refresh_env();
  const telemetry::Snapshot before = telemetry::snapshot();
  {
    NeighborSync sync;
    sync.reset(4);
    std::vector<std::thread> waiters;
    for (int i = 0; i < 3; ++i)
      waiters.emplace_back([&] { sync.wait_for(0, 1); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    sync.publish(0, 1);  // one wake must release all parked waiters
    for (auto& w : waiters) w.join();
  }
  const telemetry::Snapshot after = telemetry::snapshot();
  EXPECT_GE(after.counter_value("runtime.sync.waits") -
                before.counter_value("runtime.sync.waits"),
            3);
  ASSERT_EQ(setenv("SF_METRICS", "0", 1), 0);
  telemetry::refresh_env();
}

TEST(WorkerPoolTelemetry, TaskCountersMatchDispatches) {
  ASSERT_EQ(setenv("SF_METRICS", "1", 1), 0);
  telemetry::refresh_env();
  // Fresh direct-constructed pool: its runtime.pool.* handles resolve live
  // (shared_pool could hand back a pool built before metrics were on).
  WorkerPool pool(2, Affinity::None);
  const telemetry::Snapshot before = telemetry::snapshot();
  pool.run([](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  pool.run([](int) {});
  const telemetry::Snapshot after = telemetry::snapshot();
  const auto delta = [&](const char* name) {
    return after.counter_value(name) - before.counter_value(name);
  };
  EXPECT_EQ(delta("runtime.pool.dispatches"), 2);
  EXPECT_EQ(delta("runtime.pool.tasks"), 4);  // 2 workers x 2 dispatches
  EXPECT_GT(delta("runtime.pool.busy_ns"), 0);
  const telemetry::HistogramSample* h =
      after.find_histogram("runtime.pool.task_us");
  ASSERT_NE(h, nullptr);
  std::int64_t hcount = h->count;
  if (const telemetry::HistogramSample* b =
          before.find_histogram("runtime.pool.task_us"))
    hcount -= b->count;
  EXPECT_EQ(hcount, 4);
  ASSERT_EQ(setenv("SF_METRICS", "0", 1), 0);
  telemetry::refresh_env();
}

TEST(WorkerPool, OnWorkerThreadIdentifiesOwnWorkersOnly) {
  WorkerPool pool(2, Affinity::None);
  WorkerPool other(2, Affinity::None);
  EXPECT_FALSE(pool.on_worker_thread());
  pool.run([&](int) {
    EXPECT_TRUE(pool.on_worker_thread());
    EXPECT_FALSE(other.on_worker_thread());
  });
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(WorkerPool, PipelinedWaveCompletesAndOrdersWrites) {
  // A backward-propagating wave: worker w publishes round b only after its
  // right neighbor published b-1; each round fills the worker's own slot
  // for that round, read by the left neighbor after its wait — the
  // acquire/release pairing must make every write before the publish
  // visible. Slots are preallocated and each written exactly once, so the
  // only cross-thread reads are of slots sequenced before a publish the
  // reader has already waited on (slots past the published round may still
  // be concurrently written and must not be touched).
  const int n = 4, rounds = 50;
  WorkerPool pool(n, Affinity::None);
  std::vector<std::vector<int>> cells(
      static_cast<size_t>(n), std::vector<int>(static_cast<size_t>(rounds), 0));
  pool.run_pipelined([&](int w, NeighborSync& sync) {
    for (int b = 1; b <= rounds; ++b) {
      if (w + 1 < n) {
        sync.wait_for(w + 1, b - 1);
        if (b > 1)
          ASSERT_EQ(cells[static_cast<size_t>(w) + 1][static_cast<size_t>(b) -
                                                      2],
                    b - 1);
      }
      cells[static_cast<size_t>(w)][static_cast<size_t>(b) - 1] = b;
      sync.publish(w, b);
    }
  });
  for (int w = 0; w < n; ++w)
    for (int b = 1; b <= rounds; ++b)
      EXPECT_EQ(cells[static_cast<size_t>(w)][static_cast<size_t>(b) - 1], b);
}

TEST(WorkerPool, PipelinedReArmsAcrossTasks) {
  WorkerPool pool(3, Affinity::None);
  for (int rep = 0; rep < 20; ++rep) {
    std::atomic<int> done{0};
    pool.run_pipelined([&](int w, NeighborSync& sync) {
      // Stale counters from the previous task would satisfy this wait
      // before the publish and let a worker read `done` too early.
      sync.publish(w, 1);
      for (int o = 0; o < 3; ++o) sync.wait_for(o, 1);
      ++done;
    });
    EXPECT_EQ(done, 3);
  }
}

TEST(WorkerPool, PipelinedWorkerExceptionUnblocksNeighbors) {
  WorkerPool pool(3, Affinity::None);
  EXPECT_THROW(pool.run_pipelined([&](int w, NeighborSync& sync) {
                 if (w == 1) throw std::runtime_error("boom");
                 // Workers 0 and 2 wait on rounds the dead worker will
                 // never publish; abandon() must unblock them.
                 sync.publish(w, 1);
                 sync.wait_for(1, 1);
               }),
               std::runtime_error);
  // The pool survives and runs pipelined tasks again.
  std::atomic<int> ok{0};
  pool.run_pipelined([&](int w, NeighborSync& sync) {
    sync.publish(w, 1);
    ++ok;
  });
  EXPECT_EQ(ok, 3);
}

TEST(WorkerPool, PipelinedNestedCallThrows) {
  WorkerPool pool(2, Affinity::None);
  EXPECT_THROW(pool.run([&](int) {
                 pool.run_pipelined([](int, NeighborSync&) {});
               }),
               std::logic_error);
  // Off-pool threads (including another pool's workers) may still call it.
  WorkerPool other(2, Affinity::None);
  std::atomic<int> ran{0};
  other.run([&](int w) {
    if (w == 0)
      pool.run_pipelined([&](int, NeighborSync&) { ++ran; });
  });
  EXPECT_EQ(ran, 2);
}

TEST(WorkerPool, JitterStallZeroCostWhenUnset) {
  unsetenv("SF_TEST_JITTER");
  test_jitter_stall(0);  // no env: returns immediately, no crash
  ASSERT_EQ(setenv("SF_TEST_JITTER", "0", 1), 0);
  test_jitter_stall(1);
  unsetenv("SF_TEST_JITTER");
}

// The jitter hook + a pipelined wave: adversarial per-worker stalls must
// skew the stages without breaking the ordering contract.
TEST(WorkerPool, PipelinedSurvivesJitter) {
  ASSERT_EQ(setenv("SF_TEST_JITTER", "400", 1), 0);
  const int n = 4, rounds = 12;
  WorkerPool pool(n, Affinity::None);
  std::vector<long> sum(static_cast<size_t>(n), 0);
  pool.run_pipelined([&](int w, NeighborSync& sync) {
    for (int b = 1; b <= rounds; ++b) {
      test_jitter_stall(w);
      if (w + 1 < n) sync.wait_for(w + 1, b - 1);
      sum[static_cast<size_t>(w)] += b;
      sync.publish(w, b);
    }
  });
  unsetenv("SF_TEST_JITTER");
  for (int w = 0; w < n; ++w)
    EXPECT_EQ(sum[static_cast<size_t>(w)], rounds * (rounds + 1) / 2);
}

// Stress (ctest label `stress`): long adversarial runs — heavy jitter,
// oversubscribed + pinned workers, full pipelined advances through the
// tiling engine compared bitwise against the barrier schedule.
TEST(WorkerPoolStress, JitterAdversarialSkewBitwise) {
  ASSERT_EQ(setenv("SF_TEST_JITTER", "1500", 1), 0);
  const auto& spec = preset(Preset::Heat2D);
  const int ny = 128, nx = 64, tsteps = 24;
  const int halo =
      require_kernel(Method::Ours2, 2).required_halo(spec.p2.radius());
  TilePlan barrier;
  barrier.method = Method::Ours2;
  barrier.tile = 16;
  barrier.threads = 6;
  barrier.pipeline = Pipeline::Off;
  for (Affinity aff : {Affinity::None, Affinity::Compact, Affinity::Scatter}) {
    barrier.affinity = aff;
    TilePlan piped = barrier;
    piped.pipeline = Pipeline::On;
    for (int rep = 0; rep < 6; ++rep) {
      Grid2D ba(ny, nx, halo), bb(ny, nx, halo), pa(ny, nx, halo),
          pb(ny, nx, halo);
      fill_random(ba, 100 + rep);
      fill_random(pa, 100 + rep);
      copy(ba, bb);
      copy(pa, pb);
      run_tile_plan(spec.p2, ba, bb, tsteps, barrier);
      run_tile_plan(spec.p2, pa, pb, tsteps, piped);
      EXPECT_EQ(max_abs_diff(pa, ba), 0.0)
          << affinity_name(aff) << " rep " << rep;
    }
  }
  unsetenv("SF_TEST_JITTER");
}

TEST(RuntimeEngine, EnvAffinityAppliesWhenUnset) {
  ASSERT_EQ(setenv("SF_AFFINITY", "compact", 1), 0);
  ExecOptions opts;
  opts.tiling = Tiling::On;
  opts.threads = 2;
  opts.tsteps = 8;
  PreparedStencil ps =
      Engine::instance().prepare(Preset::Heat2D, Extents{72, 64}, opts);
  EXPECT_EQ(ps.affinity(), Affinity::Compact);
  ASSERT_NE(ps.pool(), nullptr);
  EXPECT_EQ(ps.pool()->affinity(), Affinity::Compact);
  unsetenv("SF_AFFINITY");
  // With the env cleared the same request resolves to None — and is a
  // *different* preparation (the effective options are the cache key).
  PreparedStencil again =
      Engine::instance().prepare(Preset::Heat2D, Extents{72, 64}, opts);
  EXPECT_EQ(again.affinity(), Affinity::None);
}

TEST(RuntimeEngine, EnvThreadsAppliesWhenUnset) {
  ASSERT_EQ(setenv("SF_THREADS", "2", 1), 0);
  ExecOptions opts;
  opts.tiling = Tiling::On;
  opts.tsteps = 8;
  PreparedStencil ps =
      Engine::instance().prepare(Preset::Heat2D, Extents{72, 64}, opts);
  ASSERT_TRUE(ps.plan().tiled);
  EXPECT_EQ(ps.plan().tile.threads, 2);
  unsetenv("SF_THREADS");
}

}  // namespace
}  // namespace sf
