// Layout transforms: round trips, index maps, and TLRow vector assembly.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/cpu.hpp"
#include "grid/grid_utils.hpp"
#include "kernels/tl_access.hpp"
#include "layout/dlt_layout.hpp"
#include "layout/transpose_layout.hpp"

namespace sf {
namespace {

template <int W>
void check_tl_roundtrip(int n) {
  Grid1D g(n, 8);
  fill_random(g, 5);
  Grid1D ref(n, 8);
  copy(g, ref);
  grid_transpose_layout<W>(g);
  grid_transpose_layout<W>(g);
  EXPECT_EQ(max_abs_diff(g, ref), 0.0) << "n=" << n;
}

TEST(TransposeLayout, RoundTrip) {
  for (int n : {16, 17, 31, 32, 64, 100, 1000}) check_tl_roundtrip<4>(n);
  if (cpu_has_avx512())
    for (int n : {64, 65, 128, 1000}) check_tl_roundtrip<8>(n);
}

template <int W>
void check_tl_index(int n) {
  // tl_index must be the permutation the block transpose performs.
  Grid1D g(n, 8);
  for (int i = -8; i < n + 8; ++i) g.at(i) = i;
  grid_transpose_layout<W>(g);
  for (int i = -8; i < n + 8; ++i)
    EXPECT_DOUBLE_EQ(g.at(tl_index<W>(i, n)), i) << "i=" << i;
}

TEST(TransposeLayout, IndexMap) {
  check_tl_index<4>(64);
  check_tl_index<4>(70);  // with tail
  if (cpu_has_avx512()) check_tl_index<8>(200);
}

TEST(TransposeLayout, MatchesPaperFigure1) {
  // Original A..P (0..15) becomes A E I M B F J N C G K O D H L P.
  Grid1D g(16, 8);
  for (int i = 0; i < 16; ++i) g.at(i) = i;
  grid_transpose_layout<4>(g);
  const double expect[16] = {0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15};
  for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(g.at(i), expect[i]);
}

template <int W>
void check_tlrow_vectors(int n) {
  Grid1D g(n, 8);
  for (int i = -8; i < n + 8; ++i) g.at(i) = i;
  grid_transpose_layout<W>(g);
  TLRow<W> row(g.data(), n);
  // vec(b, jj) lane t must hold logical element b*W*W + jj + W*t.
  for (int b = 0; b < row.nb; ++b)
    for (int jj = -W; jj < 2 * W; ++jj) {
      auto v = row.vec(b, jj);
      for (int t = 0; t < W; ++t) {
        const int logical = b * W * W + jj + W * t;
        EXPECT_DOUBLE_EQ(v.lane(t), logical)
            << "b=" << b << " jj=" << jj << " lane=" << t;
      }
    }
}

TEST(TransposeLayout, TLRowAssembledVectors) {
  check_tlrow_vectors<4>(64);   // exact blocks
  check_tlrow_vectors<4>(80);
  check_tlrow_vectors<4>(70);   // tail of 6
  if (cpu_has_avx512()) {
    check_tlrow_vectors<8>(128);
    check_tlrow_vectors<8>(150);  // tail
  }
}

TEST(TransposeLayout, Grid2DRowwise) {
  Grid2D g(6, 40, 8);
  fill_random(g, 11);
  Grid2D ref(6, 40, 8);
  copy(g, ref);
  grid_transpose_layout<4>(g);
  // Each row is permuted independently — including halo rows, which kernels
  // read through layout-aware views as y-neighbours of boundary rows.
  for (int y = -8; y < 6 + 8; ++y)
    for (int x = 0; x < 40; ++x)
      EXPECT_DOUBLE_EQ(g.at(y, tl_index<4>(x, 40)), ref.at(y, x));
  // Column halo keeps its original order.
  EXPECT_DOUBLE_EQ(g.at(2, -3), ref.at(2, -3));
  grid_transpose_layout<4>(g);
  for (int y = -8; y < 6 + 8; ++y)
    for (int x = -8; x < 40 + 8; ++x)
      EXPECT_DOUBLE_EQ(g.at(y, x), ref.at(y, x));
}

TEST(DltLayout, RoundTrip1D) {
  for (int n : {64, 100, 1000, 1003}) {
    Grid1D g(n, 8);
    fill_random(g, 3);
    Grid1D ref(n, 8);
    copy(g, ref);
    grid_to_dlt(g, 4);
    grid_from_dlt(g, 4);
    EXPECT_EQ(max_abs_diff(g, ref), 0.0) << n;
  }
}

TEST(DltLayout, IndexMap) {
  const int n = 40, w = 4;  // L = 10
  Grid1D g(n, 8);
  for (int i = -8; i < n + 8; ++i) g.at(i) = i;
  grid_to_dlt(g, w);
  for (int i = -8; i < n + 8; ++i)
    EXPECT_DOUBLE_EQ(g.at(dlt_index(i, n, w)), i) << i;
  // Lanes of the column-j vector are L apart in logical space.
  for (int j = 0; j < 10; ++j)
    for (int lane = 0; lane < w; ++lane)
      EXPECT_DOUBLE_EQ(g.at(j * w + lane), lane * 10 + j);
}

TEST(DltLayout, RoundTrip2D) {
  Grid2D g(5, 64, 8);
  fill_random(g, 9);
  Grid2D ref(5, 64, 8);
  copy(g, ref);
  grid_to_dlt(g, 4);
  grid_from_dlt(g, 4);
  EXPECT_EQ(max_abs_diff(g, ref), 0.0);
}

TEST(DltLayout, RoundTrip3D) {
  Grid3D g(4, 5, 48, 8);
  fill_random(g, 13);
  Grid3D ref(4, 5, 48, 8);
  copy(g, ref);
  grid_to_dlt(g, 4);
  grid_from_dlt(g, 4);
  EXPECT_EQ(max_abs_diff(g, ref), 0.0);
}

// ---------------------------------------------------------------------------
// Property tests over *views*: the transforms are used on caller-owned
// buffers through FieldViews (transposed-resident execution), so the
// involution/round-trip identities must hold for odd extents, halo
// rows/planes, and non-contiguous row strides — and must never touch bytes
// outside the view's addressable span.
// ---------------------------------------------------------------------------

// A 2-D view narrower than its allocation: rows are nx_view wide but
// stride_ apart, with untouched padding columns between nx_view + halo and
// the next row.
struct StridedField2D {
  Grid2D backing;
  FieldView2D view;
  StridedField2D(int ny, int nx_view, int halo, int pad)
      : backing(ny, nx_view + pad, halo),
        view(backing.data(), ny, nx_view, backing.stride(), halo) {}
};

TEST(TransposeLayout, InvolutionOverStridedViewsWithHalo) {
  for (int nx : {64, 70, 61}) {  // exact blocks, tail, odd extent
    StridedField2D f(6, nx, 4, 24);
    fill_random(f.backing, 17);
    Grid2D ref(6, nx + 24, 4);
    copy(f.backing, ref);

    apply_transpose_layout(f.view, 4);
    // Halo rows are transformed with the interior; every row permutes by
    // tl_index; the x-halo and all padding columns stay put.
    for (int y = -4; y < 6 + 4; ++y)
      for (int x = -4; x < nx + 24 + 4; ++x) {
        if (x >= 0 && x < nx)  // interior: permuted by tl_index
          EXPECT_DOUBLE_EQ(f.backing.at(y, tl_index<4>(x, nx)), ref.at(y, x))
              << "nx=" << nx << " y=" << y << " x=" << x;
        else  // halo and padding: identity
          EXPECT_DOUBLE_EQ(f.backing.at(y, x), ref.at(y, x))
              << "nx=" << nx << " y=" << y << " x=" << x;
      }
    // Involution: a second application restores every byte.
    apply_transpose_layout(f.view, 4);
    EXPECT_EQ(max_abs_diff(f.backing, ref), 0.0) << "nx=" << nx;
    for (int y = -4; y < 6 + 4; ++y)
      for (int x = -4; x < nx + 24 + 4; ++x)
        EXPECT_DOUBLE_EQ(f.backing.at(y, x), ref.at(y, x));
  }
}

TEST(TransposeLayout, InvolutionOverViews3DIncludingHaloPlanes) {
  for (int nx : {32, 37}) {
    Grid3D g(3, 4, nx, 2);
    fill_random(g, 23);
    Grid3D ref(3, 4, nx, 2);
    copy(g, ref);
    apply_transpose_layout(g.view(), 4);
    // Halo planes/rows permute like interior ones (kernels read
    // z/y-neighbours of boundary planes through layout-aware views).
    for (int z = -2; z < 3 + 2; ++z)
      for (int y = -2; y < 4 + 2; ++y)
        for (int x = 0; x < nx; ++x)
          EXPECT_DOUBLE_EQ(g.at(z, y, tl_index<4>(x, nx)), ref.at(z, y, x));
    apply_transpose_layout(g.view(), 4);
    EXPECT_EQ(max_abs_diff(g, ref), 0.0);
    for (int z = -2; z < 3 + 2; ++z)
      for (int y = -2; y < 4 + 2; ++y)
        for (int x = -2; x < nx + 2; ++x)
          EXPECT_DOUBLE_EQ(g.at(z, y, x), ref.at(z, y, x));
  }
}

TEST(TransposeLayout, IndexMapIsItsOwnInverse) {
  // tl_index is an involution on logical indices, including halo and tail.
  for (int n : {16, 17, 64, 70, 100}) {
    for (int i = -8; i < n + 8; ++i) {
      EXPECT_EQ(tl_index<4>(tl_index<4>(i, n), n), i) << "n=" << n;
      EXPECT_EQ(tl_index<8>(tl_index<8>(i, n), n), i) << "n=" << n;
    }
  }
}

TEST(DltLayout, RoundTripOverStridedViewsWithHalo) {
  for (int nx : {64, 61}) {  // exact lift and odd extent with tail
    StridedField2D f(5, nx, 4, 16);
    fill_random(f.backing, 29);
    Grid2D ref(5, nx + 16, 4);
    copy(f.backing, ref);

    grid_to_dlt(f.view, 4);
    // Every row (halo rows included) lifts by dlt_index; halo columns and
    // padding stay put.
    for (int y = -4; y < 5 + 4; ++y) {
      for (int x = 0; x < nx; ++x)
        EXPECT_DOUBLE_EQ(f.backing.at(y, dlt_index(x, nx, 4)), ref.at(y, x))
            << "nx=" << nx << " y=" << y << " x=" << x;
      for (int x = -4; x < 0; ++x)
        EXPECT_DOUBLE_EQ(f.backing.at(y, x), ref.at(y, x));
      for (int x = nx; x < nx + 16 + 4; ++x)
        EXPECT_DOUBLE_EQ(f.backing.at(y, x), ref.at(y, x));
    }
    grid_from_dlt(f.view, 4);
    for (int y = -4; y < 5 + 4; ++y)
      for (int x = -4; x < nx + 16 + 4; ++x)
        EXPECT_DOUBLE_EQ(f.backing.at(y, x), ref.at(y, x))
            << "nx=" << nx << " y=" << y << " x=" << x;
  }
}

TEST(DltLayout, RoundTrip3DViewsIncludingHaloPlanes) {
  Grid3D g(3, 4, 41, 2);
  fill_random(g, 31);
  Grid3D ref(3, 4, 41, 2);
  copy(g, ref);
  grid_to_dlt(g.view(), 4);
  for (int z = -2; z < 3 + 2; ++z)
    for (int y = -2; y < 4 + 2; ++y)
      for (int x = 0; x < 41; ++x)
        EXPECT_DOUBLE_EQ(g.at(z, y, dlt_index(x, 41, 4)), ref.at(z, y, x));
  grid_from_dlt(g.view(), 4);
  for (int z = -2; z < 3 + 2; ++z)
    for (int y = -2; y < 4 + 2; ++y)
      for (int x = -2; x < 41 + 2; ++x)
        EXPECT_DOUBLE_EQ(g.at(z, y, x), ref.at(z, y, x));
}

}  // namespace
}  // namespace sf
