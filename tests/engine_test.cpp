// Tests for the prepared-execution layer (core/engine.hpp): prepare-once /
// run-many result stability against the Solver facade, zero-copy execution
// on caller-owned buffers, concurrent runs, FieldView validation, the
// Engine's plan cache, and the tuner's shape-bucket widening.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/solver.hpp"
#include "core/tuner.hpp"
#include "grid/grid_utils.hpp"
#include "stencil/reference.hpp"

namespace sf {
namespace {

constexpr std::uint64_t kSeed = 42;  // the Solver's default seed

// Runs `s` (which resolves sizes/steps), then executes the equivalent
// PreparedStencil on caller-owned grids with identical initial conditions
// and returns the max |diff| against the Solver's result grid. Exercises
// every dimensionality through one code path.
double prepared_vs_solver(Solver s, Tiling tiling) {
  s.tiling(tiling);
  s.run();

  ExecOptions opts;
  opts.tiling = tiling;
  opts.tsteps = s.tsteps();
  PreparedStencil ps = Engine::instance().prepare(
      s.spec(), Extents{s.nx(), s.ny(), s.nz()}, opts);
  EXPECT_EQ(ps.halo(), s.halo());
  EXPECT_EQ(&ps.kernel(), &s.kernel());

  const Workspace& ws = s.workspace();
  const int h = ps.halo();
  double diff = 0;
  if (s.spec().dims == 1) {
    Grid1D a(static_cast<int>(s.nx()), h), b(static_cast<int>(s.nx()), h);
    fill_random(a, kSeed);
    copy(a, b);
    if (s.spec().has_source) {
      Grid1D k(static_cast<int>(s.nx()), h);
      fill_random(k, kSeed + 1);  // the Solver's source-array seed
      ps.run(a.view(), b.view(), k.view(), s.tsteps());
    } else {
      ps.run(a.view(), b.view(), s.tsteps());
    }
    diff = max_abs_diff(a, *ws.a1);
  } else if (s.spec().dims == 2) {
    Grid2D a(static_cast<int>(s.ny()), static_cast<int>(s.nx()), h);
    Grid2D b(static_cast<int>(s.ny()), static_cast<int>(s.nx()), h);
    fill_random(a, kSeed);
    copy(a, b);
    ps.run(a.view(), b.view(), s.tsteps());
    diff = max_abs_diff(a, *ws.a2);
  } else {
    Grid3D a(static_cast<int>(s.nz()), static_cast<int>(s.ny()),
             static_cast<int>(s.nx()), h);
    Grid3D b(static_cast<int>(s.nz()), static_cast<int>(s.ny()),
             static_cast<int>(s.nx()), h);
    fill_random(a, kSeed);
    copy(a, b);
    ps.run(a.view(), b.view(), s.tsteps());
    diff = max_abs_diff(a, *ws.a3);
  }
  return diff;
}

// ---------------------------------------------------------------------------
// Prepare-once / run-many equivalence with the Solver, all nine presets,
// tiled and untiled. Bitwise identity: both paths negotiate the same plan
// and execute the same kernel code on identically-seeded buffers.
// ---------------------------------------------------------------------------

class EngineVsSolver : public ::testing::TestWithParam<Preset> {};

TEST_P(EngineVsSolver, BitwiseIdenticalUntiled) {
  EXPECT_EQ(prepared_vs_solver(Solver::make(GetParam()), Tiling::Off), 0.0);
}

TEST_P(EngineVsSolver, BitwiseIdenticalTiled) {
  EXPECT_EQ(prepared_vs_solver(Solver::make(GetParam()), Tiling::On), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, EngineVsSolver,
    ::testing::Values(Preset::Heat1D, Preset::P1D5, Preset::Apop,
                      Preset::Heat2D, Preset::Box2D9, Preset::Life,
                      Preset::GB, Preset::Heat3D, Preset::Box3D27));

// ---------------------------------------------------------------------------
// Run-many stability and zero-copy semantics.
// ---------------------------------------------------------------------------

TEST(Engine, RunManyIsStableAndZeroCopy) {
  PreparedStencil ps =
      Engine::instance().prepare(Preset::Heat2D, Extents{96, 80}, {});
  const int h = ps.halo();
  Grid2D a(80, 96, h), b(80, 96, h), first(80, 96, h);

  double* const caller_memory = a.data();
  for (int rep = 0; rep < 3; ++rep) {
    fill_random(a, 7);
    copy(a, b);
    ps.run(a.view(), b.view(), 8);
    // Results land in the caller's buffer, not a library-internal copy.
    EXPECT_EQ(a.data(), caller_memory);
    if (rep == 0)
      copy(a, first);
    else
      EXPECT_EQ(max_abs_diff(a, first), 0.0) << "rep " << rep;
  }
}

TEST(Engine, ScratchInteriorIsNeverRead) {
  // The zero-copy contract: run() syncs b's *halo* from a, and no kernel
  // reads a b-interior cell it has not itself written — so poisoning b's
  // interior must not change the result.
  PreparedStencil ps =
      Engine::instance().prepare(Preset::Heat2D, Extents{64, 64}, {});
  const int h = ps.halo();
  Grid2D a(64, 64, h), b(64, 64, h), ra(64, 64, h), rb(64, 64, h);
  fill_random(a, 3);
  copy(a, ra);
  copy(a, rb);
  copy(a, b);
  for (int y = 0; y < b.ny(); ++y)
    for (int x = 0; x < b.nx(); ++x)
      b.at(y, x) = std::numeric_limits<double>::quiet_NaN();
  ps.run(a.view(), b.view(), 6);
  run_reference(preset(Preset::Heat2D).p2, ra, rb, 6);
  EXPECT_LE(max_abs_diff(a, ra), 1e-12 * std::max(1.0, max_abs(ra)));
}

TEST(Engine, AdvanceStreamsStepwise) {
  // advance(1) x T must equal one run(T) for a fold-free method (folded
  // kernels legitimately take a different remainder path per call).
  ExecOptions opts;
  opts.method = Method::Naive;
  opts.tiling = Tiling::Off;
  PreparedStencil ps =
      Engine::instance().prepare(Preset::Heat1D, Extents{200}, opts);
  const int h = ps.halo();
  Grid1D a(200, h), b(200, h), ra(200, h), rb(200, h);
  fill_random(a, 5);
  copy(a, b);
  copy(a, ra);
  copy(a, rb);
  for (int t = 0; t < 7; ++t) ps.advance(a.view(), b.view(), 1);
  ps.run(ra.view(), rb.view(), 7);
  EXPECT_EQ(max_abs_diff(a, ra), 0.0);
}

// ---------------------------------------------------------------------------
// Concurrency: one immutable handle, several threads, separate field sets.
// ---------------------------------------------------------------------------

TEST(Engine, ConcurrentRunsOnSeparateFieldSets) {
  for (Tiling tiling : {Tiling::Off, Tiling::On}) {
    ExecOptions opts;
    opts.tiling = tiling;
    opts.tsteps = 8;
    PreparedStencil ps =
        Engine::instance().prepare(Preset::Heat2D, Extents{72, 64}, opts);
    const int h = ps.halo();

    // Serial baseline.
    Grid2D sa(64, 72, h), sb(64, 72, h);
    fill_random(sa, 11);
    copy(sa, sb);
    ps.run(sa.view(), sb.view(), 8);

    constexpr int kThreads = 3;
    std::vector<Grid2D> as, bs;
    for (int i = 0; i < kThreads; ++i) {
      as.emplace_back(64, 72, h);
      bs.emplace_back(64, 72, h);
      fill_random(as.back(), 11);
      copy(as.back(), bs.back());
    }
    std::vector<std::thread> workers;
    for (int i = 0; i < kThreads; ++i)
      workers.emplace_back([&, i] {
        for (int rep = 0; rep < 2; ++rep) {
          fill_random(as[i], 11);
          copy(as[i], bs[i]);
          ps.run(as[i].view(), bs[i].view(), 8);
        }
      });
    for (auto& w : workers) w.join();
    for (int i = 0; i < kThreads; ++i)
      EXPECT_EQ(max_abs_diff(as[i], sa), 0.0)
          << "thread " << i << " tiling=" << static_cast<int>(tiling);
  }
}

// ---------------------------------------------------------------------------
// FieldView validation.
// ---------------------------------------------------------------------------

TEST(Engine, RejectsBadViews) {
  PreparedStencil ps =
      Engine::instance().prepare(Preset::Heat2D, Extents{64, 48}, {});
  const int h = ps.halo();
  Grid2D a(48, 64, h), b(48, 64, h);

  // Empty handle.
  EXPECT_THROW(PreparedStencil{}.run(a.view(), b.view(), 1),
               std::invalid_argument);
  // Halo below the negotiated minimum.
  Grid2D thin(48, 64, h > 0 ? h - 1 : 0);
  EXPECT_THROW(ps.run(thin.view(), b.view(), 1), std::invalid_argument);
  // Extent mismatch.
  Grid2D wrong(48, 72, h);
  EXPECT_THROW(ps.run(wrong.view(), b.view(), 1), std::invalid_argument);
  // Non-natural layout tag.
  EXPECT_THROW(ps.run(a.view().with_layout(Layout::Transposed), b.view(), 1),
               std::invalid_argument);
  EXPECT_THROW(ps.run(a.view(), b.view().with_layout(Layout::DLT), 1),
               std::invalid_argument);
  // Aliased ping-pong buffers.
  EXPECT_THROW(ps.run(a.view(), a.view(), 1), std::invalid_argument);
  // Hand-built view with a stride that is not a multiple of 8 doubles.
  FieldView2D crooked(a.data(), 48, 64, a.stride() + 1, h);
  EXPECT_THROW(ps.run(crooked, b.view(), 1), std::invalid_argument);
  // Misaligned interior.
  FieldView2D shifted(a.data() + 1, 48, 64, a.stride(), h);
  EXPECT_THROW(ps.run(shifted, b.view(), 1), std::invalid_argument);
  // Stride large enough for the interior but too small for both halos:
  // consecutive rows would alias. (DataReorg's halo floor of 4 makes
  // nx + halo = 64 a multiple of 8 while nx + 2*halo = 68 is the true
  // minimum.)
  ExecOptions dr;
  dr.method = Method::DataReorg;
  dr.isa = Isa::Avx2;
  PreparedStencil pdr =
      Engine::instance().prepare(Preset::Heat2D, Extents{60, 48}, dr);
  ASSERT_EQ(pdr.halo(), 4);
  Grid2D da(48, 60, 4), db(48, 60, 4);
  FieldView2D tight(da.data(), 48, 60, /*stride=*/64, 4);
  EXPECT_THROW(pdr.run(tight, db.view(), 1), std::invalid_argument);
  // 3-D: plane stride too small for the haloed plane extent.
  PreparedStencil p3 =
      Engine::instance().prepare(Preset::Heat3D, Extents{32, 32, 32}, {});
  const int h3 = p3.halo();
  Grid3D a3(32, 32, 32, h3), b3(32, 32, 32, h3);
  FieldView3D squashed(a3.data(), 32, 32, 32, a3.stride(),
                       a3.plane_stride() - 8, h3);
  EXPECT_THROW(p3.run(squashed, b3.view(), 1), std::invalid_argument);
  // Dimensionality mismatch.
  Grid1D a1(64, h), b1(64, h);
  EXPECT_THROW(ps.run(a1.view(), b1.view(), 1), std::invalid_argument);
}

TEST(Engine, EnforcesSourceArity) {
  PreparedStencil apop = Engine::instance().prepare(Preset::Apop, {}, {});
  PreparedStencil heat = Engine::instance().prepare(Preset::Heat1D, {}, {});
  const int n1 = static_cast<int>(apop.nx());
  Grid1D a(n1, apop.halo()), b(n1, apop.halo()), k(n1, apop.halo());
  fill_random(a, 1);
  fill_random(k, 2);
  copy(a, b);
  // APOP needs its source view; Heat1D must reject one.
  EXPECT_THROW(apop.run(a.view(), b.view(), 2), std::invalid_argument);
  const int n2 = static_cast<int>(heat.nx());
  Grid1D ha(n2, heat.halo()), hb(n2, heat.halo()), hk(n2, heat.halo());
  fill_random(ha, 1);
  copy(ha, hb);
  EXPECT_THROW(heat.run(ha.view(), hb.view(), hk.view(), 2),
               std::invalid_argument);
  // The source array must not alias either ping-pong buffer.
  Grid1D k2(n1, apop.halo());
  fill_random(k2, 3);
  EXPECT_THROW(apop.run(a.view(), b.view(), b.view(), 2),
               std::invalid_argument);
  EXPECT_THROW(apop.run(a.view(), b.view(), a.view(), 2),
               std::invalid_argument);
}

TEST(Engine, RejectsPartiallyOverlappingViews) {
  PreparedStencil ps =
      Engine::instance().prepare(Preset::Heat2D, Extents{64, 48}, {});
  const int h = ps.halo();
  // One big allocation; b's view starts one row into a's span.
  Grid2D big(48 + 2, 64, h);
  FieldView2D a(big.data(), 48, 64, big.stride(), h);
  FieldView2D b(big.row(1), 48, 64, big.stride(), h);
  EXPECT_THROW(ps.run(a, b, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Plan cache: identical requests share one prepared state.
// ---------------------------------------------------------------------------

TEST(Engine, PlanCacheSharesPreparedState) {
  ExecOptions opts;
  opts.tsteps = 12;
  const long before = Engine::instance().plan_cache_hits();
  PreparedStencil p1 =
      Engine::instance().prepare(Preset::Box2D9, Extents{100, 90}, opts);
  PreparedStencil p2 =
      Engine::instance().prepare(Preset::Box2D9, Extents{100, 90}, opts);
  EXPECT_GE(Engine::instance().plan_cache_hits(), before + 1);
  // Same underlying immutable state, not merely equal values.
  EXPECT_EQ(&p1.plan(), &p2.plan());
  // A different request resolves to different prepared state.
  opts.tsteps = 14;
  PreparedStencil p3 =
      Engine::instance().prepare(Preset::Box2D9, Extents{100, 90}, opts);
  EXPECT_NE(&p1.plan(), &p3.plan());
}

TEST(Engine, PlanCacheEvictsStaleTunerGenerations) {
  // A TuneCache store bumps the generation, making older cached plans
  // permanently unmatchable; re-preparing must replace them, not leak.
  ExecOptions opts;
  opts.tsteps = 16;
  Engine::instance().prepare(Preset::Heat2D, Extents{112, 96}, opts);
  const std::size_t after_insert = Engine::instance().plan_cache_size();
  const KernelInfo& k = require_kernel(Method::Ours2, 2);
  TuneCache::instance().store(make_tune_key(k, 1, 8192, 8192, 1, 1000, 64),
                              TunedGeometry{512, 32});
  Engine::instance().prepare(Preset::Heat2D, Extents{112, 96}, opts);
  // Stale-generation entries were evicted on insert: no net growth.
  EXPECT_LE(Engine::instance().plan_cache_size(), after_insert);
}

// ---------------------------------------------------------------------------
// Tuner shape buckets: nearby shapes reuse measurements, exact entries win.
// ---------------------------------------------------------------------------

TEST(TuneBuckets, QuarterOctaveRounding) {
  EXPECT_EQ(tune_bucket(4096), 4096);
  EXPECT_EQ(tune_bucket(4000), tune_bucket(4050));   // a few % apart: share
  EXPECT_NE(tune_bucket(3000), tune_bucket(4000));   // ~25% apart: split
  EXPECT_NE(tune_bucket(2000), tune_bucket(4000));   // an octave apart
  EXPECT_LE(tune_bucket(12345), 12345);              // floor, not ceiling
}

TEST(TuneBuckets, NearbyShapesHitExactShapesWin) {
  TuneCache cache;
  const KernelInfo& k = require_kernel(Method::Ours2, 2);
  const TuneKey exact = make_tune_key(k, 1, 4000, 4000, 1, 500, 4);
  const TuneKey nearby = make_tune_key(k, 1, 4050, 3990, 1, 500, 4);
  const TuneKey far = make_tune_key(k, 1, 9000, 4000, 1, 500, 4);
  cache.store(exact, TunedGeometry{640, 64});
  ASSERT_TRUE(cache.lookup_rounded(nearby).has_value());
  EXPECT_EQ(cache.lookup_rounded(nearby)->tile, 640);
  EXPECT_FALSE(cache.lookup_rounded(far).has_value());
  // Different threads / radius / kernel never cross-match.
  EXPECT_FALSE(
      cache.lookup_rounded(make_tune_key(k, 1, 4050, 3990, 1, 500, 8))
          .has_value());
  EXPECT_FALSE(
      cache.lookup_rounded(make_tune_key(k, 2, 4050, 3990, 1, 500, 4))
          .has_value());
  // An exact-shape entry outranks a bucket neighbour.
  cache.store(nearby, TunedGeometry{512, 32});
  EXPECT_EQ(cache.lookup_rounded(nearby)->tile, 512);
  EXPECT_EQ(cache.lookup_rounded(exact)->tile, 640);
}

}  // namespace
}  // namespace sf
