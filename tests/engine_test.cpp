// Tests for the prepared-execution layer (core/engine.hpp): prepare-once /
// run-many result stability against the Solver facade, zero-copy execution
// on caller-owned buffers, concurrent runs, FieldView validation, the
// Engine's plan cache, and the tuner's shape-bucket widening.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/solver.hpp"
#include "core/tuner.hpp"
#include "grid/grid_utils.hpp"
#include "stencil/reference.hpp"

namespace sf {
namespace {

constexpr std::uint64_t kSeed = 42;  // the Solver's default seed

// Runs `s` (which resolves sizes/steps), then executes the equivalent
// PreparedStencil on caller-owned grids with identical initial conditions
// and returns the max |diff| against the Solver's result grid. Exercises
// every dimensionality through one code path.
double prepared_vs_solver(Solver s, Tiling tiling) {
  s.tiling(tiling);
  s.run();

  ExecOptions opts;
  opts.tiling = tiling;
  opts.tsteps = s.tsteps();
  PreparedStencil ps = Engine::instance().prepare(
      s.spec(), Extents{s.nx(), s.ny(), s.nz()}, opts);
  EXPECT_EQ(ps.halo(), s.halo());
  EXPECT_EQ(&ps.kernel(), &s.kernel());

  const Workspace& ws = s.workspace();
  const int h = ps.halo();
  double diff = 0;
  if (s.spec().dims == 1) {
    Grid1D a(static_cast<int>(s.nx()), h), b(static_cast<int>(s.nx()), h);
    fill_random(a, kSeed);
    copy(a, b);
    if (s.spec().has_source) {
      Grid1D k(static_cast<int>(s.nx()), h);
      fill_random(k, kSeed + 1);  // the Solver's source-array seed
      ps.run(a.view(), b.view(), k.view(), s.tsteps());
    } else {
      ps.run(a.view(), b.view(), s.tsteps());
    }
    diff = max_abs_diff(a, *ws.a1);
  } else if (s.spec().dims == 2) {
    Grid2D a(static_cast<int>(s.ny()), static_cast<int>(s.nx()), h);
    Grid2D b(static_cast<int>(s.ny()), static_cast<int>(s.nx()), h);
    fill_random(a, kSeed);
    copy(a, b);
    ps.run(a.view(), b.view(), s.tsteps());
    diff = max_abs_diff(a, *ws.a2);
  } else {
    Grid3D a(static_cast<int>(s.nz()), static_cast<int>(s.ny()),
             static_cast<int>(s.nx()), h);
    Grid3D b(static_cast<int>(s.nz()), static_cast<int>(s.ny()),
             static_cast<int>(s.nx()), h);
    fill_random(a, kSeed);
    copy(a, b);
    ps.run(a.view(), b.view(), s.tsteps());
    diff = max_abs_diff(a, *ws.a3);
  }
  return diff;
}

// ---------------------------------------------------------------------------
// Prepare-once / run-many equivalence with the Solver, all nine presets,
// tiled and untiled. Bitwise identity: both paths negotiate the same plan
// and execute the same kernel code on identically-seeded buffers.
// ---------------------------------------------------------------------------

class EngineVsSolver : public ::testing::TestWithParam<Preset> {};

TEST_P(EngineVsSolver, BitwiseIdenticalUntiled) {
  EXPECT_EQ(prepared_vs_solver(Solver::make(GetParam()), Tiling::Off), 0.0);
}

TEST_P(EngineVsSolver, BitwiseIdenticalTiled) {
  EXPECT_EQ(prepared_vs_solver(Solver::make(GetParam()), Tiling::On), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, EngineVsSolver,
    ::testing::Values(Preset::Heat1D, Preset::P1D5, Preset::Apop,
                      Preset::Heat2D, Preset::Box2D9, Preset::Life,
                      Preset::GB, Preset::Heat3D, Preset::Box3D27));

// ---------------------------------------------------------------------------
// Run-many stability and zero-copy semantics.
// ---------------------------------------------------------------------------

TEST(Engine, RunManyIsStableAndZeroCopy) {
  PreparedStencil ps =
      Engine::instance().prepare(Preset::Heat2D, Extents{96, 80}, {});
  const int h = ps.halo();
  Grid2D a(80, 96, h), b(80, 96, h), first(80, 96, h);

  double* const caller_memory = a.data();
  for (int rep = 0; rep < 3; ++rep) {
    fill_random(a, 7);
    copy(a, b);
    ps.run(a.view(), b.view(), 8);
    // Results land in the caller's buffer, not a library-internal copy.
    EXPECT_EQ(a.data(), caller_memory);
    if (rep == 0)
      copy(a, first);
    else
      EXPECT_EQ(max_abs_diff(a, first), 0.0) << "rep " << rep;
  }
}

TEST(Engine, ScratchInteriorIsNeverRead) {
  // The zero-copy contract: run() syncs b's *halo* from a, and no kernel
  // reads a b-interior cell it has not itself written — so poisoning b's
  // interior must not change the result.
  PreparedStencil ps =
      Engine::instance().prepare(Preset::Heat2D, Extents{64, 64}, {});
  const int h = ps.halo();
  Grid2D a(64, 64, h), b(64, 64, h), ra(64, 64, h), rb(64, 64, h);
  fill_random(a, 3);
  copy(a, ra);
  copy(a, rb);
  copy(a, b);
  for (int y = 0; y < b.ny(); ++y)
    for (int x = 0; x < b.nx(); ++x)
      b.at(y, x) = std::numeric_limits<double>::quiet_NaN();
  ps.run(a.view(), b.view(), 6);
  run_reference(preset(Preset::Heat2D).p2, ra, rb, 6);
  EXPECT_LE(max_abs_diff(a, ra), 1e-12 * std::max(1.0, max_abs(ra)));
}

TEST(Engine, AdvanceStreamsStepwise) {
  // advance(1) x T must equal one run(T) for a fold-free method (folded
  // kernels legitimately take a different remainder path per call).
  ExecOptions opts;
  opts.method = Method::Naive;
  opts.tiling = Tiling::Off;
  PreparedStencil ps =
      Engine::instance().prepare(Preset::Heat1D, Extents{200}, opts);
  const int h = ps.halo();
  Grid1D a(200, h), b(200, h), ra(200, h), rb(200, h);
  fill_random(a, 5);
  copy(a, b);
  copy(a, ra);
  copy(a, rb);
  for (int t = 0; t < 7; ++t) ps.advance(a.view(), b.view(), 1);
  ps.run(ra.view(), rb.view(), 7);
  EXPECT_EQ(max_abs_diff(a, ra), 0.0);
}

// ---------------------------------------------------------------------------
// Concurrency: one immutable handle, several threads, separate field sets.
// ---------------------------------------------------------------------------

TEST(Engine, ConcurrentRunsOnSeparateFieldSets) {
  for (Tiling tiling : {Tiling::Off, Tiling::On}) {
    ExecOptions opts;
    opts.tiling = tiling;
    opts.tsteps = 8;
    PreparedStencil ps =
        Engine::instance().prepare(Preset::Heat2D, Extents{72, 64}, opts);
    const int h = ps.halo();

    // Serial baseline.
    Grid2D sa(64, 72, h), sb(64, 72, h);
    fill_random(sa, 11);
    copy(sa, sb);
    ps.run(sa.view(), sb.view(), 8);

    constexpr int kThreads = 3;
    std::vector<Grid2D> as, bs;
    for (int i = 0; i < kThreads; ++i) {
      as.emplace_back(64, 72, h);
      bs.emplace_back(64, 72, h);
      fill_random(as.back(), 11);
      copy(as.back(), bs.back());
    }
    std::vector<std::thread> workers;
    for (int i = 0; i < kThreads; ++i)
      workers.emplace_back([&, i] {
        for (int rep = 0; rep < 2; ++rep) {
          fill_random(as[i], 11);
          copy(as[i], bs[i]);
          ps.run(as[i].view(), bs[i].view(), 8);
        }
      });
    for (auto& w : workers) w.join();
    for (int i = 0; i < kThreads; ++i)
      EXPECT_EQ(max_abs_diff(as[i], sa), 0.0)
          << "thread " << i << " tiling=" << static_cast<int>(tiling);
  }
}

// ---------------------------------------------------------------------------
// FieldView validation.
// ---------------------------------------------------------------------------

TEST(Engine, RejectsBadViews) {
  PreparedStencil ps =
      Engine::instance().prepare(Preset::Heat2D, Extents{64, 48}, {});
  const int h = ps.halo();
  Grid2D a(48, 64, h), b(48, 64, h);

  // Empty handle.
  EXPECT_THROW(PreparedStencil{}.run(a.view(), b.view(), 1),
               std::invalid_argument);
  // Halo below the negotiated minimum.
  Grid2D thin(48, 64, h > 0 ? h - 1 : 0);
  EXPECT_THROW(ps.run(thin.view(), b.view(), 1), std::invalid_argument);
  // Extent mismatch.
  Grid2D wrong(48, 72, h);
  EXPECT_THROW(ps.run(wrong.view(), b.view(), 1), std::invalid_argument);
  // Non-natural layout tag.
  EXPECT_THROW(ps.run(a.view().with_layout(Layout::Transposed), b.view(), 1),
               std::invalid_argument);
  EXPECT_THROW(ps.run(a.view(), b.view().with_layout(Layout::DLT), 1),
               std::invalid_argument);
  // Aliased ping-pong buffers.
  EXPECT_THROW(ps.run(a.view(), a.view(), 1), std::invalid_argument);
  // Hand-built view with a stride that is not a multiple of 8 doubles.
  FieldView2D crooked(a.data(), 48, 64, a.stride() + 1, h);
  EXPECT_THROW(ps.run(crooked, b.view(), 1), std::invalid_argument);
  // Misaligned interior.
  FieldView2D shifted(a.data() + 1, 48, 64, a.stride(), h);
  EXPECT_THROW(ps.run(shifted, b.view(), 1), std::invalid_argument);
  // Stride large enough for the interior but too small for both halos:
  // consecutive rows would alias. (DataReorg's halo floor of 4 makes
  // nx + halo = 64 a multiple of 8 while nx + 2*halo = 68 is the true
  // minimum.)
  ExecOptions dr;
  dr.method = Method::DataReorg;
  dr.isa = Isa::Avx2;
  PreparedStencil pdr =
      Engine::instance().prepare(Preset::Heat2D, Extents{60, 48}, dr);
  ASSERT_EQ(pdr.halo(), 4);
  Grid2D da(48, 60, 4), db(48, 60, 4);
  FieldView2D tight(da.data(), 48, 60, /*stride=*/64, 4);
  EXPECT_THROW(pdr.run(tight, db.view(), 1), std::invalid_argument);
  // 3-D: plane stride too small for the haloed plane extent.
  PreparedStencil p3 =
      Engine::instance().prepare(Preset::Heat3D, Extents{32, 32, 32}, {});
  const int h3 = p3.halo();
  Grid3D a3(32, 32, 32, h3), b3(32, 32, 32, h3);
  FieldView3D squashed(a3.data(), 32, 32, 32, a3.stride(),
                       a3.plane_stride() - 8, h3);
  EXPECT_THROW(p3.run(squashed, b3.view(), 1), std::invalid_argument);
  // Dimensionality mismatch.
  Grid1D a1(64, h), b1(64, h);
  EXPECT_THROW(ps.run(a1.view(), b1.view(), 1), std::invalid_argument);
}

TEST(Engine, EnforcesSourceArity) {
  PreparedStencil apop = Engine::instance().prepare(Preset::Apop, {}, {});
  PreparedStencil heat = Engine::instance().prepare(Preset::Heat1D, {}, {});
  const int n1 = static_cast<int>(apop.nx());
  Grid1D a(n1, apop.halo()), b(n1, apop.halo()), k(n1, apop.halo());
  fill_random(a, 1);
  fill_random(k, 2);
  copy(a, b);
  // APOP needs its source view; Heat1D must reject one.
  EXPECT_THROW(apop.run(a.view(), b.view(), 2), std::invalid_argument);
  const int n2 = static_cast<int>(heat.nx());
  Grid1D ha(n2, heat.halo()), hb(n2, heat.halo()), hk(n2, heat.halo());
  fill_random(ha, 1);
  copy(ha, hb);
  EXPECT_THROW(heat.run(ha.view(), hb.view(), hk.view(), 2),
               std::invalid_argument);
  // The source array must not alias either ping-pong buffer.
  Grid1D k2(n1, apop.halo());
  fill_random(k2, 3);
  EXPECT_THROW(apop.run(a.view(), b.view(), b.view(), 2),
               std::invalid_argument);
  EXPECT_THROW(apop.run(a.view(), b.view(), a.view(), 2),
               std::invalid_argument);
}

TEST(Engine, RejectsPartiallyOverlappingViews) {
  PreparedStencil ps =
      Engine::instance().prepare(Preset::Heat2D, Extents{64, 48}, {});
  const int h = ps.halo();
  // One big allocation; b's view starts one row into a's span.
  Grid2D big(48 + 2, 64, h);
  FieldView2D a(big.data(), 48, 64, big.stride(), h);
  FieldView2D b(big.row(1), 48, 64, big.stride(), h);
  EXPECT_THROW(ps.run(a, b, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Transposed-resident execution: validation, bitwise agreement with the
// per-call-transform path, and the layout conversion helpers.
// ---------------------------------------------------------------------------

// Max |diff| between the per-call-transform path and the transposed-
// resident path on identically-seeded caller-owned grids. Dimension-generic
// like the Solver comparison above.
double resident_vs_percall(const StencilSpec& spec, Method m, int tsteps) {
  ExecOptions opts;
  opts.method = m;
  opts.tiling = Tiling::Off;
  opts.tsteps = tsteps;
  PreparedStencil natural = Engine::instance().prepare(spec, {}, opts);
  opts.layout = Layout::Transposed;
  PreparedStencil res = Engine::instance().prepare(spec, {}, opts);
  EXPECT_EQ(res.resident_layout(), Layout::Transposed);
  const int h = natural.halo();

  if (spec.dims == 1) {
    const int n = static_cast<int>(natural.nx());
    Grid1D a(n, h), b(n, h), ra(n, h), rb(n, h);
    fill_random(a, 3);
    copy(a, b);
    copy(a, ra);
    copy(a, rb);
    if (spec.has_source) {
      Grid1D k(n, h), rk(n, h);
      fill_random(k, 4);
      copy(k, rk);
      natural.run(a.view(), b.view(), k.view(), tsteps);
      auto rav = to_resident_layout(res, ra.view());
      auto rbv = to_resident_layout(res, rb.view());
      auto rkv = to_resident_layout(res, rk.view());
      res.run(rav, rbv, rkv, tsteps);
      to_natural_layout(res, rav);
    } else {
      natural.run(a.view(), b.view(), tsteps);
      auto rav = to_resident_layout(res, ra.view());
      auto rbv = to_resident_layout(res, rb.view());
      res.run(rav, rbv, tsteps);
      to_natural_layout(res, rav);
    }
    return max_abs_diff(a, ra);
  }
  if (spec.dims == 2) {
    const int nx = static_cast<int>(natural.nx());
    const int ny = static_cast<int>(natural.ny());
    Grid2D a(ny, nx, h), b(ny, nx, h), ra(ny, nx, h), rb(ny, nx, h);
    fill_random(a, 3);
    copy(a, b);
    copy(a, ra);
    copy(a, rb);
    natural.run(a.view(), b.view(), tsteps);
    auto rav = to_resident_layout(res, ra.view());
    auto rbv = to_resident_layout(res, rb.view());
    res.run(rav, rbv, tsteps);
    to_natural_layout(res, rav);
    return max_abs_diff(a, ra);
  }
  const int nx = static_cast<int>(natural.nx());
  const int ny = static_cast<int>(natural.ny());
  const int nz = static_cast<int>(natural.nz());
  Grid3D a(nz, ny, nx, h), b(nz, ny, nx, h);
  Grid3D ra(nz, ny, nx, h), rb(nz, ny, nx, h);
  fill_random(a, 3);
  copy(a, b);
  copy(a, ra);
  copy(a, rb);
  natural.run(a.view(), b.view(), tsteps);
  auto rav = to_resident_layout(res, ra.view());
  auto rbv = to_resident_layout(res, rb.view());
  res.run(rav, rbv, tsteps);
  to_natural_layout(res, rav);
  return max_abs_diff(a, ra);
}

TEST(ResidentLayout, BitwiseMatchesPerCallTransform) {
  // Every transpose-capable preset x method: the resident path must agree
  // bitwise with the per-call-transform path (identical arithmetic, the
  // involution merely hoisted out of the calls). Odd horizon exercises the
  // folded kernels' remainder step too.
  int covered = 0;
  for (const StencilSpec& spec : all_presets()) {
    for (Method m : {Method::Ours, Method::Ours2}) {
      const KernelInfo* k = find_kernel(m, spec.dims, Isa::Auto);
      if (k == nullptr ||
          k->resident_layout(effective_radius(spec)) != Layout::Transposed)
        continue;
      EXPECT_EQ(resident_vs_percall(spec, m, 5), 0.0)
          << spec.name << " / " << method_name(m);
      ++covered;
    }
  }
  EXPECT_GE(covered, 9);  // ours in 1/2/3-D covers all nine presets
}

TEST(ResidentLayout, ResidentAdvanceStreamMatchesOneRun) {
  // The target scenario: a stream of short advances on resident buffers
  // equals one long natural-layout run.
  ExecOptions opts;
  opts.method = Method::Ours;
  opts.tiling = Tiling::Off;
  opts.tsteps = 1;
  PreparedStencil natural =
      Engine::instance().prepare(Preset::Heat2D, Extents{96, 80}, opts);
  opts.layout = Layout::Transposed;
  PreparedStencil res =
      Engine::instance().prepare(Preset::Heat2D, Extents{96, 80}, opts);
  const int h = res.halo();
  Grid2D a(80, 96, h), b(80, 96, h), ra(80, 96, h), rb(80, 96, h);
  fill_random(a, 9);
  copy(a, b);
  copy(a, ra);
  copy(a, rb);
  auto av = to_resident_layout(res, a.view());
  auto bv = to_resident_layout(res, b.view());
  for (int t = 0; t < 8; ++t) res.advance(av, bv, 1);
  to_natural_layout(res, av);
  for (int t = 0; t < 8; ++t) natural.run(ra.view(), rb.view(), 1);
  EXPECT_EQ(max_abs_diff(a, ra), 0.0);
}

TEST(ResidentLayout, ValidationTable) {
  ExecOptions opts;
  opts.method = Method::Ours;
  opts.tiling = Tiling::Off;
  PreparedStencil natural =
      Engine::instance().prepare(Preset::Heat2D, Extents{64, 48}, opts);
  EXPECT_EQ(natural.preferred_layout(), Layout::Transposed);
  EXPECT_EQ(natural.resident_layout(), Layout::Natural);
  opts.layout = Layout::Transposed;
  PreparedStencil res =
      Engine::instance().prepare(Preset::Heat2D, Extents{64, 48}, opts);
  EXPECT_EQ(res.preferred_layout(), Layout::Transposed);
  EXPECT_EQ(res.resident_layout(), Layout::Transposed);
  const int h = res.halo();
  Grid2D a(48, 64, h), b(48, 64, h);
  fill_random(a, 1);
  copy(a, b);

  // Natural-only handle still rejects resident tags (historical contract).
  EXPECT_THROW(
      natural.run(a.view().with_layout(Layout::Transposed),
                  b.view().with_layout(Layout::Transposed), 1),
      std::invalid_argument);
  // Resident handle accepts both natural and transposed pairs...
  res.run(a.view(), b.view(), 1);
  auto av = to_resident_layout(res, a.view());
  auto bv = to_resident_layout(res, b.view());
  res.run(av, bv, 1);
  // ...but never a mixed pair or a foreign layout tag.
  EXPECT_THROW(res.run(av, b.view().with_layout(Layout::Natural), 1),
               std::invalid_argument);
  EXPECT_THROW(res.run(av.with_layout(Layout::DLT), bv, 1),
               std::invalid_argument);
  // The transforms permute differently per SIMD width, so a resident tag
  // must carry the width it was built with: a hand-tag that dropped it
  // (width 0) or recorded another kernel's width is rejected, never
  // silently misread.
  EXPECT_THROW(res.run(av.with_layout(Layout::Transposed), bv, 1),
               std::invalid_argument);
  const int other_w = res.kernel().width == 8 ? 4 : 8;
  EXPECT_THROW(
      res.run(av.with_layout(Layout::Transposed, other_w), bv, 1),
      std::invalid_argument);
  to_natural_layout(res, av);
  to_natural_layout(res, bv);

  // Preparing a resident layout the kernel does not keep must throw.
  ExecOptions bad;
  bad.method = Method::MultipleLoads;
  bad.layout = Layout::Transposed;
  EXPECT_THROW(
      Engine::instance().prepare(Preset::Heat2D, Extents{64, 48}, bad),
      std::invalid_argument);
  bad.method = Method::Ours;
  bad.layout = Layout::DLT;
  EXPECT_THROW(
      Engine::instance().prepare(Preset::Heat2D, Extents{64, 48}, bad),
      std::invalid_argument);
}

TEST(ResidentLayout, ConversionHelpersAreIdempotentInvolutions) {
  ExecOptions opts;
  opts.method = Method::Ours;
  opts.layout = Layout::Transposed;
  PreparedStencil res =
      Engine::instance().prepare(Preset::Heat2D, Extents{72, 40}, opts);
  const int h = res.halo();
  Grid2D g(40, 72, h), ref(40, 72, h);
  fill_random(g, 21);
  copy(g, ref);
  auto v = to_resident_layout(res, g.view());
  EXPECT_EQ(v.layout(), Layout::Transposed);
  auto v2 = to_resident_layout(res, v);  // idempotent: no second transform
  EXPECT_EQ(v2.layout(), Layout::Transposed);
  auto back = to_natural_layout(res, v2);
  EXPECT_EQ(back.layout(), Layout::Natural);
  EXPECT_EQ(max_abs_diff(g, ref), 0.0);  // involution round-trip
  // A resident view transformed at another kernel's width must be refused
  // by both conversion directions — un-transposing W=4-permuted bytes with
  // a W=8 pattern would scramble them undetectably.
  const int other_w = res.kernel().width == 8 ? 4 : 8;
  auto foreign = g.view().with_layout(Layout::Transposed, other_w);
  EXPECT_THROW(to_natural_layout(res, foreign), std::invalid_argument);
  EXPECT_THROW(to_resident_layout(res, foreign), std::invalid_argument);
  EXPECT_EQ(max_abs_diff(g, ref), 0.0);  // untouched by the refusals
  // Natural-preferring kernels: conversion is the identity.
  ExecOptions ml;
  ml.method = Method::MultipleLoads;
  PreparedStencil pml =
      Engine::instance().prepare(Preset::Heat2D, Extents{72, 40}, ml);
  auto nv = to_resident_layout(pml, g.view());
  EXPECT_EQ(nv.layout(), Layout::Natural);
  EXPECT_EQ(max_abs_diff(g, ref), 0.0);
}

TEST(Solver, ResidentLayoutOptInIsBitwiseIdentical) {
  for (Preset p : {Preset::Heat1D, Preset::Heat2D, Preset::Heat3D}) {
    Solver def = Solver::make(p).method(Method::Ours).tiling(Tiling::Off);
    Solver res = Solver::make(p)
                     .method(Method::Ours)
                     .tiling(Tiling::Off)
                     .resident_layout(true);
    def.run();
    res.run();
    const Workspace& wd = def.workspace();
    const Workspace& wr = res.workspace();
    double diff = 0;
    if (def.spec().dims == 1)
      diff = max_abs_diff(*wd.a1, *wr.a1);
    else if (def.spec().dims == 2)
      diff = max_abs_diff(*wd.a2, *wr.a2);
    else
      diff = max_abs_diff(*wd.a3, *wr.a3);
    EXPECT_EQ(diff, 0.0) << def.spec().name;
  }
}

TEST(Solver, ResidentLayoutSurvivesTunePass) {
  // The tuning pass stores a geometry and re-prepares; the replacement
  // handle must keep accepting resident views (regression: the re-prepare
  // once used the bare options, silently dropping the resident opt-in and
  // putting the per-call transform back inside the timed region).
  Solver s = Solver::make(Preset::Heat2D)
                 .size(96, 80)
                 .steps(16)
                 .method(Method::Ours)
                 .tiling(Tiling::On)
                 .threads(2)
                 .tune(true)
                 .resident_layout(true);
  s.resolve();
  ASSERT_TRUE(s.plan().tiled && s.plan().blocked)
      << "geometry no longer blocks; pick a shape the tuner measures";
  ASSERT_EQ(s.prepared().resident_layout(), Layout::Transposed);
  s.run();
  EXPECT_EQ(s.plan().source, PlanSource::Tuned);  // the pass actually fired
  EXPECT_EQ(s.prepared().resident_layout(), Layout::Transposed);
}

// ---------------------------------------------------------------------------
// Halo policy: the Clean fast path matches the sync'd path when b's halo
// is in fact unchanged (always true between advances: kernels never write
// halos).
// ---------------------------------------------------------------------------

TEST(Engine, HaloCleanMatchesSyncedPath) {
  ExecOptions opts;
  opts.tsteps = 4;
  PreparedStencil synced =
      Engine::instance().prepare(Preset::Heat2D, Extents{80, 64}, opts);
  opts.halo_policy = HaloPolicy::Clean;
  PreparedStencil clean =
      Engine::instance().prepare(Preset::Heat2D, Extents{80, 64}, opts);
  EXPECT_EQ(synced.halo_policy(), HaloPolicy::Sync);
  EXPECT_EQ(clean.halo_policy(), HaloPolicy::Clean);
  const int h = synced.halo();

  Grid2D sa(64, 80, h), sb(64, 80, h), ca(64, 80, h), cb(64, 80, h);
  fill_random(sa, 13);
  copy(sa, sb);  // halos equal on both pairs: Clean's precondition holds
  copy(sa, ca);
  copy(sa, cb);
  for (int t = 0; t < 6; ++t) {
    synced.advance(sa.view(), sb.view(), 1);
    clean.advance(ca.view(), cb.view(), 1);
  }
  EXPECT_EQ(max_abs_diff(sa, ca), 0.0);
}

TEST(Engine, HaloCleanResidentStreamMatchesSyncedNatural) {
  // The bench's headline streaming mode — transposed-resident buffers plus
  // HaloPolicy::Clean — must agree bitwise with the safe configuration
  // (natural views, per-call halo sync): the halo stays a fixed point of
  // both the kernels and the transform's x-permutation across the stream.
  ExecOptions opts;
  opts.method = Method::Ours;
  opts.tiling = Tiling::Off;
  opts.tsteps = 1;
  PreparedStencil synced =
      Engine::instance().prepare(Preset::Box2D9, Extents{96, 64}, opts);
  opts.layout = Layout::Transposed;
  opts.halo_policy = HaloPolicy::Clean;
  PreparedStencil resclean =
      Engine::instance().prepare(Preset::Box2D9, Extents{96, 64}, opts);
  const int h = synced.halo();

  Grid2D sa(64, 96, h), sb(64, 96, h), ca(64, 96, h), cb(64, 96, h);
  fill_random(sa, 19);
  copy(sa, sb);
  copy(sa, ca);
  copy(sa, cb);
  auto cav = to_resident_layout(resclean, ca.view());
  auto cbv = to_resident_layout(resclean, cb.view());
  for (int t = 0; t < 7; ++t) {
    synced.advance(sa.view(), sb.view(), 1);
    resclean.advance(cav, cbv, 1);
  }
  to_natural_layout(resclean, cav);
  EXPECT_EQ(max_abs_diff(sa, ca), 0.0);
}

// ---------------------------------------------------------------------------
// Plan cache: identical requests share one prepared state.
// ---------------------------------------------------------------------------

TEST(Engine, PlanCacheSharesPreparedState) {
  ExecOptions opts;
  opts.tsteps = 12;
  const long before = Engine::instance().plan_cache_hits();
  PreparedStencil p1 =
      Engine::instance().prepare(Preset::Box2D9, Extents{100, 90}, opts);
  PreparedStencil p2 =
      Engine::instance().prepare(Preset::Box2D9, Extents{100, 90}, opts);
  EXPECT_GE(Engine::instance().plan_cache_hits(), before + 1);
  // Same underlying immutable state, not merely equal values.
  EXPECT_EQ(&p1.plan(), &p2.plan());
  // A different request resolves to different prepared state.
  opts.tsteps = 14;
  PreparedStencil p3 =
      Engine::instance().prepare(Preset::Box2D9, Extents{100, 90}, opts);
  EXPECT_NE(&p1.plan(), &p3.plan());
}

TEST(Engine, PlanCacheSurvivesUnrelatedTuneStore) {
  // Plan-cache invalidation is per-key: tuning one configuration must not
  // evict prepared handles whose own TuneCache lookup is unchanged. A
  // store for a far-away shape leaves this preparation's lookup result
  // identical, so re-preparing is a cache hit on the same state.
  ExecOptions opts;
  opts.tsteps = 16;
  PreparedStencil before =
      Engine::instance().prepare(Preset::Heat2D, Extents{112, 96}, opts);
  const std::size_t after_insert = Engine::instance().plan_cache_size();
  const KernelInfo& k = require_kernel(Method::Ours2, 2);
  TuneCache::instance().store(make_tune_key(k, 1, 8192, 8192, 1, 1000, 64),
                              TunedGeometry{512, 32});
  const long hits = Engine::instance().plan_cache_hits();
  PreparedStencil after =
      Engine::instance().prepare(Preset::Heat2D, Extents{112, 96}, opts);
  EXPECT_EQ(Engine::instance().plan_cache_hits(), hits + 1);
  EXPECT_EQ(&before.plan(), &after.plan());  // same shared prepared state
  EXPECT_LE(Engine::instance().plan_cache_size(), after_insert);  // no leak
}

TEST(Engine, PlanCacheInvalidatesOnlyTheTunedKey) {
  // Two tiled preparations with distinct tune keys; a store matching the
  // first one's configuration re-plans it (and recalls the tuned geometry)
  // while the second survives in cache untouched.
  ExecOptions opts;
  opts.tiling = Tiling::On;
  opts.tsteps = 16;
  PreparedStencil pa =
      Engine::instance().prepare(Preset::Heat2D, Extents{112, 96}, opts);
  PreparedStencil pb =
      Engine::instance().prepare(Preset::Box2D9, Extents{100, 90}, opts);
  ASSERT_TRUE(pa.plan().tiled);
  ASSERT_TRUE(pb.plan().tiled);

  // Tune exactly pa's configuration (its kernel/radius/shape/horizon at
  // the negotiated thread count).
  TuneCache::instance().store(
      make_tune_key(pa.kernel(), 1, 112, 96, 1, 16, pa.plan().tile.threads),
      TunedGeometry{32, 4});

  // pb's key (different shape bucket) was untouched: served from cache.
  const long hits = Engine::instance().plan_cache_hits();
  PreparedStencil pb2 =
      Engine::instance().prepare(Preset::Box2D9, Extents{100, 90}, opts);
  EXPECT_EQ(Engine::instance().plan_cache_hits(), hits + 1);
  EXPECT_EQ(&pb.plan(), &pb2.plan());

  // pa's key changed: its stale entry is dropped, the re-preparation plans
  // afresh and recalls the just-stored geometry.
  PreparedStencil pa2 =
      Engine::instance().prepare(Preset::Heat2D, Extents{112, 96}, opts);
  EXPECT_NE(&pa.plan(), &pa2.plan());
  EXPECT_EQ(pa2.plan().source, PlanSource::Cached);
  EXPECT_EQ(pa2.plan().tile.tile, 32);
}

// ---------------------------------------------------------------------------
// Tuner shape buckets: nearby shapes reuse measurements, exact entries win.
// ---------------------------------------------------------------------------

TEST(TuneBuckets, QuarterOctaveRounding) {
  EXPECT_EQ(tune_bucket(4096), 4096);
  EXPECT_EQ(tune_bucket(4000), tune_bucket(4050));   // a few % apart: share
  EXPECT_NE(tune_bucket(3000), tune_bucket(4000));   // ~25% apart: split
  EXPECT_NE(tune_bucket(2000), tune_bucket(4000));   // an octave apart
  EXPECT_LE(tune_bucket(12345), 12345);              // floor, not ceiling
}

TEST(TuneBuckets, NearbyShapesHitExactShapesWin) {
  TuneCache cache;
  const KernelInfo& k = require_kernel(Method::Ours2, 2);
  const TuneKey exact = make_tune_key(k, 1, 4000, 4000, 1, 500, 4);
  const TuneKey nearby = make_tune_key(k, 1, 4050, 3990, 1, 500, 4);
  const TuneKey far = make_tune_key(k, 1, 9000, 4000, 1, 500, 4);
  cache.store(exact, TunedGeometry{640, 64});
  ASSERT_TRUE(cache.lookup_rounded(nearby).has_value());
  EXPECT_EQ(cache.lookup_rounded(nearby)->tile, 640);
  EXPECT_FALSE(cache.lookup_rounded(far).has_value());
  // Different threads / radius / kernel never cross-match.
  EXPECT_FALSE(
      cache.lookup_rounded(make_tune_key(k, 1, 4050, 3990, 1, 500, 8))
          .has_value());
  EXPECT_FALSE(
      cache.lookup_rounded(make_tune_key(k, 2, 4050, 3990, 1, 500, 4))
          .has_value());
  // An exact-shape entry outranks a bucket neighbour.
  cache.store(nearby, TunedGeometry{512, 32});
  EXPECT_EQ(cache.lookup_rounded(nearby)->tile, 512);
  EXPECT_EQ(cache.lookup_rounded(exact)->tile, 640);
}

// ---------------------------------------------------------------------------
// Validation toggle: SF_VALIDATE=0 / ExecOptions::validate drops the
// per-call view checks (the HaloPolicy::Clean streaming fast path) —
// invalid views must still throw by default.
// ---------------------------------------------------------------------------

TEST(Engine, InvalidViewsThrowByDefault) {
  ExecOptions opts;
  opts.tsteps = 6;
  PreparedStencil ps =
      Engine::instance().prepare(Preset::Heat2D, Extents{64, 48}, opts);
  EXPECT_TRUE(ps.validates());
  const int h = ps.halo();
  Grid2D a(48, 64, h), b(48, 64, h), wrong(24, 24, h);
  EXPECT_THROW(ps.run(a.view(), wrong.view(), 1), std::invalid_argument);
  EXPECT_THROW(ps.run(a.view(), a.view(), 1), std::invalid_argument);
}

TEST(Engine, ValidationOffMatchesValidatedRunBitwise) {
  ExecOptions opts;
  opts.tsteps = 4;
  opts.halo_policy = HaloPolicy::Clean;
  PreparedStencil checked =
      Engine::instance().prepare(Preset::Heat2D, Extents{80, 64}, opts);
  opts.validate = false;
  PreparedStencil unchecked =
      Engine::instance().prepare(Preset::Heat2D, Extents{80, 64}, opts);
  EXPECT_TRUE(checked.validates());
  EXPECT_FALSE(unchecked.validates());
  // The flag is part of the effective request: distinct prepared states.
  EXPECT_NE(&checked.plan(), &unchecked.plan());

  const int h = checked.halo();
  Grid2D va(64, 80, h), vb(64, 80, h), ua(64, 80, h), ub(64, 80, h);
  fill_random(va, 23);
  copy(va, vb);
  copy(va, ua);
  copy(va, ub);
  for (int t = 0; t < 5; ++t) {
    checked.advance(va.view(), vb.view(), 1);
    unchecked.advance(ua.view(), ub.view(), 1);
  }
  EXPECT_EQ(max_abs_diff(va, ua), 0.0);
}

TEST(Engine, EnvValidateZeroDisablesChecks) {
  ASSERT_EQ(setenv("SF_VALIDATE", "0", 1), 0);
  ExecOptions opts;
  opts.tsteps = 6;
  PreparedStencil ps =
      Engine::instance().prepare(Preset::Heat2D, Extents{64, 48}, opts);
  EXPECT_FALSE(ps.validates());
  unsetenv("SF_VALIDATE");
  // Cleared env: a fresh prepare validates again (and is not the cached
  // unvalidated preparation).
  PreparedStencil again =
      Engine::instance().prepare(Preset::Heat2D, Extents{64, 48}, opts);
  EXPECT_TRUE(again.validates());
  // SF_VALIDATE=1 (or anything but "0") keeps validation on.
  ASSERT_EQ(setenv("SF_VALIDATE", "1", 1), 0);
  PreparedStencil on =
      Engine::instance().prepare(Preset::Heat2D, Extents{64, 48}, opts);
  EXPECT_TRUE(on.validates());
  unsetenv("SF_VALIDATE");
}

TEST(TuneBuckets, BucketedLookupsNeverCrossKernelOrRadiusKeys) {
  // Shape/horizon round into buckets; kernel identity (name + ISA + dims)
  // and radius must stay exact — a bucketed hit for another kernel's (or
  // another radius's) geometry would deploy a wedge slope negotiated for
  // different reads.
  TuneCache cache;
  const KernelInfo& ours2 = require_kernel(Method::Ours2, 2);
  const KernelInfo& ours = require_kernel(Method::Ours, 2);
  cache.store(make_tune_key(ours2, 1, 4000, 4000, 1, 500, 4),
              TunedGeometry{640, 64});
  // Identical shape/threads, different kernel: no cross-match, either way.
  EXPECT_FALSE(
      cache.lookup_rounded(make_tune_key(ours, 1, 4000, 4000, 1, 500, 4))
          .has_value());
  cache.store(make_tune_key(ours, 1, 4000, 4000, 1, 500, 4),
              TunedGeometry{320, 16});
  EXPECT_EQ(
      cache.lookup_rounded(make_tune_key(ours2, 1, 4010, 3990, 1, 500, 4))
          ->tile,
      640);
  EXPECT_EQ(
      cache.lookup_rounded(make_tune_key(ours, 1, 4010, 3990, 1, 500, 4))
          ->tile,
      320);
  // Same kernel, different radius: bucketed shapes never bridge it.
  EXPECT_FALSE(
      cache.lookup_rounded(make_tune_key(ours2, 2, 4010, 3990, 1, 500, 4))
          .has_value());
  // Same kernel at another ISA level is a different kernel identity too.
  const KernelInfo* ours2_scalar = find_kernel(Method::Ours2, 2, Isa::Scalar);
  ASSERT_NE(ours2_scalar, nullptr);
  EXPECT_FALSE(cache
                   .lookup_rounded(make_tune_key(*ours2_scalar, 1, 4010,
                                                 3990, 1, 500, 4))
                   .has_value());
}

}  // namespace
}  // namespace sf
