// Pattern algebra: composition, powers (folding matrices), symmetry queries,
// and the property power(p,m) applied once == p applied m times.
#include <gtest/gtest.h>

#include "grid/grid_utils.hpp"
#include "stencil/pattern.hpp"
#include "stencil/presets.hpp"
#include "stencil/reference.hpp"

namespace sf {
namespace {

TEST(Pattern, IdentityComposes) {
  auto p = preset(Preset::Heat1D).p1;
  auto q = compose(Pattern1D::identity(), p);
  EXPECT_EQ(q.taps.size(), p.taps.size());
  for (std::size_t i = 0; i < p.taps.size(); ++i) {
    EXPECT_EQ(q.taps[i].off, p.taps[i].off);
    EXPECT_DOUBLE_EQ(q.taps[i].w, p.taps[i].w);
  }
}

TEST(Pattern, FromTapsMergesAndDropsZeros) {
  auto p = Pattern1D::from_taps({{{0}, 1.0}, {{0}, 2.0}, {{1}, 0.0}});
  ASSERT_EQ(p.taps.size(), 1u);
  EXPECT_DOUBLE_EQ(p.taps[0].w, 3.0);
}

TEST(Pattern, PowerRadiusGrows) {
  auto p = preset(Preset::Box2D9).p2;
  EXPECT_EQ(p.radius(), 1);
  EXPECT_EQ(power(p, 2).radius(), 2);
  EXPECT_EQ(power(p, 3).radius(), 3);
}

TEST(Pattern, PowerSizeBox) {
  // (3x3 box)^2 has full 5x5 support.
  auto p = preset(Preset::Box2D9).p2;
  EXPECT_EQ(power(p, 2).size(), 25u);
}

TEST(Pattern, EqualWeightBoxFoldIsSeparable) {
  // Paper Fig. 5: (1,2,3,2,1) outer product, scaled by w^2.
  auto lam = power(preset(Preset::Box2D9).p2, 2);
  const double w2 = (1.0 / 9) * (1.0 / 9);
  const int expect[5] = {1, 2, 3, 2, 1};
  for (int dy = -2; dy <= 2; ++dy)
    for (int dx = -2; dx <= 2; ++dx)
      EXPECT_NEAR(lam.weight_at({dy, dx}), expect[dy + 2] * expect[dx + 2] * w2,
                  1e-15);
}

TEST(Pattern, StarAndSymmetryQueries) {
  EXPECT_TRUE(preset(Preset::Heat2D).p2.is_star());
  EXPECT_FALSE(preset(Preset::Box2D9).p2.is_star());
  EXPECT_TRUE(preset(Preset::Box2D9).p2.is_symmetric());
  EXPECT_FALSE(preset(Preset::GB).p2.is_symmetric());
  EXPECT_TRUE(preset(Preset::Heat3D).p3.is_star());
}

TEST(Pattern, PowerSumGeometric) {
  // power_sum(p, 2) = I + p.
  auto p = preset(Preset::Heat1D).p1;
  auto s = power_sum(p, 2);
  EXPECT_DOUBLE_EQ(s.weight_at({0}), 1.0 + 0.5);
  EXPECT_DOUBLE_EQ(s.weight_at({-1}), 0.25);
}

TEST(Pattern, FlopsPerPoint) {
  EXPECT_EQ(preset(Preset::Heat1D).p1.flops_per_point(), 5);
  EXPECT_EQ(preset(Preset::Box2D9).p2.flops_per_point(), 17);
  EXPECT_EQ(preset(Preset::Box3D27).p3.flops_per_point(), 53);
}

// Property: applying power(p,m) once equals m reference steps, for every 1-D
// and 2-D preset and m in 1..3 (deep interior only; the halo-adjacent ring
// legitimately differs, which is exactly why the folded executors correct it).
class PowerProperty1D : public ::testing::TestWithParam<std::tuple<Preset, int>> {};

TEST_P(PowerProperty1D, MatchesRepeatedApplication) {
  const auto [id, m] = GetParam();
  const auto& spec = preset(id);
  if (spec.dims != 1 || spec.has_source) GTEST_SKIP();
  const int n = 64;
  const int halo = 8;
  Grid1D a(n, halo), b(n, halo), fold(n, halo);
  fill_random(a, 42);
  copy(a, fold);
  copy(a, b);

  run_reference(spec.p1, a, b, m);
  Grid1D out(n, halo);
  copy(fold, out);
  apply_pattern(power(spec.p1, m), fold, out, 0, n);

  const int rho = (m - 1) * spec.p1.radius();
  for (int i = rho; i < n - rho; ++i)
    EXPECT_NEAR(a.at(i), out.at(i), 1e-12) << "i=" << i << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PowerProperty1D,
    ::testing::Combine(::testing::Values(Preset::Heat1D, Preset::P1D5),
                       ::testing::Values(1, 2, 3)));

class PowerProperty2D : public ::testing::TestWithParam<std::tuple<Preset, int>> {};

TEST_P(PowerProperty2D, MatchesRepeatedApplication) {
  const auto [id, m] = GetParam();
  const auto& spec = preset(id);
  const int ny = 20, nx = 24, halo = 8;
  Grid2D a(ny, nx, halo), b(ny, nx, halo), fold(ny, nx, halo);
  fill_random(a, 7);
  copy(a, fold);
  copy(a, b);

  run_reference(spec.p2, a, b, m);
  Grid2D out(ny, nx, halo);
  copy(fold, out);
  apply_pattern(power(spec.p2, m), fold, out, 0, ny, 0, nx);

  const int rho = (m - 1) * spec.p2.radius();
  for (int y = rho; y < ny - rho; ++y)
    for (int x = rho; x < nx - rho; ++x)
      EXPECT_NEAR(a.at(y, x), out.at(y, x), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PowerProperty2D,
    ::testing::Combine(::testing::Values(Preset::Heat2D, Preset::Box2D9,
                                         Preset::Life, Preset::GB),
                       ::testing::Values(1, 2, 3)));

TEST(Presets, TableOneInventory) {
  EXPECT_EQ(all_presets().size(), 9u);
  EXPECT_EQ(preset(Preset::Heat1D).points(), 3);
  EXPECT_EQ(preset(Preset::P1D5).points(), 5);
  EXPECT_EQ(preset(Preset::Heat2D).points(), 5);
  EXPECT_EQ(preset(Preset::Box2D9).points(), 9);
  EXPECT_EQ(preset(Preset::Life).points(), 8);  // no self-term
  EXPECT_EQ(preset(Preset::GB).points(), 9);
  EXPECT_EQ(preset(Preset::Heat3D).points(), 7);
  EXPECT_EQ(preset(Preset::Box3D27).points(), 27);
  EXPECT_TRUE(preset(Preset::Apop).has_source);
}

}  // namespace
}  // namespace sf
