// Temporal folding: the cost model's paper numbers, the regression planner,
// and the boundary-corrected folded executors.
#include <gtest/gtest.h>

#include "fold/cost_model.hpp"
#include "fold/folded_ref.hpp"
#include "fold/folding_plan.hpp"
#include "fold/region.hpp"
#include "grid/grid_utils.hpp"
#include "stencil/presets.hpp"
#include "stencil/reference.hpp"

namespace sf {
namespace {

// ---------------------------------------------------------------------------
// Paper §3.2-§3.3 exact numbers for the 2D9P box with m = 2.
// ---------------------------------------------------------------------------
TEST(CostModel, PaperCollects2D9P) {
  const auto& p = preset(Preset::Box2D9).p2;
  Profitability pr = profitability(p, 2);
  EXPECT_EQ(pr.naive, 90);          // |C(E)|   = 10 x 9
  EXPECT_EQ(pr.folded_scalar, 25);  // |C(E_Λ)| = 5x5 folding matrix
  EXPECT_EQ(pr.folded_vec, 9);      // counterpart reuse
  EXPECT_DOUBLE_EQ(pr.index_scalar(), 3.6);
  EXPECT_DOUBLE_EQ(pr.index_vec(), 10.0);
}

TEST(CostModel, ShiftsReusePaperNumbers) {
  // Fig. 6: |C(E_F)| = 9, |C(E_G)| = 4, reuse profitability 2.25.
  const auto& p = preset(Preset::Box2D9).p2;
  ShiftsReuseCost c = shifts_reuse_cost(p);
  EXPECT_EQ(c.full, 9);
  EXPECT_EQ(c.reused, 4);
  EXPECT_DOUBLE_EQ(c.index(), 2.25);
}

TEST(CostModel, NaiveCollectGrowsWithM) {
  const auto& p = preset(Preset::Box2D9).p2;
  // m=3: applications at levels with supports 1 + 9 + 25 = 35 -> 315 pairs.
  EXPECT_EQ(naive_collect(p, 3), 315);
  EXPECT_EQ(folded_collect(p, 3), 49);  // 7x7
}

// ---------------------------------------------------------------------------
// Folding plans
// ---------------------------------------------------------------------------
TEST(FoldingPlan, EqualWeightBoxSingleCounterpart) {
  // Paper §3.5: omega2 = (2), omega3 = (0,3) — i.e. one basis column and
  // horizontal multipliers (1,2,3,2,1).
  auto plan = plan_folding(preset(Preset::Box2D9).p2, 2);
  ASSERT_EQ(plan.basis.size(), 1u);
  EXPECT_FALSE(plan.uses_impulse);
  ASSERT_EQ(plan.terms.size(), 5u);
  double coef[5] = {0, 0, 0, 0, 0};
  for (const auto& t : plan.terms) {
    ASSERT_EQ(t.basis_id, 0);
    coef[t.dx + 2] = t.coeff;
  }
  EXPECT_DOUBLE_EQ(coef[0], 1.0);
  EXPECT_DOUBLE_EQ(coef[1], 2.0);
  EXPECT_DOUBLE_EQ(coef[2], 3.0);
  EXPECT_DOUBLE_EQ(coef[3], 2.0);
  EXPECT_DOUBLE_EQ(coef[4], 1.0);
  // Basis column is (1,2,3,2,1) * w^2.
  const double w2 = (1.0 / 9) * (1.0 / 9);
  const double expect[5] = {1, 2, 3, 2, 1};
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(plan.basis[0][i], expect[i] * w2, 1e-15);
  EXPECT_EQ(plan.vec_collect(), 9);
}

TEST(FoldingPlan, LifeUsesImpulseBias) {
  // The 8-point (no self term) box: centre column = c1 + c2 + bias*impulse.
  auto plan = plan_folding(preset(Preset::Life).p2, 2);
  EXPECT_EQ(plan.basis.size(), 2u);
  EXPECT_TRUE(plan.uses_impulse);
}

TEST(FoldingPlan, GBNeedsMoreCounterparts) {
  // Asymmetric weights: less reuse, exactly the paper's observation that GB
  // profits least.
  auto gb = plan_folding(preset(Preset::GB).p2, 2);
  auto box = plan_folding(preset(Preset::Box2D9).p2, 2);
  EXPECT_GT(gb.basis.size(), box.basis.size());
  EXPECT_GT(gb.vec_collect(), box.vec_collect());
  // Still profitable versus naive.
  EXPECT_GT(naive_collect(preset(Preset::GB).p2, 2), gb.vec_collect());
}

TEST(FoldingPlan, PlanReconstructsFoldingMatrix) {
  // Property: sum of terms' coeff * basis column (or impulse) must equal
  // every column of Λ exactly, for all 2-D presets and m in 1..3.
  for (Preset id : {Preset::Heat2D, Preset::Box2D9, Preset::Life, Preset::GB}) {
    for (int m = 1; m <= 3; ++m) {
      const auto& p = preset(id).p2;
      auto plan = plan_folding(p, m);
      const auto lam = power(p, m);
      const int R = plan.radius;
      const int h = 2 * R + 1;
      std::vector<std::vector<double>> rebuilt(
          static_cast<std::size_t>(h), std::vector<double>(h, 0.0));
      for (const auto& t : plan.terms) {
        for (int dy = 0; dy < h; ++dy) {
          const double base = t.basis_id >= 0
                                  ? plan.basis[static_cast<std::size_t>(t.basis_id)][dy]
                                  : (dy == R ? 1.0 : 0.0);
          rebuilt[dy][t.dx + R] += t.coeff * base;
        }
      }
      for (int dy = -R; dy <= R; ++dy)
        for (int dx = -R; dx <= R; ++dx)
          EXPECT_NEAR(rebuilt[dy + R][dx + R], lam.weight_at({dy, dx}), 1e-12)
              << preset(id).name << " m=" << m;
    }
  }
}

TEST(FoldingPlan, ThreeDSharedBasis) {
  auto plan = plan_folding(preset(Preset::Heat3D).p3, 2);
  EXPECT_EQ(plan.radius, 2);
  // Slices share the basis: far fewer basis vectors than (dz,dx) pairs.
  EXPECT_LT(plan.basis.size(), 10u);
  // Terms rebuild Λ3 column-exactly.
  const auto lam = power(preset(Preset::Heat3D).p3, 2);
  const int R = 2, h = 5;
  std::vector<double> rebuilt(h * h * h, 0.0);
  for (const auto& t : plan.terms)
    for (int dy = 0; dy < h; ++dy) {
      const double base = t.basis_id >= 0
                              ? plan.basis[static_cast<std::size_t>(t.basis_id)][dy]
                              : (dy == R ? 1.0 : 0.0);
      rebuilt[static_cast<std::size_t>(t.dz + R) * h * h + dy * h + (t.dx + R)] +=
          t.coeff * base;
    }
  for (int dz = -R; dz <= R; ++dz)
    for (int dy = -R; dy <= R; ++dy)
      for (int dx = -R; dx <= R; ++dx)
        EXPECT_NEAR(rebuilt[static_cast<std::size_t>(dz + R) * h * h +
                            (dy + R) * h + (dx + R)],
                    lam.weight_at({dz, dy, dx}), 1e-12);
}

// ---------------------------------------------------------------------------
// Region decomposition
// ---------------------------------------------------------------------------
TEST(Region, FrameSegsDisjointCover) {
  auto segs = frame_segs(100, 7);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].a, 0);
  EXPECT_EQ(segs[0].b, 7);
  EXPECT_EQ(segs[1].a, 93);
  EXPECT_EQ(segs[1].b, 100);
  auto merged = frame_segs(10, 6);  // 2w >= n: single segment
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].a, 0);
  EXPECT_EQ(merged[0].b, 10);
}

TEST(Region, FrameRectsCoverExactly) {
  const int ny = 30, nx = 20, w = 4;
  std::vector<int> cnt(static_cast<std::size_t>(ny) * nx, 0);
  for (const Rect& r : frame_rects(ny, nx, w))
    for (int y = r.y0; y < r.y1; ++y)
      for (int x = r.x0; x < r.x1; ++x) cnt[static_cast<std::size_t>(y) * nx + x]++;
  for (int y = 0; y < ny; ++y)
    for (int x = 0; x < nx; ++x) {
      const bool in_frame =
          y < w || y >= ny - w || x < w || x >= nx - w;
      EXPECT_EQ(cnt[static_cast<std::size_t>(y) * nx + x], in_frame ? 1 : 0)
          << y << "," << x;
    }
}

TEST(Region, FrameBoxesCoverExactly) {
  const int nz = 12, ny = 10, nx = 14, w = 3;
  std::vector<int> cnt(static_cast<std::size_t>(nz) * ny * nx, 0);
  for (const Box& b : frame_boxes(nz, ny, nx, w))
    for (int z = b.z0; z < b.z1; ++z)
      for (int y = b.y0; y < b.y1; ++y)
        for (int x = b.x0; x < b.x1; ++x)
          cnt[(static_cast<std::size_t>(z) * ny + y) * nx + x]++;
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x) {
        const bool in_shell = z < w || z >= nz - w || y < w || y >= ny - w ||
                              x < w || x >= nx - w;
        EXPECT_EQ(cnt[(static_cast<std::size_t>(z) * ny + y) * nx + x],
                  in_shell ? 1 : 0);
      }
}

// ---------------------------------------------------------------------------
// Folded executors == stepwise reference (the central correctness property:
// boundary ring included).
// ---------------------------------------------------------------------------
class Folded1D : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Folded1D, MatchesReference) {
  const auto [n, m, tsteps] = GetParam();
  const auto& spec = preset(Preset::P1D5);
  const int halo = std::max(8, m * spec.p1.radius());
  Grid1D a(n, halo), b(n, halo), ra(n, halo), rb(n, halo);
  fill_random(a, 17);
  copy(a, b);
  copy(a, ra);
  copy(a, rb);

  run_reference(spec.p1, ra, rb, tsteps);
  FoldedRunner1D fold(spec.p1, m, n);
  fold.run(a, b, tsteps);

  EXPECT_LE(max_abs_diff(a, ra), 1e-12 * std::max(1.0, max_abs(ra)))
      << "n=" << n << " m=" << m << " T=" << tsteps;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Folded1D,
    ::testing::Combine(::testing::Values(16, 33, 100, 500),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(1, 2, 5, 8)));

TEST(Folded1D, WithSourceTerm) {
  const auto& spec = preset(Preset::Apop);
  const int n = 200, halo = 8, tsteps = 6;
  Grid1D a(n, halo), b(n, halo), ra(n, halo), rb(n, halo), k(n, halo);
  fill_random(a, 23);
  fill_random(k, 24);
  copy(a, b);
  copy(a, ra);
  copy(a, rb);

  const FieldView1D kv = k.view();
  run_reference(spec.p1, ra, rb, tsteps, &spec.src1, &kv);
  FoldedRunner1D fold(spec.p1, 2, n, &spec.src1);
  fold.run(a, b, tsteps, &k);

  EXPECT_LE(max_abs_diff(a, ra), 1e-12);
}

class Folded2D : public ::testing::TestWithParam<std::tuple<Preset, int, int>> {};

TEST_P(Folded2D, MatchesReference) {
  const auto [id, m, tsteps] = GetParam();
  const auto& spec = preset(id);
  const int ny = 37, nx = 41;
  const int halo = std::max(8, m * spec.p2.radius());
  Grid2D a(ny, nx, halo), b(ny, nx, halo), ra(ny, nx, halo), rb(ny, nx, halo);
  fill_random(a, 31);
  copy(a, b);
  copy(a, ra);
  copy(a, rb);

  run_reference(spec.p2, ra, rb, tsteps);
  FoldedRunner2D fold(spec.p2, m, ny, nx);
  fold.run(a, b, tsteps);

  EXPECT_LE(max_abs_diff(a, ra), 1e-12 * std::max(1.0, max_abs(ra)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Folded2D,
    ::testing::Combine(::testing::Values(Preset::Heat2D, Preset::Box2D9,
                                         Preset::Life, Preset::GB),
                       ::testing::Values(2, 3), ::testing::Values(2, 5)));

TEST(Folded2D, TinyGridAllRing) {
  // Domain smaller than the ring: everything goes through the stepwise path.
  const auto& spec = preset(Preset::Box2D9);
  const int ny = 3, nx = 3, m = 3, tsteps = 3;
  const int halo = std::max(8, m * spec.p2.radius());
  Grid2D a(ny, nx, halo), b(ny, nx, halo), ra(ny, nx, halo), rb(ny, nx, halo);
  fill_random(a, 37);
  copy(a, b);
  copy(a, ra);
  copy(a, rb);
  run_reference(spec.p2, ra, rb, tsteps);
  FoldedRunner2D fold(spec.p2, m, ny, nx);
  fold.run(a, b, tsteps);
  EXPECT_LE(max_abs_diff(a, ra), 1e-12);
}

class Folded3D : public ::testing::TestWithParam<std::tuple<Preset, int>> {};

TEST_P(Folded3D, MatchesReference) {
  const auto [id, tsteps] = GetParam();
  const auto& spec = preset(id);
  const int nz = 12, ny = 14, nx = 16, m = 2;
  const int halo = std::max(8, m * spec.p3.radius());
  Grid3D a(nz, ny, nx, halo), b(nz, ny, nx, halo);
  Grid3D ra(nz, ny, nx, halo), rb(nz, ny, nx, halo);
  fill_random(a, 41);
  copy(a, b);
  copy(a, ra);
  copy(a, rb);

  run_reference(spec.p3, ra, rb, tsteps);
  FoldedRunner3D fold(spec.p3, m, nz, ny, nx);
  fold.run(a, b, tsteps);

  EXPECT_LE(max_abs_diff(a, ra), 1e-12 * std::max(1.0, max_abs(ra)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Folded3D,
                         ::testing::Combine(::testing::Values(Preset::Heat3D,
                                                              Preset::Box3D27),
                                            ::testing::Values(2, 3, 4)));

}  // namespace
}  // namespace sf
