// Temporal split tiling: exact equivalence with the naive reference for
// every tiled method, dimension, and awkward geometry; plus the paper's
// Fig. 7 tessellation states.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/cpu.hpp"
#include "grid/grid_utils.hpp"
#include "kernels/registry.hpp"
#include "stencil/presets.hpp"
#include "stencil/reference.hpp"
#include "tiling/split_tiling.hpp"

namespace sf {
namespace {

TEST(Tessellation, PaperFigure7States) {
  // 3-point stencil (r = 1, slope 1), H = 4, tile 9: interior tiles read
  // (0,1,2,3,4,3,2,1,0) after the triangle stage; everything reads 4 after
  // the inverted-triangle stage.
  auto tr = trace_tessellation_1d(27, 9, 4, 1);
  const int expect[9] = {0, 1, 2, 3, 4, 3, 2, 1, 0};
  for (int i = 0; i < 9; ++i) EXPECT_EQ(tr.after_up[9 + i], expect[i]) << i;
  for (int x = 0; x < 27; ++x) EXPECT_EQ(tr.after_down[x], 4) << x;
}

TEST(Tessellation, FoldedSkipsOddLevels) {
  // With m = 2 the slope doubles: states go 0,2,4 across a tile (Fig. 7
  // "odd time steps are skipped").
  auto tr = trace_tessellation_1d(30, 10, 2, 2);
  for (int x = 0; x < 30; ++x) EXPECT_EQ(tr.after_down[x], 2);
  EXPECT_EQ(tr.after_up[10], 0);
  EXPECT_EQ(tr.after_up[12], 1);  // one folded super-step = 2 time steps
  EXPECT_EQ(tr.after_up[14], 2);
}

struct Case {
  int dims;
  Preset preset;
  Method method;
  int n0, n1, n2;  // extents (unused dims = 1)
  int tsteps;
  int tile;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto& c = info.param;
  std::string s = std::to_string(c.dims) + "d_" + preset(c.preset).name + "_" +
                  method_name(c.method) + "_n" + std::to_string(c.n0) + "_t" +
                  std::to_string(c.tsteps) + "_b" + std::to_string(c.tile);
  for (char& ch : s)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return s;
}

class Tiled : public ::testing::TestWithParam<Case> {};

TEST_P(Tiled, MatchesReference) {
  const Case c = GetParam();
  const auto& spec = preset(c.preset);
  TilePlan opt;
  opt.method = c.method;
  opt.isa = Isa::Auto;
  opt.tile = c.tile;
  opt.threads = 4;

  if (c.dims == 1) {
    const int radius =
        std::max(spec.p1.radius(), spec.has_source ? spec.src1.radius() : 0);
    const int halo = require_kernel(c.method, 1).required_halo(radius);
    Grid1D a(c.n0, halo), b(c.n0, halo), ra(c.n0, halo), rb(c.n0, halo);
    Grid1D k(c.n0, halo);
    fill_random(a, 99 + c.n0);
    fill_random(k, 7);
    copy(a, b);
    copy(a, ra);
    copy(a, rb);
    const Pattern1D* src = spec.has_source ? &spec.src1 : nullptr;
    const FieldView1D kv = k.view();
    const FieldView1D* kk = spec.has_source ? &kv : nullptr;
    run_reference(spec.p1, ra, rb, c.tsteps, src, kk);
    run_tile_plan(spec.p1, a, b, src, kk, c.tsteps, opt);
    EXPECT_LE(max_abs_diff(a, ra), 1e-11 * std::max(1.0, max_abs(ra)));
  } else if (c.dims == 2) {
    const int halo = require_kernel(c.method, 2).required_halo(spec.p2.radius());
    Grid2D a(c.n0, c.n1, halo), b(c.n0, c.n1, halo);
    Grid2D ra(c.n0, c.n1, halo), rb(c.n0, c.n1, halo);
    fill_random(a, 31 + c.n0);
    copy(a, b);
    copy(a, ra);
    copy(a, rb);
    run_reference(spec.p2, ra, rb, c.tsteps);
    run_tile_plan(spec.p2, a, b, c.tsteps, opt);
    EXPECT_LE(max_abs_diff(a, ra), 1e-11 * std::max(1.0, max_abs(ra)));
  } else {
    const int halo = require_kernel(c.method, 3).required_halo(spec.p3.radius());
    Grid3D a(c.n0, c.n1, c.n2, halo), b(c.n0, c.n1, c.n2, halo);
    Grid3D ra(c.n0, c.n1, c.n2, halo), rb(c.n0, c.n1, c.n2, halo);
    fill_random(a, 77 + c.n0);
    copy(a, b);
    copy(a, ra);
    copy(a, rb);
    run_reference(spec.p3, ra, rb, c.tsteps);
    run_tile_plan(spec.p3, a, b, c.tsteps, opt);
    EXPECT_LE(max_abs_diff(a, ra), 1e-11 * std::max(1.0, max_abs(ra)));
  }
}

std::vector<Case> make_cases() {
  std::vector<Case> v;
  const std::vector<Method> methods = {Method::Naive, Method::DLT, Method::Ours,
                                       Method::Ours2};
  // 1-D: tile sizes chosen to force several tiles and wedge interactions.
  for (Preset p : {Preset::Heat1D, Preset::P1D5, Preset::Apop})
    for (Method m : methods) {
      v.push_back({1, p, m, 512, 1, 1, 12, 64});
      v.push_back({1, p, m, 1000, 1, 1, 9, 128});
      v.push_back({1, p, m, 100, 1, 1, 8, 0});  // auto tile
    }
  // 2-D.
  for (Preset p : {Preset::Heat2D, Preset::Box2D9, Preset::Life, Preset::GB})
    for (Method m : methods) {
      v.push_back({2, p, m, 64, 48, 1, 10, 16});
      v.push_back({2, p, m, 45, 41, 1, 7, 12});
    }
  // 3-D.
  for (Preset p : {Preset::Heat3D, Preset::Box3D27})
    for (Method m : methods) {
      v.push_back({3, p, m, 32, 16, 24, 8, 8});
      v.push_back({3, p, m, 21, 13, 19, 5, 7});
    }
  // Untiled fallback methods run through the same entry point.
  v.push_back({2, Preset::Box2D9, Method::MultipleLoads, 40, 40, 1, 6, 16});
  v.push_back({1, Preset::Heat1D, Method::DataReorg, 300, 1, 1, 6, 50});
  return v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Tiled, ::testing::ValuesIn(make_cases()),
                         case_name);

TEST(Tiled, ThreadCountInvariance) {
  // Same bit-exact result for 1, 2 and 8 threads (stages are barriers; tiles
  // are disjoint).
  const auto& spec = preset(Preset::Box2D9);
  const int ny = 96, nx = 64, tsteps = 12;
  const int halo = require_kernel(Method::Ours2, 2).required_halo(spec.p2.radius());
  Grid2D ref(ny, nx, halo), refb(ny, nx, halo);
  fill_random(ref, 1);
  copy(ref, refb);
  TilePlan opt;
  opt.method = Method::Ours2;
  opt.tile = 24;
  opt.threads = 1;
  run_tile_plan(spec.p2, ref, refb, tsteps, opt);

  for (int threads : {2, 8}) {
    Grid2D a(ny, nx, halo), b(ny, nx, halo);
    fill_random(a, 1);
    copy(a, b);
    TilePlan o2 = opt;
    o2.threads = threads;
    run_tile_plan(spec.p2, a, b, tsteps, o2);
    EXPECT_EQ(max_abs_diff(a, ref), 0.0) << threads << " threads";
  }
}

TEST(Tiled, LongHorizon) {
  // Many time blocks back to back.
  const auto& spec = preset(Preset::Heat1D);
  const int n = 2048, tsteps = 64;
  const int halo = require_kernel(Method::Ours2, 1).required_halo(spec.p1.radius());
  Grid1D a(n, halo), b(n, halo), ra(n, halo), rb(n, halo);
  fill_random(a, 3);
  copy(a, b);
  copy(a, ra);
  copy(a, rb);
  run_reference(spec.p1, ra, rb, tsteps);
  TilePlan opt;
  opt.method = Method::Ours2;
  opt.tile = 256;
  opt.time_block = 16;
  opt.threads = 4;
  run_tile_plan(spec.p1, a, b, nullptr, nullptr, tsteps, opt);
  EXPECT_LE(max_abs_diff(a, ra), 1e-10);
}

TEST(Tiled, NegotiateWedgeRespectsOverridesAndBlocks) {
  // All-auto: one tile per thread, block height from the Fig. 7 triangle
  // geometry, wedges disjoint.
  TilePlan req;
  req.threads = 4;
  WedgeGeometry g = negotiate_wedge(1024, 2, 2, 64, req);
  EXPECT_EQ(g.threads, 4);
  EXPECT_EQ(g.tile, 256);
  EXPECT_TRUE(g.blocked);
  EXPECT_GT(g.time_block, 0);
  EXPECT_EQ(g.time_block % 2, 0);  // whole folded super-steps
  EXPECT_GE(g.tile, (2 * (g.time_block / 2) + 1) * 2);

  // Explicit geometry passes through (clamped only by the triangle
  // constraint).
  req.tile = 64;
  req.time_block = 8;
  g = negotiate_wedge(1024, 2, 2, 64, req);
  EXPECT_EQ(g.tile, 64);
  EXPECT_EQ(g.time_block, 8);

  // A domain that fits one per-thread tile cannot block.
  TilePlan one;
  one.threads = 1;
  g = negotiate_wedge(16, 2, 2, 64, one);
  EXPECT_FALSE(g.blocked);
}

// ---------------------------------------------------------------------------
// Pipelined wedge schedule: serial == barrier == pipelined, bitwise
// ---------------------------------------------------------------------------

// xorshift64: deterministic across platforms, no <random> seeding quirks.
std::uint64_t fz_next(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}
int fz_in(std::uint64_t& s, int lo, int hi) {  // uniform-ish in [lo, hi]
  return lo + static_cast<int>(fz_next(s) %
                               static_cast<std::uint64_t>(hi - lo + 1));
}

/// The three TilePlans of one equivalence check. `base` carries
/// method/tile/time_block: an *explicit* tile is required — auto geometry
/// negotiates per thread count and the runs would legitimately differ.
struct PlanTriple {
  TilePlan serial, barrier, piped;
};
PlanTriple plan_triple(const TilePlan& base, int threads, Affinity aff) {
  PlanTriple t;
  t.serial = base;
  t.serial.threads = 1;
  t.serial.affinity = Affinity::None;
  t.barrier = base;
  t.barrier.threads = threads;
  t.barrier.affinity = aff;
  t.barrier.pipeline = Pipeline::Off;
  t.piped = t.barrier;
  t.piped.pipeline = Pipeline::On;
  return t;
}

void check_equiv_1d(const StencilSpec& spec, Method m, int n, int tsteps,
                    const PlanTriple& t, int seed) {
  const int radius =
      std::max(spec.p1.radius(), spec.has_source ? spec.src1.radius() : 0);
  const int halo = require_kernel(m, 1).required_halo(radius);
  const Pattern1D* src = spec.has_source ? &spec.src1 : nullptr;
  Grid1D k(n, halo);
  fill_random(k, seed + 1);
  const FieldView1D kv = k.view();
  const FieldView1D* kk = spec.has_source ? &kv : nullptr;
  Grid1D sa(n, halo), sb(n, halo), ba(n, halo), bb(n, halo), pa(n, halo),
      pb(n, halo), ra(n, halo), rb(n, halo);
  for (Grid1D* g : {&sa, &ba, &pa, &ra}) fill_random(*g, seed);
  copy(sa, sb);
  copy(ba, bb);
  copy(pa, pb);
  copy(ra, rb);
  run_tile_plan(spec.p1, sa, sb, src, kk, tsteps, t.serial);
  run_tile_plan(spec.p1, ba, bb, src, kk, tsteps, t.barrier);
  run_tile_plan(spec.p1, pa, pb, src, kk, tsteps, t.piped);
  EXPECT_EQ(max_abs_diff(ba, sa), 0.0) << "barrier vs serial";
  EXPECT_EQ(max_abs_diff(pa, sa), 0.0) << "pipelined vs serial";
  run_reference(spec.p1, ra, rb, tsteps, src, kk);
  EXPECT_LE(max_abs_diff(pa, ra), 1e-11 * std::max(1.0, max_abs(ra)));
}

void check_equiv_2d(const StencilSpec& spec, Method m, int ny, int nx,
                    int tsteps, const PlanTriple& t, int seed) {
  const int halo = require_kernel(m, 2).required_halo(spec.p2.radius());
  Grid2D sa(ny, nx, halo), sb(ny, nx, halo), ba(ny, nx, halo),
      bb(ny, nx, halo), pa(ny, nx, halo), pb(ny, nx, halo), ra(ny, nx, halo),
      rb(ny, nx, halo);
  for (Grid2D* g : {&sa, &ba, &pa, &ra}) fill_random(*g, seed);
  copy(sa, sb);
  copy(ba, bb);
  copy(pa, pb);
  copy(ra, rb);
  run_tile_plan(spec.p2, sa, sb, tsteps, t.serial);
  run_tile_plan(spec.p2, ba, bb, tsteps, t.barrier);
  run_tile_plan(spec.p2, pa, pb, tsteps, t.piped);
  EXPECT_EQ(max_abs_diff(ba, sa), 0.0) << "barrier vs serial";
  EXPECT_EQ(max_abs_diff(pa, sa), 0.0) << "pipelined vs serial";
  run_reference(spec.p2, ra, rb, tsteps);
  EXPECT_LE(max_abs_diff(pa, ra), 1e-11 * std::max(1.0, max_abs(ra)));
}

void check_equiv_3d(const StencilSpec& spec, Method m, int nz, int ny, int nx,
                    int tsteps, const PlanTriple& t, int seed) {
  const int halo = require_kernel(m, 3).required_halo(spec.p3.radius());
  Grid3D sa(nz, ny, nx, halo), sb(nz, ny, nx, halo), ba(nz, ny, nx, halo),
      bb(nz, ny, nx, halo), pa(nz, ny, nx, halo), pb(nz, ny, nx, halo),
      ra(nz, ny, nx, halo), rb(nz, ny, nx, halo);
  for (Grid3D* g : {&sa, &ba, &pa, &ra}) fill_random(*g, seed);
  copy(sa, sb);
  copy(ba, bb);
  copy(pa, pb);
  copy(ra, rb);
  run_tile_plan(spec.p3, sa, sb, tsteps, t.serial);
  run_tile_plan(spec.p3, ba, bb, tsteps, t.barrier);
  run_tile_plan(spec.p3, pa, pb, tsteps, t.piped);
  EXPECT_EQ(max_abs_diff(ba, sa), 0.0) << "barrier vs serial";
  EXPECT_EQ(max_abs_diff(pa, sa), 0.0) << "pipelined vs serial";
  run_reference(spec.p3, ra, rb, tsteps);
  EXPECT_LE(max_abs_diff(pa, ra), 1e-11 * std::max(1.0, max_abs(ra)));
}

/// One seeded-random geometry draw + equivalence check: dims, preset,
/// method, extents, explicit tile (possibly degenerate: single tile,
/// ntiles < workers), time block (possibly H = 1), threads, affinity.
void fuzz_iteration(std::uint64_t& s, int iter) {
  const int dims = 1 + iter % 3;
  static const Method methods[] = {Method::Naive, Method::DLT, Method::Ours,
                                   Method::Ours2};
  const Method m = methods[fz_in(s, 0, 3)];
  const int tsteps = fz_in(s, 1, 18);
  const int time_block = fz_in(s, 0, 3) == 0 ? fz_in(s, 1, 10) : 0;
  const int threads = fz_in(s, 2, 8);
  // Tile-tree depth: >= 2 engages the fused up/down tree walk in every
  // schedule (serial, barrier, pipelined) — bitwise-invisible by design.
  const int levels = fz_in(s, 1, 3);
  static const Affinity affs[] = {Affinity::None, Affinity::None,
                                  Affinity::Compact, Affinity::Scatter};
  const Affinity aff = affs[fz_in(s, 0, 3)];
  const int seed = 1000 + iter;
  SCOPED_TRACE("iter=" + std::to_string(iter) + " dims=" +
               std::to_string(dims) + " method=" + method_name(m) +
               " tsteps=" + std::to_string(tsteps) + " tb=" +
               std::to_string(time_block) + " threads=" +
               std::to_string(threads) + " levels=" + std::to_string(levels));
  TilePlan base;
  base.method = m;
  base.time_block = time_block;
  base.levels = levels;
  if (dims == 1) {
    static const Preset presets[] = {Preset::Heat1D, Preset::P1D5,
                                     Preset::Apop};
    const auto& spec = preset(presets[fz_in(s, 0, 2)]);
    const int n = fz_in(s, 48, 1200);
    base.tile = fz_in(s, 8, n + 8);  // may exceed n: single-tile/unblocked
    SCOPED_TRACE(std::string(spec.name) + " n=" + std::to_string(n) +
                 " tile=" + std::to_string(base.tile));
    check_equiv_1d(spec, m, n, tsteps, plan_triple(base, threads, aff), seed);
  } else if (dims == 2) {
    static const Preset presets[] = {Preset::Heat2D, Preset::Box2D9,
                                     Preset::Life, Preset::GB};
    const auto& spec = preset(presets[fz_in(s, 0, 3)]);
    const int ny = fz_in(s, 24, 128), nx = fz_in(s, 16, 96);
    base.tile = fz_in(s, 6, ny + 6);
    SCOPED_TRACE(std::string(spec.name) + " ny=" + std::to_string(ny) +
                 " nx=" + std::to_string(nx) + " tile=" +
                 std::to_string(base.tile));
    check_equiv_2d(spec, m, ny, nx, tsteps, plan_triple(base, threads, aff),
                   seed);
  } else {
    static const Preset presets[] = {Preset::Heat3D, Preset::Box3D27};
    const auto& spec = preset(presets[fz_in(s, 0, 1)]);
    const int nz = fz_in(s, 10, 40), ny = fz_in(s, 8, 28),
              nx = fz_in(s, 8, 28);
    base.tile = fz_in(s, 4, nz + 4);
    SCOPED_TRACE(std::string(spec.name) + " nz=" + std::to_string(nz) +
                 " ny=" + std::to_string(ny) + " nx=" + std::to_string(nx) +
                 " tile=" + std::to_string(base.tile));
    check_equiv_3d(spec, m, nz, ny, nx, tsteps, plan_triple(base, threads, aff),
                   seed);
  }
}

TEST(TiledPipeline, FuzzQuick) {
  std::uint64_t s = 0x5f5f5f5f12345678ull;
  for (int iter = 0; iter < 36; ++iter) fuzz_iteration(s, iter);
}

// Tree depth must be execution-invisible: levels 2 and 3 walk the identical
// wedge set with the fused up/down traversal, so every (depth, schedule,
// thread-count) combination is bitwise equal to the flat serial run — for
// regular geometries, degenerate ones (tile > n: a single tile, i.e. a
// one-child level at every depth), and H = 1 time blocks.
TEST(TiledTree, DepthsBitwiseIdentical1D) {
  const auto& spec = preset(Preset::Heat1D);
  const int halo = require_kernel(Method::Ours2, 1).required_halo(1);
  struct Case {
    int n, tile, tsteps, threads;
  };
  for (const Case& c : {Case{700, 96, 12, 4}, Case{300, 400, 9, 3},
                        Case{420, 10, 7, 5}}) {
    SCOPED_TRACE("n=" + std::to_string(c.n) + " tile=" +
                 std::to_string(c.tile));
    TilePlan flat;
    flat.method = Method::Ours2;
    flat.tile = c.tile;
    flat.threads = 1;
    Grid1D ra(c.n, halo), rb(c.n, halo);
    fill_random(ra, 77);
    copy(ra, rb);
    run_tile_plan(spec.p1, ra, rb, nullptr, nullptr, c.tsteps, flat);
    for (int levels : {2, 3})
      for (Pipeline pipe : {Pipeline::Off, Pipeline::On})
        for (int threads : {1, c.threads}) {
          SCOPED_TRACE("levels=" + std::to_string(levels) + " piped=" +
                       std::to_string(pipe == Pipeline::On) + " threads=" +
                       std::to_string(threads));
          TilePlan tree = flat;
          tree.levels = levels;
          tree.threads = threads;
          tree.pipeline = pipe;
          Grid1D ta(c.n, halo), tb(c.n, halo);
          fill_random(ta, 77);
          copy(ta, tb);
          run_tile_plan(spec.p1, ta, tb, nullptr, nullptr, c.tsteps, tree);
          EXPECT_EQ(max_abs_diff(ta, ra), 0.0);
        }
  }
}

TEST(TiledTree, DepthsBitwiseIdentical3D) {
  const auto& spec = preset(Preset::Heat3D);
  const int halo = require_kernel(Method::Ours2, 3).required_halo(1);
  struct Case {
    int nz, tile, tsteps, threads;
  };
  for (const Case& c : {Case{40, 12, 10, 4}, Case{24, 64, 6, 3}}) {
    SCOPED_TRACE("nz=" + std::to_string(c.nz) + " tile=" +
                 std::to_string(c.tile));
    TilePlan flat;
    flat.method = Method::Ours2;
    flat.tile = c.tile;
    flat.threads = 1;
    Grid3D ra(c.nz, 20, 16, halo), rb(c.nz, 20, 16, halo);
    fill_random(ra, 99);
    copy(ra, rb);
    run_tile_plan(spec.p3, ra, rb, c.tsteps, flat);
    for (int levels : {2, 3})
      for (Pipeline pipe : {Pipeline::Off, Pipeline::On}) {
        SCOPED_TRACE("levels=" + std::to_string(levels) + " piped=" +
                     std::to_string(pipe == Pipeline::On));
        TilePlan tree = flat;
        tree.levels = levels;
        tree.threads = c.threads;
        tree.pipeline = pipe;
        Grid3D ta(c.nz, 20, 16, halo), tb(c.nz, 20, 16, halo);
        fill_random(ta, 99);
        copy(ta, tb);
        run_tile_plan(spec.p3, ta, tb, c.tsteps, tree);
        EXPECT_EQ(max_abs_diff(ta, ra), 0.0);
      }
  }
}

// Acceptance sweep: all nine presets at their native dimensionality,
// pinned (compact + scatter) and unpinned — pipelined bitwise equal to the
// barrier schedule and to the serial run.
TEST(TiledPipeline, AllPresetsPinnedAndUnpinned) {
  for (Affinity aff :
       {Affinity::None, Affinity::Compact, Affinity::Scatter}) {
    SCOPED_TRACE(affinity_name(aff));
    TilePlan base;
    base.method = Method::Ours2;
    for (Preset p : {Preset::Heat1D, Preset::P1D5, Preset::Apop}) {
      base.tile = 96;
      check_equiv_1d(preset(p), base.method, 700, 12,
                     plan_triple(base, 4, aff), 11);
    }
    for (Preset p :
         {Preset::Heat2D, Preset::Box2D9, Preset::Life, Preset::GB}) {
      base.tile = 20;
      check_equiv_2d(preset(p), base.method, 96, 64, 10,
                     plan_triple(base, 4, aff), 12);
    }
    for (Preset p : {Preset::Heat3D, Preset::Box3D27}) {
      base.tile = 10;
      check_equiv_3d(preset(p), base.method, 32, 20, 18, 8,
                     plan_triple(base, 4, aff), 13);
    }
  }
}

// Regression (empty-range workers): with fewer tiles than workers the tail
// workers execute zero wedges but must still publish their sequence
// counters every round — a worker waiting on an idle neighbor would
// otherwise deadlock. Pinned under both policies, where workers share CPUs
// and the skew is worst.
TEST(TiledPipeline, MoreWorkersThanTilesPublishesAndCompletes) {
  for (Affinity aff : {Affinity::Compact, Affinity::Scatter}) {
    SCOPED_TRACE(affinity_name(aff));
    TilePlan base;
    base.method = Method::Ours2;
    base.tile = 48;  // ny = 96 -> 2 tiles, 8 workers: 6 empty ranges
    check_equiv_2d(preset(Preset::Heat2D), base.method, 96, 64, 12,
                   plan_triple(base, 8, aff), 21);
  }
}

TEST(TiledPipeline, SingleTileFallsBackUnblocked) {
  TilePlan base;
  base.method = Method::Ours;
  base.tile = 512;  // tile >= n: cannot block, full sweeps on every path
  check_equiv_1d(preset(Preset::Heat1D), base.method, 400, 10,
                 plan_triple(base, 4, Affinity::None), 31);
}

TEST(TiledPipeline, MinimalTimeBlockHEqualsOne) {
  TilePlan base;
  base.method = Method::Ours2;
  base.time_block = 2;  // fold depth m = 2 -> H = 1: waits every super-step
  base.tile = 24;
  check_equiv_2d(preset(Preset::Box2D9), base.method, 96, 48, 9,
                 plan_triple(base, 4, Affinity::None), 41);
  base.method = Method::Ours;  // m = 1 -> H = 1 directly
  base.time_block = 1;
  check_equiv_2d(preset(Preset::Heat2D), base.method, 96, 48, 9,
                 plan_triple(base, 4, Affinity::None), 42);
}

// The long fuzz (ctest label `stress`, excluded from the default run):
// many more geometry draws, half of them under SF_TEST_JITTER so the
// schedules are maximally skewed while the bitwise assertions hold.
TEST(TiledPipelineStress, FuzzLong) {
  std::uint64_t s = 0xabcdef9876543210ull;
  for (int iter = 0; iter < 90; ++iter) fuzz_iteration(s, iter);
  ASSERT_EQ(setenv("SF_TEST_JITTER", "300", 1), 0);
  for (int iter = 90; iter < 150; ++iter) fuzz_iteration(s, iter);
  unsetenv("SF_TEST_JITTER");
}

TEST(Tiled, DeprecatedRunTiledShimStillWorks) {
  // run_tiled must stay a pure delegate of run_tile_plan for one release.
  const auto& spec = preset(Preset::Heat2D);
  const int ny = 64, nx = 48, tsteps = 10;
  const int halo =
      require_kernel(Method::Ours2, 2).required_halo(spec.p2.radius());
  Grid2D a(ny, nx, halo), b(ny, nx, halo), ra(ny, nx, halo), rb(ny, nx, halo);
  fill_random(a, 5);
  copy(a, b);
  copy(a, ra);
  copy(a, rb);
  TiledOptions opt;  // deprecated alias of TilePlan
  opt.method = Method::Ours2;
  opt.tile = 16;
  opt.threads = 2;
  run_tiled(spec.p2, a, b, tsteps, opt);
  run_tile_plan(spec.p2, ra, rb, tsteps, opt);
  EXPECT_EQ(max_abs_diff(a, ra), 0.0);
}

}  // namespace
}  // namespace sf
