// Every 2-D kernel must reproduce the naive reference for all presets,
// sizes (including non-multiples of the vector width), and time-step counts.
#include <gtest/gtest.h>

#include <cctype>
#include <tuple>

#include "common/cpu.hpp"
#include "grid/grid_utils.hpp"
#include "kernels/registry.hpp"
#include "kernels/kernels2d_impl.hpp"
#include "stencil/presets.hpp"
#include "stencil/reference.hpp"

namespace sf {
namespace {

struct Case {
  Preset preset;
  Method method;
  Isa isa;
  int ny, nx;
  int tsteps;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto& c = info.param;
  std::string s = preset(c.preset).name + std::string("_") +
                  method_name(c.method) + "_" + isa_name(c.isa) + "_" +
                  std::to_string(c.ny) + "x" + std::to_string(c.nx) + "_t" +
                  std::to_string(c.tsteps);
  for (char& ch : s)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return s;
}

class Kernel2D : public ::testing::TestWithParam<Case> {};

TEST_P(Kernel2D, MatchesReference) {
  const Case c = GetParam();
  if (c.isa == Isa::Avx512 && !cpu_has_avx512()) GTEST_SKIP();
  const auto& spec = preset(c.preset);
  const KernelInfo* kern = find_kernel(c.method, 2, c.isa);
  ASSERT_NE(kern, nullptr);
  // Declared-minimum-halo regression: see kernels1d_test.
  const int halo = kern->required_halo(spec.p2.radius());

  Grid2D a(c.ny, c.nx, halo), b(c.ny, c.nx, halo);
  Grid2D ra(c.ny, c.nx, halo), rb(c.ny, c.nx, halo);
  fill_random(a, 777 + c.ny * 31 + c.nx);
  copy(a, b);
  copy(a, ra);
  copy(a, rb);

  run_reference(spec.p2, ra, rb, c.tsteps);
  kern->run2(spec.p2, a, b, c.tsteps);

  const double tol = 1e-12 * std::max(1.0, max_abs(ra));
  EXPECT_LE(max_abs_diff(a, ra), tol);
}

std::vector<Case> make_cases() {
  std::vector<Case> v;
  const std::vector<Preset> presets = {Preset::Heat2D, Preset::Box2D9,
                                       Preset::Life, Preset::GB};
  const std::vector<Method> methods = {Method::Naive, Method::MultipleLoads,
                                       Method::DataReorg, Method::DLT,
                                       Method::Ours, Method::Ours2};
  const std::vector<Isa> isas = {Isa::Scalar, Isa::Avx2, Isa::Avx512};
  for (Preset p : presets)
    for (Method m : methods)
      for (Isa isa : isas) v.push_back({p, m, isa, 40, 48, 4});
  // Awkward sizes: tails in x, partial bands in y, tiny grids.
  for (Method m : {Method::MultipleLoads, Method::DataReorg, Method::DLT,
                   Method::Ours, Method::Ours2}) {
    v.push_back({Preset::Box2D9, m, Isa::Avx2, 37, 41, 4});
    v.push_back({Preset::Heat2D, m, Isa::Avx2, 10, 130, 3});
    v.push_back({Preset::GB, m, Isa::Avx512, 33, 70, 4});
    v.push_back({Preset::Life, m, Isa::Avx2, 5, 7, 4});
  }
  // Odd time steps exercise the folded remainder.
  v.push_back({Preset::Box2D9, Method::Ours2, Isa::Avx2, 40, 48, 5});
  v.push_back({Preset::GB, Method::Ours2, Isa::Avx512, 40, 48, 1});
  v.push_back({Preset::Life, Method::Ours2, Isa::Avx2, 40, 48, 7});
  return v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Kernel2D, ::testing::ValuesIn(make_cases()),
                         case_name);

TEST(Kernel2D, ShiftsReuseBitExact) {
  // The shifts-reuse ring buffer must not change results at all (same
  // operations, same order) versus recomputing every vector set.
  const auto& spec = preset(Preset::Box2D9);
  const int ny = 36, nx = 44, halo = 8, tsteps = 6;
  Grid2D a1(ny, nx, halo), b1(ny, nx, halo), a2(ny, nx, halo), b2(ny, nx, halo);
  fill_random(a1, 4242);
  copy(a1, b1);
  copy(a1, a2);
  copy(a1, b2);
  detail::run_ours2_2d<4>(spec.p2, a1, b1, tsteps);
  detail::run_ours2_2d_noreuse<4>(spec.p2, a2, b2, tsteps);
  EXPECT_EQ(max_abs_diff(a1, a2), 0.0);
}

TEST(Kernel2D, ScratchGridRestored) {
  // Layout-changing kernels must leave the scratch grid's halo usable.
  const auto& spec = preset(Preset::Heat2D);
  const int ny = 24, nx = 32, halo = 8;
  Grid2D a(ny, nx, halo), b(ny, nx, halo);
  fill_random(a, 9);
  copy(a, b);
  Grid2D bhalo(ny, nx, halo);
  copy(b, bhalo);
  require_kernel(Method::Ours, 2, Isa::Avx2).run2(spec.p2, a, b, 3);
  for (int x = -halo; x < nx + halo; ++x)
    EXPECT_DOUBLE_EQ(b.at(-1, x), bhalo.at(-1, x));
}

}  // namespace
}  // namespace sf
