// Kernel registry: enumeration, string lookup, capability metadata, and the
// declared-minimum-halo regression. Adding a kernel must only require a
// registration in its own translation unit; these tests assert the full
// method x dims x ISA matrix is visible through the registry alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "grid/grid_utils.hpp"
#include "kernels/registry.hpp"
#include "stencil/presets.hpp"
#include "stencil/reference.hpp"

namespace sf {
namespace {

const Method kMethods[] = {Method::Naive,  Method::MultipleLoads,
                           Method::DataReorg, Method::DLT,
                           Method::Ours,   Method::Ours2};
const Isa kIsas[] = {Isa::Scalar, Isa::Avx2, Isa::Avx512};

TEST(Registry, AllSixMethodsAcrossAllDimsAndIsas) {
  for (int dims = 1; dims <= 3; ++dims)
    for (Method m : kMethods)
      for (Isa isa : kIsas) {
        const KernelInfo* k = find_kernel(m, dims, isa);
        ASSERT_NE(k, nullptr)
            << method_name(m) << " " << dims << "-D " << isa_name(isa);
        EXPECT_EQ(k->method, m);
        EXPECT_EQ(k->dims, dims);
        EXPECT_EQ(k->isa, isa);
        EXPECT_STREQ(k->name, method_name(m));
        // Naive is scalar at every registered level; vector methods carry
        // the ISA's lane count.
        EXPECT_EQ(k->width, m == Method::Naive ? 1 : isa_width(isa));
        // Exactly one executor pointer, matching the dimensionality.
        EXPECT_EQ(k->run1 != nullptr, dims == 1);
        EXPECT_EQ(k->run2 != nullptr, dims == 2);
        EXPECT_EQ(k->run3 != nullptr, dims == 3);
      }
}

TEST(Registry, AvailableEnumeratesOnePerMethodAtConcreteIsa) {
  for (int dims = 1; dims <= 3; ++dims)
    for (Isa isa : kIsas) {
      auto ks = available_kernels(dims, isa);
      EXPECT_EQ(ks.size(), 6u) << dims << "-D " << isa_name(isa);
      std::set<Method> seen;
      for (const KernelInfo* k : ks) {
        EXPECT_EQ(k->isa, isa);
        EXPECT_EQ(k->dims, dims);
        seen.insert(k->method);
      }
      EXPECT_EQ(seen.size(), 6u);
      // Deterministic (method, isa) ordering.
      EXPECT_TRUE(std::is_sorted(ks.begin(), ks.end(),
                                 [](const KernelInfo* a, const KernelInfo* b) {
                                   return a->method < b->method;
                                 }));
    }
}

TEST(Registry, AutoIsaFiltersToCpuSupportedLevels) {
  auto ks = available_kernels(2, Isa::Auto);
  EXPECT_FALSE(ks.empty());
  for (const KernelInfo* k : ks) {
    if (k->isa == Isa::Avx2) EXPECT_TRUE(cpu_has_avx2());
    if (k->isa == Isa::Avx512) EXPECT_TRUE(cpu_has_avx512());
  }
}

TEST(Registry, StringLookupMatchesEnumLookup) {
  for (int dims = 1; dims <= 3; ++dims)
    for (Method m : kMethods) {
      EXPECT_EQ(find_kernel(method_name(m), dims, Isa::Avx2),
                find_kernel(m, dims, Isa::Avx2));
      EXPECT_EQ(method_from_name(method_name(m)), m);
    }
  EXPECT_EQ(find_kernel("no-such-kernel", 2, Isa::Avx2), nullptr);
  EXPECT_EQ(method_from_name("auto"), Method::Auto);
  EXPECT_THROW(method_from_name("bogus"), std::invalid_argument);
  // The throwing lookup names the missing combination instead of returning
  // nullptr.
  EXPECT_EQ(&require_kernel("ours", 2, Isa::Avx2),
            find_kernel(Method::Ours, 2, Isa::Avx2));
  EXPECT_THROW(require_kernel("no-such-kernel", 2, Isa::Avx2),
               std::invalid_argument);
  EXPECT_THROW(require_kernel(Method::Ours2, 4), std::invalid_argument);
}

TEST(Registry, CapabilityMetadata) {
  // Folding doubles the halo; single-step methods need exactly the radius.
  const KernelInfo* naive = find_kernel(Method::Naive, 2, Isa::Avx2);
  EXPECT_EQ(naive->fold_depth, 1);
  EXPECT_EQ(naive->required_halo(1), 1);
  EXPECT_EQ(naive->required_halo(2), 2);

  const KernelInfo* folded = find_kernel(Method::Ours2, 2, Isa::Avx2);
  EXPECT_EQ(folded->fold_depth, 2);
  EXPECT_EQ(folded->required_halo(1), 2);
  EXPECT_EQ(folded->required_halo(2), 4);

  // Data-reorg's aligned L/C/R loads read one full vector beyond the
  // interior: the halo floor is the SIMD width.
  EXPECT_EQ(find_kernel(Method::DataReorg, 1, Isa::Avx2)->required_halo(1), 4);
  EXPECT_EQ(find_kernel(Method::DataReorg, 1, Isa::Avx512)->required_halo(1),
            8);

  // supports(): the folded vector path engages only while 2r fits the
  // folded-radius cap; the scalar fold never engages (it falls back).
  EXPECT_TRUE(find_kernel(Method::Ours2, 1, Isa::Avx512)->supports(4));
  EXPECT_FALSE(find_kernel(Method::Ours2, 1, Isa::Avx2)->supports(3));
  EXPECT_FALSE(find_kernel(Method::Ours2, 2, Isa::Scalar)->supports(1));
  EXPECT_TRUE(find_kernel(Method::Naive, 3, Isa::Scalar)->supports(100));
}

TEST(Registry, LegacyRequiredHaloIsWorstCaseOverIsas) {
  // The deprecated free function keeps the old "safe everywhere" contract.
  EXPECT_EQ(required_halo(Method::DataReorg, 1), 8);   // AVX-512 floor
  EXPECT_EQ(required_halo(Method::Naive, 2), 2);       // just the radius
  EXPECT_EQ(required_halo(Method::Ours2, 2), 4);       // 2r
}

// Registration is global and has no unregister: the probe entry below stays
// for the rest of the binary, so it carries a harmless no-op executor and
// lives in an unused dimensionality (4-D) that every real enumeration
// filters out.
void probe_noop_run1(const Pattern1D&, const FieldView1D&, const FieldView1D&,
                     const Pattern1D*, const FieldView1D*, int) {}

TEST(Registry, AutoLookupFallsBackThroughNarrowerIsaLevels) {
  // A method registered at only a narrow ISA must stay reachable through
  // Isa::Auto on wider machines.
  if (!cpu_has_avx2()) GTEST_SKIP();
  KernelInfo probe =
      kernel1d_info(Method::Naive, Isa::Avx2, 4, 1, &probe_noop_run1);
  probe.dims = 4;
  KernelRegistry::instance().add(probe);
  const KernelInfo* k = find_kernel(Method::Naive, 4, Isa::Auto);
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->isa, Isa::Avx2);
}

// ---------------------------------------------------------------------------
// Declared-minimum-halo regression, driven by the enumeration itself so a
// newly registered kernel is covered automatically: every available kernel
// must reproduce the reference when its grids carry exactly required_halo().
// ---------------------------------------------------------------------------

TEST(Registry, EveryKernelRunsAtDeclaredMinimumHalo1D) {
  const auto& spec = preset(Preset::P1D5);  // radius 2 stresses 2r halos
  const int n = 70, tsteps = 4;
  for (const KernelInfo* k : available_kernels(1)) {
    const int halo = k->required_halo(spec.p1.radius());
    Grid1D a(n, halo), b(n, halo), ra(n, halo), rb(n, halo);
    fill_random(a, 11);
    copy(a, b);
    copy(a, ra);
    copy(a, rb);
    run_reference(spec.p1, ra, rb, tsteps);
    k->run1(spec.p1, a, b, nullptr, nullptr, tsteps);
    EXPECT_LE(max_abs_diff(a, ra), 1e-12 * std::max(1.0, max_abs(ra)))
        << k->name << " " << isa_name(k->isa) << " halo=" << halo;
  }
}

TEST(Registry, EveryKernelRunsAtDeclaredMinimumHalo2D) {
  const auto& spec = preset(Preset::Box2D9);
  const int ny = 36, nx = 44, tsteps = 4;
  for (const KernelInfo* k : available_kernels(2)) {
    const int halo = k->required_halo(spec.p2.radius());
    Grid2D a(ny, nx, halo), b(ny, nx, halo), ra(ny, nx, halo),
        rb(ny, nx, halo);
    fill_random(a, 22);
    copy(a, b);
    copy(a, ra);
    copy(a, rb);
    run_reference(spec.p2, ra, rb, tsteps);
    k->run2(spec.p2, a, b, tsteps);
    EXPECT_LE(max_abs_diff(a, ra), 1e-12 * std::max(1.0, max_abs(ra)))
        << k->name << " " << isa_name(k->isa) << " halo=" << halo;
  }
}

TEST(Registry, EveryKernelRunsAtDeclaredMinimumHalo3D) {
  const auto& spec = preset(Preset::Box3D27);
  const int nz = 12, ny = 10, nx = 20, tsteps = 4;
  for (const KernelInfo* k : available_kernels(3)) {
    const int halo = k->required_halo(spec.p3.radius());
    Grid3D a(nz, ny, nx, halo), b(nz, ny, nx, halo), ra(nz, ny, nx, halo),
        rb(nz, ny, nx, halo);
    fill_random(a, 33);
    copy(a, b);
    copy(a, ra);
    copy(a, rb);
    run_reference(spec.p3, ra, rb, tsteps);
    k->run3(spec.p3, a, b, tsteps);
    EXPECT_LE(max_abs_diff(a, ra), 1e-12 * std::max(1.0, max_abs(ra)))
        << k->name << " " << isa_name(k->isa) << " halo=" << halo;
  }
}

}  // namespace
}  // namespace sf
