// Tests for the serving subsystem (serving/server.hpp) and its engine-level
// foundations: bitwise agreement of batched vs. sequential advance() for all
// nine presets, server end-to-end correctness, batching under load,
// multi-threaded client stress across mixed presets and tenants,
// backpressure/rejection semantics (queue-full, tenant budgets, bad
// requests), clean shutdown with in-flight work, and prepare_shared()
// build coalescing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "grid/grid_utils.hpp"
#include "serving/server.hpp"
#include "stencil/presets.hpp"
#include "telemetry/telemetry.hpp"

namespace sf {
namespace {

constexpr int kSteps = 8;

Extents small_extents(const StencilSpec& spec) {
  if (spec.dims == 1) return Extents{2000};
  if (spec.dims == 2) return Extents{72, 64};
  return Extents{36, 24, 20};
}

PreparedStencil prepare_small(const StencilSpec& spec) {
  ExecOptions opts;
  opts.tiling = Tiling::On;
  opts.threads = 2;
  opts.tsteps = kSteps;
  return Engine::instance().prepare(spec, small_extents(spec), opts);
}

// Caller-owned buffers for one batch item of any dimensionality. Grids are
// kept in deques so growth never relocates (Grid is not required to move).
struct ItemStore {
  std::deque<Grid1D> a1, b1, k1;
  std::deque<Grid2D> a2, b2;
  std::deque<Grid3D> a3, b3;
};

// Builds `nitems` independently-seeded grid pairs for `spec` into `seq`
// (sequential baseline) and `bat` (batched run) with identical contents.
void make_items(const StencilSpec& spec, const PreparedStencil& ps, int nitems,
                std::uint64_t seed0, ItemStore& seq, ItemStore& bat) {
  const int h = ps.halo();
  for (int i = 0; i < nitems; ++i) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(i);
    if (spec.dims == 1) {
      seq.a1.emplace_back(2000, h, false);
      seq.b1.emplace_back(2000, h);
      bat.a1.emplace_back(2000, h, false);
      bat.b1.emplace_back(2000, h);
      fill_random(seq.a1.back(), seed);
      copy(seq.a1.back(), bat.a1.back());
      if (spec.has_source) {
        seq.k1.emplace_back(2000, h, false);
        fill_random(seq.k1.back(), seed + 7919);
      }
    } else if (spec.dims == 2) {
      seq.a2.emplace_back(64, 72, h, false);
      seq.b2.emplace_back(64, 72, h);
      bat.a2.emplace_back(64, 72, h, false);
      bat.b2.emplace_back(64, 72, h);
      fill_random(seq.a2.back(), seed);
      copy(seq.a2.back(), bat.a2.back());
    } else {
      seq.a3.emplace_back(20, 24, 36, h, false);
      seq.b3.emplace_back(20, 24, 36, h);
      bat.a3.emplace_back(20, 24, 36, h, false);
      bat.b3.emplace_back(20, 24, 36, h);
      fill_random(seq.a3.back(), seed);
      copy(seq.a3.back(), bat.a3.back());
    }
  }
}

// Advances every sequential-baseline item one at a time through advance().
void run_sequential(const StencilSpec& spec, const PreparedStencil& ps,
                    int nitems, ItemStore& seq) {
  for (int i = 0; i < nitems; ++i) {
    if (spec.dims == 1) {
      if (spec.has_source)
        ps.advance(seq.a1[i], seq.b1[i], seq.k1[i], kSteps);
      else
        ps.advance(seq.a1[i], seq.b1[i], kSteps);
    } else if (spec.dims == 2) {
      ps.advance(seq.a2[i], seq.b2[i], kSteps);
    } else {
      ps.advance(seq.a3[i], seq.b3[i], kSteps);
    }
  }
}

// Max |batched - sequential| over every item's result field.
double batch_diff(const StencilSpec& spec, int nitems, const ItemStore& seq,
                  const ItemStore& bat) {
  double m = 0;
  for (int i = 0; i < nitems; ++i) {
    if (spec.dims == 1)
      m = std::max(m, max_abs_diff(seq.a1[i].view(), bat.a1[i].view()));
    else if (spec.dims == 2)
      m = std::max(m, max_abs_diff(seq.a2[i].view(), bat.a2[i].view()));
    else
      m = std::max(m, max_abs_diff(seq.a3[i].view(), bat.a3[i].view()));
  }
  return m;
}

// ---------------------------------------------------------------------------
// Engine level: advance_batch() vs. advance().
// ---------------------------------------------------------------------------

TEST(AdvanceBatch, BitwiseMatchesSequentialAllPresets) {
  const int nitems = 4;
  for (const auto& spec : all_presets()) {
    SCOPED_TRACE(spec.name);
    PreparedStencil ps = prepare_small(spec);
    ItemStore seq, bat;
    make_items(spec, ps, nitems, 100, seq, bat);
    run_sequential(spec, ps, nitems, seq);
    if (spec.dims == 1) {
      std::deque<FieldView1D> kviews;
      std::vector<TileBatch1D> items;
      for (int i = 0; i < nitems; ++i) {
        TileBatch1D it{bat.a1[i].view(), bat.b1[i].view(), nullptr};
        if (spec.has_source) {
          kviews.push_back(seq.k1[i].view());  // K is read-only; share it
          it.k = &kviews.back();
        }
        items.push_back(it);
      }
      ps.advance_batch(items, kSteps);
    } else if (spec.dims == 2) {
      std::vector<TileBatch2D> items;
      for (int i = 0; i < nitems; ++i)
        items.push_back({bat.a2[i].view(), bat.b2[i].view()});
      ps.advance_batch(items, kSteps);
    } else {
      std::vector<TileBatch3D> items;
      for (int i = 0; i < nitems; ++i)
        items.push_back({bat.a3[i].view(), bat.b3[i].view()});
      ps.advance_batch(items, kSteps);
    }
    EXPECT_EQ(batch_diff(spec, nitems, seq, bat), 0.0);
  }
}

TEST(AdvanceBatch, SingleItemAndEmptyBatchesWork) {
  const auto& spec = preset(Preset::Heat2D);
  PreparedStencil ps = prepare_small(spec);
  ItemStore seq, bat;
  make_items(spec, ps, 1, 500, seq, bat);
  run_sequential(spec, ps, 1, seq);
  std::vector<TileBatch2D> one{{bat.a2[0].view(), bat.b2[0].view()}};
  ps.advance_batch(one, kSteps);
  EXPECT_EQ(max_abs_diff(seq.a2[0].view(), bat.a2[0].view()), 0.0);
  ps.advance_batch(std::vector<TileBatch2D>{}, kSteps);  // no-op, no throw
}

// ---------------------------------------------------------------------------
// Plan keys and shared preparation.
// ---------------------------------------------------------------------------

TEST(PlanKey, IdentifiesTheEffectiveRequest) {
  Engine& eng = Engine::instance();
  const auto& spec = preset(Preset::Heat2D);
  ExecOptions opts;
  opts.tiling = Tiling::On;
  opts.threads = 2;
  opts.tsteps = kSteps;
  PreparedStencil p1 = eng.prepare(spec, Extents{72, 64}, opts);
  PreparedStencil p2 = eng.prepare(spec, Extents{72, 64}, opts);
  EXPECT_EQ(p1.plan_key(), p2.plan_key());
  EXPECT_EQ(p1.plan_key(), eng.plan_key(spec, Extents{72, 64}, opts));
  // Any change to the effective request changes the key.
  EXPECT_NE(p1.plan_key(), eng.plan_key(spec, Extents{96, 64}, opts));
  ExecOptions other = opts;
  other.tsteps = kSteps + 1;
  EXPECT_NE(p1.plan_key(), eng.plan_key(spec, Extents{72, 64}, other));
  EXPECT_NE(p1.plan_key(),
            eng.plan_key(preset(Preset::Box2D9), Extents{72, 64}, opts));
}

TEST(PrepareShared, ConcurrentTenantsShareOnePreparedState) {
  Engine& eng = Engine::instance();
  const auto& spec = preset(Preset::Heat2D);
  ExecOptions opts;
  opts.tiling = Tiling::On;
  opts.threads = 2;
  opts.tsteps = kSteps;
  // A request no other test uses, so the first prepare really builds.
  const Extents ext{88, 56};
  const int nclients = 8;
  std::vector<PreparedStencil> handles(nclients);
  std::vector<std::thread> clients;
  for (int t = 0; t < nclients; ++t)
    clients.emplace_back(
        [&, t] { handles[t] = eng.prepare_shared(spec, ext, opts); });
  for (auto& c : clients) c.join();
  for (int t = 1; t < nclients; ++t) {
    // Identical State, not merely equal plans: spec() returns a reference
    // into the shared prepared state.
    EXPECT_EQ(&handles[0].spec(), &handles[t].spec());
    EXPECT_EQ(handles[0].plan_key(), handles[t].plan_key());
  }
}

// ---------------------------------------------------------------------------
// Server end-to-end.
// ---------------------------------------------------------------------------

TEST(Server, EndToEndBitwiseAllPresets) {
  const int nitems = 3;
  Server server({/*queue_capacity=*/256, /*max_batch=*/16});
  std::vector<std::future<ServeResult>> futures;
  std::deque<ItemStore> seqs, bats;
  std::deque<PreparedStencil> handles;
  int idx = 0;
  for (const auto& spec : all_presets()) {
    handles.push_back(prepare_small(spec));
    const PreparedStencil& ps = handles.back();
    seqs.emplace_back();
    bats.emplace_back();
    ItemStore& seq = seqs.back();
    ItemStore& bat = bats.back();
    make_items(spec, ps, nitems, 300 + 10 * idx, seq, bat);
    run_sequential(spec, ps, nitems, seq);
    for (int i = 0; i < nitems; ++i) {
      const std::string tenant = (i % 2 == 0) ? "alice" : "bob";
      if (spec.dims == 1) {
        if (spec.has_source)
          futures.push_back(server.submit(tenant, ps, bat.a1[i].view(),
                                          bat.b1[i].view(), seq.k1[i].view(),
                                          kSteps));
        else
          futures.push_back(server.submit(tenant, ps, bat.a1[i].view(),
                                          bat.b1[i].view(), kSteps));
      } else if (spec.dims == 2) {
        futures.push_back(server.submit(tenant, ps, bat.a2[i].view(),
                                        bat.b2[i].view(), kSteps));
      } else {
        futures.push_back(server.submit(tenant, ps, bat.a3[i].view(),
                                        bat.b3[i].view(), kSteps));
      }
    }
    ++idx;
  }
  server.drain();
  for (auto& f : futures) {
    const ServeResult r = f.get();
    EXPECT_TRUE(r.ok()) << r.error;
    EXPECT_GE(r.batch_size, 1);
    EXPECT_GE(r.queue_seconds, 0.0);
    EXPECT_GE(r.exec_seconds, 0.0);
  }
  idx = 0;
  for (const auto& spec : all_presets()) {
    SCOPED_TRACE(spec.name);
    EXPECT_EQ(batch_diff(spec, nitems, seqs[idx], bats[idx]), 0.0);
    ++idx;
  }
  const ServerStats st = server.stats();
  EXPECT_EQ(st.submitted, static_cast<long>(futures.size()));
  EXPECT_EQ(st.completed, static_cast<long>(futures.size()));
  EXPECT_EQ(st.failed, 0);
  EXPECT_EQ(st.rejected, 0);
  EXPECT_GE(st.batches, 1);
}

// Holds the dispatcher inside the first on_complete callback so admission
// behaviour while the dispatcher is busy can be tested deterministically.
struct DispatcherGate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;
  std::atomic<int> calls{0};

  ServerOptions options(ServerOptions base = {}) {
    base.on_complete = [this](const ServeResult&) {
      if (calls.fetch_add(1) != 0) return;  // block only the first completion
      std::unique_lock<std::mutex> lk(mu);
      entered = true;
      cv.notify_all();
      cv.wait(lk, [this] { return released; });
    };
    return base;
  }
  void await_entered() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [this] { return entered; });
  }
  void release() {
    std::lock_guard<std::mutex> lk(mu);
    released = true;
    cv.notify_all();
  }
};

TEST(Server, SamePlanRequestsBatchInOneDispatch) {
  const auto& spec = preset(Preset::Heat2D);
  PreparedStencil ps = prepare_small(spec);
  const int nitems = 4;
  ItemStore seq, bat;
  make_items(spec, ps, nitems + 1, 900, seq, bat);
  DispatcherGate gate;
  ServerOptions opts = gate.options();
  opts.max_batch = 16;
  Server server(opts);
  // Warm request: once its completion callback blocks, the dispatcher is
  // parked and everything submitted next accumulates in the ring.
  auto warm =
      server.submit("warm", ps, bat.a2[nitems].view(), bat.b2[nitems].view(),
                    kSteps);
  gate.await_entered();
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < nitems; ++i)
    futures.push_back(
        server.submit("t", ps, bat.a2[i].view(), bat.b2[i].view(), kSteps));
  gate.release();
  server.drain();
  EXPECT_TRUE(warm.get().ok());
  for (auto& f : futures) {
    const ServeResult r = f.get();
    EXPECT_TRUE(r.ok()) << r.error;
    // All four same-plan requests were drained in one round and executed as
    // one batched dispatch.
    EXPECT_EQ(r.batch_size, nitems);
  }
  EXPECT_EQ(server.stats().max_batch, nitems);
}

TEST(Server, MultiThreadedClientsMixedPresetsAndTenants) {
  const int nclients = 6;
  const int nrequests = 24;
  const StencilSpec* specs[] = {&preset(Preset::Heat1D),
                                &preset(Preset::Heat2D),
                                &preset(Preset::Heat3D)};
  PreparedStencil handles[3] = {prepare_small(*specs[0]),
                                prepare_small(*specs[1]),
                                prepare_small(*specs[2])};
  struct ClientData {
    ItemStore seq, bat;
    std::vector<int> which;  // preset index of request r
    std::vector<std::future<ServeResult>> futures;
  };
  std::deque<ClientData> data(nclients);
  Server server({/*queue_capacity=*/1024, /*max_batch=*/32});
  std::vector<std::thread> clients;
  for (int t = 0; t < nclients; ++t) {
    clients.emplace_back([&, t] {
      ClientData& d = data[t];
      const std::string tenant = "tenant-" + std::to_string(t % 3);
      for (int r = 0; r < nrequests; ++r) {
        const int w = (t + r) % 3;
        d.which.push_back(w);
        const StencilSpec& spec = *specs[w];
        const PreparedStencil& ps = handles[w];
        make_items(spec, ps, 1,
                   static_cast<std::uint64_t>(5000 + 1000 * t + r), d.seq,
                   d.bat);
        const int i = static_cast<int>(
            (spec.dims == 1 ? d.seq.a1.size()
                            : spec.dims == 2 ? d.seq.a2.size()
                                             : d.seq.a3.size()) -
            1);
        // Sequential expectation first (advance() is thread-safe), then the
        // served copy.
        if (spec.dims == 1) {
          ps.advance(d.seq.a1[i], d.seq.b1[i], kSteps);
          d.futures.push_back(server.submit(tenant, ps, d.bat.a1[i].view(),
                                            d.bat.b1[i].view(), kSteps));
        } else if (spec.dims == 2) {
          ps.advance(d.seq.a2[i], d.seq.b2[i], kSteps);
          d.futures.push_back(server.submit(tenant, ps, d.bat.a2[i].view(),
                                            d.bat.b2[i].view(), kSteps));
        } else {
          ps.advance(d.seq.a3[i], d.seq.b3[i], kSteps);
          d.futures.push_back(server.submit(tenant, ps, d.bat.a3[i].view(),
                                            d.bat.b3[i].view(), kSteps));
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  server.drain();
  for (int t = 0; t < nclients; ++t) {
    ClientData& d = data[t];
    int i1 = 0, i2 = 0, i3 = 0;
    for (int r = 0; r < nrequests; ++r) {
      const ServeResult res = d.futures[r].get();
      ASSERT_TRUE(res.ok()) << res.error;
      const StencilSpec& spec = *specs[d.which[r]];
      if (spec.dims == 1) {
        EXPECT_EQ(max_abs_diff(d.seq.a1[i1].view(), d.bat.a1[i1].view()), 0.0);
        ++i1;
      } else if (spec.dims == 2) {
        EXPECT_EQ(max_abs_diff(d.seq.a2[i2].view(), d.bat.a2[i2].view()), 0.0);
        ++i2;
      } else {
        EXPECT_EQ(max_abs_diff(d.seq.a3[i3].view(), d.bat.a3[i3].view()), 0.0);
        ++i3;
      }
    }
  }
  const ServerStats st = server.stats();
  EXPECT_EQ(st.submitted, static_cast<long>(nclients) * nrequests);
  EXPECT_EQ(st.completed, static_cast<long>(nclients) * nrequests);
  EXPECT_EQ(st.rejected, 0);
  EXPECT_EQ(st.failed, 0);
}

// ---------------------------------------------------------------------------
// Admission control and rejection semantics.
// ---------------------------------------------------------------------------

TEST(Server, RejectsBadRequestsAtSubmitTime) {
  const auto& spec = preset(Preset::Heat2D);
  PreparedStencil ps = prepare_small(spec);
  const int h = ps.halo();
  Server server;
  // Geometry mismatch against the prepared extents.
  Grid2D wrong_a(10, 10, h, false), wrong_b(10, 10, h);
  auto f1 = server.submit("t", ps, wrong_a.view(), wrong_b.view(), kSteps);
  ASSERT_EQ(f1.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);  // rejected futures settle immediately
  const ServeResult r1 = f1.get();
  EXPECT_EQ(r1.rejected, Reject::BadRequest);
  EXPECT_FALSE(r1.error.empty());
  // Empty prepared handle.
  auto f2 = server.submit("t", PreparedStencil{}, wrong_a.view(),
                          wrong_b.view(), kSteps);
  EXPECT_EQ(f2.get().rejected, Reject::BadRequest);
  EXPECT_EQ(server.stats().rejected, 2);
  EXPECT_STREQ(reject_name(Reject::BadRequest), "bad-request");
}

TEST(Server, FullRingAppliesBackpressure) {
  const auto& spec = preset(Preset::Heat2D);
  PreparedStencil ps = prepare_small(spec);
  const int nitems = 8;
  ItemStore seq, bat;
  make_items(spec, ps, nitems, 1500, seq, bat);
  DispatcherGate gate;
  ServerOptions opts = gate.options();
  opts.queue_capacity = 2;  // ring holds exactly two waiting requests
  opts.max_batch = 1;
  Server server(opts);
  auto warm =
      server.submit("w", ps, bat.a2[0].view(), bat.b2[0].view(), kSteps);
  gate.await_entered();  // dispatcher parked; the ring is drained and empty
  auto q1 = server.submit("t", ps, bat.a2[1].view(), bat.b2[1].view(), kSteps);
  auto q2 = server.submit("t", ps, bat.a2[2].view(), bat.b2[2].view(), kSteps);
  auto q3 = server.submit("t", ps, bat.a2[3].view(), bat.b2[3].view(), kSteps);
  const ServeResult rejected = q3.get();  // third one finds the ring full
  EXPECT_EQ(rejected.rejected, Reject::QueueFull);
  gate.release();
  server.drain();
  EXPECT_TRUE(warm.get().ok());
  EXPECT_TRUE(q1.get().ok());
  EXPECT_TRUE(q2.get().ok());
  EXPECT_GE(server.stats().rejected, 1);
}

TEST(Server, TenantInflightBudgetIsEnforced) {
  const auto& spec = preset(Preset::Heat2D);
  PreparedStencil ps = prepare_small(spec);
  ItemStore seq, bat;
  make_items(spec, ps, 4, 1700, seq, bat);
  DispatcherGate gate;
  ServerOptions opts = gate.options();
  opts.tenant_max_inflight = 1;
  opts.max_batch = 1;
  Server server(opts);
  auto warm =
      server.submit("w", ps, bat.a2[0].view(), bat.b2[0].view(), kSteps);
  gate.await_entered();
  // Tenant "t" may have one request in flight; the second is refused while
  // the first still waits in the parked dispatcher's queue. Other tenants
  // are unaffected.
  auto q1 = server.submit("t", ps, bat.a2[1].view(), bat.b2[1].view(), kSteps);
  auto q2 = server.submit("t", ps, bat.a2[2].view(), bat.b2[2].view(), kSteps);
  auto q3 = server.submit("u", ps, bat.a2[3].view(), bat.b2[3].view(), kSteps);
  EXPECT_EQ(q2.get().rejected, Reject::TenantInflight);
  gate.release();
  server.drain();
  EXPECT_TRUE(warm.get().ok());
  EXPECT_TRUE(q1.get().ok());
  EXPECT_TRUE(q3.get().ok());
  // With the first request completed, the tenant has budget again.
  ItemStore seq2, bat2;
  make_items(spec, ps, 1, 1800, seq2, bat2);
  auto q4 =
      server.submit("t", ps, bat2.a2[0].view(), bat2.b2[0].view(), kSteps);
  server.drain();
  EXPECT_TRUE(q4.get().ok());
}

TEST(Server, TenantPlanBudgetIsEnforced) {
  const auto& heat2 = preset(Preset::Heat2D);
  const auto& heat3 = preset(Preset::Heat3D);
  PreparedStencil p2 = prepare_small(heat2);
  PreparedStencil p3 = prepare_small(heat3);
  ItemStore seq, bat;
  make_items(heat2, p2, 2, 2000, seq, bat);
  ItemStore seq3, bat3;
  make_items(heat3, p3, 2, 2100, seq3, bat3);
  ServerOptions opts;
  opts.tenant_max_plans = 1;
  Server server(opts);
  auto ok1 =
      server.submit("t", p2, bat.a2[0].view(), bat.b2[0].view(), kSteps);
  // A second *distinct* plan exceeds the tenant's budget...
  auto rej =
      server.submit("t", p3, bat3.a3[0].view(), bat3.b3[0].view(), kSteps);
  EXPECT_EQ(rej.get().rejected, Reject::TenantPlans);
  // ...but re-using the already-charged plan is fine, as is the same plan
  // under a different tenant.
  auto ok2 =
      server.submit("t", p2, bat.a2[1].view(), bat.b2[1].view(), kSteps);
  auto ok3 =
      server.submit("u", p3, bat3.a3[1].view(), bat3.b3[1].view(), kSteps);
  server.drain();
  EXPECT_TRUE(ok1.get().ok());
  EXPECT_TRUE(ok2.get().ok());
  EXPECT_TRUE(ok3.get().ok());
}

TEST(Server, DestructionDrainsInflightRequests) {
  const auto& spec = preset(Preset::Heat2D);
  PreparedStencil ps = prepare_small(spec);
  const int nitems = 16;
  ItemStore seq, bat;
  make_items(spec, ps, nitems, 2500, seq, bat);
  run_sequential(spec, ps, nitems, seq);
  std::vector<std::future<ServeResult>> futures;
  {
    Server server({/*queue_capacity=*/64, /*max_batch=*/8});
    for (int i = 0; i < nitems; ++i)
      futures.push_back(
          server.submit("t", ps, bat.a2[i].view(), bat.b2[i].view(), kSteps));
    // Destroy with work still queued/executing: the destructor must satisfy
    // every accepted future (no leaks — ASan-checked in CI) and join.
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_TRUE(f.get().ok());
  }
  EXPECT_EQ(batch_diff(spec, nitems, seq, bat), 0.0);
}

// ---------------------------------------------------------------------------
// Telemetry: serving counters must agree with observed request outcomes.
// ---------------------------------------------------------------------------

TEST(ServerTelemetry, CountersMatchRequestOutcomes) {
  // Metrics must be on *before* the Server is constructed: handles are
  // resolved in the Impl constructor (construct-time enablement).
  ::setenv("SF_METRICS", "1", 1);
  telemetry::refresh_env();
  const auto& heat2 = preset(Preset::Heat2D);
  const auto& heat3 = preset(Preset::Heat3D);
  PreparedStencil p2 = prepare_small(heat2);
  PreparedStencil p3 = prepare_small(heat3);
  const int ngood = 6;
  ItemStore seq, bat;
  make_items(heat2, p2, ngood, 4000, seq, bat);
  ItemStore seq3, bat3;
  make_items(heat3, p3, 1, 4100, seq3, bat3);

  const telemetry::Snapshot before = telemetry::snapshot();
  std::string metrics_page;
  {
    ServerOptions opts;
    opts.tenant_max_plans = 1;
    opts.max_batch = 16;
    Server server(opts);
    std::vector<std::future<ServeResult>> good;
    for (int i = 0; i < ngood; ++i)
      good.push_back(server.submit("telem-a", p2, bat.a2[i].view(),
                                   bat.b2[i].view(), kSteps));
    // One distinct-plan submission over the tenant budget...
    auto rej_plan = server.submit("telem-a", p3, bat3.a3[0].view(),
                                  bat3.b3[0].view(), kSteps);
    EXPECT_EQ(rej_plan.get().rejected, Reject::TenantPlans);
    // ...and one geometry mismatch.
    Grid2D wrong_a(10, 10, p2.halo(), false), wrong_b(10, 10, p2.halo());
    auto rej_bad =
        server.submit("telem-a", p2, wrong_a.view(), wrong_b.view(), kSteps);
    EXPECT_EQ(rej_bad.get().rejected, Reject::BadRequest);
    server.drain();
    for (auto& f : good) EXPECT_TRUE(f.get().ok());
    metrics_page = server.metrics();
  }
  const telemetry::Snapshot after = telemetry::snapshot();
  const auto delta = [&](const char* name) {
    return after.counter_value(name) - before.counter_value(name);
  };

  // Every submission — accepted or rejected — counts as submitted; only
  // drained requests complete; each rejection lands in its reason counter
  // and the tenant's rejected counter.
  EXPECT_EQ(delta("serving.submitted"), ngood + 2);
  EXPECT_EQ(delta("serving.accepted"), ngood);
  EXPECT_EQ(delta("serving.completed"), ngood);
  EXPECT_EQ(delta("serving.failed"), 0);
  EXPECT_EQ(delta("serving.reject.tenant-plans"), 1);
  EXPECT_EQ(delta("serving.reject.bad-request"), 1);
  EXPECT_EQ(delta("serving.tenant.telem-a.accepted"), ngood);
  // The bad-request rejection never reaches admission, so the tenant
  // counter sees only the plan-budget one.
  EXPECT_EQ(delta("serving.tenant.telem-a.rejected"), 1);

  // The batch-size histogram observes one entry per batch and one unit of
  // sum per completed request.
  const telemetry::HistogramSample* batch_after =
      after.find_histogram("serving.batch_size");
  ASSERT_NE(batch_after, nullptr);
  std::int64_t batch_count = batch_after->count, batch_sum = batch_after->sum;
  if (const telemetry::HistogramSample* b =
          before.find_histogram("serving.batch_size")) {
    batch_count -= b->count;
    batch_sum -= b->sum;
  }
  EXPECT_EQ(batch_sum, ngood);
  EXPECT_EQ(batch_count, delta("serving.batches"));
  EXPECT_GE(delta("serving.batches"), 1);

  // Latency histograms saw every completed request.
  const telemetry::HistogramSample* q =
      after.find_histogram("serving.queue_us");
  ASSERT_NE(q, nullptr);
  std::int64_t q_count = q->count;
  if (const telemetry::HistogramSample* b =
          before.find_histogram("serving.queue_us"))
    q_count -= b->count;
  EXPECT_EQ(q_count, ngood);

  // The metrics endpoint carries both the server stats and the registry.
  EXPECT_NE(metrics_page.find("# sf::Server"), std::string::npos);
  EXPECT_NE(metrics_page.find("serving.submitted"), std::string::npos);

  ::setenv("SF_METRICS", "0", 1);
  telemetry::refresh_env();
}

}  // namespace
}  // namespace sf
