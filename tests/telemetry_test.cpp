// The telemetry subsystem: sharded counter exactness under concurrent
// writers, log-bucket histogram edges and aggregation, the bounded
// per-thread trace ring (wrap semantics), sample logs, exporters, and —
// the production-critical property — disabled-mode handles being dead
// no-ops that never create registry state.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace sf::telemetry {
namespace {

// Every test resolves its own enablement: the registry is process-global
// and handles are resolved at acquisition, so each case sets the env it
// needs and refreshes before acquiring.
void metrics_on() {
  ::setenv("SF_METRICS", "1", 1);
  refresh_env();
}
void metrics_off() {
  ::setenv("SF_METRICS", "0", 1);
  refresh_env();
}

TEST(TelemetryCounter, DisabledHandlesAreDeadAndCreateNothing) {
  metrics_off();
  Counter c = counter("test.disabled.counter");
  EXPECT_FALSE(c.live());
  c.add(123);  // must be a no-op, not a crash
  Histogram h = histogram("test.disabled.hist");
  EXPECT_FALSE(h.live());
  h.record(7);
  SampleLog log = samples("test.disabled.samples", {"a", "b"});
  EXPECT_FALSE(log.live());
  log.append({"1", "2"});

  // Disabled acquisition never materializes registry entries: re-enabling
  // shows no trace of the names above.
  metrics_on();
  const Snapshot s = snapshot();
  EXPECT_EQ(s.counter_value("test.disabled.counter"), 0);
  EXPECT_EQ(s.find_histogram("test.disabled.hist"), nullptr);
  for (const SampleTableDump& t : s.samples)
    EXPECT_NE(t.name, "test.disabled.samples");
}

TEST(TelemetryCounter, ShardAggregationIsExactUnderConcurrentWriters) {
  metrics_on();
  Counter c = counter("test.concurrent.counter");
  ASSERT_TRUE(c.live());
  const std::int64_t before = snapshot().counter_value("test.concurrent.counter");
  constexpr int kThreads = 8;
  constexpr std::int64_t kAddsEach = 100000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&c] {
      for (std::int64_t i = 0; i < kAddsEach; ++i) c.add(1);
    });
  for (auto& t : writers) t.join();
  // Relaxed per-shard adds lose nothing: the aggregate is exact once the
  // writers joined.
  EXPECT_EQ(snapshot().counter_value("test.concurrent.counter"),
            before + kThreads * kAddsEach);
}

TEST(TelemetryCounter, SameNameResolvesToSameStorage) {
  metrics_on();
  Counter a = counter("test.shared.counter");
  Counter b = counter("test.shared.counter");
  const std::int64_t before = snapshot().counter_value("test.shared.counter");
  a.add(2);
  b.add(3);
  EXPECT_EQ(snapshot().counter_value("test.shared.counter"), before + 5);
}

TEST(TelemetryHistogram, BucketEdges) {
  // Bucket 0 holds v <= 0; bucket b > 0 spans [2^(b-1), 2^b).
  EXPECT_EQ(histogram_bucket(-5), 0);
  EXPECT_EQ(histogram_bucket(0), 0);
  EXPECT_EQ(histogram_bucket(1), 1);
  EXPECT_EQ(histogram_bucket(2), 2);
  EXPECT_EQ(histogram_bucket(3), 2);
  EXPECT_EQ(histogram_bucket(4), 3);
  for (int k = 1; k < 62; ++k) {
    const std::int64_t p = static_cast<std::int64_t>(1) << k;
    EXPECT_EQ(histogram_bucket(p), k + 1) << "at 2^" << k;
    EXPECT_EQ(histogram_bucket(p - 1), k) << "below 2^" << k;
    EXPECT_EQ(histogram_bucket(p + 1), k + 1) << "above 2^" << k;
  }
  EXPECT_EQ(histogram_bucket_lo(0), 0);
  EXPECT_EQ(histogram_bucket_lo(1), 1);
  EXPECT_EQ(histogram_bucket_lo(5), 16);
  // The virtual top edge clamps instead of shifting into the sign bit.
  EXPECT_GT(histogram_bucket_lo(kHistogramBuckets), 0);
}

TEST(TelemetryHistogram, RecordsLandInTheirBuckets) {
  metrics_on();
  Histogram h = histogram("test.buckets.hist");
  ASSERT_TRUE(h.live());
  h.record(0);    // bucket 0
  h.record(1);    // bucket 1
  h.record(2);    // bucket 2
  h.record(3);    // bucket 2
  h.record(100);  // bucket 7 ([64, 128))
  const Snapshot snap = snapshot();
  const HistogramSample* s = snap.find_histogram("test.buckets.hist");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 5);
  EXPECT_EQ(s->sum, 106);
  EXPECT_EQ(s->buckets[0], 1);
  EXPECT_EQ(s->buckets[1], 1);
  EXPECT_EQ(s->buckets[2], 2);
  EXPECT_EQ(s->buckets[7], 1);
  EXPECT_DOUBLE_EQ(s->mean(), 106.0 / 5.0);
}

TEST(TelemetryHistogram, CountAndSumExactUnderConcurrentWriters) {
  metrics_on();
  Histogram h = histogram("test.concurrent.hist");
  ASSERT_TRUE(h.live());
  constexpr int kThreads = 8;
  constexpr std::int64_t kEach = 50000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&h, t] {
      for (std::int64_t i = 0; i < kEach; ++i) h.record(t + 1);
    });
  for (auto& t : writers) t.join();
  const Snapshot snap = snapshot();
  const HistogramSample* s = snap.find_histogram("test.concurrent.hist");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, kThreads * kEach);
  // sum = kEach * (1 + 2 + ... + kThreads)
  EXPECT_EQ(s->sum, kEach * kThreads * (kThreads + 1) / 2);
  std::int64_t bucket_total = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) bucket_total += s->buckets[b];
  EXPECT_EQ(bucket_total, s->count);
}

TEST(TelemetryHistogram, PercentileWithinBucketBounds) {
  metrics_on();
  Histogram h = histogram("test.pct.hist");
  ASSERT_TRUE(h.live());
  for (int i = 0; i < 90; ++i) h.record(10);    // bucket [8, 16)
  for (int i = 0; i < 10; ++i) h.record(1000);  // bucket [512, 1024)
  const Snapshot snap = snapshot();
  const HistogramSample* s = snap.find_histogram("test.pct.hist");
  ASSERT_NE(s, nullptr);
  const double p50 = s->percentile(50);
  EXPECT_GE(p50, 8.0);
  EXPECT_LE(p50, 16.0);
  const double p99 = s->percentile(99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  EXPECT_LE(s->percentile(0), s->percentile(100));
}

TEST(TelemetrySamples, RowsSurviveRoundTrip) {
  metrics_on();
  SampleLog log = samples("test.samples", {"x", "y"});
  ASSERT_TRUE(log.live());
  log.append({"1", "2"});
  log.append({"3", "4"});
  log.append({"only-one-column"});  // schema mismatch: dropped
  const Snapshot s = snapshot();
  const SampleTableDump* mine = nullptr;
  for (const SampleTableDump& t : s.samples)
    if (t.name == "test.samples") mine = &t;
  ASSERT_NE(mine, nullptr);
  EXPECT_EQ(mine->columns, (std::vector<std::string>{"x", "y"}));
  ASSERT_GE(mine->rows.size(), 2u);
  EXPECT_EQ(mine->rows[0], (std::vector<std::string>{"1", "2"}));
  for (const auto& row : mine->rows) EXPECT_EQ(row.size(), 2u);
}

TEST(TelemetryTrace, DisabledSpansRecordNothing) {
  ::setenv("SF_TRACE", "0", 1);
  refresh_env();
  const std::size_t before = trace_events().size();
  { Span s("test.disabled.span"); }
  EXPECT_EQ(trace_events().size(), before);
}

TEST(TelemetryTrace, RingBufferWrapsKeepingNewestEvents) {
  ::setenv("SF_TRACE", "1", 1);
  refresh_env();
  // A fresh thread gets a fresh ring (capacity resolved at first span), so
  // the wrap test is deterministic regardless of prior spans in this
  // process.
  const int cap = trace_capacity();
  std::thread([cap] {
    for (int i = 0; i < cap + 50; ++i) Span span("test.wrap.old");
    for (int i = 0; i < 10; ++i) Span span("test.wrap.new");
  }).join();
  int old_seen = 0, new_seen = 0;
  for (const TraceEvent& e : trace_events()) {
    if (std::string(e.name) == "test.wrap.old") ++old_seen;
    if (std::string(e.name) == "test.wrap.new") ++new_seen;
  }
  // The ring is bounded: of cap+60 recorded events at most cap survive,
  // and the 10 newest are always among them.
  EXPECT_EQ(new_seen, 10);
  EXPECT_LE(old_seen + new_seen, cap);
  EXPECT_GE(old_seen + new_seen, cap > 60 ? cap - 60 : 1);
  ::setenv("SF_TRACE", "0", 1);
  refresh_env();
}

TEST(TelemetryTrace, SpansCarryDurationAndOrdering) {
  ::setenv("SF_TRACE", "1", 1);
  refresh_env();
  std::thread([] {
    Span outer("test.order.outer");
    { Span inner("test.order.inner"); }
  }).join();
  const std::vector<TraceEvent> events = trace_events();
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "test.order.outer") outer = &e;
    if (std::string(e.name) == "test.order.inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_GE(outer->dur_ns, inner->dur_ns);  // inner nests inside outer
  EXPECT_LE(outer->t0_ns, inner->t0_ns);
  EXPECT_GE(inner->dur_ns, 0);
  ::setenv("SF_TRACE", "0", 1);
  refresh_env();
}

TEST(TelemetryExporters, TextDumpAndChromeTraceWellFormed) {
  metrics_on();
  counter("test.export.counter").add(42);
  const std::string text = text_dump();
  EXPECT_NE(text.find("test.export.counter"), std::string::npos);
  const std::string json = chrome_trace_json();
  ASSERT_GE(json.size(), 2u);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');  // trailing newline after array
}

}  // namespace
}  // namespace sf::telemetry
