// Every 3-D kernel must reproduce the naive reference (both presets, all
// ISAs, awkward sizes, odd step counts).
#include <gtest/gtest.h>

#include <cctype>

#include "common/cpu.hpp"
#include "grid/grid_utils.hpp"
#include "kernels/registry.hpp"
#include "stencil/presets.hpp"
#include "stencil/reference.hpp"

namespace sf {
namespace {

struct Case {
  Preset preset;
  Method method;
  Isa isa;
  int nz, ny, nx;
  int tsteps;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto& c = info.param;
  std::string s = preset(c.preset).name + std::string("_") +
                  method_name(c.method) + "_" + isa_name(c.isa) + "_" +
                  std::to_string(c.nz) + "x" + std::to_string(c.ny) + "x" +
                  std::to_string(c.nx) + "_t" + std::to_string(c.tsteps);
  for (char& ch : s)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return s;
}

class Kernel3D : public ::testing::TestWithParam<Case> {};

TEST_P(Kernel3D, MatchesReference) {
  const Case c = GetParam();
  if (c.isa == Isa::Avx512 && !cpu_has_avx512()) GTEST_SKIP();
  const auto& spec = preset(c.preset);
  const KernelInfo* kern = find_kernel(c.method, 3, c.isa);
  ASSERT_NE(kern, nullptr);
  // Declared-minimum-halo regression: see kernels1d_test.
  const int halo = kern->required_halo(spec.p3.radius());

  Grid3D a(c.nz, c.ny, c.nx, halo), b(c.nz, c.ny, c.nx, halo);
  Grid3D ra(c.nz, c.ny, c.nx, halo), rb(c.nz, c.ny, c.nx, halo);
  fill_random(a, 555 + c.nz * 7 + c.nx);
  copy(a, b);
  copy(a, ra);
  copy(a, rb);

  run_reference(spec.p3, ra, rb, c.tsteps);
  kern->run3(spec.p3, a, b, c.tsteps);

  const double tol = 1e-12 * std::max(1.0, max_abs(ra));
  EXPECT_LE(max_abs_diff(a, ra), tol);
}

std::vector<Case> make_cases() {
  std::vector<Case> v;
  const std::vector<Method> methods = {Method::Naive, Method::MultipleLoads,
                                       Method::DataReorg, Method::DLT,
                                       Method::Ours, Method::Ours2};
  for (Preset p : {Preset::Heat3D, Preset::Box3D27})
    for (Method m : methods)
      for (Isa isa : {Isa::Scalar, Isa::Avx2, Isa::Avx512})
        v.push_back({p, m, isa, 10, 12, 32, 4});
  // Awkward shapes: x-tails, partial bands, tiny volumes, odd steps.
  for (Method m : {Method::MultipleLoads, Method::DataReorg, Method::DLT,
                   Method::Ours, Method::Ours2}) {
    v.push_back({Preset::Box3D27, m, Isa::Avx2, 7, 9, 21, 3});
    v.push_back({Preset::Heat3D, m, Isa::Avx512, 6, 11, 19, 4});
    v.push_back({Preset::Heat3D, m, Isa::Avx2, 3, 3, 5, 4});
  }
  v.push_back({Preset::Box3D27, Method::Ours2, Isa::Avx2, 8, 10, 24, 5});
  v.push_back({Preset::Heat3D, Method::Ours2, Isa::Avx512, 8, 10, 24, 1});
  return v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Kernel3D, ::testing::ValuesIn(make_cases()),
                         case_name);

}  // namespace
}  // namespace sf
