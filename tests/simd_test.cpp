// SIMD wrapper: lane permutations, concatenation shifts, and the in-register
// transposes of paper §2.3.
#include <gtest/gtest.h>

#include <array>
#include <numeric>

#include "common/cpu.hpp"
#include "kernels/tl_access.hpp"
#include "simd/transpose.hpp"
#include "simd/vecd.hpp"

namespace sf {
namespace {

using simd::vecd;

template <int W>
std::array<double, W> lanes(vecd<W> v) {
  std::array<double, W> out;
  for (int i = 0; i < W; ++i) out[i] = v.lane(i);
  return out;
}

template <int W>
void check_rotations() {
  alignas(64) double src[W];
  std::iota(src, src + W, 1.0);
  auto v = vecd<W>::load(src);

  auto r = lanes(simd::rotate_r1(v));
  for (int i = 0; i < W; ++i) EXPECT_DOUBLE_EQ(r[i], src[(i + W - 1) % W]);

  auto l = lanes(simd::rotate_l1(v));
  for (int i = 0; i < W; ++i) EXPECT_DOUBLE_EQ(l[i], src[(i + 1) % W]);
}

TEST(Simd, RotateAvx2) { check_rotations<4>(); }
TEST(Simd, RotateAvx512) {
  if (!cpu_has_avx512()) GTEST_SKIP();
  check_rotations<8>();
}
TEST(Simd, RotateScalar) { check_rotations<1>(); }

template <int W>
void check_blends() {
  alignas(64) double s1[W], s2[W];
  for (int i = 0; i < W; ++i) {
    s1[i] = i;
    s2[i] = 100 + i;
  }
  auto a = vecd<W>::load(s1), b = vecd<W>::load(s2);
  auto f = lanes(simd::blend_first(a, b));
  EXPECT_DOUBLE_EQ(f[0], s2[0]);
  for (int i = 1; i < W; ++i) EXPECT_DOUBLE_EQ(f[i], s1[i]);
  auto l = lanes(simd::blend_last(a, b));
  EXPECT_DOUBLE_EQ(l[W - 1], s2[W - 1]);
  for (int i = 0; i + 1 < W; ++i) EXPECT_DOUBLE_EQ(l[i], s1[i]);
}

TEST(Simd, BlendAvx2) { check_blends<4>(); }
TEST(Simd, BlendAvx512) {
  if (!cpu_has_avx512()) GTEST_SKIP();
  check_blends<8>();
}

template <int W>
void check_shifted() {
  alignas(64) double buf[3 * W];
  std::iota(buf, buf + 3 * W, 0.0);
  auto l = vecd<W>::load(buf);
  auto c = vecd<W>::load(buf + W);
  auto r = vecd<W>::load(buf + 2 * W);
  for (int s = -W; s <= W; ++s) {
    auto v = lanes(shifted<W>(l, c, r, s));
    for (int i = 0; i < W; ++i)
      EXPECT_DOUBLE_EQ(v[i], buf[W + s + i]) << "s=" << s << " lane " << i;
  }
}

TEST(Simd, ShiftedAvx2) { check_shifted<4>(); }
TEST(Simd, ShiftedAvx512) {
  if (!cpu_has_avx512()) GTEST_SKIP();
  check_shifted<8>();
}
TEST(Simd, ShiftedScalar) { check_shifted<1>(); }

template <int W>
void check_transpose() {
  alignas(64) double m[W * W];
  std::iota(m, m + W * W, 0.0);
  vecd<W> r[W];
  for (int i = 0; i < W; ++i) r[i] = vecd<W>::load(m + i * W);
  simd::transpose(r);
  for (int i = 0; i < W; ++i)
    for (int j = 0; j < W; ++j)
      EXPECT_DOUBLE_EQ(r[i].lane(j), m[j * W + i]) << i << "," << j;
}

TEST(Simd, Transpose4x4TwoStage) { check_transpose<4>(); }
TEST(Simd, Transpose8x8ThreeStage) {
  if (!cpu_has_avx512()) GTEST_SKIP();
  check_transpose<8>();
}

TEST(Simd, Transpose4x4AltMatchesPaperScheme) {
  alignas(64) double m[16];
  std::iota(m, m + 16, 0.0);
  vecd<4> r1[4], r2[4];
  for (int i = 0; i < 4; ++i) r1[i] = r2[i] = vecd<4>::load(m + i * 4);
  simd::transpose(r1);
  simd::transpose_alt(r2);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(r1[i].lane(j), r2[i].lane(j));
}

TEST(Simd, TransposeGather) {
  alignas(64) double m[16];
  std::iota(m, m + 16, 0.0);
  vecd<4> r[4];
  simd::transpose_gather(m, r);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(r[i].lane(j), m[j * 4 + i]);
}

TEST(Simd, TransposeIsInvolution) {
  alignas(64) double m[16];
  std::iota(m, m + 16, 3.0);
  simd::transpose_block_inplace<4>(m);
  simd::transpose_block_inplace<4>(m);
  for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(m[i], 3.0 + i);
}

TEST(Simd, FmaAndArithmetic) {
  auto a = vecd<4>::set1(2.0), b = vecd<4>::set1(3.0), c = vecd<4>::set1(1.0);
  EXPECT_DOUBLE_EQ(vecd<4>::fma(a, b, c).lane(2), 7.0);
  EXPECT_DOUBLE_EQ((a + b).lane(0), 5.0);
  EXPECT_DOUBLE_EQ((a - b).lane(3), -1.0);
  EXPECT_DOUBLE_EQ((a * b).lane(1), 6.0);
}

}  // namespace
}  // namespace sf
