// Public API: every (preset x method x tiled) combination must verify
// against the reference through the same entry point the benchmarks use —
// now the Solver facade; the deprecated ProblemConfig shims are covered by
// a separate back-compat test below.
#include <gtest/gtest.h>

#include <cctype>

#include "core/problem.hpp"

namespace sf {
namespace {

struct Case {
  Preset preset;
  Method method;
  bool tiled;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string s = preset(info.param.preset).name + std::string("_") +
                  method_name(info.param.method) +
                  (info.param.tiled ? "_tiled" : "_flat");
  for (char& ch : s)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return s;
}

class CoreApi : public ::testing::TestWithParam<Case> {};

TEST_P(CoreApi, RunVerifiedIsExact) {
  const Case c = GetParam();
  const auto& spec = preset(c.preset);
  Solver s = Solver::make(c.preset).method(c.method).steps(8);
  // Small but multi-tile sizes so the verification is fast yet meaningful.
  switch (spec.dims) {
    case 1: s.size(3000); break;
    case 2: s.size(80, 72); break;
    case 3: s.size(40, 24, 20); break;
  }
  if (c.tiled) s.tiling(Tiling::On).threads(3);

  RunResult r = s.run_verified();
  EXPECT_GE(r.max_error, 0.0);
  EXPECT_LE(r.max_error, 1e-10);
  EXPECT_GT(r.gflops, 0.0);
  EXPECT_GT(r.seconds, 0.0);
}

std::vector<Case> make_cases() {
  std::vector<Case> v;
  for (const auto& spec : all_presets())
    for (Method m : {Method::Naive, Method::MultipleLoads, Method::DataReorg,
                     Method::DLT, Method::Ours, Method::Ours2, Method::Auto})
      for (bool tiled : {false, true}) v.push_back({spec.id, m, tiled});
  return v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CoreApi, ::testing::ValuesIn(make_cases()),
                         case_name);

TEST(CoreApi, GflopsConsistentAcrossMethods) {
  // Same useful-flops convention for every method: gflops * seconds equal.
  RunResult a = Solver::make(Preset::Heat2D)
                    .size(200, 200)
                    .steps(10)
                    .method(Method::Naive)
                    .run();
  RunResult b = Solver::make(Preset::Heat2D)
                    .size(200, 200)
                    .steps(10)
                    .method(Method::Ours2)
                    .run();
  EXPECT_NEAR(a.gflops * a.seconds, b.gflops * b.seconds, 1e-9);
}

// ---------------------------------------------------------------------------
// Deprecated ProblemConfig shims (kept for one release).
// ---------------------------------------------------------------------------

TEST(LegacyShims, ResolveFillsDefaults) {
  ProblemConfig cfg;
  cfg.preset = Preset::Heat3D;
  ProblemConfig r = resolve(cfg);
  EXPECT_EQ(r.nx, preset(Preset::Heat3D).small_size[0]);
  EXPECT_EQ(r.nz, preset(Preset::Heat3D).small_size[2]);
  EXPECT_GT(r.tsteps, 0);
  EXPECT_EQ(r.tile_opts.method, r.method);
}

TEST(LegacyShims, ResolvePreservesTileOptions) {
  ProblemConfig cfg;
  cfg.preset = Preset::Heat2D;
  cfg.method = Method::Ours;
  cfg.isa = Isa::Avx2;
  cfg.tile_opts.tile = 37;
  cfg.tile_opts.time_block = 5;
  cfg.tile_opts.threads = 2;
  ProblemConfig r = resolve(cfg);
  EXPECT_EQ(r.tile_opts.tile, 37);
  EXPECT_EQ(r.tile_opts.time_block, 5);
  EXPECT_EQ(r.tile_opts.threads, 2);
  // method/isa are stamped from the problem-level choice.
  EXPECT_EQ(r.tile_opts.method, Method::Ours);
  EXPECT_EQ(r.tile_opts.isa, Isa::Avx2);
}

TEST(LegacyShims, ResolveDefaultsPerDimensionality) {
  for (Preset p : {Preset::Heat1D, Preset::Box2D9, Preset::Box3D27}) {
    const auto& spec = preset(p);
    ProblemConfig cfg;
    cfg.preset = p;
    ProblemConfig r = resolve(cfg);
    EXPECT_EQ(r.nx, spec.small_size[0]) << spec.name;
    EXPECT_EQ(r.ny, spec.dims >= 2 ? spec.small_size[1] : 1) << spec.name;
    EXPECT_EQ(r.nz, spec.dims >= 3 ? spec.small_size[2] : 1) << spec.name;
    EXPECT_EQ(r.tsteps, spec.small_tsteps) << spec.name;
  }
}

TEST(LegacyShims, UntiledConfigStaysUntiled) {
  // tiled=false predates Tiling::Auto and must keep meaning "serial untiled
  // kernel", even at production sizes the Auto cost model would tile.
  // (Plan only — never allocated or run.)
  ProblemConfig cfg;
  cfg.preset = Preset::Heat2D;
  cfg.nx = cfg.ny = 4096;
  cfg.tsteps = 64;
  cfg.tiled = false;
  Solver s = make_solver(cfg);
  EXPECT_FALSE(s.plan().tiled);
}

TEST(LegacyShims, RunProblemAndRunVerifiedStillWork) {
  ProblemConfig cfg;
  cfg.preset = Preset::Heat2D;
  cfg.method = Method::Ours2;
  cfg.nx = 64;
  cfg.ny = 60;
  cfg.tsteps = 6;
  RunResult r = run_problem(cfg);
  EXPECT_GT(r.gflops, 0.0);
  EXPECT_EQ(r.points, 64 * 60);
  EXPECT_EQ(r.tsteps, 6);
  EXPECT_LT(r.max_error, 0.0);  // no verification requested

  RunResult v = run_verified(cfg);
  EXPECT_GE(v.max_error, 0.0);
  EXPECT_LE(v.max_error, 1e-11);
}

TEST(CoreApi, FlopsAccountingMatchesTapCounts) {
  // 2*taps - 1 per point, plus the source term for APOP.
  EXPECT_DOUBLE_EQ(flops_per_step(preset(Preset::Heat1D), 100, 1, 1), 500.0);
  EXPECT_DOUBLE_EQ(flops_per_step(preset(Preset::Box2D9), 10, 10, 1), 1700.0);
  EXPECT_DOUBLE_EQ(flops_per_step(preset(Preset::Box3D27), 4, 4, 4), 64 * 53.0);
  EXPECT_DOUBLE_EQ(flops_per_step(preset(Preset::Apop), 100, 1, 1),
                   100 * (5 + 2 * 1.0));
}

TEST(CoreApi, FlopsAccountingSourceTermBranch) {
  // The 1-D has_source branch adds one FMA (2 flops) per source tap;
  // derived from the preset's own tap counts rather than magic numbers.
  const auto& apop = preset(Preset::Apop);
  ASSERT_TRUE(apop.has_source);
  EXPECT_DOUBLE_EQ(
      flops_per_step(apop, 1000, 1, 1),
      1000.0 * (apop.p1.flops_per_point() + 2.0 * double(apop.src1.size())));
  // Non-source 1-D presets must not pick up the extra term.
  const auto& p1d5 = preset(Preset::P1D5);
  ASSERT_FALSE(p1d5.has_source);
  EXPECT_DOUBLE_EQ(flops_per_step(p1d5, 1000, 1, 1),
                   1000.0 * p1d5.p1.flops_per_point());
}

}  // namespace
}  // namespace sf
