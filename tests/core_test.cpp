// Public API: every (preset x method x tiled) combination must verify
// against the reference through the same entry points the benchmarks use.
#include <gtest/gtest.h>

#include <cctype>

#include "core/problem.hpp"

namespace sf {
namespace {

struct Case {
  Preset preset;
  Method method;
  bool tiled;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string s = preset(info.param.preset).name + std::string("_") +
                  method_name(info.param.method) +
                  (info.param.tiled ? "_tiled" : "_flat");
  for (char& ch : s)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return s;
}

class CoreApi : public ::testing::TestWithParam<Case> {};

TEST_P(CoreApi, RunVerifiedIsExact) {
  const Case c = GetParam();
  const auto& spec = preset(c.preset);
  ProblemConfig cfg;
  cfg.preset = c.preset;
  cfg.method = c.method;
  cfg.tiled = c.tiled;
  // Small but multi-tile sizes so the verification is fast yet meaningful.
  switch (spec.dims) {
    case 1: cfg.nx = 3000; break;
    case 2: cfg.nx = 80; cfg.ny = 72; break;
    case 3: cfg.nx = 40; cfg.ny = 24; cfg.nz = 20; break;
  }
  cfg.tsteps = 8;
  cfg.tile_opts.threads = 3;

  RunResult r = run_verified(cfg);
  EXPECT_GE(r.max_error, 0.0);
  EXPECT_LE(r.max_error, 1e-10);
  EXPECT_GT(r.gflops, 0.0);
  EXPECT_GT(r.seconds, 0.0);
}

std::vector<Case> make_cases() {
  std::vector<Case> v;
  for (const auto& spec : all_presets())
    for (Method m : {Method::Naive, Method::MultipleLoads, Method::DataReorg,
                     Method::DLT, Method::Ours, Method::Ours2})
      for (bool tiled : {false, true}) v.push_back({spec.id, m, tiled});
  return v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CoreApi, ::testing::ValuesIn(make_cases()),
                         case_name);

TEST(CoreApi, ResolveFillsDefaults) {
  ProblemConfig cfg;
  cfg.preset = Preset::Heat3D;
  ProblemConfig r = resolve(cfg);
  EXPECT_EQ(r.nx, preset(Preset::Heat3D).small_size[0]);
  EXPECT_EQ(r.nz, preset(Preset::Heat3D).small_size[2]);
  EXPECT_GT(r.tsteps, 0);
  EXPECT_EQ(r.tile_opts.method, r.method);
}

TEST(CoreApi, FlopsAccountingMatchesTapCounts) {
  // 2*taps - 1 per point, plus the source term for APOP.
  EXPECT_DOUBLE_EQ(flops_per_step(preset(Preset::Heat1D), 100, 1, 1), 500.0);
  EXPECT_DOUBLE_EQ(flops_per_step(preset(Preset::Box2D9), 10, 10, 1), 1700.0);
  EXPECT_DOUBLE_EQ(flops_per_step(preset(Preset::Box3D27), 4, 4, 4), 64 * 53.0);
  EXPECT_DOUBLE_EQ(flops_per_step(preset(Preset::Apop), 100, 1, 1),
                   100 * (5 + 2 * 1.0));
}

TEST(CoreApi, GflopsConsistentAcrossMethods) {
  // Same useful-flops convention for every method: gflops * seconds equal.
  ProblemConfig cfg;
  cfg.preset = Preset::Heat2D;
  cfg.nx = cfg.ny = 200;
  cfg.tsteps = 10;
  cfg.method = Method::Naive;
  RunResult a = run_problem(cfg);
  cfg.method = Method::Ours2;
  RunResult b = run_problem(cfg);
  EXPECT_NEAR(a.gflops * a.seconds, b.gflops * b.seconds, 1e-9);
}

}  // namespace
}  // namespace sf
