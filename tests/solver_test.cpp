// The Solver facade: builder defaulting, cost-model auto-selection, halo
// negotiation, workspace ownership/reuse, and single-run verification.
#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "fold/cost_model.hpp"

namespace sf {
namespace {

TEST(Solver, ResolveFillsPresetDefaults) {
  for (Preset p : {Preset::Heat1D, Preset::Heat2D, Preset::Heat3D}) {
    const auto& spec = preset(p);
    Solver s = Solver::make(p);
    EXPECT_EQ(s.nx(), spec.small_size[0]) << spec.name;
    EXPECT_EQ(s.ny(), spec.dims >= 2 ? spec.small_size[1] : 1) << spec.name;
    EXPECT_EQ(s.nz(), spec.dims >= 3 ? spec.small_size[2] : 1) << spec.name;
    EXPECT_EQ(s.tsteps(), spec.small_tsteps) << spec.name;
  }
}

TEST(Solver, ExplicitSizeAndStepsWin) {
  Solver s = Solver::make(Preset::Heat2D).size(123, 45).steps(7);
  EXPECT_EQ(s.nx(), 123);
  EXPECT_EQ(s.ny(), 45);
  EXPECT_EQ(s.nz(), 1);
  EXPECT_EQ(s.tsteps(), 7);
}

TEST(Solver, UnsetExtentsDefaultPerDimension) {
  // size(nx) on a 2-D problem keeps the preset's fast-run ny.
  Solver s = Solver::make(Preset::Heat2D).size(123);
  EXPECT_EQ(s.nx(), 123);
  EXPECT_EQ(s.ny(), preset(Preset::Heat2D).small_size[1]);
  // ...and an explicit trailing extent with unset nx keeps both.
  Solver t = Solver::make(Preset::Heat3D).size(0, 0, 9);
  EXPECT_EQ(t.nx(), preset(Preset::Heat3D).small_size[0]);
  EXPECT_EQ(t.ny(), preset(Preset::Heat3D).small_size[1]);
  EXPECT_EQ(t.nz(), 9);
}

TEST(Solver, MethodByStringMatchesEnum) {
  Solver a = Solver::make(Preset::Heat2D).method("dlt");
  Solver b = Solver::make(Preset::Heat2D).method(Method::DLT);
  EXPECT_EQ(&a.kernel(), &b.kernel());
  EXPECT_THROW(Solver::make(Preset::Heat2D).method("bogus"),
               std::invalid_argument);
}

TEST(Solver, HaloNegotiatedFromSelectedKernel) {
  const int r = preset(Preset::Heat2D).p2.radius();
  Solver naive = Solver::make(Preset::Heat2D).method(Method::Naive);
  EXPECT_EQ(naive.halo(), naive.kernel().required_halo(r));
  EXPECT_EQ(naive.halo(), r);

  Solver folded = Solver::make(Preset::Heat2D).method(Method::Ours2);
  EXPECT_EQ(folded.halo(), 2 * r);

  Solver dr = Solver::make(Preset::Heat1D).method(Method::DataReorg)
                  .isa(Isa::Avx2);
  EXPECT_EQ(dr.halo(), 4);  // data-reorg floor = vector width
}

TEST(Solver, AutoSelectionFollowsCostModel) {
  // Heat2D (r = 1): folding is profitable and the AVX-2 folded path
  // engages, so Auto = ours-2step.
  EXPECT_EQ(auto_method(preset(Preset::Heat2D), Isa::Avx2), Method::Ours2);
  EXPECT_GT(profitability(preset(Preset::Heat2D).p2, 2).index_vec(), 1.0);

  // At scalar width the folded (and 1-step transpose at r = 2) vector
  // paths never engage: Auto falls back through the paper's ordering.
  EXPECT_EQ(auto_method(preset(Preset::Heat2D), Isa::Scalar), Method::Ours);
  EXPECT_EQ(auto_method(preset(Preset::P1D5), Isa::Scalar), Method::DLT);
}

TEST(Solver, AutoResolvesToARegisteredKernelAndVerifies) {
  Solver s = Solver::make(Preset::Box2D9).size(64, 60).steps(6);  // Auto
  const KernelInfo& k = s.kernel();
  EXPECT_EQ(k.method, auto_method(preset(Preset::Box2D9), Isa::Auto));
  RunResult r = s.run_verified();
  EXPECT_GE(r.max_error, 0.0);
  EXPECT_LE(r.max_error, 1e-11);
}

TEST(Solver, WorkspacePersistsAndRunsAreReproducible) {
  Solver s = Solver::make(Preset::Heat2D).size(48, 40).steps(5).method(
      Method::Ours2);
  RunResult r1 = s.run_verified();
  const Workspace& ws = s.workspace();
  EXPECT_EQ(ws.dims, 2);
  EXPECT_EQ(ws.halo, s.halo());
  EXPECT_EQ(ws.nx, 48);
  ASSERT_TRUE(ws.a2.has_value());   // result grid
  ASSERT_TRUE(ws.ra2.has_value());  // reference grid (verified run)
  const double* grid_before = ws.a2->data();

  RunResult r2 = s.run_verified();
  EXPECT_EQ(r1.max_error, r2.max_error);  // same seed, same inputs
  EXPECT_EQ(s.workspace().a2->data(), grid_before);  // allocation reused
}

TEST(Solver, WorkspaceReallocatesOnShapeChange) {
  Solver s = Solver::make(Preset::Heat1D).size(256).steps(3);
  s.run();
  EXPECT_EQ(s.workspace().nx, 256);
  s.size(512);
  s.run();
  EXPECT_EQ(s.workspace().nx, 512);
  ASSERT_TRUE(s.workspace().a1.has_value());
  EXPECT_EQ(s.workspace().a1->n(), 512);
}

TEST(Solver, SourceTermWorkspaceAndVerification) {
  // APOP: the 1-D two-array benchmark allocates the source grid k.
  Solver s = Solver::make(Preset::Apop).size(1000).steps(6).method(
      Method::Ours2);
  RunResult r = s.run_verified();
  EXPECT_TRUE(s.workspace().k1.has_value());
  EXPECT_GE(r.max_error, 0.0);
  EXPECT_LE(r.max_error, 1e-11);
}

TEST(Solver, TilingGeometryBuildersPropagate) {
  Solver s = Solver::make(Preset::Box2D9)
                 .size(96, 64)
                 .steps(12)
                 .method(Method::Ours2)
                 .tiling(Tiling::On)
                 .tile(24)
                 .threads(2);
  EXPECT_TRUE(s.plan().tiled);
  EXPECT_EQ(s.plan().tile.tile, 24);
  EXPECT_EQ(s.plan().tile.threads, 2);
  RunResult r = s.run_verified();
  EXPECT_GE(r.max_error, 0.0);
  EXPECT_LE(r.max_error, 1e-10);
}

TEST(Solver, DeprecatedTiledShimsMapToTilingBuilders) {
  // tiled(bool) and tiled(TiledOptions) must keep working for one release,
  // producing the same plan as the tiling()/tile()/threads() spelling.
  TiledOptions opts;
  opts.tile = 24;
  opts.threads = 2;
  Solver legacy = Solver::make(Preset::Box2D9)
                      .size(96, 64)
                      .steps(12)
                      .method(Method::Ours2)
                      .tiled(opts);
  Solver modern = Solver::make(Preset::Box2D9)
                      .size(96, 64)
                      .steps(12)
                      .method(Method::Ours2)
                      .tiling(Tiling::On)
                      .tile(24)
                      .threads(2);
  EXPECT_TRUE(legacy.plan().tiled);
  EXPECT_EQ(legacy.plan().tile.tile, modern.plan().tile.tile);
  EXPECT_EQ(legacy.plan().tile.time_block, modern.plan().tile.time_block);
  EXPECT_EQ(legacy.plan().tile.threads, modern.plan().tile.threads);

  Solver off = Solver::make(Preset::Box2D9).size(96, 64).steps(12).tiled(
      false);
  EXPECT_FALSE(off.plan().tiled);

  RunResult r = legacy.run_verified();
  EXPECT_LE(r.max_error, 1e-10);
}

TEST(Solver, AutoResolvesToRealKernelNeverAutoItself) {
  Solver s = Solver::make(Preset::Heat2D);
  s.method(Method::Auto);
  EXPECT_NO_THROW(s.resolve());
  EXPECT_NE(s.kernel().method, Method::Auto);
}

TEST(Solver, ThrowsForUnavailableKernel) {
  // A dimensionality with no registered kernels surfaces as
  // invalid_argument at resolve time, not a crash at run time.
  StencilSpec bogus = preset(Preset::Heat2D);
  bogus.dims = 4;
  Solver s = Solver::make(bogus).method(Method::Ours2);
  EXPECT_THROW(s.resolve(), std::invalid_argument);
}

TEST(Solver, MetricsMatchProblemShape) {
  RunResult r =
      Solver::make(Preset::Heat3D).size(24, 16, 12).steps(4).run();
  EXPECT_EQ(r.points, 24L * 16 * 12);
  EXPECT_EQ(r.tsteps, 4);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_NEAR(r.gflops,
              flops_per_step(preset(Preset::Heat3D), 24, 16, 12) * 4 /
                  r.seconds / 1e9,
              1e-9);
}

TEST(Solver, OneDimProfitabilityOverload) {
  // naive_collect = |p| * (|p^0| + |p^1|) and folded = |p^2| for m = 2.
  const Pattern1D& p = preset(Preset::Heat1D).p1;  // 3-point
  Profitability pr = profitability(p, 2);
  EXPECT_EQ(pr.naive, 3 * (1 + 3));
  EXPECT_EQ(pr.folded_scalar, 5);  // (p^2) of a 3-point = 5 taps
  EXPECT_EQ(pr.folded_vec, pr.folded_scalar);
  EXPECT_GT(pr.index_vec(), 1.0);
}

}  // namespace
}  // namespace sf
