// Every 1-D kernel must reproduce the naive reference exactly (to FP
// tolerance) for all sizes — including tails, tiny domains, and the APOP
// two-array stencil.
#include <gtest/gtest.h>

#include <tuple>

#include "common/cpu.hpp"
#include "grid/grid_utils.hpp"
#include "kernels/registry.hpp"
#include "stencil/presets.hpp"
#include "stencil/reference.hpp"

namespace sf {
namespace {

struct Case {
  Preset preset;
  Method method;
  Isa isa;
  int n;
  int tsteps;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto& c = info.param;
  std::string s = preset(c.preset).name + std::string("_") +
                  method_name(c.method) + "_" + isa_name(c.isa) + "_n" +
                  std::to_string(c.n) + "_t" + std::to_string(c.tsteps);
  for (char& ch : s)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return s;
}

class Kernel1D : public ::testing::TestWithParam<Case> {};

TEST_P(Kernel1D, MatchesReference) {
  const Case c = GetParam();
  if (c.isa == Isa::Avx512 && !cpu_has_avx512()) GTEST_SKIP();
  const auto& spec = preset(c.preset);
  const KernelInfo* kern = find_kernel(c.method, 1, c.isa);
  ASSERT_NE(kern, nullptr);
  // Grids at the kernel's *declared minimum* halo: regression that every
  // method really runs (and matches the reference) at its capability bound.
  const int radius =
      std::max(spec.p1.radius(), spec.has_source ? spec.src1.radius() : 0);
  const int halo = kern->required_halo(radius);

  Grid1D a(c.n, halo), b(c.n, halo), ra(c.n, halo), rb(c.n, halo);
  Grid1D k(c.n, halo);
  fill_random(a, 1234 + c.n);
  fill_random(k, 99);
  copy(a, b);
  copy(a, ra);
  copy(a, rb);

  const Pattern1D* src = spec.has_source ? &spec.src1 : nullptr;
  const FieldView1D kv = k.view();
  const FieldView1D* kk = spec.has_source ? &kv : nullptr;

  run_reference(spec.p1, ra, rb, c.tsteps, src, kk);
  kern->run1(spec.p1, a, b, src, kk, c.tsteps);

  const double tol = 1e-12 * std::max(1.0, max_abs(ra));
  EXPECT_LE(max_abs_diff(a, ra), tol);
}

std::vector<Case> make_cases() {
  std::vector<Case> v;
  const std::vector<Preset> presets = {Preset::Heat1D, Preset::P1D5, Preset::Apop};
  const std::vector<Method> methods = {Method::Naive, Method::MultipleLoads,
                                       Method::DataReorg, Method::DLT,
                                       Method::Ours, Method::Ours2};
  const std::vector<Isa> isas = {Isa::Scalar, Isa::Avx2, Isa::Avx512};
  const std::vector<int> sizes = {64, 70, 256, 1000};
  for (Preset p : presets)
    for (Method m : methods)
      for (Isa isa : isas)
        for (int n : sizes) v.push_back({p, m, isa, n, 4});
  // Odd time-step counts exercise the folded remainder path.
  v.push_back({Preset::Heat1D, Method::Ours2, Isa::Avx2, 256, 5});
  v.push_back({Preset::P1D5, Method::Ours2, Isa::Avx2, 256, 1});
  v.push_back({Preset::Apop, Method::Ours2, Isa::Avx512, 333, 7});
  // Tiny domains: everything is ring/tail.
  v.push_back({Preset::Heat1D, Method::Ours, Isa::Avx2, 8, 3});
  v.push_back({Preset::Heat1D, Method::Ours2, Isa::Avx2, 8, 4});
  v.push_back({Preset::P1D5, Method::DLT, Isa::Avx2, 12, 3});
  return v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Kernel1D, ::testing::ValuesIn(make_cases()),
                         case_name);

TEST(Kernel1D, LongRunStability) {
  // 100 steps with a contracting stencil stays bounded and matches.
  const auto& spec = preset(Preset::Heat1D);
  const int n = 512, halo = 8, tsteps = 100;
  Grid1D a(n, halo), b(n, halo), ra(n, halo), rb(n, halo);
  fill_random(a, 5);
  copy(a, b);
  copy(a, ra);
  copy(a, rb);
  run_reference(spec.p1, ra, rb, tsteps);
  require_kernel(Method::Ours2, 1).run1(spec.p1, a, b, nullptr, nullptr, tsteps);
  EXPECT_LE(max_abs_diff(a, ra), 1e-11);
}

}  // namespace
}  // namespace sf
