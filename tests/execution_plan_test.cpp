// The ExecutionPlan layer and the auto-tuner: unified tiled-vs-untiled
// execution through Solver::run for every Table-1 preset, the Tiling::Auto
// cost model, registry tileability metadata, geometry negotiation, and the
// measure-once / cache-reuse tuning contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "core/solver.hpp"
#include "core/tuner.hpp"
#include "grid/grid_utils.hpp"

namespace sf {
namespace {

double result_diff(const Workspace& x, const Workspace& y) {
  switch (x.dims) {
    case 1: return max_abs_diff(*x.a1, *y.a1);
    case 2: return max_abs_diff(*x.a2, *y.a2);
    default: return max_abs_diff(*x.a3, *y.a3);
  }
}

double result_scale(const Workspace& x) {
  switch (x.dims) {
    case 1: return max_abs(*x.a1);
    case 2: return max_abs(*x.a2);
    default: return max_abs(*x.a3);
  }
}

void apply_test_size(Solver& s, int dims) {
  switch (dims) {
    case 1: s.size(2000); break;
    case 2: s.size(72, 64); break;
    default: s.size(36, 24, 20); break;
  }
  s.steps(8);
}

// The split-tiled multicore path through the unified Solver::run must agree
// with the untiled kernel on identical inputs, for all nine presets at
// their native dimensionality (and both must match the naive reference).
TEST(UnifiedRun, TiledMatchesUntiledAllPresets) {
  for (const auto& spec : all_presets()) {
    Solver tiled = Solver::make(spec.id).tiling(Tiling::On).threads(3);
    Solver flat = Solver::make(spec.id).tiling(Tiling::Off);
    apply_test_size(tiled, spec.dims);
    apply_test_size(flat, spec.dims);

    RunResult tr = tiled.run_verified();
    EXPECT_GE(tr.max_error, 0.0) << spec.name;
    EXPECT_LE(tr.max_error, 1e-10) << spec.name;
    flat.run();

    // Same kernel (Auto resolves identically), same seed: the wedge
    // schedule only reorders per-point updates, so the results agree to
    // rounding.
    EXPECT_EQ(&tiled.kernel(), &flat.kernel()) << spec.name;
    const double scale = std::max(1.0, result_scale(flat.workspace()));
    EXPECT_LE(result_diff(tiled.workspace(), flat.workspace()),
              1e-10 * scale)
        << spec.name;
  }
}

TEST(ExecutionPlan, OnForcesTiledWithNegotiatedGeometry) {
  Solver s = Solver::make(Preset::Heat2D)
                 .size(512, 384)
                 .steps(16)
                 .method(Method::Ours2)
                 .tiling(Tiling::On)
                 .threads(2);
  const ExecutionPlan& plan = s.plan();
  EXPECT_TRUE(plan.tiled);
  EXPECT_EQ(plan.source, PlanSource::Heuristic);
  EXPECT_EQ(plan.kernel, &s.kernel());
  EXPECT_EQ(plan.tile.method, s.kernel().method);
  EXPECT_GT(plan.tile.tile, 0);
  EXPECT_GT(plan.tile.time_block, 0);
  EXPECT_EQ(plan.tile.threads, 2);
  // The negotiated time block is a whole number of folded super-steps.
  EXPECT_EQ(plan.tile.time_block % s.kernel().fold_depth, 0);
}

TEST(ExecutionPlan, PlacementNegotiatedWithGeometry) {
  Solver s = Solver::make(Preset::Heat2D)
                 .size(512, 384)
                 .steps(16)
                 .method(Method::Ours2)
                 .tiling(Tiling::On)
                 .threads(3)
                 .affinity(Affinity::Compact);
  const ExecutionPlan& plan = s.plan();
  ASSERT_TRUE(plan.tiled);
  ASSERT_TRUE(plan.blocked);
  EXPECT_EQ(plan.tile.affinity, Affinity::Compact);
  const PlacementPlan& place = plan.placement;
  EXPECT_EQ(place.workers, 3);
  EXPECT_EQ(place.affinity, Affinity::Compact);
  // Placement covers exactly the negotiated tile count, in worker order.
  const int ntiles = (384 + plan.tile.tile - 1) / plan.tile.tile;
  EXPECT_EQ(place.ntiles(), ntiles);
  int covered = 0;
  for (int w = 0; w < place.workers; ++w) {
    const auto [t0, t1] = place.tiles_of(w);
    EXPECT_LE(t0, t1);
    covered += t1 - t0;
  }
  EXPECT_EQ(covered, ntiles);
  // Serial plans carry no placement.
  Solver serial = Solver::make(Preset::Heat2D)
                      .size(512, 384)
                      .steps(16)
                      .method(Method::Ours2)
                      .tiling(Tiling::On)
                      .threads(1);
  EXPECT_TRUE(serial.plan().tiled);
  EXPECT_EQ(serial.plan().placement.workers, 0);
}

TEST(ExecutionPlan, OffAndNonTileableKernelsStayUntiled) {
  Solver off = Solver::make(Preset::Heat2D).size(512, 384).steps(16).tiling(
      Tiling::Off);
  EXPECT_FALSE(off.plan().tiled);
  EXPECT_EQ(off.plan().source, PlanSource::Untiled);

  // multiple-loads has no tiled stage: Tiling::On degrades to untiled.
  Solver ml = Solver::make(Preset::Heat2D)
                  .size(512, 384)
                  .steps(16)
                  .method(Method::MultipleLoads)
                  .tiling(Tiling::On);
  EXPECT_FALSE(ml.plan().tiled);
  RunResult r = ml.run_verified();
  EXPECT_LE(r.max_error, 1e-11);
}

TEST(ExecutionPlan, AutoCostModelScalesWithWorkingSet) {
  // Pin the LLC the cost model sees: machines report anything from 4 MB to
  // hundreds of MB, and the decision must be deterministic under test.
  ASSERT_EQ(setenv("SF_LLC_BYTES", "33554432", 1), 0);  // 32 MiB

  // Tiny problem: stage barriers outweigh the parallel win; stays untiled.
  Solver small =
      Solver::make(Preset::Heat2D).size(64, 64).steps(8).method(Method::Ours2);
  EXPECT_FALSE(small.plan().tiled);

  // Production-sized problem (plan only — never allocated/run here): the
  // 256 MiB ping-pong pair exceeds the LLC, so Auto tiles it on any
  // machine, single- or multi-core.
  Solver big = Solver::make(Preset::Heat2D)
                   .size(4096, 4096)
                   .steps(64)
                   .method(Method::Ours2);
  const ExecutionPlan& plan = big.plan();
  EXPECT_TRUE(plan.tiled);
  EXPECT_GT(plan.tile.tile, 0);
  EXPECT_LT(plan.tile.tile, 4096);  // blocked: never one whole-domain tile
  unsetenv("SF_LLC_BYTES");
}

TEST(ExecutionPlan, ExplicitGeometryOutranksNegotiation) {
  Solver s = Solver::make(Preset::Box2D9)
                 .size(96, 96)
                 .steps(12)
                 .method(Method::Ours2)
                 .tiling(Tiling::On)
                 .tile(24)
                 .threads(2);
  EXPECT_TRUE(s.plan().tiled);
  EXPECT_EQ(s.plan().tile.tile, 24);
  RunResult r = s.run_verified();
  EXPECT_LE(r.max_error, 1e-10);
}

TEST(ExecutionPlan, PipelineAxisStampedAndPlanCacheKeyed) {
  unsetenv("SF_PIPELINE");
  Engine& eng = Engine::instance();
  ExecOptions opts;
  opts.tiling = Tiling::On;
  opts.threads = 2;
  opts.tsteps = 8;
  // Auto resolves from the (unset) env default: pipelined on.
  PreparedStencil auto_ps =
      eng.prepare(Preset::Heat2D, Extents{96, 64}, opts);
  ASSERT_TRUE(auto_ps.plan().tiled);
  EXPECT_EQ(auto_ps.plan().tile.pipeline, Pipeline::On);
  // Explicit On / Off are distinct preparations with distinct plan keys —
  // the sync schedule changes run-time behavior, so they must never share
  // a cache entry.
  ExecOptions on = opts, off = opts;
  on.pipeline = Pipeline::On;
  off.pipeline = Pipeline::Off;
  PreparedStencil ps_on = eng.prepare(Preset::Heat2D, Extents{96, 64}, on);
  PreparedStencil ps_off = eng.prepare(Preset::Heat2D, Extents{96, 64}, off);
  EXPECT_EQ(ps_on.plan().tile.pipeline, Pipeline::On);
  EXPECT_EQ(ps_off.plan().tile.pipeline, Pipeline::Off);
  EXPECT_NE(eng.plan_key(preset(Preset::Heat2D), Extents{96, 64}, on),
            eng.plan_key(preset(Preset::Heat2D), Extents{96, 64}, off));
  // Auto == On while the env default is on (same effective request)...
  EXPECT_EQ(eng.plan_key(preset(Preset::Heat2D), Extents{96, 64}, opts),
            eng.plan_key(preset(Preset::Heat2D), Extents{96, 64}, on));
  // ...and flips to the barrier key when SF_PIPELINE=0.
  ASSERT_EQ(setenv("SF_PIPELINE", "0", 1), 0);
  EXPECT_EQ(eng.plan_key(preset(Preset::Heat2D), Extents{96, 64}, opts),
            eng.plan_key(preset(Preset::Heat2D), Extents{96, 64}, off));
  PreparedStencil env_off =
      eng.prepare(Preset::Heat2D, Extents{96, 64}, opts);
  EXPECT_EQ(env_off.plan().tile.pipeline, Pipeline::Off);
  unsetenv("SF_PIPELINE");
}

TEST(ExecutionPlan, PipelineOnOffRunBitwiseIdentical) {
  Solver on = Solver::make(Preset::Heat3D)
                  .size(36, 24, 20)
                  .steps(8)
                  .tiling(Tiling::On)
                  .threads(4)
                  .pipeline(Pipeline::On);
  Solver off = Solver::make(Preset::Heat3D)
                   .size(36, 24, 20)
                   .steps(8)
                   .tiling(Tiling::On)
                   .threads(4)
                   .pipeline(Pipeline::Off);
  on.run();
  off.run();
  EXPECT_EQ(result_diff(on.workspace(), off.workspace()), 0.0);
}

TEST(TileTree, FlatPlansCarryDegenerateTree) {
  unsetenv("SF_TILE_LEVELS");
  Solver s = Solver::make(Preset::Heat2D)
                 .size(96, 384)
                 .steps(16)
                 .method(Method::Ours2)
                 .tiling(Tiling::On)
                 .threads(4);
  const ExecutionPlan& plan = s.plan();
  ASSERT_TRUE(plan.tiled);
  EXPECT_EQ(plan.tile.levels, 1);
  EXPECT_TRUE(plan.tree.flat());
  EXPECT_EQ(plan.tree.depth(), 1);
  EXPECT_EQ(plan.tree.extent, plan.tile.tile);
  // Untiled plans leave the tree empty.
  Solver off = Solver::make(Preset::Heat2D).size(96, 384).steps(16).tiling(
      Tiling::Off);
  EXPECT_EQ(off.plan().tree.extent, 0);
}

// The multi-level negotiation: with a small LLC the mid level caps the
// wedge tile under the flat heuristic, the stamped tree reports
// shard/mid/leaf extents outermost-first, and tuned geometry stored at a
// depth redeploys only at that depth (per-level cache keys).
TEST(TileTree, NegotiationShapeAndPerLevelRedeploy) {
  // Heat2D 96x384, 4 workers, slice = 8*96 bytes: cap = llc/(4*3*768) = 24
  // planes < the flat 96, and 24 >= (2H+1)*slope blocks (H = 5).
  ASSERT_EQ(setenv("SF_LLC_BYTES", "221184", 1), 0);
  TuneCache::instance().clear();
  auto solver_at = [](int levels) {
    return Solver::make(Preset::Heat2D)
        .size(96, 384)
        .steps(16)
        .method(Method::Ours2)
        .tiling(Tiling::On)
        .threads(4)
        .levels(levels);
  };
  Solver flat = solver_at(1);
  Solver tree = solver_at(3);
  ASSERT_TRUE(tree.plan().tiled);
  EXPECT_EQ(flat.plan().tile.levels, 1);
  EXPECT_EQ(tree.plan().tile.levels, 3);
  EXPECT_LT(tree.plan().tile.tile, flat.plan().tile.tile);
  EXPECT_EQ(tree.plan().tile.tile, 24);
  const TileTree& tt = tree.plan().tree;
  EXPECT_EQ(tt.depth(), 3);
  // Outermost = worker shard (>= mid), mid = capped wedge tile, leaf =
  // the kernel's register block, each level nesting the next.
  EXPECT_GE(tt.extent, tt.children.front().extent);
  EXPECT_EQ(tt.children.front().extent, 24);
  EXPECT_EQ(tt.children.front().children.front().extent,
            tree.kernel().reg_block());
  // The capped tile is a *different* wedge geometry than the flat 96, so
  // flank corrections may round differently — agreement is to verification
  // tolerance here. (Bitwise identity across depths holds at fixed
  // geometry: TiledTree.DepthsBitwiseIdentical* and the tiling fuzz.)
  flat.run();
  tree.run();
  EXPECT_LE(result_diff(flat.workspace(), tree.workspace()),
            1e-11 * std::max(1.0, result_scale(flat.workspace())));

  // Per-level redeploy: a tuned entry recorded at depth 3 deploys for
  // depth-3 requests only; flat requests keep the heuristic geometry.
  TuneCache::instance().store(
      make_tune_key(tree.kernel(), 1, 96, 384, 1, 16, 4, 3),
      TunedGeometry{48, 10, 0, 2});
  Solver recalled = solver_at(3);
  EXPECT_EQ(recalled.plan().source, PlanSource::Cached);
  EXPECT_EQ(recalled.plan().tile.tile, 48);
  EXPECT_EQ(recalled.plan().tile.time_block, 10);
  Solver still_flat = solver_at(1);
  EXPECT_EQ(still_flat.plan().source, PlanSource::Heuristic);
  EXPECT_NE(still_flat.plan().tile.tile, 48);
  TuneCache::instance().clear();
  unsetenv("SF_LLC_BYTES");
}

TEST(TileTree, LevelsEnvResolvedAndPlanCacheKeyed) {
  unsetenv("SF_TILE_LEVELS");
  Engine& eng = Engine::instance();
  ExecOptions opts;
  opts.tiling = Tiling::On;
  opts.threads = 2;
  opts.tsteps = 8;
  ExecOptions one = opts, three = opts;
  one.levels = 1;
  three.levels = 3;
  const Extents ext{96, 64};
  const StencilSpec& spec = preset(Preset::Heat2D);
  // Distinct depths are distinct preparations.
  EXPECT_NE(eng.plan_key(spec, ext, one), eng.plan_key(spec, ext, three));
  // Unset env: levels = 0 defers to SF_TILE_LEVELS, default flat.
  EXPECT_EQ(eng.plan_key(spec, ext, opts), eng.plan_key(spec, ext, one));
  ASSERT_EQ(setenv("SF_TILE_LEVELS", "3", 1), 0);
  EXPECT_EQ(eng.plan_key(spec, ext, opts), eng.plan_key(spec, ext, three));
  // Auto picks depth from working set vs LLC: tiny grid stays flat, and
  // with the LLC pinned below the working set the hierarchy engages.
  ASSERT_EQ(setenv("SF_TILE_LEVELS", "auto", 1), 0);
  EXPECT_EQ(eng.plan_key(spec, ext, opts), eng.plan_key(spec, ext, one));
  ASSERT_EQ(setenv("SF_LLC_BYTES", "4096", 1), 0);
  EXPECT_EQ(eng.plan_key(spec, ext, opts), eng.plan_key(spec, ext, three));
  unsetenv("SF_LLC_BYTES");
  unsetenv("SF_TILE_LEVELS");
}

TEST(Registry, TileabilityMetadata) {
  // The folded method fold-doubles the wedge slope (odd levels skipped,
  // Fig. 7) and tiles only while the folded radius fits the vector window.
  const KernelInfo& folded = require_kernel(Method::Ours2, 2, Isa::Avx2);
  EXPECT_EQ(folded.fold_depth, 2);
  EXPECT_EQ(folded.wedge_slope(1), 2);
  EXPECT_TRUE(folded.tileable(1));
  EXPECT_FALSE(folded.tileable(3));

  const KernelInfo& naive = require_kernel(Method::Naive, 2, Isa::Avx2);
  EXPECT_TRUE(naive.tileable(5));  // any radius
  EXPECT_EQ(naive.wedge_slope(2), 2);

  EXPECT_FALSE(require_kernel(Method::MultipleLoads, 2, Isa::Avx2).tileable(1));
  EXPECT_FALSE(require_kernel(Method::DataReorg, 1, Isa::Avx2).tileable(1));
  // DLT tiles in 2-D/3-D but never in 1-D (lifted-seam coupling).
  EXPECT_TRUE(require_kernel(Method::DLT, 2, Isa::Avx2).tileable(1));
  EXPECT_FALSE(require_kernel(Method::DLT, 1, Isa::Avx2).tileable(1));
}

TEST(Registry, TiledPathShapeGuards) {
  // DLT needs a full stencil of lifted rows: engages at nx = 64, not 8.
  const KernelInfo& dlt = require_kernel(Method::DLT, 2, Isa::Avx2);
  EXPECT_TRUE(tiled_path_engages(dlt, 1, 0, 64));
  EXPECT_FALSE(tiled_path_engages(dlt, 1, 0, 8));
  // The 1-D source term widens the wedge reads past the vector window.
  const KernelInfo& folded1 = require_kernel(Method::Ours2, 1, Isa::Avx2);
  EXPECT_TRUE(tiled_path_engages(folded1, 1, 1, 1000));
  EXPECT_FALSE(tiled_path_engages(folded1, 1, 3, 1000));
}

// The measure-once contract: the first tuned run measures and stores
// exactly once; the second run of the same configuration (same Solver or a
// fresh one) reuses the cached geometry without re-measuring.
TEST(Tuner, CachedPlanReusedWithoutRemeasure) {
  TuneCache& cache = TuneCache::instance();
  cache.clear();
  const long before = cache.stored_count();

  Solver s = Solver::make(Preset::Heat2D)
                 .size(256, 192)
                 .steps(12)
                 .method(Method::Ours2)
                 .tiling(Tiling::On)
                 .threads(2)
                 .tune(true);
  s.run();
  EXPECT_EQ(cache.stored_count(), before + 1);
  EXPECT_EQ(s.plan().source, PlanSource::Tuned);
  const int tuned_tile = s.plan().tile.tile;
  EXPECT_GT(tuned_tile, 0);

  // Same Solver again: the plan is already tuned, nothing re-measures.
  s.run();
  EXPECT_EQ(cache.stored_count(), before + 1);

  // A fresh Solver for the same configuration recalls the cached geometry
  // at plan time and never measures.
  Solver again = Solver::make(Preset::Heat2D)
                     .size(256, 192)
                     .steps(12)
                     .method(Method::Ours2)
                     .tiling(Tiling::On)
                     .threads(2)
                     .tune(true);
  EXPECT_EQ(again.plan().source, PlanSource::Cached);
  EXPECT_EQ(again.plan().tile.tile, tuned_tile);
  again.run();
  EXPECT_EQ(cache.stored_count(), before + 1);

  // A different shape is a different key: it measures (once) again.
  Solver other = Solver::make(Preset::Heat2D)
                     .size(192, 256)
                     .steps(12)
                     .method(Method::Ours2)
                     .tiling(Tiling::On)
                     .threads(2)
                     .tune(true);
  other.run();
  EXPECT_EQ(cache.stored_count(), before + 2);
  cache.clear();
}

// The search measures (tile × time_block) pairs and candidate thread
// counts, not just tile extents: whatever wins, the recorded geometry is a
// fully-specified pair (and optionally a thread count) that deploys as a
// blocked wedge schedule — and re-deploys identically from the cache.
TEST(Tuner, RecordsPairAndThreadAxis) {
  TuneCache& cache = TuneCache::instance();
  cache.clear();

  Solver s = Solver::make(Preset::Heat2D)
                 .size(320, 256)
                 .steps(16)
                 .method(Method::Ours2)
                 .tiling(Tiling::On)
                 .threads(2)
                 .tune(true);
  s.run();
  EXPECT_EQ(s.plan().source, PlanSource::Tuned);

  // The stored entry is keyed on the *requested* resolved thread count...
  const TuneKey key = make_tune_key(s.kernel(), 1, 320, 256, 1, 16, 2);
  auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_GT(hit->tile, 0);
  EXPECT_GT(hit->time_block, 0);  // the pair was recorded, not re-derived
  // ...and its thread axis either kept the request (0) or settled on a
  // strictly smaller measured count.
  EXPECT_GE(hit->threads, 0);
  EXPECT_LE(hit->threads, 2);
  // Whatever was recorded deploys: the executed plan carries it.
  EXPECT_EQ(s.plan().tile.tile, hit->tile);
  EXPECT_EQ(s.plan().tile.time_block, hit->time_block);
  if (hit->threads > 0) EXPECT_EQ(s.plan().tile.threads, hit->threads);

  // A fresh Solver recalls and deploys the identical geometry.
  Solver again = Solver::make(Preset::Heat2D)
                     .size(320, 256)
                     .steps(16)
                     .method(Method::Ours2)
                     .tiling(Tiling::On)
                     .threads(2)
                     .tune(true);
  EXPECT_EQ(again.plan().source, PlanSource::Cached);
  EXPECT_EQ(again.plan().tile.tile, s.plan().tile.tile);
  EXPECT_EQ(again.plan().tile.time_block, s.plan().tile.time_block);
  EXPECT_EQ(again.plan().tile.threads, s.plan().tile.threads);
  cache.clear();
}

TEST(Tuner, V1CacheLinesStillParse) {
  // Pre-thread-axis caches keep working: a v1 line (no tuned_threads
  // column) loads with threads = 0, i.e. "deploy with the key's count".
  const std::string path = ::testing::TempDir() + "sf_tune_cache_v1.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("v1 ours-2step 1 2 1 128 96 1 10 4 40 6\n", f);
  std::fputs("v2 ours-2step 1 2 1 256 96 1 10 4 40 6 2\n", f);
  std::fputs("v3 ours-2step 1 2 1 384 96 1 10 4 40 6 2 2 8\n", f);
  std::fclose(f);
  TuneCache c;
  EXPECT_EQ(c.load_file(path), 3u);
  const KernelInfo& k = require_kernel(Method::Ours2, 2, Isa::Avx2);
  auto v1 = c.lookup(make_tune_key(k, 1, 128, 96, 1, 10, 4));
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->threads, 0);
  // Pre-tree v2 lines land at the flat (levels = 1) key with no leaf.
  auto v2 = c.lookup(make_tune_key(k, 1, 256, 96, 1, 10, 4));
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(v2->threads, 2);
  EXPECT_EQ(v2->leaf, 0);
  // v3 lines carry the tree-depth key axis and the leaf granule — visible
  // only at their own depth, never at the flat key.
  auto v3 = c.lookup(make_tune_key(k, 1, 384, 96, 1, 10, 4, 2));
  ASSERT_TRUE(v3.has_value());
  EXPECT_EQ(v3->threads, 2);
  EXPECT_EQ(v3->leaf, 8);
  EXPECT_FALSE(c.lookup(make_tune_key(k, 1, 384, 96, 1, 10, 4)).has_value());
  std::remove(path.c_str());
}

TEST(Tuner, V3RoundTripKeepsLevelsAndLeaf) {
  TuneCache a;
  const KernelInfo& k = require_kernel(Method::Ours2, 2, Isa::Avx2);
  // The same configuration tuned flat and at depth 2: distinct entries.
  a.store(make_tune_key(k, 1, 128, 96, 1, 10, 4), TunedGeometry{40, 6});
  a.store(make_tune_key(k, 1, 128, 96, 1, 10, 4, 2),
          TunedGeometry{24, 4, 0, 4});
  const std::string path = ::testing::TempDir() + "sf_tune_cache_v3.txt";
  ASSERT_TRUE(a.save_file(path));
  TuneCache b;
  EXPECT_EQ(b.load_file(path), 2u);
  auto flat = b.lookup(make_tune_key(k, 1, 128, 96, 1, 10, 4));
  ASSERT_TRUE(flat.has_value());
  EXPECT_EQ(flat->tile, 40);
  EXPECT_EQ(flat->leaf, 0);
  auto tree = b.lookup(make_tune_key(k, 1, 128, 96, 1, 10, 4, 2));
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->tile, 24);
  EXPECT_EQ(tree->time_block, 4);
  EXPECT_EQ(tree->leaf, 4);
  std::remove(path.c_str());
}

TEST(Tuner, TunedRunStaysExact) {
  TuneCache::instance().clear();
  RunResult r = Solver::make(Preset::Box2D9)
                    .size(128, 96)
                    .steps(10)
                    .method(Method::Ours2)
                    .tiling(Tiling::On)
                    .threads(2)
                    .tune(true)
                    .run_verified();
  EXPECT_GE(r.max_error, 0.0);
  EXPECT_LE(r.max_error, 1e-10);
  TuneCache::instance().clear();
}

TEST(Tuner, DiskRoundTrip) {
  TuneCache a;
  const TuneKey key =
      make_tune_key(require_kernel(Method::Ours2, 2, Isa::Avx2), /*radius=*/1,
                    128, 96, 1, 10, 4);
  a.store(key, TunedGeometry{40, 6});
  const std::string path =
      ::testing::TempDir() + "sf_tune_cache_roundtrip.txt";
  ASSERT_TRUE(a.save_file(path));

  TuneCache b;
  EXPECT_EQ(b.load_file(path), 1u);
  auto hit = b.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->tile, 40);
  EXPECT_EQ(hit->time_block, 6);

  // Later lines win: an appended update shadows its predecessor, which is
  // how the append-only SF_TUNE_CACHE persistence upgrades entries.
  {
    TuneCache c;
    c.store(key, TunedGeometry{56, 8});
    const std::string tmp = path + ".updated";
    ASSERT_TRUE(c.save_file(tmp));
    std::FILE* in = std::fopen(tmp.c_str(), "r");
    std::FILE* out = std::fopen(path.c_str(), "a");
    ASSERT_NE(in, nullptr);
    ASSERT_NE(out, nullptr);
    char buf[256];
    while (std::fgets(buf, sizeof buf, in) != nullptr) std::fputs(buf, out);
    std::fclose(in);
    std::fclose(out);
    std::remove(tmp.c_str());
  }
  TuneCache d;
  EXPECT_GE(d.load_file(path), 1u);
  auto updated = d.lookup(key);
  ASSERT_TRUE(updated.has_value());
  EXPECT_EQ(updated->tile, 56);
  EXPECT_EQ(updated->time_block, 8);
  std::remove(path.c_str());
}

TEST(Tuner, UnparsableLinesAreSkipped) {
  const std::string path = ::testing::TempDir() + "sf_tune_cache_bad.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# comment\n", f);
  std::fputs("garbage line\n", f);
  std::fputs("v1 ours-2step 1 2 1 128 96 1 10 4 40 6\n", f);
  std::fputs("v1 ours-2step 1 2 1 64 64 1 10 4 40 0\n", f);  // bad tb
  std::fputs("v0 wrong tag 0 0 0 0 0 0 0 0 0\n", f);
  std::fclose(f);
  TuneCache c;
  EXPECT_EQ(c.load_file(path), 1u);
  EXPECT_EQ(c.size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sf
